/**
 * @file
 * FleetScheduler suite: many tenant sessions over one shared pool.
 *
 * Covers the fleet contract end to end: weighted fair-share grant
 * counts, reserved-quota priority for RC tenants (grant-latency SLO
 * under an explore flood), class-priority preemption with graceful
 * handback, exactly-once delivery per tenant under injected worker
 * crashes, tenant-labeled trace lineage, metrics-doc drift, and
 * shared-pool auto-scaling.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/metrics_export.h"
#include "common/trace_query.h"
#include "sched/dpp_fleet.h"
#include "test_fixtures.h"

namespace dsi::sched {
namespace {

warehouse::SchemaParams
fleetParams()
{
    warehouse::SchemaParams p;
    p.name = "fleet";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 47;
    return p;
}

/** One session spec over the shared table; split size is the knob the
 * scenarios tune (512-row stripes => rows_per_split/512 stripes). */
dpp::SessionSpec
tenantSpec(const testing::MiniWarehouse &mw,
           std::vector<uint32_t> partitions, uint64_t rows_per_split)
{
    dpp::SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = std::move(partitions);
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = rows_per_split;
    return spec;
}

/** Per-tenant delivery log keyed by replay-stable batch identity. */
struct TenantLog
{
    std::map<TenantId, std::map<std::pair<uint64_t, RowId>, uint64_t>>
        count;
    std::map<TenantId, uint64_t> rows;

    FleetScheduler::TensorSink sink()
    {
        return [this](TenantId tenant, const dpp::TensorBatch &t) {
            ++count[tenant][{t.split_id, t.first_row}];
            rows[tenant] += t.data.rows;
        };
    }

    /** The tenant saw every batch key exactly once, totals exact. */
    void expectExactlyOnce(TenantId tenant,
                           uint64_t expected_rows) const
    {
        auto it = count.find(tenant);
        ASSERT_NE(it, count.end()) << "tenant " << tenant
                                   << " received nothing";
        for (const auto &[key, n] : it->second) {
            EXPECT_EQ(n, 1u)
                << "tenant " << tenant << " batch (split " << key.first
                << ", row " << key.second << ") delivered " << n
                << " times";
        }
        auto rit = rows.find(tenant);
        ASSERT_NE(rit, rows.end());
        EXPECT_EQ(rit->second, expected_rows)
            << "tenant " << tenant << " row total";
    }
};

class FleetTest : public ::testing::Test
{
  protected:
    /** 2 partitions x 4096 rows in 2048-row files of 512-row stripes:
     * 16 stripes per {0,1} tenant, 8 per single-partition tenant. */
    static constexpr uint64_t kRowsBoth = 2 * 4096;
    static constexpr uint64_t kRowsOne = 4096;

    static dwrf::WriterOptions
    stripeOptions()
    {
        dwrf::WriterOptions wo;
        wo.rows_per_stripe = 512;
        return wo;
    }

    FleetTest()
        : mw_(testing::makeMiniWarehouse(fleetParams(), 2, 4096, 2048,
                                         stripeOptions()))
    {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0xF1EE7ULL);
    }

    ~FleetTest() override { FaultInjector::instance().reset(); }

    testing::MiniWarehouse mw_;
};

// ---------------------------------------------------------------------
// Fairness.

TEST_F(FleetTest, EqualWeightTenantsShareGrantsFairly)
{
    FleetOptions fo;
    fo.initial_workers = 4;
    FleetScheduler fleet(*mw_.warehouse, fo);

    std::vector<TenantId> ids;
    for (int i = 0; i < 4; ++i) {
        TenantOptions to;
        to.name = "eq" + std::to_string(i);
        ids.push_back(
            fleet.addTenant(tenantSpec(mw_, {0, 1}, 512), to));
    }

    // Sample fairness mid-run (at completion everyone trivially holds
    // all of their own splits): tick until ~
    // 24 of the 64 one-stripe splits have been granted.
    TenantLog log;
    uint64_t total = 0;
    for (int guard = 0; total < 24 && guard < 200; ++guard) {
        fleet.tick(log.sink());
        total = 0;
        for (TenantId id : ids)
            total += fleet.tenantStats(id).granted;
    }
    ASSERT_GE(total, 24u);
    double mean = static_cast<double>(total) / 4.0;
    for (TenantId id : ids) {
        auto s = fleet.tenantStats(id);
        EXPECT_NEAR(static_cast<double>(s.granted), mean,
                    mean * 0.10 + 1.0)
            << "tenant " << s.name << " granted " << s.granted
            << " of " << total;
        EXPECT_EQ(s.shed, 0u);
    }

    fleet.close();
    while (fleet.tick(log.sink())) {
    }
    for (TenantId id : ids) {
        log.expectExactlyOnce(id, kRowsBoth);
        EXPECT_TRUE(fleet.tenantStats(id).done);
    }
}

TEST_F(FleetTest, WeightedFairShareConvergesToWeightRatio)
{
    FleetOptions fo;
    fo.initial_workers = 8;
    FleetScheduler fleet(*mw_.warehouse, fo);

    TenantOptions heavy;
    heavy.name = "heavy";
    heavy.weight = 3.0;
    TenantOptions light;
    light.name = "light";
    light.weight = 1.0;
    TenantId h = fleet.addTenant(tenantSpec(mw_, {0, 1}, 512), heavy);
    TenantId l = fleet.addTenant(tenantSpec(mw_, {0, 1}, 512), light);

    TenantLog log;
    uint64_t total = 0;
    for (int guard = 0; total < 8 && guard < 100; ++guard) {
        fleet.tick(log.sink());
        total = fleet.tenantStats(h).granted +
                fleet.tenantStats(l).granted;
    }
    ASSERT_GE(total, 8u);
    double share = static_cast<double>(fleet.tenantStats(h).granted) /
                   static_cast<double>(total);
    // 3:1 weights => the heavy tenant holds ~75% of in-flight grants.
    EXPECT_NEAR(share, 0.75, 0.10);

    fleet.close();
    while (fleet.tick(log.sink())) {
    }
    log.expectExactlyOnce(h, kRowsBoth);
    log.expectExactlyOnce(l, kRowsBoth);
}

// ---------------------------------------------------------------------
// RC grant-latency SLO.

/** Drive a closed fleet on a fake millisecond clock and report the RC
 * tenant's p99 grant latency (seconds of pending-but-ungranted time
 * before each grant). */
double
rcGrantP99(const testing::MiniWarehouse &mw, int explore_tenants)
{
    FleetOptions fo;
    fo.initial_workers = 4;
    fo.preemption = false; // isolate the reserved-quota pass
    FleetScheduler fleet(*mw.warehouse, fo);
    double now = 0.0;
    fleet.setClock([&now] { return now; });

    TenantOptions rc;
    rc.name = "rc";
    rc.job_class = JobClass::RC;
    rc.min_quota = 2;
    TenantId rcid = fleet.addTenant(tenantSpec(mw, {0}, 512), rc);
    for (int i = 0; i < explore_tenants; ++i) {
        TenantOptions ex;
        ex.name = "explore" + std::to_string(i);
        ex.job_class = JobClass::Explore;
        fleet.addTenant(
            tenantSpec(mw, {i % 2 == 0 ? 0u : 1u}, 512), ex);
    }

    fleet.close();
    while (fleet.tick())
        now += 0.001;
    EXPECT_EQ(fleet.tenantStats(rcid).rows_delivered, 4096u);
    return fleet.tenantStats(rcid).grant_latency_p99;
}

TEST_F(FleetTest, RcGrantLatencySloHoldsUnderExploreFlood)
{
    // Tripling best-effort demand (2 -> 6 explore tenants) must not
    // degrade the RC tenant's p99 grant latency by more than 20%: its
    // reserved quota is served ahead of every fair-share grant. The
    // additive 2ms slack absorbs tick quantization when the baseline
    // p99 is at or near zero.
    double base = rcGrantP99(mw_, 2);
    double flood = rcGrantP99(mw_, 6);
    EXPECT_LE(flood, base * 1.20 + 0.002)
        << "RC p99 " << base << "s -> " << flood
        << "s when explore demand tripled";
}

// ---------------------------------------------------------------------
// Preemption.

TEST_F(FleetTest, RcStarvationPreemptsLowerClassWorker)
{
    FleetOptions fo;
    fo.initial_workers = 2;
    FleetScheduler fleet(*mw_.warehouse, fo);

    TenantLog log;
    TenantOptions ex;
    ex.name = "explore";
    // 4-stripe splits keep both workers busy across several ticks.
    TenantId e = fleet.addTenant(tenantSpec(mw_, {0, 1}, 2048), ex);
    fleet.tick(log.sink());
    EXPECT_EQ(fleet.tenantStats(e).granted, 2u);

    // An RC job arrives with a reservation while the whole pool is
    // held by explore splits: the fleet drains one victim (graceful
    // handback) and launches a replacement for the RC work.
    TenantOptions rc;
    rc.name = "rc";
    rc.job_class = JobClass::RC;
    rc.min_quota = 1;
    TenantId r = fleet.addTenant(tenantSpec(mw_, {0}, 2048), rc);
    fleet.tick(log.sink());

    EXPECT_EQ(fleet.workerCount(), 3u);
    EXPECT_GE(fleet.tenantStats(e).preempted, 1u);
    EXPECT_GE(fleet.metrics().counter("fleet.preemptions"), 1.0);

    fleet.close();
    while (fleet.tick(log.sink())) {
    }
    EXPECT_GE(fleet.tenantStats(r).granted, 1u);
    // The handed-back split replays on another worker; the tenant
    // ledger absorbs the overlap — totals stay exact.
    log.expectExactlyOnce(e, kRowsBoth);
    log.expectExactlyOnce(r, kRowsOne);
    auto merged = fleet.collectMetrics();
    EXPECT_GE(merged.counter("worker.splits_preempted"), 1.0);
    EXPECT_GE(merged.counter("fleet.workers_launched"), 3.0);
}

// ---------------------------------------------------------------------
// Fault tolerance (parallel workers; the suite's TSan target).

TEST_F(FleetTest, WorkerCrashPreservesExactlyOncePerTenant)
{
    FleetOptions fo;
    fo.initial_workers = 2;
    fo.lease_timeout = 0.05;
    fo.worker.num_extract_threads = 2;
    fo.worker.num_transform_threads = 2;
    FleetScheduler fleet(*mw_.warehouse, fo);

    TenantOptions rc;
    rc.name = "rc";
    rc.job_class = JobClass::RC;
    rc.min_quota = 1;
    TenantOptions combo;
    combo.name = "combo";
    combo.job_class = JobClass::Combo;
    TenantOptions ex0;
    ex0.name = "explore0";
    TenantOptions ex1;
    ex1.name = "explore1";
    TenantId t0 = fleet.addTenant(tenantSpec(mw_, {0, 1}, 1024), rc);
    TenantId t1 = fleet.addTenant(tenantSpec(mw_, {0}, 1024), combo);
    TenantId t2 = fleet.addTenant(tenantSpec(mw_, {1}, 1024), ex0);
    TenantId t3 = fleet.addTenant(tenantSpec(mw_, {0, 1}, 1024), ex1);

    // The 6th crash-point hit (checked per stripe, split in hand)
    // kills one worker mid-split. Its fleet lease expires, every
    // tenant Master it served requeues its splits, and a stateless
    // replacement joins the pool.
    ScopedFault crash(faults::kWorkerCrash,
                      FaultSpec{.trigger_hit = 6});
    TenantLog log;
    auto result = fleet.run(log.sink());

    EXPECT_GE(result.worker_failures, 1u);
    log.expectExactlyOnce(t0, kRowsBoth);
    log.expectExactlyOnce(t1, kRowsOne);
    log.expectExactlyOnce(t2, kRowsOne);
    log.expectExactlyOnce(t3, kRowsBoth);
    EXPECT_EQ(result.rows_delivered,
              2 * kRowsBoth + 2 * kRowsOne);
    for (TenantId id : {t0, t1, t2, t3}) {
        auto s = fleet.tenantStats(id);
        EXPECT_TRUE(s.done) << s.name;
        EXPECT_EQ(s.splits_failed, 0u) << s.name;
    }
    EXPECT_GE(fleet.metrics().counter("fleet.lease_expirations"), 1.0);
    EXPECT_GE(fleet.metrics().counter("fleet.worker_replacements"),
              1.0);
}

// ---------------------------------------------------------------------
// Tenant-labeled tracing.

TEST_F(FleetTest, SpansAttributeWorkAndDeliveryToTenants)
{
    FleetOptions fo;
    fo.initial_workers = 2;
    fo.trace = true;
    FleetScheduler fleet(*mw_.warehouse, fo);

    TenantOptions rc;
    rc.name = "rc";
    rc.job_class = JobClass::RC;
    TenantOptions ex;
    ex.name = "explore";
    TenantId t0 = fleet.addTenant(tenantSpec(mw_, {0}, 1024), rc);
    TenantId t1 = fleet.addTenant(tenantSpec(mw_, {1}, 1024), ex);

    TenantLog log;
    fleet.run(log.sink());
    log.expectExactlyOnce(t0, kRowsOne);
    log.expectExactlyOnce(t1, kRowsOne);

    trace::TraceQuery q(fleet.traceEvents());
    // One lifetime span per tenant, each carrying its tenant id.
    auto tenant_spans = q.byName(trace::spans::kFleetTenant);
    ASSERT_EQ(tenant_spans.size(), fleet.tenantCount());
    std::set<uint64_t> labeled;
    for (const auto *ts : tenant_spans)
        labeled.insert(ts->a0);
    EXPECT_EQ(labeled, (std::set<uint64_t>{t0, t1}));

    // Every grant the fleet made is attributable to its tenant…
    auto grants = q.byName(trace::spans::kMasterGrant);
    ASSERT_GT(grants.size(), 0u);
    for (const auto *g : grants)
        EXPECT_NE(q.ancestor(*g, trace::spans::kFleetTenant), nullptr)
            << "master.grant span without a fleet.tenant ancestor";

    // …and every delivered batch's lineage agrees with its label.
    auto delivers = q.byName(trace::spans::kFleetDeliver);
    ASSERT_GT(delivers.size(), 0u);
    for (const auto *d : delivers) {
        const auto *owner =
            q.ancestor(*d, trace::spans::kFleetTenant);
        ASSERT_NE(owner, nullptr);
        EXPECT_EQ(d->a0, owner->a0)
            << "fleet.deliver labeled tenant " << d->a0
            << " under tenant span " << owner->a0;
    }
}

// ---------------------------------------------------------------------
// Metrics-doc drift.

/** All `component.noun` names backticked in docs/METRICS.md tables
 * (same parse as trace_export_test's documentedMetricNames). */
std::set<std::string>
documentedMetricNames()
{
    std::ifstream in(std::string(DSI_SOURCE_DIR) + "/docs/METRICS.md");
    std::set<std::string> names;
    std::string line;
    while (std::getline(in, line)) {
        size_t pos = 0;
        while ((pos = line.find('`', pos)) != std::string::npos) {
            size_t end = line.find('`', pos + 1);
            if (end == std::string::npos)
                break;
            std::string token = line.substr(pos + 1, end - pos - 1);
            if (token.find('.') != std::string::npos &&
                token.find(' ') == std::string::npos &&
                token.find('(') == std::string::npos &&
                token.find('/') == std::string::npos) {
                names.insert(token);
            }
            pos = end + 1;
        }
    }
    return names;
}

/** Fold the per-tenant id out of fleet.tenant.<N>.* names so they
 * match the documented `fleet.tenant.<id>.*` placeholders. */
std::string
canonicalMetricName(const std::string &name)
{
    const std::string prefix = "fleet.tenant.";
    if (name.rfind(prefix, 0) == 0) {
        size_t dot = name.find('.', prefix.size());
        if (dot != std::string::npos)
            return prefix + "<id>" + name.substr(dot);
    }
    return name;
}

TEST_F(FleetTest, EveryFleetMetricIsDocumented)
{
    auto documented = documentedMetricNames();
    ASSERT_GT(documented.size(), 20u)
        << "docs/METRICS.md parse came up nearly empty — did the "
           "table format change?";

    // Exercise the fleet paths that emit metrics: grants, shed at a
    // max_inflight cap, preemption, replacement-free completion.
    FleetOptions fo;
    fo.initial_workers = 2;
    FleetScheduler fleet(*mw_.warehouse, fo);
    TenantLog log;
    TenantOptions ex;
    ex.name = "explore";
    ex.max_inflight = 1; // force shed rounds
    TenantId e = fleet.addTenant(tenantSpec(mw_, {0, 1}, 2048), ex);
    fleet.tick(log.sink());
    TenantOptions rc;
    rc.name = "rc";
    rc.job_class = JobClass::RC;
    rc.min_quota = 1;
    fleet.addTenant(tenantSpec(mw_, {0}, 2048), rc);
    fleet.close();
    while (fleet.tick(log.sink())) {
    }
    EXPECT_GE(fleet.tenantStats(e).shed, 1u);

    std::string dump =
        MetricsExporter::prometheusText(fleet.collectMetrics());
    for (const auto &name : MetricsExporter::namesInDump(dump)) {
        EXPECT_TRUE(documented.count(canonicalMetricName(name)))
            << "metric '" << name
            << "' is emitted but missing from docs/METRICS.md";
    }
}

// ---------------------------------------------------------------------
// Shared-pool auto-scaling.

TEST_F(FleetTest, StarvedPoolAutoscalesUpToCap)
{
    FleetOptions fo;
    fo.initial_workers = 1;
    fo.autoscale.enabled = true;
    fo.autoscale.interval_s = 0.01;
    fo.autoscale.scaler.min_workers = 1;
    fo.autoscale.scaler.max_workers = 4;
    FleetScheduler fleet(*mw_.warehouse, fo);
    double now = 0.0;
    fleet.setClock([&now] { return now; });

    TenantOptions ex;
    ex.name = "explore";
    TenantId e = fleet.addTenant(tenantSpec(mw_, {0, 1}, 512), ex);

    // Every round drains the single worker dry — the controller sees
    // a starving pool and grows it (capped at 4).
    TenantLog log;
    size_t peak = fleet.workerCount();
    for (int i = 0; i < 20; ++i) {
        now += 0.02;
        fleet.tick(log.sink());
        peak = std::max(peak, fleet.workerCount());
    }
    EXPECT_GE(peak, 2u);
    EXPECT_LE(fleet.workerCount(), 4u);
    EXPECT_GE(fleet.metrics().counter("fleet.workers_launched"), 2.0);

    fleet.close();
    while (fleet.tick(log.sink())) {
        now += 0.02;
    }
    log.expectExactlyOnce(e, kRowsBoth);
}

} // namespace
} // namespace dsi::sched
