/**
 * @file
 * Unit tests for the overload-protection primitives: Deadline budget
 * propagation, decorrelated-jitter Backoff, and the per-endpoint
 * CircuitBreaker state machine (driven by a fake clock).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/backoff.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"

namespace dsi {
namespace {

TEST(DeadlineTest, UnboundedNeverExpires)
{
    Deadline d = Deadline::unbounded();
    EXPECT_FALSE(d.bounded());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingSeconds(), 3600.0);
}

TEST(DeadlineTest, ZeroBudgetIsImmediatelyExpired)
{
    Deadline d = Deadline::after(0.0);
    EXPECT_TRUE(d.bounded());
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remainingSeconds(), 0.0);
}

TEST(DeadlineTest, FutureBudgetCountsDown)
{
    Deadline d = Deadline::after(10.0);
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingSeconds(), 9.0);
    EXPECT_LE(d.remainingSeconds(), 10.0);
}

TEST(DeadlineTest, MinPicksEarlierBudget)
{
    Deadline near = Deadline::after(0.001);
    Deadline far = Deadline::after(100.0);
    Deadline unbounded = Deadline::unbounded();
    EXPECT_LT(near.min(far).remainingSeconds(), 1.0);
    EXPECT_LT(far.min(near).remainingSeconds(), 1.0);
    // Intersecting with "no budget" keeps the real budget.
    EXPECT_TRUE(unbounded.min(far).bounded());
    EXPECT_TRUE(far.min(unbounded).bounded());
    EXPECT_FALSE(unbounded.min(unbounded).bounded());
}

TEST(DeadlineTest, WaitReturnsFalseOnExpiry)
{
    std::mutex m;
    std::condition_variable cv;
    std::unique_lock lock(m);
    // Nobody ever signals: the wait must give up at the deadline.
    bool ok = Deadline::after(0.005).wait(cv, lock,
                                          [] { return false; });
    EXPECT_FALSE(ok);
    // A predicate that is already true succeeds even when expired.
    EXPECT_TRUE(
        Deadline::after(0.0).wait(cv, lock, [] { return true; }));
}

TEST(BackoffTest, DelaysStayWithinJitterEnvelope)
{
    BackoffOptions opts;
    opts.base_us = 100;
    opts.cap_us = 1000;
    Backoff backoff(opts, 42);
    uint64_t prev = opts.base_us;
    for (int i = 0; i < 64; ++i) {
        uint64_t d = backoff.nextDelayUs();
        EXPECT_GE(d, opts.base_us);
        EXPECT_LE(d, opts.cap_us);
        // Decorrelated jitter: each draw is bounded by the previous
        // delay times the growth factor (and the cap).
        uint64_t hi = std::max<uint64_t>(
            opts.base_us + 1,
            std::min<uint64_t>(
                opts.cap_us, static_cast<uint64_t>(
                                 static_cast<double>(prev) *
                                 opts.multiplier)));
        EXPECT_LE(d, hi);
        prev = d;
    }
}

TEST(BackoffTest, SameSeedSameSequence)
{
    Backoff a({}, 7), b({}, 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.nextDelayUs(), b.nextDelayUs());
}

TEST(BackoffTest, ResetRestartsTheLadder)
{
    BackoffOptions opts;
    opts.base_us = 100;
    opts.cap_us = 100'000;
    Backoff a(opts, 9), b(opts, 9);
    for (int i = 0; i < 8; ++i)
        a.nextDelayUs();
    a.reset();
    // After reset the sequence continues from base again, so the next
    // draw is bounded the same way a fresh first draw is.
    uint64_t next = a.nextDelayUs();
    EXPECT_LE(next, static_cast<uint64_t>(opts.base_us *
                                          opts.multiplier));
}

TEST(BackoffTest, SleepRefusesExpiredDeadline)
{
    Backoff backoff;
    EXPECT_FALSE(backoff.sleep(Deadline::after(0.0)));
    EXPECT_TRUE(backoff.sleep(Deadline::after(10.0)));
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures)
{
    CircuitBreaker breaker(CircuitBreakerOptions{
        .failure_threshold = 3, .open_seconds = 1.0});
    double now = 100.0;
    EXPECT_TRUE(breaker.allowRequest(now));
    breaker.recordFailure(now);
    breaker.recordFailure(now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    breaker.recordFailure(now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_FALSE(breaker.allowRequest(now + 0.5));
}

TEST(CircuitBreakerTest, SuccessResetsFailureRun)
{
    CircuitBreaker breaker(CircuitBreakerOptions{
        .failure_threshold = 3, .open_seconds = 1.0});
    double now = 0.0;
    breaker.recordFailure(now);
    breaker.recordFailure(now);
    breaker.recordSuccess();
    EXPECT_EQ(breaker.consecutiveFailures(), 0u);
    breaker.recordFailure(now);
    breaker.recordFailure(now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbe)
{
    CircuitBreaker breaker(CircuitBreakerOptions{
        .failure_threshold = 1, .open_seconds = 1.0});
    breaker.recordFailure(10.0);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::Open);
    // Cooldown not elapsed: still ejected.
    EXPECT_FALSE(breaker.allowRequest(10.9));
    // Cooldown elapsed: exactly one probe goes through.
    EXPECT_TRUE(breaker.allowRequest(11.1));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
    EXPECT_FALSE(breaker.allowRequest(11.1));
}

TEST(CircuitBreakerTest, ProbeOutcomeClosesOrReopens)
{
    CircuitBreaker breaker(CircuitBreakerOptions{
        .failure_threshold = 1, .open_seconds = 1.0});
    breaker.recordFailure(0.0);
    ASSERT_TRUE(breaker.allowRequest(1.5)); // probe
    breaker.recordFailure(1.5);             // probe failed
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    // Cooldown restarted at the failed probe, not the original open.
    EXPECT_FALSE(breaker.allowRequest(2.0));
    ASSERT_TRUE(breaker.allowRequest(2.6)); // next probe
    breaker.recordSuccess();                // probe served
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(breaker.allowRequest(2.7));
}

TEST(CircuitBreakerTest, ZeroThresholdDisablesBreaker)
{
    CircuitBreaker breaker(CircuitBreakerOptions{
        .failure_threshold = 0, .open_seconds = 1.0});
    for (int i = 0; i < 100; ++i)
        breaker.recordFailure(0.0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(breaker.allowRequest(0.0));
}

} // namespace
} // namespace dsi
