/**
 * @file
 * Self-healing storage plane tests: per-replica health, block CRC
 * stamping, read-repair, the anti-entropy scrubber, re-replication
 * after permanent node death, graceful decommission, the background
 * healer thread, and the end-to-end durability invariant under chaos
 * (no data loss while concurrent permanent failures stay below the
 * replication factor).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/fault.h"
#include "dpp/session.h"
#include "dwrf/reader.h"
#include "dwrf/writer.h"
#include "storage/tectonic.h"
#include "test_fixtures.h"
#include "warehouse/datagen.h"

namespace dsi::storage {
namespace {

dwrf::Buffer
bytesOf(size_t n, uint8_t fill = 0x5a)
{
    return dwrf::Buffer(n, fill);
}

StorageOptions
healCluster(uint32_t nodes = 6)
{
    StorageOptions o;
    o.block_size = 1_MiB;
    o.replication = 3;
    o.hdd_nodes = nodes;
    return o;
}

/** Replicas of one block in a given health state. */
uint32_t
replicasIn(const TectonicCluster &cluster, const std::string &file,
           uint64_t block, ReplicaHealth health, uint32_t replication)
{
    uint32_t n = 0;
    for (uint32_t r = 0; r < replication; ++r)
        n += cluster.replicaHealth(file, block, r) == health;
    return n;
}

class StorageHealTest : public ::testing::Test
{
  protected:
    StorageHealTest()
    {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0x5EA1ULL);
    }
    ~StorageHealTest() override { FaultInjector::instance().reset(); }
};

// --- satellite: physicalBytes reports actual per-replica bytes ---

TEST_F(StorageHealTest, PhysicalBytesTracksActualReplicas)
{
    TectonicCluster cluster(healCluster());
    cluster.put("f", bytesOf(1_MiB + 300)); // 2 blocks
    EXPECT_EQ(cluster.physicalBytes(), 3 * (1_MiB + 300));

    // A permanent node death loses that node's replicas: physical
    // bytes drop by exactly the lost copies, not a derived estimate.
    NodeId victim = 0;
    for (const auto &n : cluster.nodes()) {
        if (cluster.nodeBlockCount(n.id()) > 0) {
            victim = n.id();
            break;
        }
    }
    ASSERT_GT(cluster.nodeBlockCount(victim), 0u);
    cluster.dieNode(victim);
    EXPECT_EQ(cluster.nodeBlockCount(victim), 0u);
    EXPECT_LT(cluster.physicalBytes(), 3 * (1_MiB + 300));

    // Re-replication restores full physical footprint.
    cluster.drainRepairQueue();
    EXPECT_EQ(cluster.physicalBytes(), 3 * (1_MiB + 300));
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
}

// --- placement: node spread ---

TEST_F(StorageHealTest, PlacementSpreadsReplicasAcrossDistinctNodes)
{
    TectonicCluster cluster(healCluster());
    cluster.put("f", bytesOf(512)); // one block, three replicas
    uint64_t total = 0;
    uint64_t max_per_node = 0;
    for (const auto &n : cluster.nodes()) {
        uint64_t c = cluster.nodeBlockCount(n.id());
        total += c;
        max_per_node = std::max(max_per_node, c);
    }
    EXPECT_EQ(total, 3u);
    EXPECT_EQ(max_per_node, 1u); // three distinct nodes
}

// --- read-repair ---

TEST_F(StorageHealTest, ReadRepairQuarantinesCorruptReplicaAndServes)
{
    TectonicCluster cluster(healCluster());
    dwrf::Buffer data = bytesOf(4096, 0x7e);
    cluster.put("f", data);
    cluster.corruptReplica("f", 0, 1); // latent bit-rot
    EXPECT_EQ(cluster.replicaHealth("f", 0, 1),
              ReplicaHealth::Corrupt);
    // Latent rot is not yet under-replication: the system doesn't
    // know the copy is bad.
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);

    // Enough reads to rotate across every replica: the read that
    // lands on the corrupt copy detects it, quarantines it, and is
    // served from a healthy replica — the caller never sees rot.
    auto src = cluster.open("f");
    dwrf::Buffer out;
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(src->readChecked(0, data.size(), out),
                  dwrf::IoStatus::Ok);
        EXPECT_EQ(out, data);
    }
    EXPECT_EQ(cluster.replicaHealth("f", 0, 1),
              ReplicaHealth::Quarantined);
    EXPECT_GE(cluster.metrics().counter("storage.read_repair"), 1.0);
    EXPECT_GE(cluster.metrics().counter("storage.replicas_quarantined"),
              1.0);
    EXPECT_EQ(cluster.underReplicatedBlocks(), 1u);
    EXPECT_GE(cluster.repairQueueDepth(), 1u);

    // Read-repair completes through the repair queue.
    EXPECT_EQ(cluster.drainRepairQueue(), 1u);
    EXPECT_EQ(cluster.replicaHealth("f", 0, 1), ReplicaHealth::Healthy);
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
    EXPECT_GE(cluster.metrics().counter("storage.repair.completed"),
              1.0);
    EXPECT_GE(cluster.metrics().counter("storage.repair.bytes"),
              4096.0);
}

TEST_F(StorageHealTest, ReplicaCorruptFaultRotsTheChosenReplica)
{
    TectonicCluster cluster(healCluster());
    dwrf::Buffer data = bytesOf(2048, 0x3c);
    cluster.put("f", data);
    auto src = cluster.open("f");
    dwrf::Buffer out;

    // The fault rots the replica the router chose; with verified
    // reads the same read detects it and fails over.
    ScopedFault rot(faults::kTectonicReplicaCorrupt,
                    FaultSpec{.trigger_hit = 1});
    ASSERT_EQ(src->readChecked(0, data.size(), out),
              dwrf::IoStatus::Ok);
    EXPECT_EQ(out, data);
    EXPECT_EQ(replicasIn(cluster, "f", 0, ReplicaHealth::Quarantined, 3),
              1u);
    EXPECT_GE(cluster.metrics().counter("storage.replicas_corrupted"),
              1.0);
    cluster.drainRepairQueue();
    EXPECT_EQ(replicasIn(cluster, "f", 0, ReplicaHealth::Healthy, 3),
              3u);
}

// --- scrubber ---

TEST_F(StorageHealTest, ScrubDetectsEveryInjectedCorruptReplica)
{
    TectonicCluster cluster(healCluster());
    cluster.put("a", bytesOf(2 * 1_MiB + 100)); // 3 blocks
    cluster.put("b", bytesOf(1_MiB));           // 1 block
    cluster.corruptReplica("a", 0, 0);
    cluster.corruptReplica("a", 2, 1);
    cluster.corruptReplica("b", 0, 2);

    cluster.resetAccounting();
    double busy_before = 0.0;
    for (const auto &n : cluster.nodes())
        busy_before += n.busySeconds();

    ScrubReport report = cluster.scrubOnce();
    EXPECT_EQ(report.blocks_scanned, 4u);
    EXPECT_EQ(report.corrupt_found, 3u); // 100% in one scan
    EXPECT_GT(report.replicas_verified, 0u);
    EXPECT_GT(report.bytes_verified, 0u);

    // Scrub IO is real device work: it shows up in node utilization
    // (and therefore in the power/HDD-gap accounting built on it).
    double busy_after = 0.0;
    for (const auto &n : cluster.nodes())
        busy_after += n.busySeconds();
    EXPECT_GT(busy_after, busy_before);
    EXPECT_GE(cluster.metrics().counter("storage.scrub.blocks"), 4.0);
    EXPECT_GE(cluster.metrics().counter("storage.scrub.repairs"), 3.0);
    EXPECT_EQ(cluster.underReplicatedBlocks(), 3u);

    // Repairs drain; a second scan comes back clean.
    cluster.drainRepairQueue();
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
    EXPECT_EQ(cluster.scrubOnce().corrupt_found, 0u);
}

// --- permanent death / re-replication ---

TEST_F(StorageHealTest, DieNodeReReplicatesEverythingWithSpread)
{
    TectonicCluster cluster(healCluster());
    cluster.put("f", bytesOf(3 * 1_MiB)); // 3 blocks x 3 replicas
    // Find a node hosting at least one replica and kill it.
    NodeId victim = 0;
    for (const auto &n : cluster.nodes()) {
        if (cluster.nodeBlockCount(n.id()) > 0) {
            victim = n.id();
            break;
        }
    }
    uint64_t hosted = cluster.nodeBlockCount(victim);
    ASSERT_GT(hosted, 0u);

    cluster.dieNode(victim);
    EXPECT_EQ(cluster.nodeBlockCount(victim), 0u);
    EXPECT_EQ(cluster.underReplicatedBlocks(), hosted);
    EXPECT_GE(cluster.metrics().counter("storage.replicas_lost"),
              static_cast<double>(hosted));
    EXPECT_EQ(cluster.liveNodes(), 5u);

    // Reads keep working off the surviving replicas meanwhile.
    auto src = cluster.open("f");
    dwrf::Buffer out;
    EXPECT_EQ(src->readChecked(0, 4096, out), dwrf::IoStatus::Ok);

    EXPECT_EQ(cluster.drainRepairQueue(), hosted);
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
    EXPECT_EQ(cluster.nodeBlockCount(victim), 0u); // dead stays empty
    // Node spread held: no block doubled up on a node (3 blocks x 3
    // replicas over 5 live nodes means no node exceeds one replica
    // per block, i.e. at most 3 total).
    for (const auto &n : cluster.nodes())
        EXPECT_LE(cluster.nodeBlockCount(n.id()), 3u);
    uint64_t total = 0;
    for (const auto &n : cluster.nodes())
        total += cluster.nodeBlockCount(n.id());
    EXPECT_EQ(total, 9u);
}

TEST_F(StorageHealTest, NodeDieFaultKillsServingNodeMidRead)
{
    TectonicCluster cluster(healCluster());
    dwrf::Buffer data = bytesOf(8192, 0x11);
    cluster.put("f", data);
    auto src = cluster.open("f");
    dwrf::Buffer out;

    // The node serving the chosen replica dies permanently mid-read;
    // the read itself survives by rotating to another replica, and
    // the death sweep enqueues re-replication.
    ScopedFault die(faults::kTectonicNodeDie,
                    FaultSpec{.trigger_hit = 1});
    ASSERT_EQ(src->readChecked(0, data.size(), out),
              dwrf::IoStatus::Ok);
    EXPECT_EQ(out, data);
    EXPECT_EQ(cluster.liveNodes(), 5u);
    EXPECT_GE(cluster.metrics().counter("storage.node_deaths"), 1.0);
    EXPECT_EQ(cluster.underReplicatedBlocks(), 1u);
    cluster.drainRepairQueue();
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
    EXPECT_EQ(replicasIn(cluster, "f", 0, ReplicaHealth::Healthy, 3),
              3u);
}

TEST_F(StorageHealTest, RepairStallsWithoutTargetsThenRecovers)
{
    // 3 nodes at replication 3: a death leaves nowhere to re-home the
    // lost replicas (spread forbids doubling up), so repair parks.
    TectonicCluster cluster(healCluster(3));
    cluster.put("f", bytesOf(1024));
    cluster.dieNode(2);
    EXPECT_EQ(cluster.drainRepairQueue(), 0u);
    EXPECT_GE(cluster.metrics().counter("storage.repair.stalled"),
              1.0);
    EXPECT_EQ(cluster.underReplicatedBlocks(), 1u);
    EXPECT_GE(cluster.repairQueueDepth(), 1u); // parked, not dropped

    // A replacement chassis joins (the dead node's slot recovers
    // empty); the parked task completes on the next drain.
    cluster.recoverNode(2);
    EXPECT_EQ(cluster.drainRepairQueue(), 1u);
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
    EXPECT_EQ(cluster.repairQueueDepth(), 0u);
}

// --- graceful decommission ---

TEST_F(StorageHealTest, DecommissionDrainsNodeThenRetiresIt)
{
    TectonicCluster cluster(healCluster());
    cluster.put("f", bytesOf(2 * 1_MiB + 7)); // 3 blocks
    NodeId victim = 0;
    for (const auto &n : cluster.nodes()) {
        if (cluster.nodeBlockCount(n.id()) > 0) {
            victim = n.id();
            break;
        }
    }
    uint64_t hosted = cluster.nodeBlockCount(victim);
    ASSERT_GT(hosted, 0u);

    cluster.decommissionNode(victim);
    EXPECT_TRUE(cluster.nodeDraining(victim));
    // Draining is not data loss: nothing is under-replicated and the
    // node keeps serving reads while its replicas move off.
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
    EXPECT_EQ(cluster.liveNodes(), 6u);

    EXPECT_EQ(cluster.drainRepairQueue(), hosted);
    EXPECT_EQ(cluster.nodeBlockCount(victim), 0u);
    EXPECT_EQ(cluster.liveNodes(), 5u); // retired after last replica
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);

    auto src = cluster.open("f");
    dwrf::Buffer out;
    EXPECT_EQ(src->readChecked(0, 1_MiB, out), dwrf::IoStatus::Ok);
}

// --- satellite: recoverNode resets breaker + rotation bias ---

TEST_F(StorageHealTest, RecoverNodeResetsBreakerState)
{
    StorageOptions o;
    o.block_size = 1_MiB;
    o.replication = 1;
    o.hdd_nodes = 1;
    TectonicCluster cluster(o);
    cluster.put("f", bytesOf(512));
    auto src = cluster.open("f");
    dwrf::Buffer out;
    {
        // Every replica IO fails until the node's breaker opens.
        ScopedFault err(faults::kTectonicReplicaError,
                        FaultSpec{.probability = 1.0});
        for (int i = 0; i < 6; ++i)
            src->readChecked(0, 512, out);
    }
    ASSERT_EQ(cluster.breakerState(0), CircuitBreaker::State::Open);

    // Recovery must clear the breaker: a recovered node is healthy
    // now, whatever its pre-failure history said.
    cluster.recoverNode(0);
    EXPECT_EQ(cluster.breakerState(0), CircuitBreaker::State::Closed);
    EXPECT_EQ(src->readChecked(0, 512, out), dwrf::IoStatus::Ok);
    EXPECT_EQ(cluster.breakerState(0), CircuitBreaker::State::Closed);
}

// --- satellite: accounting getters are synchronized ---

TEST_F(StorageHealTest, CacheCountersReadCleanlyUnderConcurrentReads)
{
    StorageOptions o = healCluster(4);
    o.cache_blocks = 4;
    TectonicCluster cluster(o);
    dwrf::Buffer data = bytesOf(2 * 1_MiB);
    cluster.put("f", data);

    // Writer threads hammer the cache while reader threads poll the
    // accounting getters — TSan-clean requires the getters to take
    // io_mutex_ like the updates they observe.
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            auto src = cluster.open("f");
            dwrf::Buffer out;
            while (!stop.load(std::memory_order_relaxed))
                src->readChecked((t % 2) * 1_MiB, 4096, out);
        });
    }
    uint64_t observations = 0;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                uint64_t hits = cluster.cacheHits();
                uint64_t misses = cluster.cacheMisses();
                double rate = cluster.cacheHitRate();
                (void)hits;
                (void)misses;
                EXPECT_GE(rate, 0.0);
                EXPECT_LE(rate, 1.0);
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
    for (auto &th : threads)
        th.join();
    (void)observations;
    EXPECT_GT(cluster.cacheHits() + cluster.cacheMisses(), 0u);
}

// --- background healer thread ---

TEST_F(StorageHealTest, HealerThreadScrubsAndRepairsInBackground)
{
    TectonicCluster cluster(healCluster());
    cluster.put("f", bytesOf(2 * 1_MiB));
    cluster.corruptReplica("f", 0, 0);
    cluster.corruptReplica("f", 1, 2);

    HealOptions heal;
    heal.scrub_bytes_per_sec = 1024.0 * 1024.0 * 1024.0;
    heal.idle_wait_s = 0.001;
    cluster.startHealer(heal);
    EXPECT_TRUE(cluster.healerRunning());
    cluster.startHealer(heal); // idempotent

    // The healer finds the rot by scrubbing and repairs it — no
    // foreground read ever touched the corrupt copies.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cluster.underReplicatedBlocks() == 0 &&
            replicasIn(cluster, "f", 0, ReplicaHealth::Healthy, 3) ==
                3 &&
            replicasIn(cluster, "f", 1, ReplicaHealth::Healthy, 3) ==
                3 &&
            cluster.metrics().counter("storage.scrub.repairs") >= 2.0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    cluster.stopHealer();
    EXPECT_FALSE(cluster.healerRunning());
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
    EXPECT_EQ(replicasIn(cluster, "f", 0, ReplicaHealth::Healthy, 3),
              3u);
    EXPECT_EQ(replicasIn(cluster, "f", 1, ReplicaHealth::Healthy, 3),
              3u);
    EXPECT_GE(cluster.metrics().counter("storage.scrub.repairs"), 2.0);
}

// --- satellite: DWRF checksum-mismatch retry path end to end ---

TEST_F(StorageHealTest, ChecksumRetryRotatesOffCorruptReplicaAndHeals)
{
    // verify_reads off: the cluster serves whatever the replica has,
    // and integrity falls to the DWRF stream checksums — whose
    // reportCorruption feedback must still quarantine the bad copy.
    StorageOptions so = healCluster(4);
    so.verify_reads = false;
    TectonicCluster cluster(so);

    warehouse::SchemaParams p;
    p.name = "heal";
    p.float_features = 8;
    p.sparse_features = 4;
    p.avg_length = 4;
    p.seed = 7;
    auto schema = warehouse::makeSchema(p);
    warehouse::RowGenerator gen(schema, 99);
    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 512;
    dwrf::FileWriter writer(wo);
    writer.appendRows(gen.batch(512)); // single stripe, single block
    dwrf::Buffer bytes = writer.finish();
    cluster.put("heal/f0", bytes);

    // Reference decode through a plain in-memory source.
    dwrf::MemorySource mem(bytes);
    dwrf::ReadOptions ro;
    dwrf::FileReader reference(mem, ro);
    ASSERT_TRUE(reference.valid());
    dwrf::RowBatch expected = reference.readStripe(0);

    auto src = cluster.open("heal/f0");
    dwrf::FileReader reader(*src, ro); // footer reads happen clean
    ASSERT_TRUE(reader.valid());

    // The next replica IO rots its own replica and serves the rotten
    // bytes (trigger_hit fires exactly once). The stream CRC catches
    // it, reportCorruption quarantines the replica, and the stripe
    // retry rotates onto a healthy copy.
    ScopedFault rot(faults::kTectonicReplicaCorrupt,
                    FaultSpec{.trigger_hit = 1});
    dwrf::RowBatch got;
    ASSERT_EQ(reader.readStripe(0, got), dwrf::ReadStatus::Ok);

    EXPECT_EQ(reader.stats().checksum_mismatches, 1u);
    EXPECT_EQ(reader.stats().stripe_retries, 1u);
    EXPECT_EQ(got.rows, expected.rows);
    EXPECT_EQ(got.labels, expected.labels);

    // The feedback loop fired: the rotten replica is out of rotation
    // with a repair queued, and the repair restores full health.
    EXPECT_EQ(replicasIn(cluster, "heal/f0", 0,
                         ReplicaHealth::Quarantined, 3),
              1u);
    EXPECT_GE(cluster.metrics().counter("storage.read_repair"), 1.0);
    EXPECT_GE(cluster.repairQueueDepth(), 1u);
    cluster.drainRepairQueue();
    EXPECT_EQ(replicasIn(cluster, "heal/f0", 0, ReplicaHealth::Healthy,
                         3),
              3u);
    EXPECT_EQ(cluster.underReplicatedBlocks(), 0u);
}

} // namespace
} // namespace dsi::storage

// --- end-to-end chaos: durability invariant under training load ---

namespace dsi::dpp {
namespace {

warehouse::SchemaParams
healChaosParams()
{
    warehouse::SchemaParams p;
    p.name = "healchaos";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 33;
    return p;
}

SessionSpec
healChaosSpec(const warehouse::MiniCorpus &mc)
{
    SessionSpec spec;
    spec.table = mc.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mc.schema, mc.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mc.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = 1024;
    return spec;
}

/** Counts every delivered batch by its replay-stable identity. */
struct DeliveryLog
{
    std::map<std::pair<uint64_t, RowId>, uint64_t> count;
    uint64_t rows = 0;

    void sinkBatch(const TensorBatch &t)
    {
        ++count[{t.split_id, t.first_row}];
        rows += t.data.rows;
    }

    void expectExactlyOnce(uint64_t expected_rows) const
    {
        for (const auto &[key, n] : count) {
            EXPECT_EQ(n, 1u)
                << "batch (split " << key.first << ", row "
                << key.second << ") delivered " << n << " times";
        }
        EXPECT_EQ(rows, expected_rows);
    }
};

TEST(StorageHealChaos, TrainingSurvivesDeathsAndRotThenFullyHeals)
{
    constexpr uint64_t kTotalRows = 2 * 4096;
    FaultInjector::instance().reset();
    FaultInjector::instance().seed(0x0DDF00DULL);

    // Six nodes at replication 3: two overlapping permanent deaths
    // still leave every block one healthy replica (node spread), and
    // four survivors are enough to restore full replication.
    storage::StorageOptions so;
    so.block_size = 256_KiB;
    so.replication = 3;
    so.hdd_nodes = 6;
    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 1024;
    auto mc = warehouse::buildMiniCorpus(healChaosParams(), 2, 4096,
                                         2048, wo, so);

    SessionOptions opts;
    opts.workers = 2;
    opts.clients = 2;
    // The session owns the background healer for the run.
    opts.self_heal.cluster = mc.cluster.get();
    opts.self_heal.heal.scrub_bytes_per_sec = 1024.0 * 1024.0 * 1024.0;
    opts.self_heal.heal.idle_wait_s = 0.001;
    InProcessSession session(*mc.warehouse, healChaosSpec(mc), opts);

    auto files = mc.cluster->listFiles();
    ASSERT_GE(files.size(), 3u);

    // Chaos script, driven off training progress: latent bit-rot on
    // three replicas early, then — once the healer has scrubbed the
    // rot away — two overlapping permanent node deaths mid-training.
    DeliveryLog log;
    uint64_t rows_seen = 0;
    bool corrupted = false;
    bool killed = false;
    auto sink = [&](ClientId, const TensorBatch &t) {
        log.sinkBatch(t);
        rows_seen += t.data.rows;
        if (!corrupted && rows_seen >= kTotalRows / 4) {
            corrupted = true;
            mc.cluster->corruptReplica(files[0], 0, 0);
            mc.cluster->corruptReplica(files[1], 0, 1);
            mc.cluster->corruptReplica(files[2], 0, 2);
        }
        if (corrupted && !killed && rows_seen >= kTotalRows / 2) {
            // Wait for the healer to finish with the rot so the two
            // deaths never overlap a still-quarantined third copy —
            // the invariant only promises no loss while concurrent
            // failures stay below the replication factor.
            auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(10);
            while (std::chrono::steady_clock::now() < deadline &&
                   (mc.cluster->underReplicatedBlocks() > 0 ||
                    mc.cluster->repairQueueDepth() > 0))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            killed = true;
            mc.cluster->dieNode(4);
            mc.cluster->dieNode(5); // overlapping: before re-replication
        }
    };
    auto result = session.run(sink);

    EXPECT_TRUE(corrupted);
    EXPECT_TRUE(killed);
    // Zero terminal Unavailable reads: every split delivered.
    EXPECT_EQ(result.splits_failed, 0u);
    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.rows_delivered, kTotalRows);

    // The plane returns to full replication: drain whatever the
    // healer had not finished when run() stopped it.
    mc.cluster->drainRepairQueue();
    EXPECT_EQ(mc.cluster->underReplicatedBlocks(), 0u);
    EXPECT_EQ(mc.cluster->repairQueueDepth(), 0u);
    EXPECT_EQ(mc.cluster->liveNodes(), 4u);
    EXPECT_EQ(mc.cluster->nodeBlockCount(4), 0u);
    EXPECT_EQ(mc.cluster->nodeBlockCount(5), 0u);

    const auto &m = mc.cluster->metrics();
    EXPECT_GE(m.counter("storage.replicas_lost"), 1.0);
    EXPECT_GE(m.counter("storage.repair.completed"), 1.0);
    EXPECT_GE(m.counter("storage.scrub.blocks"), 1.0); // healer ran
    EXPECT_EQ(m.gauge("storage.under_replicated_blocks"), 0.0);

    // Session metrics fold the cluster's self-healing counters in.
    EXPECT_GE(session.collectMetrics().counter(
                  "storage.repair.completed"),
              1.0);
    FaultInjector::instance().reset();
}

} // namespace
} // namespace dsi::dpp
