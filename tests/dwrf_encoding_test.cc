/**
 * @file
 * Round-trip and property tests for stream encodings, the LZ codec,
 * and the stream cipher.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dwrf/cipher.h"
#include "dwrf/compress.h"
#include "dwrf/encoding.h"

namespace dsi::dwrf {
namespace {

TEST(Varint, RoundTripEdgeValues)
{
    Buffer buf;
    std::vector<uint64_t> values{0, 1, 127, 128, 16383, 16384,
                                 UINT32_MAX, UINT64_MAX};
    for (uint64_t v : values)
        putVarint(buf, v);
    size_t pos = 0;
    for (uint64_t v : values) {
        uint64_t got;
        ASSERT_TRUE(getVarint(buf, pos, got));
        EXPECT_EQ(got, v);
    }
    EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncatedInputFails)
{
    Buffer buf;
    putVarint(buf, UINT64_MAX);
    buf.pop_back();
    size_t pos = 0;
    uint64_t v;
    EXPECT_FALSE(getVarint(buf, pos, v));
}

TEST(Zigzag, SignedRoundTrip)
{
    for (int64_t v : {0L, 1L, -1L, 63L, -64L, INT64_MAX, INT64_MIN}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
    // Small magnitudes map to small codes.
    EXPECT_LE(zigzagEncode(-3), 6u);
}

TEST(FixedWidth, RoundTrip)
{
    Buffer buf;
    putU32(buf, 0xdeadbeef);
    putU64(buf, 0x0123456789abcdefULL);
    putFloat(buf, 3.25f);
    size_t pos = 0;
    uint32_t a;
    uint64_t b;
    float f;
    ASSERT_TRUE(getU32(buf, pos, a));
    ASSERT_TRUE(getU64(buf, pos, b));
    ASSERT_TRUE(getFloat(buf, pos, f));
    EXPECT_EQ(a, 0xdeadbeefu);
    EXPECT_EQ(b, 0x0123456789abcdefULL);
    EXPECT_FLOAT_EQ(f, 3.25f);
}

TEST(Rle, ZeroRunsCompressWell)
{
    // Sparse-length streams are mostly zeros (absent features).
    std::vector<int64_t> lengths(10000, 0);
    lengths[17] = 25;
    lengths[9000] = 12;
    Buffer out;
    rleEncode(lengths, out);
    EXPECT_LT(out.size(), 100u);
    std::vector<int64_t> back;
    ASSERT_TRUE(rleDecode(out, back));
    EXPECT_EQ(back, lengths);
}

TEST(Rle, ArithmeticRunsDetected)
{
    std::vector<int64_t> v;
    for (int64_t i = 0; i < 1000; ++i)
        v.push_back(5 + 3 * i);
    Buffer out;
    rleEncode(v, out);
    EXPECT_LT(out.size(), 16u);
    std::vector<int64_t> back;
    ASSERT_TRUE(rleDecode(out, back));
    EXPECT_EQ(back, v);
}

TEST(Rle, RandomValuesRoundTrip)
{
    Rng rng(77);
    std::vector<int64_t> v;
    for (int i = 0; i < 5000; ++i)
        v.push_back(static_cast<int64_t>(rng.next()) >> rng.nextUint(40));
    Buffer out;
    rleEncode(v, out);
    std::vector<int64_t> back;
    ASSERT_TRUE(rleDecode(out, back));
    EXPECT_EQ(back, v);
}

TEST(Rle, EmptyInput)
{
    Buffer out;
    rleEncode({}, out);
    std::vector<int64_t> back;
    ASSERT_TRUE(rleDecode(out, back));
    EXPECT_TRUE(back.empty());
}

TEST(ValueEncoding, SkewedValuesUseDictionaryAndShrink)
{
    // Hashed categorical ids (8-byte magnitudes) drawn from a hot
    // Zipf set repeat heavily: dictionary beats direct varints.
    Rng rng(5);
    ZipfSampler zipf(4000, 1.2);
    std::vector<int64_t> values;
    for (int i = 0; i < 20000; ++i) {
        uint64_t rank = zipf.sample(rng);
        values.push_back(static_cast<int64_t>(
            rank * 0x9e3779b97f4a7c15ULL >> 1));
    }

    Buffer dict_encoded;
    encodeValues(values, dict_encoded);
    EXPECT_EQ(dict_encoded[0], 0x01); // dictionary tag

    Buffer direct;
    putVarint(direct, values.size());
    for (int64_t v : values)
        putSignedVarint(direct, v);
    EXPECT_LT(dict_encoded.size(), direct.size());

    std::vector<int64_t> back;
    ASSERT_TRUE(decodeValues(dict_encoded, back));
    EXPECT_EQ(back, values);
}

TEST(ValueEncoding, HighCardinalityFallsBackToDirect)
{
    // All-distinct small ids: a dictionary would only add overhead.
    std::vector<int64_t> values;
    for (int64_t i = 0; i < 10000; ++i)
        values.push_back(i * 7919);
    Buffer out;
    encodeValues(values, out);
    EXPECT_EQ(out[0], 0x00); // direct tag
    std::vector<int64_t> back;
    ASSERT_TRUE(decodeValues(out, back));
    EXPECT_EQ(back, values);
}

TEST(ValueEncoding, EmptyAndSingleValue)
{
    for (const std::vector<int64_t> &values :
         {std::vector<int64_t>{}, std::vector<int64_t>{-42}}) {
        Buffer out;
        encodeValues(values, out);
        std::vector<int64_t> back;
        ASSERT_TRUE(decodeValues(out, back));
        EXPECT_EQ(back, values);
    }
}

TEST(ValueEncoding, MalformedRejected)
{
    std::vector<int64_t> back;
    EXPECT_FALSE(decodeValues({}, back));
    Buffer bad_tag{0x07, 0x01};
    EXPECT_FALSE(decodeValues(bad_tag, back));
    // Dict index out of range: tag=1, n=1, d=1, dict={0}, index=5.
    Buffer oob{0x01, 0x01, 0x01, 0x00, 0x05};
    EXPECT_FALSE(decodeValues(oob, back));
    // Trailing garbage.
    Buffer trail{0x00, 0x01, 0x02, 0xff};
    EXPECT_FALSE(decodeValues(trail, back));
}

class CodecParamTest : public ::testing::TestWithParam<Codec>
{
};

TEST_P(CodecParamTest, EmptyRoundTrip)
{
    Buffer out;
    compress(GetParam(), {}, out);
    auto back = decompress(GetParam(), out);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST_P(CodecParamTest, RandomBytesRoundTrip)
{
    Rng rng(123);
    for (size_t len : {1u, 2u, 100u, 4096u, 100000u}) {
        Buffer in(len);
        for (auto &b : in)
            b = static_cast<uint8_t>(rng.next());
        Buffer out;
        compress(GetParam(), in, out);
        auto back = decompress(GetParam(), out);
        ASSERT_TRUE(back.has_value()) << "len=" << len;
        EXPECT_EQ(*back, in) << "len=" << len;
    }
}

TEST_P(CodecParamTest, RepetitiveBytesRoundTrip)
{
    Buffer in;
    for (int i = 0; i < 3000; ++i) {
        const char *s = "feature_stream_payload_";
        in.insert(in.end(), s, s + 24);
    }
    Buffer out;
    compress(GetParam(), in, out);
    auto back = decompress(GetParam(), out);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, in);
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecParamTest,
                         ::testing::Values(Codec::None, Codec::Lz));

TEST(Lz, CompressesRedundantData)
{
    Buffer in;
    for (int i = 0; i < 1000; ++i) {
        const char *s = "abcdefgh";
        in.insert(in.end(), s, s + 8);
    }
    Buffer out;
    compress(Codec::Lz, in, out);
    EXPECT_LT(out.size(), in.size() / 10);
}

TEST(Lz, OverlappingMatchesDecodeCorrectly)
{
    // 'aaaa...' forces self-overlapping match copies.
    Buffer in(5000, 'a');
    Buffer out;
    compress(Codec::Lz, in, out);
    EXPECT_LT(out.size(), 64u);
    auto back = decompress(Codec::Lz, out);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, in);
}

TEST(Lz, MalformedInputRejected)
{
    Buffer junk{0xff, 0xff, 0xff, 0xff, 0x01, 0x02};
    auto out = decompress(Codec::Lz, junk);
    EXPECT_FALSE(out.has_value());
}

TEST(Cipher, ApplyTwiceRestores)
{
    Rng rng(9);
    Buffer data(999);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.next());
    Buffer orig = data;
    StreamCipher c(0x1234);
    c.apply(42, data);
    EXPECT_NE(data, orig);
    c.apply(42, data);
    EXPECT_EQ(data, orig);
}

TEST(Cipher, DifferentNoncesDiffer)
{
    Buffer a(256, 0), b(256, 0);
    StreamCipher c(0x1234);
    c.apply(1, a);
    c.apply(2, b);
    EXPECT_NE(a, b);
}

TEST(Cipher, DifferentKeysDiffer)
{
    Buffer a(256, 0), b(256, 0);
    StreamCipher c1(0x1111), c2(0x2222);
    c1.apply(7, a);
    c2.apply(7, b);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace dsi::dwrf
