/**
 * @file
 * Round-trip and property tests for stream encodings, the LZ codec,
 * and the stream cipher.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dwrf/cipher.h"
#include "dwrf/compress.h"
#include "dwrf/encoding.h"
#include "warehouse/datagen.h"

namespace dsi::dwrf {
namespace {

TEST(Varint, RoundTripEdgeValues)
{
    Buffer buf;
    std::vector<uint64_t> values{0, 1, 127, 128, 16383, 16384,
                                 UINT32_MAX, UINT64_MAX};
    for (uint64_t v : values)
        putVarint(buf, v);
    size_t pos = 0;
    for (uint64_t v : values) {
        uint64_t got;
        ASSERT_TRUE(getVarint(buf, pos, got));
        EXPECT_EQ(got, v);
    }
    EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncatedInputFails)
{
    Buffer buf;
    putVarint(buf, UINT64_MAX);
    buf.pop_back();
    size_t pos = 0;
    uint64_t v;
    EXPECT_FALSE(getVarint(buf, pos, v));
}

TEST(Zigzag, SignedRoundTrip)
{
    for (int64_t v : {0L, 1L, -1L, 63L, -64L, INT64_MAX, INT64_MIN}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
    // Small magnitudes map to small codes.
    EXPECT_LE(zigzagEncode(-3), 6u);
}

TEST(FixedWidth, RoundTrip)
{
    Buffer buf;
    putU32(buf, 0xdeadbeef);
    putU64(buf, 0x0123456789abcdefULL);
    putFloat(buf, 3.25f);
    size_t pos = 0;
    uint32_t a;
    uint64_t b;
    float f;
    ASSERT_TRUE(getU32(buf, pos, a));
    ASSERT_TRUE(getU64(buf, pos, b));
    ASSERT_TRUE(getFloat(buf, pos, f));
    EXPECT_EQ(a, 0xdeadbeefu);
    EXPECT_EQ(b, 0x0123456789abcdefULL);
    EXPECT_FLOAT_EQ(f, 3.25f);
}

TEST(Rle, ZeroRunsCompressWell)
{
    // Sparse-length streams are mostly zeros (absent features).
    std::vector<int64_t> lengths(10000, 0);
    lengths[17] = 25;
    lengths[9000] = 12;
    Buffer out;
    rleEncode(lengths, out);
    EXPECT_LT(out.size(), 100u);
    std::vector<int64_t> back;
    ASSERT_TRUE(rleDecode(out, back));
    EXPECT_EQ(back, lengths);
}

TEST(Rle, ArithmeticRunsDetected)
{
    std::vector<int64_t> v;
    for (int64_t i = 0; i < 1000; ++i)
        v.push_back(5 + 3 * i);
    Buffer out;
    rleEncode(v, out);
    EXPECT_LT(out.size(), 16u);
    std::vector<int64_t> back;
    ASSERT_TRUE(rleDecode(out, back));
    EXPECT_EQ(back, v);
}

TEST(Rle, RandomValuesRoundTrip)
{
    Rng rng(77);
    std::vector<int64_t> v;
    for (int i = 0; i < 5000; ++i)
        v.push_back(static_cast<int64_t>(rng.next()) >> rng.nextUint(40));
    Buffer out;
    rleEncode(v, out);
    std::vector<int64_t> back;
    ASSERT_TRUE(rleDecode(out, back));
    EXPECT_EQ(back, v);
}

TEST(Rle, EmptyInput)
{
    Buffer out;
    rleEncode({}, out);
    std::vector<int64_t> back;
    ASSERT_TRUE(rleDecode(out, back));
    EXPECT_TRUE(back.empty());
}

TEST(ValueEncoding, SkewedValuesUseDictionaryAndShrink)
{
    // Hashed categorical ids (8-byte magnitudes) drawn from a hot
    // Zipf set repeat heavily: dictionary beats direct varints.
    std::vector<int64_t> values =
        warehouse::zipfSkewedIds(20000, 5);

    Buffer dict_encoded;
    encodeValues(values, dict_encoded);
    EXPECT_EQ(dict_encoded[0], 0x01); // dictionary tag

    Buffer direct;
    putVarint(direct, values.size());
    for (int64_t v : values)
        putSignedVarint(direct, v);
    EXPECT_LT(dict_encoded.size(), direct.size());

    std::vector<int64_t> back;
    ASSERT_TRUE(decodeValues(dict_encoded, back));
    EXPECT_EQ(back, values);
}

TEST(ValueEncoding, HighCardinalityFallsBackToDirect)
{
    // All-distinct small ids: a dictionary would only add overhead.
    std::vector<int64_t> values;
    for (int64_t i = 0; i < 10000; ++i)
        values.push_back(i * 7919);
    Buffer out;
    encodeValues(values, out);
    EXPECT_EQ(out[0], 0x00); // direct tag
    std::vector<int64_t> back;
    ASSERT_TRUE(decodeValues(out, back));
    EXPECT_EQ(back, values);
}

TEST(ValueEncoding, EmptyAndSingleValue)
{
    for (const std::vector<int64_t> &values :
         {std::vector<int64_t>{}, std::vector<int64_t>{-42}}) {
        Buffer out;
        encodeValues(values, out);
        std::vector<int64_t> back;
        ASSERT_TRUE(decodeValues(out, back));
        EXPECT_EQ(back, values);
    }
}

TEST(ValueEncoding, MalformedRejected)
{
    std::vector<int64_t> back;
    EXPECT_FALSE(decodeValues({}, back));
    Buffer bad_tag{0x07, 0x01};
    EXPECT_FALSE(decodeValues(bad_tag, back));
    // Dict index out of range: tag=1, n=1, d=1, dict={0}, index=5.
    Buffer oob{0x01, 0x01, 0x01, 0x00, 0x05};
    EXPECT_FALSE(decodeValues(oob, back));
    // Trailing garbage.
    Buffer trail{0x00, 0x01, 0x02, 0xff};
    EXPECT_FALSE(decodeValues(trail, back));
}

// -------------------------------------------------------------------
// Bulk/scalar differential tests: the bulk kernels (getVarintBlock,
// getSignedVarintBlock, rleDecode, decodeValues) promise bit-identical
// accept/reject and output to their scalar references on EVERY input,
// including truncated, overlong, and adversarial streams. These tests
// are the proof backing BENCH_decode.json: the speedups come from the
// same answers computed faster.

/**
 * Reference decode: scalar getVarint in a loop, up to `max_values`.
 * The cursor is restored to the start of a failed varint so it lands
 * exactly where the block decoders leave `pos`.
 */
std::pair<std::vector<uint64_t>, size_t>
scalarVarintRef(ByteSpan in, size_t max_values)
{
    std::vector<uint64_t> values;
    size_t pos = 0;
    while (values.size() < max_values) {
        size_t before = pos;
        uint64_t v;
        if (!getVarint(in, pos, v)) {
            pos = before;
            break;
        }
        values.push_back(v);
    }
    return {values, pos};
}

void
expectVarintBlockMatchesScalar(const Buffer &stream, size_t capacity)
{
    auto [want, want_pos] = scalarVarintRef(stream, capacity);
    std::vector<uint64_t> got(capacity);
    size_t pos = 0;
    size_t n = getVarintBlock(stream, pos, got);
    ASSERT_EQ(n, want.size());
    EXPECT_EQ(pos, want_pos);
    got.resize(n);
    EXPECT_EQ(got, want);
}

TEST(BulkDifferential, VarintBlockOnRandomStreams)
{
    Rng rng(2024);
    for (int iter = 0; iter < 50; ++iter) {
        Buffer stream;
        size_t count = rng.nextUint(200);
        for (size_t i = 0; i < count; ++i) {
            // Mix magnitudes so 1-byte, 2-byte, and long forms all
            // appear and the speculative path keeps realigning.
            int bits = static_cast<int>(rng.nextUint(64)) + 1;
            putVarint(stream, rng.next() >> (64 - bits));
        }
        expectVarintBlockMatchesScalar(stream, count);
        expectVarintBlockMatchesScalar(stream, count / 2); // short out
        expectVarintBlockMatchesScalar(stream, count + 8); // starved
    }
}

TEST(BulkDifferential, VarintBlockOnTruncatedStreams)
{
    Buffer stream;
    for (uint64_t v : std::vector<uint64_t>{0, 127, 128, 16384,
                                            UINT64_MAX}) {
        putVarint(stream, v);
    }
    // Cut the stream at every byte boundary; block and scalar must
    // agree on how many values survive and where the cursor stops.
    for (size_t cut = 0; cut <= stream.size(); ++cut) {
        Buffer prefix(stream.begin(), stream.begin() + cut);
        expectVarintBlockMatchesScalar(prefix, 16);
    }
}

TEST(BulkDifferential, VarintBlockOnAdversarialForms)
{
    // Overlong-but-terminating, unterminated, and >10-byte forms.
    std::vector<Buffer> streams = {
        {0x80, 0x00},                               // overlong zero
        {0x80, 0x80, 0x00},                         // longer overlong
        {0x80},                                     // unterminated
        {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
        Buffer(10, 0xff),                           // never terminates
        Buffer(12, 0x80),                           // ditto, longer
    };
    // And the same forms embedded mid-stream after short varints.
    for (size_t i = 0, n = streams.size(); i < n; ++i) {
        Buffer embedded{0x05, 0x90, 0x03};
        for (uint8_t b : streams[i])
            embedded.push_back(b);
        streams.push_back(embedded);
    }
    for (const Buffer &s : streams)
        expectVarintBlockMatchesScalar(s, 16);
}

TEST(BulkDifferential, SignedVarintBlockMatchesScalar)
{
    Rng rng(77);
    Buffer stream;
    std::vector<int64_t> want;
    for (int i = 0; i < 500; ++i) {
        auto v = static_cast<int64_t>(rng.next() >>
                                      rng.nextUint(63));
        if (rng.nextUint(2) == 0)
            v = -v;
        want.push_back(v);
        putSignedVarint(stream, v);
    }
    std::vector<int64_t> got(want.size());
    size_t pos = 0;
    ASSERT_EQ(getSignedVarintBlock(stream, pos, got), want.size());
    EXPECT_EQ(pos, stream.size());
    EXPECT_EQ(got, want);
}

TEST(BulkDifferential, RleMatchesScalarOnRunBoundaries)
{
    // Shapes straddling every kernel threshold: minimum runs (3),
    // runs and literal groups around the 16-value inline cutoff, zero
    // runs, arithmetic runs, and a trailing partial group.
    std::vector<std::vector<int64_t>> shapes;
    for (size_t run : {3u, 15u, 16u, 17u, 100u}) {
        for (int64_t base : {0ll, 7ll, -3ll}) {
            for (int64_t delta : {0ll, 1ll, -2ll}) {
                std::vector<int64_t> vals;
                int64_t v = base;
                for (size_t k = 0; k < run; ++k) {
                    vals.push_back(v);
                    v += delta;
                }
                vals.push_back(999); // literal tail after the run
                shapes.push_back(std::move(vals));
            }
        }
    }
    Rng rng(5150);
    for (size_t lits : {1u, 2u, 15u, 16u, 17u, 64u}) {
        std::vector<int64_t> vals;
        for (size_t k = 0; k < lits; ++k)
            vals.push_back(static_cast<int64_t>(rng.next() >> 40) -
                           (1 << 23));
        shapes.push_back(std::move(vals));
    }
    for (const auto &vals : shapes) {
        Buffer enc;
        rleEncode(vals, enc);
        std::vector<int64_t> scalar, bulk;
        ASSERT_TRUE(rleDecodeScalar(enc, scalar));
        ASSERT_TRUE(rleDecode(enc, bulk));
        EXPECT_EQ(scalar, vals);
        EXPECT_EQ(bulk, vals);
    }
}

TEST(BulkDifferential, RleMatchesScalarOnCorruptStreams)
{
    std::vector<int64_t> vals;
    Rng rng(31337);
    for (int i = 0; i < 200; ++i)
        vals.push_back(rng.nextUint(100) < 70
                           ? 0
                           : static_cast<int64_t>(rng.nextUint(50)));
    Buffer enc;
    rleEncode(vals, enc);
    // Truncations and single-byte mutations: both decoders must agree
    // on accept/reject, and on the values whenever both accept.
    for (size_t cut = 0; cut < enc.size(); cut += 3) {
        Buffer prefix(enc.begin(), enc.begin() + cut);
        std::vector<int64_t> scalar, bulk;
        bool sok = rleDecodeScalar(prefix, scalar);
        bool bok = rleDecode(prefix, bulk);
        ASSERT_EQ(sok, bok) << "cut=" << cut;
        if (sok) {
            EXPECT_EQ(scalar, bulk) << "cut=" << cut;
        }
    }
    for (size_t flip = 0; flip < enc.size(); flip += 2) {
        Buffer bad = enc;
        bad[flip] ^= 0x41;
        std::vector<int64_t> scalar, bulk;
        bool sok = rleDecodeScalar(bad, scalar);
        bool bok = rleDecode(bad, bulk);
        ASSERT_EQ(sok, bok) << "flip=" << flip;
        if (sok) {
            EXPECT_EQ(scalar, bulk) << "flip=" << flip;
        }
    }
}

void
expectDecodeValuesAgree(const Buffer &stream)
{
    std::vector<int64_t> scalar, bulk;
    bool sok = decodeValuesScalar(stream, scalar);
    bool bok = decodeValues(stream, bulk);
    ASSERT_EQ(sok, bok);
    if (sok) {
        EXPECT_EQ(scalar, bulk);
    }
}

TEST(BulkDifferential, DecodeValuesOnDictAndDirectStreams)
{
    Rng rng(9090);
    // Dict shape: heavy duplication; direct shape: unique large ids.
    for (bool dict : {true, false}) {
        std::vector<int64_t> vals;
        for (int i = 0; i < 3000; ++i) {
            vals.push_back(
                dict ? static_cast<int64_t>(rng.nextUint(300))
                     : static_cast<int64_t>(rng.next() >> 1));
        }
        Buffer enc;
        encodeValues(vals, enc);
        std::vector<int64_t> back;
        ASSERT_TRUE(decodeValues(enc, back));
        EXPECT_EQ(back, vals);
        expectDecodeValuesAgree(enc);
        for (size_t cut = 0; cut < enc.size(); cut += 7) {
            Buffer prefix(enc.begin(), enc.begin() + cut);
            expectDecodeValuesAgree(prefix);
        }
        for (size_t flip = 0; flip < enc.size(); flip += 5) {
            Buffer bad = enc;
            bad[flip] ^= 0x81;
            expectDecodeValuesAgree(bad);
        }
    }
}

TEST(BulkDifferential, DecodeValuesOnOverlongIndices)
{
    // Hand-built dict stream using overlong index encodings the
    // encoder never emits but the scalar decoder accepts: tag=1, n=3,
    // d=2, dict={-1, 3}, indices {1, overlong 0, overlong 1}.
    Buffer s{0x01, 0x03, 0x02};
    putSignedVarint(s, -1);
    putSignedVarint(s, 3);
    s.push_back(0x01);             // index 1
    for (uint8_t b : {0x80, 0x00})             // index 0, 2-byte form
        s.push_back(b);
    for (uint8_t b : {0x81, 0x80, 0x00})       // index 1, 3-byte form
        s.push_back(b);
    std::vector<int64_t> scalar, bulk;
    ASSERT_TRUE(decodeValuesScalar(s, scalar));
    ASSERT_TRUE(decodeValues(s, bulk));
    EXPECT_EQ(scalar, (std::vector<int64_t>{3, -1, 3}));
    EXPECT_EQ(bulk, scalar);
}

TEST(BulkDifferential, EncodeBulkDecodeRoundTripProperty)
{
    // Property: for arbitrary value distributions, encode ->
    // bulk-decode is the identity (and the scalar decoder agrees).
    Rng rng(60601);
    for (int iter = 0; iter < 40; ++iter) {
        size_t n = rng.nextUint(2000);
        uint32_t mode = static_cast<uint32_t>(rng.nextUint(4));
        std::vector<int64_t> vals;
        vals.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            switch (mode) {
              case 0: // constant
                vals.push_back(42);
                break;
              case 1: // small dup-heavy (dict)
                vals.push_back(
                    static_cast<int64_t>(rng.nextUint(64)));
                break;
              case 2: // hashed ids (dict, large values)
                vals.push_back(static_cast<int64_t>(
                    rng.nextUint(500) * 0x9e3779b97f4a7c15ULL >> 1));
                break;
              default: // unique (direct), signed
                vals.push_back(static_cast<int64_t>(rng.next()));
                break;
            }
        }
        Buffer enc;
        encodeValues(vals, enc);
        std::vector<int64_t> bulk, scalar;
        ASSERT_TRUE(decodeValues(enc, bulk));
        ASSERT_TRUE(decodeValuesScalar(enc, scalar));
        EXPECT_EQ(bulk, vals);
        EXPECT_EQ(scalar, vals);

        Buffer renc;
        rleEncode(vals, renc);
        std::vector<int64_t> rbulk, rscalar;
        ASSERT_TRUE(rleDecode(renc, rbulk));
        ASSERT_TRUE(rleDecodeScalar(renc, rscalar));
        EXPECT_EQ(rbulk, vals);
        EXPECT_EQ(rscalar, vals);
    }
}

class CodecParamTest : public ::testing::TestWithParam<Codec>
{
};

TEST_P(CodecParamTest, EmptyRoundTrip)
{
    Buffer out;
    compress(GetParam(), {}, out);
    auto back = decompress(GetParam(), out);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST_P(CodecParamTest, RandomBytesRoundTrip)
{
    Rng rng(123);
    for (size_t len : {1u, 2u, 100u, 4096u, 100000u}) {
        Buffer in(len);
        for (auto &b : in)
            b = static_cast<uint8_t>(rng.next());
        Buffer out;
        compress(GetParam(), in, out);
        auto back = decompress(GetParam(), out);
        ASSERT_TRUE(back.has_value()) << "len=" << len;
        EXPECT_EQ(*back, in) << "len=" << len;
    }
}

TEST_P(CodecParamTest, RepetitiveBytesRoundTrip)
{
    Buffer in;
    for (int i = 0; i < 3000; ++i) {
        const char *s = "feature_stream_payload_";
        in.insert(in.end(), s, s + 24);
    }
    Buffer out;
    compress(GetParam(), in, out);
    auto back = decompress(GetParam(), out);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, in);
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecParamTest,
                         ::testing::Values(Codec::None, Codec::Lz));

TEST(Lz, CompressesRedundantData)
{
    Buffer in;
    for (int i = 0; i < 1000; ++i) {
        const char *s = "abcdefgh";
        in.insert(in.end(), s, s + 8);
    }
    Buffer out;
    compress(Codec::Lz, in, out);
    EXPECT_LT(out.size(), in.size() / 10);
}

TEST(Lz, OverlappingMatchesDecodeCorrectly)
{
    // 'aaaa...' forces self-overlapping match copies.
    Buffer in(5000, 'a');
    Buffer out;
    compress(Codec::Lz, in, out);
    EXPECT_LT(out.size(), 64u);
    auto back = decompress(Codec::Lz, out);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, in);
}

TEST(Lz, MalformedInputRejected)
{
    Buffer junk{0xff, 0xff, 0xff, 0xff, 0x01, 0x02};
    auto out = decompress(Codec::Lz, junk);
    EXPECT_FALSE(out.has_value());
}

TEST(Cipher, ApplyTwiceRestores)
{
    Rng rng(9);
    Buffer data(999);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.next());
    Buffer orig = data;
    StreamCipher c(0x1234);
    c.apply(42, data);
    EXPECT_NE(data, orig);
    c.apply(42, data);
    EXPECT_EQ(data, orig);
}

TEST(Cipher, DifferentNoncesDiffer)
{
    Buffer a(256, 0), b(256, 0);
    StreamCipher c(0x1234);
    c.apply(1, a);
    c.apply(2, b);
    EXPECT_NE(a, b);
}

TEST(Cipher, DifferentKeysDiffer)
{
    Buffer a(256, 0), b(256, 0);
    StreamCipher c1(0x1111), c2(0x2222);
    c1.apply(7, a);
    c2.apply(7, b);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace dsi::dwrf
