/**
 * @file
 * Cross-module edge-case tests: boundary inputs, error paths, and
 * invariants not covered by the per-module suites.
 */

#include <gtest/gtest.h>

#include "dpp/session.h"
#include "dwrf/row.h"
#include "sim/resource.h"
#include "storage/tectonic.h"
#include "test_fixtures.h"
#include "transforms/ops.h"

namespace dsi {
namespace {

TEST(SliceBatch, TailAndOutOfRange)
{
    std::vector<dwrf::Row> rows(10);
    for (size_t i = 0; i < rows.size(); ++i) {
        rows[i].label = static_cast<float>(i);
        dwrf::SparseFeature s;
        s.id = 1;
        s.values = {static_cast<int64_t>(i)};
        rows[i].sparse.push_back(s);
    }
    auto batch = dwrf::batchFromRows(rows);

    auto tail = dwrf::sliceBatch(batch, 8, 100); // clamps to 2
    EXPECT_EQ(tail.rows, 2u);
    EXPECT_FLOAT_EQ(tail.labels[0], 8.0f);
    EXPECT_EQ(tail.sparse[0].values[0], 8);

    auto empty = dwrf::sliceBatch(batch, 10, 5);
    EXPECT_EQ(empty.rows, 0u);
    auto beyond = dwrf::sliceBatch(batch, 50, 5);
    EXPECT_EQ(beyond.rows, 0u);
}

TEST(SliceBatch, ScoresSliceWithValues)
{
    std::vector<dwrf::Row> rows(4);
    for (size_t i = 0; i < rows.size(); ++i) {
        dwrf::SparseFeature s;
        s.id = 2;
        s.values = {1, 2};
        s.scores = {0.5f, 0.25f};
        rows[i].sparse.push_back(s);
    }
    auto batch = dwrf::batchFromRows(rows);
    auto slice = dwrf::sliceBatch(batch, 1, 2);
    EXPECT_EQ(slice.sparse[0].values.size(), 4u);
    EXPECT_EQ(slice.sparse[0].scores.size(), 4u);
}

TEST(RateResource, ReleaseAndResetClampAtZero)
{
    sim::RateResource r("x", 10.0);
    r.offer(4.0);
    r.release(6.0); // over-release clamps
    EXPECT_DOUBLE_EQ(r.offered(), 0.0);
    r.offer(5.0);
    r.resetOffered();
    EXPECT_DOUBLE_EQ(r.utilization(), 0.0);
}

TEST(Tectonic, MissingFileOperationsDie)
{
    storage::TectonicCluster cluster(storage::StorageOptions{});
    EXPECT_DEATH(cluster.open("nope"), "missing file");
    EXPECT_DEATH(cluster.fileSize("nope"), "missing file");
    EXPECT_DEATH(cluster.append("nope", dwrf::Buffer{1}),
                 "missing file");
}

TEST(Tectonic, ReadPastEofDies)
{
    storage::TectonicCluster cluster(storage::StorageOptions{});
    cluster.put("f", dwrf::Buffer(100, 1));
    auto src = cluster.open("f");
    dwrf::Buffer out;
    EXPECT_DEATH(src->read(90, 20, out), "past EOF");
}

TEST(Tectonic, EmptyFileIsValid)
{
    storage::TectonicCluster cluster(storage::StorageOptions{});
    cluster.create("empty");
    EXPECT_EQ(cluster.fileSize("empty"), 0u);
    auto src = cluster.open("empty");
    EXPECT_EQ(src->size(), 0u);
}

TEST(Transforms, CartesianWithEmptySideProducesNothing)
{
    std::vector<dwrf::Row> rows(2);
    dwrf::SparseFeature a;
    a.id = 1;
    a.values = {1, 2, 3};
    rows[0].sparse.push_back(a); // row 0 lacks feature 2
    auto batch = dwrf::batchFromRows(rows);

    transforms::TransformSpec s;
    s.kind = transforms::OpKind::Cartesian;
    s.inputs = {1, 2};
    s.output = 100;
    transforms::TransformStats stats;
    transforms::compileTransform(s)->apply(batch, stats);
    // Feature 2 never appears: op tolerates the missing input.
    EXPECT_EQ(batch.findSparse(100), nullptr);
}

TEST(Transforms, NGramShorterThanNIsEmpty)
{
    std::vector<dwrf::Row> rows(1);
    dwrf::SparseFeature a;
    a.id = 1;
    a.values = {7};
    rows[0].sparse.push_back(a);
    auto batch = dwrf::batchFromRows(rows);

    transforms::TransformSpec s;
    s.kind = transforms::OpKind::NGram;
    s.inputs = {1};
    s.output = 100;
    s.u0 = 3;
    transforms::TransformStats stats;
    transforms::compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    ASSERT_NE(out, nullptr);
    EXPECT_TRUE(out->values.empty());
}

TEST(Transforms, SamplingZeroAndOneKeepRates)
{
    std::vector<dwrf::Row> rows(100);
    auto batch_all = dwrf::batchFromRows(rows);
    auto batch_none = batch_all;

    transforms::TransformSpec keep_all;
    keep_all.kind = transforms::OpKind::Sampling;
    keep_all.p0 = 1.0;
    transforms::TransformStats stats;
    transforms::compileTransform(keep_all)->apply(batch_all, stats);
    EXPECT_EQ(batch_all.rows, 100u);

    transforms::TransformSpec keep_none = keep_all;
    keep_none.p0 = 0.0;
    transforms::compileTransform(keep_none)->apply(batch_none, stats);
    EXPECT_EQ(batch_none.rows, 0u);
}

TEST(Projection, RequestMoreThanAvailableClamps)
{
    warehouse::SchemaParams p;
    p.float_features = 5;
    p.sparse_features = 3;
    auto schema = warehouse::makeSchema(p);
    auto pop = warehouse::featurePopularity(schema, 1.0, 1);
    auto proj = warehouse::chooseProjection(schema, pop, 50, 50, 1);
    EXPECT_EQ(proj.size(), 8u);
}

TEST(Session, MissingTableDies)
{
    storage::TectonicCluster cluster(storage::StorageOptions{});
    warehouse::Warehouse wh(cluster);
    dpp::SessionSpec spec;
    spec.table = "ghost";
    EXPECT_DEATH(dpp::Master(wh, spec), "not found");
}

TEST(Session, EmptyPartitionListCompletesTrivially)
{
    warehouse::SchemaParams p;
    p.name = "t";
    p.float_features = 4;
    p.sparse_features = 2;
    auto mw = testing::makeMiniWarehouse(p, 1, 128, 128);
    dpp::SessionSpec spec;
    spec.table = "t";
    spec.partitions = {};
    spec.setTransforms(transforms::TransformGraph{});
    dpp::InProcessSession session(*mw.warehouse, spec);
    auto result = session.run();
    EXPECT_EQ(result.rows_delivered, 0u);
    EXPECT_EQ(result.tensors_delivered, 0u);
}

TEST(Session, NoTransformGraphStillStreams)
{
    warehouse::SchemaParams p;
    p.name = "t";
    p.float_features = 4;
    p.sparse_features = 2;
    auto mw = testing::makeMiniWarehouse(p, 1, 256, 256);
    dpp::SessionSpec spec;
    spec.table = "t";
    spec.partitions = {0};
    spec.batch_size = 64;
    spec.setTransforms(transforms::TransformGraph{}); // identity
    dpp::InProcessSession session(*mw.warehouse, spec);
    auto result = session.run();
    EXPECT_EQ(result.rows_delivered, 256u);
    EXPECT_EQ(result.transform_stats.values_produced, 0u);
}

TEST(Types, FormatBytesLargeValues)
{
    EXPECT_EQ(formatBytes(1.5e15), "1.5P");
    EXPECT_EQ(formatBytes(0), "0");
}

TEST(LogHistogram, RenderContainsBuckets)
{
    LogHistogram h;
    h.add(3);
    h.add(1000, 5);
    auto text = h.render("io sizes");
    EXPECT_NE(text.find("io sizes"), std::string::npos);
    EXPECT_NE(text.find("#"), std::string::npos);
    EXPECT_NE(text.find("n=6"), std::string::npos);
}

} // namespace
} // namespace dsi
