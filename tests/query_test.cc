/**
 * @file
 * Tests for the analytics query engine: counts, label rates, feature
 * statistics, top-K, and the selective-read guarantee (a per-feature
 * query reads a small fraction of the table bytes).
 */

#include <gtest/gtest.h>

#include "test_fixtures.h"
#include "warehouse/query.h"

namespace dsi::warehouse {
namespace {

class QueryTest : public ::testing::Test
{
  protected:
    static SchemaParams
    params()
    {
        SchemaParams p;
        p.name = "q";
        p.float_features = 30;
        p.sparse_features = 15;
        p.coverage_u = 0.5;
        p.avg_length = 6;
        p.seed = 91;
        return p;
    }

    QueryTest()
        : mw_(testing::makeMiniWarehouse(params(), 2, 2048, 1024)),
          engine_(*mw_.warehouse, mw_.table())
    {
    }

    testing::MiniWarehouse mw_;
    QueryEngine engine_;
};

TEST_F(QueryTest, CountRowsUsesMetadata)
{
    EXPECT_EQ(engine_.countRows({0}), 2048u);
    EXPECT_EQ(engine_.countRows({0, 1}), 4096u);
    EXPECT_EQ(engine_.bytesRead(), 0u); // metadata only
}

TEST_F(QueryTest, LabelRateNearGeneratorRate)
{
    double rate = engine_.labelRate({0, 1});
    // RowGenerator labels positives at 3%.
    EXPECT_NEAR(rate, 0.03, 0.01);
}

TEST_F(QueryTest, DenseStatsMatchSchemaCoverage)
{
    const FeatureSpec *f = nullptr;
    for (const auto &spec : mw_.schema.features) {
        if (!spec.isSparse()) {
            f = &spec;
            break;
        }
    }
    ASSERT_NE(f, nullptr);
    auto stats = engine_.denseStats(f->id, {0, 1});
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->rows_scanned, 4096u);
    EXPECT_NEAR(stats->coverage(), f->coverage, 0.04);
    EXPECT_GT(stats->values.mean(), 0.0);
}

TEST_F(QueryTest, SparseStatsMatchSchema)
{
    const FeatureSpec *f = nullptr;
    for (const auto &spec : mw_.schema.features) {
        if (spec.isSparse()) {
            f = &spec;
            break;
        }
    }
    ASSERT_NE(f, nullptr);
    auto stats = engine_.sparseStats(f->id, {0, 1});
    ASSERT_TRUE(stats.has_value());
    EXPECT_NEAR(stats->coverage(), f->coverage,
                0.1 * f->coverage + 0.05);
    EXPECT_NEAR(stats->avgLength(), f->avg_length,
                0.4 * f->avg_length);
}

TEST_F(QueryTest, KindMismatchReturnsNullopt)
{
    FeatureId dense_id = 0, sparse_id = 0;
    for (const auto &spec : mw_.schema.features) {
        if (spec.isSparse() && sparse_id == 0)
            sparse_id = spec.id;
        if (!spec.isSparse() && dense_id == 0)
            dense_id = spec.id;
    }
    EXPECT_FALSE(engine_.denseStats(sparse_id, {0}).has_value());
    EXPECT_FALSE(engine_.sparseStats(dense_id, {0}).has_value());
    EXPECT_FALSE(engine_.denseStats(99999, {0}).has_value());
}

TEST_F(QueryTest, TopValuesAreZipfHead)
{
    FeatureId sparse_id = 0;
    for (const auto &spec : mw_.schema.features) {
        if (spec.isSparse()) {
            sparse_id = spec.id;
            break;
        }
    }
    auto top = engine_.topValues(sparse_id, 5, {0, 1});
    ASSERT_EQ(top.size(), 5u);
    // Sorted descending, and Zipf value generation makes the head
    // rank dominate.
    for (size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].count, top[i].count);
    EXPECT_GT(top[0].count, top[4].count);
}

TEST_F(QueryTest, PerFeatureQueryReadsSmallFraction)
{
    FeatureId dense_id = 0;
    for (const auto &spec : mw_.schema.features) {
        if (!spec.isSparse()) {
            dense_id = spec.id;
            break;
        }
    }
    engine_.denseStats(dense_id, {0, 1});
    Bytes selective = engine_.bytesRead();
    // The whole table is far larger than one feature's streams.
    EXPECT_LT(selective, mw_.table().totalBytes() / 5);
    EXPECT_GT(selective, 0u);
}

TEST_F(QueryTest, MissingPartitionDies)
{
    EXPECT_DEATH(engine_.labelRate({9}), "missing");
}

} // namespace
} // namespace dsi::warehouse
