/**
 * @file
 * Tests for the discrete-event DPP deployment simulator.
 */

#include <gtest/gtest.h>

#include "dpp/sim_session.h"

namespace dsi::dpp {
namespace {

SimSessionConfig
steadyConfig(uint32_t trainers, ScalingPolicy policy)
{
    SimSessionConfig cfg;
    cfg.rm = warehouse::rm1();
    cfg.duration_s = 1200;
    cfg.demand = {{0, trainers}};
    cfg.policy = policy;
    cfg.scaler.min_workers = 2;
    cfg.initial_workers = 8;
    cfg.seed = 3;
    return cfg;
}

TEST(SimSession, StaticExactMeetsSteadyDemand)
{
    auto r = simulateDeployment(
        steadyConfig(4, ScalingPolicy::StaticExact));
    EXPECT_LT(r.stall_fraction, 0.01);
    // Sized for peak / target_util: about nodes-required / 0.85.
    auto sat = saturateWorker(warehouse::rm1(), sim::computeNodeV1());
    double needed = 4 * workersPerTrainer(warehouse::rm1(), sat);
    EXPECT_NEAR(r.avg_workers, needed / 0.85, needed * 0.15);
}

TEST(SimSession, AutoScaleConvergesOnSteadyDemand)
{
    auto r = simulateDeployment(
        steadyConfig(4, ScalingPolicy::AutoScale));
    // Transient stalls while ramping from 8 workers, then stable.
    EXPECT_LT(r.stall_fraction, 0.15);
    const auto &tail = r.timeline.back();
    EXPECT_GE(tail.supply_qps, tail.demand_qps * 0.95);
    // Converged pool is near the analytic requirement.
    auto sat = saturateWorker(warehouse::rm1(), sim::computeNodeV1());
    double needed = 4 * workersPerTrainer(warehouse::rm1(), sat);
    EXPECT_NEAR(tail.workers, needed / 0.85, needed * 0.30);
}

TEST(SimSession, AutoScaleDrainsAfterBurst)
{
    SimSessionConfig cfg = steadyConfig(8, ScalingPolicy::AutoScale);
    cfg.duration_s = 2400;
    cfg.demand = {{0, 8}, {1200, 2}};
    auto r = simulateDeployment(cfg);
    EXPECT_GT(r.drains, 0u);
    // Final pool well below the burst peak.
    EXPECT_LT(r.timeline.back().workers, r.peak_workers / 2);
}

TEST(SimSession, UnderProvisioningStalls)
{
    auto exact = simulateDeployment(
        steadyConfig(6, ScalingPolicy::StaticExact));
    auto cfg = steadyConfig(6, ScalingPolicy::StaticUnder);
    cfg.demand = {{0, 1}, {900, 6}}; // mean << peak
    cfg.duration_s = 1200;
    auto under = simulateDeployment(cfg);
    EXPECT_GT(under.stall_fraction, exact.stall_fraction + 0.05);
}

TEST(SimSession, FailuresAreRestarted)
{
    auto cfg = steadyConfig(4, ScalingPolicy::StaticExact);
    cfg.worker_mtbf_s = 20000;
    cfg.seed = 9;
    auto r = simulateDeployment(cfg);
    EXPECT_GT(r.failures, 0u);
    // Restarts keep the pool near its static size at the end.
    EXPECT_NEAR(static_cast<double>(r.timeline.back().workers),
                r.avg_workers, r.avg_workers * 0.2);
}

TEST(SimSession, DeterministicUnderSeed)
{
    auto a = simulateDeployment(
        steadyConfig(4, ScalingPolicy::AutoScale));
    auto b = simulateDeployment(
        steadyConfig(4, ScalingPolicy::AutoScale));
    EXPECT_DOUBLE_EQ(a.stall_fraction, b.stall_fraction);
    EXPECT_EQ(a.peak_workers, b.peak_workers);
    EXPECT_DOUBLE_EQ(a.worker_seconds, b.worker_seconds);
}

TEST(SimSession, EnergyScalesWithWorkerSeconds)
{
    auto r = simulateDeployment(
        steadyConfig(4, ScalingPolicy::StaticExact));
    EXPECT_DOUBLE_EQ(r.energyJ(250.0), r.worker_seconds * 250.0);
}

} // namespace
} // namespace dsi::dpp
