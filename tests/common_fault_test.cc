/**
 * @file
 * Tests for the fault-injection registry: determinism under a fixed
 * seed, one-shot triggers, fire caps, delay faults, and scoped
 * arming.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/fault.h"

namespace dsi {
namespace {

class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultTest, UnarmedPointNeverFires)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faultPoint("nobody.armed.this"));
    EXPECT_EQ(FaultInjector::instance().hits("nobody.armed.this"), 0u);
}

TEST_F(FaultTest, ProbabilityStreamIsSeedDeterministic)
{
    auto draw = [](uint64_t seed) {
        auto &inj = FaultInjector::instance();
        inj.reset();
        inj.seed(seed);
        FaultSpec spec;
        spec.probability = 0.3;
        inj.arm("p", spec);
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(inj.shouldFail("p"));
        return fires;
    };
    auto a = draw(42);
    EXPECT_EQ(a, draw(42)); // bit-stable replay
    EXPECT_NE(a, draw(43)); // and seed-sensitive
    // Roughly the requested rate.
    int n = 0;
    for (bool f : a)
        n += f;
    EXPECT_GT(n, 30);
    EXPECT_LT(n, 90);
}

TEST_F(FaultTest, TriggerHitFiresExactlyOnNthHit)
{
    auto &inj = FaultInjector::instance();
    FaultSpec spec;
    spec.trigger_hit = 3;
    inj.arm("t", spec);
    EXPECT_FALSE(inj.shouldFail("t"));
    EXPECT_FALSE(inj.shouldFail("t"));
    EXPECT_TRUE(inj.shouldFail("t")); // the 3rd hit
    EXPECT_FALSE(inj.shouldFail("t"));
    EXPECT_EQ(inj.hits("t"), 4u);
    EXPECT_EQ(inj.fires("t"), 1u);
}

TEST_F(FaultTest, MaxFiresCapsTotalFires)
{
    auto &inj = FaultInjector::instance();
    FaultSpec spec;
    spec.probability = 1.0;
    spec.max_fires = 2;
    inj.arm("cap", spec);
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += inj.shouldFail("cap");
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(inj.fires("cap"), 2u);
}

TEST_F(FaultTest, RearmResetsCounters)
{
    auto &inj = FaultInjector::instance();
    FaultSpec spec;
    spec.trigger_hit = 1;
    inj.arm("r", spec);
    EXPECT_TRUE(inj.shouldFail("r"));
    inj.arm("r", spec); // re-arm: hit counter restarts
    EXPECT_TRUE(inj.shouldFail("r"));
    EXPECT_EQ(inj.hits("r"), 1u);
}

TEST_F(FaultTest, LatencyFaultSleepsButDoesNotFail)
{
    auto &inj = FaultInjector::instance();
    FaultSpec spec;
    spec.probability = 1.0;
    spec.latency_seconds = 0.02;
    spec.max_fires = 1;
    inj.arm("slow", spec);
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(inj.shouldFail("slow")); // delays, never errors
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    EXPECT_GE(elapsed, 0.015);
    EXPECT_EQ(inj.fires("slow"), 1u);
    // Capped: the next hit is instant.
    EXPECT_FALSE(inj.shouldFail("slow"));
    EXPECT_EQ(inj.fires("slow"), 1u);
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit)
{
    auto &inj = FaultInjector::instance();
    {
        ScopedFault guard("scoped", FaultSpec{});
        EXPECT_TRUE(inj.armed("scoped"));
        EXPECT_TRUE(faultPoint("scoped"));
    }
    EXPECT_FALSE(inj.armed("scoped"));
    EXPECT_FALSE(faultPoint("scoped"));
}

} // namespace
} // namespace dsi
