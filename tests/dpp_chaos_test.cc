/**
 * @file
 * Chaos suite: end-to-end DPP sessions under injected faults.
 *
 * Each scenario arms fault points (worker crashes, corrupt Tectonic
 * reads, dead storage nodes, replica IO errors, slow replicas) with a
 * fixed injector seed and drives a full session, asserting the
 * exactly-once delivery contract: every (split_id, first_row) batch
 * key is delivered to exactly one client exactly once, the row total
 * is exact, and no process-killing assert fires anywhere.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "dpp/session.h"
#include "test_fixtures.h"

namespace dsi::dpp {
namespace {

warehouse::SchemaParams
chaosParams()
{
    warehouse::SchemaParams p;
    p.name = "chaos";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 31;
    return p;
}

SessionSpec
chaosSpec(const testing::MiniWarehouse &mw)
{
    SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = 1024;
    return spec;
}

/** Counts every delivered batch by its replay-stable identity. */
struct DeliveryLog
{
    std::map<std::pair<uint64_t, RowId>, uint64_t> count;
    uint64_t rows = 0;

    void sinkBatch(const TensorBatch &t)
    {
        ++count[{t.split_id, t.first_row}];
        rows += t.data.rows;
    }

    InProcessSession::TensorSink sink()
    {
        return
            [this](ClientId, const TensorBatch &t) { sinkBatch(t); };
    }

    /** Every key exactly once — no duplicates, no gaps in totals. */
    void expectExactlyOnce(uint64_t expected_rows) const
    {
        for (const auto &[key, n] : count) {
            EXPECT_EQ(n, 1u) << "batch (split " << key.first
                             << ", row " << key.second
                             << ") delivered " << n << " times";
        }
        EXPECT_EQ(rows, expected_rows);
    }
};

class ChaosTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kTotalRows = 2 * 4096;

    static dwrf::WriterOptions
    stripeOptions()
    {
        dwrf::WriterOptions wo;
        wo.rows_per_stripe = 1024;
        return wo;
    }

    ChaosTest()
        : mw_(testing::makeMiniWarehouse(chaosParams(), 2, 4096, 2048,
                                         stripeOptions()))
    {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0xC4A05ULL);
    }

    ~ChaosTest() override { FaultInjector::instance().reset(); }

    testing::MiniWarehouse mw_;
};

TEST_F(ChaosTest, WorkerCrashMidSplitRecoversExactlyOnce)
{
    SessionOptions so;
    so.workers = 2;
    so.clients = 2;
    so.lease_timeout = 0.05;
    InProcessSession session(*mw_.warehouse, chaosSpec(mw_), so);

    // The 6th crash-point hit (checked per stripe, split in hand)
    // kills a worker mid-split. Its lease expires (it no longer
    // heartbeats), the Master requeues its splits, and the session
    // starts a stateless replacement. Armed after construction so the
    // Master's split enumeration is not in scope.
    ScopedFault crash(faults::kWorkerCrash, FaultSpec{.trigger_hit = 6});
    DeliveryLog log;
    auto result = session.run(log.sink());

    EXPECT_GE(result.worker_failures, 1u);
    EXPECT_EQ(result.splits_failed, 0u);
    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.rows_delivered, kTotalRows);
    EXPECT_GE(
        session.master().metrics().counter("master.leases_expired"),
        1.0);
}

TEST_F(ChaosTest, CorruptChunkIsCaughtAndRetried)
{
    SessionOptions so;
    so.workers = 1;
    so.clients = 1;
    InProcessSession session(*mw_.warehouse, chaosSpec(mw_), so);

    // One worker, synchronous, armed after the Master's enumeration
    // reads: the hit sequence is deterministic — hit 1 is the first
    // file's tail, hit 2 its footer, hit 3 the first stripe IO.
    // Corrupting hit 3 flips a byte in stream data; the reader's CRC
    // check catches it and the per-stripe retry re-reads clean bytes.
    ScopedFault corrupt(faults::kTectonicReadCorrupt,
                        FaultSpec{.trigger_hit = 3});
    DeliveryLog log;
    auto result = session.run(log.sink());

    EXPECT_GE(result.read_stats.checksum_mismatches, 1u);
    EXPECT_GE(result.read_stats.stripe_retries, 1u);
    EXPECT_EQ(result.splits_failed, 0u);
    log.expectExactlyOnce(kTotalRows);
    EXPECT_GE(mw_.cluster->metrics().counter("tectonic.corrupt_reads"),
              1.0);
}

TEST_F(ChaosTest, DeadStorageNodeFailsOverToReplicas)
{
    // RS/replicated placement keeps every block readable with one
    // node down; reads route around the dead node transparently.
    mw_.cluster->failNode(0);

    SessionOptions so;
    so.workers = 2;
    so.clients = 1;
    InProcessSession session(*mw_.warehouse, chaosSpec(mw_), so);
    DeliveryLog log;
    auto result = session.run(log.sink());

    EXPECT_EQ(result.splits_failed, 0u);
    EXPECT_EQ(result.read_stats.io_errors, 0u); // failover is silent
    log.expectExactlyOnce(kTotalRows);
    mw_.cluster->recoverNode(0);
}

TEST_F(ChaosTest, FlakyReplicasAreRoutedAround)
{
    SessionOptions so;
    so.workers = 2;
    so.clients = 1;
    InProcessSession session(*mw_.warehouse, chaosSpec(mw_), so);

    // Individual replica IOs fail with 20% probability; each block
    // has healthy replicas, so reads succeed by routing around the
    // failures (seeded: deterministic failure pattern).
    ScopedFault flaky(faults::kTectonicReplicaError,
                      FaultSpec{.probability = 0.2});
    DeliveryLog log;
    auto result = session.run(log.sink());

    EXPECT_EQ(result.splits_failed, 0u);
    log.expectExactlyOnce(kTotalRows);
    EXPECT_GE(mw_.cluster->metrics().counter(
                  "tectonic.replica_read_errors"),
              1.0);
}

TEST_F(ChaosTest, SlowReplicaDelaysButDelivers)
{
    SessionOptions so;
    so.workers = 2;
    so.clients = 1;
    InProcessSession session(*mw_.warehouse, chaosSpec(mw_), so);

    ScopedFault slow(faults::kTectonicReadDelay,
                     FaultSpec{.probability = 0.1,
                               .max_fires = 4,
                               .latency_seconds = 0.005});
    DeliveryLog log;
    auto result = session.run(log.sink());

    EXPECT_EQ(result.splits_failed, 0u);
    log.expectExactlyOnce(kTotalRows);
    EXPECT_GE(FaultInjector::instance().fires(
                  faults::kTectonicReadDelay),
              1u);
}

TEST_F(ChaosTest, AllReplicasDownFailsSplitsBoundedlyWithoutAbort)
{
    SessionOptions so;
    so.workers = 2;
    so.clients = 1;
    so.max_split_attempts = 2;
    InProcessSession session(*mw_.warehouse, chaosSpec(mw_), so);

    // Every replica IO fails from here on: no read can be served.
    // Splits exhaust their attempt budget and are marked failed — the
    // session ends cleanly (no rows, no abort) instead of dying on an
    // assert.
    ScopedFault dead(faults::kTectonicReplicaError,
                     FaultSpec{.probability = 1.0});
    DeliveryLog log;
    auto result = session.run(log.sink());

    EXPECT_EQ(result.rows_delivered, 0u);
    EXPECT_EQ(result.splits_failed,
              session.master().totalSplits());
    EXPECT_EQ(log.rows, 0u);
}

TEST_F(ChaosTest, CombinedChaosParallelPipelineExactlyOnce)
{
    SessionOptions so;
    so.workers = 3;
    so.clients = 2;
    so.lease_timeout = 0.1;
    so.worker.num_extract_threads = 2;
    so.worker.num_transform_threads = 2;
    InProcessSession session(*mw_.warehouse, chaosSpec(mw_), so);

    // Everything at once, on the threaded data plane: a worker crash,
    // sporadic corrupt reads, flaky replicas, and a slow replica.
    ScopedFault crash(faults::kWorkerCrash,
                      FaultSpec{.trigger_hit = 9});
    ScopedFault corrupt(faults::kTectonicReadCorrupt,
                        FaultSpec{.probability = 0.03,
                                  .max_fires = 3});
    ScopedFault flaky(faults::kTectonicReplicaError,
                      FaultSpec{.probability = 0.05});
    ScopedFault slow(faults::kTectonicReadDelay,
                     FaultSpec{.probability = 0.05,
                               .max_fires = 2,
                               .latency_seconds = 0.002});
    DeliveryLog log;
    auto result = session.run(log.sink());

    EXPECT_EQ(result.splits_failed, 0u);
    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.rows_delivered, kTotalRows);
}

TEST_F(ChaosTest, PoolGaugesAgreeWithPoolAfterCrashAndCompletion)
{
    // The worker publishes its stripe-pool gauges at every split
    // terminal state *and* at crash, so an observer scraping a dead
    // worker's registry sees the pool's true final footprint — not a
    // stale snapshot from the last clean split.
    Master master(*mw_.warehouse, chaosSpec(mw_));
    Worker victim(master, *mw_.warehouse, WorkerOptions{});

    // The victim's tensors from its incomplete split will replay via
    // the replacement — dedupe through a ledger exactly as a session
    // client pool would.
    DeliveryLedger ledger;
    DeliveryLog log;
    auto deliver = [&](const TensorBatch &t) {
        if (ledger.claim(t.split_id, t.first_row))
            log.sinkBatch(t);
    };

    ScopedFault crash(faults::kWorkerCrash,
                      FaultSpec{.trigger_hit = 4});
    while (victim.pump()) {
        while (auto t = victim.popTensor())
            deliver(*t);
    }
    ASSERT_TRUE(victim.crashed());
    auto consistent = [](const Worker &w) {
        const auto &g = w.metrics().gauges();
        EXPECT_EQ(g.at("worker.stripe_pool_allocated"),
                  static_cast<double>(w.stripePoolAllocated()));
        EXPECT_EQ(g.at("worker.stripe_pool_reused"),
                  static_cast<double>(w.stripePoolReused()));
        EXPECT_EQ(g.at("worker.stripe_pool_retained_bytes"),
                  static_cast<double>(w.stripePoolRetainedBytes()));
    };
    consistent(victim);

    // Recovery: requeue the dead worker's splits and let a fresh
    // worker finish the session; its gauges (published at each
    // complete-split terminal state) stay consistent throughout.
    master.failWorker(victim.id());
    Worker replacement(master, *mw_.warehouse, WorkerOptions{});
    bool saw_midrun_publish = false;
    while (replacement.pump()) {
        while (auto t = replacement.popTensor())
            deliver(*t);
        // Gauges appear at the first terminal state (first completed
        // split) and must agree with the pool at every scrape after.
        if (replacement.metrics().gauges().count(
                "worker.stripe_pool_allocated")) {
            consistent(replacement);
            saw_midrun_publish = true;
        }
    }
    EXPECT_TRUE(saw_midrun_publish);
    EXPECT_TRUE(master.progress().done());
    consistent(replacement);
    log.expectExactlyOnce(kTotalRows);
}

/**
 * Property tests for the DeliveryLedger itself: the exactly-once
 * invariant must hold for *any* delivery schedule a chaotic session
 * could produce — replays, reorders, interleaved epochs of different
 * splits — not just the schedules the end-to-end scenarios happen to
 * generate.
 */

/** Batch keys for `splits` splits of `batches` batches each. */
std::vector<std::pair<uint64_t, RowId>>
ledgerKeys(uint64_t splits, uint64_t batches)
{
    std::vector<std::pair<uint64_t, RowId>> keys;
    for (uint64_t s = 0; s < splits; ++s) {
        for (uint64_t b = 0; b < batches; ++b)
            keys.emplace_back(s, static_cast<RowId>(b * 256));
    }
    return keys;
}

TEST(DeliveryLedgerFuzz, RandomReplaysAndReordersClaimExactlyOnce)
{
    // 20 rounds of: every key delivered 1..4 times (replayed split
    // attempts), the whole schedule shuffled (arbitrary interleaving
    // of splits and attempt epochs). The ledger must admit each key
    // exactly once and count every extra copy as a duplicate.
    for (uint64_t round = 0; round < 20; ++round) {
        Rng rng(0xF00DULL + round);
        auto keys = ledgerKeys(40, 16);
        std::vector<std::pair<uint64_t, RowId>> schedule;
        for (const auto &k : keys) {
            uint64_t copies = 1 + rng.nextUint(4);
            for (uint64_t c = 0; c < copies; ++c)
                schedule.push_back(k);
        }
        for (size_t i = schedule.size(); i > 1; --i)
            std::swap(schedule[i - 1], schedule[rng.nextUint(i)]);

        DeliveryLedger ledger;
        std::map<std::pair<uint64_t, RowId>, uint64_t> admitted;
        for (const auto &k : schedule) {
            if (ledger.claim(k.first, k.second))
                ++admitted[k];
        }
        ASSERT_EQ(admitted.size(), keys.size());
        for (const auto &[key, n] : admitted)
            ASSERT_EQ(n, 1u);
        EXPECT_EQ(ledger.delivered(), keys.size());
        EXPECT_EQ(ledger.duplicates(),
                  schedule.size() - keys.size());
    }
}

TEST(DeliveryLedgerFuzz, ConcurrentClaimsAdmitEachKeyOnce)
{
    // Eight "clients" race full replays of the same key set (each in
    // its own shuffle order): across all threads every key must be
    // claimed exactly once.
    auto keys = ledgerKeys(32, 8);
    DeliveryLedger ledger;
    std::atomic<uint64_t> admitted{0};
    std::vector<std::thread> clients;
    for (uint64_t t = 0; t < 8; ++t) {
        clients.emplace_back([&, t] {
            Rng rng(0xC1AE77ULL * (t + 1));
            auto order = keys;
            for (size_t i = order.size(); i > 1; --i)
                std::swap(order[i - 1], order[rng.nextUint(i)]);
            for (const auto &k : order) {
                if (ledger.claim(k.first, k.second))
                    admitted.fetch_add(1);
            }
        });
    }
    for (auto &c : clients)
        c.join();
    EXPECT_EQ(admitted.load(), keys.size());
    EXPECT_EQ(ledger.delivered(), keys.size());
    EXPECT_EQ(ledger.duplicates(), keys.size() * 7);
}

} // namespace
} // namespace dsi::dpp
