/**
 * @file
 * Tests for schemas, synthetic data generation (Table V calibration),
 * feature popularity / projections, tables, lifecycle (Table II), and
 * the RM model zoo.
 */

#include <gtest/gtest.h>

#include <set>

#include "warehouse/datagen.h"
#include "warehouse/lifecycle.h"
#include "warehouse/model_zoo.h"
#include "warehouse/table.h"

namespace dsi::warehouse {
namespace {

TEST(Schema, CountsAndFind)
{
    SchemaParams p;
    p.float_features = 10;
    p.sparse_features = 4;
    auto schema = makeSchema(p);
    EXPECT_EQ(schema.countDense(), 10u);
    EXPECT_EQ(schema.countSparse(), 4u);
    EXPECT_NE(schema.find(1), nullptr);
    EXPECT_EQ(schema.find(999), nullptr);
}

TEST(Schema, StatisticsMatchParams)
{
    SchemaParams p;
    p.float_features = 200;
    p.sparse_features = 100;
    p.coverage_u = 0.45;
    p.avg_length = 26.0;
    auto schema = makeSchema(p);
    EXPECT_NEAR(schema.sparseCoverage(), 0.45, 0.03);
    EXPECT_NEAR(schema.sparseAvgLength(), 26.0, 1.5);
}

TEST(RowGenerator, RowsMatchSchemaStatistics)
{
    SchemaParams p;
    p.float_features = 40;
    p.sparse_features = 30;
    p.coverage_u = 0.4;
    p.avg_length = 10.0;
    auto schema = makeSchema(p);
    RowGenerator gen(schema, 99);
    const uint32_t n = 2000;
    uint64_t sparse_present = 0, sparse_values = 0;
    for (uint32_t i = 0; i < n; ++i) {
        auto row = gen.next();
        for (const auto &s : row.sparse) {
            ++sparse_present;
            sparse_values += s.values.size();
            EXPECT_NE(schema.find(s.id), nullptr);
        }
    }
    double coverage = static_cast<double>(sparse_present) /
                      (static_cast<double>(n) * p.sparse_features);
    EXPECT_NEAR(coverage, 0.4, 0.05);
    double avg_len = static_cast<double>(sparse_values) /
                     static_cast<double>(sparse_present);
    EXPECT_NEAR(avg_len, 10.0, 2.0);
}

TEST(RowGenerator, Deterministic)
{
    auto schema = makeSchema(SchemaParams{});
    RowGenerator a(schema, 7), b(schema, 7);
    for (int i = 0; i < 20; ++i) {
        auto ra = a.next(), rb = b.next();
        ASSERT_EQ(ra.dense.size(), rb.dense.size());
        ASSERT_EQ(ra.sparse.size(), rb.sparse.size());
        for (size_t s = 0; s < ra.sparse.size(); ++s)
            EXPECT_EQ(ra.sparse[s].values, rb.sparse[s].values);
    }
}

TEST(Popularity, WeightsAreZipfRanked)
{
    auto schema = makeSchema(SchemaParams{});
    auto pop = featurePopularity(schema, 1.0, 11);
    ASSERT_EQ(pop.size(), schema.features.size());
    std::vector<double> sorted = pop;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    EXPECT_DOUBLE_EQ(sorted.front(), 1.0); // rank 1 -> weight 1
    EXPECT_GT(sorted.front() / sorted.back(), 10.0);
}

TEST(Projection, RespectsCountsAndKinds)
{
    SchemaParams p;
    p.float_features = 100;
    p.sparse_features = 50;
    auto schema = makeSchema(p);
    auto pop = featurePopularity(schema, 1.0, 3);
    auto proj = chooseProjection(schema, pop, 20, 10, 123);
    EXPECT_EQ(proj.size(), 30u);
    uint32_t dense = 0, sparse = 0;
    std::set<FeatureId> seen;
    for (FeatureId id : proj) {
        EXPECT_TRUE(seen.insert(id).second) << "duplicate " << id;
        const auto *f = schema.find(id);
        ASSERT_NE(f, nullptr);
        (f->isSparse() ? sparse : dense)++;
    }
    EXPECT_EQ(dense, 20u);
    EXPECT_EQ(sparse, 10u);
}

TEST(Projection, PopularFeaturesChosenMoreOften)
{
    SchemaParams p;
    p.float_features = 50;
    p.sparse_features = 0;
    auto schema = makeSchema(p);
    auto pop = featurePopularity(schema, 1.2, 3);
    // Count selections across many jobs.
    std::map<FeatureId, int> picks;
    for (uint64_t seed = 0; seed < 200; ++seed) {
        for (FeatureId id : chooseProjection(schema, pop, 10, 0, seed))
            ++picks[id];
    }
    // The most popular feature must be picked far more often than the
    // least popular one.
    FeatureId hot = 0, cold = 0;
    double hi = -1, lo = 2;
    for (size_t i = 0; i < pop.size(); ++i) {
        if (pop[i] > hi) {
            hi = pop[i];
            hot = schema.features[i].id;
        }
        if (pop[i] < lo) {
            lo = pop[i];
            cold = schema.features[i].id;
        }
    }
    EXPECT_GT(picks[hot], picks[cold] + 50);
}

TEST(Table, PartitionManagement)
{
    storage::TectonicCluster cluster(storage::StorageOptions{});
    Warehouse wh(cluster);
    auto &table = wh.createTable("t", makeSchema(SchemaParams{}));
    table.addPartition({0, {"f0"}, 100, 1000});
    table.addPartition({1, {"f1", "f2"}, 200, 3000});
    EXPECT_EQ(table.totalRows(), 300u);
    EXPECT_EQ(table.totalBytes(), 4000u);
    EXPECT_NE(table.findPartition(1), nullptr);
    EXPECT_EQ(table.findPartition(9), nullptr);
    EXPECT_EQ(table.bytesOfPartitions({0, 1}), 4000u);
    EXPECT_NE(wh.findTable("t"), nullptr);
    EXPECT_EQ(wh.findTable("x"), nullptr);
}

TEST(Table, RetentionDropsOldestPartitionsAndFiles)
{
    storage::TectonicCluster cluster(storage::StorageOptions{});
    Warehouse wh(cluster);
    auto &table = wh.createTable("t", makeSchema(SchemaParams{}));
    for (PartitionId p = 0; p < 5; ++p) {
        std::string f = "t/p" + std::to_string(p);
        cluster.put(f, dwrf::Buffer(100, 1));
        table.addPartition({p, {f}, 10, 100});
    }
    EXPECT_EQ(cluster.logicalBytes(), 500u);

    uint32_t dropped = table.applyRetention(2, cluster);
    EXPECT_EQ(dropped, 3u);
    EXPECT_EQ(table.partitions().size(), 2u);
    EXPECT_EQ(table.findPartition(0), nullptr);
    EXPECT_NE(table.findPartition(3), nullptr);
    EXPECT_NE(table.findPartition(4), nullptr);
    // Dropped partitions' files are gone from the cluster.
    EXPECT_FALSE(cluster.exists("t/p0"));
    EXPECT_TRUE(cluster.exists("t/p4"));
    EXPECT_EQ(cluster.logicalBytes(), 200u);
    // Retention is idempotent at or below the kept count.
    EXPECT_EQ(table.applyRetention(2, cluster), 0u);
}

TEST(Table, DropMissingPartitionDies)
{
    storage::TectonicCluster cluster(storage::StorageOptions{});
    Warehouse wh(cluster);
    auto &table = wh.createTable("t", makeSchema(SchemaParams{}));
    EXPECT_DEATH(table.dropPartition(7, cluster), "missing");
}

TEST(Lifecycle, LegalTransitions)
{
    FeatureRegistry reg;
    reg.propose(1);
    EXPECT_EQ(reg.state(1), FeatureState::Beta);
    reg.transition(1, FeatureState::Experimental);
    reg.transition(1, FeatureState::Active);
    reg.transition(1, FeatureState::Deprecated);
    reg.transition(1, FeatureState::Reaped);
    EXPECT_EQ(reg.state(1), FeatureState::Reaped);
}

TEST(Lifecycle, IllegalTransitionDies)
{
    FeatureRegistry reg;
    reg.propose(1);
    EXPECT_DEATH(reg.transition(1, FeatureState::Active),
                 "illegal transition");
}

TEST(Lifecycle, ActivelyWrittenStates)
{
    EXPECT_FALSE(FeatureRegistry::activelyWritten(FeatureState::Beta));
    EXPECT_TRUE(
        FeatureRegistry::activelyWritten(FeatureState::Experimental));
    EXPECT_TRUE(FeatureRegistry::activelyWritten(FeatureState::Active));
    EXPECT_TRUE(
        FeatureRegistry::activelyWritten(FeatureState::Deprecated));
    EXPECT_FALSE(
        FeatureRegistry::activelyWritten(FeatureState::Reaped));
}

TEST(Lifecycle, CohortCensusMatchesTableIIShape)
{
    // Table II: 14614 features created in 6 months; 6 months later
    // 10148 beta / 883 experimental / 1650 active / 1933 deprecated.
    auto census = simulateCohort(LifecycleRates{}, 6, 6, 42);
    double total = static_cast<double>(census.visibleTotal());
    EXPECT_NEAR(total, 14614.0, 14614.0 * 0.05);
    // Shape: beta dominates, then deprecated ~ active > experimental.
    EXPECT_GT(census.beta, census.deprecated);
    EXPECT_GT(census.deprecated, census.experimental);
    EXPECT_GT(census.active, census.experimental);
    EXPECT_NEAR(static_cast<double>(census.beta) / total, 0.694, 0.08);
}

TEST(Lifecycle, WrittenSchemaFiltersBetaAndReaped)
{
    SchemaParams p;
    p.float_features = 4;
    p.sparse_features = 2;
    auto schema = makeSchema(p);
    FeatureRegistry reg;
    // Feature 1: beta (not written). Feature 2: active. Feature 3:
    // reaped. Features 4-6 unknown to the registry (legacy, written).
    reg.propose(1);
    reg.propose(2);
    reg.transition(2, FeatureState::Experimental);
    reg.transition(2, FeatureState::Active);
    reg.propose(3);
    reg.transition(3, FeatureState::Experimental);
    reg.transition(3, FeatureState::Deprecated);
    reg.transition(3, FeatureState::Reaped);

    auto written = writtenSchema(schema, reg);
    EXPECT_EQ(written.features.size(), schema.features.size() - 2);
    EXPECT_EQ(written.find(1), nullptr); // beta
    EXPECT_NE(written.find(2), nullptr); // active
    EXPECT_EQ(written.find(3), nullptr); // reaped
    EXPECT_NE(written.find(4), nullptr); // legacy
}

TEST(ModelZoo, SpecsMatchPaperTables)
{
    auto rms = allRms();
    ASSERT_EQ(rms.size(), 3u);
    // Table V
    EXPECT_EQ(rms[0].table_float_features, 12115u);
    EXPECT_EQ(rms[1].table_sparse_features, 1817u);
    EXPECT_NEAR(rms[2].coverage_u, 0.29, 1e-9);
    // Table IV
    EXPECT_EQ(rms[0].dense_used, 1221u);
    EXPECT_EQ(rms[2].derived_features, 1u);
    // Table III (products reconstruct the published PB numbers)
    EXPECT_NEAR(rms[0].allPartitionsPb(), 13.45, 0.1);
    EXPECT_NEAR(rms[1].usedPartitionsPb(), 25.94, 0.2);
    EXPECT_NEAR(rms[2].allPartitionsPb(), 2.93, 0.05);
    // Table VIII
    EXPECT_NEAR(rms[0].trainer_node_gbps, 16.5, 1e-9);
    // Derived trainer sample rates are positive and ordered by
    // tensor size vs. throughput.
    for (const auto &rm : rms)
        EXPECT_GT(rm.trainerSamplesPerSec(), 1000.0);
}

TEST(ModelZoo, ScaledSchemaShrinksFeatureCounts)
{
    auto rm = rm1();
    auto params = rm.scaledSchemaParams(0.01);
    EXPECT_NEAR(params.float_features, 121, 2);
    EXPECT_NEAR(params.sparse_features, 18, 2);
    EXPECT_DOUBLE_EQ(params.coverage_u, rm.coverage_u);
}

} // namespace
} // namespace dsi::warehouse
