/**
 * @file
 * Trace-asserting end-to-end suite: live InProcessSessions run with
 * tracing on, and the assertions are made against the span forest —
 * batch lineage (grant -> extract -> transform -> deliver), hedge and
 * shed events appearing exactly when their triggers are armed, trace
 * topology determinism across identically-seeded runs, and the
 * Table VII stall-attribution rollup.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/table_printer.h"
#include "common/trace.h"
#include "common/trace_query.h"
#include "dpp/session.h"
#include "test_fixtures.h"

namespace dsi::dpp {
namespace {

warehouse::SchemaParams
traceParams()
{
    warehouse::SchemaParams p;
    p.name = "traced";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 47;
    return p;
}

SessionSpec
traceSpec(const testing::MiniWarehouse &mw)
{
    SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = 1024;
    return spec;
}

/**
 * Render "shape | run A count | run B count" for every root shape
 * where the two runs disagree — the actionable artifact a determinism
 * failure prints.
 */
std::string
topologyDiff(const trace::TraceQuery &a, const trace::TraceQuery &b)
{
    auto parse = [](const std::vector<std::string> &lines) {
        std::map<std::string, uint64_t> shapes;
        for (const auto &line : lines) {
            size_t pos = line.rfind(" x");
            uint64_t n = 1;
            std::string shape = line;
            if (pos != std::string::npos &&
                line.find_first_not_of("0123456789", pos + 2) ==
                    std::string::npos) {
                n = std::stoull(line.substr(pos + 2));
                shape = line.substr(0, pos);
            }
            shapes[shape] += n;
        }
        return shapes;
    };
    auto sa = parse(a.topologyLines());
    auto sb = parse(b.topologyLines());
    TablePrinter table({"shape", "run_a", "run_b"});
    for (const auto &[shape, n] : sa) {
        uint64_t other = sb.count(shape) ? sb[shape] : 0;
        if (n != other)
            table.addRow({shape, std::to_string(n),
                          std::to_string(other)});
    }
    for (const auto &[shape, n] : sb) {
        if (!sa.count(shape))
            table.addRow({shape, "0", std::to_string(n)});
    }
    return table.render();
}

class DppTraceTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kTotalRows = 2 * 4096;

    static dwrf::WriterOptions
    stripeOptions()
    {
        dwrf::WriterOptions wo;
        wo.rows_per_stripe = 1024;
        return wo;
    }

    DppTraceTest()
        : mw_(testing::makeMiniWarehouse(traceParams(), 2, 4096, 2048,
                                         stripeOptions()))
    {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0x7ACEDULL);
    }

    ~DppTraceTest() override { FaultInjector::instance().reset(); }

    void SetUp() override
    {
        trace::TraceLog::instance().enable();
        bool compiled_in = trace::on();
        trace::TraceLog::instance().disable();
        if (!compiled_in)
            GTEST_SKIP() << "tracing compiled out "
                            "(DSI_DISABLE_TRACING)";
    }

    SessionOptions
    tracedOptions(uint32_t workers = 2, uint32_t clients = 1) const
    {
        SessionOptions so;
        so.workers = workers;
        so.clients = clients;
        so.trace.enabled = true;
        return so;
    }

    testing::MiniWarehouse mw_;
};

TEST_F(DppTraceTest, EveryBatchHasCompleteLineage)
{
    InProcessSession session(*mw_.warehouse, traceSpec(mw_),
                             tracedOptions());
    uint64_t delivered = 0;
    auto result = session.run(
        [&](ClientId, const TensorBatch &) { ++delivered; });

    ASSERT_GT(delivered, 0u);
    EXPECT_EQ(result.rows_delivered, kTotalRows);

    trace::TraceQuery q(session.traceEvents());
    // One delivery span per delivered batch, each rooted in a Master
    // grant whose subtree did real extraction work.
    EXPECT_EQ(q.count(trace::spans::kClientDeliver), delivered);
    EXPECT_GE(q.lineageCompleteFraction(), 0.99);
    EXPECT_EQ(q.count(trace::spans::kMasterGrant),
              session.master().totalSplits());
    // Every grant reached a terminal state, so every span closed.
    for (const auto *grant :
         q.byName(trace::spans::kMasterGrant)) {
        EXPECT_TRUE(grant->closed);
        EXPECT_TRUE(
            q.hasDescendant(*grant, trace::spans::kStorageRead));
    }
    // A clean, unloaded run: no hedges, no sheds, no faults.
    EXPECT_TRUE(q.instantsNamed(trace::events::kHedgeIssued).empty());
    EXPECT_TRUE(q.instantsNamed(trace::events::kOverloaded).empty());
    EXPECT_TRUE(
        q.instantsNamed(trace::events::kFaultWorkerCrash).empty());
}

TEST_F(DppTraceTest, ParallelPipelineKeepsLineage)
{
    SessionOptions so = tracedOptions(2, 2);
    so.worker.num_extract_threads = 2;
    so.worker.num_transform_threads = 2;
    InProcessSession session(*mw_.warehouse, traceSpec(mw_), so);
    uint64_t delivered = 0;
    auto result = session.run(
        [&](ClientId, const TensorBatch &) { ++delivered; });

    EXPECT_EQ(result.rows_delivered, kTotalRows);
    trace::TraceQuery q(session.traceEvents());
    EXPECT_EQ(q.count(trace::spans::kClientDeliver), delivered);
    EXPECT_GE(q.lineageCompleteFraction(), 0.99);
    // The threaded hand-off points emit their wait spans.
    EXPECT_GT(q.count(trace::spans::kQueuePushWait), 0u);
    EXPECT_GT(q.count(trace::spans::kBufferWait), 0u);
}

TEST_F(DppTraceTest, HedgesAppearOnlyUnderInjectedStraggler)
{
    storage::HedgeOptions hedge;
    hedge.enabled = true;
    hedge.min_delay_s = 0.0001;
    hedge.min_samples = 1u << 30; // pin the trigger to min_delay_s
    mw_.cluster->setHedging(hedge);

    InProcessSession session(*mw_.warehouse, traceSpec(mw_),
                             tracedOptions());
    // The cluster counter is cumulative and the Master's (untraced)
    // enumeration reads can hedge under a loaded machine; only the
    // traced run's delta must match the instant count.
    double baseline =
        mw_.cluster->metrics().counter("tectonic.hedges_issued");
    // Every block read stalls 5 ms — far past the hedge delay — so
    // backup reads must be issued. Armed after construction so the
    // Master's enumeration reads don't consume the fire budget.
    ScopedFault slow(faults::kTectonicReadDelay,
                     FaultSpec{.probability = 1.0,
                               .max_fires = 8,
                               .latency_seconds = 0.005});
    auto result = session.run();
    EXPECT_EQ(result.rows_delivered, kTotalRows);

    trace::TraceQuery q(session.traceEvents());
    auto issued = q.instantsNamed(trace::events::kHedgeIssued);
    ASSERT_FALSE(issued.empty());
    EXPECT_EQ(static_cast<double>(issued.size()),
              mw_.cluster->metrics().counter(
                  "tectonic.hedges_issued") -
                  baseline);
    // Each hedge fired inside a read that belongs to a grant lineage.
    for (const auto &ev : issued) {
        const trace::SpanNode *parent = q.span(ev.parent);
        ASSERT_NE(parent, nullptr);
        EXPECT_NE(
            q.ancestor(*parent, trace::spans::kMasterGrant),
            nullptr);
    }
    mw_.cluster->setHedging(storage::HedgeOptions{});
}

TEST_F(DppTraceTest, ShedSplitsEmitOverloadedWithoutReadWork)
{
    // Four extract threads racing for splits with a one-in-flight cap
    // per worker: the over-eager acquisitions must be shed.
    SessionOptions so = tracedOptions(2, 1);
    so.worker.num_extract_threads = 4;
    so.worker.num_transform_threads = 1;
    so.admission.max_inflight_per_worker = 1;
    InProcessSession session(*mw_.warehouse, traceSpec(mw_), so);
    auto result = session.run();
    EXPECT_EQ(result.rows_delivered, kTotalRows);

    trace::TraceQuery q(session.traceEvents());
    auto shed = q.instantsNamed(trace::events::kOverloaded);
    ASSERT_FALSE(shed.empty());
    EXPECT_EQ(static_cast<double>(shed.size()),
              session.master().metrics().counter(
                  "master.splits_shed"));
    // A shed is a refusal: it opens no grant span, so nothing can
    // parent read work on it.
    for (const auto &ev : shed)
        EXPECT_EQ(ev.parent, trace::kNoSpan);
    // Shedding never costs delivery completeness.
    EXPECT_GE(q.lineageCompleteFraction(), 0.99);
}

TEST_F(DppTraceTest, WorkerCrashLeavesEventAndLineageSurvives)
{
    SessionOptions so = tracedOptions(2, 2);
    so.lease_timeout = 0.05;
    InProcessSession session(*mw_.warehouse, traceSpec(mw_), so);

    ScopedFault crash(faults::kWorkerCrash,
                      FaultSpec{.trigger_hit = 6});
    auto result = session.run();

    EXPECT_GE(result.worker_failures, 1u);
    EXPECT_EQ(result.rows_delivered, kTotalRows);
    trace::TraceQuery q(session.traceEvents());
    EXPECT_FALSE(
        q.instantsNamed(trace::events::kFaultWorkerCrash).empty());
    // Requeued splits re-extract under fresh grants; delivered
    // batches still trace back to one.
    EXPECT_GE(q.lineageCompleteFraction(), 0.99);
}

TEST_F(DppTraceTest, IdenticalSeedsProduceIdenticalTopology)
{
    // Synchronous mode: split assignment and stripe order are fully
    // deterministic, so two runs with the same injector seed and the
    // same fault spec must produce structurally identical forests
    // (timestamps and span ids excluded by construction).
    auto runOnce = [&] {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0xDE7E12ULL);
        SessionOptions so = tracedOptions(1, 1);
        InProcessSession session(*mw_.warehouse, traceSpec(mw_), so);
        // Armed after construction: hit 3 is deterministically the
        // first stripe IO (tail and footer reads are hits 1-2).
        ScopedFault corrupt(faults::kTectonicReadCorrupt,
                            FaultSpec{.trigger_hit = 3});
        auto result = session.run();
        EXPECT_EQ(result.rows_delivered, kTotalRows);
        return session.traceEvents();
    };
    trace::TraceQuery a(runOnce());
    trace::TraceQuery b(runOnce());
    // The injected corruption must be visible in both traces.
    EXPECT_FALSE(
        a.instantsNamed(trace::events::kFaultCorrupt).empty());
    EXPECT_EQ(a.topology(), b.topology())
        << "trace topology diverged between identically-seeded "
           "runs:\n"
        << topologyDiff(a, b);
}

TEST_F(DppTraceTest, StallReportPartitionsLiveSession)
{
    SessionOptions so = tracedOptions(2, 1);
    so.worker.num_extract_threads = 2;
    so.worker.num_transform_threads = 1;
    InProcessSession session(*mw_.warehouse, traceSpec(mw_), so);
    auto result = session.run();
    EXPECT_EQ(result.rows_delivered, kTotalRows);

    trace::TraceQuery q(session.traceEvents());
    trace::StallReport report = q.stallReport();
    ASSERT_GT(report.total(), 0.0);
    EXPECT_GT(report.read_s, 0.0);
    double pct_sum = report.readPct() + report.transformPct() +
                     report.deliverPct();
    EXPECT_NEAR(pct_sum, 100.0, 1.0);
    std::string table = report.render();
    EXPECT_NE(table.find("read"), std::string::npos);
    EXPECT_NE(table.find("deliver"), std::string::npos);
}

TEST_F(DppTraceTest, LiveTraceExportsToChromeJson)
{
    InProcessSession session(*mw_.warehouse, traceSpec(mw_),
                             tracedOptions(1, 1));
    session.run();
    ASSERT_FALSE(session.traceEvents().empty());

    std::string json = trace::chromeTraceJson(session.traceEvents());
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find(trace::spans::kMasterGrant),
              std::string::npos);
    EXPECT_NE(json.find(trace::spans::kClientDeliver),
              std::string::npos);

    std::string path =
        ::testing::TempDir() + "dpp_trace_test_trace.json";
    EXPECT_TRUE(trace::writeChromeTrace(path, session.traceEvents()));
    std::remove(path.c_str());
}

TEST_F(DppTraceTest, UntracedSessionCollectsNothing)
{
    // CI's tracing job runs this suite with DSI_TRACE=1; neutralize
    // the ambient opt-in so this test really runs untraced.
    const char *ambient = ::getenv("DSI_TRACE");
    std::string saved = ambient ? ambient : "";
    ::unsetenv("DSI_TRACE");

    SessionOptions so;
    so.workers = 1;
    InProcessSession session(*mw_.warehouse, traceSpec(mw_), so);
    auto result = session.run();
    EXPECT_EQ(result.rows_delivered, kTotalRows);
    EXPECT_TRUE(session.traceEvents().empty());

    if (ambient)
        ::setenv("DSI_TRACE", saved.c_str(), 1);
}

} // namespace
} // namespace dsi::dpp
