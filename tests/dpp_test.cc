/**
 * @file
 * Tests for the DPP control and data planes: split enumeration and
 * distribution, checkpoint/restore, worker pipelines, client routing,
 * fault injection, the auto-scaler, and the analytic worker model.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dpp/autoscaler.h"
#include "dpp/session.h"
#include "dpp/worker_model.h"
#include "test_fixtures.h"

namespace dsi::dpp {
namespace {

warehouse::SchemaParams
smallParams()
{
    warehouse::SchemaParams p;
    p.name = "tbl";
    p.float_features = 24;
    p.sparse_features = 12;
    p.avg_length = 8;
    p.coverage_u = 0.5;
    p.seed = 9;
    return p;
}

SessionSpec
makeSpec(const testing::MiniWarehouse &mw,
         std::vector<PartitionId> partitions, uint32_t dense_used = 8,
         uint32_t sparse_used = 6)
{
    SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = std::move(partitions);
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, dense_used, sparse_used, 77);
    transforms::ModelGraphParams gp;
    gp.derived_features = 3;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = 1024;
    return spec;
}

class DppTest : public ::testing::Test
{
  protected:
    static dwrf::WriterOptions
    stripeOptions()
    {
        dwrf::WriterOptions wo;
        wo.rows_per_stripe = 1024; // splits align with rows_per_split
        return wo;
    }

    DppTest()
        : mw_(testing::makeMiniWarehouse(smallParams(), 2, 4096, 2048,
                                         stripeOptions()))
    {
    }
    testing::MiniWarehouse mw_;
};

TEST_F(DppTest, MasterEnumeratesSplitsCoveringAllRows)
{
    Master master(*mw_.warehouse, makeSpec(mw_, {0, 1}));
    // 2 partitions x 4096 rows at 1024 rows/split.
    EXPECT_EQ(master.totalSplits(), 8u);
    auto progress = master.progress();
    EXPECT_EQ(progress.pending_splits, 8u);
    EXPECT_FALSE(progress.done());
}

TEST_F(DppTest, PartitionFilterLimitsSplits)
{
    Master master(*mw_.warehouse, makeSpec(mw_, {1}));
    EXPECT_EQ(master.totalSplits(), 4u);
}

TEST_F(DppTest, SplitLifecycle)
{
    Master master(*mw_.warehouse, makeSpec(mw_, {0}));
    WorkerId w = master.registerWorker();
    auto grant = master.acquireSplit(w, {});
    ASSERT_EQ(grant.status, GrantStatus::Granted);
    auto split = grant.split;
    ASSERT_TRUE(split.has_value());
    EXPECT_EQ(grant.tenant, 0u); // a Master is single-tenant
    EXPECT_EQ(master.progress().inflight_splits, 1u);
    master.completeSplit(w, split->id);
    EXPECT_EQ(master.progress().completed_splits, 1u);
    // Completing twice is a stale (replayed) completion: tolerated,
    // counted, and without effect on progress.
    master.completeSplit(w, split->id);
    EXPECT_EQ(master.progress().completed_splits, 1u);
    EXPECT_EQ(master.metrics().counter("master.stale_completions"),
              1.0);
}

TEST_F(DppTest, FailedWorkerSplitsRequeue)
{
    Master master(*mw_.warehouse, makeSpec(mw_, {0}));
    WorkerId a = master.registerWorker();
    WorkerId b = master.registerWorker();
    auto s1 = master.acquireSplit(a, {}).split;
    ASSERT_TRUE(s1.has_value());
    master.failWorker(a);
    EXPECT_EQ(master.progress().inflight_splits, 0u);
    // b eventually receives the requeued split (it is at the front).
    auto s2 = master.acquireSplit(b, {}).split;
    ASSERT_TRUE(s2.has_value());
    EXPECT_EQ(s2->id, s1->id);
    // A request from a dead (zombie) worker is refused, not fatal —
    // its process may still be mid-RPC when the monitor declares it.
    EXPECT_EQ(master.acquireSplit(a, {}).status, GrantStatus::Rejected);
    EXPECT_EQ(master.metrics().counter("master.stale_requests"), 1.0);
}

TEST_F(DppTest, FullBufferLoadShedsOnTheOnlyRequestPath)
{
    // Regression for the retired no-load requestSplit() wrapper: it
    // always passed an empty WorkerLoad, so a worker reporting a full
    // output buffer was still granted work through it and overload
    // went uncounted. acquireSplit(worker, load) is now the only
    // request path, and the load it carries actually sheds.
    Master master(*mw_.warehouse, makeSpec(mw_, {0}));
    WorkerId w = master.registerWorker();
    WorkerLoad full;
    full.buffer_full = true;
    EXPECT_EQ(master.acquireSplit(w, full).status,
              GrantStatus::Overloaded);
    EXPECT_EQ(master.metrics().counter("master.splits_shed"), 1.0);
    // The shed split stayed queued for a less-loaded request.
    EXPECT_EQ(master.acquireSplit(w, {}).status, GrantStatus::Granted);
}

TEST_F(DppTest, CheckpointRestoreResumesWithoutRedoingWork)
{
    auto spec = makeSpec(mw_, {0, 1});
    Master master(*mw_.warehouse, spec);
    WorkerId w = master.registerWorker();
    for (int i = 0; i < 3; ++i) {
        auto s = master.acquireSplit(w, {}).split;
        master.completeSplit(w, s->id);
    }
    auto in_flight = master.acquireSplit(w, {}).split; // in flight
    ASSERT_TRUE(in_flight.has_value());

    auto bytes = master.checkpoint().serialize();
    auto cp = MasterCheckpoint::deserialize(bytes);
    ASSERT_TRUE(cp.has_value());

    // A replica takes over from the checkpoint.
    Master replica(*mw_.warehouse, spec);
    replica.restore(*cp);
    auto progress = replica.progress();
    EXPECT_EQ(progress.completed_splits, 3u);
    EXPECT_EQ(progress.pending_splits, 5u); // in-flight became pending

    // Draining the replica touches each remaining split exactly once.
    WorkerId rw = replica.registerWorker();
    std::set<uint64_t> seen;
    while (auto s = replica.acquireSplit(rw, {}).split) {
        EXPECT_TRUE(seen.insert(s->id).second);
        replica.completeSplit(rw, s->id);
    }
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_TRUE(replica.progress().done());
}

TEST_F(DppTest, CheckpointPersistsThroughTectonic)
{
    auto spec = makeSpec(mw_, {0});
    Master master(*mw_.warehouse, spec);
    WorkerId w = master.registerWorker();
    auto s = master.acquireSplit(w, {}).split;
    master.completeSplit(w, s->id);
    master.checkpointToStorage(*mw_.cluster, "dpp/ckpt");

    Master replica(*mw_.warehouse, spec);
    replica.restoreFromStorage(*mw_.cluster, "dpp/ckpt");
    EXPECT_EQ(replica.progress().completed_splits, 1u);
    EXPECT_EQ(replica.progress().pending_splits,
              master.totalSplits() - 1);
}

TEST_F(DppTest, MissingCheckpointFallsBackToColdStart)
{
    Master master(*mw_.warehouse, makeSpec(mw_, {0}));
    EXPECT_FALSE(master.restoreFromStorage(*mw_.cluster, "nope"));
    EXPECT_EQ(
        master.metrics().counter("master.checkpoint_restore_failed"),
        1.0);
    // The master is untouched and serves the full split set cold.
    EXPECT_EQ(master.progress().pending_splits, master.totalSplits());
    WorkerId w = master.registerWorker();
    EXPECT_EQ(master.acquireSplit(w, {}).status, GrantStatus::Granted);
}

TEST_F(DppTest, TruncatedCheckpointFallsBackToColdStart)
{
    auto spec = makeSpec(mw_, {0});
    Master master(*mw_.warehouse, spec);
    WorkerId w = master.registerWorker();
    auto s = master.acquireSplit(w, {}).split;
    master.completeSplit(w, s->id);
    master.checkpointToStorage(*mw_.cluster, "dpp/ckpt-trunc");

    // Corrupt the stored checkpoint: overwrite with a truncated blob.
    dwrf::Buffer full;
    {
        auto src = mw_.cluster->open("dpp/ckpt-trunc");
        src->read(0, src->size(), full);
    }
    dwrf::Buffer trunc(full.begin(),
                       full.begin() +
                           static_cast<long>(full.size() / 2));
    mw_.cluster->remove("dpp/ckpt-trunc");
    mw_.cluster->put("dpp/ckpt-trunc", trunc);

    Master replica(*mw_.warehouse, spec);
    EXPECT_FALSE(
        replica.restoreFromStorage(*mw_.cluster, "dpp/ckpt-trunc"));
    EXPECT_EQ(
        replica.metrics().counter("master.checkpoint_restore_failed"),
        1.0);
    // Cold start: no state was inherited from the corrupt checkpoint.
    EXPECT_EQ(replica.progress().completed_splits, 0u);
    EXPECT_EQ(replica.progress().pending_splits,
              replica.totalSplits());
}

TEST_F(DppTest, CorruptCheckpointRejected)
{
    dwrf::Buffer junk{0xff, 0xff, 0xff};
    EXPECT_FALSE(MasterCheckpoint::deserialize(junk).has_value());
}

TEST_F(DppTest, WorkerProducesProjectedTensors)
{
    auto spec = makeSpec(mw_, {0});
    std::set<FeatureId> raw_proj(spec.projection.begin(),
                                 spec.projection.end());
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 1024; // large enough to never backpressure
    Worker worker(master, *mw_.warehouse, wo);
    while (worker.pump()) {
    }
    ASSERT_GT(worker.buffered(), 0u);
    uint64_t rows = 0;
    while (auto tensor = worker.popTensor()) {
        rows += tensor->data.rows;
        EXPECT_LE(tensor->data.rows, spec.batch_size);
        // Raw columns in the tensor only come from the projection
        // (derived outputs have ids above kDerivedFeatureBase).
        for (const auto &c : tensor->data.dense) {
            if (c.id < transforms::kDerivedFeatureBase)
                EXPECT_TRUE(raw_proj.count(c.id)) << c.id;
        }
    }
    EXPECT_EQ(rows, 4096u);
    EXPECT_GT(worker.readStats().bytes_read, 0u);
    EXPECT_GT(worker.transformStats().values_produced, 0u);
}

TEST_F(DppTest, ByteCapBoundsWorkerMemory)
{
    auto spec = makeSpec(mw_, {0, 1});
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 10000;       // count cap out of the way
    wo.buffer_bytes_capacity = 64_KiB; // tight byte cap
    Worker worker(master, *mw_.warehouse, wo);
    while (!worker.bufferFull())
        ASSERT_TRUE(worker.pump());
    // One stripe can overshoot the cap, but not by more than the
    // tensors of a single pump.
    EXPECT_GE(worker.bufferedBytes(), 64_KiB);
    auto assigned = master.metrics().counter("master.splits_assigned");
    EXPECT_TRUE(worker.pump()); // backpressured
    EXPECT_EQ(master.metrics().counter("master.splits_assigned"),
              assigned);
    // Draining below the cap resumes work.
    while (worker.bufferFull())
        ASSERT_TRUE(worker.popTensor().has_value());
    worker.pump();
    EXPECT_GT(worker.buffered(), 0u);
}

TEST_F(DppTest, InjectedBetaFeaturesAppearInTensors)
{
    auto spec = makeSpec(mw_, {0});
    warehouse::FeatureSpec beta_dense;
    beta_dense.id = 900001;
    beta_dense.kind = warehouse::FeatureKind::Dense;
    beta_dense.coverage = 0.5;
    warehouse::FeatureSpec beta_sparse;
    beta_sparse.id = 900002;
    beta_sparse.kind = warehouse::FeatureKind::Sparse;
    beta_sparse.coverage = 0.8;
    beta_sparse.avg_length = 4;
    beta_sparse.cardinality = 1000;
    spec.injected = {beta_dense, beta_sparse};

    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 1024;
    Worker worker(master, *mw_.warehouse, wo);
    while (worker.pump()) {
    }
    uint64_t rows = 0, dense_present = 0, sparse_present = 0;
    while (auto tensor = worker.popTensor()) {
        rows += tensor->data.rows;
        const auto *d = tensor->data.findDense(900001);
        ASSERT_NE(d, nullptr);
        for (uint32_t r = 0; r < tensor->data.rows; ++r)
            dense_present += d->isPresent(r);
        const auto *sp = tensor->data.findSparse(900002);
        ASSERT_NE(sp, nullptr);
        for (uint32_t r = 0; r < tensor->data.rows; ++r) {
            if (sp->length(r) > 0) {
                ++sparse_present;
                for (uint32_t k = sp->offsets[r];
                     k < sp->offsets[r + 1]; ++k) {
                    EXPECT_GE(sp->values[k], 0);
                    EXPECT_LT(sp->values[k], 1000);
                }
            }
        }
    }
    ASSERT_EQ(rows, 4096u);
    // Coverage statistics hold.
    EXPECT_NEAR(static_cast<double>(dense_present) / rows, 0.5, 0.05);
    EXPECT_NEAR(static_cast<double>(sparse_present) / rows, 0.8,
                0.05);
}

TEST_F(DppTest, InjectionIsDeterministicAcrossWorkers)
{
    auto spec = makeSpec(mw_, {0});
    warehouse::FeatureSpec beta;
    beta.id = 900003;
    beta.kind = warehouse::FeatureKind::Sparse;
    beta.coverage = 0.7;
    beta.avg_length = 3;
    spec.injected = {beta};

    auto run = [&]() {
        Master master(*mw_.warehouse, spec);
        WorkerOptions wo;
        wo.buffer_capacity = 1024;
        Worker worker(master, *mw_.warehouse, wo);
        while (worker.pump()) {
        }
        std::vector<int64_t> values;
        while (auto tensor = worker.popTensor()) {
            const auto *sp = tensor->data.findSparse(900003);
            values.insert(values.end(), sp->values.begin(),
                          sp->values.end());
        }
        return values;
    };
    EXPECT_EQ(run(), run());
}

TEST_F(DppTest, BufferBackpressureStopsPumping)
{
    auto spec = makeSpec(mw_, {0, 1});
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 2;
    Worker worker(master, *mw_.warehouse, wo);
    // Pump to the cap: with full buffer pump() returns true but does
    // not take more splits.
    while (!worker.bufferFull())
        ASSERT_TRUE(worker.pump());
    auto assigned = master.metrics().counter("master.splits_assigned");
    EXPECT_TRUE(worker.pump());
    EXPECT_EQ(master.metrics().counter("master.splits_assigned"),
              assigned);
    // Draining one tensor lets it resume.
    worker.popTensor();
    worker.pump();
    EXPECT_GE(master.metrics().counter("master.splits_assigned"),
              assigned);
}

TEST(PartitionedRoundRobin, CoversAllWorkersWithBoundedFanout)
{
    // 4 clients x cap 4 over 16 workers: perfect tiling.
    std::set<uint32_t> covered;
    for (uint32_t c = 0; c < 4; ++c) {
        auto picks = partitionedRoundRobin(c, 4, 16, 4);
        EXPECT_EQ(picks.size(), 4u);
        std::set<uint32_t> uniq(picks.begin(), picks.end());
        EXPECT_EQ(uniq.size(), picks.size()); // no duplicates
        covered.insert(picks.begin(), picks.end());
    }
    EXPECT_EQ(covered.size(), 16u);
}

TEST(PartitionedRoundRobin, CapBelowWorkersStillDistinct)
{
    for (uint32_t clients : {1u, 2u, 3u, 5u}) {
        for (uint32_t c = 0; c < clients; ++c) {
            auto picks = partitionedRoundRobin(c, clients, 7, 3);
            std::set<uint32_t> uniq(picks.begin(), picks.end());
            EXPECT_EQ(uniq.size(), picks.size());
            for (uint32_t w : picks)
                EXPECT_LT(w, 7u);
        }
    }
}

TEST(PartitionedRoundRobin, FanInBalancedWithinOneEverywhere)
{
    // Property: for every (clients, workers, cap) combination, the
    // per-worker fan-in (number of clients connected to it) deviates
    // from perfect uniformity by at most 1 — consecutive client arcs
    // tile the worker ring, so no worker becomes a hotspot.
    for (uint32_t clients : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u}) {
        for (uint32_t workers : {1u, 2u, 3u, 5u, 7u, 8u, 16u, 33u}) {
            for (uint32_t cap : {1u, 2u, 3u, 4u, 8u, 64u}) {
                std::vector<uint32_t> fan_in(workers, 0);
                uint64_t total = 0;
                for (uint32_t c = 0; c < clients; ++c) {
                    auto picks = partitionedRoundRobin(c, clients,
                                                       workers, cap);
                    // Per-client fan-out respects the cap.
                    EXPECT_LE(picks.size(), cap);
                    for (uint32_t w : picks) {
                        ASSERT_LT(w, workers);
                        ++fan_in[w];
                        ++total;
                    }
                }
                // Every worker's fan-in is within +-1 of uniform.
                uint32_t lo = static_cast<uint32_t>(total / workers);
                uint32_t hi = lo + (total % workers ? 1u : 0u);
                for (uint32_t w = 0; w < workers; ++w) {
                    EXPECT_GE(fan_in[w], lo)
                        << clients << "c/" << workers << "w/" << cap;
                    EXPECT_LE(fan_in[w], hi)
                        << clients << "c/" << workers << "w/" << cap;
                }
            }
        }
    }
}

TEST_F(DppTest, SessionDeliversEveryRowOnce)
{
    SessionOptions so;
    so.workers = 3;
    so.clients = 2;
    InProcessSession session(*mw_.warehouse, makeSpec(mw_, {0, 1}),
                             so);
    auto result = session.run();
    EXPECT_EQ(result.rows_delivered, 8192u);
    EXPECT_GT(result.tensors_delivered, 0u);
    EXPECT_GT(result.tensor_bytes, 0u);
    EXPECT_EQ(result.worker_failures, 0u);
}

TEST_F(DppTest, SessionSurvivesWorkerFailure)
{
    SessionOptions so;
    so.workers = 3;
    so.clients = 1;
    InProcessSession session(*mw_.warehouse, makeSpec(mw_, {0, 1}),
                             so);
    auto result = session.run(nullptr, /*fail_after_splits=*/2);
    EXPECT_EQ(result.worker_failures, 1u);
    // Exactly-once delivery survives the failure: the dead worker's
    // undelivered tensors are lost with it, but completion is
    // delivery-gated, so those splits requeue and are replayed; the
    // session ledger suppresses any batch some client already
    // received. Net: every row exactly once.
    EXPECT_EQ(result.rows_delivered, 8192u);
    EXPECT_EQ(result.splits_failed, 0u);
}

TEST_F(DppTest, ClientsSeeDisjointTensors)
{
    // Without failures, each row is delivered to exactly one client.
    SessionOptions so;
    so.workers = 4;
    so.clients = 2;
    so.client.max_connections = 2; // strict partition of the pool
    InProcessSession session(*mw_.warehouse, makeSpec(mw_, {0, 1}),
                             so);
    std::map<ClientId, uint64_t> rows_by_client;
    auto result = session.run(
        [&](ClientId c, const TensorBatch &t) {
            rows_by_client[c] += t.data.rows;
        });
    EXPECT_EQ(result.rows_delivered, 8192u);
    uint64_t sum = 0;
    for (const auto &[c, n] : rows_by_client) {
        EXPECT_GT(n, 0u) << "client " << c << " starved";
        sum += n;
    }
    EXPECT_EQ(sum, 8192u);
}

TEST_F(DppTest, ClientExhaustedAfterDrain)
{
    auto spec = makeSpec(mw_, {0});
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 1024;
    Worker worker(master, *mw_.warehouse, wo);
    while (worker.pump()) {
    }
    Client client(0, 1, {&worker});
    EXPECT_FALSE(client.exhausted()); // buffer still holds tensors
    while (client.next()) {
    }
    EXPECT_TRUE(client.exhausted());
    EXPECT_GT(client.metrics().counter("client.tensors"), 0.0);
}

TEST(AutoScaler, ScalesUpWhenStarving)
{
    AutoScaler scaler(AutoScalerConfig{});
    std::vector<WorkerReport> reports(4);
    for (auto &r : reports)
        r.buffered_tensors = 0; // everyone starving
    auto d = scaler.evaluate(reports, 100.0, 40.0);
    EXPECT_GT(d.target_workers, 4u);
    EXPECT_TRUE(d.starving);
}

TEST(AutoScaler, DrainsWhenOversupplied)
{
    AutoScaler scaler(AutoScalerConfig{});
    std::vector<WorkerReport> reports(16);
    for (auto &r : reports)
        r.buffered_tensors = 10;
    // 16 workers supply 160/s but trainers only need 40/s.
    auto d = scaler.evaluate(reports, 40.0, 160.0);
    EXPECT_LT(d.target_workers, 16u);
    EXPECT_FALSE(d.starving);
}

TEST(AutoScaler, DeadbandSuppressesSmallChanges)
{
    AutoScaler scaler(AutoScalerConfig{});
    std::vector<WorkerReport> reports(10);
    for (auto &r : reports)
        r.buffered_tensors = 3;
    // Demand implies ~10.3 workers: within the 10% deadband.
    auto d = scaler.evaluate(reports, 87.5, 100.0);
    EXPECT_EQ(d.target_workers, 10u);
    EXPECT_EQ(d.delta, 0);
}

TEST(AutoScaler, RespectsBounds)
{
    AutoScalerConfig cfg;
    cfg.min_workers = 2;
    cfg.max_workers = 12;
    AutoScaler scaler(cfg);
    std::vector<WorkerReport> reports(12);
    for (auto &r : reports)
        r.buffered_tensors = 0;
    auto up = scaler.evaluate(reports, 1000.0, 10.0);
    EXPECT_LE(up.target_workers, 12u);
    std::vector<WorkerReport> few(3);
    for (auto &r : few)
        r.buffered_tensors = 50;
    auto down = scaler.evaluate(few, 0.001, 100.0);
    EXPECT_GE(down.target_workers, 2u);
}

TEST(WorkerModel, Rm1IsMemBwBoundNearPaperQps)
{
    auto s = saturateWorker(warehouse::rm1(), sim::computeNodeV1());
    EXPECT_EQ(s.bottleneck, "membw");
    EXPECT_NEAR(s.qps / 1000.0, 11.623, 1.0);
    EXPECT_GT(s.cpu_util, 0.80); // CPU also hot (Fig. 9)
}

TEST(WorkerModel, Rm2IsNicBoundNearPaperQps)
{
    auto s = saturateWorker(warehouse::rm2(), sim::computeNodeV1());
    EXPECT_EQ(s.bottleneck, "nic-in");
    EXPECT_NEAR(s.qps / 1000.0, 7.995, 0.7);
}

TEST(WorkerModel, Rm3IsMemoryCapacityBoundNearPaperQps)
{
    auto s = saturateWorker(warehouse::rm3(), sim::computeNodeV1());
    EXPECT_EQ(s.bottleneck, "memory-capacity");
    EXPECT_NEAR(s.qps / 1000.0, 36.921, 3.0);
    EXPECT_LT(s.threads, sim::computeNodeV1().cores);
}

TEST(WorkerModel, NodesRequiredMatchTableIX)
{
    struct Case
    {
        warehouse::RmSpec rm;
        double expected;
    };
    for (const auto &[rm, expected] :
         {Case{warehouse::rm1(), 24.16}, Case{warehouse::rm2(), 9.44},
          Case{warehouse::rm3(), 55.22}}) {
        auto s = saturateWorker(rm, sim::computeNodeV1());
        EXPECT_NEAR(workersPerTrainer(rm, s), expected,
                    expected * 0.10)
            << rm.name;
    }
}

TEST(WorkerModel, Rm2OnCv2ShiftsToMemBw)
{
    // Section VI-C: on C-v2 (2x NIC) RM2's bottleneck moves from the
    // network to memory bandwidth.
    auto s = saturateWorker(warehouse::rm2(), sim::computeNodeV2());
    EXPECT_EQ(s.bottleneck, "membw");
    EXPECT_GT(s.qps,
              saturateWorker(warehouse::rm2(), sim::computeNodeV1())
                  .qps);
}

} // namespace
} // namespace dsi::dpp
