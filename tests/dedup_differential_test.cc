/**
 * @file
 * Differential-testing harness proving end-to-end dedup lossless.
 *
 * Two sessions run over the *same seeded duplicated corpus*: the
 * baseline stores plain DWRF and transforms every row; the dedup
 * session stores list-dictionary DWRF (WriterOptions::dedup) and
 * collapses duplicate rows before the transform stage
 * (WorkerOptions::dedup_enabled). Every delivered batch — keyed by
 * its replay-stable (split_id, first_row) identity — must be
 * byte-identical between the two, including under worker-crash and
 * corrupt-replica fault injection. Unit tests cover the batch-dedup
 * plan/gather/expand primitives and the Sampling bypass gate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "dpp/session.h"
#include "test_fixtures.h"
#include "transforms/dedup.h"

namespace dsi::dpp {
namespace {

// ---------------------------------------------------------------------
// Plan / gather / expand unit tests.

dwrf::RowBatch
twoColumnBatch(const std::vector<float> &labels,
               const std::vector<float> &dense_values,
               const std::vector<std::vector<int64_t>> &lists)
{
    dwrf::RowBatch batch;
    batch.rows = static_cast<uint32_t>(labels.size());
    batch.labels = labels;

    dwrf::DenseColumn d;
    d.id = 1;
    d.present.assign((batch.rows + 7) / 8, 0);
    d.values = dense_values;
    for (uint32_t r = 0; r < batch.rows; ++r)
        d.setPresent(r);
    batch.dense.push_back(std::move(d));

    dwrf::SparseColumn s;
    s.id = 2;
    s.offsets.assign(batch.rows + 1, 0);
    for (uint32_t r = 0; r < batch.rows; ++r) {
        s.values.insert(s.values.end(), lists[r].begin(),
                        lists[r].end());
        s.offsets[r + 1] = static_cast<uint32_t>(s.values.size());
    }
    batch.sparse.push_back(std::move(s));
    return batch;
}

TEST(BatchDedupPlan, GroupsByFeatureContentNotLabel)
{
    // Rows 0/2/4 share a payload (distinct labels); rows 1/3 share
    // another. Labels must not split the groups.
    auto batch = twoColumnBatch({0.f, 1.f, 1.f, 0.f, 1.f},
                                {2.f, 3.f, 2.f, 3.f, 2.f},
                                {{7, 8}, {9}, {7, 8}, {9}, {7, 8}});
    auto plan = transforms::planBatchDedup(batch);
    ASSERT_EQ(plan.unique_rows.size(), 2u);
    EXPECT_TRUE(plan.collapsed());
    EXPECT_EQ(plan.unique_rows[0], 0u);
    EXPECT_EQ(plan.unique_rows[1], 1u);
    EXPECT_EQ(plan.inverse,
              (std::vector<uint32_t>{0, 1, 0, 1, 0}));
}

TEST(BatchDedupPlan, NearDuplicatesStayDistinct)
{
    // Same dense values but list tails differ; same lists but dense
    // differs; -0.0f vs 0.0f and NaN-vs-NaN bit patterns.
    float nan1 = std::nanf("1");
    auto batch = twoColumnBatch(
        {0.f, 0.f, 0.f, 0.f, 0.f, 0.f},
        {1.f, 1.f, 2.f, -0.f, 0.f, nan1},
        {{5, 6}, {5, 7}, {5, 6}, {}, {}, {}});
    auto plan = transforms::planBatchDedup(batch);
    EXPECT_EQ(plan.unique_rows.size(), 6u);
    EXPECT_FALSE(plan.collapsed());

    // Two bitwise-equal NaN rows DO collapse (exact bit identity).
    auto nan_batch = twoColumnBatch({0.f, 1.f}, {nan1, nan1},
                                    {{3}, {3}});
    EXPECT_TRUE(transforms::planBatchDedup(nan_batch).collapsed());
}

TEST(BatchDedupPlan, ExpandRestoresLabelsAndContent)
{
    auto batch = twoColumnBatch({.5f, .25f, .125f, .0625f},
                                {1.f, 2.f, 1.f, 2.f},
                                {{4, 4}, {8}, {4, 4}, {8}});
    auto plan = transforms::planBatchDedup(batch);
    ASSERT_EQ(plan.unique_rows.size(), 2u);

    std::vector<float> labels = batch.labels;
    auto unique = transforms::gatherRows(batch, plan.unique_rows);
    EXPECT_EQ(unique.rows, 2u);
    auto expanded = transforms::expandBatch(unique, plan, labels);

    ASSERT_EQ(expanded.rows, batch.rows);
    EXPECT_EQ(expanded.labels, batch.labels);
    ASSERT_EQ(expanded.dense.size(), 1u);
    EXPECT_EQ(expanded.dense[0].values, batch.dense[0].values);
    EXPECT_EQ(expanded.dense[0].present, batch.dense[0].present);
    ASSERT_EQ(expanded.sparse.size(), 1u);
    EXPECT_EQ(expanded.sparse[0].offsets, batch.sparse[0].offsets);
    EXPECT_EQ(expanded.sparse[0].values, batch.sparse[0].values);
}

TEST(BatchDedupPlan, SamplingGraphsAreNotRowLocal)
{
    transforms::TransformGraph graph;
    transforms::TransformSpec clamp;
    clamp.kind = transforms::OpKind::Clamp;
    clamp.inputs = {1};
    clamp.output = 1;
    clamp.p0 = 0.0;
    clamp.p1 = 1.0;
    graph.add(clamp);
    EXPECT_TRUE(transforms::rowLocal(graph));

    transforms::TransformSpec sampling;
    sampling.kind = transforms::OpKind::Sampling;
    sampling.p0 = 1.0;
    graph.add(sampling);
    EXPECT_FALSE(transforms::rowLocal(graph));
    transforms::CompiledGraph compiled(graph);
    EXPECT_FALSE(transforms::rowLocal(compiled));
}

// ---------------------------------------------------------------------
// End-to-end differential sessions.

warehouse::SchemaParams
diffParams()
{
    warehouse::SchemaParams p;
    p.name = "dedup_diff";
    p.float_features = 12;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 47;
    return p;
}

warehouse::DupParams
diffDup()
{
    warehouse::DupParams dp;
    dp.pool_size = 96; // small pool => heavy within-batch duplication
    dp.alpha = 1.1;
    dp.seed = 29;
    return dp;
}

SessionSpec
diffSpec(const testing::MiniWarehouse &mw)
{
    SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 6, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = 1024;
    return spec;
}

/** Captures every delivered batch by replay-stable identity. */
struct BatchLog
{
    std::map<std::pair<uint64_t, RowId>, dwrf::RowBatch> batches;
    uint64_t rows = 0;

    InProcessSession::TensorSink sink()
    {
        return [this](ClientId, const TensorBatch &t) {
            auto [it, inserted] =
                batches.emplace(std::pair{t.split_id, t.first_row},
                                t.data);
            EXPECT_TRUE(inserted)
                << "batch (split " << t.split_id << ", row "
                << t.first_row << ") delivered twice";
            rows += t.data.rows;
        };
    }
};

void
expectBatchEqual(const dwrf::RowBatch &a, const dwrf::RowBatch &b,
                 uint64_t split, RowId first_row)
{
    auto ctx = [&](const char *what) {
        return ::testing::Message()
               << what << " differs in batch (split " << split
               << ", row " << first_row << ")";
    };
    ASSERT_EQ(a.rows, b.rows) << ctx("row count");
    // Bitwise float compares throughout: dedup must not normalize
    // NaN payloads or signed zeros anywhere in the pipeline.
    ASSERT_EQ(a.labels.size(), b.labels.size());
    EXPECT_EQ(std::memcmp(a.labels.data(), b.labels.data(),
                          a.labels.size() * sizeof(float)),
              0)
        << ctx("labels");
    ASSERT_EQ(a.dense.size(), b.dense.size()) << ctx("dense count");
    for (size_t c = 0; c < a.dense.size(); ++c) {
        EXPECT_EQ(a.dense[c].id, b.dense[c].id) << ctx("dense id");
        EXPECT_EQ(a.dense[c].present, b.dense[c].present)
            << ctx("presence");
        ASSERT_EQ(a.dense[c].values.size(), b.dense[c].values.size());
        EXPECT_EQ(std::memcmp(a.dense[c].values.data(),
                              b.dense[c].values.data(),
                              a.dense[c].values.size() * sizeof(float)),
                  0)
            << ctx("dense values");
    }
    ASSERT_EQ(a.sparse.size(), b.sparse.size()) << ctx("sparse count");
    for (size_t c = 0; c < a.sparse.size(); ++c) {
        EXPECT_EQ(a.sparse[c].id, b.sparse[c].id) << ctx("sparse id");
        EXPECT_EQ(a.sparse[c].offsets, b.sparse[c].offsets)
            << ctx("offsets");
        EXPECT_EQ(a.sparse[c].values, b.sparse[c].values)
            << ctx("sparse values");
        ASSERT_EQ(a.sparse[c].scores.size(), b.sparse[c].scores.size());
        EXPECT_EQ(std::memcmp(a.sparse[c].scores.data(),
                              b.sparse[c].scores.data(),
                              a.sparse[c].scores.size() * sizeof(float)),
                  0)
            << ctx("scores");
    }
}

void
expectLogsIdentical(const BatchLog &baseline, const BatchLog &dedup)
{
    EXPECT_EQ(baseline.rows, dedup.rows);
    ASSERT_EQ(baseline.batches.size(), dedup.batches.size());
    for (const auto &[key, batch] : baseline.batches) {
        auto it = dedup.batches.find(key);
        ASSERT_NE(it, dedup.batches.end())
            << "batch (split " << key.first << ", row " << key.second
            << ") missing from dedup session";
        expectBatchEqual(batch, it->second, key.first, key.second);
    }
}

class DedupDifferentialTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kTotalRows = 2 * 4096;

    static dwrf::WriterOptions
    writerOptions(bool dedup)
    {
        dwrf::WriterOptions wo;
        wo.rows_per_stripe = 1024;
        wo.dedup = dedup;
        return wo;
    }

    DedupDifferentialTest()
        : plain_(testing::makeDupMiniWarehouse(diffParams(), diffDup(),
                                               2, 4096, 2048,
                                               writerOptions(false))),
          dedup_(testing::makeDupMiniWarehouse(diffParams(), diffDup(),
                                               2, 4096, 2048,
                                               writerOptions(true)))
    {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0xDED0BULL);
    }

    ~DedupDifferentialTest() override
    {
        FaultInjector::instance().reset();
    }

    /** Run the baseline (plain storage, dedup off). Fault-free. */
    BatchLog
    runBaseline()
    {
        SessionOptions so;
        so.workers = 2;
        so.clients = 1;
        InProcessSession session(*plain_.warehouse, diffSpec(plain_),
                                 so);
        BatchLog log;
        auto result = session.run(log.sink());
        EXPECT_EQ(result.rows_delivered, kTotalRows);
        EXPECT_EQ(result.splits_failed, 0u);
        return log;
    }

    /** Run the dedup session (dict storage, batch dedup on). */
    BatchLog
    runDedup(SessionOptions so, SessionResult *result_out = nullptr,
             Metrics *metrics_out = nullptr)
    {
        so.worker.dedup_enabled = true;
        InProcessSession session(*dedup_.warehouse, diffSpec(dedup_),
                                 so);
        BatchLog log;
        auto result = session.run(log.sink());
        EXPECT_EQ(result.splits_failed, 0u);
        if (result_out != nullptr)
            *result_out = result;
        if (metrics_out != nullptr)
            *metrics_out = session.collectMetrics();
        return log;
    }

    testing::MiniWarehouse plain_;
    testing::MiniWarehouse dedup_;
};

TEST_F(DedupDifferentialTest, DeliveriesAreByteIdentical)
{
    BatchLog baseline = runBaseline();
    ASSERT_EQ(baseline.rows, kTotalRows);

    SessionOptions so;
    so.workers = 2;
    so.clients = 1;
    SessionResult result;
    Metrics metrics;
    BatchLog dedup = runDedup(so, &result, &metrics);

    expectLogsIdentical(baseline, dedup);

    // Both dedup layers actually fired — this was not a trivial pass.
    EXPECT_GT(metrics.counter("worker.dedup_batches_collapsed"), 0.0);
    EXPECT_GT(metrics.counter("worker.dedup_rows_in"),
              metrics.counter("worker.dedup_rows_unique"));
    EXPECT_GT(metrics.counter("dwrf.dict_streams"), 0.0);
    EXPECT_GT(result.read_stats.dict_list_refs, 0u);

    // The duplicated corpus stores smaller with dedup on.
    EXPECT_LT(dedup_.table().partitions()[0].stored_bytes,
              plain_.table().partitions()[0].stored_bytes);
}

TEST_F(DedupDifferentialTest, ByteIdenticalUnderWorkerCrash)
{
    BatchLog baseline = runBaseline();

    SessionOptions so;
    so.workers = 2;
    so.clients = 2;
    so.lease_timeout = 0.05;
    // Kill a dedup worker mid-split: the replayed split must
    // reproduce exactly the same bytes (slicing, storage decode, and
    // batch dedup are all deterministic functions of the split).
    ScopedFault crash(faults::kWorkerCrash,
                      FaultSpec{.trigger_hit = 6});
    SessionResult result;
    BatchLog dedup = runDedup(so, &result);

    EXPECT_GE(result.worker_failures, 1u);
    expectLogsIdentical(baseline, dedup);
}

TEST_F(DedupDifferentialTest, ByteIdenticalUnderReplicaCorruption)
{
    // Storage-level verification off: a rotted replica serves its
    // damaged bytes, so detection falls to the DWRF stream checksums
    // (reportCorruption quarantines the replica and the stripe retry
    // rotates to a healthy copy). This is the path a corrupt shared
    // dictionary heals through.
    storage::StorageOptions so_storage;
    so_storage.block_size = 4_MiB;
    so_storage.hdd_nodes = 4;
    so_storage.verify_reads = false;
    auto plain = warehouse::buildDupMiniCorpus(
        diffParams(), diffDup(), 2, 4096, 2048, writerOptions(false),
        so_storage);
    auto dedup_mw = warehouse::buildDupMiniCorpus(
        diffParams(), diffDup(), 2, 4096, 2048, writerOptions(true),
        so_storage);

    SessionOptions so;
    so.workers = 2;
    so.clients = 1;
    InProcessSession base_session(*plain.warehouse, diffSpec(plain),
                                  so);
    BatchLog baseline;
    auto base_result = base_session.run(baseline.sink());
    EXPECT_EQ(base_result.rows_delivered, kTotalRows);

    // Rot up to two replicas mid-run: shared-dict and stripe reads
    // alike must catch the damage via CRC and heal through
    // replica-rotating retries — never deliver wrong bytes.
    ScopedFault corrupt(faults::kTectonicReplicaCorrupt,
                        FaultSpec{.probability = 0.05, .max_fires = 2});
    so.worker.dedup_enabled = true;
    InProcessSession dedup_session(*dedup_mw.warehouse,
                                   diffSpec(dedup_mw), so);
    BatchLog dedup;
    auto result = dedup_session.run(dedup.sink());

    EXPECT_EQ(result.splits_failed, 0u);
    EXPECT_GE(result.read_stats.checksum_mismatches, 1u);
    EXPECT_GE(result.read_stats.stripe_retries, 1u);
    expectLogsIdentical(baseline, dedup);
}

TEST_F(DedupDifferentialTest, SamplingGraphBypassesBatchDedup)
{
    // A graph ending in keep-all Sampling is not row-local: the
    // worker must bypass batch dedup (counted) and still deliver
    // exactly the baseline bytes (keep-all sampling is an identity).
    auto withSampling = [&](const testing::MiniWarehouse &mw) {
        SessionSpec spec = diffSpec(mw);
        auto graph = *transforms::TransformGraph::deserialize(
            spec.serialized_transforms);
        transforms::TransformSpec sampling;
        sampling.kind = transforms::OpKind::Sampling;
        sampling.p0 = 1.0; // keep everything
        graph.add(sampling);
        spec.setTransforms(graph);
        return spec;
    };

    SessionOptions so;
    so.workers = 2;
    so.clients = 1;
    InProcessSession base_session(*plain_.warehouse,
                                  withSampling(plain_), so);
    BatchLog baseline;
    base_session.run(baseline.sink());

    so.worker.dedup_enabled = true;
    InProcessSession dedup_session(*dedup_.warehouse,
                                   withSampling(dedup_), so);
    BatchLog dedup;
    dedup_session.run(dedup.sink());
    Metrics metrics = dedup_session.collectMetrics();

    expectLogsIdentical(baseline, dedup);
    EXPECT_GT(metrics.counter("worker.dedup_bypassed_batches"), 0.0);
    EXPECT_EQ(metrics.counter("worker.dedup_batches_collapsed"), 0.0);
}

TEST_F(DedupDifferentialTest, ParallelPipelineStaysByteIdentical)
{
    BatchLog baseline = runBaseline();

    SessionOptions so;
    so.workers = 2;
    so.clients = 2;
    so.worker.num_extract_threads = 2;
    so.worker.num_transform_threads = 2;
    BatchLog dedup = runDedup(so);
    expectLogsIdentical(baseline, dedup);
}

} // namespace
} // namespace dsi::dpp
