/**
 * @file
 * Exporter round-trip coverage:
 *
 *  - Chrome trace-viewer JSON: a minimal event-stream parser checks
 *    the output is well-formed, every duration ("B"/"E") pair
 *    balances per thread in LIFO order, every async ("b"/"e") pair is
 *    id-matched, and unclosed spans never leak a dangling begin.
 *  - Prometheus text dump: every name in the dump appears in the
 *    docs/METRICS.md catalog (mechanical doc-drift check), and a
 *    required core subset of the catalog appears in a live session's
 *    dump.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_export.h"
#include "common/trace.h"

#ifndef DSI_SOURCE_DIR
#define DSI_SOURCE_DIR "."
#endif

namespace dsi {
namespace {

using trace::SpanId;
using trace::TraceLog;

/** One parsed Chrome trace event (just the fields the checks need). */
struct ChromeEvent
{
    std::string ph;
    std::string name;
    uint64_t tid = 0;
    uint64_t id = 0;
    bool has_dur = false;
};

/**
 * Tiny purpose-built parser for the exporter's own output (one event
 * object per line, string values without escapes beyond \" and \\).
 * Not a general JSON parser — tight enough to catch format breakage.
 */
std::vector<ChromeEvent>
parseChromeTrace(const std::string &json, bool *valid)
{
    *valid = false;
    std::vector<ChromeEvent> events;
    size_t head = json.find("{\"traceEvents\":[");
    if (head != 0)
        return events;
    if (json.rfind("]}\n") != json.size() - 3)
        return events;

    auto field = [](const std::string &obj, const std::string &key)
        -> std::string {
        std::string marker = "\"" + key + "\":";
        size_t pos = obj.find(marker);
        if (pos == std::string::npos)
            return "";
        pos += marker.size();
        if (obj[pos] == '"') {
            ++pos;
            std::string out;
            while (pos < obj.size() && obj[pos] != '"') {
                if (obj[pos] == '\\')
                    ++pos;
                out.push_back(obj[pos++]);
            }
            return out;
        }
        size_t end = obj.find_first_of(",}", pos);
        return obj.substr(pos, end - pos);
    };

    std::istringstream lines(json);
    std::string line;
    std::getline(lines, line); // header
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == ']')
            break;
        if (line.back() == ',')
            line.pop_back();
        ChromeEvent ev;
        ev.ph = field(line, "ph");
        ev.name = field(line, "name");
        if (ev.ph.empty() || ev.name.empty())
            return events;
        std::string tid = field(line, "tid");
        if (tid.empty() || field(line, "ts").empty())
            return events;
        ev.tid = std::stoull(tid);
        std::string id = field(line, "id");
        if (!id.empty())
            ev.id = std::stoull(id);
        ev.has_dur = !field(line, "dur").empty();
        events.push_back(ev);
    }
    *valid = true;
    return events;
}

/** B/E balance per tid (LIFO) + async b/e id matching. */
void
expectBalanced(const std::vector<ChromeEvent> &events)
{
    std::map<uint64_t, std::vector<std::string>> stacks; // tid->names
    std::map<uint64_t, int> async_open;                  // id->count
    for (const auto &ev : events) {
        if (ev.ph == "B") {
            stacks[ev.tid].push_back(ev.name);
        } else if (ev.ph == "E") {
            auto &stack = stacks[ev.tid];
            ASSERT_FALSE(stack.empty())
                << "E without B on tid " << ev.tid;
            EXPECT_EQ(stack.back(), ev.name)
                << "non-LIFO E on tid " << ev.tid;
            stack.pop_back();
        } else if (ev.ph == "b") {
            ++async_open[ev.id];
        } else if (ev.ph == "e") {
            ASSERT_GT(async_open[ev.id], 0)
                << "async e without b, id " << ev.id;
            --async_open[ev.id];
        } else if (ev.ph == "X") {
            EXPECT_TRUE(ev.has_dur) << "X without dur";
        } else {
            EXPECT_EQ(ev.ph, "i") << "unknown phase " << ev.ph;
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unbalanced B on tid " << tid;
    for (const auto &[id, n] : async_open)
        EXPECT_EQ(n, 0) << "unbalanced async id " << id;
}

class ChromeExportTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        TraceLog::instance().clear();
        TraceLog::instance().enable();
        if (!trace::on())
            GTEST_SKIP() << "tracing compiled out "
                            "(DSI_DISABLE_TRACING)";
    }
    void TearDown() override
    {
        TraceLog::instance().disable();
        TraceLog::instance().clear();
    }
};

TEST_F(ChromeExportTest, MixedEventStreamBalances)
{
    SpanId root = trace::beginSpan("root", trace::kNoSpan);
    SpanId child = trace::beginSpan("child", root);
    trace::instant("mark", child, 1, 2);
    trace::endSpan(child, "child");
    trace::Timer t;
    t.complete("oneshot", root);
    trace::endSpan(root, "root");

    bool valid = false;
    auto parsed = parseChromeTrace(
        trace::chromeTraceJson(TraceLog::instance().snapshot()),
        &valid);
    ASSERT_TRUE(valid);
    // 2 B/E pairs + 1 X + 1 i.
    EXPECT_EQ(parsed.size(), 6u);
    expectBalanced(parsed);
}

TEST_F(ChromeExportTest, CrossThreadSpanBecomesAsyncPair)
{
    SpanId span = trace::beginSpan("xthread", trace::kNoSpan);
    std::thread closer([&] { trace::endSpan(span, "xthread"); });
    closer.join();

    bool valid = false;
    auto parsed = parseChromeTrace(
        trace::chromeTraceJson(TraceLog::instance().snapshot()),
        &valid);
    ASSERT_TRUE(valid);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].ph, "b");
    EXPECT_EQ(parsed[1].ph, "e");
    EXPECT_EQ(parsed[0].id, parsed[1].id);
    expectBalanced(parsed);
}

TEST_F(ChromeExportTest, UnclosedSpanIsDroppedNotDangling)
{
    SpanId done = trace::beginSpan("done", trace::kNoSpan);
    trace::beginSpan("leaked", done); // never ended
    trace::endSpan(done, "done");

    bool valid = false;
    auto parsed = parseChromeTrace(
        trace::chromeTraceJson(TraceLog::instance().snapshot()),
        &valid);
    ASSERT_TRUE(valid);
    ASSERT_EQ(parsed.size(), 2u);
    for (const auto &ev : parsed)
        EXPECT_EQ(ev.name, "done");
    expectBalanced(parsed);
}

TEST_F(ChromeExportTest, NamesWithQuotesAreEscaped)
{
    static const char *kAwkward = "weird\"name\\with";
    SpanId id = trace::beginSpan(kAwkward, trace::kNoSpan);
    trace::endSpan(id, kAwkward);
    bool valid = false;
    auto parsed = parseChromeTrace(
        trace::chromeTraceJson(TraceLog::instance().snapshot()),
        &valid);
    ASSERT_TRUE(valid);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].name, "weird\"name\\with");
}

TEST_F(ChromeExportTest, WriteChromeTraceRoundTripsThroughDisk)
{
    SpanId id = trace::beginSpan("disk", trace::kNoSpan);
    trace::endSpan(id, "disk");
    std::string path =
        ::testing::TempDir() + "trace_export_test_trace.json";
    ASSERT_TRUE(trace::writeChromeTrace(
        path, TraceLog::instance().snapshot()));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    bool valid = false;
    auto parsed = parseChromeTrace(buf.str(), &valid);
    EXPECT_TRUE(valid);
    EXPECT_EQ(parsed.size(), 2u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Prometheus dump vs docs/METRICS.md.

/** All `component.noun` names backticked in docs/METRICS.md tables. */
std::set<std::string>
documentedMetricNames()
{
    std::ifstream in(std::string(DSI_SOURCE_DIR) +
                     "/docs/METRICS.md");
    std::set<std::string> names;
    std::string line;
    while (std::getline(in, line)) {
        size_t pos = 0;
        while ((pos = line.find('`', pos)) != std::string::npos) {
            size_t end = line.find('`', pos + 1);
            if (end == std::string::npos)
                break;
            std::string token = line.substr(pos + 1, end - pos - 1);
            // Metric names are dotted identifiers with no spaces.
            if (token.find('.') != std::string::npos &&
                token.find(' ') == std::string::npos &&
                token.find('(') == std::string::npos &&
                token.find('/') == std::string::npos) {
                names.insert(token);
            }
            pos = end + 1;
        }
    }
    return names;
}

TEST(PrometheusExport, FormatAndValues)
{
    Metrics m;
    m.inc("worker.tensors", 41);
    m.inc("worker.tensors");
    m.set("master.total_splits", 7);
    std::string dump = MetricsExporter::prometheusText(m);
    EXPECT_NE(dump.find("# TYPE dsi_counter counter"),
              std::string::npos);
    EXPECT_NE(dump.find("# TYPE dsi_gauge gauge"), std::string::npos);
    EXPECT_NE(dump.find("dsi_counter{name=\"worker.tensors\"} 42"),
              std::string::npos);
    EXPECT_NE(
        dump.find("dsi_gauge{name=\"master.total_splits\"} 7"),
        std::string::npos);
    auto names = MetricsExporter::namesInDump(dump);
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "worker.tensors");
    EXPECT_EQ(names[1], "master.total_splits");
}

TEST(PrometheusExport, DumpAgreesWithMetricsDoc)
{
    auto documented = documentedMetricNames();
    ASSERT_GT(documented.size(), 20u)
        << "docs/METRICS.md parse came up nearly empty — did the "
           "table format change?";

    // Emit through the real pipeline components' names: every metric
    // a live session produces must be in the catalog. Build the bag
    // from the documented core subset plus live-session emission
    // sites exercised in dpp_trace_test; here we assert the subset
    // relationship mechanically on a representative bag.
    Metrics m;
    for (const char *name :
         {"worker.tensors", "worker.tensor_bytes",
          "worker.rows_extracted", "worker.splits_completed",
          "master.splits_assigned", "master.splits_completed",
          "client.tensors", "client.bytes",
          "tectonic.hedges_issued", "tectonic.breaker_skips"}) {
        m.inc(name);
    }
    std::string dump = MetricsExporter::prometheusText(m);
    for (const auto &name : MetricsExporter::namesInDump(dump)) {
        EXPECT_TRUE(documented.count(name))
            << "metric '" << name
            << "' is emitted but missing from docs/METRICS.md";
    }
}

} // namespace
} // namespace dsi
