/**
 * @file
 * Unit tests for every Table XI transformation, spec serialization,
 * and graph compilation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "transforms/graph.h"
#include "transforms/ops.h"
#include "warehouse/datagen.h"

namespace dsi::transforms {
namespace {

/** Batch with one dense feature (id 1) and two sparse (ids 10, 11). */
dwrf::RowBatch
testBatch()
{
    std::vector<dwrf::Row> rows(3);
    rows[0].label = 1;
    rows[0].dense = {{1, 0.25f}};
    rows[0].sparse.push_back({10, {5, 7, 9}, {}});
    rows[0].sparse.push_back({11, {7, 8}, {}});
    rows[1].label = 0;
    rows[1].dense = {{1, 0.75f}};
    rows[1].sparse.push_back({10, {-3, 5}, {}});
    rows[1].sparse.push_back({11, {2}, {}});
    rows[2].label = 0; // row with nothing but dense
    rows[2].dense = {{1, 42.0f}};
    return dwrf::batchFromRows(rows);
}

TransformSpec
spec(OpKind kind, std::vector<FeatureId> inputs, FeatureId out)
{
    TransformSpec s;
    s.kind = kind;
    s.inputs = std::move(inputs);
    s.output = out;
    return s;
}

TEST(Ops, ClampBoundsValues)
{
    auto batch = testBatch();
    auto s = spec(OpKind::Clamp, {1}, 100);
    s.p0 = 0.3;
    s.p1 = 1.0;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findDense(100);
    ASSERT_NE(out, nullptr);
    EXPECT_FLOAT_EQ(out->values[0], 0.3f);
    EXPECT_FLOAT_EQ(out->values[1], 0.75f);
    EXPECT_FLOAT_EQ(out->values[2], 1.0f);
    EXPECT_EQ(stats.values_consumed, 3u);
}

TEST(Ops, LogitMapsUnitInterval)
{
    auto batch = testBatch();
    auto s = spec(OpKind::Logit, {1}, 100);
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findDense(100);
    ASSERT_NE(out, nullptr);
    EXPECT_NEAR(out->values[0], std::log(0.25 / 0.75), 1e-5);
    EXPECT_NEAR(out->values[1], std::log(0.75 / 0.25), 1e-5);
    // 42 clamps to 1 - eps -> large positive.
    EXPECT_GT(out->values[2], 10.0f);
}

TEST(Ops, BoxCoxLambdaZeroIsLog)
{
    auto batch = testBatch();
    auto s = spec(OpKind::BoxCox, {1}, 100);
    s.p0 = 0.0;
    s.p1 = 1.0;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    EXPECT_NEAR(batch.findDense(100)->values[0], std::log(1.25), 1e-5);
}

TEST(Ops, BucketizeProducesBucketIndices)
{
    auto batch = testBatch();
    auto s = spec(OpKind::Bucketize, {1}, 100);
    s.p0 = 0.0;
    s.p1 = 0.5;
    s.u0 = 4;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findDense(100);
    EXPECT_FLOAT_EQ(out->values[0], 0.0f); // 0.25 -> bucket 0
    EXPECT_FLOAT_EQ(out->values[1], 1.0f); // 0.75 -> bucket 1
    EXPECT_FLOAT_EQ(out->values[2], 3.0f); // 42 clamps to last
}

TEST(Ops, OnehotEmitsSingleCategorical)
{
    auto batch = testBatch();
    auto s = spec(OpKind::Onehot, {1}, 100);
    s.p0 = 0.0;
    s.p1 = 0.5;
    s.u0 = 8;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->length(0), 1u);
    EXPECT_EQ(out->values[out->offsets[1]], 1); // 0.75 / 0.5 -> 1
}

TEST(Ops, GetLocalHourWrapsDay)
{
    auto batch = testBatch();
    // Treat dense value 42 as a timestamp; offset 3 hours.
    auto s = spec(OpKind::GetLocalHour, {1}, 100);
    s.u0 = 3;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findDense(100);
    EXPECT_FLOAT_EQ(out->values[2], 3.0f); // 42s + 3h -> hour 3
    for (float v : out->values) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 24.0f);
    }
}

TEST(Ops, SigridHashBoundsAndDeterminism)
{
    auto batch = testBatch();
    auto s = spec(OpKind::SigridHash, {10}, 100);
    s.u0 = 77;
    s.u1 = 1000;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->values.size(), 5u); // 3 + 2 + 0
    for (int64_t v : out->values) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 1000);
    }
    // Same input id twice hashes identically.
    EXPECT_EQ(sigridHash64(5, 77), sigridHash64(5, 77));
    EXPECT_NE(sigridHash64(5, 77), sigridHash64(5, 78));
}

TEST(Ops, FirstXTruncates)
{
    auto batch = testBatch();
    auto s = spec(OpKind::FirstX, {10}, 100);
    s.u0 = 2;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    EXPECT_EQ(out->length(0), 2u);
    EXPECT_EQ(out->length(1), 2u);
    EXPECT_EQ(out->values[0], 5);
    EXPECT_EQ(out->values[1], 7);
}

TEST(Ops, PositiveModulusAlwaysNonNegative)
{
    auto batch = testBatch();
    auto s = spec(OpKind::PositiveModulus, {10}, 100);
    s.u0 = 7;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    for (int64_t v : out->values) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 7);
    }
    // -3 mod 7 -> 4
    EXPECT_EQ(out->values[out->offsets[1]], 4);
}

TEST(Ops, MapIdRemapsDictionary)
{
    auto batch = testBatch();
    auto s = spec(OpKind::MapId, {10}, 100);
    s.u0 = 8; // ids < 8 remap to id+1, others to default
    s.u1 = 0;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    EXPECT_EQ(out->values[0], 6); // 5 -> 6
    EXPECT_EQ(out->values[2], 0); // 9 -> default
}

TEST(Ops, EnumerateAddsPositionScores)
{
    auto batch = testBatch();
    auto s = spec(OpKind::Enumerate, {10}, 100);
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    ASSERT_EQ(out->scores.size(), out->values.size());
    EXPECT_FLOAT_EQ(out->scores[0], 0.0f);
    EXPECT_FLOAT_EQ(out->scores[2], 2.0f);
}

TEST(Ops, ComputeScoreAffine)
{
    std::vector<dwrf::Row> rows(1);
    rows[0].sparse.push_back({10, {1, 2}, {0.5f, 1.5f}});
    auto batch = dwrf::batchFromRows(rows);
    auto s = spec(OpKind::ComputeScore, {10}, 100);
    s.p0 = 2.0;
    s.p1 = 1.0;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    EXPECT_FLOAT_EQ(out->scores[0], 2.0f);
    EXPECT_FLOAT_EQ(out->scores[1], 4.0f);
}

TEST(Ops, CartesianCrossesListsWithCap)
{
    auto batch = testBatch();
    auto s = spec(OpKind::Cartesian, {10, 11}, 100);
    s.u0 = 4; // cap
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    EXPECT_EQ(out->length(0), 4u); // 3x2 capped to 4
    EXPECT_EQ(out->length(1), 2u); // 2x1
    EXPECT_EQ(out->length(2), 0u);
}

TEST(Ops, IdListTransformIntersects)
{
    auto batch = testBatch();
    auto s = spec(OpKind::IdListTransform, {10, 11}, 100);
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    ASSERT_EQ(out->length(0), 1u);
    EXPECT_EQ(out->values[0], 7); // {5,7,9} n {7,8}
    EXPECT_EQ(out->length(1), 0u);
}

TEST(Ops, NGramEmitsWindows)
{
    auto batch = testBatch();
    auto s = spec(OpKind::NGram, {10}, 100);
    s.u0 = 2;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    const auto *out = batch.findSparse(100);
    EXPECT_EQ(out->length(0), 2u); // 3 ids -> 2 bigrams
    EXPECT_EQ(out->length(1), 1u);
    for (int64_t v : out->values)
        EXPECT_GE(v, 0);
}

TEST(Ops, SamplingKeepsApproxFraction)
{
    std::vector<dwrf::Row> rows(4000);
    for (size_t i = 0; i < rows.size(); ++i)
        rows[i].dense = {{1, static_cast<float>(i)}};
    auto batch = dwrf::batchFromRows(rows);
    auto s = spec(OpKind::Sampling, {}, 0);
    s.p0 = 0.25;
    s.u0 = 9;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    EXPECT_NEAR(batch.rows, 1000u, 120u);
    EXPECT_EQ(stats.rows_in, 4000u);
    EXPECT_EQ(stats.rows_out, batch.rows);
    // Columns stay consistent.
    ASSERT_EQ(batch.dense.size(), 1u);
    EXPECT_EQ(batch.dense[0].values.size(), batch.rows);
}

TEST(Ops, MissingInputIsTolerated)
{
    auto batch = testBatch();
    auto s = spec(OpKind::SigridHash, {999}, 100);
    s.u1 = 10;
    TransformStats stats;
    compileTransform(s)->apply(batch, stats);
    EXPECT_EQ(batch.findSparse(100), nullptr);
    EXPECT_EQ(stats.values_consumed, 0u);
}

TEST(Ops, WrongArityDies)
{
    auto s = spec(OpKind::Cartesian, {10}, 100);
    EXPECT_DEATH(compileTransform(s), "expects 2 inputs");
}

TEST(Ops, ClassesMatchPaperCatalog)
{
    EXPECT_EQ(opClassOf(OpKind::Bucketize),
              OpClass::FeatureGeneration);
    EXPECT_EQ(opClassOf(OpKind::NGram), OpClass::FeatureGeneration);
    EXPECT_EQ(opClassOf(OpKind::MapId), OpClass::FeatureGeneration);
    EXPECT_EQ(opClassOf(OpKind::SigridHash),
              OpClass::SparseNormalization);
    EXPECT_EQ(opClassOf(OpKind::FirstX),
              OpClass::SparseNormalization);
    EXPECT_EQ(opClassOf(OpKind::Logit), OpClass::DenseNormalization);
    EXPECT_EQ(opClassOf(OpKind::BoxCox), OpClass::DenseNormalization);
    EXPECT_EQ(opClassOf(OpKind::Onehot), OpClass::DenseNormalization);
    EXPECT_EQ(opClassOf(OpKind::Sampling), OpClass::Sampling);
}

TEST(Graph, CompiledGraphIsDeterministic)
{
    warehouse::SchemaParams p;
    p.float_features = 12;
    p.sparse_features = 8;
    p.avg_length = 6;
    auto schema = warehouse::makeSchema(p);
    auto pop = warehouse::featurePopularity(schema, 1.0, 4);
    auto proj = warehouse::chooseProjection(schema, pop, 6, 4, 4);
    transforms::ModelGraphParams gp;
    gp.derived_features = 4;
    auto graph = makeModelGraph(schema, proj, gp);

    warehouse::RowGenerator gen(schema, 9);
    auto base = dwrf::batchFromRows(gen.batch(64));

    auto run = [&]() {
        CompiledGraph compiled(graph);
        dwrf::RowBatch batch = base;
        compiled.apply(batch);
        uint64_t fingerprint = batch.rows;
        for (const auto &c : batch.sparse)
            for (int64_t v : c.values)
                fingerprint =
                    sigridHash64(fingerprint, static_cast<uint64_t>(v));
        return fingerprint;
    };
    EXPECT_EQ(run(), run());
}

TEST(Graph, SameGraphAfterSerializationProducesSameOutput)
{
    warehouse::SchemaParams p;
    p.float_features = 8;
    p.sparse_features = 6;
    p.avg_length = 5;
    auto schema = warehouse::makeSchema(p);
    auto pop = warehouse::featurePopularity(schema, 1.0, 4);
    auto proj = warehouse::chooseProjection(schema, pop, 4, 3, 4);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    auto graph = makeModelGraph(schema, proj, gp);
    auto wire = TransformGraph::deserialize(graph.serialize());
    ASSERT_TRUE(wire.has_value());

    warehouse::RowGenerator gen(schema, 3);
    auto batch_a = dwrf::batchFromRows(gen.batch(32));
    auto batch_b = batch_a;
    CompiledGraph(graph).apply(batch_a);
    CompiledGraph(*wire).apply(batch_b);
    ASSERT_EQ(batch_a.sparse.size(), batch_b.sparse.size());
    for (size_t i = 0; i < batch_a.sparse.size(); ++i)
        EXPECT_EQ(batch_a.sparse[i].values, batch_b.sparse[i].values);
}

TEST(Spec, SerializeRoundTrip)
{
    TransformSpec s;
    s.kind = OpKind::Cartesian;
    s.output = 12345;
    s.inputs = {7, 9};
    s.p0 = 1.5;
    s.p1 = -2.0;
    s.u0 = 64;
    s.u1 = 0xabcdef;
    dwrf::Buffer buf;
    s.serialize(buf);
    TransformSpec back;
    size_t pos = 0;
    ASSERT_TRUE(TransformSpec::deserialize(buf, pos, back));
    EXPECT_EQ(back.kind, s.kind);
    EXPECT_EQ(back.output, s.output);
    EXPECT_EQ(back.inputs, s.inputs);
    EXPECT_FLOAT_EQ(back.p0, 1.5f);
    EXPECT_EQ(back.u1, s.u1);
    EXPECT_EQ(pos, buf.size());
}

TEST(Graph, SerializeRoundTripAndCompile)
{
    TransformGraph graph;
    auto s1 = spec(OpKind::SigridHash, {10}, 100);
    s1.u1 = 64;
    graph.add(s1);
    auto s2 = spec(OpKind::FirstX, {100}, 101);
    s2.u0 = 2;
    graph.add(s2);

    auto bytes = graph.serialize();
    auto back = TransformGraph::deserialize(bytes);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), 2u);

    CompiledGraph compiled(*back);
    auto batch = testBatch();
    auto stats = compiled.apply(batch);
    // Chained: output of hash feeds FirstX.
    const auto *out = batch.findSparse(101);
    ASSERT_NE(out, nullptr);
    EXPECT_LE(out->length(0), 2u);
    EXPECT_GT(stats.values_consumed, 0u);
}

TEST(Graph, MalformedBytesRejected)
{
    dwrf::Buffer junk{0x02, 0xff};
    EXPECT_FALSE(TransformGraph::deserialize(junk).has_value());
}

TEST(Graph, MakeModelGraphShape)
{
    warehouse::SchemaParams p;
    p.float_features = 30;
    p.sparse_features = 20;
    p.avg_length = 8;
    auto schema = warehouse::makeSchema(p);
    auto pop = warehouse::featurePopularity(schema, 1.0, 5);
    auto proj = warehouse::chooseProjection(schema, pop, 10, 8, 77);

    ModelGraphParams gp;
    gp.derived_features = 6;
    auto graph = makeModelGraph(schema, proj, gp);
    EXPECT_GT(graph.size(), 6u * gp.min_chain);
    EXPECT_GT(graph.countClass(OpClass::FeatureGeneration), 0u);
    EXPECT_GT(graph.countClass(OpClass::SparseNormalization), 0u);
    EXPECT_GT(graph.countClass(OpClass::DenseNormalization), 0u);

    // Graph must execute cleanly on generated data.
    warehouse::RowGenerator gen(schema, 3);
    auto batch = dwrf::batchFromRows(gen.batch(64));
    CompiledGraph compiled(graph);
    auto stats = compiled.apply(batch);
    EXPECT_GT(stats.values_produced, 0u);
    // Feature generation should dominate consumed values.
    EXPECT_GT(stats.classShare(OpClass::FeatureGeneration), 0.4);
}

} // namespace
} // namespace dsi::transforms
