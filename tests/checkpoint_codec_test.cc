/**
 * @file
 * Property + fuzz suite for the durable control-plane codecs.
 *
 * Three layers are covered, each of which must never crash on byte
 * soup (the whole point of versioned, length-checked formats):
 *
 *  - MasterCheckpoint (v2): seeded random round-trips, unknown-version
 *    rejection, truncation at every prefix length, random bit flips,
 *    zero-length input.
 *  - LedgerCheckpoint (v1): the same battery.
 *  - CheckpointJournal records on a real TectonicCluster: torn tails,
 *    corrupt bytes, and dropped publishes (via the checkpoint.write.*
 *    fault points) must fall back to the newest valid record — or to
 *    a clean cold start — never to a crash or a mis-parse.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "dpp/checkpoint_journal.h"
#include "dpp/ledger.h"
#include "dpp/master.h"

namespace dsi::dpp {
namespace {

MasterCheckpoint
randomMasterCheckpoint(Rng &rng)
{
    MasterCheckpoint cp;
    cp.epoch = rng.nextUint(1000);
    cp.next_split_cursor = rng.nextUint(1 << 20);
    for (uint64_t i = 0, n = rng.nextUint(32); i < n; ++i)
        cp.completed.push_back(rng.nextUint(1 << 16));
    for (uint64_t i = 0, n = rng.nextUint(8); i < n; ++i)
        cp.failed.push_back(rng.nextUint(1 << 16));
    for (uint64_t i = 0, n = rng.nextUint(8); i < n; ++i)
        cp.attempts.emplace_back(
            rng.nextUint(1 << 16),
            static_cast<uint32_t>(1 + rng.nextUint(5)));
    for (uint64_t i = 0, n = rng.nextUint(8); i < n; ++i)
        cp.delivered_stripes.emplace_back(
            rng.nextUint(1 << 16),
            static_cast<uint32_t>(1 + rng.nextUint(64)));
    return cp;
}

LedgerCheckpoint
randomLedgerCheckpoint(Rng &rng)
{
    LedgerCheckpoint cp;
    cp.duplicates = rng.nextUint(100);
    for (uint64_t i = 0, n = rng.nextUint(64); i < n; ++i)
        cp.delivered.emplace_back(rng.nextUint(1 << 16),
                                  rng.nextUint(1 << 24));
    return cp;
}

void
expectEqual(const MasterCheckpoint &a, const MasterCheckpoint &b)
{
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.next_split_cursor, b.next_split_cursor);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.delivered_stripes, b.delivered_stripes);
}

TEST(MasterCheckpointCodec, RandomRoundTrips)
{
    Rng rng(0xC0DEC1);
    for (int i = 0; i < 200; ++i) {
        auto cp = randomMasterCheckpoint(rng);
        auto back = MasterCheckpoint::deserialize(cp.serialize());
        ASSERT_TRUE(back.has_value()) << "round trip " << i;
        expectEqual(cp, *back);
    }
}

TEST(MasterCheckpointCodec, RejectsUnknownVersion)
{
    Rng rng(0xC0DEC2);
    auto bytes = randomMasterCheckpoint(rng).serialize();
    // The format version is the leading varint; v2 encodes as one
    // byte, so bumping it in place forges a future-format checkpoint.
    ASSERT_EQ(bytes[0], MasterCheckpoint::kFormatVersion);
    bytes[0] = MasterCheckpoint::kFormatVersion + 1;
    EXPECT_FALSE(MasterCheckpoint::deserialize(bytes).has_value());
}

TEST(MasterCheckpointCodec, RejectsEveryTruncation)
{
    Rng rng(0xC0DEC3);
    auto bytes = randomMasterCheckpoint(rng).serialize();
    ASSERT_GT(bytes.size(), 4u);
    for (size_t len = 0; len < bytes.size(); ++len) {
        dwrf::Buffer prefix(bytes.begin(),
                            bytes.begin() + static_cast<long>(len));
        EXPECT_FALSE(MasterCheckpoint::deserialize(prefix).has_value())
            << "prefix of " << len << "/" << bytes.size()
            << " bytes parsed";
    }
}

TEST(MasterCheckpointCodec, SurvivesRandomBitFlips)
{
    // A single-codec checkpoint has no checksum (the journal's CRC is
    // the integrity layer), so a flip may decode to a *different*
    // valid checkpoint — but it must never crash, over-allocate, or
    // read out of bounds (ASan guards this test).
    Rng rng(0xC0DEC4);
    for (int i = 0; i < 300; ++i) {
        auto bytes = randomMasterCheckpoint(rng).serialize();
        size_t byte = rng.nextUint(bytes.size());
        bytes[byte] ^=
            static_cast<uint8_t>(1u << rng.nextUint(8));
        auto back = MasterCheckpoint::deserialize(bytes);
        if (back) {
            // Whatever decoded must round-trip through the codec.
            auto again =
                MasterCheckpoint::deserialize(back->serialize());
            ASSERT_TRUE(again.has_value());
            expectEqual(*back, *again);
        }
    }
}

TEST(MasterCheckpointCodec, RejectsZeroLengthAndJunk)
{
    EXPECT_FALSE(MasterCheckpoint::deserialize({}).has_value());
    dwrf::Buffer junk = {0xff, 0xff, 0xff, 0xff, 0xff};
    EXPECT_FALSE(MasterCheckpoint::deserialize(junk).has_value());
}

TEST(LedgerCheckpointCodec, RandomRoundTrips)
{
    Rng rng(0x1EDC1);
    for (int i = 0; i < 200; ++i) {
        auto cp = randomLedgerCheckpoint(rng);
        auto back = LedgerCheckpoint::deserialize(cp.serialize());
        ASSERT_TRUE(back.has_value()) << "round trip " << i;
        EXPECT_EQ(cp.delivered, back->delivered);
        EXPECT_EQ(cp.duplicates, back->duplicates);
    }
}

TEST(LedgerCheckpointCodec, RejectsUnknownVersion)
{
    Rng rng(0x1EDC2);
    auto bytes = randomLedgerCheckpoint(rng).serialize();
    ASSERT_EQ(bytes[0], LedgerCheckpoint::kFormatVersion);
    bytes[0] = LedgerCheckpoint::kFormatVersion + 1;
    EXPECT_FALSE(LedgerCheckpoint::deserialize(bytes).has_value());
}

TEST(LedgerCheckpointCodec, RejectsEveryTruncation)
{
    Rng rng(0x1EDC3);
    auto bytes = randomLedgerCheckpoint(rng).serialize();
    ASSERT_GT(bytes.size(), 4u);
    for (size_t len = 0; len < bytes.size(); ++len) {
        dwrf::Buffer prefix(bytes.begin(),
                            bytes.begin() + static_cast<long>(len));
        EXPECT_FALSE(LedgerCheckpoint::deserialize(prefix).has_value())
            << "prefix of " << len << " bytes parsed";
    }
}

TEST(LedgerCheckpointCodec, SurvivesRandomBitFlips)
{
    Rng rng(0x1EDC4);
    for (int i = 0; i < 300; ++i) {
        auto bytes = randomLedgerCheckpoint(rng).serialize();
        size_t byte = rng.nextUint(bytes.size());
        bytes[byte] ^=
            static_cast<uint8_t>(1u << rng.nextUint(8));
        auto back = LedgerCheckpoint::deserialize(bytes);
        if (back) {
            auto again =
                LedgerCheckpoint::deserialize(back->serialize());
            ASSERT_TRUE(again.has_value());
            EXPECT_EQ(back->delivered, again->delivered);
        }
    }
}

TEST(LedgerCheckpointCodec, RejectsZeroLength)
{
    EXPECT_FALSE(LedgerCheckpoint::deserialize({}).has_value());
}

TEST(LedgerCheckpointCodec, RestoreSuppressesReplayedKeys)
{
    DeliveryLedger first;
    ASSERT_TRUE(first.claim(7, 0));
    ASSERT_TRUE(first.claim(7, 256));
    auto cp = first.checkpoint();
    auto back = LedgerCheckpoint::deserialize(cp.serialize());
    ASSERT_TRUE(back.has_value());

    DeliveryLedger second;
    second.restore(*back);
    EXPECT_FALSE(second.claim(7, 0));   // already reached a trainer
    EXPECT_FALSE(second.claim(7, 256));
    EXPECT_TRUE(second.claim(7, 512));  // the resumed stream
}

// ---------------------------------------------------------------------
// Journal-record layer.

class JournalFuzzTest : public ::testing::Test
{
  protected:
    JournalFuzzTest() : cluster_(storageOptions())
    {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0x10CC1);
    }
    ~JournalFuzzTest() override { FaultInjector::instance().reset(); }

    static storage::StorageOptions storageOptions()
    {
        storage::StorageOptions so;
        so.block_size = 1_MiB;
        so.hdd_nodes = 4;
        return so;
    }

    static dwrf::Buffer payload(const std::string &s)
    {
        return dwrf::Buffer(s.begin(), s.end());
    }

    storage::TectonicCluster cluster_;
};

TEST_F(JournalFuzzTest, EmptyJournalIsCleanColdStart)
{
    CheckpointJournal j(cluster_, "fuzz/journal");
    auto rec = j.recover();
    EXPECT_FALSE(rec.found);
    EXPECT_EQ(rec.corrupt_skipped, 0u);
}

TEST_F(JournalFuzzTest, RecoversNewestOfSeveral)
{
    CheckpointJournal j(cluster_, "fuzz/journal");
    j.append(payload("one"));
    j.append(payload("two"));
    auto last = j.append(payload("three"));
    auto rec = j.recover();
    ASSERT_TRUE(rec.found);
    EXPECT_EQ(rec.seq, last.seq);
    EXPECT_EQ(rec.payload, payload("three"));
}

TEST_F(JournalFuzzTest, TornTailFallsBackToPriorRecord)
{
    CheckpointJournal j(cluster_, "fuzz/journal");
    j.append(payload("good"));
    ScopedFault torn(faults::kCheckpointWriteTorn,
                     FaultSpec{.trigger_hit = 1});
    j.append(payload("torn-away"));
    auto rec = j.recover();
    ASSERT_TRUE(rec.found);
    EXPECT_EQ(rec.payload, payload("good"));
    EXPECT_GE(rec.corrupt_skipped, 1u);
}

TEST_F(JournalFuzzTest, CorruptTailFallsBackToPriorRecord)
{
    CheckpointJournal j(cluster_, "fuzz/journal");
    j.append(payload("good"));
    ScopedFault corrupt(faults::kCheckpointWriteCorrupt,
                        FaultSpec{.trigger_hit = 1});
    j.append(payload("flipped"));
    auto rec = j.recover();
    ASSERT_TRUE(rec.found);
    EXPECT_EQ(rec.payload, payload("good"));
    EXPECT_GE(rec.corrupt_skipped, 1u);
}

TEST_F(JournalFuzzTest, CrashBeforePublishLeavesPriorRecord)
{
    CheckpointJournal j(cluster_, "fuzz/journal");
    auto first = j.append(payload("published"));
    ScopedFault crash(faults::kCheckpointWriteCrash,
                      FaultSpec{.trigger_hit = 1});
    auto dropped = j.append(payload("never-published"));
    EXPECT_FALSE(dropped.published);
    auto rec = j.recover();
    ASSERT_TRUE(rec.found);
    EXPECT_EQ(rec.seq, first.seq);
    EXPECT_EQ(rec.payload, payload("published"));
}

TEST_F(JournalFuzzTest, AllRecordsCorruptIsColdStartNotCrash)
{
    CheckpointJournal j(cluster_, "fuzz/journal");
    ScopedFault corrupt(faults::kCheckpointWriteCorrupt,
                        FaultSpec{.probability = 1.0});
    for (int i = 0; i < 3; ++i)
        j.append(payload("doomed"));
    auto rec = j.recover();
    EXPECT_FALSE(rec.found);
    EXPECT_GE(rec.corrupt_skipped, 3u);
}

TEST_F(JournalFuzzTest, SuccessorResumesSequencePastSurvivors)
{
    uint64_t last_seq = 0;
    {
        CheckpointJournal j(cluster_, "fuzz/journal");
        j.append(payload("a"));
        last_seq = j.append(payload("b")).seq;
    }
    // A journal rebuilt over the same base (a restarted Master) must
    // never reuse a published sequence number.
    CheckpointJournal successor(cluster_, "fuzz/journal");
    EXPECT_GT(successor.nextSeq(), last_seq);
    auto next = successor.append(payload("c"));
    EXPECT_GT(next.seq, last_seq);
    auto rec = successor.recover();
    ASSERT_TRUE(rec.found);
    EXPECT_EQ(rec.payload, payload("c"));
}

} // namespace
} // namespace dsi::dpp
