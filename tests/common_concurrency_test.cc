/**
 * @file
 * Tests for the concurrency primitives under the parallel DPP data
 * plane: ThreadPool scheduling/quiesce and BoundedQueue MPMC
 * semantics (blocking, bounding, close/drain), plus the ObjectPool
 * recycling the extract stage's stripe buffers (max_idle and
 * retained-bytes bounds, dirty handback, concurrent acquire/release).
 * The MPMC stress cases and the pool stress case are the ones tier-1
 * runs under TSan (-DDSI_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "dwrf/reader.h"
#include "dwrf/source.h"
#include "dwrf/writer.h"

namespace dsi {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 100);
    EXPECT_EQ(pool.pending(), 0u);
    EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksRunConcurrently)
{
    // Two tasks that each wait for the other can only finish if the
    // pool really runs them on distinct threads.
    ThreadPool pool(2);
    std::atomic<int> arrived{0};
    for (int i = 0; i < 2; ++i) {
        pool.submit([&arrived] {
            ++arrived;
            while (arrived.load() < 2)
                std::this_thread::yield();
        });
    }
    pool.wait();
    EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&done] { ++done; });
        pool.wait();
        EXPECT_EQ(done.load(), (round + 1) * 20);
    }
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&done] { ++done; });
    }
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, HardwareConcurrencyIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(BoundedQueue, FifoWithinCapacity)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushRespectsBound)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)); // full
    q.pop();
    EXPECT_TRUE(q.tryPush(3));
}

TEST(BoundedQueue, TryPopOnEmptyReturnsNothing)
{
    BoundedQueue<int> q(2);
    EXPECT_FALSE(q.tryPop().has_value());
    q.push(7);
    EXPECT_EQ(q.tryPop().value(), 7);
}

TEST(BoundedQueue, PushBlocksUntilSpace)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(2)); // blocks: queue full
        pushed = true;
    });
    // Give the producer a chance to block, then make room.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseUnblocksProducerAndConsumer)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread producer([&] {
        EXPECT_FALSE(q.push(2)); // blocked, then closed -> false
    });
    // No consumer runs until close(), so the producer can only be
    // released by the close itself.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    producer.join();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(3));           // pushes after close fail fast
    EXPECT_EQ(q.pop().value(), 1);     // close still drains contents
    EXPECT_FALSE(q.pop().has_value()); // closed + empty

    // A consumer blocked on an empty queue is released by close too.
    BoundedQueue<int> empty(1);
    std::thread consumer([&] {
        EXPECT_FALSE(empty.pop().has_value());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    empty.close();
    consumer.join();
}

TEST(BoundedQueue, MpmcStressDeliversEveryItemOnce)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 2000;
    BoundedQueue<int> q(8);

    std::vector<std::thread> threads;
    std::atomic<long long> sum{0};
    std::atomic<int> count{0};
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (auto v = q.pop()) {
                sum += *v;
                ++count;
            }
        });
    }
    std::atomic<int> producers_left{kProducers};
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
            if (--producers_left == 0)
                q.close();
        });
    }
    for (auto &t : threads)
        t.join();

    constexpr long long n = kProducers * kPerProducer;
    EXPECT_EQ(count.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    EXPECT_EQ(q.size(), 0u);
}

TEST(PercentileSampler, ConcurrentReadersAndWritersAreSafe)
{
    // percentile() sorts lazily inside a const method; before it took
    // the sampler mutex, concurrent readers raced on the sort (and on
    // the dirty flag) — this is the TSan regression test for that.
    PercentileSampler sampler;
    for (int i = 0; i < 1000; ++i)
        sampler.add(static_cast<double>(i));

    constexpr int kReaders = 4;
    constexpr int kWriters = 2;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 500; ++i) {
                double p50 = sampler.percentile(50.0);
                double p99 = sampler.percentile(99.0);
                EXPECT_LE(p50, p99);
                EXPECT_GE(sampler.mean(), 0.0);
                EXPECT_GE(sampler.stddev(), 0.0);
            }
        });
    }
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 500; ++i)
                sampler.add(static_cast<double>(1000 + w * 500 + i));
        });
    }
    go = true;
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(sampler.count(), 1000u + kWriters * 500u);
}

TEST(IoTrace, ConcurrentRecordAndInspectIsRaceFree)
{
    // Regression: IoTrace is shared by concurrent extract threads and
    // the hedge pool. Writers record() while readers take snapshots
    // and distributions — under TSan this flags any unguarded access.
    dwrf::IoTrace trace;
    constexpr int kWriters = 4;
    constexpr int kReaders = 3;
    constexpr int kIosPerWriter = 500;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kIosPerWriter; ++i)
                trace.record(static_cast<Bytes>(w) * 1_MiB +
                                 static_cast<Bytes>(i),
                             4096);
        });
    }
    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 200; ++i) {
                // The two counters cannot be read atomically as a
                // pair; writers may record between the calls. Reading
                // bytes first bounds it by the later count.
                Bytes total = trace.totalBytes();
                uint64_t n = trace.count();
                EXPECT_LE(total, n * 4096);
                auto snapshot = trace.records();
                EXPECT_LE(snapshot.size(), trace.count());
                auto dist = trace.sizeDistribution();
                if (dist.count() > 0) {
                    EXPECT_EQ(dist.percentile(50.0), 4096.0);
                }
            }
        });
    }
    go = true;
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(trace.count(),
              static_cast<uint64_t>(kWriters) * kIosPerWriter);
    EXPECT_EQ(trace.totalBytes(),
              static_cast<Bytes>(kWriters) * kIosPerWriter * 4096);
    trace.clear();
    EXPECT_EQ(trace.count(), 0u);
    EXPECT_EQ(trace.totalBytes(), 0u);
}

// ---------------------------------------------------------------------
// ObjectPool: the worker's stripe-buffer arena (common/pool.h).

/** A batch whose single dense column retains ~`bytes` of heap. */
std::unique_ptr<dwrf::RowBatch>
batchRetaining(size_t bytes)
{
    auto b = std::make_unique<dwrf::RowBatch>();
    b->dense.resize(1);
    b->dense[0].values.reserve(bytes / sizeof(float));
    return b;
}

TEST(ObjectPool, MaxIdleBoundsTheFreeList)
{
    ObjectPool<int> pool(/*max_idle=*/2);
    auto a = pool.acquire();
    auto b = pool.acquire();
    auto c = pool.acquire();
    EXPECT_EQ(pool.allocated(), 3u);
    pool.release(std::move(a));
    pool.release(std::move(b));
    EXPECT_EQ(pool.idle(), 2u);
    pool.release(std::move(c)); // at the boundary: dropped, not kept
    EXPECT_EQ(pool.idle(), 2u);
    pool.release(nullptr); // ignored
    EXPECT_EQ(pool.idle(), 2u);

    pool.acquire();
    pool.acquire();
    EXPECT_EQ(pool.reused(), 2u);
    pool.acquire();
    EXPECT_EQ(pool.allocated(), 4u); // free list was empty again
}

TEST(ObjectPool, RetainedBytesCapEvictsOldestIdle)
{
    auto sizer = [](const dwrf::RowBatch &b) {
        return static_cast<size_t>(b.heapBytes());
    };

    // Regression: an uncapped pool pins a huge stripe's footprint in
    // its idle list forever.
    ObjectPool<dwrf::RowBatch> unbounded(8, 0, sizer);
    unbounded.release(batchRetaining(4_MiB));
    EXPECT_GE(unbounded.retainedBytes(), 4_MiB);
    EXPECT_EQ(unbounded.evicted(), 0u);

    // A capped pool sheds oldest-first back under the cap.
    constexpr size_t kCap = 256 * 1024;
    ObjectPool<dwrf::RowBatch> pool(8, kCap, sizer);
    pool.release(batchRetaining(64 * 1024));
    pool.release(batchRetaining(64 * 1024));
    EXPECT_EQ(pool.evicted(), 0u);
    EXPECT_EQ(pool.idle(), 2u);
    pool.release(batchRetaining(4_MiB)); // blows the cap
    EXPECT_LE(pool.retainedBytes(), kCap);
    EXPECT_GE(pool.evicted(), 1u);
    // The retained account reconciles exactly with the idle objects.
    size_t remembered = pool.retainedBytes();
    size_t idle_total = 0;
    while (pool.idle() > 0)
        idle_total += sizer(*pool.acquire());
    EXPECT_EQ(idle_total, remembered);
    EXPECT_EQ(pool.retainedBytes(), 0u);
}

TEST(ObjectPool, DirtyHandbackReusesCapacityAndDecodesClean)
{
    // Write a two-stripe file, then decode stripe 1 twice: once into
    // a fresh batch and once into a *dirty* pooled batch still
    // carrying stripe 0's contents. The reader's capacity recycling
    // (FileReader::recycleBatch) must make the two byte-identical
    // while reusing the dirty batch's heap blocks.
    Rng rng(7);
    std::vector<dwrf::Row> rows;
    for (uint32_t i = 0; i < 512; ++i) {
        dwrf::Row r;
        r.label = rng.nextBool(0.1) ? 1.0f : 0.0f;
        r.dense.push_back({100, static_cast<float>(rng.nextDouble())});
        dwrf::SparseFeature s;
        s.id = 200;
        for (uint64_t k = 0; k < 1 + rng.nextUint(8); ++k)
            s.values.push_back(static_cast<int64_t>(rng.nextUint(1u << 16)));
        r.sparse.push_back(std::move(s));
        rows.push_back(std::move(r));
    }
    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 256;
    dwrf::FileWriter writer(wo);
    writer.appendRows(rows);
    dwrf::MemorySource src(writer.finish());
    dwrf::FileReader reader(src, dwrf::ReadOptions{});
    ASSERT_TRUE(reader.valid());
    ASSERT_EQ(reader.stripeCount(), 2u);

    dwrf::RowBatch fresh;
    ASSERT_EQ(reader.readStripe(1, fresh), dwrf::ReadStatus::Ok);

    auto sizer = [](const dwrf::RowBatch &b) {
        return static_cast<size_t>(b.heapBytes());
    };
    ObjectPool<dwrf::RowBatch> pool(4, 0, sizer);
    auto pooled = pool.acquire();
    ASSERT_EQ(reader.readStripe(0, *pooled), dwrf::ReadStatus::Ok);
    EXPECT_GT(pooled->rows, 0u);
    dwrf::RowBatch *raw = pooled.get();
    Bytes dirty_heap = pooled->heapBytes();
    pool.release(std::move(pooled));

    auto again = pool.acquire();
    ASSERT_EQ(again.get(), raw); // same object, handed back dirty
    EXPECT_EQ(pool.reused(), 1u);
    EXPECT_GT(again->rows, 0u) << "pool must not clear state itself";
    ASSERT_EQ(reader.readStripe(1, *again), dwrf::ReadStatus::Ok);
    // Same decoded contents as the fresh batch…
    auto a = fresh.toRows();
    auto b = again->toRows();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(a[i].label, b[i].label);
        ASSERT_EQ(a[i].dense.size(), b[i].dense.size());
        ASSERT_EQ(a[i].sparse.size(), b[i].sparse.size());
    }
    // …with the recycled heap still in service (stripes are equal
    // sized, so reuse cannot require growing the footprint much).
    EXPECT_LE(again->heapBytes(), dirty_heap * 2);
}

TEST(ObjectPool, ConcurrentAcquireReleaseKeepsInvariants)
{
    // The TSan shard's pool stress: hammer one pool from many threads
    // through a capped, sizer-measured acquire/release cycle and
    // check the counters reconcile exactly afterwards.
    constexpr int kThreads = 8;
    constexpr int kItersPerThread = 400;
    constexpr size_t kCap = 64 * 1024;
    auto sizer = [](const dwrf::RowBatch &b) {
        return static_cast<size_t>(b.heapBytes());
    };
    ObjectPool<dwrf::RowBatch> pool(4, kCap, sizer);

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&pool, &go, t] {
            while (!go.load())
                std::this_thread::yield();
            Rng rng(static_cast<uint64_t>(t) + 1);
            for (int i = 0; i < kItersPerThread; ++i) {
                auto b = pool.acquire();
                // Dirty the object: grow a column to a random size.
                b->rows = static_cast<uint32_t>(i + 1);
                b->dense.resize(1);
                b->dense[0].values.resize(rng.nextUint(2048));
                pool.release(std::move(b));
            }
        });
    }
    go = true;
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(pool.allocated() + pool.reused(),
              static_cast<uint64_t>(kThreads) * kItersPerThread);
    EXPECT_LE(pool.idle(), 4u);
    EXPECT_LE(pool.retainedBytes(), kCap);
    // Final account must equal the sizer total of what is idle now.
    size_t drained = 0;
    size_t remembered = pool.retainedBytes();
    while (pool.idle() > 0)
        drained += sizer(*pool.acquire());
    EXPECT_EQ(drained, remembered);
    EXPECT_EQ(pool.retainedBytes(), 0u);
}

} // namespace
} // namespace dsi
