/**
 * @file
 * Tests for the Tectonic-like storage cluster: placement, replication
 * accounting, read routing, SSD cache, and provisioning math.
 */

#include <gtest/gtest.h>

#include "dwrf/reader.h"
#include "dwrf/writer.h"
#include "storage/provisioning.h"
#include "storage/tectonic.h"

namespace dsi::storage {
namespace {

dwrf::Buffer
bytesOf(size_t n, uint8_t fill = 0x5a)
{
    return dwrf::Buffer(n, fill);
}

StorageOptions
smallCluster()
{
    StorageOptions o;
    o.block_size = 1_MiB;
    o.replication = 3;
    o.hdd_nodes = 4;
    return o;
}

TEST(Tectonic, PutAndReadBack)
{
    TectonicCluster cluster(smallCluster());
    dwrf::Buffer data(3u * 1_MiB + 123);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 7);
    cluster.put("a/file", data);

    EXPECT_TRUE(cluster.exists("a/file"));
    EXPECT_EQ(cluster.fileSize("a/file"), data.size());

    auto src = cluster.open("a/file");
    dwrf::Buffer out;
    src->read(1_MiB - 10, 100, out);
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], data[1_MiB - 10 + i]);
}

TEST(Tectonic, AppendExtendsFile)
{
    TectonicCluster cluster(smallCluster());
    cluster.create("f");
    cluster.append("f", bytesOf(100));
    cluster.append("f", bytesOf(200));
    EXPECT_EQ(cluster.fileSize("f"), 300u);
    EXPECT_EQ(cluster.logicalBytes(), 300u);
    EXPECT_EQ(cluster.physicalBytes(), 900u); // triplicate
}

TEST(Tectonic, CreateTruncatesExisting)
{
    TectonicCluster cluster(smallCluster());
    cluster.put("f", bytesOf(500));
    cluster.put("f", bytesOf(100));
    EXPECT_EQ(cluster.fileSize("f"), 100u);
    EXPECT_EQ(cluster.logicalBytes(), 100u);
}

TEST(Tectonic, ReadSpanningBlocksFansOutIos)
{
    TectonicCluster cluster(smallCluster());
    cluster.put("f", bytesOf(4u * 1_MiB));
    auto src = cluster.open("f");
    dwrf::Buffer out;
    // Read across 3 blocks: [1MiB-100, 3MiB-100).
    src->read(1_MiB - 100, 2u * 1_MiB, out);
    uint64_t node_ios = 0;
    for (const auto &n : cluster.nodes())
        node_ios += n.ioCount();
    EXPECT_EQ(node_ios, 3u);
    // But the logical trace records one IO.
    EXPECT_EQ(src->trace().count(), 1u);
}

TEST(Tectonic, NodeAccountingAccumulates)
{
    TectonicCluster cluster(smallCluster());
    cluster.put("f", bytesOf(2u * 1_MiB));
    auto src = cluster.open("f");
    dwrf::Buffer out;
    for (int i = 0; i < 50; ++i)
        src->read(0, 4096, out);
    uint64_t ios = 0;
    Bytes served = 0;
    double busy = 0;
    for (const auto &n : cluster.nodes()) {
        ios += n.ioCount();
        served += n.bytesServed();
        busy += n.busySeconds();
    }
    EXPECT_EQ(ios, 50u);
    EXPECT_EQ(served, 50u * 4096u);
    EXPECT_GT(busy, 0.0);
    cluster.resetAccounting();
    for (const auto &n : cluster.nodes())
        EXPECT_EQ(n.ioCount(), 0u);
}

TEST(Tectonic, CacheAbsorbsRepeatedReads)
{
    StorageOptions o = smallCluster();
    o.cache_blocks = 8;
    TectonicCluster cluster(o);
    cluster.put("f", bytesOf(2u * 1_MiB));
    auto src = cluster.open("f");
    dwrf::Buffer out;
    for (int i = 0; i < 20; ++i)
        src->read(0, 4096, out);
    EXPECT_EQ(cluster.cacheMisses(), 1u);
    EXPECT_EQ(cluster.cacheHits(), 19u);
    // HDD nodes only saw the miss.
    uint64_t hdd_ios = 0;
    for (const auto &n : cluster.nodes())
        hdd_ios += n.ioCount();
    EXPECT_EQ(hdd_ios, 1u);
}

TEST(Tectonic, CacheEvictsLru)
{
    StorageOptions o = smallCluster();
    o.cache_blocks = 2;
    TectonicCluster cluster(o);
    cluster.put("f", bytesOf(4u * 1_MiB)); // 4 blocks
    auto src = cluster.open("f");
    dwrf::Buffer out;
    src->read(0, 16, out);            // block 0 -> miss, cached
    src->read(1_MiB, 16, out);        // block 1 -> miss, cached
    src->read(0, 16, out);            // hit (block 0 now MRU)
    src->read(2u * 1_MiB, 16, out);   // miss, evicts block 1
    src->read(1_MiB, 16, out);        // miss again
    EXPECT_EQ(cluster.cacheHits(), 1u);
    EXPECT_EQ(cluster.cacheMisses(), 4u);
}

TEST(Tectonic, ReplicationCappedByNodeCount)
{
    StorageOptions o;
    o.block_size = 1_MiB;
    o.replication = 5;
    o.hdd_nodes = 2;
    TectonicCluster cluster(o);
    cluster.put("f", bytesOf(1_MiB));
    auto src = cluster.open("f");
    dwrf::Buffer out;
    src->read(0, 16, out); // must not crash routing
    SUCCEED();
}

TEST(Tectonic, ReadsSurviveReplicaFailures)
{
    TectonicCluster cluster(smallCluster()); // 4 nodes, 3 replicas
    cluster.put("f", bytesOf(1_MiB));
    cluster.failNode(0);
    cluster.failNode(1);
    EXPECT_EQ(cluster.liveNodes(), 2u);
    auto src = cluster.open("f");
    dwrf::Buffer out;
    for (int i = 0; i < 20; ++i)
        src->read(0, 4096, out); // must route around dead replicas
    // Only live nodes served IO.
    EXPECT_EQ(cluster.nodes()[0].ioCount() +
                  cluster.nodes()[1].ioCount(),
              0u);
    cluster.recoverNode(0);
    EXPECT_EQ(cluster.liveNodes(), 3u);
}

TEST(Tectonic, AllReplicasDownIsFatal)
{
    StorageOptions o;
    o.block_size = 1_MiB;
    o.replication = 2;
    o.hdd_nodes = 2;
    TectonicCluster cluster(o);
    cluster.put("f", bytesOf(1000));
    cluster.failNode(0);
    cluster.failNode(1);
    auto src = cluster.open("f");
    dwrf::Buffer out;
    EXPECT_DEATH(src->read(0, 16, out), "all replicas down");
}

TEST(Tectonic, AllReplicasDownIsRecoverableViaCheckedRead)
{
    // The checked read path reports the loss as a status instead of
    // dying, so callers (the DWRF reader, the Master's checkpoint
    // restore) can retry or fail over.
    StorageOptions o;
    o.block_size = 1_MiB;
    o.replication = 2;
    o.hdd_nodes = 2;
    TectonicCluster cluster(o);
    cluster.put("f", bytesOf(1000));
    cluster.failNode(0);
    cluster.failNode(1);
    auto src = cluster.open("f");
    dwrf::Buffer out;
    EXPECT_EQ(src->readChecked(0, 16, out),
              dwrf::IoStatus::Unavailable);
    EXPECT_TRUE(out.empty());
    EXPECT_GE(cluster.metrics().counter("tectonic.failed_reads"), 1.0);
    // Recovery makes the same read succeed.
    cluster.recoverNode(0);
    EXPECT_EQ(src->readChecked(0, 16, out), dwrf::IoStatus::Ok);
    EXPECT_EQ(out.size(), 16u);
}

TEST(Tectonic, DwrfReaderWorksOverTectonic)
{
    // Integration: a DWRF file stored in the cluster decodes through
    // a TectonicSource exactly as from memory.
    TectonicCluster cluster(smallCluster());
    dwrf::FileWriter writer(dwrf::WriterOptions{});
    for (int i = 0; i < 100; ++i) {
        dwrf::Row row;
        row.label = static_cast<float>(i % 2);
        row.dense.push_back({7, static_cast<float>(i)});
        writer.append(row);
    }
    cluster.put("t/f.dwrf", writer.finish());

    auto src = cluster.open("t/f.dwrf");
    dwrf::FileReader reader(*src, dwrf::ReadOptions{});
    ASSERT_TRUE(reader.valid());
    auto batch = reader.readStripe(0);
    EXPECT_EQ(batch.rows, 100u);
    ASSERT_EQ(batch.dense.size(), 1u);
    EXPECT_FLOAT_EQ(batch.dense[0].values[42], 42.0f);
}

TEST(Provisioning, HddGapMatchesPaperScale)
{
    // Section VII: given PB datasets and small IOs, the HDD
    // throughput-to-storage gap exceeds 8x even with 3x replication.
    ProvisioningDemand d;
    d.dataset_bytes = static_cast<Bytes>(11.95e15); // RM1 used PB
    d.replication = 3;
    // Aggregate storage read throughput for a large combo wave.
    d.read_throughput_bps = 3.0e12;
    d.avg_io_bytes = 23200; // Table VI mean IO size
    auto plan = provisionHdd(d);
    EXPECT_GT(plan.gap, 8.0);
    EXPECT_GT(plan.nodes_for_iops, plan.nodes_for_capacity);
    EXPECT_DOUBLE_EQ(plan.nodes_required, plan.nodes_for_iops);
}

TEST(Provisioning, SsdFlipsTheGap)
{
    ProvisioningDemand d;
    d.dataset_bytes = static_cast<Bytes>(11.95e15);
    d.replication = 3;
    d.read_throughput_bps = 0.5e12;
    d.avg_io_bytes = 700000; // post-coalescing IO size
    auto ssd = provisionSsd(d);
    // SSDs are capacity-bound on PB datasets: an unfavorable
    // storage-to-throughput direction (Section VII).
    EXPECT_LT(ssd.gap, 1.0);
    EXPECT_DOUBLE_EQ(ssd.nodes_required, ssd.nodes_for_capacity);
}

TEST(Provisioning, TieringBeatsBothPureOptions)
{
    ProvisioningDemand d;
    d.dataset_bytes = static_cast<Bytes>(11.95e15);
    d.replication = 3;
    d.read_throughput_bps = 0.5e12;
    d.avg_io_bytes = 700000;
    auto hdd = provisionHdd(d);
    auto ssd = provisionSsd(d);
    // Fig. 7: RM1's hottest 39% of bytes serve 80% of traffic.
    auto tiered = provisionTiered(d, 0.80, 0.39);
    EXPECT_LT(tiered.power_watts, hdd.power_watts);
    EXPECT_LT(tiered.power_watts, ssd.power_watts);
}

} // namespace
} // namespace dsi::storage
