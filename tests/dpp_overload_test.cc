/**
 * @file
 * Overload-protection suite: deadlines, hedged reads, admission
 * control, circuit breakers, and live auto-scaling, end to end.
 *
 * Each scenario drives a full DPP session through an injected overload
 * condition (straggling replica, persistent replica errors, blown
 * split budgets, saturated workers, over/under-provisioned pools) and
 * asserts graceful degradation: the session still completes, delivery
 * stays exactly once, nothing waits unboundedly, and the protection
 * mechanism leaves its fingerprints in the metrics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "dpp/session.h"
#include "test_fixtures.h"

namespace dsi::dpp {
namespace {

warehouse::SchemaParams
overloadParams()
{
    warehouse::SchemaParams p;
    p.name = "overload";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 47;
    return p;
}

SessionSpec
overloadSpec(const testing::MiniWarehouse &mw,
             uint64_t rows_per_split = 1024)
{
    SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = rows_per_split;
    return spec;
}

/** Counts every delivered batch by its replay-stable identity. */
struct DeliveryLog
{
    std::map<std::pair<uint64_t, RowId>, uint64_t> count;
    uint64_t rows = 0;

    InProcessSession::TensorSink sink()
    {
        return [this](ClientId, const TensorBatch &t) {
            ++count[{t.split_id, t.first_row}];
            rows += t.data.rows;
        };
    }

    /** Every key exactly once — no duplicates, no gaps in totals. */
    void expectExactlyOnce(uint64_t expected_rows) const
    {
        for (const auto &[key, n] : count) {
            EXPECT_EQ(n, 1u) << "batch (split " << key.first
                             << ", row " << key.second
                             << ") delivered " << n << " times";
        }
        EXPECT_EQ(rows, expected_rows);
    }
};

class OverloadTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kTotalRows = 2 * 4096;

    static dwrf::WriterOptions
    stripeOptions()
    {
        dwrf::WriterOptions wo;
        wo.rows_per_stripe = 1024;
        return wo;
    }

    OverloadTest()
        : mw_(testing::makeMiniWarehouse(overloadParams(), 2, 4096,
                                         2048, stripeOptions()))
    {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0x10ADULL);
    }

    ~OverloadTest() override { FaultInjector::instance().reset(); }

    testing::MiniWarehouse mw_;
};

TEST_F(OverloadTest, HedgedReadsCompleteUnderStraggler)
{
    // Every read has a 35% chance of a 10 ms stall — a straggling
    // replica. With hedging armed (cold-start trigger 0.2 ms, far
    // below the stall), the stalled primary is raced by a backup to
    // another replica and the backup usually wins.
    storage::HedgeOptions hedge;
    hedge.enabled = true;
    mw_.cluster->setHedging(hedge);

    SessionOptions so;
    so.workers = 2;
    InProcessSession session(*mw_.warehouse, overloadSpec(mw_), so);
    // Armed after construction so the Master's split enumeration does
    // not burn the fault budget.
    ScopedFault slow(faults::kTectonicReadDelay,
                     FaultSpec{.probability = 0.35,
                               .max_fires = 64,
                               .latency_seconds = 0.01});
    DeliveryLog log;
    auto result = session.run(log.sink());

    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.splits_failed, 0u);
    const auto &cm = mw_.cluster->metrics();
    EXPECT_GE(cm.counter("tectonic.hedges_issued"), 1.0);
    EXPECT_GE(cm.counter("tectonic.hedge_wins"), 1.0);
}

TEST_F(OverloadTest, SplitDeadlineExpiresAndRequeues)
{
    // One 3 s stall against a 1 s per-split budget: the split that
    // eats the stall blows its deadline and is put back — either
    // released voluntarily by the worker (no attempt charged) or
    // reaped by the Master's expiry sweep. The replay then completes
    // cleanly, so nothing is failed and delivery is intact. The
    // budget is generous so that *unstalled* splits never expire even
    // at sanitizer speeds (TSan extraction is ~10-20x slower).
    SessionOptions so;
    so.workers = 2;
    so.admission.split_deadline_s = 1.0;
    // 2-stripe splits: expiry is observable between stripes.
    InProcessSession session(*mw_.warehouse, overloadSpec(mw_, 2048),
                             so);
    ScopedFault slow(faults::kTectonicReadDelay,
                     FaultSpec{.max_fires = 1,
                               .latency_seconds = 3.0});
    DeliveryLog log;
    auto result = session.run(log.sink());

    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.splits_failed, 0u);
    const auto &mm = session.master().metrics();
    double put_back = mm.counter("master.deadline_expired") +
                      mm.counter("master.splits_released");
    EXPECT_GE(put_back, 1.0);
}

TEST_F(OverloadTest, AdmissionControlShedsSaturatedWorker)
{
    // One worker, two extract threads, but a one-split in-flight cap:
    // while thread A holds its split (held until the trainer drains
    // its tensors), thread B's acquisitions come back Overloaded and
    // it backs off instead of stacking more work onto the worker.
    SessionOptions so;
    so.workers = 1;
    so.worker.num_extract_threads = 2;
    so.worker.num_transform_threads = 1;
    so.worker.buffer_capacity = 4;
    so.admission.max_inflight_per_worker = 1;
    InProcessSession session(*mw_.warehouse, overloadSpec(mw_), so);
    DeliveryLog log;
    auto result = session.run(log.sink());

    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.splits_failed, 0u);
    EXPECT_GE(session.master().metrics().counter("master.splits_shed"),
              1.0);
}

TEST_F(OverloadTest, CircuitBreakerEjectsAndRecovers)
{
    // A hard replica-error phase (every replica IO fails, 18 fires —
    // each failed open burns one fire per replica) trips per-node
    // breakers open; reads inside the cooldown skip ejected replicas,
    // and the fail-open second pass keeps blocks readable even with
    // every breaker open. Once the fault exhausts, successful reads
    // close the breakers again. Attempts are raised because the
    // requeue discipline (push-front) makes the front splits absorb
    // consecutive failed opens.
    SessionOptions so;
    so.workers = 2;
    so.max_split_attempts = 10;
    InProcessSession session(*mw_.warehouse, overloadSpec(mw_), so);
    ScopedFault err(faults::kTectonicReplicaError,
                    FaultSpec{.max_fires = 18});
    DeliveryLog log;
    auto result = session.run(log.sink());

    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.splits_failed, 0u);
    const auto &cm = mw_.cluster->metrics();
    EXPECT_GE(cm.counter("breaker.open"), 1.0);
    EXPECT_GE(cm.counter("breaker.closed"), 1.0);
}

TEST_F(OverloadTest, LiveAutoscaleLaunchesOnStarvation)
{
    // Start undersized (1 worker) with slow storage (1 ms per read):
    // the trainer drains faster than the pool produces, buffers sit
    // empty, and the controller launches workers mid-run.
    SessionOptions so;
    so.workers = 1;
    so.autoscale.enabled = true;
    so.autoscale.interval_s = 0.002;
    so.autoscale.scaler.min_workers = 1;
    so.autoscale.scaler.max_workers = 4;
    InProcessSession session(*mw_.warehouse,
                             overloadSpec(mw_, 512), so);
    ScopedFault slow(faults::kTectonicReadDelay,
                     FaultSpec{.max_fires = 1000,
                               .latency_seconds = 0.001});
    DeliveryLog log;
    auto result = session.run(log.sink());

    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.splits_failed, 0u);
    EXPECT_GE(result.workers_launched, 1u);
    EXPECT_GE(session.workerCount(), 1u);
    EXPECT_FALSE(session.scalingLog().empty());
}

TEST_F(OverloadTest, LiveAutoscaleDrainsOverProvisionedPool)
{
    // Start oversized (4 workers) against a controller cap of 2: the
    // first evaluation targets <= 2, victims drain gracefully (finish
    // and deliver everything held), and the retired pool shrinks — no
    // tensor is lost on the way down.
    SessionOptions so;
    so.workers = 4;
    so.autoscale.enabled = true;
    so.autoscale.interval_s = 0.002;
    so.autoscale.scaler.min_workers = 1;
    so.autoscale.scaler.max_workers = 2;
    InProcessSession session(*mw_.warehouse,
                             overloadSpec(mw_, 512), so);
    ScopedFault slow(faults::kTectonicReadDelay,
                     FaultSpec{.max_fires = 1000,
                               .latency_seconds = 0.001});
    DeliveryLog log;
    auto result = session.run(log.sink());

    log.expectExactlyOnce(kTotalRows);
    EXPECT_EQ(result.splits_failed, 0u);
    EXPECT_GE(result.workers_drained, 1u);
    EXPECT_LE(session.workerCount(), 4u);
}

TEST_F(OverloadTest, ScalingLogReplaysIdenticallyThroughFreshPolicy)
{
    // Anti-drift: feed the exact WorkerReport stream the live session
    // saw through a fresh AutoScaler (the sim_session path) and
    // require identical decisions — live scaling and simulation are
    // the same policy, not two policies that happen to agree today.
    SessionOptions so;
    so.workers = 1;
    so.autoscale.enabled = true;
    so.autoscale.interval_s = 0.002;
    so.autoscale.scaler.max_workers = 3;
    InProcessSession session(*mw_.warehouse,
                             overloadSpec(mw_, 512), so);
    ScopedFault slow(faults::kTectonicReadDelay,
                     FaultSpec{.max_fires = 500,
                               .latency_seconds = 0.001});
    DeliveryLog log;
    session.run(log.sink());

    ASSERT_FALSE(session.scalingLog().empty());
    AutoScaler replay(so.autoscale.scaler);
    for (const auto &ev : session.scalingLog()) {
        auto d = replay.evaluate(ev.reports, ev.demand_rate,
                                 ev.supply_rate);
        EXPECT_EQ(d.target_workers, ev.decision.target_workers);
        EXPECT_EQ(d.delta, ev.decision.delta);
        EXPECT_EQ(d.starving, ev.decision.starving);
    }
    log.expectExactlyOnce(kTotalRows);
}

TEST_F(OverloadTest, DeadlineBoundedClientFetchExpires)
{
    // A trainer fetch against a stalled pipeline must return within
    // its budget instead of hanging. Run the session to completion
    // first, then ask an exhausted client for more with a bounded
    // deadline: nullopt, immediately, via the exhausted path — and a
    // fresh session's client with an already-expired budget gives up
    // without waiting.
    SessionOptions so;
    so.workers = 1;
    InProcessSession session(*mw_.warehouse, overloadSpec(mw_), so);
    DeliveryLog log;
    session.run(log.sink());
    log.expectExactlyOnce(kTotalRows);

    Worker idle(session.master(), *mw_.warehouse);
    std::vector<Worker *> pool = {&idle};
    Client client(0, 1, pool);
    auto t0 = std::chrono::steady_clock::now();
    auto batch = client.next(Deadline::after(0.01));
    auto waited = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    EXPECT_FALSE(batch.has_value());
    EXPECT_LT(waited, 1.0) << "deadline-bounded fetch overstayed";
}

} // namespace
} // namespace dsi::dpp
