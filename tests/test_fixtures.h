/**
 * @file
 * Shared test fixtures: a small warehouse with synthetic tables.
 */

#ifndef DSI_TESTS_TEST_FIXTURES_H
#define DSI_TESTS_TEST_FIXTURES_H

#include <memory>
#include <string>

#include "dwrf/writer.h"
#include "storage/tectonic.h"
#include "warehouse/datagen.h"
#include "warehouse/table.h"

namespace dsi::testing {

/** A Tectonic cluster + warehouse with one generated table. */
struct MiniWarehouse
{
    std::unique_ptr<storage::TectonicCluster> cluster;
    std::unique_ptr<warehouse::Warehouse> warehouse;
    warehouse::TableSchema schema;
    std::vector<double> popularity;

    warehouse::Table &table() { return *warehouse->findTable(name); }
    std::string name;
};

/**
 * Build a table of `partitions` x `rows_per_partition` rows split into
 * files of `rows_per_file`, generated from `params`.
 */
inline MiniWarehouse
makeMiniWarehouse(const warehouse::SchemaParams &params,
                  uint32_t partitions, uint64_t rows_per_partition,
                  uint64_t rows_per_file = 2048,
                  dwrf::WriterOptions writer_options = {})
{
    MiniWarehouse mw;
    mw.name = params.name;
    storage::StorageOptions so;
    so.block_size = 4_MiB;
    so.hdd_nodes = 4;
    mw.cluster = std::make_unique<storage::TectonicCluster>(so);
    mw.warehouse =
        std::make_unique<warehouse::Warehouse>(*mw.cluster);
    mw.schema = warehouse::makeSchema(params);
    mw.popularity = warehouse::featurePopularity(
        mw.schema, params.popularity_alpha, params.seed ^ 0x9999);

    auto &table = mw.warehouse->createTable(params.name, mw.schema);
    warehouse::RowGenerator gen(mw.schema, params.seed ^ 0x1234);
    for (uint32_t p = 0; p < partitions; ++p) {
        warehouse::Partition partition;
        partition.id = p;
        uint64_t remaining = rows_per_partition;
        uint32_t file_idx = 0;
        while (remaining > 0) {
            uint64_t n = remaining < rows_per_file ? remaining
                                                   : rows_per_file;
            dwrf::FileWriter writer(writer_options);
            writer.appendRows(
                gen.batch(static_cast<uint32_t>(n)));
            auto bytes = writer.finish();
            std::string fname = params.name + "/p" +
                                std::to_string(p) + "/f" +
                                std::to_string(file_idx++) + ".dwrf";
            partition.stored_bytes += bytes.size();
            mw.cluster->put(fname, bytes);
            partition.files.push_back(fname);
            partition.rows += n;
            remaining -= n;
        }
        table.addPartition(std::move(partition));
    }
    return mw;
}

} // namespace dsi::testing

#endif // DSI_TESTS_TEST_FIXTURES_H
