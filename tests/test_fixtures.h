/**
 * @file
 * Shared test fixtures: a small warehouse with synthetic tables.
 *
 * Thin wrapper over warehouse::buildMiniCorpus (src/warehouse/
 * corpus.h) — the same builder the benchmarks use — with the storage
 * defaults the test suite has always assumed (4 MiB blocks, 4 HDD
 * nodes).
 */

#ifndef DSI_TESTS_TEST_FIXTURES_H
#define DSI_TESTS_TEST_FIXTURES_H

#include "warehouse/corpus.h"

namespace dsi::testing {

/** A Tectonic cluster + warehouse with one generated table. */
using MiniWarehouse = warehouse::MiniCorpus;

/**
 * Build a table of `partitions` x `rows_per_partition` rows split into
 * files of `rows_per_file`, generated from `params`.
 */
inline MiniWarehouse
makeMiniWarehouse(const warehouse::SchemaParams &params,
                  uint32_t partitions, uint64_t rows_per_partition,
                  uint64_t rows_per_file = 2048,
                  dwrf::WriterOptions writer_options = {})
{
    storage::StorageOptions so;
    so.block_size = 4_MiB;
    so.hdd_nodes = 4;
    return warehouse::buildMiniCorpus(params, partitions,
                                      rows_per_partition,
                                      rows_per_file, writer_options,
                                      so);
}

/**
 * Duplicated-corpus variant (RecD shape): rows re-sample a fixed pool
 * of `dup.pool_size` distinct feature payloads Zipf(`dup.alpha`)-
 * skewed, each draw with a fresh label. Shared by the dedup
 * differential/codec tests and bench/dedup_bench so they all measure
 * the same corpus shape. Storage defaults match makeMiniWarehouse.
 */
inline MiniWarehouse
makeDupMiniWarehouse(const warehouse::SchemaParams &params,
                     const warehouse::DupParams &dup,
                     uint32_t partitions, uint64_t rows_per_partition,
                     uint64_t rows_per_file = 2048,
                     dwrf::WriterOptions writer_options = {})
{
    storage::StorageOptions so;
    so.block_size = 4_MiB;
    so.hdd_nodes = 4;
    return warehouse::buildDupMiniCorpus(params, dup, partitions,
                                         rows_per_partition,
                                         rows_per_file, writer_options,
                                         so);
}

} // namespace dsi::testing

#endif // DSI_TESTS_TEST_FIXTURES_H
