/**
 * @file
 * Unit tests for statistics utilities, the metric registry, and the
 * table printer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/types.h"

namespace dsi {
namespace {

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001); // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsCombined)
{
    Rng rng(3);
    RunningStats a, b, all;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.nextGaussian() * 3 + 1;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(PercentileSampler, ExactQuantiles)
{
    PercentileSampler p;
    for (int i = 1; i <= 100; ++i)
        p.add(i);
    EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
    EXPECT_NEAR(p.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(p.percentile(25), 25.75, 1e-9);
    EXPECT_NEAR(p.percentile(95), 95.05, 1e-9);
}

TEST(PercentileSampler, InterleavedAddAndQuery)
{
    PercentileSampler p;
    p.add(10);
    EXPECT_DOUBLE_EQ(p.percentile(50), 10.0);
    p.add(20);
    p.add(30);
    EXPECT_DOUBLE_EQ(p.percentile(50), 20.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 30.0);
}

TEST(LogHistogram, BucketsCoverValues)
{
    LogHistogram h;
    h.add(0.5);
    h.add(1.0);
    h.add(3.0);
    h.add(1024.0);
    h.add(1500.0, 2);
    auto buckets = h.buckets();
    EXPECT_EQ(h.total(), 6u);
    uint64_t sum = 0;
    for (const auto &b : buckets) {
        EXPECT_LT(b.lo, b.hi);
        sum += b.count;
    }
    EXPECT_EQ(sum, 6u);
    // 1024 and 1500 share the [1024, 2048) bucket with weight 3.
    bool found = false;
    for (const auto &b : buckets)
        if (b.lo == 1024.0)
            found = b.count == 3;
    EXPECT_TRUE(found);
}

TEST(WeightedCdf, UniformWeightsAreLinear)
{
    WeightedCdf cdf;
    for (int i = 0; i < 100; ++i)
        cdf.add(1.0);
    auto curve = cdf.build(11);
    ASSERT_EQ(curve.size(), 11u);
    for (const auto &pt : curve)
        EXPECT_NEAR(pt.y, pt.x, 1e-9);
}

TEST(WeightedCdf, SkewedWeightsFrontload)
{
    // One item holds ~91% of the weight (90 of 99 total).
    WeightedCdf cdf;
    cdf.add(90.0);
    for (int i = 0; i < 9; ++i)
        cdf.add(1.0);
    EXPECT_NEAR(cdf.fractionForShare(0.9), 0.1, 1e-9);
    auto curve = cdf.build(11);
    EXPECT_NEAR(curve[1].y, 90.0 / 99.0, 1e-9);
}

TEST(WeightedCdf, FractionForShareMonotone)
{
    Rng rng(5);
    WeightedCdf cdf;
    for (int i = 0; i < 500; ++i)
        cdf.add(rng.nextExp(1.0));
    double last = 0;
    for (double share : {0.1, 0.3, 0.5, 0.8, 0.95}) {
        double f = cdf.fractionForShare(share);
        EXPECT_GE(f, last);
        last = f;
    }
}

TEST(Metrics, CountersAccumulate)
{
    Metrics m;
    m.inc("bytes", 10);
    m.inc("bytes", 5);
    m.inc("ios");
    EXPECT_DOUBLE_EQ(m.counter("bytes"), 15.0);
    EXPECT_DOUBLE_EQ(m.counter("ios"), 1.0);
    EXPECT_DOUBLE_EQ(m.counter("missing"), 0.0);
    EXPECT_TRUE(m.hasCounter("bytes"));
    EXPECT_FALSE(m.hasCounter("missing"));
}

TEST(Metrics, MergeAddsCountersMaxesGauges)
{
    Metrics a, b;
    a.inc("x", 1);
    b.inc("x", 2);
    a.set("g", 5);
    b.set("g", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.counter("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.gauge("g"), 5.0);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"Model", "GB/s"});
    t.addRow({"RM1", "16.50"});
    t.addRow({"RM2", "4.69"});
    std::string out = t.render();
    EXPECT_NE(out.find("Model"), std::string::npos);
    EXPECT_NE(out.find("RM1"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Types, ByteLiteralsAndConversions)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(2_GiB, 2ull << 30);
    EXPECT_NEAR(toGB(1000000000ull), 1.0, 1e-12);
    EXPECT_NEAR(toPB(13.45e15), 13.45, 1e-9);
}

TEST(Types, FormatBytes)
{
    EXPECT_EQ(formatBytes(18), "18");
    EXPECT_EQ(formatBytes(1240), "1.24K");
    EXPECT_EQ(formatBytes(97700), "97.7K");
    EXPECT_EQ(formatBytes(23200), "23.2K");
}

} // namespace
} // namespace dsi
