/**
 * @file
 * Guards the benchmark interchange format from three directions:
 *
 *  1. the JSON parser (src/common/json.h) handles the grammar and
 *     rejects malformed input;
 *  2. writeBenchJson / validateBenchJson (src/common/bench_report.h)
 *     agree with each other, and the validator rejects every way a
 *     document can violate the schema;
 *  3. the checked-in BENCH_decode.json / BENCH_dpp.json /
 *     BENCH_dedup.json artifacts are valid, meet the decode and dedup
 *     acceptance bars, and every metric name they carry is documented
 *     in docs/BENCHMARKS.md (the same mechanical doc-drift check
 *     trace_export_test runs against docs/METRICS.md).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/bench_report.h"
#include "common/json.h"

#ifndef DSI_SOURCE_DIR
#define DSI_SOURCE_DIR "."
#endif

namespace dsi {
namespace {

// ---------------------------------------------------------------------
// JSON parser.

TEST(Json, ParsesScalarsAndNesting)
{
    auto doc = json::parse(
        R"({"a": 1.5, "b": "x", "c": [true, false, null, -2e3],)"
        R"( "d": {"e": []}})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->find("a")->number, 1.5);
    EXPECT_EQ(doc->find("b")->str, "x");
    const json::Value *c = doc->find("c");
    ASSERT_TRUE(c->isArray());
    ASSERT_EQ(c->array.size(), 4u);
    EXPECT_TRUE(c->array[0].boolean);
    EXPECT_DOUBLE_EQ(c->array[3].number, -2000.0);
    EXPECT_TRUE(doc->find("d")->find("e")->isArray());
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, DecodesStringEscapes)
{
    auto doc = json::parse(R"(["a\"b\\c\n\t", "A"])");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->array[0].str, "a\"b\\c\n\t");
    EXPECT_EQ(doc->array[1].str, "A");
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
          "{\"a\":1} extra", "\"unterminated", "[1 2]", "nan"}) {
        std::string error;
        EXPECT_FALSE(json::parse(bad, &error).has_value()) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

// ---------------------------------------------------------------------
// BENCH_*.json writer/validator.

bench::BenchReport
sampleReport()
{
    bench::BenchReport r;
    r.suite = "decode";
    r.mode = "full";
    r.seed = 42;
    r.warmup_trials = 2;
    r.measure_trials = 5;
    r.metrics.push_back({"decode.rle_bulk_mbps", "MB/s", 123.456});
    r.metrics.push_back({"decode.values_zipf_bulk_speedup", "x", 1.62});
    return r;
}

TEST(BenchReport, WriterOutputValidates)
{
    std::string text = bench::writeBenchJson(sampleReport());
    std::string error;
    EXPECT_TRUE(bench::validateBenchJson(text, &error)) << error;
    auto names = bench::benchMetricNames(text);
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "decode.rle_bulk_mbps");
    EXPECT_EQ(names[1], "decode.values_zipf_bulk_speedup");
}

TEST(BenchReport, ValidatorRejectsEverySchemaViolation)
{
    // Each mutation breaks exactly one schema rule.
    auto mutate = [](auto fn) {
        bench::BenchReport r = sampleReport();
        fn(r);
        return bench::writeBenchJson(r);
    };
    std::vector<std::string> bad = {
        mutate([](auto &r) { r.schema_version = 99; }),
        mutate([](auto &r) { r.suite = ""; }),
        mutate([](auto &r) { r.mode = "fast"; }),
        mutate([](auto &r) { r.metrics.clear(); }),
        mutate([](auto &r) { r.metrics[0].name = ""; }),
        mutate([](auto &r) { r.metrics[0].unit = ""; }),
        "not json at all",
        "[]", // wrong top-level type
    };
    for (const std::string &text : bad) {
        std::string error;
        EXPECT_FALSE(bench::validateBenchJson(text, &error)) << text;
        EXPECT_FALSE(error.empty());
    }
    // Non-finite metric values can't come from the struct writer —
    // inject one textually.
    std::string inf = bench::writeBenchJson(sampleReport());
    size_t where = inf.find("123.456");
    ASSERT_NE(where, std::string::npos);
    inf.replace(where, 7, "1e99999");
    EXPECT_FALSE(bench::validateBenchJson(inf));
    EXPECT_TRUE(bench::benchMetricNames(inf).empty());
}

// ---------------------------------------------------------------------
// Checked-in artifacts vs docs/BENCHMARKS.md.

std::string
readRepoFile(const std::string &rel)
{
    std::ifstream in(std::string(DSI_SOURCE_DIR) + "/" + rel);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** All `dotted.token` names backticked in docs/BENCHMARKS.md. */
std::set<std::string>
documentedBenchNames()
{
    std::ifstream in(std::string(DSI_SOURCE_DIR) +
                     "/docs/BENCHMARKS.md");
    std::set<std::string> names;
    std::string line;
    while (std::getline(in, line)) {
        size_t pos = 0;
        while ((pos = line.find('`', pos)) != std::string::npos) {
            size_t end = line.find('`', pos + 1);
            if (end == std::string::npos)
                break;
            std::string token = line.substr(pos + 1, end - pos - 1);
            if (token.find('.') != std::string::npos &&
                token.find(' ') == std::string::npos &&
                token.find('(') == std::string::npos &&
                token.find('/') == std::string::npos) {
                names.insert(token);
            }
            pos = end + 1;
        }
    }
    return names;
}

TEST(BenchArtifacts, CheckedInReportsValidate)
{
    for (const char *rel : {"BENCH_decode.json", "BENCH_dpp.json",
                            "BENCH_dedup.json"}) {
        std::string text = readRepoFile(rel);
        ASSERT_FALSE(text.empty()) << rel << " missing from repo root";
        std::string error;
        EXPECT_TRUE(bench::validateBenchJson(text, &error))
            << rel << ": " << error;
    }
    // Suite fields match the file names.
    auto decode = json::parse(readRepoFile("BENCH_decode.json"));
    EXPECT_EQ(decode->find("suite")->str, "decode");
    auto dpp = json::parse(readRepoFile("BENCH_dpp.json"));
    EXPECT_EQ(dpp->find("suite")->str, "dpp");
    auto dedup = json::parse(readRepoFile("BENCH_dedup.json"));
    EXPECT_EQ(dedup->find("suite")->str, "dedup");
}

TEST(BenchArtifacts, DecodeMeetsBulkSpeedupBar)
{
    // The optimization contract: on the Zipfian dictionary corpus the
    // bulk kernel must beat the scalar reference by >= 1.5x. The
    // checked-in baseline proves it; regenerate with
    // `bench/perf_suite --out-dir .` after kernel changes.
    auto doc = json::parse(readRepoFile("BENCH_decode.json"));
    ASSERT_TRUE(doc.has_value());
    const json::Value *metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr);
    double speedup = 0;
    for (const json::Value &m : metrics->array) {
        if (m.find("name")->str == "decode.values_zipf_bulk_speedup")
            speedup = m.find("value")->number;
    }
    EXPECT_GE(speedup, 1.5);
}

TEST(BenchArtifacts, DedupMeetsStorageSavingsBar)
{
    // The dedup contract: list-dictionary DWRF must store the Zipfian
    // duplicated corpus at >= 1.5x savings over plain encoding. The
    // checked-in baseline proves it; regenerate with
    // `bench/dedup_bench --out-dir .` after codec changes.
    auto doc = json::parse(readRepoFile("BENCH_dedup.json"));
    ASSERT_TRUE(doc.has_value());
    const json::Value *metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr);
    double ratio = 0;
    for (const json::Value &m : metrics->array) {
        if (m.find("name")->str == "dedup.storage_savings_ratio")
            ratio = m.find("value")->number;
    }
    EXPECT_GE(ratio, 1.5);
}

TEST(BenchArtifacts, EveryMetricNameIsDocumented)
{
    auto documented = documentedBenchNames();
    ASSERT_GT(documented.size(), 25u)
        << "docs/BENCHMARKS.md parse came up nearly empty — did the "
           "table format change?";
    for (const char *rel : {"BENCH_decode.json", "BENCH_dpp.json",
                            "BENCH_dedup.json"}) {
        auto names = bench::benchMetricNames(readRepoFile(rel));
        ASSERT_FALSE(names.empty()) << rel;
        for (const std::string &name : names) {
            EXPECT_TRUE(documented.count(name))
                << "metric '" << name << "' appears in " << rel
                << " but is not documented in docs/BENCHMARKS.md";
        }
    }
}

} // namespace
} // namespace dsi
