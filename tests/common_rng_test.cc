/**
 * @file
 * Unit and property tests for deterministic RNG and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"

namespace dsi {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, NextUintInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL,
                           1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextUint(bound), bound);
    }
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(17);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExp(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LogNormalMeanMatchesTarget)
{
    Rng rng(19);
    double sum = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextLogNormal(10.0, 0.8);
    EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Rng, PoissonMean)
{
    Rng rng(23);
    for (double lambda : {0.5, 3.0, 20.0, 100.0}) {
        double sum = 0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.nextPoisson(lambda));
        EXPECT_NEAR(sum / n, lambda, lambda * 0.05 + 0.05)
            << "lambda=" << lambda;
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(37);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto sorted = v;
    shuffle(v, rng);
    auto resorted = v;
    std::sort(resorted.begin(), resorted.end());
    EXPECT_EQ(resorted, sorted);
}

class ZipfParamTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfParamTest, EmpiricalMatchesPmf)
{
    const double alpha = GetParam();
    const uint64_t n = 1000;
    ZipfSampler zipf(n, alpha);
    Rng rng(101);
    std::map<uint64_t, uint64_t> counts;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i)
        ++counts[zipf.sample(rng)];

    // The head ranks should match the analytic pmf closely.
    for (uint64_t rank : {0ULL, 1ULL, 2ULL, 5ULL, 10ULL}) {
        double expected = zipf.pmf(rank) * draws;
        double got = static_cast<double>(counts[rank]);
        EXPECT_NEAR(got, expected,
                    std::max(50.0, expected * 0.12))
            << "alpha=" << alpha << " rank=" << rank;
    }
}

TEST_P(ZipfParamTest, DrawsWithinDomain)
{
    ZipfSampler zipf(50, GetParam());
    Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(zipf.sample(rng), 50u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfParamTest,
                         ::testing::Values(0.6, 0.8, 0.99, 1.2, 1.5));

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler zipf(200, 0.9);
    double sum = 0;
    for (uint64_t r = 0; r < 200; ++r)
        sum += zipf.pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, MorePopularRanksHaveHigherMass)
{
    ZipfSampler zipf(100, 1.1);
    for (uint64_t r = 0; r + 1 < 100; ++r)
        EXPECT_GT(zipf.pmf(r), zipf.pmf(r + 1));
}

} // namespace
} // namespace dsi
