/**
 * @file
 * Tests for trainer-side models (Figs. 8, Table VII) and the release
 * process / fleet scheduling (Figs. 4, 5, 6; Section VII).
 */

#include <gtest/gtest.h>

#include "sched/fleet.h"
#include "sched/model_fleet.h"
#include "sched/release.h"
#include "test_fixtures.h"
#include "trainer/gpu_model.h"
#include "trainer/trainer.h"

namespace dsi {
namespace {

using namespace trainer;
using namespace sched;

TEST(LoadingUtil, ScalesLinearlyWithRate)
{
    sim::TrainerHostSpec host;
    sim::DatacenterTax tax;
    auto u1 = loadingUtilization(host, tax, 4e9);
    auto u2 = loadingUtilization(host, tax, 8e9);
    EXPECT_NEAR(u2.cpu, 2 * u1.cpu, 1e-9);
    EXPECT_NEAR(u2.membw, 2 * u1.membw, 1e-9);
    EXPECT_NEAR(u2.nic, 2 * u1.nic, 1e-9);
}

TEST(LoadingUtil, MatchesPaperAtRm1Rate)
{
    // Section VI-B: at RM1's 16.5 GB/s pure loading needs ~40% of
    // CPU cycles and ~55% of memory bandwidth.
    sim::TrainerHostSpec host;
    sim::DatacenterTax tax;
    auto u = loadingUtilization(host, tax, 16.5e9);
    EXPECT_NEAR(u.cpu, 0.40, 0.05);
    EXPECT_NEAR(u.membw, 0.55, 0.05);
    EXPECT_GT(u.nic, 0.5); // approaching NIC saturation
}

TEST(LoadingUtil, TlsOffloadCutsMemBw)
{
    sim::TrainerHostSpec host;
    auto full =
        loadingUtilization(host, sim::DatacenterTax{}, 16.5e9);
    auto off =
        loadingUtilization(host, sim::taxWithTlsOffload(), 16.5e9);
    EXPECT_LT(off.membw, full.membw);
    EXPECT_LT(off.cpu, full.cpu);
}

TEST(OnHost, Rm1StallsMatchTableVII)
{
    // Table VII: 56% of GPU cycles stalled, 92% CPU, 54% memBW.
    auto r = onHostPreprocessing(warehouse::rm1(),
                                 sim::TrainerHostSpec{},
                                 sim::DatacenterTax{});
    EXPECT_NEAR(r.stall_fraction, 0.56, 0.08);
    EXPECT_GT(r.cpu_util, 0.85);
    EXPECT_NEAR(r.membw_util, 0.54, 0.12);
}

TEST(OnHost, StallSeverityTracksTrainerDemand)
{
    auto host = sim::TrainerHostSpec{};
    auto r1 = onHostPreprocessing(warehouse::rm1(), host,
                                  sim::DatacenterTax{});
    auto r2 = onHostPreprocessing(warehouse::rm2(), host,
                                  sim::DatacenterTax{});
    auto r3 = onHostPreprocessing(warehouse::rm3(), host,
                                  sim::DatacenterTax{});
    // RM1 and RM3 drive far more samples/s than a host can
    // preprocess; RM2's modest 4.69 GB/s demand nearly fits, so its
    // stall is the mildest of the three.
    EXPECT_GT(r1.stall_fraction, 0.40);
    EXPECT_GT(r3.stall_fraction, 0.50);
    EXPECT_LT(r2.stall_fraction, r1.stall_fraction);
    EXPECT_LT(r2.stall_fraction, r3.stall_fraction);
    EXPECT_LT(r1.supply_qps, r1.demand_qps);
    EXPECT_LT(r3.supply_qps, r3.demand_qps);
}

TEST(GpuModel, IntensityExplainsThroughputSpread)
{
    // Table VIII: throughput diversity comes from compute-per-sample
    // differences. Back out each model's FLOPs/sample and verify the
    // round trip reproduces the published GB/s.
    GpuNodeSpec node;
    for (const auto &rm : warehouse::allRms()) {
        double flops = modelFlopsPerSample(rm, node);
        EXPECT_GT(flops, 1e6) << rm.name;  // MFLOPs-scale per sample
        EXPECT_LT(flops, 1e10) << rm.name;
        double bps =
            ingestDemandBps(flops, rm.tensor_per_sample, node);
        EXPECT_NEAR(bps / 1e9, rm.trainer_node_gbps,
                    rm.trainer_node_gbps * 1e-9);
    }
    // RM3 is the lightest model per sample (hence the huge QPS).
    EXPECT_LT(modelFlopsPerSample(warehouse::rm3(), node),
              modelFlopsPerSample(warehouse::rm1(), node));
}

TEST(GpuModel, BetterAcceleratorsRaiseDsiDemand)
{
    // The paper projects ~3.5x ingestion growth partly from improved
    // hardware: doubling effective FLOPs doubles demand.
    GpuNodeSpec today;
    GpuNodeSpec next = today;
    next.efficiency *= 1.4;
    next.peak_flops_per_gpu *= 2.0;
    auto rm = warehouse::rm1();
    double flops = modelFlopsPerSample(rm, today);
    double d0 = ingestDemandBps(flops, rm.tensor_per_sample, today);
    double d1 = ingestDemandBps(flops, rm.tensor_per_sample, next);
    EXPECT_NEAR(d1 / d0, 2.8, 1e-9);
}

TEST(StallProbe, MoreWorkersReduceStalls)
{
    warehouse::SchemaParams p;
    p.name = "tbl";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.seed = 3;
    // 8 files of 1024 rows -> 8 splits; each pump yields 8 tensors.
    auto mw = testing::makeMiniWarehouse(p, 1, 8192, 1024);

    dpp::SessionSpec spec;
    spec.table = "tbl";
    spec.partitions = {0};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 5);
    spec.setTransforms(transforms::makeModelGraph(
        mw.schema, spec.projection, transforms::ModelGraphParams{}));
    spec.batch_size = 128;
    spec.rows_per_split = 512;

    // One worker produces 8 tensors/round against a demand of 12: it
    // stalls. Four workers produce 32/round: no stalls.
    auto starved = measureStallRounds(*mw.warehouse, spec, 1, 12);
    auto fed = measureStallRounds(*mw.warehouse, spec, 4, 12);
    EXPECT_GT(starved.stallFraction(), fed.stallFraction());
    EXPECT_GT(starved.tensors, 0u);
    EXPECT_EQ(fed.tensors, starved.tensors); // same dataset
}

TEST(Release, JobCountsAndPhases)
{
    ReleaseParams params;
    auto jobs = generateIteration("RM1", params, 0.0, 42);
    uint32_t explore = 0, combo = 0, rc = 0;
    for (const auto &j : jobs) {
        switch (j.phase) {
          case JobPhase::Exploratory:
            ++explore;
            break;
          case JobPhase::Combo:
            ++combo;
            break;
          case JobPhase::ReleaseCandidate:
            ++rc;
            break;
        }
        EXPECT_GE(j.start_day, j.submit_day);
        EXPECT_GT(j.end_day, j.start_day);
    }
    EXPECT_EQ(explore, params.exploratory_jobs);
    EXPECT_EQ(combo, params.combo_jobs);
    EXPECT_EQ(rc, params.release_candidates);
}

TEST(Release, ComboJobsShowFig4Shape)
{
    ReleaseParams params;
    auto jobs = generateIteration("RM1", params, 0.0, 42);
    std::vector<const TrainingJob *> combos;
    for (const auto &j : jobs)
        if (j.phase == JobPhase::Combo)
            combos.push_back(&j);
    ASSERT_EQ(combos.size(), 82u);

    // Status mix: many jobs fail or are killed.
    uint32_t bad = 0;
    double max_dur = 0, min_start = 1e9, max_start = 0;
    for (const auto *j : combos) {
        bad += j->status != JobStatus::Succeeded;
        max_dur = std::max(max_dur, j->duration());
        min_start = std::min(min_start, j->start_day);
        max_start = std::max(max_start, j->start_day);
    }
    EXPECT_GT(bad, 82u * 0.35);
    EXPECT_LT(bad, 82u * 0.75);
    // Long-tail durations: some jobs run past 10 days.
    EXPECT_GT(max_dur, 10.0);
    // Large temporal skew between starts (asynchronous launches).
    EXPECT_GT(max_start - min_start, 7.0);
}

TEST(Release, ExploratoryJobsReadSmallTableFraction)
{
    auto jobs = generateIteration("RM1", ReleaseParams{}, 0.0, 7);
    for (const auto &j : jobs) {
        if (j.phase == JobPhase::Exploratory)
            EXPECT_LT(j.table_fraction, 0.07);
        if (j.phase == JobPhase::Combo)
            EXPECT_GT(j.table_fraction, 0.5);
    }
}

TEST(DemandSeries, IntegratesJobIntervals)
{
    DemandSeries series(0.0, 10.0, 1.0);
    TrainingJob job;
    job.start_day = 2.0;
    job.end_day = 5.0;
    job.compute_demand = 2.0;
    series.addJob(job);
    EXPECT_DOUBLE_EQ(series.demand()[1], 0.0);
    EXPECT_DOUBLE_EQ(series.demand()[2], 2.0);
    EXPECT_DOUBLE_EQ(series.demand()[4], 2.0);
    EXPECT_DOUBLE_EQ(series.demand()[5], 0.0);
    EXPECT_DOUBLE_EQ(series.peak(), 2.0);
}

TEST(DemandSeries, ComboWindowsCreatePeaks)
{
    // Fig. 5: the fleet demand curve is bursty, peaking during the
    // (periodically aligned) combo windows.
    DemandSeries series(0.0, 365.0);
    for (int model = 0; model < 10; ++model) {
        double day = (model % 4) * 9.0; // staggered starts
        uint64_t seed = 100 + model;
        while (day < 365.0) {
            auto jobs = generateIteration(
                "M" + std::to_string(model), ReleaseParams{}, day,
                seed++);
            series.addJobs(jobs);
            day += iterationLengthDays(ReleaseParams{});
        }
    }
    EXPECT_GT(series.burstiness(), 1.4);
}

// Uses the shared reference fleet (sched/model_fleet.h).
std::vector<ModelDemand>
tenModels()
{
    return tenModelFleet();
}

TEST(GlobalScheduler, BalancePutsEveryModelEverywhere)
{
    GlobalScheduler sched(fiveRegions());
    auto placement = sched.place(tenModels(),
                                 PlacementPolicy::BalanceAllRegions);
    EXPECT_TRUE(placement.feasible);
    for (const auto &m : tenModels()) {
        EXPECT_EQ(placement.replicaCount(m.model), 5u) << m.model;
        double placed = 0;
        for (const auto &[region, d] : placement.demand.at(m.model))
            placed += d;
        EXPECT_NEAR(placed, m.mean_demand, 1e-9);
    }
}

TEST(GlobalScheduler, BinPackReducesReplicasAndStorage)
{
    GlobalScheduler sched(fiveRegions());
    auto models = tenModels();
    auto balance =
        sched.place(models, PlacementPolicy::BalanceAllRegions);
    auto packed = sched.place(models, PlacementPolicy::BinPack);
    EXPECT_TRUE(packed.feasible);
    EXPECT_LT(packed.total_storage_pb, balance.total_storage_pb);
    for (const auto &m : models)
        EXPECT_LE(packed.replicaCount(m.model), 5u);
    // At least one small model fits in a single region.
    uint32_t min_replicas = 5;
    for (const auto &m : models)
        min_replicas =
            std::min(min_replicas, packed.replicaCount(m.model));
    EXPECT_EQ(min_replicas, 1u);
}

TEST(GlobalScheduler, InfeasiblePeakReported)
{
    GlobalScheduler sched({{"R1", 10}});
    std::vector<ModelDemand> models{{"huge", 50.0, 20.0, 1.0}};
    auto placement = sched.place(models, PlacementPolicy::BinPack);
    EXPECT_FALSE(placement.feasible);
}

TEST(Growth, MatchesFig2Rates)
{
    // Over 8 quarters (two years) dataset > 2x, bandwidth > 4x.
    EXPECT_GT(datasetGrowthFactor(8), 2.0);
    EXPECT_LT(datasetGrowthFactor(8), 2.6);
    EXPECT_GT(bandwidthGrowthFactor(8), 4.0);
    EXPECT_LT(bandwidthGrowthFactor(8), 5.0);
    // Monotone growth.
    EXPECT_GT(datasetGrowthFactor(4), datasetGrowthFactor(2));
    EXPECT_DOUBLE_EQ(datasetGrowthFactor(0), 1.0);
}

} // namespace
} // namespace dsi
