/**
 * @file
 * Unit tests for the dsi::trace tracer core and the TraceQuery
 * span-tree helper: emission gating, RAII spans, cross-thread
 * collection, clear/generation semantics, forest reconstruction,
 * canonical topologies, and the Table VII stall rollup.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "common/trace_query.h"

namespace dsi::trace {
namespace {

/** Fresh, enabled log for each test; disabled again on exit. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        TraceLog::instance().clear();
        TraceLog::instance().enable();
        if (!on())
            GTEST_SKIP() << "tracing compiled out "
                            "(DSI_DISABLE_TRACING)";
    }
    void TearDown() override
    {
        TraceLog::instance().disable();
        TraceLog::instance().clear();
    }
};

TEST_F(TraceTest, DisabledEmissionIsDropped)
{
    TraceLog::instance().disable();
    EXPECT_FALSE(on());
    EXPECT_EQ(beginSpan("x", kNoSpan), kNoSpan);
    endSpan(7, "x"); // ids from an enabled era are ignored when off
    instant("x");
    {
        Span s("x", kNoSpan);
        EXPECT_EQ(s.id(), kNoSpan);
    }
    Timer t;
    t.complete("x", kNoSpan);
    EXPECT_EQ(TraceLog::instance().eventCount(), 0u);
}

TEST_F(TraceTest, BeginEndPairRoundTrips)
{
    SpanId id = beginSpan("work", kNoSpan, 11, 22);
    ASSERT_NE(id, kNoSpan);
    endSpan(id, "work");
    auto events = TraceLog::instance().snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, TraceEvent::Type::Begin);
    EXPECT_EQ(events[0].id, id);
    EXPECT_EQ(events[0].a0, 11u);
    EXPECT_EQ(events[0].a1, 22u);
    EXPECT_EQ(events[1].type, TraceEvent::Type::End);
    EXPECT_EQ(events[1].id, id);
    EXPECT_GE(events[1].ts, events[0].ts);
}

TEST_F(TraceTest, RaiiSpanEndsOnceEvenWithExplicitEnd)
{
    {
        Span s("scoped", kNoSpan);
        ASSERT_NE(s.id(), kNoSpan);
        s.end();
        s.end(); // idempotent
    }            // destructor must not emit a second End
    auto events = TraceLog::instance().snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, TraceEvent::Type::Begin);
    EXPECT_EQ(events[1].type, TraceEvent::Type::End);
}

TEST_F(TraceTest, ScopedParentNestsAndRestores)
{
    EXPECT_EQ(currentParent(), kNoSpan);
    {
        ScopedParent outer(41);
        EXPECT_EQ(currentParent(), 41u);
        {
            ScopedParent inner(42);
            EXPECT_EQ(currentParent(), 42u);
        }
        EXPECT_EQ(currentParent(), 41u);
    }
    EXPECT_EQ(currentParent(), kNoSpan);
}

TEST_F(TraceTest, ClearRestartsSpanIdsAndDropsEvents)
{
    SpanId first = beginSpan("a", kNoSpan);
    endSpan(first, "a");
    TraceLog::instance().clear();
    EXPECT_EQ(TraceLog::instance().eventCount(), 0u);
    TraceLog::instance().enable();
    SpanId second = beginSpan("b", kNoSpan);
    EXPECT_EQ(second, first); // allocation restarted
    EXPECT_EQ(TraceLog::instance().eventCount(), 1u);
}

TEST_F(TraceTest, ConcurrentEmittersLoseNothing)
{
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 500;
    std::vector<std::thread> threads;
    std::atomic<bool> go{false};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kSpansPerThread; ++i) {
                Span s("stress", kNoSpan,
                       static_cast<uint64_t>(i));
                instant("tick", s.id());
            }
        });
    }
    go = true;
    for (auto &t : threads)
        t.join();
    auto events = TraceLog::instance().snapshot();
    constexpr size_t kExpected = kThreads * kSpansPerThread * 3u;
    ASSERT_EQ(events.size(), kExpected);
    // Span ids must be unique across threads.
    std::vector<SpanId> ids;
    for (const auto &ev : events)
        if (ev.type == TraceEvent::Type::Begin)
            ids.push_back(ev.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

    TraceQuery q(events);
    EXPECT_EQ(q.count("stress"), kThreads * kSpansPerThread);
    EXPECT_EQ(q.instantsNamed("tick").size(),
              kThreads * kSpansPerThread);
}

TEST_F(TraceTest, QueryBuildsForestWithAncestryAndInstants)
{
    SpanId root = beginSpan(spans::kMasterGrant, kNoSpan, 3);
    SpanId mid = beginSpan(spans::kExtractStripe, root, 3, 0);
    SpanId leaf = beginSpan(spans::kStorageRead, mid, 0, 64);
    instant(events::kReaderRetry, mid, 3, 1);
    endSpan(leaf, spans::kStorageRead);
    endSpan(mid, spans::kExtractStripe);
    Timer t;
    t.complete(spans::kClientDeliver, mid, 3, 0);
    endSpan(root, spans::kMasterGrant);

    TraceQuery q(TraceLog::instance().snapshot());
    ASSERT_EQ(q.roots().size(), 1u);
    EXPECT_EQ(q.roots()[0]->name, spans::kMasterGrant);
    ASSERT_EQ(q.count(spans::kClientDeliver), 1u);
    const SpanNode *deliver = q.byName(spans::kClientDeliver)[0];
    EXPECT_TRUE(deliver->closed);
    const SpanNode *grant = q.ancestor(*deliver, spans::kMasterGrant);
    ASSERT_NE(grant, nullptr);
    EXPECT_EQ(grant->id, root);
    EXPECT_TRUE(q.hasDescendant(*grant, spans::kStorageRead));
    EXPECT_FALSE(q.hasDescendant(*deliver, spans::kStorageRead));
    ASSERT_EQ(q.instantsNamed(events::kReaderRetry).size(), 1u);
    EXPECT_EQ(q.span(mid)->instants.size(), 1u);
    EXPECT_DOUBLE_EQ(q.lineageCompleteFraction(), 1.0);
}

TEST_F(TraceTest, UnclosedSpanIsMarkedOpen)
{
    SpanId id = beginSpan("orphan", kNoSpan);
    (void)id;
    TraceQuery q(TraceLog::instance().snapshot());
    ASSERT_EQ(q.count("orphan"), 1u);
    EXPECT_FALSE(q.byName("orphan")[0]->closed);
    EXPECT_EQ(q.totalDuration("orphan"), 0.0);
}

TEST_F(TraceTest, TopologyIsOrderInvariant)
{
    // Two structurally identical trees built in different child
    // orders must canonicalize identically.
    auto build = [](bool flip) {
        SpanId root = beginSpan("r", kNoSpan);
        const char *first = flip ? "b" : "a";
        const char *second = flip ? "a" : "b";
        SpanId c1 = beginSpan(first, root);
        endSpan(c1, first);
        SpanId c2 = beginSpan(second, root);
        endSpan(c2, second);
        endSpan(root, "r");
    };
    build(false);
    TraceQuery q1(TraceLog::instance().snapshot());
    TraceLog::instance().clear();
    TraceLog::instance().enable();
    build(true);
    TraceQuery q2(TraceLog::instance().snapshot());
    EXPECT_EQ(q1.topology(), q2.topology());
    EXPECT_EQ(q1.topology(), "r(a,b)\n");

    // Repeated shapes collapse with run-length counts.
    TraceLog::instance().clear();
    TraceLog::instance().enable();
    build(false);
    build(false);
    TraceQuery q3(TraceLog::instance().snapshot());
    EXPECT_EQ(q3.topology(), "r(a,b) x2\n");
}

TEST_F(TraceTest, StallReportPartitionsWallClock)
{
    double t0 = nowSeconds();
    // Synthesized durations — read: 2s; transform span: 3s of which
    // 1s was a buffer wait; client delivery: 1s. The rollup must
    // report read 2s, transform 2s, deliver 2s (wait + delivery).
    emitComplete(spans::kExtractStripe, kNoSpan, t0, t0 + 2.0, 0, 0);
    emitComplete(spans::kTransformStripe, kNoSpan, t0, t0 + 3.0, 0,
                 0);
    emitComplete(spans::kBufferWait, kNoSpan, t0, t0 + 1.0, 0, 0);
    emitComplete(spans::kClientDeliver, kNoSpan, t0, t0 + 1.0, 0, 0);

    TraceQuery q(TraceLog::instance().snapshot());
    StallReport report = q.stallReport();
    EXPECT_NEAR(report.read_s, 2.0, 1e-9);
    EXPECT_NEAR(report.transform_s, 2.0, 1e-9);
    EXPECT_NEAR(report.deliver_s, 2.0, 1e-9);
    double pct_sum = report.readPct() + report.transformPct() +
                     report.deliverPct();
    EXPECT_NEAR(pct_sum, 100.0, 1e-9);
    std::string table = report.render();
    EXPECT_NE(table.find("read"), std::string::npos);
    EXPECT_NE(table.find("transform"), std::string::npos);
    EXPECT_NE(table.find("deliver"), std::string::npos);
}

TEST_F(TraceTest, EnvEnabledParsesDsiTrace)
{
    ::setenv("DSI_TRACE", "1", 1);
    EXPECT_TRUE(envEnabled());
    ::setenv("DSI_TRACE", "0", 1);
    EXPECT_FALSE(envEnabled());
    ::unsetenv("DSI_TRACE");
    EXPECT_FALSE(envEnabled());
}

} // namespace
} // namespace dsi::trace
