/**
 * @file
 * Tests for the Scribe/LogDevice substrate and the offline ETL
 * pipeline (serving logs -> streaming join -> partition files).
 */

#include <gtest/gtest.h>

#include <set>

#include "dpp/stream_session.h"
#include "dwrf/reader.h"
#include "etl/pipeline.h"
#include "scribe/scribe.h"
#include "warehouse/datagen.h"

namespace dsi {
namespace {

using namespace scribe;
using namespace etl;

TEST(LogDevice, AppendAssignsDenseSequences)
{
    LogDevice dev;
    EXPECT_EQ(dev.append("s", 0.0, 1, {1}), 0u);
    EXPECT_EQ(dev.append("s", 0.0, 2, {2}), 1u);
    EXPECT_EQ(dev.tailSeq("s"), 2u);
    EXPECT_EQ(dev.recordCount("s"), 2u);
    EXPECT_EQ(dev.payloadBytes("s"), 2u);
}

TEST(LogDevice, ReadRangeRespectsBounds)
{
    LogDevice dev;
    for (int i = 0; i < 10; ++i)
        dev.append("s", i, i, {static_cast<uint8_t>(i)});
    auto records = dev.read("s", 3, 4);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].seq, 3u);
    EXPECT_EQ(records[3].seq, 6u);
    EXPECT_TRUE(dev.read("s", 10, 5).empty());
    EXPECT_TRUE(dev.read("missing", 0, 5).empty());
}

TEST(LogDevice, TrimDropsPrefixKeepsSeqs)
{
    LogDevice dev;
    for (int i = 0; i < 10; ++i)
        dev.append("s", i, i, {static_cast<uint8_t>(i)});
    dev.trim("s", 4);
    EXPECT_EQ(dev.trimPoint("s"), 4u);
    EXPECT_EQ(dev.recordCount("s"), 6u);
    auto records = dev.read("s", 0, 100);
    ASSERT_EQ(records.size(), 6u);
    EXPECT_EQ(records[0].seq, 4u); // reads clamp to trim point
    // Trimming past the tail clamps.
    dev.trim("s", 100);
    EXPECT_EQ(dev.recordCount("s"), 0u);
    EXPECT_EQ(dev.trimPoint("s"), 10u);
}

TEST(ScribeDaemon, BatchesUntilFlushThreshold)
{
    LogDevice dev;
    ScribeDaemon daemon(dev, 4);
    for (int i = 0; i < 3; ++i)
        daemon.log("cat", 0.0, i, {1});
    EXPECT_EQ(dev.recordCount("cat"), 0u);
    EXPECT_EQ(daemon.buffered(), 3u);
    daemon.log("cat", 0.0, 3, {1});
    EXPECT_EQ(dev.recordCount("cat"), 4u);
    daemon.log("cat", 0.0, 4, {1});
    daemon.flush();
    EXPECT_EQ(dev.recordCount("cat"), 5u);
}

TEST(StreamReader, PollsExactlyOnce)
{
    LogDevice dev;
    for (int i = 0; i < 7; ++i)
        dev.append("s", i, i, {1});
    StreamReader reader(dev, "s");
    EXPECT_EQ(reader.poll(3).size(), 3u);
    EXPECT_EQ(reader.poll(100).size(), 4u);
    EXPECT_TRUE(reader.poll().empty());
    dev.append("s", 8.0, 8, {1});
    EXPECT_EQ(reader.poll().size(), 1u);
}

TEST(Scribe, MultipleDaemonsInterleaveIntoOneStream)
{
    // Every host runs its own daemon; all of them feed the same
    // category stream with strictly increasing sequence numbers.
    LogDevice dev;
    ScribeDaemon host_a(dev, 2), host_b(dev, 2);
    host_a.log("cat", 0.0, 1, {1});
    host_b.log("cat", 0.0, 2, {2});
    host_a.log("cat", 0.0, 3, {3});
    host_b.log("cat", 0.0, 4, {4});
    host_a.flush();
    host_b.flush();
    auto records = dev.read("cat", 0, 100);
    ASSERT_EQ(records.size(), 4u);
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].seq, i);
    // Keys 1..4 all present regardless of interleaving.
    std::set<uint64_t> keys;
    for (const auto &r : records)
        keys.insert(r.key);
    EXPECT_EQ(keys, (std::set<uint64_t>{1, 2, 3, 4}));
}

TEST(Scribe, ReaderAdvancesPastTrimPoint)
{
    LogDevice dev;
    for (int i = 0; i < 10; ++i)
        dev.append("s", i, i, {1});
    StreamReader reader(dev, "s");
    reader.poll(2); // consumed 0,1
    dev.trim("s", 6);
    auto records = reader.poll(100);
    ASSERT_EQ(records.size(), 4u); // 6..9 (2..5 trimmed away)
    EXPECT_EQ(records[0].seq, 6u);
}

TEST(Entries, FeatureRoundTrip)
{
    dwrf::Row row;
    row.dense = {{3, 1.5f}, {9, -2.0f}};
    dwrf::SparseFeature s;
    s.id = 20;
    s.values = {100, -5, 1 << 30};
    s.scores = {0.1f, 0.2f, 0.3f};
    row.sparse.push_back(s);

    dwrf::Buffer buf;
    encodeFeatures(row, buf);
    auto back = decodeFeatures(buf);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->dense.size(), 2u);
    EXPECT_EQ(back->dense[1].id, 9u);
    ASSERT_EQ(back->sparse.size(), 1u);
    EXPECT_EQ(back->sparse[0].values, s.values);
    EXPECT_EQ(back->sparse[0].scores.size(), 3u);
}

TEST(Entries, MalformedFeatureRejected)
{
    dwrf::Buffer junk{0x05, 0x01};
    EXPECT_FALSE(decodeFeatures(junk).has_value());
}

TEST(Entries, EventRoundTrip)
{
    EventLogEntry e{0xdeadbeefcafeULL, true};
    dwrf::Buffer buf;
    encodeEvent(e, buf);
    auto back = decodeEvent(buf);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->request_id, e.request_id);
    EXPECT_TRUE(back->positive);
}

class EtlPipelineTest : public ::testing::Test
{
  protected:
    EtlPipelineTest()
        : schema_(warehouse::makeSchema(params())),
          cluster_(storage::StorageOptions{}), wh_(cluster_)
    {
    }

    static warehouse::SchemaParams
    params()
    {
        warehouse::SchemaParams p;
        p.float_features = 12;
        p.sparse_features = 6;
        p.avg_length = 6;
        p.seed = 5;
        return p;
    }

    warehouse::TableSchema schema_;
    storage::TectonicCluster cluster_;
    warehouse::Warehouse wh_;
    scribe::LogDevice dev_;
};

TEST_F(EtlPipelineTest, EndToEndServeJoinMaterialize)
{
    ServingOptions so;
    so.event_loss_rate = 0.0;
    ServingSimulator serving(dev_, schema_, so);
    serving.serve(500, 0.0);
    serving.flush();
    EXPECT_EQ(dev_.recordCount("features"), 500u);
    EXPECT_EQ(dev_.recordCount("events"), 500u);

    StreamingJoiner joiner(dev_, JoinOptions{});
    uint64_t emitted = joiner.pump(1000.0); // past all windows
    EXPECT_EQ(emitted, 500u);
    EXPECT_EQ(dev_.recordCount("labeled"), 500u);

    auto &table = wh_.createTable("t", schema_);
    MaterializeOptions mo;
    mo.rows_per_file = 200;
    PartitionMaterializer mat(dev_, wh_, "labeled", mo);
    uint64_t rows = mat.materialize(table, 0);
    EXPECT_EQ(rows, 500u);
    ASSERT_EQ(table.partitions().size(), 1u);
    EXPECT_EQ(table.partitions()[0].rows, 500u);
    EXPECT_EQ(table.partitions()[0].files.size(), 3u); // 200+200+100
    EXPECT_GT(table.partitions()[0].stored_bytes, 0u);
    // Labeled stream trimmed after materialization.
    EXPECT_EQ(dev_.recordCount("labeled"), 0u);

    // The files are readable DWRF with the right total rows.
    uint64_t file_rows = 0;
    for (const auto &f : table.partitions()[0].files) {
        auto src = cluster_.open(f);
        dwrf::FileReader reader(*src, dwrf::ReadOptions{});
        ASSERT_TRUE(reader.valid());
        file_rows += reader.totalRows();
    }
    EXPECT_EQ(file_rows, 500u);
}

TEST_F(EtlPipelineTest, LostEventsBecomeNegativesAfterWindow)
{
    ServingOptions so;
    so.event_loss_rate = 1.0; // no events at all
    ServingSimulator serving(dev_, schema_, so);
    serving.serve(100, 0.0);
    serving.flush();

    JoinOptions jo;
    jo.join_window = 60.0;
    StreamingJoiner joiner(dev_, jo);
    EXPECT_EQ(joiner.pump(30.0), 0u);  // window still open
    EXPECT_EQ(joiner.pump(61.0), 100u); // expired -> negatives
    EXPECT_DOUBLE_EQ(joiner.metrics().counter("join.window_expired"),
                     100.0);
}

TEST_F(EtlPipelineTest, NegativeDownsamplingReducesOutput)
{
    ServingOptions so;
    so.event_loss_rate = 0.0;
    so.positive_rate = 0.0; // all negatives
    ServingSimulator serving(dev_, schema_, so);
    serving.serve(1000, 0.0);
    serving.flush();

    JoinOptions jo;
    jo.negative_keep_rate = 0.25;
    StreamingJoiner joiner(dev_, jo);
    uint64_t emitted = joiner.pump(1000.0);
    EXPECT_GT(emitted, 150u);
    EXPECT_LT(emitted, 350u);
}

TEST_F(EtlPipelineTest, TrimConsumedBoundsLogGrowth)
{
    ServingSimulator serving(dev_, schema_, ServingOptions{});
    serving.serve(200, 0.0);
    serving.flush();
    StreamingJoiner joiner(dev_, JoinOptions{});
    joiner.pump(1000.0);
    joiner.trimConsumed();
    EXPECT_EQ(dev_.recordCount("features"), 0u);
    EXPECT_EQ(dev_.recordCount("events"), 0u);
}

TEST_F(EtlPipelineTest, StreamWorkerProducesFreshTensors)
{
    ServingOptions so;
    so.event_loss_rate = 0.0;
    ServingSimulator serving(dev_, schema_, so);
    serving.serve(700, 0.0);
    serving.flush();
    StreamingJoiner joiner(dev_, JoinOptions{});
    joiner.pump(1000.0);

    dpp::StreamSessionSpec spec;
    spec.batch_size = 100;
    transforms::TransformGraph graph;
    transforms::TransformSpec hash;
    hash.kind = transforms::OpKind::SigridHash;
    hash.inputs = {schema_.features.back().id}; // a sparse feature
    hash.output = transforms::kDerivedFeatureBase;
    hash.u1 = 1 << 10;
    graph.add(hash);
    spec.setTransforms(graph);

    dpp::StreamWorker worker(dev_, spec);
    EXPECT_EQ(worker.pump(), 700u);
    worker.flush();
    EXPECT_EQ(worker.buffered(), 7u);
    uint64_t rows = 0;
    bool saw_derived = false;
    while (auto t = worker.popTensor()) {
        rows += t->data.rows;
        saw_derived = saw_derived ||
                      t->data.findSparse(
                          transforms::kDerivedFeatureBase) != nullptr;
    }
    EXPECT_EQ(rows, 700u);
    EXPECT_TRUE(saw_derived);
    EXPECT_GT(worker.transformStats().values_produced, 0u);

    worker.trimConsumed();
    EXPECT_EQ(dev_.recordCount("labeled"), 0u);
    // New samples keep flowing.
    serving.serve(100, 10.0);
    serving.flush();
    joiner.pump(2000.0);
    EXPECT_EQ(worker.pump(), 100u);
    worker.flush();
    EXPECT_EQ(worker.buffered(), 1u);
}

TEST_F(EtlPipelineTest, StreamWorkerProjectionFiltersColumns)
{
    ServingOptions so;
    so.event_loss_rate = 0.0;
    ServingSimulator serving(dev_, schema_, so);
    serving.serve(200, 0.0);
    serving.flush();
    StreamingJoiner joiner(dev_, JoinOptions{});
    joiner.pump(1000.0);

    dpp::StreamSessionSpec spec;
    spec.batch_size = 200;
    FeatureId keep_dense = schema_.features.front().id;
    spec.projection = {keep_dense};
    spec.setTransforms(transforms::TransformGraph{});
    dpp::StreamWorker worker(dev_, spec);
    worker.pump();
    worker.flush();
    auto t = worker.popTensor();
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(t->data.dense.size(), 1u);
    EXPECT_EQ(t->data.dense[0].id, keep_dense);
    EXPECT_TRUE(t->data.sparse.empty());
    EXPECT_EQ(t->data.labels.size(), 200u);
}

TEST_F(EtlPipelineTest, StreamWorkerSkipsMalformedRecords)
{
    dev_.append("labeled", 0.0, 1, {});          // empty payload
    dev_.append("labeled", 0.0, 2, {1, 0xff});   // junk features
    dpp::StreamSessionSpec spec;
    spec.setTransforms(transforms::TransformGraph{});
    dpp::StreamWorker worker(dev_, spec);
    EXPECT_EQ(worker.pump(), 2u);
    worker.flush();
    EXPECT_EQ(worker.buffered(), 0u);
    EXPECT_DOUBLE_EQ(worker.metrics().counter("stream.malformed"),
                     2.0);
}

} // namespace
} // namespace dsi
