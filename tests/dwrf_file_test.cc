/**
 * @file
 * End-to-end tests of the DWRF writer/reader: round trips across
 * option combinations, projection, coalesced-read planning, map-blob
 * baseline, and IO-trace accounting.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/fault.h"
#include "common/rng.h"
#include "dwrf/reader.h"
#include "dwrf/writer.h"

namespace dsi::dwrf {
namespace {

std::vector<Row>
makeRows(uint32_t n, uint64_t seed, uint32_t dense_feats = 8,
         uint32_t sparse_feats = 4)
{
    Rng rng(seed);
    std::vector<Row> rows;
    rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        Row r;
        r.label = rng.nextBool(0.03) ? 1.0f : 0.0f;
        for (FeatureId f = 0; f < dense_feats; ++f) {
            if (rng.nextBool(0.7))
                r.dense.push_back(
                    {100 + f, static_cast<float>(rng.nextDouble())});
        }
        for (FeatureId f = 0; f < sparse_feats; ++f) {
            if (!rng.nextBool(0.5))
                continue;
            SparseFeature s;
            s.id = 200 + f;
            uint64_t len = 1 + rng.nextUint(20);
            for (uint64_t k = 0; k < len; ++k)
                s.values.push_back(
                    static_cast<int64_t>(rng.nextUint(1u << 20)));
            if (f % 2 == 0) {
                for (uint64_t k = 0; k < len; ++k)
                    s.scores.push_back(
                        static_cast<float>(rng.nextDouble()));
            }
            r.sparse.push_back(std::move(s));
        }
        rows.push_back(std::move(r));
    }
    return rows;
}

void
expectRowsEqual(const std::vector<Row> &a, const std::vector<Row> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(a[i].label, b[i].label) << "row " << i;
        ASSERT_EQ(a[i].dense.size(), b[i].dense.size()) << "row " << i;
        for (size_t d = 0; d < a[i].dense.size(); ++d) {
            EXPECT_EQ(a[i].dense[d].id, b[i].dense[d].id);
            EXPECT_FLOAT_EQ(a[i].dense[d].value, b[i].dense[d].value);
        }
        ASSERT_EQ(a[i].sparse.size(), b[i].sparse.size()) << "row " << i;
        for (size_t s = 0; s < a[i].sparse.size(); ++s) {
            EXPECT_EQ(a[i].sparse[s].id, b[i].sparse[s].id);
            EXPECT_EQ(a[i].sparse[s].values, b[i].sparse[s].values);
            ASSERT_EQ(a[i].sparse[s].scores.size(),
                      b[i].sparse[s].scores.size());
            for (size_t k = 0; k < a[i].sparse[s].scores.size(); ++k)
                EXPECT_FLOAT_EQ(a[i].sparse[s].scores[k],
                                b[i].sparse[s].scores[k]);
        }
    }
}

struct FileOptions
{
    bool flatten;
    Codec codec;
    bool encrypt;
};

class FileRoundTrip : public ::testing::TestWithParam<FileOptions>
{
};

TEST_P(FileRoundTrip, AllFeaturesAllRows)
{
    auto rows = makeRows(700, 42);
    WriterOptions wo;
    wo.rows_per_stripe = 256;
    wo.flatten = GetParam().flatten;
    wo.codec = GetParam().codec;
    wo.encrypt = GetParam().encrypt;
    FileWriter writer(wo);
    writer.appendRows(rows);
    MemorySource src(writer.finish());

    FileReader reader(src, ReadOptions{});
    ASSERT_TRUE(reader.valid());
    EXPECT_EQ(reader.totalRows(), 700u);
    EXPECT_EQ(reader.stripeCount(), 3u); // 256+256+188

    std::vector<Row> got;
    for (size_t s = 0; s < reader.stripeCount(); ++s) {
        auto batch = reader.readStripe(s);
        auto part = batch.toRows();
        got.insert(got.end(), part.begin(), part.end());
    }
    expectRowsEqual(rows, got);
}

INSTANTIATE_TEST_SUITE_P(
    Options, FileRoundTrip,
    ::testing::Values(FileOptions{true, Codec::Lz, false},
                      FileOptions{true, Codec::Lz, true},
                      FileOptions{true, Codec::None, false},
                      FileOptions{false, Codec::Lz, false},
                      FileOptions{false, Codec::Lz, true},
                      FileOptions{false, Codec::None, true}));

TEST(FileReader, ProjectionReturnsOnlyRequestedFeatures)
{
    auto rows = makeRows(300, 7);
    WriterOptions wo;
    wo.rows_per_stripe = 300;
    FileWriter writer(wo);
    writer.appendRows(rows);
    MemorySource src(writer.finish());

    ReadOptions ro;
    ro.projection = {101, 200}; // one dense, one sparse
    FileReader reader(src, ro);
    ASSERT_TRUE(reader.valid());
    auto batch = reader.readStripe(0);
    ASSERT_EQ(batch.dense.size(), 1u);
    EXPECT_EQ(batch.dense[0].id, 101u);
    ASSERT_EQ(batch.sparse.size(), 1u);
    EXPECT_EQ(batch.sparse[0].id, 200u);
    EXPECT_EQ(batch.labels.size(), 300u);
}

TEST(FileReader, ProjectionReadsFewerBytesWhenFlattened)
{
    auto rows = makeRows(2000, 11, 64, 32);
    WriterOptions wo;
    wo.rows_per_stripe = 1000;
    FileWriter writer(wo);
    writer.appendRows(rows);
    Buffer file = writer.finish();

    MemorySource full_src(file);
    FileReader full(full_src, ReadOptions{});
    full.readStripe(0);

    MemorySource proj_src(file);
    ReadOptions ro;
    ro.projection = {105, 210};
    FileReader proj(proj_src, ro);
    proj.readStripe(0);

    EXPECT_LT(proj.stats().bytes_read, full.stats().bytes_read / 10);
}

TEST(FileReader, MapBlobReadsEverythingRegardlessOfProjection)
{
    auto rows = makeRows(500, 13, 64, 32);
    WriterOptions wo;
    wo.rows_per_stripe = 500;
    wo.flatten = false;
    FileWriter writer(wo);
    writer.appendRows(rows);
    Buffer file = writer.finish();

    MemorySource full_src(file);
    FileReader full(full_src, ReadOptions{});
    full.readStripe(0);

    MemorySource proj_src(file);
    ReadOptions ro;
    ro.projection = {105};
    FileReader proj(proj_src, ro);
    auto batch = proj.readStripe(0);

    // Same stored bytes fetched, but only the projection materialized.
    EXPECT_EQ(proj.stats().bytes_read, full.stats().bytes_read);
    ASSERT_EQ(batch.dense.size(), 1u);
    EXPECT_EQ(batch.dense[0].id, 105u);
}

TEST(Planner, UncoalescedHasOneIoPerStream)
{
    StripeInfo stripe;
    for (int i = 0; i < 5; ++i)
        stripe.streams.push_back({static_cast<FeatureId>(i),
                                  StreamKind::DenseValues,
                                  static_cast<Bytes>(i) * 1000, 100,
                                  100});
    std::vector<size_t> wanted{0, 2, 4};
    auto plan = planStripeReads(stripe, wanted, false, 0);
    ASSERT_EQ(plan.size(), 3u);
    for (const auto &io : plan)
        EXPECT_EQ(io.stream_indices.size(), 1u);
}

TEST(Planner, CoalescingMergesNearbyStreams)
{
    StripeInfo stripe;
    // Streams at 0, 1000, 2000 with 100-byte lengths; gaps of 900.
    for (int i = 0; i < 3; ++i)
        stripe.streams.push_back({static_cast<FeatureId>(i),
                                  StreamKind::DenseValues,
                                  static_cast<Bytes>(i) * 1000, 100,
                                  100});
    std::vector<size_t> wanted{0, 1, 2};
    auto plan = planStripeReads(stripe, wanted, true, 1000);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].offset, 0u);
    EXPECT_EQ(plan[0].length, 2100u);
    EXPECT_EQ(plan[0].stream_indices.size(), 3u);
}

TEST(Planner, GapLargerThanThresholdSplits)
{
    StripeInfo stripe;
    stripe.streams.push_back({0, StreamKind::DenseValues, 0, 100, 100});
    stripe.streams.push_back(
        {1, StreamKind::DenseValues, 5000, 100, 100});
    auto plan = planStripeReads(stripe, {0, 1}, true, 1000);
    EXPECT_EQ(plan.size(), 2u);
}

TEST(Planner, UnsortedWantedStillPlansByOffset)
{
    StripeInfo stripe;
    for (int i = 0; i < 4; ++i)
        stripe.streams.push_back({static_cast<FeatureId>(i),
                                  StreamKind::DenseValues,
                                  static_cast<Bytes>(i) * 50, 50, 50});
    auto plan = planStripeReads(stripe, {3, 0, 2, 1}, true, 0);
    ASSERT_EQ(plan.size(), 1u); // contiguous streams merge at gap 0
    EXPECT_EQ(plan[0].length, 200u);
}

TEST(FileReader, CoalescingReducesIosButOverReads)
{
    auto rows = makeRows(2000, 17, 64, 32);
    WriterOptions wo;
    wo.rows_per_stripe = 2000;
    FileWriter writer(wo);
    writer.appendRows(rows);
    Buffer file = writer.finish();

    ReadOptions proj;
    // A scattered projection across the feature space.
    for (FeatureId f = 100; f < 164; f += 8)
        proj.projection.push_back(f);
    for (FeatureId f = 200; f < 232; f += 8)
        proj.projection.push_back(f);

    MemorySource src_a(file);
    FileReader separate(src_a, proj);
    separate.readStripe(0);

    ReadOptions proj_co = proj;
    proj_co.coalesce = true;
    MemorySource src_b(file);
    FileReader coalesced(src_b, proj_co);
    coalesced.readStripe(0);

    EXPECT_LT(coalesced.stats().ios, separate.stats().ios);
    EXPECT_GE(coalesced.stats().bytes_read,
              separate.stats().bytes_read);
    EXPECT_GT(coalesced.stats().overRead(), 0u);
    EXPECT_EQ(separate.stats().overRead(), 0u);
}

TEST(FileWriter, PopularityOrderPlacesPopularStreamsFirst)
{
    auto rows = makeRows(200, 23, 16, 8);
    WriterOptions wo;
    wo.rows_per_stripe = 200;
    // Declare feature 205 (sparse) and 110 (dense) most popular.
    wo.popularity_order = {205, 110};
    FileWriter writer(wo);
    writer.appendRows(rows);
    Buffer file = writer.finish();
    const auto &stripe = writer.footer().stripes.at(0);

    // After the label stream, the first dense streams belong to 110
    // and the first sparse streams to 210.
    FeatureId first_dense = kNoFeature, first_sparse = kNoFeature;
    for (const auto &s : stripe.streams) {
        if (first_dense == kNoFeature &&
            s.kind == StreamKind::DenseValues) {
            first_dense = s.feature;
        }
        if (first_sparse == kNoFeature &&
            s.kind == StreamKind::SparseValues) {
            first_sparse = s.feature;
        }
    }
    EXPECT_EQ(first_dense, 110u);
    EXPECT_EQ(first_sparse, 205u);
}

TEST(FileWriter, StripeSizingControlsStripeCount)
{
    auto rows = makeRows(1000, 29);
    for (uint32_t rps : {100u, 250u, 1000u, 4000u}) {
        WriterOptions wo;
        wo.rows_per_stripe = rps;
        FileWriter writer(wo);
        writer.appendRows(rows);
        MemorySource src(writer.finish());
        FileReader reader(src, ReadOptions{});
        ASSERT_TRUE(reader.valid());
        EXPECT_EQ(reader.stripeCount(), (1000 + rps - 1) / rps);
    }
}

TEST(FileReader, InvalidFileRejected)
{
    MemorySource src(Buffer{1, 2, 3});
    FileReader reader(src, ReadOptions{});
    EXPECT_FALSE(reader.valid());

    Buffer junk(1000, 0xab);
    MemorySource src2(std::move(junk));
    FileReader reader2(src2, ReadOptions{});
    EXPECT_FALSE(reader2.valid());
}

TEST(FileReader, WrongKeyFailsToDecodeCleanly)
{
    auto rows = makeRows(100, 31);
    WriterOptions wo;
    wo.encrypt = true;
    wo.cipher_key = 0xaaaa;
    FileWriter writer(wo);
    writer.appendRows(rows);
    MemorySource src(writer.finish());

    ReadOptions ro;
    ro.cipher_key = 0xbbbb;
    FileReader reader(src, ro);
    // Footer is stored unencrypted, so the reader opens; decoding the
    // garbled streams must die rather than return corrupt data.
    ASSERT_TRUE(reader.valid());
    EXPECT_DEATH(reader.readStripe(0), "failed to decode|mismatch");
}

TEST(IoTrace, RecordsAllReads)
{
    auto rows = makeRows(100, 37);
    FileWriter writer(WriterOptions{});
    writer.appendRows(rows);
    MemorySource src(writer.finish());
    FileReader reader(src, ReadOptions{});
    ASSERT_TRUE(reader.valid());
    src.clearTrace(); // drop footer reads
    reader.readStripe(0);
    EXPECT_EQ(src.trace().count(), reader.stats().ios);
    EXPECT_EQ(src.trace().totalBytes(), reader.stats().bytes_read);
}

TEST(Checksum, CorruptionDetected)
{
    auto rows = makeRows(200, 51);
    FileWriter writer(WriterOptions{});
    writer.appendRows(rows);
    Buffer file = writer.finish();
    // Flip a byte in the middle of the first stripe's data.
    file[file.size() / 4] ^= 0xff;
    MemorySource src(std::move(file));
    FileReader reader(src, ReadOptions{});
    ASSERT_TRUE(reader.valid());
    EXPECT_DEATH(reader.readStripe(0), "checksum mismatch");
}

TEST(Checksum, MismatchIsRecoverableViaCheckedRead)
{
    // Same corruption as above, but through the status-returning API:
    // the mismatch is counted and reported, never fatal. The stored
    // bytes are persistently corrupt, so every per-stripe retry hits
    // the same mismatch and the final status is ChecksumMismatch.
    auto rows = makeRows(200, 51);
    FileWriter writer(WriterOptions{});
    writer.appendRows(rows);
    Buffer file = writer.finish();
    file[file.size() / 4] ^= 0xff;
    MemorySource src(std::move(file));
    ReadOptions ro;
    ro.max_stripe_retries = 2;
    ro.retry_backoff_us = 0;
    FileReader reader(src, ro);
    ASSERT_TRUE(reader.valid());
    RowBatch out;
    EXPECT_EQ(reader.readStripe(0, out),
              ReadStatus::ChecksumMismatch);
    // Initial attempt + 2 retries, each catching the corruption.
    EXPECT_EQ(reader.stats().stripe_retries, 2u);
    EXPECT_EQ(reader.stats().checksum_mismatches, 3u);
}

TEST(Checksum, TransientCorruptionIsHealedByRetry)
{
    // A corrupt read that does NOT repeat (one-shot injected fault)
    // is healed transparently: the retry re-reads clean bytes and
    // the stripe decodes.
    auto rows = makeRows(150, 77);
    FileWriter writer(WriterOptions{});
    writer.appendRows(rows);
    MemorySource src(writer.finish());
    FileReader reader(src, ReadOptions{});
    ASSERT_TRUE(reader.valid());

    dsi::FaultInjector::instance().reset();
    // Corrupt the next source read once (the first stripe IO).
    dsi::ScopedFault corrupt(dsi::faults::kSourceReadCorrupt,
                             dsi::FaultSpec{.max_fires = 1});
    RowBatch out;
    EXPECT_EQ(reader.readStripe(0, out), ReadStatus::Ok);
    EXPECT_EQ(out.rows, 150u);
    EXPECT_EQ(reader.stats().checksum_mismatches, 1u);
    EXPECT_EQ(reader.stats().stripe_retries, 1u);
    dsi::FaultInjector::instance().reset();
}

TEST(Checksum, TransientIoErrorIsHealedByRetry)
{
    auto rows = makeRows(150, 78);
    FileWriter writer(WriterOptions{});
    writer.appendRows(rows);
    MemorySource src(writer.finish());
    FileReader reader(src, ReadOptions{});
    ASSERT_TRUE(reader.valid());

    dsi::FaultInjector::instance().reset();
    // The next source read fails once; the stripe retry succeeds.
    dsi::ScopedFault err(dsi::faults::kSourceReadError,
                         dsi::FaultSpec{.max_fires = 1});
    RowBatch out;
    EXPECT_EQ(reader.readStripe(0, out), ReadStatus::Ok);
    EXPECT_EQ(out.rows, 150u);
    EXPECT_EQ(reader.stats().io_errors, 1u);
    EXPECT_EQ(reader.stats().stripe_retries, 1u);
    dsi::FaultInjector::instance().reset();
}

TEST(Checksum, PersistentIoErrorSurfacesStatus)
{
    auto rows = makeRows(80, 79);
    FileWriter writer(WriterOptions{});
    writer.appendRows(rows);
    MemorySource src(writer.finish());
    FileReader reader(src, ReadOptions{}); // valid before arming
    ASSERT_TRUE(reader.valid());

    dsi::FaultInjector::instance().reset();
    dsi::ScopedFault err(dsi::faults::kSourceReadError,
                         dsi::FaultSpec{.probability = 1.0});
    RowBatch out;
    EXPECT_EQ(reader.readStripe(0, out), ReadStatus::IoError);
    EXPECT_GE(reader.stats().io_errors, 1u);
    EXPECT_EQ(reader.stats().stripe_retries, 2u); // default budget
    dsi::FaultInjector::instance().reset();
}

TEST(Checksum, VerificationCanBeDisabled)
{
    // Without verification a corrupt *uncompressed* region decodes
    // to garbage instead of dying at the CRC; corrupting stored
    // bytes under Codec::None changes values silently.
    auto rows = makeRows(50, 53);
    WriterOptions wo;
    wo.codec = Codec::None;
    FileWriter writer(wo);
    writer.appendRows(rows);
    Buffer file = writer.finish();
    const auto &label_stream = writer.footer().stripes[0].streams[0];
    // Flip one byte inside the label stream payload.
    file[label_stream.offset + 6] ^= 0x01;
    MemorySource src(std::move(file));
    ReadOptions ro;
    ro.verify_checksums = false;
    FileReader reader(src, ro);
    ASSERT_TRUE(reader.valid());
    auto batch = reader.readStripe(0); // must not die
    EXPECT_EQ(batch.rows, 50u);
}

TEST(Footer, ValueCountsRecorded)
{
    auto rows = makeRows(300, 57);
    FileWriter writer(WriterOptions{});
    writer.appendRows(rows);
    MemorySource src(writer.finish());
    FileReader reader(src, ReadOptions{});
    ASSERT_TRUE(reader.valid());
    const auto &stripe = reader.footer().stripes.at(0);
    uint64_t sparse_values = 0;
    for (const auto &s : stripe.streams) {
        switch (s.kind) {
          case StreamKind::Labels:
          case StreamKind::DensePresent:
          case StreamKind::SparseLengths:
            EXPECT_EQ(s.value_count, 300u);
            break;
          case StreamKind::DenseValues:
            EXPECT_LE(s.value_count, 300u);
            EXPECT_GT(s.value_count, 0u);
            break;
          case StreamKind::SparseValues:
            sparse_values += s.value_count;
            break;
          default:
            break;
        }
    }
    // Value counts match what actually decodes.
    auto batch = reader.readStripe(0);
    uint64_t decoded = 0;
    for (const auto &c : batch.sparse)
        decoded += c.values.size();
    EXPECT_EQ(sparse_values, decoded);
}

TEST(RowBatch, PayloadBytesPositive)
{
    auto rows = makeRows(50, 41);
    auto batch = batchFromRows(rows);
    EXPECT_GT(batch.payloadBytes(), 50u * sizeof(float));
    EXPECT_EQ(batch.rows, 50u);
}

TEST(RowBatch, FindHelpers)
{
    auto rows = makeRows(50, 43);
    auto batch = batchFromRows(rows);
    ASSERT_FALSE(batch.dense.empty());
    EXPECT_NE(batch.findDense(batch.dense[0].id), nullptr);
    EXPECT_EQ(batch.findDense(9999), nullptr);
    ASSERT_FALSE(batch.sparse.empty());
    EXPECT_NE(batch.findSparse(batch.sparse[0].id), nullptr);
    EXPECT_EQ(batch.findSparse(9999), nullptr);
}

} // namespace
} // namespace dsi::dwrf
