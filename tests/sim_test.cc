/**
 * @file
 * Unit tests for the discrete-event engine, resource models, device
 * models, the datacenter tax, and power accounting.
 */

#include <gtest/gtest.h>

#include "sim/device.h"
#include "sim/event_queue.h"
#include "sim/power.h"
#include "sim/resource.h"
#include "sim/tax.h"

namespace dsi::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMore)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 10)
            q.scheduleAfter(1.0, chain);
    };
    q.schedule(0.0, chain);
    uint64_t n = q.run();
    EXPECT_EQ(n, 10u);
    EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] { ++fired; });
    q.schedule(5.0, [&] { ++fired; });
    q.runUntil(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(RateResource, UtilizationClipsAtOne)
{
    RateResource r("cpu", 100.0);
    r.offer(50.0);
    EXPECT_DOUBLE_EQ(r.utilization(), 0.5);
    EXPECT_FALSE(r.saturated());
    r.offer(100.0);
    EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
    EXPECT_DOUBLE_EQ(r.demandRatio(), 1.5);
    EXPECT_TRUE(r.saturated());
}

TEST(RateResource, AchievableThrottlesProportionally)
{
    RateResource r("nic", 100.0);
    r.offer(200.0);
    EXPECT_DOUBLE_EQ(r.achievable(100.0), 50.0);
    r.resetOffered();
    r.offer(80.0);
    EXPECT_DOUBLE_EQ(r.achievable(80.0), 80.0);
}

TEST(UtilizationTracker, TimeWeightedAverage)
{
    UtilizationTracker t;
    t.sample(0.0, 0.2);
    t.sample(1.0, 0.8); // 0.2 held for [0,1)
    t.sample(3.0, 0.0); // 0.8 held for [1,3)
    EXPECT_NEAR(t.average(), (0.2 * 1 + 0.8 * 2) / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(t.peak(), 0.8);
}

TEST(HddModel, SmallIosAreSeekBound)
{
    HddNodeModel hdd;
    // A 4 KiB random read is dominated by seek + rotation.
    double t_small = hdd.ioTime(4096);
    EXPECT_GT(t_small, 0.012);
    EXPECT_LT(t_small, 0.013);
    // Throughput grows superlinearly from tiny to large IOs.
    EXPECT_GT(hdd.throughput(1310720) / hdd.throughput(4096), 50.0);
}

TEST(HddModel, IopsScalesWithSpindles)
{
    HddNodeModel hdd;
    HddNodeModel big = hdd;
    big.spindles = 72;
    EXPECT_NEAR(big.iops(4096) / hdd.iops(4096), 2.0, 1e-9);
}

TEST(SsdModel, PaperRatiosEmerge)
{
    // Section VII: SSD nodes provide ~326% IOPS/W but only ~9%
    // capacity/W compared to HDD nodes.
    HddNodeModel hdd;
    SsdNodeModel ssd;
    double iops_ratio = ssd.iopsPerWatt() / hdd.iopsPerWatt();
    double cap_ratio = ssd.capacityPerWatt() / hdd.capacityPerWatt();
    EXPECT_NEAR(iops_ratio, 3.26, 0.35);
    EXPECT_NEAR(cap_ratio, 0.09, 0.02);
}

TEST(ComputeNodes, TableXSpecs)
{
    auto v1 = computeNodeV1();
    auto v2 = computeNodeV2();
    auto v3 = computeNodeV3();
    EXPECT_EQ(v1.cores, 18u);
    EXPECT_DOUBLE_EQ(v1.nic_gbps, 12.5);
    EXPECT_DOUBLE_EQ(v1.mem_bw_gbps, 75.0);
    EXPECT_EQ(v2.cores, 26u);
    EXPECT_DOUBLE_EQ(v2.mem_bw_gbps, 92.0);
    EXPECT_EQ(v3.cores, 36u);
    EXPECT_DOUBLE_EQ(v3.mem_bw_gbps, 83.0);
    // The paper's observation: cores and NIC grow faster than memory
    // bandwidth across generations.
    double core_growth =
        static_cast<double>(v3.cores) / static_cast<double>(v1.cores);
    double membw_growth = v3.mem_bw_gbps / v1.mem_bw_gbps;
    EXPECT_GT(core_growth, membw_growth);
    EXPECT_GT(v3.nic_gbps / v1.nic_gbps, membw_growth);
}

TEST(DatacenterTax, TlsOffloadReducesCost)
{
    DatacenterTax full;
    DatacenterTax off = taxWithTlsOffload();
    EXPECT_GT(full.cyclesPerByte(), off.cyclesPerByte());
    EXPECT_NEAR(full.memBwPerByte() - off.memBwPerByte(), 3.0, 1e-12);
}

TEST(DatacenterTax, LoadScalesLinearly)
{
    DatacenterTax tax;
    EXPECT_DOUBLE_EQ(tax.cpuLoad(2e9), 2.0 * tax.cpuLoad(1e9));
    EXPECT_DOUBLE_EQ(tax.memBwLoad(2e9), 2.0 * tax.memBwLoad(1e9));
}

TEST(PowerBreakdown, FractionsSumToOne)
{
    PowerBreakdown p;
    p.add("storage", 10, 540);
    p.add("preprocessing", 24, 250);
    p.add("training", 1, 3300);
    double total = p.fraction("storage") + p.fraction("preprocessing") +
                   p.fraction("training");
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_GT(p.total(), 0.0);
    EXPECT_DOUBLE_EQ(p.categoryWatts("storage"), 5400.0);
}

} // namespace
} // namespace dsi::sim
