/**
 * @file
 * Property, fuzz, and file-level tests for the RecD list-dictionary
 * codec (src/dwrf/dedup.h).
 *
 * The codec must be *lossless* under every corpus shape (empty lists,
 * single-element lists, all-identical, adversarial near-duplicates),
 * reject every truncation and count mismatch, survive random bit
 * flips without crashing, and — at the file level — produce byte-
 * identical decoded batches to the plain encoding while shrinking
 * storage on duplicated corpora. Corrupt shared-dictionary bytes must
 * surface through the reader's checksum path (reportCorruption), not
 * as silently wrong data.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "dwrf/dedup.h"
#include "dwrf/reader.h"
#include "dwrf/source.h"
#include "dwrf/writer.h"
#include "test_fixtures.h"
#include "warehouse/datagen.h"

namespace dsi::dwrf {
namespace {

/** Build a SparseColumn from explicit lists (scores optional). */
SparseColumn
makeColumn(const std::vector<std::vector<int64_t>> &lists,
           const std::vector<std::vector<float>> *scores = nullptr)
{
    SparseColumn col;
    col.id = 42;
    col.offsets.assign(lists.size() + 1, 0);
    for (size_t r = 0; r < lists.size(); ++r) {
        col.values.insert(col.values.end(), lists[r].begin(),
                          lists[r].end());
        if (scores != nullptr) {
            col.scores.insert(col.scores.end(), (*scores)[r].begin(),
                              (*scores)[r].end());
        }
        col.offsets[r + 1] = static_cast<uint32_t>(col.values.size());
    }
    return col;
}

/**
 * Encode `col` through a builder with `limits`, decode the dictionary
 * and the stripe stream back, and return the reconstructed column.
 * Asserts every decode step succeeds.
 */
SparseColumn
roundTrip(const SparseColumn &col, uint32_t rows,
          ListDictLimits limits = {},
          ListDictColumnEncode *enc_out = nullptr,
          ListDictDecodeStats *stats_out = nullptr)
{
    ListDictBuilder dict(limits);
    ListDictColumnEncode enc = encodeListDictColumn(col, rows, dict);
    if (enc_out != nullptr)
        *enc_out = enc;

    DecodedListDict decoded;
    const DecodedListDict *dptr = nullptr;
    if (dict.size() > 0) {
        Buffer dict_stream = dict.encode();
        EXPECT_TRUE(decodeSharedListDict(dict_stream, decoded));
        dptr = &decoded;
    }
    SparseColumn back;
    back.id = col.id;
    EXPECT_TRUE(
        decodeListDictColumn(enc.stream, rows, dptr, back, stats_out));
    return back;
}

void
expectColumnsEqual(const SparseColumn &a, const SparseColumn &b)
{
    ASSERT_EQ(a.offsets, b.offsets);
    ASSERT_EQ(a.values, b.values);
    ASSERT_EQ(a.scores.size(), b.scores.size());
    // Bitwise score compare (float == would miss NaN payloads).
    if (!a.scores.empty()) {
        EXPECT_EQ(std::memcmp(a.scores.data(), b.scores.data(),
                              a.scores.size() * sizeof(float)),
                  0);
    }
}

TEST(ListDictCodec, RoundTripEdgeShapes)
{
    // Empty lists, single elements, all-identical, and adversarial
    // near-duplicates: shared prefixes, one-element tails, equal
    // values with different scores.
    std::vector<std::vector<int64_t>> lists{
        {},
        {7},
        {7},
        {},
        {1, 2, 3},
        {1, 2, 3},
        {1, 2, 3, 4},   // near-dup: extra tail element
        {1, 2},         // near-dup: prefix
        {2, 1, 3},      // near-dup: permutation
        {7},
        {},
    };
    SparseColumn col = makeColumn(lists);
    expectColumnsEqual(
        col, roundTrip(col, static_cast<uint32_t>(lists.size())));

    // Same value lists, distinguished only by scores: must stay
    // distinct entries (scores are part of the identity).
    std::vector<std::vector<int64_t>> vlists{
        {5, 6}, {5, 6}, {5, 6}, {5, 6}};
    std::vector<std::vector<float>> slists{
        {0.5f, 0.5f}, {0.5f, 0.25f}, {0.5f, 0.5f}, {0.5f, 0.25f}};
    SparseColumn scored = makeColumn(vlists, &slists);
    ListDictColumnEncode enc;
    expectColumnsEqual(scored, roundTrip(scored, 4, {}, &enc));
    EXPECT_EQ(enc.dict_refs, 4u);
}

TEST(ListDictCodec, AllIdenticalListsInternOnce)
{
    std::vector<std::vector<int64_t>> lists(64, {11, 12, 13});
    SparseColumn col = makeColumn(lists);
    ListDictBuilder dict;
    ListDictColumnEncode enc = encodeListDictColumn(col, 64, dict);
    EXPECT_EQ(dict.size(), 1u);
    EXPECT_EQ(enc.dict_refs, 64u);
    EXPECT_EQ(enc.inline_lists, 0u);
}

TEST(ListDictCodec, RoundTripRandomCorpora)
{
    // Randomized lists drawn from a small pool (guaranteed repeats)
    // plus fresh noise lists; scored and unscored variants.
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed * 0x5eedULL);
        bool use_scores = seed % 2 == 0;
        uint32_t rows = 1 + rng.nextUint(200);
        std::vector<std::vector<int64_t>> pool;
        for (int p = 0; p < 8; ++p) {
            std::vector<int64_t> list(rng.nextUint(6));
            for (auto &v : list)
                v = static_cast<int64_t>(rng.nextUint(1000)) - 500;
            pool.push_back(std::move(list));
        }
        std::vector<std::vector<int64_t>> lists;
        std::vector<std::vector<float>> scores;
        for (uint32_t r = 0; r < rows; ++r) {
            std::vector<int64_t> list;
            if (rng.nextBool(0.7)) {
                list = pool[rng.nextUint(pool.size())];
            } else {
                list.resize(rng.nextUint(5));
                for (auto &v : list)
                    v = static_cast<int64_t>(rng.next());
            }
            std::vector<float> sc(list.size());
            for (auto &s : sc)
                s = static_cast<float>(rng.nextDouble());
            lists.push_back(std::move(list));
            scores.push_back(std::move(sc));
        }
        SparseColumn col =
            makeColumn(lists, use_scores ? &scores : nullptr);
        expectColumnsEqual(col, roundTrip(col, rows));
    }
}

TEST(ListDictCodec, CapForcedInlineStaysLossless)
{
    // A dictionary capped at 2 entries forces most lists inline; the
    // mixed dict/inline stream must still round-trip exactly.
    std::vector<std::vector<int64_t>> lists;
    for (int64_t i = 0; i < 40; ++i)
        lists.push_back({i % 7, i % 7 + 1}); // 7 distinct lists
    SparseColumn col = makeColumn(lists);

    ListDictLimits tiny;
    tiny.max_entries = 2;
    ListDictColumnEncode enc;
    ListDictDecodeStats stats;
    expectColumnsEqual(col, roundTrip(col, 40, tiny, &enc, &stats));
    EXPECT_GT(enc.dict_refs, 0u);
    EXPECT_GT(enc.inline_lists, 0u);
    EXPECT_EQ(stats.dict_refs, enc.dict_refs);
    EXPECT_EQ(stats.inline_lists, enc.inline_lists);

    // Byte cap instead of entry cap: same losslessness.
    ListDictLimits small_bytes;
    small_bytes.max_payload_bytes = 3 * sizeof(int64_t);
    expectColumnsEqual(col, roundTrip(col, 40, small_bytes));
}

TEST(ListDictCodec, OutOfRangeCodesRejected)
{
    std::vector<std::vector<int64_t>> lists{{1}, {2}, {1}, {2}};
    SparseColumn col = makeColumn(lists);
    ListDictBuilder dict;
    ListDictColumnEncode enc = encodeListDictColumn(col, 4, dict);
    ASSERT_EQ(dict.size(), 2u);

    // No dictionary at all: every code is out of range.
    SparseColumn out;
    EXPECT_FALSE(decodeListDictColumn(enc.stream, 4, nullptr, out));

    // A smaller dictionary than the codes reference.
    ListDictBuilder one;
    std::vector<int64_t> single{1};
    ASSERT_TRUE(one.intern(single, {}, false).has_value());
    Buffer one_stream = one.encode();
    DecodedListDict small;
    ASSERT_TRUE(decodeSharedListDict(one_stream, small));
    EXPECT_FALSE(decodeListDictColumn(enc.stream, 4, &small, out));

    // Row-count mismatch between stream and caller.
    DecodedListDict full;
    Buffer dict_stream = dict.encode();
    ASSERT_TRUE(decodeSharedListDict(dict_stream, full));
    EXPECT_FALSE(decodeListDictColumn(enc.stream, 5, &full, out));
    EXPECT_TRUE(decodeListDictColumn(enc.stream, 4, &full, out));
}

TEST(ListDictCodec, ScorednessMismatchRejected)
{
    // An unscored stripe column must not gather from a scored
    // dictionary (it would drop scores) and vice versa (it would
    // invent them).
    std::vector<std::vector<int64_t>> lists{{3, 4}, {3, 4}};
    SparseColumn col = makeColumn(lists);
    ListDictBuilder dict;
    ListDictColumnEncode enc = encodeListDictColumn(col, 2, dict);

    ListDictBuilder scored_dict;
    std::vector<int64_t> values{3, 4};
    std::vector<float> scores{0.1f, 0.2f};
    ASSERT_TRUE(
        scored_dict.intern(values, scores, true).has_value());
    Buffer scored_stream = scored_dict.encode();
    DecodedListDict scored;
    ASSERT_TRUE(decodeSharedListDict(scored_stream, scored));

    SparseColumn out;
    EXPECT_FALSE(decodeListDictColumn(enc.stream, 2, &scored, out));
}

TEST(ListDictCodec, BuilderRejectsScorednessFlip)
{
    ListDictBuilder dict;
    std::vector<int64_t> values{1, 2};
    std::vector<float> scores{0.5f, 0.5f};
    ASSERT_TRUE(dict.intern(values, scores, true).has_value());
    // Once pinned scored, an unscored intern falls back to inline.
    EXPECT_FALSE(dict.intern(values, {}, false).has_value());
}

TEST(ListDictCodec, RejectsEveryTruncation)
{
    std::vector<std::vector<int64_t>> lists{
        {}, {9}, {9}, {1, 2, 3}, {1, 2, 3}, {4, 5}};
    std::vector<std::vector<float>> scores{
        {}, {.1f}, {.1f}, {.2f, .3f, .4f}, {.2f, .3f, .4f}, {.5f, .6f}};
    SparseColumn col = makeColumn(lists, &scores);
    ListDictBuilder dict;
    ListDictColumnEncode enc = encodeListDictColumn(
        col, static_cast<uint32_t>(lists.size()), dict);
    Buffer dict_stream = dict.encode();

    for (size_t len = 0; len < dict_stream.size(); ++len) {
        DecodedListDict out;
        EXPECT_FALSE(decodeSharedListDict(
            ByteSpan(dict_stream.data(), len), out))
            << "dict prefix " << len << " accepted";
    }
    DecodedListDict full;
    ASSERT_TRUE(decodeSharedListDict(dict_stream, full));
    for (size_t len = 0; len < enc.stream.size(); ++len) {
        SparseColumn out;
        EXPECT_FALSE(decodeListDictColumn(
            ByteSpan(enc.stream.data(), len),
            static_cast<uint32_t>(lists.size()), &full, out))
            << "column prefix " << len << " accepted";
    }
}

TEST(ListDictCodec, SurvivesRandomBitFlips)
{
    // Single-bit corruptions must never crash or read out of bounds
    // (ASan-checked in CI); they either decode to *something* or are
    // rejected — and if the dictionary stream decodes differently,
    // the column decode must still stay in bounds.
    std::vector<std::vector<int64_t>> lists;
    for (int64_t i = 0; i < 32; ++i)
        lists.push_back({i % 5, i % 3, 1000 + i % 5});
    SparseColumn col = makeColumn(lists);
    ListDictBuilder dict;
    ListDictColumnEncode enc = encodeListDictColumn(col, 32, dict);
    Buffer dict_stream = dict.encode();
    DecodedListDict clean;
    ASSERT_TRUE(decodeSharedListDict(dict_stream, clean));

    Rng rng(0xF11Fu);
    for (int trial = 0; trial < 300; ++trial) {
        Buffer corrupt = dict_stream;
        size_t byte = rng.nextUint(corrupt.size());
        corrupt[byte] ^= static_cast<uint8_t>(1u << rng.nextUint(8));
        DecodedListDict out;
        bool ok = decodeSharedListDict(corrupt, out);
        if (ok) {
            // Whatever decoded, column gather against it must stay
            // memory-safe (reject or produce consistent output).
            SparseColumn back;
            decodeListDictColumn(enc.stream, 32, &out, back);
        }
    }
    for (int trial = 0; trial < 300; ++trial) {
        Buffer corrupt = enc.stream;
        size_t byte = rng.nextUint(corrupt.size());
        corrupt[byte] ^= static_cast<uint8_t>(1u << rng.nextUint(8));
        SparseColumn back;
        decodeListDictColumn(corrupt, 32, &clean, back);
    }
}

// ---------------------------------------------------------------------
// File level: writer + reader through real DWRF files.

warehouse::SchemaParams
dedupParams()
{
    warehouse::SchemaParams p;
    p.name = "dedup";
    p.float_features = 6;
    p.sparse_features = 6;
    p.avg_length = 8;
    p.coverage_u = 0.6;
    p.seed = 91;
    return p;
}

/** Rows with heavily duplicated payloads (the RecD shape). */
std::vector<Row>
dupRows(uint32_t n)
{
    warehouse::TableSchema schema = warehouse::makeSchema(dedupParams());
    warehouse::DupParams dp;
    dp.pool_size = 64;
    dp.alpha = 1.1;
    dp.seed = 17;
    warehouse::DupRowGenerator gen(schema, dp);
    return gen.batch(n);
}

Buffer
writeFile(const std::vector<Row> &rows, bool dedup)
{
    WriterOptions wo;
    wo.rows_per_stripe = 512;
    wo.dedup = dedup;
    FileWriter writer(wo);
    writer.appendRows(rows);
    return writer.finish();
}

/** Read every stripe of `file` with the full projection. */
std::vector<RowBatch>
readAll(const Buffer &file, ReadStats *stats_out = nullptr,
        ReadStatus *status_out = nullptr)
{
    MemorySource source(file);
    FileReader reader(source, ReadOptions{});
    EXPECT_TRUE(reader.valid());
    std::vector<RowBatch> batches;
    for (size_t s = 0; s < reader.stripeCount(); ++s) {
        RowBatch batch;
        ReadStatus st = reader.readStripe(s, batch);
        if (status_out != nullptr)
            *status_out = st;
        if (st != ReadStatus::Ok)
            break;
        batches.push_back(std::move(batch));
    }
    if (stats_out != nullptr)
        *stats_out = reader.stats();
    return batches;
}

void
expectBatchesEqual(const std::vector<RowBatch> &a,
                   const std::vector<RowBatch> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].rows, b[i].rows);
        ASSERT_EQ(a[i].labels, b[i].labels);
        ASSERT_EQ(a[i].dense.size(), b[i].dense.size());
        for (size_t c = 0; c < a[i].dense.size(); ++c) {
            EXPECT_EQ(a[i].dense[c].id, b[i].dense[c].id);
            EXPECT_EQ(a[i].dense[c].present, b[i].dense[c].present);
            EXPECT_EQ(a[i].dense[c].values, b[i].dense[c].values);
        }
        ASSERT_EQ(a[i].sparse.size(), b[i].sparse.size());
        for (size_t c = 0; c < a[i].sparse.size(); ++c) {
            EXPECT_EQ(a[i].sparse[c].id, b[i].sparse[c].id);
            expectColumnsEqual(a[i].sparse[c], b[i].sparse[c]);
        }
    }
}

TEST(DedupFile, DecodesIdenticallyToPlainAndShrinks)
{
    auto rows = dupRows(2048);
    Buffer plain = writeFile(rows, false);
    Buffer dedup = writeFile(rows, true);

    // Duplicated corpus: the dictionary encoding must shrink the file.
    EXPECT_LT(dedup.size(), plain.size());

    ReadStats plain_stats, dedup_stats;
    auto plain_batches = readAll(plain, &plain_stats);
    auto dedup_batches = readAll(dedup, &dedup_stats);
    expectBatchesEqual(plain_batches, dedup_batches);

    EXPECT_EQ(plain_stats.dict_streams, 0u);
    EXPECT_GT(dedup_stats.dict_streams, 0u);
    EXPECT_GT(dedup_stats.dict_list_refs, 0u);
}

TEST(DedupFile, WriterStatsAccountEveryList)
{
    auto rows = dupRows(1024);
    WriterOptions wo;
    wo.rows_per_stripe = 256;
    wo.dedup = true;
    FileWriter writer(wo);
    writer.appendRows(rows);
    Buffer file = writer.finish();

    const DedupWriteStats &ws = writer.dedupStats();
    EXPECT_GT(ws.dedup_columns, 0u);
    EXPECT_GT(ws.dict_entries, 0u);
    EXPECT_GT(ws.lists_referenced, 0u);
    EXPECT_GT(ws.dict_stream_bytes, 0u);
    EXPECT_FALSE(writer.footer().shared_dicts.empty());

    // With generous caps every list resolves through a dictionary.
    EXPECT_EQ(ws.lists_inline, 0u);
}

TEST(DedupFile, SharedDictLoadsOncePerFile)
{
    // Cross-stripe reuse: many stripes, each referencing the same
    // per-feature dictionaries — fetched and decoded exactly once.
    auto rows = dupRows(2048);
    WriterOptions wo;
    wo.rows_per_stripe = 256; // 8 stripes
    wo.dedup = true;
    FileWriter writer(wo);
    writer.appendRows(rows);
    Buffer file = writer.finish();
    size_t dict_count = writer.footer().shared_dicts.size();
    ASSERT_GT(dict_count, 0u);

    ReadStats stats;
    auto batches = readAll(file, &stats);
    EXPECT_EQ(batches.size(), 8u);
    EXPECT_EQ(stats.dict_streams, dict_count);
}

TEST(DedupFile, CapOverflowRoundTripsThroughInlineResidue)
{
    auto rows = dupRows(1024);
    WriterOptions plain_wo;
    plain_wo.rows_per_stripe = 256;
    FileWriter plain_writer(plain_wo);
    plain_writer.appendRows(rows);
    Buffer plain = plain_writer.finish();

    WriterOptions wo;
    wo.rows_per_stripe = 256;
    wo.dedup = true;
    wo.dedup_limits.max_entries = 8; // force inline residue
    FileWriter writer(wo);
    writer.appendRows(rows);
    Buffer dedup = writer.finish();
    EXPECT_GT(writer.dedupStats().lists_inline, 0u);

    expectBatchesEqual(readAll(plain), readAll(dedup));
}

TEST(DedupFile, CorruptSharedDictIsCaughtByChecksum)
{
    auto rows = dupRows(1024);
    Buffer file = writeFile(rows, true);

    // Locate the first shared dictionary's stored bytes via a clean
    // footer parse, then flip one bit inside them.
    MemorySource probe(file);
    FileReader probe_reader(probe, ReadOptions{});
    ASSERT_TRUE(probe_reader.valid());
    const auto &dicts = probe_reader.footer().shared_dicts;
    ASSERT_FALSE(dicts.empty());
    Buffer corrupt = file;
    corrupt[dicts[0].offset + dicts[0].length / 2] ^= 0x10;

    MemorySource source(corrupt);
    FileReader reader(source, ReadOptions{});
    ASSERT_TRUE(reader.valid());
    RowBatch batch;
    ReadStatus status = reader.readStripe(0, batch);
    EXPECT_EQ(status, ReadStatus::ChecksumMismatch);
    EXPECT_GE(reader.stats().checksum_mismatches, 1u);
    EXPECT_GE(reader.stats().stripe_retries, 1u);
}

TEST(DedupFile, DedupOffCorpusPaysOnlyCodeOverhead)
{
    // On a dup-free corpus the always-dict policy costs a little code
    // overhead but must stay lossless and bounded (< 15% growth).
    warehouse::TableSchema schema =
        warehouse::makeSchema(dedupParams());
    warehouse::RowGenerator gen(schema, 23);
    auto rows = gen.batch(1024);

    Buffer plain = writeFile(rows, false);
    Buffer dedup = writeFile(rows, true);
    expectBatchesEqual(readAll(plain), readAll(dedup));
    EXPECT_LT(dedup.size(),
              plain.size() + plain.size() / 7 + 1024);
}

} // namespace
} // namespace dsi::dwrf
