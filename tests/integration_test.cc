/**
 * @file
 * End-to-end integration: serving logs -> Scribe -> streaming join ->
 * partition materialization -> warehouse -> DPP session -> trainer
 * consumption, with conservation checks at every boundary.
 */

#include <gtest/gtest.h>

#include "dpp/session.h"
#include "etl/pipeline.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

namespace dsi {
namespace {

class FullPipelineTest : public ::testing::Test
{
  protected:
    FullPipelineTest()
        : schema_(warehouse::makeSchema(params())),
          cluster_(storageOptions()), wh_(cluster_)
    {
    }

    static warehouse::SchemaParams
    params()
    {
        warehouse::SchemaParams p;
        p.name = "pipeline";
        p.float_features = 20;
        p.sparse_features = 10;
        p.avg_length = 6;
        p.seed = 31;
        return p;
    }
    static storage::StorageOptions
    storageOptions()
    {
        storage::StorageOptions o;
        o.hdd_nodes = 4;
        o.block_size = 2_MiB;
        return o;
    }

    warehouse::TableSchema schema_;
    storage::TectonicCluster cluster_;
    warehouse::Warehouse wh_;
    scribe::LogDevice dev_;
};

TEST_F(FullPipelineTest, RowsConservedEndToEnd)
{
    const uint64_t requests = 3000;

    // Stage 1: serving (no event loss so counts are exact).
    etl::ServingOptions so;
    so.event_loss_rate = 0.0;
    etl::ServingSimulator serving(dev_, schema_, so);
    serving.serve(requests, 0.0);
    serving.flush();
    EXPECT_EQ(dev_.recordCount("features"), requests);

    // Stage 2: join + label.
    etl::StreamingJoiner joiner(dev_, etl::JoinOptions{});
    uint64_t labeled = joiner.pump(1e6);
    EXPECT_EQ(labeled, requests);
    joiner.trimConsumed();

    // Stage 3: materialize one partition.
    auto &table = wh_.createTable(params().name, schema_);
    etl::MaterializeOptions mo;
    mo.rows_per_file = 640;
    mo.writer.rows_per_stripe = 320;
    etl::PartitionMaterializer mat(dev_, wh_, "labeled", mo);
    EXPECT_EQ(mat.materialize(table, 0), requests);
    EXPECT_EQ(table.totalRows(), requests);

    // Stage 4: DPP session over the partition.
    auto pop = warehouse::featurePopularity(schema_, 1.0, 5);
    dpp::SessionSpec spec;
    spec.table = params().name;
    spec.partitions = {0};
    spec.projection =
        warehouse::chooseProjection(schema_, pop, 8, 5, 5);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(schema_, spec.projection, gp));
    spec.batch_size = 128;
    spec.rows_per_split = 640;
    spec.read.coalesce = true;

    dpp::SessionOptions opts;
    opts.workers = 3;
    opts.clients = 2;
    dpp::InProcessSession session(wh_, spec, opts);

    uint64_t labels_positive = 0;
    auto result = session.run([&](ClientId, const dpp::TensorBatch &t) {
        for (float label : t.data.labels)
            labels_positive += label > 0.5f;
    });

    // Conservation: every materialized row reaches a trainer.
    EXPECT_EQ(result.rows_delivered, requests);
    // Labels survive the whole path (positives exist and match the
    // joiner's accounting).
    EXPECT_EQ(labels_positive,
              static_cast<uint64_t>(
                  joiner.metrics().counter("join.positives_out")));

    // Extraction accounting is self-consistent and storage-side IOs
    // actually happened on the cluster nodes.
    EXPECT_GT(result.read_stats.bytes_read, 0u);
    EXPECT_GE(result.read_stats.bytes_read,
              result.read_stats.bytes_needed);
    uint64_t node_ios = 0;
    for (const auto &n : cluster_.nodes())
        node_ios += n.ioCount();
    EXPECT_GT(node_ios, 0u);

    // Transforms ran per mini-batch and produced derived features.
    EXPECT_GT(result.transform_stats.values_produced, 0u);
}

TEST_F(FullPipelineTest, SurvivesWorkerFailureMidPipeline)
{
    etl::ServingOptions so;
    so.event_loss_rate = 0.0;
    etl::ServingSimulator serving(dev_, schema_, so);
    serving.serve(2000, 0.0);
    serving.flush();
    etl::StreamingJoiner joiner(dev_, etl::JoinOptions{});
    joiner.pump(1e6);
    auto &table = wh_.createTable(params().name, schema_);
    etl::MaterializeOptions mo;
    mo.rows_per_file = 500;
    mo.writer.rows_per_stripe = 250;
    etl::PartitionMaterializer mat(dev_, wh_, "labeled", mo);
    mat.materialize(table, 0);

    auto pop = warehouse::featurePopularity(schema_, 1.0, 5);
    dpp::SessionSpec spec;
    spec.table = params().name;
    spec.partitions = {0};
    spec.projection =
        warehouse::chooseProjection(schema_, pop, 6, 4, 5);
    spec.setTransforms(transforms::makeModelGraph(
        schema_, spec.projection, transforms::ModelGraphParams{}));
    spec.batch_size = 125;
    spec.rows_per_split = 250;

    dpp::SessionOptions opts;
    opts.workers = 3;
    dpp::InProcessSession session(wh_, spec, opts);
    auto result = session.run(nullptr, /*fail_after_splits=*/2);
    EXPECT_EQ(result.worker_failures, 1u);
    // Bounded loss (dead buffer) and bounded duplication (requeued
    // split); the session still completes every split.
    EXPECT_GE(result.rows_delivered, 2000u - 16 * 125);
    EXPECT_LE(result.rows_delivered, 2000u + 250);
}

} // namespace
} // namespace dsi
