/**
 * @file
 * Whole-control-plane crash/recovery suite.
 *
 * Kills the Master (a halted session) and the whole FleetScheduler
 * mid-epoch — under concurrent worker crashes and checkpoint-write
 * faults — then rebuilds the control plane from the durable journal
 * and asserts the contracts recovery must keep:
 *
 *  - exactly-once delivery across incarnations (the restored
 *    DeliveryLedger suppresses replays of batches trainers already
 *    received, and nothing is lost),
 *  - no attempt double-charging (a split's failure budget survives),
 *  - re-granted splits resume past their delivered-stripe watermark
 *    instead of re-extracting finished stripes,
 *  - trace lineage stays complete on the recovered incarnation.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/trace_query.h"
#include "dpp/session.h"
#include "sched/dpp_fleet.h"
#include "test_fixtures.h"

namespace dsi::dpp {
namespace {

warehouse::SchemaParams
recoveryParams()
{
    warehouse::SchemaParams p;
    p.name = "recovery";
    p.float_features = 12;
    p.sparse_features = 6;
    p.avg_length = 5;
    p.coverage_u = 0.5;
    p.seed = 77;
    return p;
}

/** Multi-stripe splits so stripe resume has room to matter: 4 stripes
 * of 256 rows per 1024-row split, two 128-row batches per stripe. */
SessionSpec
recoverySpec(const testing::MiniWarehouse &mw,
             std::vector<uint32_t> partitions = {0, 1})
{
    SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = std::move(partitions);
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 6, 3, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 128;
    spec.rows_per_split = 1024;
    return spec;
}

/** Batch deliveries keyed by replay-stable identity, unioned across
 * control-plane incarnations. */
struct UnionLog
{
    std::map<std::pair<uint64_t, RowId>, uint64_t> count;
    std::map<std::pair<uint64_t, RowId>, uint64_t> rows_of;
    uint64_t batches = 0;

    void add(const TensorBatch &t)
    {
        ++count[{t.split_id, t.first_row}];
        rows_of[{t.split_id, t.first_row}] = t.data.rows;
        ++batches;
    }

    uint64_t uniqueRows() const
    {
        uint64_t rows = 0;
        for (const auto &[key, r] : rows_of)
            rows += r;
        return rows;
    }

    /** Strict: every key delivered exactly once across the union. */
    void expectExactlyOnce(uint64_t expected_rows) const
    {
        for (const auto &[key, n] : count)
            EXPECT_EQ(n, 1u)
                << "batch (split " << key.first << ", row "
                << key.second << ") delivered " << n << " times";
        EXPECT_EQ(uniqueRows(), expected_rows);
    }

    /** Weak (stale-checkpoint tolerant): nothing lost; at-least-once
     * per key, with the exact unique-row total. */
    void expectNothingLost(uint64_t expected_rows) const
    {
        for (const auto &[key, n] : count)
            EXPECT_GE(n, 1u);
        EXPECT_EQ(uniqueRows(), expected_rows);
    }
};

class RecoveryTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kTotalRows = 2 * 2048;

    static dwrf::WriterOptions stripeOptions()
    {
        dwrf::WriterOptions wo;
        wo.rows_per_stripe = 256;
        return wo;
    }

    RecoveryTest()
        : mw_(testing::makeMiniWarehouse(recoveryParams(), 2, 2048,
                                         1024, stripeOptions()))
    {
        FaultInjector::instance().reset();
        FaultInjector::instance().seed(0x52EC0E5ULL);
    }

    ~RecoveryTest() override { FaultInjector::instance().reset(); }

    RecoveryOptions recovery(bool recover) const
    {
        RecoveryOptions r;
        r.cluster = mw_.cluster.get();
        r.journal_base = "dpp/journal";
        // Strict cadence: the ledger is durable per delivered batch,
        // so exactly-once holds across any crash point.
        r.policy.every_n_deliveries = 1;
        r.recover = recover;
        return r;
    }

    testing::MiniWarehouse mw_;
};

TEST_F(RecoveryTest, MasterDeathMidEpochResumesExactlyOnce)
{
    SessionOptions so;
    so.workers = 1;
    so.clients = 1;
    so.recovery = recovery(false);

    UnionLog log;
    uint64_t first_run_batches = 0;
    {
        InProcessSession session(*mw_.warehouse, recoverySpec(mw_),
                                 so);
        // Kill the control plane after 6 delivered batches (3 full
        // stripes) — mid-split, mid-epoch.
        session.run([&](ClientId, const TensorBatch &t) {
            log.add(t);
            if (++first_run_batches == 6)
                session.requestHalt();
        });
        EXPECT_TRUE(session.halted());
        EXPECT_FALSE(session.master().progress().done());
    }

    ASSERT_EQ(first_run_batches, 6u);

    SessionOptions so2 = so;
    so2.recovery = recovery(true);
    InProcessSession successor(*mw_.warehouse, recoverySpec(mw_),
                               so2);
    EXPECT_EQ(successor.master().epoch(), 1u);
    auto result = successor.run(
        [&](ClientId, const TensorBatch &t) { log.add(t); });

    EXPECT_TRUE(successor.master().progress().done());
    EXPECT_EQ(result.splits_failed, 0u);
    log.expectExactlyOnce(kTotalRows);

    auto metrics = successor.collectMetrics();
    EXPECT_GE(metrics.counter("master.checkpoint.restored"), 1.0);
    // The in-flight split of the dead incarnation had fully-delivered
    // stripes: its re-grant must resume past them, on both sides.
    EXPECT_GE(metrics.counter("master.splits_resumed"), 1.0);
    EXPECT_GE(metrics.counter("worker.splits_resumed"), 1.0);
}

TEST_F(RecoveryTest, RecoverOnEmptyJournalIsCleanColdStart)
{
    SessionOptions so;
    so.workers = 2;
    so.clients = 1;
    so.recovery = recovery(true); // nothing to recover from

    InProcessSession session(*mw_.warehouse, recoverySpec(mw_), so);
    EXPECT_EQ(session.master().epoch(), 0u);
    UnionLog log;
    auto result = session.run(
        [&](ClientId, const TensorBatch &t) { log.add(t); });
    EXPECT_EQ(result.splits_failed, 0u);
    log.expectExactlyOnce(kTotalRows);
}

TEST_F(RecoveryTest, MasterDeathUnderWorkerCrashAndCheckpointFaults)
{
    SessionOptions so;
    so.workers = 2;
    so.clients = 2;
    so.lease_timeout = 0.05;
    so.trace.enabled = true;
    so.recovery = recovery(false);

    // Concurrent chaos on both planes: a worker dies mid-split and a
    // slice of checkpoint publishes is corrupted, so recovery may have
    // to fall back past torn records (at-least-once is the contract
    // under stale checkpoints; nothing may be lost).
    ScopedFault crash(faults::kWorkerCrash,
                      FaultSpec{.trigger_hit = 5});
    ScopedFault corrupt(faults::kCheckpointWriteCorrupt,
                        FaultSpec{.probability = 0.25});

    UnionLog log;
    uint64_t first_run_batches = 0;
    {
        InProcessSession session(*mw_.warehouse, recoverySpec(mw_),
                                 so);
        session.run([&](ClientId, const TensorBatch &t) {
            log.add(t);
            if (++first_run_batches == 10)
                session.requestHalt();
        });
        EXPECT_TRUE(session.halted());
        EXPECT_GE(session.collectMetrics().counter(
                      "master.checkpoint.written"),
                  1.0);
    }

    SessionOptions so2 = so;
    so2.recovery = recovery(true);
    // Recovery runs in the constructor, before run() scopes the trace
    // log to the run — collect its master.recover span separately.
    trace::TraceLog::instance().clear();
    trace::TraceLog::instance().enable();
    InProcessSession successor(*mw_.warehouse, recoverySpec(mw_),
                               so2);
    trace::TraceQuery recovered(trace::TraceLog::instance().snapshot());
    EXPECT_GE(recovered.count(trace::spans::kMasterRecover), 1u);

    auto result = successor.run(
        [&](ClientId, const TensorBatch &t) { log.add(t); });

    EXPECT_TRUE(successor.master().progress().done());
    EXPECT_EQ(result.splits_failed, 0u);
    log.expectNothingLost(kTotalRows);

    // Lineage on the recovered incarnation: every delivered batch
    // traces back to a grant with real extract reads under it.
    trace::TraceQuery q(successor.traceEvents());
    EXPECT_GE(q.lineageCompleteFraction(), 0.99);
}

TEST_F(RecoveryTest, AttemptCountsAreNotDoubleCharged)
{
    auto spec = recoverySpec(mw_);

    Master first(*mw_.warehouse, spec);
    first.setMaxSplitAttempts(2);
    first.enableJournal(*mw_.cluster, "dpp/attempts",
                        CheckpointPolicy{});
    WorkerId w = first.registerWorker();
    auto grant = first.acquireSplit(w, {});
    ASSERT_EQ(grant.status, GrantStatus::Granted);
    uint64_t split = grant.split->id;
    first.failSplit(w, split); // attempt 1 of 2 — requeued
    first.checkpointNow();

    Master successor(*mw_.warehouse, spec);
    successor.setMaxSplitAttempts(2);
    successor.enableJournal(*mw_.cluster, "dpp/attempts",
                            CheckpointPolicy{});
    ASSERT_TRUE(successor.recoverFromJournal());
    EXPECT_EQ(successor.epoch(), 1u);
    EXPECT_EQ(successor.progress().failed_splits, 0u);

    // The restored Master remembers the failed attempt: one more
    // failure exhausts the budget. A Master that double-charged (or
    // forgot) attempts would need zero (or two) further failures.
    WorkerId w2 = successor.registerWorker();
    for (;;) {
        auto g = successor.acquireSplit(w2, {});
        ASSERT_EQ(g.status, GrantStatus::Granted);
        if (g.split->id == split)
            break;
        // Hold non-target grants in flight so the queue advances.
    }
    successor.failSplit(w2, split);
    EXPECT_EQ(successor.progress().failed_splits, 1u);
}

TEST_F(RecoveryTest, FleetSchedulerDeathRebuildsEveryTenant)
{
    auto addTenants = [&](sched::FleetScheduler &fleet) {
        sched::TenantOptions rc;
        rc.name = "rc";
        rc.job_class = sched::JobClass::RC;
        sched::TenantOptions explore;
        explore.name = "explore";
        explore.job_class = sched::JobClass::Explore;
        // Re-admission order fixes tenant ids, which name the
        // journals — the successor must mirror it.
        fleet.addTenant(recoverySpec(mw_, {0}), rc);
        fleet.addTenant(recoverySpec(mw_, {1}), explore);
    };

    sched::FleetOptions fo;
    fo.initial_workers = 2;
    fo.lease_timeout = 0.05;
    fo.recovery = recovery(false);
    fo.recovery.journal_base = "dpp/fleet";

    std::map<TenantId, UnionLog> logs;
    uint64_t delivered = 0;
    {
        // A worker crash runs concurrently with the fleet's death.
        ScopedFault crash(faults::kWorkerCrash,
                          FaultSpec{.trigger_hit = 4});
        sched::FleetScheduler fleet(*mw_.warehouse, fo);
        addTenants(fleet);
        // Drive the fleet mid-epoch, then destroy it with tenants
        // unfinished — buffered tensors die with the pool, exactly as
        // a control-plane crash loses them.
        for (int ticks = 0; ticks < 10000 && delivered < 8; ++ticks)
            fleet.tick([&](TenantId tenant, const TensorBatch &t) {
                logs[tenant].add(t);
                ++delivered;
            });
        ASSERT_GE(delivered, 8u);
        EXPECT_FALSE(fleet.finished());
    }

    sched::FleetOptions fo2 = fo;
    fo2.recovery.recover = true;
    sched::FleetScheduler successor(*mw_.warehouse, fo2);
    addTenants(successor);
    auto result = successor.run(
        [&](TenantId tenant, const TensorBatch &t) {
            logs[tenant].add(t);
        });

    ASSERT_EQ(logs.size(), 2u);
    for (auto &[tenant, log] : logs)
        log.expectExactlyOnce(2048); // one partition per tenant
    for (const auto &[tenant, stats] : result.tenants) {
        EXPECT_TRUE(stats.done);
        EXPECT_EQ(stats.splits_failed, 0u);
    }

    auto metrics = successor.collectMetrics();
    // Every tenant Master restored from its own journal.
    EXPECT_GE(metrics.counter("master.checkpoint.restored"), 2.0);
}

} // namespace
} // namespace dsi::dpp
