/**
 * @file
 * Property tests for the DWRF format over generated, realistic data:
 * projection/coalescing equivalence, accounting invariants, and
 * write-option sweeps.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "dwrf/reader.h"
#include "dwrf/writer.h"
#include "warehouse/datagen.h"

namespace dsi::dwrf {
namespace {

using warehouse::SchemaParams;
using warehouse::TableSchema;

struct Generated
{
    TableSchema schema;
    Buffer file;
    std::vector<FeatureId> projection;
};

Generated
generate(uint64_t seed, uint32_t rows_per_stripe, Codec codec,
         bool encrypt)
{
    SchemaParams p;
    p.float_features = 24;
    p.sparse_features = 16;
    p.coverage_u = 0.4;
    p.avg_length = 7;
    p.seed = seed;
    Generated g;
    g.schema = warehouse::makeSchema(p);
    warehouse::RowGenerator gen(g.schema, seed ^ 0xabc);

    WriterOptions wo;
    wo.rows_per_stripe = rows_per_stripe;
    wo.codec = codec;
    wo.encrypt = encrypt;
    FileWriter writer(wo);
    writer.appendRows(gen.batch(3000));
    g.file = writer.finish();

    auto pop = warehouse::featurePopularity(g.schema, 1.0, seed);
    g.projection =
        warehouse::chooseProjection(g.schema, pop, 8, 6, seed ^ 0x55);
    return g;
}

void
expectBatchesEqual(const RowBatch &a, const RowBatch &b)
{
    ASSERT_EQ(a.rows, b.rows);
    ASSERT_EQ(a.labels, b.labels);
    ASSERT_EQ(a.dense.size(), b.dense.size());
    for (size_t i = 0; i < a.dense.size(); ++i) {
        EXPECT_EQ(a.dense[i].id, b.dense[i].id);
        EXPECT_EQ(a.dense[i].present, b.dense[i].present);
        EXPECT_EQ(a.dense[i].values, b.dense[i].values);
    }
    ASSERT_EQ(a.sparse.size(), b.sparse.size());
    for (size_t i = 0; i < a.sparse.size(); ++i) {
        EXPECT_EQ(a.sparse[i].id, b.sparse[i].id);
        EXPECT_EQ(a.sparse[i].offsets, b.sparse[i].offsets);
        EXPECT_EQ(a.sparse[i].values, b.sparse[i].values);
        EXPECT_EQ(a.sparse[i].scores, b.sparse[i].scores);
    }
}

using Param = std::tuple<uint64_t, uint32_t, Codec, bool>;

class DwrfProperty : public ::testing::TestWithParam<Param>
{
  protected:
    Generated
    make() const
    {
        auto [seed, rps, codec, encrypt] = GetParam();
        return generate(seed, rps, codec, encrypt);
    }
};

TEST_P(DwrfProperty, CoalescedEqualsUncoalesced)
{
    auto g = make();
    ReadOptions ro;
    ro.projection = g.projection;
    MemorySource a_src(g.file);
    FileReader a(a_src, ro);
    ro.coalesce = true;
    MemorySource b_src(g.file);
    FileReader b(b_src, ro);
    ASSERT_TRUE(a.valid() && b.valid());
    ASSERT_EQ(a.stripeCount(), b.stripeCount());
    for (size_t s = 0; s < a.stripeCount(); ++s) {
        auto ba = a.readStripe(s);
        auto bb = b.readStripe(s);
        expectBatchesEqual(ba, bb);
    }
    // Coalescing never issues more IOs and never reads fewer bytes.
    EXPECT_LE(b.stats().ios, a.stats().ios);
    EXPECT_GE(b.stats().bytes_read, a.stats().bytes_read);
}

TEST_P(DwrfProperty, ProjectionMatchesFilteredFullRead)
{
    auto g = make();
    MemorySource full_src(g.file);
    FileReader full(full_src, ReadOptions{});
    ReadOptions ro;
    ro.projection = g.projection;
    MemorySource proj_src(g.file);
    FileReader proj(proj_src, ro);
    ASSERT_TRUE(full.valid() && proj.valid());

    std::set<FeatureId> keep(g.projection.begin(),
                             g.projection.end());
    for (size_t s = 0; s < full.stripeCount(); ++s) {
        auto f = full.readStripe(s);
        auto p = proj.readStripe(s);
        // Filter the full batch down to the projection.
        RowBatch filtered;
        filtered.rows = f.rows;
        filtered.labels = f.labels;
        for (auto &c : f.dense)
            if (keep.count(c.id))
                filtered.dense.push_back(std::move(c));
        for (auto &c : f.sparse)
            if (keep.count(c.id))
                filtered.sparse.push_back(std::move(c));
        expectBatchesEqual(filtered, p);
    }
}

TEST_P(DwrfProperty, AccountingInvariants)
{
    auto g = make();
    ReadOptions ro;
    ro.projection = g.projection;
    ro.coalesce = true;
    MemorySource src(g.file);
    FileReader reader(src, ro);
    ASSERT_TRUE(reader.valid());
    for (size_t s = 0; s < reader.stripeCount(); ++s)
        reader.readStripe(s);
    const auto &st = reader.stats();
    EXPECT_GE(st.bytes_read, st.bytes_needed);
    EXPECT_EQ(st.overRead(), st.bytes_read - st.bytes_needed);
    EXPECT_GE(st.bytes_decompressed, st.bytes_needed / 4);
    EXPECT_GT(st.streams_decoded, 0u);
    auto [seed, rps, codec, encrypt] = GetParam();
    if (encrypt)
        EXPECT_EQ(st.bytes_decrypted, st.bytes_needed);
    else
        EXPECT_EQ(st.bytes_decrypted, 0u);
}

TEST_P(DwrfProperty, FooterConsistent)
{
    auto g = make();
    MemorySource src(g.file);
    FileReader reader(src, ReadOptions{});
    ASSERT_TRUE(reader.valid());
    const auto &footer = reader.footer();
    EXPECT_EQ(footer.total_rows, 3000u);
    uint64_t rows = 0;
    Bytes prev_end = 0;
    for (const auto &stripe : footer.stripes) {
        EXPECT_EQ(stripe.first_row, rows);
        rows += stripe.rows;
        EXPECT_EQ(stripe.offset, prev_end);
        prev_end = stripe.offset + stripe.length;
        Bytes stream_end = stripe.offset;
        for (const auto &s : stripe.streams) {
            EXPECT_EQ(s.offset, stream_end); // streams are contiguous
            stream_end += s.length;
        }
        EXPECT_EQ(stream_end, stripe.offset + stripe.length);
    }
    EXPECT_EQ(rows, footer.total_rows);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DwrfProperty,
    ::testing::Values(Param{1, 512, Codec::Lz, false},
                      Param{2, 512, Codec::Lz, true},
                      Param{3, 1024, Codec::None, false},
                      Param{4, 3000, Codec::Lz, false},
                      Param{5, 700, Codec::Lz, true},
                      Param{6, 128, Codec::None, true}));

} // namespace
} // namespace dsi::dwrf
