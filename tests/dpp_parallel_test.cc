/**
 * @file
 * Tests for the parallel DPP worker data plane: the extract/transform
 * thread pipeline, tensor-buffer backpressure under concurrent
 * producers, drain/shutdown quiesce, concurrent popTensor() clients,
 * parallel sessions (including worker-failure injection), and the
 * StreamWorker transform fan-out. This suite is the tier-1 TSan
 * target (-DDSI_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dpp/session.h"
#include "dpp/stream_session.h"
#include "etl/entries.h"
#include "test_fixtures.h"
#include "warehouse/datagen.h"

namespace dsi::dpp {
namespace {

warehouse::SchemaParams
smallParams()
{
    warehouse::SchemaParams p;
    p.name = "tbl";
    p.float_features = 24;
    p.sparse_features = 12;
    p.avg_length = 8;
    p.coverage_u = 0.5;
    p.seed = 9;
    return p;
}

SessionSpec
makeSpec(const testing::MiniWarehouse &mw,
         std::vector<PartitionId> partitions)
{
    SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = std::move(partitions);
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 6, 77);
    transforms::ModelGraphParams gp;
    gp.derived_features = 3;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = 1024;
    return spec;
}

/** Poll `pred` (from this thread) until true or ~5 s elapse. */
template <typename Pred>
bool
eventually(Pred pred)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::yield();
    }
    return pred();
}

class DppParallelTest : public ::testing::Test
{
  protected:
    static dwrf::WriterOptions
    stripeOptions()
    {
        dwrf::WriterOptions wo;
        wo.rows_per_stripe = 1024;
        return wo;
    }

    DppParallelTest()
        : mw_(testing::makeMiniWarehouse(smallParams(), 2, 4096, 2048,
                                         stripeOptions()))
    {
    }
    testing::MiniWarehouse mw_;
};

/** Drain a worker to completion from this thread; returns tensors. */
std::vector<TensorBatch>
drainWorker(Worker &worker)
{
    std::vector<TensorBatch> tensors;
    while (!worker.drained()) {
        if (auto t = worker.popTensor())
            tensors.push_back(std::move(*t));
        else
            std::this_thread::yield();
    }
    return tensors;
}

TEST_F(DppParallelTest, ParallelWorkerMatchesSynchronousOutput)
{
    auto spec = makeSpec(mw_, {0, 1});

    // Reference: the synchronous pump() path.
    uint64_t sync_rows = 0;
    std::vector<Bytes> sync_sizes;
    {
        Master master(*mw_.warehouse, spec);
        WorkerOptions wo;
        wo.buffer_capacity = 10000;
        Worker worker(master, *mw_.warehouse, wo);
        while (worker.pump()) {
        }
        while (auto t = worker.popTensor()) {
            sync_rows += t->data.rows;
            sync_sizes.push_back(t->bytes);
        }
    }

    // Parallel pipeline, consumed concurrently with production.
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 32;
    wo.num_extract_threads = 2;
    wo.num_transform_threads = 2;
    Worker worker(master, *mw_.warehouse, wo);
    worker.start();
    auto tensors = drainWorker(worker);

    uint64_t rows = 0;
    std::vector<Bytes> sizes;
    for (const auto &t : tensors) {
        rows += t.data.rows;
        sizes.push_back(t.bytes);
    }
    EXPECT_EQ(rows, 8192u);
    EXPECT_EQ(rows, sync_rows);
    // Same mini-batches (transforms are deterministic per batch);
    // only the arrival order may differ.
    std::sort(sizes.begin(), sizes.end());
    std::sort(sync_sizes.begin(), sync_sizes.end());
    EXPECT_EQ(sizes, sync_sizes);
    EXPECT_GT(worker.readStats().bytes_read, 0u);
    EXPECT_GT(worker.transformStats().values_produced, 0u);
    EXPECT_EQ(worker.metrics().counter("worker.splits_completed"),
              8.0);
}

TEST_F(DppParallelTest, ByteCapRespectedUnderConcurrentProducers)
{
    auto spec = makeSpec(mw_, {0, 1});
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 10000;        // count cap out of the way
    wo.buffer_bytes_capacity = 64_KiB; // tight byte cap
    wo.num_extract_threads = 2;
    wo.num_transform_threads = 4; // many concurrent producers
    Worker worker(master, *mw_.warehouse, wo);
    worker.start();

    // Slow consumer: observe the cap while producers race ahead.
    Bytes max_observed = 0;
    Bytes max_tensor = 0;
    uint64_t rows = 0;
    while (!worker.drained()) {
        max_observed = std::max(max_observed, worker.bufferedBytes());
        if (auto t = worker.popTensor()) {
            max_tensor = std::max(max_tensor, t->bytes);
            rows += t->data.rows;
        }
    }
    EXPECT_EQ(rows, 8192u);
    // Producers check the cap under the buffer lock before pushing
    // one tensor, so occupancy never exceeds cap + one tensor.
    EXPECT_GT(max_observed, 0u);
    EXPECT_LE(max_observed, 64_KiB + max_tensor);
}

TEST_F(DppParallelTest, DrainedOnlyAfterAllThreadsQuiesce)
{
    auto spec = makeSpec(mw_, {0});
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 4; // force continual backpressure
    wo.num_extract_threads = 2;
    wo.num_transform_threads = 2;
    Worker worker(master, *mw_.warehouse, wo);
    EXPECT_FALSE(worker.drained()); // not started: nothing produced
    worker.start();

    // While the buffer still fills, the worker must not be drained.
    ASSERT_TRUE(eventually([&] { return worker.buffered() > 0; }));
    EXPECT_FALSE(worker.drained());

    uint64_t rows = 0;
    while (!worker.drained()) {
        if (auto t = worker.popTensor())
            rows += t->data.rows;
        else
            std::this_thread::yield();
    }
    // drained() implies: every split completed, every stripe
    // transformed and served, per-thread stats folded into totals.
    EXPECT_EQ(rows, 4096u);
    EXPECT_TRUE(master.progress().done());
    EXPECT_FALSE(worker.popTensor().has_value());
    const auto &m = worker.metrics();
    EXPECT_EQ(m.counter("worker.tensors"),
              m.counter("worker.tensors_served"));
    EXPECT_EQ(m.counter("worker.rows_extracted"), 4096.0);
    EXPECT_GT(worker.transformStats().values_produced, 0u);
}

TEST_F(DppParallelTest, ConcurrentPopTensorStress)
{
    auto spec = makeSpec(mw_, {0, 1});
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 8; // keep producers and consumers contending
    wo.num_extract_threads = 2;
    wo.num_transform_threads = 2;
    Worker worker(master, *mw_.warehouse, wo);
    worker.start();

    // Many trainer threads hammer popTensor() against the producing
    // pipeline.
    constexpr int kConsumers = 4;
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> tensors{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (!worker.drained()) {
                if (auto t = worker.popTensor()) {
                    EXPECT_LE(t->data.rows, 256u);
                    rows += t->data.rows;
                    ++tensors;
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(rows.load(), 8192u);
    EXPECT_EQ(worker.metrics().counter("worker.tensors_served"),
              static_cast<double>(tensors.load()));
}

TEST_F(DppParallelTest, ParallelSessionDeliversEveryRow)
{
    SessionOptions so;
    so.workers = 3;
    so.clients = 2;
    so.worker.num_extract_threads = 2;
    so.worker.num_transform_threads = 2;
    InProcessSession session(*mw_.warehouse, makeSpec(mw_, {0, 1}),
                             so);
    auto result = session.run();
    EXPECT_EQ(result.rows_delivered, 8192u);
    EXPECT_GT(result.tensors_delivered, 0u);
    EXPECT_GT(result.tensor_bytes, 0u);
    EXPECT_EQ(result.worker_failures, 0u);
    EXPECT_GT(result.read_stats.bytes_read, 0u);
    EXPECT_GT(result.transform_stats.values_produced, 0u);
}

TEST_F(DppParallelTest, ParallelSessionSurvivesWorkerFailure)
{
    SessionOptions so;
    so.workers = 3;
    so.clients = 1;
    so.worker.num_extract_threads = 2;
    so.worker.num_transform_threads = 2;
    InProcessSession session(*mw_.warehouse, makeSpec(mw_, {0, 1}),
                             so);
    auto result = session.run(nullptr, /*fail_after_splits=*/2);
    EXPECT_EQ(result.worker_failures, 1u);
    // The victim loses its buffered tensors and queued stripes; its
    // requeued in-flight splits (at most one per extract thread) may
    // be reprocessed, duplicating up to that many splits of rows.
    // Every split still completes (asserted inside run()).
    EXPECT_GT(result.rows_delivered, 0u);
    EXPECT_LE(result.rows_delivered, 8192u + 2ull * 1024ull);
}

TEST_F(DppParallelTest, SingleKnobImpliesBothStages)
{
    // Setting only num_transform_threads still gives the pipeline an
    // extract thread (and vice versa).
    auto spec = makeSpec(mw_, {0});
    Master master(*mw_.warehouse, spec);
    WorkerOptions wo;
    wo.buffer_capacity = 10000;
    wo.num_transform_threads = 2;
    Worker worker(master, *mw_.warehouse, wo);
    ASSERT_TRUE(worker.parallel());
    worker.start();
    uint64_t rows = 0;
    for (auto &t : drainWorker(worker))
        rows += t.data.rows;
    EXPECT_EQ(rows, 4096u);
    EXPECT_EQ(worker.metrics().gauge("worker.extract_threads"), 1.0);
    EXPECT_EQ(worker.metrics().gauge("worker.transform_threads"),
              2.0);
}

TEST(StreamWorkerParallel, TransformFanOutMatchesInline)
{
    // Publish labeled rows to a stream, then preprocess them twice:
    // inline and with a transform thread pool. Same tensors, same
    // order.
    auto schema = warehouse::makeSchema(smallParams());
    warehouse::RowGenerator gen(schema, 123);
    scribe::LogDevice dev;
    auto rows = gen.batch(700);
    for (size_t i = 0; i < rows.size(); ++i) {
        dwrf::Buffer payload;
        payload.push_back(i % 3 == 0 ? 1 : 0); // label byte
        etl::encodeFeatures(rows[i], payload);
        dev.append("labeled", static_cast<SimTime>(i), i, payload);
    }

    StreamSessionSpec spec;
    spec.batch_size = 100;
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    std::vector<FeatureId> projection;
    for (const auto &f : schema.features)
        projection.push_back(f.id);
    spec.setTransforms(
        transforms::makeModelGraph(schema, projection, gp));

    auto run = [&](uint32_t threads) {
        StreamSessionSpec s = spec;
        s.num_transform_threads = threads;
        StreamWorker worker(dev, s);
        EXPECT_EQ(worker.pump(), 700u);
        worker.flush();
        std::vector<std::pair<uint32_t, Bytes>> out;
        while (auto t = worker.popTensor())
            out.emplace_back(t->data.rows, t->bytes);
        return out;
    };

    auto inline_out = run(0);
    auto parallel_out = run(4);
    EXPECT_EQ(inline_out.size(), 7u);
    EXPECT_EQ(inline_out, parallel_out); // order preserved
}

} // namespace
} // namespace dsi::dpp
