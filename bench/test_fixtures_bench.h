/**
 * @file
 * Bench-side fixture: a small generated warehouse. Thin wrapper over
 * warehouse::buildMiniCorpus (src/warehouse/corpus.h) — the same
 * builder the test suite uses, so benchmarks and tests measure
 * identical corpus shapes.
 */

#ifndef DSI_BENCH_TEST_FIXTURES_BENCH_H
#define DSI_BENCH_TEST_FIXTURES_BENCH_H

#include "warehouse/corpus.h"

namespace dsi::benchfix {

using MiniWarehouse = warehouse::MiniCorpus;

inline MiniWarehouse
makeMiniWarehouse(const warehouse::SchemaParams &params,
                  uint32_t partitions, uint64_t rows_per_partition,
                  uint64_t rows_per_file = 2048,
                  dwrf::WriterOptions writer_options = {},
                  storage::StorageOptions storage_options = {})
{
    return warehouse::buildMiniCorpus(params, partitions,
                                      rows_per_partition,
                                      rows_per_file, writer_options,
                                      storage_options);
}

} // namespace dsi::benchfix

#endif // DSI_BENCH_TEST_FIXTURES_BENCH_H
