/**
 * @file
 * Figure 2: normalized training dataset size and online ingestion
 * bandwidth over two years (8 quarters). Paper: > 2x dataset and
 * > 4x bandwidth growth.
 */

#include <cstdio>

#include "common/table_printer.h"
#include "sched/fleet.h"

using namespace dsi;

int
main()
{
    std::printf(
        "=== Figure 2: dataset and ingestion bandwidth growth ===\n");
    TablePrinter table(
        {"Quarter", "Dataset size (norm)", "Ingest bandwidth (norm)"});
    for (uint32_t q = 0; q <= 8; ++q) {
        table.addRow({"Q" + std::to_string(q),
                      TablePrinter::num(sched::datasetGrowthFactor(q),
                                        2),
                      TablePrinter::num(
                          sched::bandwidthGrowthFactor(q), 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n2-year growth: dataset %.2fx (paper: >2x), "
                "bandwidth %.2fx (paper: >4x)\n",
                sched::datasetGrowthFactor(8),
                sched::bandwidthGrowthFactor(8));
    return 0;
}
