/**
 * @file
 * Table VII: data stalls when preprocessing runs on the trainer host
 * (the pre-DPP baseline).
 *
 * Analytic rows come from the on-host preprocessing model (paper:
 * RM1 stalls 56% of GPU cycles at 92% CPU and 54% memBW). A
 * functional probe then drives a real in-process worker pool at
 * increasing sizes to show stalls vanish once preprocessing is
 * disaggregated and right-sized.
 */

#include <cstdio>

#include "common/table_printer.h"
#include "test_fixtures_bench.h"
#include "trainer/trainer.h"

using namespace dsi;

int
main()
{
    std::printf("=== Table VII: on-host preprocessing data stalls "
                "===\n");
    TablePrinter table({"Model", "% time stalled", "% CPU",
                        "% MemBW", "supply/demand kQPS"});
    for (const auto &rm : warehouse::allRms()) {
        auto r = trainer::onHostPreprocessing(
            rm, sim::TrainerHostSpec{}, sim::DatacenterTax{});
        char ratio[48];
        std::snprintf(ratio, sizeof(ratio), "%.1f / %.1f",
                      r.supply_qps / 1e3, r.demand_qps / 1e3);
        table.addRow({rm.name,
                      TablePrinter::num(100 * r.stall_fraction, 0),
                      TablePrinter::num(100 * r.cpu_util, 0),
                      TablePrinter::num(100 * r.membw_util, 0),
                      ratio});
    }
    table.addRow({"paper RM1", "56", "92", "54", "-"});
    std::printf("%s", table.render().c_str());

    // Functional probe: stalls vs disaggregated worker count.
    std::printf("\nfunctional probe (in-process DPP, synthetic "
                "table):\n  workers  stalled-rounds%%\n");
    warehouse::SchemaParams p;
    p.name = "tbl";
    p.float_features = 24;
    p.sparse_features = 12;
    p.avg_length = 8;
    p.seed = 17;
    auto mw = benchfix::makeMiniWarehouse(p, 1, 8192, 2048);
    for (uint32_t workers : {1u, 2u, 4u, 8u}) {
        dpp::SessionSpec spec;
        spec.table = p.name;
        spec.partitions = {0};
        spec.projection = warehouse::chooseProjection(
            mw.schema, mw.popularity, 10, 6, 3);
        spec.setTransforms(transforms::makeModelGraph(
            mw.schema, spec.projection,
            transforms::ModelGraphParams{}));
        spec.batch_size = 128;
        spec.rows_per_split = 1024;
        auto probe = trainer::measureStallRounds(*mw.warehouse, spec,
                                                 workers, 48);
        std::printf("  %-8u %.0f%%\n", workers,
                    100 * probe.stallFraction());
    }
    std::printf("\ntakeaway: trainer-host CPUs cannot feed the GPUs; "
                "disaggregated preprocessing eliminates stalls.\n");
    return 0;
}
