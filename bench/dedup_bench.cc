/**
 * @file
 * RecD-style dedup benchmark: what the list-dictionary encoding and
 * the batch-dedup transform pass actually buy on a Zipfian duplicated
 * corpus (the paper's Table V observation that most feature lists are
 * repeats of a small hot pool).
 *
 * Emits schema-versioned BENCH_dedup.json (src/common/bench_report.h)
 * comparing dedup-on vs dedup-off along the three layers:
 *
 *  - storage: stored bytes plain vs list-dictionary DWRF, and the
 *    savings ratio (acceptance bar: >= 1.5x, enforced by
 *    tests/bench_schema_test.cc against the checked-in artifact);
 *  - decode: effective MB/s reading the whole corpus back through
 *    TectonicSource + FileReader (both sides normalized to the plain
 *    corpus's stored bytes, so the rate is logical data served — the
 *    dedup side decodes fewer physical bytes for the same rows);
 *  - transform: rows/s through a compiled row-local model graph, with
 *    and without the plan/gather/transform-once/expand batch-dedup
 *    pass in front.
 *
 * Corpora derive from pinned seeds via the same
 * warehouse::buildDupMiniCorpus the differential tests use. `--quick`
 * shrinks corpora for CI smoke (numbers NOT comparable to full mode);
 * `--validate FILE...` schema-checks existing documents and exits.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_report.h"
#include "dpp/session.h"
#include "transforms/dedup.h"
#include "transforms/graph.h"
#include "warehouse/corpus.h"

using namespace dsi;

namespace {

/** Every corpus below derives from this seed (documented in JSON). */
constexpr uint64_t kSeed = 91;

struct SuiteConfig
{
    bool quick = false;
    uint32_t warmup_trials = 2;
    uint32_t measure_trials = 5;
    uint32_t partitions = 2;
    uint64_t rows_per_partition = 32768;
    uint64_t rows_per_file = 8192;
    uint32_t transform_batch_rows = 1024;
    uint32_t transform_reps = 20;
};

SuiteConfig
makeConfig(bool quick)
{
    SuiteConfig cfg;
    cfg.quick = quick;
    if (quick) {
        cfg.warmup_trials = 1;
        cfg.measure_trials = 2;
        cfg.partitions = 1;
        cfg.rows_per_partition = 4096;
        cfg.rows_per_file = 2048;
        cfg.transform_reps = 3;
    }
    return cfg;
}

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Keeps results observable so timed loops are not optimized away. */
volatile uint64_t g_sink = 0;

/** Warmups, then the fastest of `measure` timed runs of `fn`. */
double
bestTrialSeconds(const SuiteConfig &cfg,
                 const std::function<void()> &fn)
{
    for (uint32_t i = 0; i < cfg.warmup_trials; ++i)
        fn();
    double best = 1e300;
    for (uint32_t i = 0; i < cfg.measure_trials; ++i) {
        double t0 = steadySeconds();
        fn();
        best = std::min(best, steadySeconds() - t0);
    }
    return best;
}

/** The duplicated-corpus shape: long hot lists, heavy repetition. */
warehouse::SchemaParams
corpusParams()
{
    warehouse::SchemaParams p;
    p.name = "dedupbench";
    p.float_features = 12;
    p.sparse_features = 10;
    p.avg_length = 16;
    p.coverage_u = 0.6;
    p.seed = static_cast<uint32_t>(kSeed);
    return p;
}

warehouse::DupParams
corpusDup()
{
    warehouse::DupParams dp;
    dp.pool_size = 384;
    dp.alpha = 1.05;
    dp.seed = kSeed ^ 0xD0D0;
    return dp;
}

warehouse::MiniCorpus
buildCorpus(const SuiteConfig &cfg, bool dedup)
{
    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 2048;
    wo.dedup = dedup;
    return warehouse::buildDupMiniCorpus(
        corpusParams(), corpusDup(), cfg.partitions,
        cfg.rows_per_partition, cfg.rows_per_file, wo);
}

uint64_t
storedBytes(warehouse::MiniCorpus &mc)
{
    uint64_t total = 0;
    for (const auto &p : mc.table().partitions())
        total += p.stored_bytes;
    return total;
}

/** Decode the whole corpus back; returns rows decoded (sanity). */
uint64_t
decodeCorpus(warehouse::MiniCorpus &mc)
{
    uint64_t rows = 0;
    for (const auto &p : mc.table().partitions()) {
        for (const std::string &fname : p.files) {
            storage::TectonicSource source(*mc.cluster, fname);
            dwrf::FileReader reader(source, dwrf::ReadOptions{});
            dwrf::RowBatch batch;
            for (size_t s = 0; s < reader.stripeCount(); ++s) {
                auto status = reader.readStripe(s, batch);
                if (status != dwrf::ReadStatus::Ok) {
                    std::fprintf(stderr,
                                 "dedup_bench: stripe read failed\n");
                    std::exit(1);
                }
                rows += batch.rows;
            }
        }
    }
    g_sink = g_sink + rows;
    return rows;
}

bench::BenchReport
runDedupSuite(const SuiteConfig &cfg)
{
    bench::BenchReport report;
    report.suite = "dedup";
    report.mode = cfg.quick ? "quick" : "full";
    report.seed = kSeed;
    report.warmup_trials = cfg.warmup_trials;
    report.measure_trials = cfg.measure_trials;

    // --- storage: plain vs list-dictionary stored bytes ---
    auto plain = buildCorpus(cfg, false);
    auto dedup = buildCorpus(cfg, true);
    double plain_bytes = static_cast<double>(storedBytes(plain));
    double dedup_bytes = static_cast<double>(storedBytes(dedup));
    report.metrics.push_back(
        {"dedup.storage_bytes_plain", "bytes", plain_bytes});
    report.metrics.push_back(
        {"dedup.storage_bytes_dedup", "bytes", dedup_bytes});
    report.metrics.push_back({"dedup.storage_savings_ratio", "x",
                              plain_bytes / dedup_bytes});

    // --- decode: whole-corpus read-back, normalized to logical
    //     (plain-encoded) bytes so the rates compare like for like ---
    {
        double plain_s =
            bestTrialSeconds(cfg, [&] { decodeCorpus(plain); });
        double dedup_s =
            bestTrialSeconds(cfg, [&] { decodeCorpus(dedup); });
        double plain_mbps = plain_bytes / plain_s / 1e6;
        double dedup_mbps = plain_bytes / dedup_s / 1e6;
        report.metrics.push_back(
            {"dedup.decode_mbps_plain", "MB/s", plain_mbps});
        report.metrics.push_back(
            {"dedup.decode_mbps_dedup", "MB/s", dedup_mbps});
        report.metrics.push_back(
            {"dedup.decode_speedup", "x", dedup_mbps / plain_mbps});
    }

    // --- transform: compiled model graph, with and without the
    //     batch-dedup pass in front (the worker's exact sequence) ---
    {
        auto schema = warehouse::makeSchema(corpusParams());
        warehouse::DupParams dp = corpusDup();
        dp.pool_size = 64; // heavy within-batch duplication
        warehouse::DupRowGenerator gen(schema, dp);
        dwrf::RowBatch base =
            dwrf::batchFromRows(gen.batch(cfg.transform_batch_rows));

        std::vector<FeatureId> projection;
        for (const auto &f : schema.features)
            projection.push_back(f.id);
        // Production-weight graph (Table IV: ~10 derived features,
        // chains of 3-5 ops) — the work batch dedup runs once per
        // unique row instead of once per row.
        transforms::ModelGraphParams gp;
        gp.derived_features = 16;
        transforms::CompiledGraph graph(
            transforms::makeModelGraph(schema, projection, gp));

        double plain_s = bestTrialSeconds(cfg, [&] {
            for (uint32_t r = 0; r < cfg.transform_reps; ++r) {
                dwrf::RowBatch batch = base;
                auto stats = graph.apply(batch);
                g_sink = g_sink + stats.values_produced + batch.rows;
            }
        });
        double dedup_s = bestTrialSeconds(cfg, [&] {
            for (uint32_t r = 0; r < cfg.transform_reps; ++r) {
                dwrf::RowBatch batch = base;
                auto plan = transforms::planBatchDedup(batch);
                std::vector<float> labels = std::move(batch.labels);
                dwrf::RowBatch unique =
                    transforms::gatherRows(batch, plan.unique_rows);
                auto stats = graph.apply(unique);
                batch = transforms::expandBatch(unique, plan, labels);
                g_sink = g_sink + stats.values_produced + batch.rows;
            }
        });
        double rows = static_cast<double>(base.rows) *
                      cfg.transform_reps;
        double plain_rps = rows / plain_s;
        double dedup_rps = rows / dedup_s;
        report.metrics.push_back({"dedup.transform_rows_per_sec_plain",
                                  "rows/s", plain_rps});
        report.metrics.push_back({"dedup.transform_rows_per_sec_dedup",
                                  "rows/s", dedup_rps});
        report.metrics.push_back(
            {"dedup.transform_speedup", "x", dedup_rps / plain_rps});
    }
    return report;
}

// ---------------------------------------------------------------------
// Driver (mirrors bench/perf_suite.cc).

bool
writeReport(const bench::BenchReport &report, const std::string &dir)
{
    std::string text = bench::writeBenchJson(report);
    std::string error;
    if (!bench::validateBenchJson(text, &error)) {
        std::fprintf(stderr,
                     "dedup_bench: emitted report fails its own "
                     "schema: %s\n",
                     error.c_str());
        return false;
    }
    std::string path = dir + "/BENCH_" + report.suite + ".json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "dedup_bench: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << text;
    out.close();
    std::printf("wrote %s (%zu metrics)\n", path.c_str(),
                report.metrics.size());
    for (const auto &m : report.metrics)
        std::printf("  %-42s %14.2f %s\n", m.name.c_str(), m.value,
                    m.unit.c_str());
    return true;
}

int
validateFiles(const std::vector<std::string> &paths)
{
    int rc = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path.c_str());
            rc = 1;
            continue;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        std::string error;
        if (bench::validateBenchJson(buf.str(), &error)) {
            std::printf("%s: OK\n", path.c_str());
        } else {
            std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                         error.c_str());
            rc = 1;
        }
    }
    return rc;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--quick] [--out-dir DIR]\n"
                 "       %s --validate FILE...\n",
                 argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_dir = ".";
    std::vector<std::string> validate;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out-dir" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--validate") {
            for (++i; i < argc; ++i)
                validate.push_back(argv[i]);
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (!validate.empty())
        return validateFiles(validate);
    return writeReport(runDedupSuite(makeConfig(quick)), out_dir) ? 0
                                                                  : 1;
}
