/**
 * @file
 * Why trainer-local caching fails for production DLRM training
 * (Section V-A, "contrary to prior assumptions [55]").
 *
 * Systems like CoorDL/Quiver cache samples at the trainer assuming
 * (a) the dataset fits near-locally and (b) epochs re-read it.
 * Production DLRM jobs read PB-scale partitions ONCE (single epoch),
 * so a local cache gets no intra-job reuse; reuse exists only ACROSS
 * jobs on popular features (Fig. 7), which a shared storage-side
 * cache can capture.
 *
 * The bench replays block-level access traces against an LRU of
 * varying capacity for three workloads: multi-epoch benchmark-style,
 * single-epoch production-style, and cross-job shared access.
 */

#include <cstdio>
#include <list>
#include <unordered_map>

#include "common/rng.h"
#include "common/table_printer.h"

using namespace dsi;

namespace {

/** Simple LRU over block ids. */
class LruCache
{
  public:
    explicit LruCache(size_t capacity) : capacity_(capacity) {}

    bool access(uint64_t block)
    {
        auto it = index_.find(block);
        if (it != index_.end()) {
            order_.splice(order_.begin(), order_, it->second);
            return true;
        }
        if (capacity_ == 0)
            return false;
        if (order_.size() >= capacity_) {
            index_.erase(order_.back());
            order_.pop_back();
        }
        order_.push_front(block);
        index_[block] = order_.begin();
        return false;
    }

  private:
    size_t capacity_;
    std::list<uint64_t> order_;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator>
        index_;
};

constexpr uint64_t kBlocks = 20000;

/** Benchmark workload: E epochs, shuffled each epoch. */
double
multiEpochHitRate(size_t cache_blocks, uint32_t epochs, uint64_t seed)
{
    Rng rng(seed);
    LruCache cache(cache_blocks);
    std::vector<uint64_t> order(kBlocks);
    for (uint64_t b = 0; b < kBlocks; ++b)
        order[b] = b;
    uint64_t hits = 0, total = 0;
    for (uint32_t e = 0; e < epochs; ++e) {
        shuffle(order, rng);
        for (uint64_t b : order) {
            hits += cache.access(b);
            ++total;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(total);
}

/** MinIO/CoorDL-style pinned cache: a fixed subset, no eviction —
 *  the best possible local policy for shuffled epochs. */
double
multiEpochPinnedHitRate(size_t cache_blocks, uint32_t epochs,
                        uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> order(kBlocks);
    for (uint64_t b = 0; b < kBlocks; ++b)
        order[b] = b;
    uint64_t hits = 0, total = 0;
    for (uint32_t e = 0; e < epochs; ++e) {
        shuffle(order, rng);
        for (uint64_t b : order) {
            // Pinned subset: blocks [0, cache_blocks), warm after
            // the first epoch.
            hits += e > 0 && b < cache_blocks;
            ++total;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(total);
}

/** Production workload: one epoch, each block exactly once. */
double
singleEpochHitRate(size_t cache_blocks, uint64_t seed)
{
    Rng rng(seed);
    LruCache cache(cache_blocks);
    std::vector<uint64_t> order(kBlocks);
    for (uint64_t b = 0; b < kBlocks; ++b)
        order[b] = b;
    shuffle(order, rng);
    uint64_t hits = 0;
    for (uint64_t b : order)
        hits += cache.access(b);
    return static_cast<double>(hits) / static_cast<double>(kBlocks);
}

/** Cross-job reuse: jobs share a storage-side cache; each reads its
 *  own Zipf-popular subset once (the Fig. 7 pattern). */
double
sharedCacheHitRate(size_t cache_blocks, uint32_t jobs, uint64_t seed)
{
    Rng rng(seed);
    LruCache cache(cache_blocks);
    ZipfSampler zipf(kBlocks, 0.9);
    uint64_t hits = 0, total = 0;
    for (uint32_t j = 0; j < jobs; ++j) {
        // Each job touches ~35% of blocks, popularity-weighted.
        for (uint64_t k = 0; k < kBlocks * 35 / 100; ++k) {
            hits += cache.access(zipf.sample(rng));
            ++total;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(total);
}

} // namespace

int
main()
{
    std::printf("=== Local-cache assumption ablation (Section V-A) "
                "===\n");
    TablePrinter table({"Cache size (% of data)",
                        "5-epoch LRU", "5-epoch pinned (CoorDL)",
                        "production 1-epoch", "shared cross-job"});
    for (double frac : {0.05, 0.10, 0.25, 0.50}) {
        size_t cap = static_cast<size_t>(kBlocks * frac);
        table.addRow(
            {TablePrinter::num(100 * frac, 0),
             TablePrinter::num(
                 100 * multiEpochHitRate(cap, 5, 1), 1) + "%",
             TablePrinter::num(
                 100 * multiEpochPinnedHitRate(cap, 5, 1), 1) + "%",
             TablePrinter::num(100 * singleEpochHitRate(cap, 2), 1) +
                 "%",
             TablePrinter::num(
                 100 * sharedCacheHitRate(cap, 12, 3), 1) +
                 "%"});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\ntakeaway: even the best local policy (pinning, hit rate "
        "= cache fraction after warmup) needs multi-epoch reuse; "
        "with one-epoch reads a trainer-local cache is "
        "useless at any size (and PB datasets exceed local storage "
        "anyway); reuse only exists across jobs on popular bytes, "
        "where a shared storage-side cache captures it.\n");
    return 0;
}
