/**
 * @file
 * Figure 8: trainer-frontend CPU and memory-bandwidth utilization as
 * data ingestion throughput scales, using the dummy-trainer loading
 * model (network stack + TLS + Thrift + memory management only).
 *
 * Vertical markers: the per-model required GPU throughputs of
 * Table VIII. Paper: at RM1's 16.5 GB/s, loading alone needs ~40% of
 * CPU and ~55% of memory bandwidth, approaching NIC saturation.
 */

#include <cstdio>

#include "common/table_printer.h"
#include "sim/tax.h"
#include "trainer/trainer.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

int
main()
{
    std::printf("=== Figure 8: loading cost at the trainer frontend "
                "===\n");
    sim::TrainerHostSpec host;
    sim::DatacenterTax tax;

    TablePrinter table({"Ingest GB/s", "CPU %", "MemBW %", "NIC %"});
    for (double gbps = 2; gbps <= 22; gbps += 2) {
        auto u = trainer::loadingUtilization(host, tax, gbps * 1e9);
        table.addRow({TablePrinter::num(gbps, 0),
                      TablePrinter::num(100 * u.cpu, 1),
                      TablePrinter::num(100 * u.membw, 1),
                      TablePrinter::num(100 * u.nic, 1)});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nper-model demand markers (Table VIII):\n");
    for (const auto &rm : warehouse::allRms()) {
        auto u = trainer::loadingUtilization(
            host, tax, rm.trainer_node_gbps * 1e9);
        std::printf("  %s @ %.2f GB/s -> cpu %.0f%% membw %.0f%% "
                    "nic %.0f%%\n",
                    rm.name.c_str(), rm.trainer_node_gbps,
                    100 * u.cpu, 100 * u.membw, 100 * u.nic);
    }
    auto off = trainer::loadingUtilization(
        host, sim::taxWithTlsOffload(), 16.5e9);
    std::printf("\nwith TLS NIC offload at 16.5 GB/s: cpu %.0f%% "
                "membw %.0f%% (Section VII opportunity)\n",
                100 * off.cpu, 100 * off.membw);
    return 0;
}
