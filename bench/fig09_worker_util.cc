/**
 * @file
 * Figure 9: CPU, memory(-capacity), and memory-bandwidth utilization
 * of DPP Workers at saturation for each RM, with CPU cycles broken
 * into transformation / extraction shares.
 *
 * Paper: each model strains a different resource — RM1 memBW+CPU,
 * RM2 ingress NIC, RM3 memory capacity (thread pool limited).
 */

#include <cstdio>

#include "common/table_printer.h"
#include "dpp/worker_model.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

int
main()
{
    std::printf("=== Figure 9: DPP worker utilization at saturation "
                "(C-v1) ===\n");
    TablePrinter table({"Model", "CPU %", "xform/extract", "Mem %",
                        "MemBW %", "NIC-in %", "Bottleneck"});
    for (const auto &rm : warehouse::allRms()) {
        auto s = dpp::saturateWorker(rm, sim::computeNodeV1());
        char split[64];
        std::snprintf(split, sizeof(split), "%.0f%%/%.0f%%",
                      100 * s.transform_share, 100 * s.extract_share);
        table.addRow({rm.name, TablePrinter::num(100 * s.cpu_util, 1),
                      split,
                      TablePrinter::num(100 * s.mem_capacity_util, 1),
                      TablePrinter::num(100 * s.membw_util, 1),
                      TablePrinter::num(100 * s.nic_in_util, 1),
                      s.bottleneck});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\npaper: RM1 is memBW+CPU bound (expensive "
                "transforms), RM2 ingress-NIC bound, RM3 memory-"
                "capacity bound (thread pool limited to avoid OOM).\n");

    // LLC-miss attribution of Section VI-C, reproduced as the memBW
    // byte attribution of the worker pipeline for RM2 on C-v2.
    std::printf("\nRM2 on C-v2 memBW byte attribution (paper LLC "
                "misses: 50.4%% transform, 24.9%% extract, 16.4%% rx, "
                "4.7%% tx):\n");
    auto rm = warehouse::rm2();
    double total = rm.membw_bytes_per_sample;
    // TLS decryption amplifies receive-side memory traffic ~3x
    // beyond the DMA+copy, and Thrift framing adds on egress.
    double rx = 4.4 * rm.storage_rx_per_sample;
    double tx = 3.0 * rm.tensor_per_sample;
    double extract = 0.317 * (total - rx - tx);
    double transform = total - rx - tx - extract;
    std::printf("  transform %.1f%%  extract %.1f%%  net-rx %.1f%%  "
                "net-tx %.1f%%\n",
                100 * transform / total, 100 * extract / total,
                100 * rx / total, 100 * tx / total);
    return 0;
}
