/**
 * @file
 * Section VII heterogeneous-storage ablation: per-RM provisioning on
 * HDD-only vs SSD-only vs Fig.7-sized tiering, the SSD IOPS/W and
 * capacity/W ratios, and a live popular-block SSD cache sweep.
 */

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "common/table_printer.h"
#include "dpp/worker_model.h"
#include "storage/provisioning.h"
#include "storage/tectonic.h"
#include "warehouse/model_zoo.h"

using namespace dsi;
using namespace dsi::storage;

int
main()
{
    std::printf("=== Section VII ablation: storage tiering ===\n");

    sim::HddNodeModel hdd;
    sim::SsdNodeModel ssd;
    std::printf("device ratios (SSD vs HDD node): IOPS/W %.0f%% "
                "(paper 326%%), capacity/W %.0f%% (paper 9%%)\n\n",
                100 * ssd.iopsPerWatt() / hdd.iopsPerWatt(),
                100 * ssd.capacityPerWatt() / hdd.capacityPerWatt());

    TablePrinter table({"Model", "HDD MW", "HDD gap", "SSD MW",
                        "Tiered MW", "Best saves"});
    for (const auto &rm : warehouse::allRms()) {
        auto sat = dpp::saturateWorker(rm, sim::computeNodeV1());
        double workers = dpp::workersPerTrainer(rm, sat);
        // Fleet of 32 concurrent trainer nodes per model.
        double fleet_rx = 32 * workers * sat.storage_rx_gbps * 1e9;

        ProvisioningDemand d;
        d.dataset_bytes =
            static_cast<Bytes>(rm.usedPartitionsPb() * 1e15);
        d.replication = 3;
        d.read_throughput_bps = fleet_rx;
        d.avg_io_bytes = 700000; // post-coalescing
        auto h = provisionHdd(d);
        auto s = provisionSsd(d);
        auto t = provisionTiered(d, 0.80, rm.paper_hot_fraction_80);
        // Tiering only helps IOPS-bound deployments; a capacity-bound
        // model (gap <= 1) stays on plain HDD.
        double best = std::min(
            {h.power_watts, s.power_watts, t.power_watts});
        char gap[16];
        std::snprintf(gap, sizeof(gap), "%.1fx", h.gap);
        char saved[16];
        std::snprintf(saved, sizeof(saved), "%.0f%%",
                      100 * (1 - best / h.power_watts));
        table.addRow({rm.name,
                      TablePrinter::num(h.power_watts / 1e6, 2), gap,
                      TablePrinter::num(s.power_watts / 1e6, 2),
                      TablePrinter::num(t.power_watts / 1e6, 2),
                      saved});
    }
    std::printf("%s", table.render().c_str());

    // Live cache sweep: hit rate vs cache size under Zipf reads.
    std::printf("\npopular-block SSD cache (64-block file, Zipf 1.1 "
                "reads):\n  cache-blocks  hit-rate  hdd-io-reduction\n");
    for (uint64_t cache : {4u, 8u, 16u, 32u}) {
        StorageOptions so;
        so.block_size = 1_MiB;
        so.hdd_nodes = 8;
        so.cache_blocks = cache;
        TectonicCluster cluster(so);
        cluster.put("f", dwrf::Buffer(64u * 1_MiB, 1));
        auto src = cluster.open("f");
        Rng rng(7);
        ZipfSampler zipf(64, 1.1);
        dwrf::Buffer out;
        const int reads = 4000;
        for (int i = 0; i < reads; ++i)
            src->read(zipf.sample(rng) * 1_MiB, 4096, out);
        uint64_t hdd_ios = 0;
        for (const auto &n : cluster.nodes())
            hdd_ios += n.ioCount();
        std::printf("  %-13llu %-9.2f %.0f%%\n",
                    (unsigned long long)cache, cluster.cacheHitRate(),
                    100.0 * (1.0 - static_cast<double>(hdd_ios) /
                                       reads));
    }
    return 0;
}
