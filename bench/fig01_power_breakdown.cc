/**
 * @file
 * Figure 1: percent of storage, preprocessing, and training power
 * required to train the three production DLRMs.
 *
 * Power is derived per concurrently-running trainer node:
 *  - training: the 8xV100 trainer node itself,
 *  - preprocessing: Table IX workers-per-trainer x C-v1 node power,
 *  - storage: HDD nodes provisioned as max(capacity share, IOPS) for
 *    the trainer's storage read rate, at a post-coalescing average IO
 *    of ~700 KB (Section VII read coalescing) — capacity is amortized
 *    over the model's concurrent trainer fleet.
 *
 * Paper result: DSI (storage + preprocessing) can exceed 50% of total
 * power, with large per-model diversity.
 */

#include <cstdio>

#include "common/table_printer.h"
#include "dpp/worker_model.h"
#include "sim/power.h"
#include "storage/provisioning.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

namespace {

/** Concurrent trainer nodes per model during its combo window. */
uint32_t
concurrentTrainers(const std::string &model)
{
    if (model == "RM1")
        return 32;
    if (model == "RM2")
        return 16;
    return 24;
}

} // namespace

int
main()
{
    std::printf("=== Figure 1: DSI vs training power breakdown ===\n");
    TablePrinter table({"Model", "Storage %", "Preproc %",
                        "Training %", "DSI > 50%?"});

    sim::TrainerHostSpec trainer;
    auto cv1 = sim::computeNodeV1();

    for (const auto &rm : warehouse::allRms()) {
        auto sat = dpp::saturateWorker(rm, cv1);
        double workers = dpp::workersPerTrainer(rm, sat);

        // Storage nodes for this trainer's read rate + its share of
        // the dataset's capacity nodes.
        storage::ProvisioningDemand demand;
        demand.dataset_bytes =
            static_cast<Bytes>(rm.usedPartitionsPb() * 1e15);
        demand.replication = 3;
        demand.read_throughput_bps =
            workers * sat.storage_rx_gbps * 1e9;
        demand.avg_io_bytes = 700000; // post-coalescing average
        auto plan = storage::provisionHdd(demand);
        double capacity_share =
            plan.nodes_for_capacity / concurrentTrainers(rm.name);
        double storage_nodes =
            std::max(capacity_share, plan.nodes_for_iops);

        sim::PowerBreakdown power;
        power.add("storage", storage_nodes,
                  sim::HddNodeModel{}.node_power_w);
        power.add("preprocessing", workers, cv1.power_w);
        power.add("training", 1.0, trainer.totalPowerW());

        double dsi = power.fraction("storage") +
                     power.fraction("preprocessing");
        table.addRow({rm.name,
                      TablePrinter::num(100 * power.fraction("storage"),
                                        1),
                      TablePrinter::num(
                          100 * power.fraction("preprocessing"), 1),
                      TablePrinter::num(
                          100 * power.fraction("training"), 1),
                      dsi > 0.5 ? "yes" : "no"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\npaper: storage+preprocessing can consume more power "
                "than the GPU trainers themselves (line at 50%%).\n");
    return 0;
}
