/**
 * @file
 * Fleet-scheduler bench: a seeded multi-tenant arrival process over
 * one shared DPP worker pool (Sections IV-B, VI-C).
 *
 * Training jobs arrive by a Poisson process (exponential
 * inter-arrival gaps) with Zipfian job sizes — a few big refresh jobs
 * and a long tail of small exploratory ones — and mixed scheduling
 * classes (RC / combo / explore). The fleet multiplexes them over a
 * fixed shared pool on a deterministic virtual clock; the bench
 * reports per-tenant grant counts, preemptions, ledger-suppressed
 * replays, and grant-latency percentiles, then the fleet-wide tally.
 *
 * Everything is seeded: two runs print identical tables.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "sched/dpp_fleet.h"
#include "warehouse/corpus.h"

using namespace dsi;
using sched::FleetScheduler;
using sched::JobClass;

namespace {

warehouse::SchemaParams
benchParams()
{
    warehouse::SchemaParams p;
    p.name = "fleet_bench";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 91;
    return p;
}

dpp::SessionSpec
jobSpec(const warehouse::MiniCorpus &mw,
        std::vector<uint32_t> partitions, uint64_t rows_per_split)
{
    dpp::SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = std::move(partitions);
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = rows_per_split;
    return spec;
}

} // namespace

int
main()
{
    std::printf("=== Fleet scheduler: shared worker pool under a "
                "multi-tenant arrival process ===\n\n");

    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 512;
    storage::StorageOptions so;
    so.block_size = 4_MiB;
    so.hdd_nodes = 4;
    auto mw = warehouse::buildMiniCorpus(benchParams(), 2, 4096, 2048,
                                         wo, so);

    sched::FleetOptions fo;
    fo.initial_workers = 3;
    FleetScheduler fleet(*mw.warehouse, fo);
    double now = 0.0;
    fleet.setClock([&now] { return now; });

    // 10 mixed-class tenants arrive by a Poisson process (mean gap
    // 4ms of virtual time). Job size is Zipfian over 4 shapes: rank 0
    // (most popular) is the small exploratory probe, the rare high
    // ranks are the big full-table refreshes.
    constexpr int kTenants = 10;
    Rng rng(42);
    ZipfSampler size_dist(4, 1.2);
    struct Shape
    {
        std::vector<uint32_t> partitions;
        uint64_t rows_per_split;
        const char *label;
    };
    const Shape shapes[] = {
        {{0}, 512, "small"},
        {{1}, 1024, "medium"},
        {{0, 1}, 1024, "large"},
        {{0, 1}, 2048, "xl"},
    };

    std::vector<TenantId> ids;
    std::vector<const char *> shape_of;
    std::vector<uint64_t> expected_rows;
    std::vector<double> weights;
    double next_arrival = 0.0;
    int arrived = 0;
    uint64_t ticks = 0;
    while (fleet.tick() || arrived < kTenants) {
        now += 0.0005;
        ++ticks;
        while (arrived < kTenants && now >= next_arrival) {
            // Class mix: 1 in 5 RC (reserved quota), 1 in 5 combo
            // at double weight, the rest best-effort explore.
            sched::TenantOptions to;
            uint64_t cls = rng.nextUint(5);
            if (cls == 0) {
                to.job_class = JobClass::RC;
                to.min_quota = 2;
            } else if (cls == 1) {
                to.job_class = JobClass::Combo;
                to.weight = 2.0;
            }
            const Shape &shape = shapes[size_dist.sample(rng)];
            to.name = std::string(sched::jobClassName(to.job_class)) +
                      std::to_string(arrived);
            TenantId id = fleet.addTenant(
                jobSpec(mw, shape.partitions, shape.rows_per_split),
                to);
            ids.push_back(id);
            shape_of.push_back(shape.label);
            weights.push_back(to.weight);
            expected_rows.push_back(4096 *
                                    shape.partitions.size());
            ++arrived;
            next_arrival = now + rng.nextExp(1.0 / 0.002);
            if (arrived == kTenants)
                fleet.close();
        }
    }

    TablePrinter table({"Tenant", "Class", "Size", "Weight", "Rows",
                        "Granted", "Shed", "Preempted", "Dups",
                        "Grant p50 ms", "Grant p99 ms"});
    uint64_t total_rows = 0;
    bool exact = true;
    for (size_t i = 0; i < ids.size(); ++i) {
        auto s = fleet.tenantStats(ids[i]);
        total_rows += s.rows_delivered;
        exact = exact && s.rows_delivered == expected_rows[i] &&
                s.done;
        table.addRow(
            {s.name, sched::jobClassName(s.job_class), shape_of[i],
             TablePrinter::num(weights[i], 1),
             std::to_string(s.rows_delivered),
             std::to_string(s.granted), std::to_string(s.shed),
             std::to_string(s.preempted),
             std::to_string(s.duplicates_suppressed),
             TablePrinter::num(1e3 * s.grant_latency_p50, 3),
             TablePrinter::num(1e3 * s.grant_latency_p99, 3)});
    }
    std::printf("%s\n", table.render().c_str());

    const Metrics &m = fleet.metrics();
    std::printf("tenants %d  workers %zu  rows %llu (%s)  "
                "virtual time %.1f ms  ticks %llu\n",
                kTenants, fleet.workerCount(),
                static_cast<unsigned long long>(total_rows),
                exact ? "exactly-once" : "MISMATCH",
                1e3 * now, static_cast<unsigned long long>(ticks));
    std::printf("launched %.0f  replacements %.0f  preemptions %.0f  "
                "lease expirations %.0f\n",
                m.counter("fleet.workers_launched"),
                m.counter("fleet.worker_replacements"),
                m.counter("fleet.preemptions"),
                m.counter("fleet.lease_expirations"));
    std::printf("\npaper: fleet-scoped DPP provisioning shares one "
                "auto-scaled worker pool across jobs, prioritizing "
                "RC over combo and exploratory runs (Section IV-B).\n");
    return exact ? 0 : 1;
}
