/**
 * @file
 * Table VIII: per-trainer-node GPU ingestion throughput for each RM,
 * plus the derived per-node sample rates and the cross-model
 * diversity the paper emphasizes.
 */

#include <algorithm>
#include <cstdio>

#include "common/table_printer.h"
#include "trainer/gpu_model.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

int
main()
{
    std::printf(
        "=== Table VIII: trainer-node ingestion throughput ===\n");
    TablePrinter table({"", "RM1", "RM2", "RM3"});
    auto rms = warehouse::allRms();
    std::vector<std::string> row{"Node throughput (GB/s)"};
    for (const auto &rm : rms)
        row.push_back(TablePrinter::num(rm.trainer_node_gbps, 2));
    table.addRow(row);
    row = {"Samples/s (k, derived)"};
    for (const auto &rm : rms)
        row.push_back(
            TablePrinter::num(rm.trainerSamplesPerSec() / 1e3, 0));
    table.addRow(row);
    row = {"Implied MFLOPs/sample"};
    for (const auto &rm : rms)
        row.push_back(TablePrinter::num(
            trainer::modelFlopsPerSample(rm) / 1e6, 0));
    table.addRow(row);
    row = {"Tensor bytes/sample (KB)"};
    for (const auto &rm : rms)
        row.push_back(TablePrinter::num(
            static_cast<double>(rm.tensor_per_sample) / 1e3, 1));
    table.addRow(row);
    std::printf("%s", table.render().c_str());

    double max_q = 0, min_q = 1e18;
    for (const auto &rm : rms) {
        max_q = std::max(max_q, rm.trainerSamplesPerSec());
        min_q = std::min(min_q, rm.trainerSamplesPerSec());
    }
    std::printf("\nthroughput diversity: %.1fx in samples/s, %.1fx "
                "in GB/s (paper: requirements vary by over 6x across "
                "models); projected to grow 3.5x in two years as "
                "accelerators improve (doubling effective FLOPs "
                "doubles ingest demand).\n",
                max_q / min_q, 16.50 / 4.69);
    return 0;
}
