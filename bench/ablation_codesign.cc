/**
 * @file
 * Section VII co-design ablation: feature flattening, coalesced
 * reads, popularity-ordered stream placement + bigger stripes, and
 * in-memory flatmaps — cumulative, as deployed.
 *
 * Functional study over a real RM1-statistics (3% scale) table in
 * Tectonic. For each configuration it measures extraction wall time,
 * storage IOs/bytes, and HDD device-seconds, then derives:
 *   - DPP throughput    = rows / extract wall time,
 *   - storage throughput = needed bytes / HDD busy-seconds,
 *   - DSI power factor   = provisioned power per unit throughput,
 * normalized to the un-flattened baseline. Paper: 2.94x DPP, 2.41x
 * storage, 2.59x power reduction.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>

#include "common/table_printer.h"
#include "dwrf/reader.h"
#include "dwrf/writer.h"
#include "storage/tectonic.h"
#include "warehouse/datagen.h"
#include "warehouse/model_zoo.h"

using namespace dsi;
using namespace dsi::warehouse;

namespace {

struct Config
{
    const char *name;
    bool flatten;
    bool coalesce;
    bool reorder;       ///< popularity-ordered streams
    uint32_t rows_per_stripe;
    bool row_pivot;     ///< decode via row materialization (no flatmap)
};

struct Outcome
{
    double rows_per_sec = 0;     ///< decode throughput (wall clock)
    double storage_rows_ps = 0;  ///< rows served per HDD-busy-second
    double ios = 0;
    double read_mb = 0;
    double file_mb = 0; ///< stored size (flattening overhead)
};

Outcome
runConfig(const Config &cfg, const TableSchema &schema,
          const std::vector<double> &pop,
          const std::vector<dwrf::Row> &rows,
          const std::vector<FeatureId> &projection)
{
    storage::StorageOptions so;
    so.hdd_nodes = 4;
    storage::TectonicCluster cluster(so);

    dwrf::WriterOptions wo;
    wo.flatten = cfg.flatten;
    wo.rows_per_stripe = cfg.rows_per_stripe;
    if (cfg.reorder) {
        // Popular features first: order by popularity weight.
        std::vector<size_t> order(schema.features.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return pop[a] > pop[b]; });
        for (size_t i : order)
            wo.popularity_order.push_back(schema.features[i].id);
    }
    dwrf::FileWriter writer(wo);
    writer.appendRows(rows);
    {
        auto bytes = writer.finish();
        cluster.put("t/f.dwrf", bytes);
    }

    auto src = cluster.open("t/f.dwrf");
    dwrf::ReadOptions ro;
    ro.projection = projection;
    ro.coalesce = cfg.coalesce;
    dwrf::FileReader reader(*src, ro);
    src->clearTrace();
    cluster.resetAccounting();

    auto t0 = std::chrono::steady_clock::now();
    uint64_t decoded_rows = 0;
    for (size_t s = 0; s < reader.stripeCount(); ++s) {
        auto batch = reader.readStripe(s);
        if (cfg.row_pivot) {
            // The pre-flatmap path: pivot to rows and back, paying
            // the format-conversion memory traffic.
            auto pivoted = dwrf::batchFromRows(batch.toRows());
            decoded_rows += pivoted.rows;
        } else {
            decoded_rows += batch.rows;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();

    double busy = 0;
    for (const auto &n : cluster.nodes())
        busy += n.busySeconds();

    Outcome out;
    out.rows_per_sec = decoded_rows / secs;
    // Storage efficiency: training rows served per device-busy
    // second. Reading fewer (and larger) byte ranges for the same
    // rows means more jobs per disk (the paper's storage-throughput
    // gain).
    out.storage_rows_ps =
        static_cast<double>(decoded_rows) / std::max(1e-9, busy);
    out.ios = static_cast<double>(reader.stats().ios);
    out.read_mb = reader.stats().bytes_read / 1e6;
    out.file_mb = cluster.fileSize("t/f.dwrf") / 1e6;
    return out;
}

} // namespace

int
main()
{
    std::printf("=== Section VII ablation: co-designed optimizations "
                "===\n");
    auto rm = rm1();
    auto schema = makeSchema(rm.scaledSchemaParams(0.03));
    auto pop = featurePopularity(schema, rm.popularity_alpha, 5);
    RowGenerator gen(schema, 21);
    auto rows = gen.batch(6144);
    auto projection = chooseProjection(
        schema, pop, static_cast<uint32_t>(rm.dense_used * 0.03),
        static_cast<uint32_t>(rm.sparse_used * 0.03), 9);

    const Config configs[] = {
        {"map-blob baseline", false, false, false, 2048, true},
        {"+flatten", true, false, false, 2048, true},
        {"+coalesce", true, true, false, 2048, true},
        {"+reorder+stripes", true, true, true, 6144, true},
        {"+flatmap (full)", true, true, true, 6144, false},
    };

    Outcome base;
    TablePrinter table({"Config", "DPP xput", "Storage xput", "IOs",
                        "MB read", "MB stored", "DSI power"});
    for (const auto &cfg : configs) {
        auto out = runConfig(cfg, schema, pop, rows, projection);
        if (std::string(cfg.name) == "map-blob baseline")
            base = out;
        double dpp_speedup = out.rows_per_sec / base.rows_per_sec;
        double storage_speedup =
            out.storage_rows_ps / base.storage_rows_ps;
        // Power per unit throughput, weighted by provisioned DPP vs
        // storage power (~60/40 in the Fig. 1 deployments).
        double power = 0.6 / dpp_speedup + 0.4 / storage_speedup;
        char dpps[32], sts[32], pws[32];
        std::snprintf(dpps, sizeof(dpps), "%.2fx", dpp_speedup);
        std::snprintf(sts, sizeof(sts), "%.2fx", storage_speedup);
        std::snprintf(pws, sizeof(pws), "%.2fx less", 1.0 / power);
        table.addRow({cfg.name, dpps, sts,
                      TablePrinter::num(out.ios, 0),
                      TablePrinter::num(out.read_mb, 1),
                      TablePrinter::num(out.file_mb, 1), pws});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\npaper: flattening + coalescing + write-path "
                "reordering + flatmaps gave 2.94x DPP and 2.41x "
                "storage throughput, a 2.59x DSI power reduction; "
                "flattening cost ~12%% extra storage capacity.\n");
    return 0;
}
