/**
 * @file
 * Table II: features created for RM1's dataset within a 6-month
 * window and their lifecycle status 6 months later.
 *
 * Paper: 14614 created — 10148 beta, 883 experimental, 1650 active,
 * 1933 deprecated. Reproduced by the calibrated lifecycle Markov
 * model (monthly proposal + transition rates).
 */

#include <cstdio>

#include "common/table_printer.h"
#include "warehouse/lifecycle.h"

using namespace dsi;
using namespace dsi::warehouse;

int
main()
{
    std::printf("=== Table II: feature lifecycle census ===\n");
    auto census = simulateCohort(LifecycleRates{}, 6, 6, 20220401);

    TablePrinter table({"", "Beta", "Experimental", "Active",
                        "Deprecated", "Total"});
    table.addRow({"measured", std::to_string(census.beta),
                  std::to_string(census.experimental),
                  std::to_string(census.active),
                  std::to_string(census.deprecated),
                  std::to_string(census.visibleTotal())});
    table.addRow(
        {"paper", "10148", "883", "1650", "1933", "14614"});
    std::printf("%s", table.render().c_str());
    std::printf("\n(reaped within the window: %llu)\n",
                (unsigned long long)census.reaped);
    std::printf("takeaway: hundreds of features are added and "
                "deprecated each month — storage must adapt to a "
                "rapidly-changing feature set.\n");
    return 0;
}
