/**
 * @file
 * Cost of durable control-plane checkpointing, and time-to-recover.
 *
 * Part 1 drives an identical session under four checkpoint policies —
 * off, terminal-state only, periodic, and strict per-delivery — and
 * reports wall time, journal records written, journal bytes, and the
 * overhead relative to checkpointing off. The acceptance intuition:
 * terminal-state checkpointing is near-free, per-delivery (the strict
 * exactly-once-across-crash setting) pays a visible but bounded tax.
 *
 * Part 2 kills a session mid-epoch (requestHalt) and measures the
 * whole-Master recovery path of the successor: journal scan + restore
 * (construction) and the remaining time to finish the epoch, versus a
 * cold session that redoes everything. Everything is seeded.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "dpp/session.h"
#include "test_fixtures_bench.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;

namespace {

warehouse::SchemaParams
benchParams()
{
    warehouse::SchemaParams p;
    p.name = "recbench";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 59;
    return p;
}

dpp::SessionSpec
makeSpec(const benchfix::MiniWarehouse &mw)
{
    dpp::SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 128;
    spec.rows_per_split = 1024;
    return spec;
}

benchfix::MiniWarehouse
makeCorpus()
{
    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 256;
    return benchfix::makeMiniWarehouse(benchParams(), 2, 4096, 2048,
                                       wo);
}

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ModeResult
{
    double wall_s = 0;
    uint64_t batches = 0;
    uint64_t records = 0;
    uint64_t bytes = 0;
};

ModeResult
runMode(bool journal, dpp::CheckpointPolicy policy)
{
    // A fresh warehouse per mode keeps block-cache state independent.
    auto mw = makeCorpus();
    dpp::SessionOptions so;
    so.workers = 2;
    if (journal) {
        so.recovery.cluster = mw.cluster.get();
        so.recovery.journal_base = "bench/journal";
        so.recovery.policy = policy;
    }
    dpp::InProcessSession session(*mw.warehouse, makeSpec(mw), so);

    ModeResult r;
    double start = steadySeconds();
    session.run(
        [&](ClientId, const dpp::TensorBatch &) { ++r.batches; });
    r.wall_s = steadySeconds() - start;

    auto metrics = session.collectMetrics();
    r.records = static_cast<uint64_t>(
        metrics.counter("master.checkpoint.written"));
    r.bytes = static_cast<uint64_t>(
        metrics.counter("master.checkpoint.bytes"));
    return r;
}

std::string
fmt(double v, const char *pattern = "%.3f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), pattern, v);
    return buf;
}

void
benchOverhead()
{
    std::printf("Checkpoint overhead by policy "
                "(same epoch, fresh corpus per mode)\n\n");

    dpp::CheckpointPolicy off;            // unused when journal=false
    dpp::CheckpointPolicy terminal;       // defaults: on_terminal only
    dpp::CheckpointPolicy periodic;
    periodic.interval_s = 0.005;
    dpp::CheckpointPolicy strict;
    strict.every_n_deliveries = 1;

    struct Mode
    {
        const char *name;
        bool journal;
        dpp::CheckpointPolicy policy;
    };
    const Mode modes[] = {
        {"off", false, off},
        {"on_terminal", true, terminal},
        {"periodic 5ms", true, periodic},
        {"per-delivery", true, strict},
    };

    double baseline = 0;
    TablePrinter table({"policy", "wall s", "batches", "records",
                        "journal KiB", "overhead %"});
    for (const auto &mode : modes) {
        auto r = runMode(mode.journal, mode.policy);
        if (!mode.journal)
            baseline = r.wall_s;
        double overhead =
            baseline > 0 ? (r.wall_s / baseline - 1.0) * 100 : 0;
        table.addRow({mode.name, fmt(r.wall_s),
                      std::to_string(r.batches),
                      std::to_string(r.records),
                      fmt(static_cast<double>(r.bytes) / 1024.0,
                          "%.1f"),
                      fmt(overhead, "%+.1f")});
    }
    std::printf("%s\n", table.render().c_str());
}

void
benchTimeToRecover()
{
    std::printf("\nTime to recover a dead Master mid-epoch "
                "(strict per-delivery journal)\n\n");

    auto mw = makeCorpus();
    dpp::SessionOptions so;
    so.workers = 2;
    so.recovery.cluster = mw.cluster.get();
    so.recovery.journal_base = "bench/journal";
    so.recovery.policy.every_n_deliveries = 1;

    uint64_t first_batches = 0;
    double first_wall = 0;
    {
        dpp::InProcessSession session(*mw.warehouse, makeSpec(mw),
                                      so);
        double start = steadySeconds();
        session.run([&](ClientId, const dpp::TensorBatch &t) {
            (void)t;
            // Die two thirds of the way through the epoch.
            if (++first_batches == 42)
                session.requestHalt();
        });
        first_wall = steadySeconds() - start;
    }

    so.recovery.recover = true;
    double t0 = steadySeconds();
    dpp::InProcessSession successor(*mw.warehouse, makeSpec(mw), so);
    double recover_s = steadySeconds() - t0; // scan + restore + enum
    uint64_t resumed_batches = 0;
    double t1 = steadySeconds();
    successor.run([&](ClientId, const dpp::TensorBatch &) {
        ++resumed_batches;
    });
    double resume_s = steadySeconds() - t1;

    auto metrics = successor.collectMetrics();
    TablePrinter table({"phase", "wall s", "batches"});
    table.addRow({"first incarnation (halted)", fmt(first_wall),
                  std::to_string(first_batches)});
    table.addRow({"recover (journal scan + restore)",
                  fmt(recover_s), "-"});
    table.addRow({"resumed epoch remainder", fmt(resume_s),
                  std::to_string(resumed_batches)});
    std::printf("%s\n", table.render().c_str());
    std::printf("\nsplits resumed past delivered stripes: %.0f "
                "(worker-side %.0f), checkpoints restored: %.0f\n",
                metrics.counter("master.splits_resumed"),
                metrics.counter("worker.splits_resumed"),
                metrics.counter("master.checkpoint.restored"));
}

} // namespace

int
main()
{
    benchOverhead();
    benchTimeToRecover();
    return 0;
}
