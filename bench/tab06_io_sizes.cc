/**
 * @file
 * Table VI: distribution of IO sizes issued against storage by an
 * RM1 training job's feature reads.
 *
 * Functional reproduction at 3% feature scale: an RM1-statistics
 * table is written through the real DWRF writer into Tectonic, read
 * back with an 11%-of-features projection and NO coalescing, and the
 * per-stream IO trace is reported. The long-tailed, kilobyte-scale
 * distribution (tiny p5, ~1 KB median, ~100 KB p95) is the paper's
 * HDD-IOPS problem; the coalesced plan is shown for contrast.
 */

#include <cstdio>

#include "common/table_printer.h"
#include "dwrf/reader.h"
#include "dwrf/writer.h"
#include "storage/tectonic.h"
#include "warehouse/datagen.h"
#include "warehouse/model_zoo.h"

using namespace dsi;
using namespace dsi::warehouse;

int
main()
{
    std::printf("=== Table VI: feature-read IO sizes (RM1 job) ===\n");
    auto rm = rm1();
    auto schema = makeSchema(rm.scaledSchemaParams(0.03));
    auto pop = featurePopularity(schema, rm.popularity_alpha, 5);

    storage::StorageOptions so;
    so.hdd_nodes = 4;
    storage::TectonicCluster cluster(so);

    RowGenerator gen(schema, 21);
    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 2048;
    dwrf::FileWriter writer(wo);
    writer.appendRows(gen.batch(4096));
    cluster.put("rm1/f0.dwrf", writer.finish());

    auto projection = chooseProjection(
        schema, pop, static_cast<uint32_t>(rm.dense_used * 0.03),
        static_cast<uint32_t>(rm.sparse_used * 0.03), 9);

    auto run = [&](bool coalesce) {
        auto src = cluster.open("rm1/f0.dwrf");
        dwrf::ReadOptions ro;
        ro.projection = projection;
        ro.coalesce = coalesce;
        dwrf::FileReader reader(*src, ro);
        src->clearTrace(); // drop footer IOs
        for (size_t s = 0; s < reader.stripeCount(); ++s)
            reader.readStripe(s);
        return src->trace().sizeDistribution();
    };

    auto separate = run(false);
    auto coalesced = run(true);

    TablePrinter table({"", "Mean", "Std", "p5", "p25", "p50", "p75",
                        "p95", "# IOs"});
    auto row = [&](const char *name, const PercentileSampler &p) {
        table.addRow({name, formatBytes(p.mean()),
                      formatBytes(p.stddev()),
                      formatBytes(p.percentile(5)),
                      formatBytes(p.percentile(25)),
                      formatBytes(p.percentile(50)),
                      formatBytes(p.percentile(75)),
                      formatBytes(p.percentile(95)),
                      std::to_string(p.count())});
    };
    row("per-stream", separate);
    row("coalesced", coalesced);
    table.addRow({"paper", "23.2K", "117K", "18", "451", "1.24K",
                  "3.92K", "97.7K", "-"});
    std::printf("%s", table.render().c_str());
    std::printf("\ntakeaway: heavy feature filtering over columnar "
                "files makes storage IOs small and seek-bound on "
                "HDDs; coalescing (1.25 MiB gap) trades over-read for "
                "far fewer, larger IOs.\n");
    return 0;
}
