/**
 * @file
 * Table III: compressed sizes of all partitions, each partition, and
 * the partitions used by a representative release-candidate job.
 *
 * The PB-scale numbers come from the partition-count model; the
 * bytes-per-row underlying them is validated functionally by writing
 * a down-scaled partition of each RM's schema through the real DWRF
 * writer and extrapolating rows-per-partition.
 */

#include <cstdio>

#include "common/table_printer.h"
#include "dwrf/writer.h"
#include "warehouse/datagen.h"
#include "warehouse/model_zoo.h"

using namespace dsi;
using namespace dsi::warehouse;

int
main()
{
    std::printf("=== Table III: partition sizes (PB, compressed) ===\n");
    TablePrinter table({"Model", "All partitions", "Each partition",
                        "Used partitions", "(paper all/each/used)"});
    for (const auto &rm : allRms()) {
        char paper[64];
        std::snprintf(paper, sizeof(paper), "%.2f / %.2f / %.2f",
                      rm.each_partition_pb * rm.total_partitions,
                      rm.each_partition_pb,
                      rm.each_partition_pb * rm.used_partitions);
        table.addRow({rm.name,
                      TablePrinter::num(rm.allPartitionsPb(), 2),
                      TablePrinter::num(rm.each_partition_pb, 2),
                      TablePrinter::num(rm.usedPartitionsPb(), 2),
                      paper});
    }
    std::printf("%s", table.render().c_str());

    // Functional validation: measure compressed bytes/row on a
    // 1%-scale schema and extrapolate the implied rows/partition.
    std::printf("\nbytes-per-row validation (1%%-scale schema, real "
                "DWRF files):\n");
    for (const auto &rm : allRms()) {
        auto schema = makeSchema(rm.scaledSchemaParams(0.01));
        RowGenerator gen(schema, 11);
        dwrf::FileWriter writer(dwrf::WriterOptions{});
        const uint32_t rows = 2000;
        writer.appendRows(gen.batch(rows));
        auto bytes = writer.finish();
        // Scale compressed bytes/row back to the full feature count.
        double per_row =
            static_cast<double>(bytes.size()) / rows / 0.01;
        double rows_per_partition =
            rm.each_partition_pb * 1e15 / per_row;
        std::printf("  %s: %.0f KB/row compressed -> %.2fB rows per "
                    "%.2f PB daily partition\n",
                    rm.name.c_str(), per_row / 1e3,
                    rows_per_partition / 1e9, rm.each_partition_pb);
    }
    std::printf("\ntakeaway: used partitions alone are PB-scale — far "
                "beyond trainer-local storage.\n");
    return 0;
}
