/**
 * @file
 * Table XI: the preprocessing-transformation catalog, benchmarked per
 * op with google-benchmark over realistic mini-batches, followed by
 * the Section VI-D cycle split across op classes (paper: ~75%
 * feature generation, ~20% sparse normalization, ~5% dense
 * normalization).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;
using namespace dsi::transforms;

namespace {

/** A realistic 512-row batch with dense id 1..8, sparse 101..108. */
dwrf::RowBatch
makeBatch()
{
    warehouse::SchemaParams p;
    p.float_features = 8;
    p.sparse_features = 8;
    p.coverage_u = 0.6;
    p.avg_length = 20.0;
    p.seed = 77;
    static auto schema = warehouse::makeSchema(p);
    warehouse::RowGenerator gen(schema, 13);
    return dwrf::batchFromRows(gen.batch(512));
}

TransformSpec
specFor(OpKind kind)
{
    TransformSpec s;
    s.kind = kind;
    s.output = 1u << 20;
    switch (kind) {
      case OpKind::Cartesian:
      case OpKind::IdListTransform:
        s.inputs = {9, 10};
        s.u0 = 64;
        break;
      case OpKind::Bucketize:
      case OpKind::Onehot:
        s.inputs = {1};
        s.p1 = 10.0;
        s.u0 = 64;
        break;
      case OpKind::BoxCox:
        s.inputs = {1};
        s.p0 = 0.5;
        s.p1 = 1.0;
        break;
      case OpKind::Logit:
      case OpKind::Clamp:
      case OpKind::GetLocalHour:
        s.inputs = {1};
        s.p1 = 1.0;
        break;
      case OpKind::ComputeScore:
        s.inputs = {9};
        s.p0 = 2.0;
        break;
      case OpKind::Enumerate:
      case OpKind::PositiveModulus:
      case OpKind::MapId:
      case OpKind::SigridHash:
      case OpKind::NGram:
      case OpKind::FirstX:
        s.inputs = {9};
        s.u0 = kind == OpKind::NGram ? 3 : 1u << 16;
        s.u1 = 1u << 20;
        break;
      case OpKind::Sampling:
        s.p0 = 0.5;
        break;
    }
    return s;
}

void
runOp(benchmark::State &state, OpKind kind)
{
    auto base = makeBatch();
    auto op = compileTransform(specFor(kind));
    uint64_t values = 0;
    for (auto _ : state) {
        dwrf::RowBatch batch = base;
        TransformStats stats;
        op->apply(batch, stats);
        values += stats.values_consumed + batch.rows;
        benchmark::DoNotOptimize(batch);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * base.rows);
    state.SetLabel(opClassName(opClassOf(kind)));
    (void)values;
}

} // namespace

#define DSI_OP_BENCH(name)                                             \
    void BM_##name(benchmark::State &state)                            \
    {                                                                  \
        runOp(state, OpKind::name);                                    \
    }                                                                  \
    BENCHMARK(BM_##name)

DSI_OP_BENCH(Cartesian);
DSI_OP_BENCH(Bucketize);
DSI_OP_BENCH(ComputeScore);
DSI_OP_BENCH(Enumerate);
DSI_OP_BENCH(PositiveModulus);
DSI_OP_BENCH(IdListTransform);
DSI_OP_BENCH(BoxCox);
DSI_OP_BENCH(Logit);
DSI_OP_BENCH(MapId);
DSI_OP_BENCH(FirstX);
DSI_OP_BENCH(GetLocalHour);
DSI_OP_BENCH(SigridHash);
DSI_OP_BENCH(NGram);
DSI_OP_BENCH(Onehot);
DSI_OP_BENCH(Clamp);
DSI_OP_BENCH(Sampling);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Section VI-D: cycle split by op class for a full model graph.
    warehouse::SchemaParams p;
    p.float_features = 120;
    p.sparse_features = 60;
    p.avg_length = 15;
    p.seed = 5;
    auto schema = warehouse::makeSchema(p);
    auto pop = warehouse::featurePopularity(schema, 1.0, 7);
    auto proj = warehouse::chooseProjection(schema, pop, 60, 30, 9);
    ModelGraphParams gp;
    gp.derived_features = 30;
    auto graph = makeModelGraph(schema, proj, gp);
    CompiledGraph compiled(graph);

    warehouse::RowGenerator gen(schema, 3);
    TransformStats stats;
    for (int i = 0; i < 16; ++i) {
        auto batch = dwrf::batchFromRows(gen.batch(512));
        stats.merge(compiled.apply(batch));
    }
    std::printf("\n=== Table XI / Section VI-D: transform cycle split "
                "===\n");
    std::printf("feature generation     %.0f%%  (paper ~75%%)\n",
                100 * stats.classShare(OpClass::FeatureGeneration));
    std::printf("sparse normalization   %.0f%%  (paper ~20%%)\n",
                100 * stats.classShare(OpClass::SparseNormalization));
    std::printf("dense normalization    %.0f%%  (paper ~5%%)\n",
                100 * stats.classShare(OpClass::DenseNormalization));
    return 0;
}
