/**
 * @file
 * Self-healing storage plane: MTTR and scrub overhead.
 *
 * Part 1 kills one storage node of a populated cluster and measures
 * mean-time-to-repair — how long the background healer takes to bring
 * the plane back to full replication — across repair-bandwidth
 * budgets, reporting blocks re-replicated, bytes moved, and effective
 * repair rate.
 *
 * Part 2 runs an identical training session with the healer off and
 * then at several scrub budgets, reporting wall time, delivered rows,
 * scrubbed bytes, and the overhead relative to no scrubbing. The
 * acceptance intuition: scrubbing is a background tax that buys rot
 * detection and stays small when its budget is sane relative to the
 * training read rate. Everything is seeded.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "common/table_printer.h"
#include "dpp/session.h"
#include "test_fixtures_bench.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
fmt(double v, const char *pattern = "%.3f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), pattern, v);
    return buf;
}

// --- Part 1: MTTR after a permanent node death ---

void
benchMttr()
{
    std::printf("MTTR after one permanent node death "
                "(6 HDD nodes, 3x replication, 32 MiB logical)\n\n");

    struct Budget
    {
        const char *name;
        double repair_bytes_per_sec;
    };
    const Budget budgets[] = {
        {"unthrottled", 0.0},
        {"256 MiB/s", 256.0 * 1024 * 1024},
        {"64 MiB/s", 64.0 * 1024 * 1024},
    };

    TablePrinter table({"repair budget", "MTTR s", "blocks", "MiB",
                        "effective MiB/s"});
    for (const auto &b : budgets) {
        // Fresh cluster per budget: same seed, same placement.
        storage::StorageOptions so;
        so.block_size = 1_MiB;
        so.replication = 3;
        so.hdd_nodes = 6;
        so.seed = 0x4EA1;
        storage::TectonicCluster cluster(so);
        for (int f = 0; f < 8; ++f)
            cluster.put("bench/f" + std::to_string(f),
                        dwrf::Buffer(4_MiB, 0x5a));

        // Kill the node hosting the most replicas (worst case).
        NodeId victim = 0;
        uint64_t hosted = 0;
        for (const auto &n : cluster.nodes()) {
            if (cluster.nodeBlockCount(n.id()) > hosted) {
                hosted = cluster.nodeBlockCount(n.id());
                victim = n.id();
            }
        }

        storage::HealOptions heal;
        heal.repair_bytes_per_sec = b.repair_bytes_per_sec;
        heal.scrub_bytes_per_sec = 0.0; // isolate repair cost
        heal.idle_wait_s = 0.0005;
        cluster.startHealer(heal);

        double t0 = steadySeconds();
        cluster.dieNode(victim);
        while (cluster.underReplicatedBlocks() > 0 ||
               cluster.repairQueueDepth() > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        double mttr = steadySeconds() - t0;
        cluster.stopHealer();

        double bytes =
            cluster.metrics().counter("storage.repair.bytes");
        double blocks =
            cluster.metrics().counter("storage.repair.completed");
        table.addRow({b.name, fmt(mttr), fmt(blocks, "%.0f"),
                      fmt(bytes / (1024.0 * 1024.0), "%.1f"),
                      fmt(bytes / (1024.0 * 1024.0) / mttr, "%.0f")});
    }
    std::printf("%s\n", table.render().c_str());
}

// --- Part 2: scrub overhead on a live training session ---

warehouse::SchemaParams
benchParams()
{
    warehouse::SchemaParams p;
    p.name = "healbench";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 61;
    return p;
}

dpp::SessionSpec
makeSpec(const benchfix::MiniWarehouse &mw)
{
    dpp::SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 128;
    spec.rows_per_split = 1024;
    return spec;
}

struct ScrubResult
{
    double wall_s = 0;
    uint64_t rows = 0;
    double scrub_bytes = 0;
    double scrub_blocks = 0;
};

ScrubResult
runWithScrub(double scrub_bytes_per_sec, bool healer)
{
    // A fresh warehouse per mode keeps block-cache state independent.
    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 256;
    storage::StorageOptions so;
    so.block_size = 1_MiB;
    so.replication = 3;
    so.hdd_nodes = 6;
    auto mw = benchfix::makeMiniWarehouse(benchParams(), 2, 4096,
                                          2048, wo, so);
    dpp::SessionOptions opts;
    opts.workers = 2;
    if (healer) {
        opts.self_heal.cluster = mw.cluster.get();
        opts.self_heal.heal.scrub_bytes_per_sec = scrub_bytes_per_sec;
        opts.self_heal.heal.idle_wait_s = 0.001;
    }
    dpp::InProcessSession session(*mw.warehouse, makeSpec(mw), opts);

    ScrubResult r;
    double start = steadySeconds();
    auto result = session.run();
    r.wall_s = steadySeconds() - start;
    r.rows = result.rows_delivered;
    const auto &m = mw.cluster->metrics();
    r.scrub_bytes = m.counter("storage.scrub.bytes");
    r.scrub_blocks = m.counter("storage.scrub.blocks");
    return r;
}

void
benchScrubOverhead()
{
    std::printf("\nScrub overhead on a live session "
                "(2 workers, one epoch, healer on for the run)\n\n");

    struct Mode
    {
        const char *name;
        bool healer;
        double budget;
    };
    const Mode modes[] = {
        {"healer off", false, 0.0},
        {"scrub 64 MiB/s", true, 64.0 * 1024 * 1024},
        {"scrub 512 MiB/s", true, 512.0 * 1024 * 1024},
        {"scrub unthrottled", true, 0.0},
    };

    double baseline = 0;
    TablePrinter table({"mode", "wall s", "rows", "scrubbed MiB",
                        "scrub blocks", "overhead %"});
    for (const auto &mode : modes) {
        auto r = runWithScrub(mode.budget, mode.healer);
        if (!mode.healer)
            baseline = r.wall_s;
        double overhead =
            baseline > 0 ? (r.wall_s / baseline - 1.0) * 100 : 0;
        table.addRow(
            {mode.name, fmt(r.wall_s), std::to_string(r.rows),
             fmt(r.scrub_bytes / (1024.0 * 1024.0), "%.1f"),
             fmt(r.scrub_blocks, "%.0f"), fmt(overhead, "%+.1f")});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    benchMttr();
    benchScrubOverhead();
    return 0;
}
