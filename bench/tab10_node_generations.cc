/**
 * @file
 * Table X: the three compute-server generations and the paper's key
 * observation — cores and NIC bandwidth grow much faster than memory
 * bandwidth, so memory bandwidth becomes the dominant DPP bottleneck
 * (demonstrated with RM2 shifting from NIC-bound on C-v1 to
 * memBW-bound on C-v2).
 */

#include <cstdio>

#include "common/table_printer.h"
#include "dpp/worker_model.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

int
main()
{
    std::printf("=== Table X: compute node generations ===\n");
    TablePrinter table({"Node", "# Cores", "NIC (Gbps)", "Memory (GB)",
                        "Mem BW (GB/s)"});
    for (const auto &node : {sim::computeNodeV1(), sim::computeNodeV2(),
                             sim::computeNodeV3()}) {
        table.addRow({node.name, std::to_string(node.cores),
                      TablePrinter::num(node.nic_gbps, 1),
                      TablePrinter::num(node.memory_gb, 0),
                      TablePrinter::num(node.mem_bw_gbps, 0)});
    }
    std::printf("%s", table.render().c_str());

    auto v1 = sim::computeNodeV1();
    auto v3 = sim::computeNodeV3();
    std::printf("\nv1 -> v3 growth: cores %.1fx, NIC %.1fx, memBW "
                "%.1fx — memBW lags.\n",
                static_cast<double>(v3.cores) / v1.cores,
                v3.nic_gbps / v1.nic_gbps,
                v3.mem_bw_gbps / v1.mem_bw_gbps);

    std::printf("\nRM bottleneck by node generation:\n");
    TablePrinter shift({"Model", "C-v1", "C-v2", "C-v3"});
    for (const auto &rm : warehouse::allRms()) {
        std::vector<std::string> row{rm.name};
        for (const auto &node :
             {sim::computeNodeV1(), sim::computeNodeV2(),
              sim::computeNodeV3()}) {
            auto s = dpp::saturateWorker(rm, node);
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%s (%.1fk)",
                          s.bottleneck.c_str(), s.qps / 1e3);
            row.push_back(cell);
        }
        shift.addRow(std::move(row));
    }
    std::printf("%s", shift.render().c_str());
    std::printf("\npaper: RM2 on C-v2 became memory-bandwidth bound "
                "instead of network bound.\n");
    return 0;
}
