/**
 * @file
 * Figure 5: normalized compute demand of all collaborative training
 * jobs over one year, showing the distinct peaks of combo windows.
 *
 * Ten models run back-to-back release iterations with staggered
 * starts; the per-day fleet demand is printed as an ASCII series
 * normalized to the yearly mean.
 */

#include <cstdio>
#include <string>

#include "sched/fleet.h"

using namespace dsi;
using namespace dsi::sched;

int
main()
{
    std::printf("=== Figure 5: fleet compute demand over a year ===\n");
    ReleaseParams params;
    DemandSeries series(0.0, 365.0);
    for (int model = 0; model < 10; ++model) {
        double day = (model % 4) * 9.0;
        uint64_t seed = 500 + model;
        while (day < 365.0) {
            series.addJobs(generateIteration(
                "M" + std::to_string(model), params, day, seed++));
            day += iterationLengthDays(params);
        }
    }

    double mean = series.mean();
    std::printf("day   demand/mean\n");
    for (size_t i = 0; i < series.days().size(); i += 7) {
        double norm = series.demand()[i] / mean;
        int bar = static_cast<int>(norm * 24);
        std::printf("%3.0f   %5.2f %s\n", series.days()[i], norm,
                    std::string(static_cast<size_t>(bar), '#')
                        .c_str());
    }
    std::printf("\nmean=%.1f peak=%.1f burstiness=%.2fx "
                "(paper: distinct peaks at combo windows; capacity "
                "must be provisioned for the peak)\n",
                mean, series.peak(), series.burstiness());
    return 0;
}
