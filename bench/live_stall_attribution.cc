/**
 * @file
 * Table VII-style stall attribution measured from a *live* traced
 * session, not the analytic trainer model: a parallel DPP session
 * runs with tracing on, and the span forest is rolled up into the
 * read / transform / deliver wall-clock split (trace::StallReport).
 *
 * Also reports the tracing overhead: the same session is run with
 * tracing off and the throughput delta printed — the budget is < 2%
 * (the disabled path is one relaxed atomic load per emission point).
 */

#include <chrono>
#include <cstdio>

#include "common/table_printer.h"
#include "common/trace.h"
#include "common/trace_query.h"
#include "dpp/session.h"
#include "test_fixtures_bench.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;

namespace {

warehouse::SchemaParams
stallParams()
{
    warehouse::SchemaParams p;
    p.name = "stalls";
    p.float_features = 48;
    p.sparse_features = 24;
    p.avg_length = 8;
    p.coverage_u = 0.5;
    p.seed = 59;
    return p;
}

dpp::SessionSpec
makeSpec(const benchfix::MiniWarehouse &mw)
{
    dpp::SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 12, 8, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 6;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 512;
    spec.rows_per_split = 4096;
    return spec;
}

struct RunOutcome
{
    double seconds = 0.0;
    uint64_t rows = 0;
    std::vector<trace::TraceEvent> events;
};

RunOutcome
runSession(const benchfix::MiniWarehouse &mw, bool traced)
{
    dpp::SessionOptions so;
    so.workers = 2;
    so.clients = 2;
    so.worker.num_extract_threads = 2;
    so.worker.num_transform_threads = 2;
    so.worker.buffer_capacity = 64;
    so.trace.enabled = traced;
    dpp::InProcessSession session(*mw.warehouse, makeSpec(mw), so);

    auto t0 = std::chrono::steady_clock::now();
    auto result = session.run();
    auto t1 = std::chrono::steady_clock::now();

    RunOutcome out;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.rows = result.rows_delivered;
    out.events = session.traceEvents();
    return out;
}

} // namespace

int
main()
{
    auto mw = benchfix::makeMiniWarehouse(stallParams(), 2,
                                          4 * 8192, 2 * 8192);

    // Warm-up (page in the generated files, settle allocators), then
    // one traced run for attribution and untraced runs for overhead.
    runSession(mw, false);
    RunOutcome traced = runSession(mw, true);
    RunOutcome plain = runSession(mw, false);

    std::printf("== live stall attribution (Table VII rollup) ==\n");
    std::printf("rows delivered: %llu in %.3f s (traced run)\n\n",
                static_cast<unsigned long long>(traced.rows),
                traced.seconds);

    trace::TraceQuery query(traced.events);
    trace::StallReport report = query.stallReport();
    std::printf("%s\n", report.render().c_str());

    std::printf("spans: %zu grants, %zu stripe reads, %zu storage "
                "IOs, %zu deliveries\n\n",
                query.count(trace::spans::kMasterGrant),
                query.count(trace::spans::kReaderStripe),
                query.count(trace::spans::kStorageRead),
                query.count(trace::spans::kClientDeliver));

    double traced_rate = traced.rows / traced.seconds;
    double plain_rate = plain.rows / plain.seconds;
    double overhead_pct =
        100.0 * (plain_rate - traced_rate) / plain_rate;
    TablePrinter overhead({"mode", "rows_per_s", "overhead_pct"});
    overhead.addRow({"untraced", TablePrinter::num(plain_rate, 0),
                     "0.00"});
    overhead.addRow({"traced", TablePrinter::num(traced_rate, 0),
                     TablePrinter::num(overhead_pct, 2)});
    std::printf("%s\n", overhead.render().c_str());
    return 0;
}
