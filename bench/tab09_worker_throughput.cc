/**
 * @file
 * Table IX: DPP Worker saturation throughput on C-v1 nodes — kQPS,
 * compressed storage RX, uncompressed transform RX/TX, and the
 * number of worker nodes required to feed one trainer node.
 *
 * Measured rows come from the calibrated worker saturation model;
 * paper rows are printed alongside.
 */

#include <cstdio>

#include "common/table_printer.h"
#include "dpp/worker_model.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

int
main()
{
    std::printf("=== Table IX: DPP worker throughput (C-v1) ===\n");
    TablePrinter table({"Model", "kQPS", "Storage RX GB/s",
                        "Xform RX GB/s", "Xform TX GB/s",
                        "# Nodes req.", "Bottleneck"});
    for (const auto &rm : warehouse::allRms()) {
        auto s = dpp::saturateWorker(rm, sim::computeNodeV1());
        table.addRow({rm.name, TablePrinter::num(s.qps / 1e3, 3),
                      TablePrinter::num(s.storage_rx_gbps, 2),
                      TablePrinter::num(s.transform_rx_gbps, 2),
                      TablePrinter::num(s.transform_tx_gbps, 2),
                      TablePrinter::num(
                          dpp::workersPerTrainer(rm, s), 2),
                      s.bottleneck});
    }
    table.addRow({"paper RM1", "11.623", "0.80", "1.37", "0.68",
                  "24.16", "membw+cpu"});
    table.addRow({"paper RM2", "7.995", "1.20", "0.96", "0.50",
                  "9.44", "nic-in"});
    table.addRow({"paper RM3", "36.921", "0.80", "1.01", "0.22",
                  "55.22", "mem-capacity"});
    std::printf("%s", table.render().c_str());
    std::printf("\nnetwork amplification of moving extraction to "
                "trainers (raw/tensor bytes): RM1 %.2fx RM2 %.2fx "
                "RM3 %.2fx (paper: 1.18-3.64x)\n",
                117900.0 / 58500, 120100.0 / 62500, 27400.0 / 5960);
    return 0;
}
