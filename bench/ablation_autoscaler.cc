/**
 * @file
 * Right-sizing ablation (Sections III-B1 / VI-C): the DPP auto-scaler
 * vs. static provisioning, on a bursty demand profile.
 *
 * A one-hour RM1 deployment sees trainer demand step 2 -> 8 -> 3 -> 6
 * nodes (combo-window churn). Policies compared by the two costs the
 * paper cares about: data stalls (under-provisioning idles GPUs) and
 * worker-seconds (over-provisioning wastes power — extra workers do
 * not speed up training). A failure-injected run shows the controller
 * also masking worker churn.
 */

#include <algorithm>
#include <cstdio>

#include "common/table_printer.h"
#include "dpp/sim_session.h"

using namespace dsi;
using namespace dsi::dpp;

namespace {

SimSessionConfig
baseConfig()
{
    SimSessionConfig cfg;
    cfg.rm = warehouse::rm1();
    cfg.duration_s = 3600;
    cfg.demand = {{0, 2}, {600, 8}, {1800, 3}, {2700, 6}};
    cfg.scaler.min_workers = 4;
    cfg.scaler.max_workers = 2048;
    cfg.initial_workers = 32;
    cfg.seed = 11;
    return cfg;
}

} // namespace

int
main()
{
    std::printf("=== Right-sizing ablation: auto-scaler vs static "
                "pools (RM1, 1h bursty demand) ===\n");

    TablePrinter table({"Policy", "Stall %", "Avg workers",
                        "Peak workers", "Worker-hours", "Pool util %",
                        "Energy (kWh)"});
    auto node_watts = sim::computeNodeV1().power_w;
    SimSessionResult by_policy[3];
    int row = 0;
    for (auto policy : {ScalingPolicy::StaticUnder,
                        ScalingPolicy::StaticExact,
                        ScalingPolicy::AutoScale}) {
        auto cfg = baseConfig();
        cfg.policy = policy;
        auto r = simulateDeployment(cfg);
        by_policy[row++] = r;
        const char *name =
            policy == ScalingPolicy::AutoScale ? "auto-scale"
            : policy == ScalingPolicy::StaticExact
                ? "static @ peak"
                : "static @ mean";
        table.addRow({name,
                      TablePrinter::num(100 * r.stall_fraction, 1),
                      TablePrinter::num(r.avg_workers, 0),
                      std::to_string(r.peak_workers),
                      TablePrinter::num(r.worker_seconds / 3600, 0),
                      TablePrinter::num(
                          100 * r.avg_pool_utilization, 0),
                      TablePrinter::num(
                          r.energyJ(node_watts) / 3.6e6, 1)});
    }
    std::printf("%s", table.render().c_str());

    // Failure masking: MTBF chosen so several workers die per run.
    auto cfg = baseConfig();
    cfg.worker_mtbf_s = 40000; // pool-level: ~ one failure / few min
    auto r = simulateDeployment(cfg);
    std::printf("\nwith worker failures (stateless restart): %llu "
                "failures, stall %.1f%% — the Master's health monitor "
                "and requeue keep trainers fed.\n",
                (unsigned long long)r.failures,
                100 * r.stall_fraction);

    std::printf("\ntakeaway: static-at-peak burns %.0f%% more energy "
                "than auto-scaling for near-equal stalls; "
                "static-at-mean stalls GPUs %.1fx more during the "
                "combo burst. Right-sizing gets both.\n",
                100 * (by_policy[1].worker_seconds /
                           by_policy[2].worker_seconds -
                       1.0),
                by_policy[0].stall_fraction /
                    std::max(1e-9, by_policy[2].stall_fraction));
    return 0;
}
