/**
 * @file
 * Table IV: dense / sparse / derived feature counts required by a
 * representative release-candidate model version of each RM, plus
 * the transform-graph composition those derived features imply.
 */

#include <cstdio>

#include "common/table_printer.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"
#include "warehouse/model_zoo.h"

using namespace dsi;
using namespace dsi::warehouse;

int
main()
{
    std::printf("=== Table IV: model feature requirements ===\n");
    TablePrinter table({"Model", "# Dense", "# Sparse", "# Derived"});
    for (const auto &rm : allRms()) {
        table.addRow({rm.name, std::to_string(rm.dense_used),
                      std::to_string(rm.sparse_used),
                      std::to_string(rm.derived_features)});
    }
    std::printf("%s", table.render().c_str());

    // Build each model's transform graph (at 10% feature scale to
    // keep this quick) and report its op-class composition.
    std::printf("\nimplied transform graphs (10%% scale):\n");
    for (const auto &rm : allRms()) {
        auto schema = makeSchema(rm.scaledSchemaParams(0.1));
        auto pop = featurePopularity(schema, rm.popularity_alpha, 3);
        auto proj = chooseProjection(schema, pop, rm.dense_used / 10,
                                     rm.sparse_used / 10, 5);
        transforms::ModelGraphParams gp;
        gp.derived_features = std::max(1u, rm.derived_features / 10);
        auto graph = transforms::makeModelGraph(schema, proj, gp);
        std::printf("  %s: %zu ops (%zu generation, %zu sparse-norm, "
                    "%zu dense-norm)\n",
                    rm.name.c_str(), graph.size(),
                    graph.countClass(
                        transforms::OpClass::FeatureGeneration),
                    graph.countClass(
                        transforms::OpClass::SparseNormalization),
                    graph.countClass(
                        transforms::OpClass::DenseNormalization));
    }
    return 0;
}
