/**
 * @file
 * Tail latency of batch delivery under a straggling storage replica,
 * hedging off vs on (The Tail at Scale discipline, Section III-B2).
 *
 * A slow replica is injected as a probabilistic read stall. Without
 * hedging, every stalled read holds the pipeline for the full stall
 * and the p99 inter-batch gap inflates toward the stall latency. With
 * hedged reads, a stalled primary is raced by a backup on another
 * replica after a p99-derived delay, so the tail collapses toward the
 * healthy read time. The bench reports p50/p99 of the gap between
 * consecutive delivered batches for both modes, plus the hedge
 * counters — the acceptance bar is a lower p99 with hedging on.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "common/fault.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "dpp/session.h"
#include "test_fixtures_bench.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;

namespace {

constexpr double kStallSeconds = 0.02;
constexpr double kStallProbability = 0.15;

/** Leading gap samples dropped (session warmup: first split open). */
constexpr uint64_t kWarmupBatches = 4;

warehouse::SchemaParams
benchParams()
{
    warehouse::SchemaParams p;
    p.name = "taillat";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = 53;
    return p;
}

dpp::SessionSpec
makeSpec(const benchfix::MiniWarehouse &mw)
{
    dpp::SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 128;
    spec.rows_per_split = 1024;
    return spec;
}

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ModeResult
{
    uint64_t batches = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double hedges = 0;
    double wins = 0;
};

/**
 * Drive one full session with the straggler armed; sample the gap
 * between consecutive batch deliveries. A fresh warehouse per mode
 * keeps block-cache state and latency samples independent.
 */
ModeResult
runMode(bool hedging)
{
    dwrf::WriterOptions wo;
    wo.rows_per_stripe = 1024;
    auto mw = benchfix::makeMiniWarehouse(benchParams(), 2, 4096,
                                          2048, wo);
    if (hedging) {
        storage::HedgeOptions hedge;
        hedge.enabled = true;
        // The bench's straggler is far more frequent (15% of reads)
        // than a realistic tail, so the p99-derived trigger would
        // learn the stall itself as "normal p99" and never fire. Cap
        // the hedge delay well below the stall — the operator knob
        // for exactly this situation.
        hedge.max_delay_s = 0.002;
        mw.cluster->setHedging(hedge);
    }

    FaultInjector::instance().reset();
    FaultInjector::instance().seed(0x7A11ULL);

    dpp::SessionOptions so;
    so.workers = 1;
    dpp::InProcessSession session(*mw.warehouse, makeSpec(mw), so);
    // Armed after construction so split enumeration is not measured.
    ScopedFault slow(
        faults::kTectonicReadDelay,
        FaultSpec{.probability = kStallProbability,
                  .latency_seconds = kStallSeconds});

    PercentileSampler gaps;
    double last = steadySeconds();
    ModeResult r;
    session.run([&](ClientId, const dpp::TensorBatch &) {
        double now = steadySeconds();
        if (r.batches >= kWarmupBatches)
            gaps.add(now - last);
        last = now;
        ++r.batches;
    });

    r.p50_ms = gaps.percentile(50.0) * 1e3;
    r.p99_ms = gaps.percentile(99.0) * 1e3;
    r.hedges =
        mw.cluster->metrics().counter("tectonic.hedges_issued");
    r.wins = mw.cluster->metrics().counter("tectonic.hedge_wins");
    FaultInjector::instance().reset();
    return r;
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

int
main()
{
    std::printf("Batch delivery latency under a straggling replica "
                "(%.0f%% of reads stall %.0f ms)\n\n",
                kStallProbability * 100, kStallSeconds * 1e3);

    auto off = runMode(false);
    auto on = runMode(true);

    TablePrinter table({"hedging", "batches", "p50 ms", "p99 ms",
                        "hedges", "hedge wins"});
    table.addRow({"off", std::to_string(off.batches),
                  fmt(off.p50_ms), fmt(off.p99_ms),
                  std::to_string(static_cast<uint64_t>(off.hedges)),
                  std::to_string(static_cast<uint64_t>(off.wins))});
    table.addRow({"on", std::to_string(on.batches),
                  fmt(on.p50_ms), fmt(on.p99_ms),
                  std::to_string(static_cast<uint64_t>(on.hedges)),
                  std::to_string(static_cast<uint64_t>(on.wins))});
    std::printf("%s\n", table.render().c_str());

    double speedup = on.p99_ms > 0 ? off.p99_ms / on.p99_ms : 0;
    std::printf("p99 gap: %.3f ms -> %.3f ms (%.2fx) with hedging\n",
                off.p99_ms, on.p99_ms, speedup);
    if (on.p99_ms >= off.p99_ms) {
        std::printf("WARNING: hedging did not improve the p99 gap\n");
        return 1;
    }
    return 0;
}
