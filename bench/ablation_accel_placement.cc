/**
 * @file
 * Section VII preprocessing-acceleration ablation: where should
 * transforms run?
 *
 * Placements compared for each RM:
 *  - disaggregated CPU workers (DPP, the deployed baseline),
 *  - trainer-host CPUs (Table VII: stalls),
 *  - the training GPU itself (paper: SigridHash 11.9x, Bucketize
 *    1.3x over 20 CPU threads on a V100; kernel-launch overhead for
 *    the 3-5 kernels per derived feature; steals training cycles),
 *  - a disaggregated accelerator next to DPP workers (offloads
 *    transform cycles without touching trainers).
 */

#include <cstdio>

#include "common/table_printer.h"
#include "dpp/worker_model.h"
#include "trainer/trainer.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

namespace {

/** Effective GPU speedup of a model's transform mix. */
double
gpuTransformSpeedup()
{
    // Section VI-D cycle split with the paper's measured per-op-class
    // GPU speedups: hash-like sparse ops accelerate 11.9x, bucketize-
    // like dense/generation arithmetic only 1.3x.
    warehouse::TransformCycleSplit split;
    double hash_like = split.sparse_normalization;       // 11.9x
    double arith_like = split.feature_generation +
                        split.dense_normalization;       // 1.3x
    return 1.0 / (hash_like / 11.9 + arith_like / 1.3);
}

} // namespace

int
main()
{
    std::printf("=== Section VII ablation: transform placement ===\n");
    double gpu_speedup = gpuTransformSpeedup();
    std::printf("effective GPU speedup of the transform mix: %.2fx "
                "(SigridHash 11.9x but feature generation only "
                "~1.3x dominates)\n\n",
                gpu_speedup);

    TablePrinter table({"Model", "Placement", "Worker kQPS",
                        "Nodes/trainer", "Train slowdown",
                        "Notes"});
    for (const auto &rm : warehouse::allRms()) {
        auto base = dpp::saturateWorker(rm, sim::computeNodeV1());
        table.addRow({rm.name, "DPP CPU (deployed)",
                      TablePrinter::num(base.qps / 1e3, 1),
                      TablePrinter::num(
                          dpp::workersPerTrainer(rm, base), 1),
                      "none", base.bottleneck});

        auto onhost = trainer::onHostPreprocessing(
            rm, sim::TrainerHostSpec{}, sim::DatacenterTax{});
        char stall[48];
        std::snprintf(stall, sizeof(stall), "%.0f%% stall",
                      100 * onhost.stall_fraction);
        table.addRow({rm.name, "trainer host CPU", "-", "0", stall,
                      "Table VII baseline"});

        // Training GPU: transforms accelerate, but kernel launches
        // (3-5 per derived feature, ~6us each) and contention charge
        // the training stream.
        double launches_per_sample =
            rm.derived_features * 4.0 /
            512.0; // amortized over a 512-row batch
        double launch_cycles =
            launches_per_sample * 6e-6 * 1.38e9; // V100 SM clock
        double gpu_xform_cost =
            rm.transform_cycles_per_sample / gpu_speedup +
            launch_cycles;
        // Fraction of GPU time stolen from training at full demand.
        double v100_throughput_cycles = 8 * 1.38e9 * 80; // 8 GPUs
        double slowdown = rm.trainerSamplesPerSec() * gpu_xform_cost /
                          v100_throughput_cycles;
        dpp::WorkerModelOptions wm;
        wm.transform_cycle_scale = 0.0; // extraction stays on CPU
        // Transform memory traffic moves to the GPU with the kernels
        // (roughly the transform share of worker memBW).
        wm.membw_scale = 0.55;
        auto extract_only = dpp::saturateWorker(rm,
                                                sim::computeNodeV1(),
                                                wm);
        char slow[32];
        std::snprintf(slow, sizeof(slow), "%.0f%% GPU",
                      100 * slowdown);
        table.addRow({rm.name, "training GPU",
                      TablePrinter::num(extract_only.qps / 1e3, 1),
                      TablePrinter::num(dpp::workersPerTrainer(
                                            rm, extract_only),
                                        1),
                      slow, "contends with training"});

        // Disaggregated accelerator: transform cycles shrink by the
        // mix speedup with no trainer impact.
        dpp::WorkerModelOptions accel;
        accel.transform_cycle_scale = 1.0 / gpu_speedup;
        accel.membw_scale = 0.55; // transform traffic on the card
        auto disagg =
            dpp::saturateWorker(rm, sim::computeNodeV1(), accel);
        table.addRow({rm.name, "disagg accelerator",
                      TablePrinter::num(disagg.qps / 1e3, 1),
                      TablePrinter::num(
                          dpp::workersPerTrainer(rm, disagg), 1),
                      "none", disagg.bottleneck});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\ntakeaway: acceleration helps most where transform "
                "cycles bind (RM1); NIC- or capacity-bound models "
                "gain little — placement must be per-model.\n");
    return 0;
}
