/**
 * @file
 * Table V: dataset characteristics per model — float/sparse feature
 * counts, mean sparse coverage U, average list length, and the
 * fraction of features and bytes a representative RC job reads.
 *
 * Feature counts and U/length are schema-level (checked against the
 * synthesized schema); % features and % bytes used come from a
 * popularity-weighted projection of Table IV size over the schema's
 * per-feature byte expectations.
 */

#include <cstdio>
#include <map>

#include "common/table_printer.h"
#include "warehouse/datagen.h"
#include "warehouse/model_zoo.h"

using namespace dsi;
using namespace dsi::warehouse;

int
main()
{
    std::printf("=== Table V: dataset characteristics ===\n");
    TablePrinter table({"Dataset", "# Float", "# Sparse", "U",
                        "Avg len", "% feats used", "% bytes used",
                        "(paper % feats/bytes)"});
    for (const auto &rm : allRms()) {
        auto schema = makeSchema(rm.schemaParams());
        auto pop =
            featurePopularity(schema, rm.popularity_alpha, 99);
        auto proj = chooseProjection(schema, pop, rm.dense_used,
                                     rm.sparse_used, 7);

        std::map<FeatureId, const FeatureSpec *> by_id;
        double total_bytes = 0;
        for (const auto &f : schema.features) {
            by_id.emplace(f.id, &f);
            total_bytes += f.expectedBytesPerRow();
        }
        double used_bytes = 0;
        for (FeatureId id : proj)
            used_bytes += by_id.at(id)->expectedBytesPerRow();

        double pct_feats = 100.0 * static_cast<double>(proj.size()) /
                           static_cast<double>(schema.features.size());
        double pct_bytes = 100.0 * used_bytes / total_bytes;
        char paper[32];
        std::snprintf(paper, sizeof(paper), "%.0f / %.0f",
                      rm.paper_pct_feats_used,
                      rm.paper_pct_bytes_used);
        table.addRow({rm.name,
                      std::to_string(schema.countDense()),
                      std::to_string(schema.countSparse()),
                      TablePrinter::num(schema.sparseCoverage(), 2),
                      TablePrinter::num(schema.sparseAvgLength(), 2),
                      TablePrinter::num(pct_feats, 0),
                      TablePrinter::num(pct_bytes, 0), paper});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\ntakeaway: jobs read ~9-11%% of features but a "
                "larger byte share — favored features have higher "
                "coverage and length.\n");
    return 0;
}
