/**
 * @file
 * The repeatable perf baseline harness (the repo's benchmark book is
 * docs/BENCHMARKS.md; the numbers it explains come from here).
 *
 * Emits schema-versioned BENCH_decode.json and BENCH_dpp.json
 * (src/common/bench_report.h defines the schema):
 *
 *  - decode suite: MB/s per stream encoding, scalar reference vs
 *    bulk kernel, on pinned-seed synthetic corpora (incl. the Zipfian
 *    dictionary corpus — the paper's categorical-id shape);
 *  - dpp suite: per-op transform throughput over a realistic
 *    mini-batch (Table XI), end-to-end batches/sec/core through a
 *    live InProcessSession, and p50/p99 Client::next latency.
 *
 * Every corpus derives from pinned seeds; trials are split into
 * discarded warmups and measured runs (median reported). `--quick`
 * shrinks corpora and trial counts for CI smoke (numbers are NOT
 * comparable to full mode); `--validate FILE...` schema-checks
 * existing documents and exits.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_report.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dpp/session.h"
#include "dwrf/encoding.h"
#include "test_fixtures_bench.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;

namespace {

/** Every corpus below derives from this seed (documented in JSON). */
constexpr uint64_t kSeed = 42;

struct SuiteConfig
{
    bool quick = false;
    uint32_t warmup_trials = 2;
    uint32_t measure_trials = 5;
    size_t decode_values = 1u << 20;  ///< values per decode corpus
    uint32_t transform_reps = 20;     ///< op applies per trial
    uint32_t session_partitions = 2;
    uint64_t session_rows = 8192;
};

SuiteConfig
makeConfig(bool quick)
{
    SuiteConfig cfg;
    cfg.quick = quick;
    if (quick) {
        cfg.warmup_trials = 1;
        cfg.measure_trials = 2;
        cfg.decode_values = 1u << 16;
        cfg.transform_reps = 3;
        cfg.session_partitions = 1;
        cfg.session_rows = 2048;
    }
    return cfg;
}

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Keeps decode results observable so loops are not optimized away. */
volatile uint64_t g_sink = 0;

/**
 * Warmups, then the fastest of `measure` timed runs of `fn`. Minimum
 * (not mean/median) is the right statistic on a shared host: every
 * trial runs identical work, so the fastest run is the one with the
 * least outside interference.
 */
double
bestTrialSeconds(const SuiteConfig &cfg,
                 const std::function<void()> &fn)
{
    for (uint32_t i = 0; i < cfg.warmup_trials; ++i)
        fn();
    double best = 1e300;
    for (uint32_t i = 0; i < cfg.measure_trials; ++i) {
        double t0 = steadySeconds();
        fn();
        best = std::min(best, steadySeconds() - t0);
    }
    return best;
}

// ---------------------------------------------------------------------
// Decode suite: scalar reference vs bulk kernel, MB/s per encoding.

/** Zipf-ranked hashed categorical ids (the dictionary-friendly shape,
 * shared with the encoding tests and dedup bench). */
std::vector<int64_t>
zipfIds(size_t n, uint64_t seed)
{
    return warehouse::zipfSkewedIds(n, seed);
}

/** Sparse-length-like stream: mostly zeros, occasional short lists. */
std::vector<int64_t>
lengthStream(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int64_t> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        bool present = rng.nextUint(100) < 15;
        values.push_back(
            present ? static_cast<int64_t>(1 + rng.nextUint(24)) : 0);
    }
    return values;
}

void
addPair(bench::BenchReport &report, const SuiteConfig &cfg,
        const std::string &stem, const dwrf::Buffer &encoded,
        const std::function<void()> &scalar,
        const std::function<void()> &bulk)
{
    double scalar_s = bestTrialSeconds(cfg, scalar);
    double bulk_s = bestTrialSeconds(cfg, bulk);
    double bytes = static_cast<double>(encoded.size());
    report.metrics.push_back({"decode." + stem + "_scalar_mbps",
                              "MB/s", bytes / scalar_s / 1e6});
    report.metrics.push_back({"decode." + stem + "_bulk_mbps", "MB/s",
                              bytes / bulk_s / 1e6});
}

bench::BenchReport
runDecodeSuite(const SuiteConfig &cfg)
{
    bench::BenchReport report;
    report.suite = "decode";
    report.mode = cfg.quick ? "quick" : "full";
    report.seed = kSeed;
    report.warmup_trials = cfg.warmup_trials;
    report.measure_trials = cfg.measure_trials;

    size_t n = cfg.decode_values;

    // --- raw varints (unsigned LEB128; counts/lengths/indices are
    //     what raw varints carry in DWRF, so values are Zipf ranks) ---
    {
        Rng rng(kSeed);
        ZipfSampler zipf(4000, 1.2);
        dwrf::Buffer encoded;
        for (size_t i = 0; i < n; ++i)
            dwrf::putVarint(encoded, zipf.sample(rng));
        std::vector<uint64_t> out(n);
        addPair(report, cfg, "varint", encoded,
                [&] {
                    size_t pos = 0;
                    uint64_t acc = 0;
                    for (size_t i = 0; i < n; ++i) {
                        uint64_t v;
                        dwrf::getVarint(encoded, pos, v);
                        acc ^= v;
                    }
                    g_sink = g_sink + acc;
                },
                [&] {
                    size_t pos = 0;
                    dwrf::getVarintBlock(encoded, pos, out);
                    g_sink = g_sink + static_cast<uint64_t>(out[n - 1]);
                });
    }

    // --- raw little-endian floats ---
    {
        Rng rng(kSeed ^ 0xf10a7);
        dwrf::Buffer encoded;
        for (size_t i = 0; i < n; ++i)
            dwrf::putFloat(encoded,
                           static_cast<float>(rng.nextUint(1 << 20)));
        std::vector<float> out(n);
        addPair(report, cfg, "float", encoded,
                [&] {
                    size_t pos = 0;
                    float acc = 0;
                    for (size_t i = 0; i < n; ++i) {
                        float v;
                        dwrf::getFloat(encoded, pos, v);
                        acc += v;
                    }
                    g_sink = g_sink + static_cast<uint64_t>(acc);
                },
                [&] {
                    size_t pos = 0;
                    dwrf::getFloatBlock(encoded, pos, out);
                    g_sink = g_sink + static_cast<uint64_t>(out[n - 1]);
                });
    }

    // --- RLE (sparse-length shape: zero-dominated) ---
    {
        auto lengths = lengthStream(n, kSeed ^ 0x51e);
        dwrf::Buffer encoded;
        dwrf::rleEncode(lengths, encoded);
        std::vector<int64_t> out;
        addPair(report, cfg, "rle", encoded,
                [&] {
                    out.clear();
                    dwrf::rleDecodeScalar(encoded, out);
                    g_sink = g_sink + static_cast<uint64_t>(out.size());
                },
                [&] {
                    out.clear();
                    dwrf::rleDecode(encoded, out);
                    g_sink = g_sink + static_cast<uint64_t>(out.size());
                });
    }

    // --- value streams: direct (high-cardinality) ---
    {
        std::vector<int64_t> values;
        values.reserve(n);
        for (size_t i = 0; i < n; ++i)
            values.push_back(static_cast<int64_t>(i) * 7919);
        dwrf::Buffer encoded;
        dwrf::encodeValues(values, encoded);
        std::vector<int64_t> out;
        addPair(report, cfg, "values_direct", encoded,
                [&] {
                    dwrf::decodeValuesScalar(encoded, out);
                    g_sink = g_sink + static_cast<uint64_t>(out.size());
                },
                [&] {
                    dwrf::decodeValues(encoded, out);
                    g_sink = g_sink + static_cast<uint64_t>(out.size());
                });
    }

    // --- value streams: Zipfian dictionary corpus (acceptance bar:
    //     bulk >= 1.5x scalar) ---
    {
        auto values = zipfIds(n, kSeed ^ 0x21bf);
        dwrf::Buffer encoded;
        dwrf::encodeValues(values, encoded);
        std::vector<int64_t> out;
        addPair(report, cfg, "values_zipf", encoded,
                [&] {
                    dwrf::decodeValuesScalar(encoded, out);
                    g_sink = g_sink + static_cast<uint64_t>(out.size());
                },
                [&] {
                    dwrf::decodeValues(encoded, out);
                    g_sink = g_sink + static_cast<uint64_t>(out.size());
                });
        double scalar =
            report.metrics[report.metrics.size() - 2].value;
        double bulk = report.metrics.back().value;
        report.metrics.push_back({"decode.values_zipf_bulk_speedup",
                                  "x", bulk / scalar});
    }
    return report;
}

// ---------------------------------------------------------------------
// DPP suite: per-op transform throughput, live session, client
// latency.

/** A realistic 512-row batch (dense ids 1..8, sparse 9..16). */
dwrf::RowBatch
makeTransformBatch()
{
    warehouse::SchemaParams p;
    p.float_features = 8;
    p.sparse_features = 8;
    p.coverage_u = 0.6;
    p.avg_length = 20.0;
    p.seed = 77;
    static auto schema = warehouse::makeSchema(p);
    warehouse::RowGenerator gen(schema, 13);
    return dwrf::batchFromRows(gen.batch(512));
}

transforms::TransformSpec
specFor(transforms::OpKind kind)
{
    using transforms::OpKind;
    transforms::TransformSpec s;
    s.kind = kind;
    s.output = 1u << 20;
    switch (kind) {
      case OpKind::Cartesian:
      case OpKind::IdListTransform:
        s.inputs = {9, 10};
        s.u0 = 64;
        break;
      case OpKind::Bucketize:
      case OpKind::Onehot:
        s.inputs = {1};
        s.p1 = 10.0;
        s.u0 = 64;
        break;
      case OpKind::BoxCox:
        s.inputs = {1};
        s.p0 = 0.5;
        s.p1 = 1.0;
        break;
      case OpKind::Logit:
      case OpKind::Clamp:
      case OpKind::GetLocalHour:
        s.inputs = {1};
        s.p1 = 1.0;
        break;
      case OpKind::ComputeScore:
        s.inputs = {9};
        s.p0 = 2.0;
        break;
      case OpKind::Enumerate:
      case OpKind::PositiveModulus:
      case OpKind::MapId:
      case OpKind::SigridHash:
      case OpKind::NGram:
      case OpKind::FirstX:
        s.inputs = {9};
        s.u0 = kind == OpKind::NGram ? 3 : 1u << 16;
        s.u1 = 1u << 20;
        break;
      case OpKind::Sampling:
        s.p0 = 0.5;
        break;
    }
    return s;
}

std::string
lowerName(transforms::OpKind kind)
{
    std::string name = transforms::opKindName(kind);
    for (char &c : name)
        c = static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    return name;
}

warehouse::SchemaParams
sessionParams()
{
    warehouse::SchemaParams p;
    p.name = "perfdpp";
    p.float_features = 16;
    p.sparse_features = 8;
    p.avg_length = 6;
    p.coverage_u = 0.5;
    p.seed = static_cast<uint32_t>(kSeed) ^ 0x5e55;
    return p;
}

dpp::SessionSpec
makeSessionSpec(const benchfix::MiniWarehouse &mw, uint32_t partitions)
{
    dpp::SessionSpec spec;
    spec.table = mw.name;
    for (uint32_t p = 0; p < partitions; ++p)
        spec.partitions.push_back(p);
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 8, 4, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.rows_per_split = 1024;
    return spec;
}

bench::BenchReport
runDppSuite(const SuiteConfig &cfg)
{
    bench::BenchReport report;
    report.suite = "dpp";
    report.mode = cfg.quick ? "quick" : "full";
    report.seed = kSeed;
    report.warmup_trials = cfg.warmup_trials;
    report.measure_trials = cfg.measure_trials;

    // --- Table XI: per-op throughput over a realistic mini-batch ---
    using transforms::OpKind;
    const OpKind kOps[] = {
        OpKind::Cartesian,       OpKind::Bucketize,
        OpKind::ComputeScore,    OpKind::Enumerate,
        OpKind::PositiveModulus, OpKind::IdListTransform,
        OpKind::BoxCox,          OpKind::Logit,
        OpKind::MapId,           OpKind::FirstX,
        OpKind::GetLocalHour,    OpKind::SigridHash,
        OpKind::NGram,           OpKind::Onehot,
        OpKind::Clamp,           OpKind::Sampling,
    };
    dwrf::RowBatch base = makeTransformBatch();
    for (OpKind kind : kOps) {
        auto op = transforms::compileTransform(specFor(kind));
        double seconds = bestTrialSeconds(cfg, [&] {
            for (uint32_t r = 0; r < cfg.transform_reps; ++r) {
                dwrf::RowBatch batch = base;
                transforms::TransformStats stats;
                op->apply(batch, stats);
                g_sink = g_sink + stats.values_produced + batch.rows;
            }
        });
        double rows = static_cast<double>(base.rows) *
                      cfg.transform_reps;
        report.metrics.push_back(
            {"dpp.transform." + lowerName(kind) + "_rows_per_sec",
             "rows/s", rows / seconds});
    }

    // --- live InProcessSession: batches/sec/core (synchronous mode
    //     drives everything on this one core) ---
    {
        auto mw = benchfix::makeMiniWarehouse(
            sessionParams(), cfg.session_partitions, cfg.session_rows,
            2048);
        double batches_per_sec = 0;
        double rows_per_sec = 0;
        double seconds = bestTrialSeconds(cfg, [&] {
            dpp::SessionOptions so;
            so.workers = 2;
            dpp::InProcessSession session(
                *mw.warehouse,
                makeSessionSpec(mw, cfg.session_partitions), so);
            double t0 = steadySeconds();
            auto result = session.run();
            double dt = steadySeconds() - t0;
            batches_per_sec =
                static_cast<double>(result.tensors_delivered) / dt;
            rows_per_sec =
                static_cast<double>(result.rows_delivered) / dt;
        });
        (void)seconds;
        report.metrics.push_back({"dpp.session_batches_per_sec_per_core",
                                  "batches/s", batches_per_sec});
        report.metrics.push_back(
            {"dpp.session_rows_per_sec", "rows/s", rows_per_sec});
    }

    // --- Client::next latency (the in-process trainer hook: pop +
    //     ledger claim + heartbeat) ---
    {
        auto mw = benchfix::makeMiniWarehouse(
            sessionParams(), cfg.session_partitions, cfg.session_rows,
            2048);
        PercentileSampler latency_us;
        for (uint32_t trial = 0;
             trial < cfg.warmup_trials + cfg.measure_trials; ++trial) {
            bool measured = trial >= cfg.warmup_trials;
            dpp::Master master(
                *mw.warehouse,
                makeSessionSpec(mw, cfg.session_partitions));
            dpp::Worker worker(master, *mw.warehouse);
            dpp::DeliveryLedger ledger;
            dpp::Client client(0, 1, {&worker}, {}, &ledger);
            bool more = true;
            while (more || worker.buffered() > 0) {
                more = more && worker.pump();
                while (worker.buffered() > 0) {
                    double t0 = steadySeconds();
                    auto tensor = client.next();
                    double dt = steadySeconds() - t0;
                    if (tensor.has_value() && measured)
                        latency_us.add(dt * 1e6);
                }
            }
        }
        report.metrics.push_back({"dpp.client_next_p50_us", "us",
                                  latency_us.percentile(50.0)});
        report.metrics.push_back({"dpp.client_next_p99_us", "us",
                                  latency_us.percentile(99.0)});
    }
    return report;
}

// ---------------------------------------------------------------------
// Driver.

bool
writeReport(const bench::BenchReport &report, const std::string &dir)
{
    std::string text = bench::writeBenchJson(report);
    std::string error;
    if (!bench::validateBenchJson(text, &error)) {
        std::fprintf(stderr,
                     "perf_suite: emitted %s report fails its own "
                     "schema: %s\n",
                     report.suite.c_str(), error.c_str());
        return false;
    }
    std::string path = dir + "/BENCH_" + report.suite + ".json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "perf_suite: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << text;
    out.close();
    std::printf("wrote %s (%zu metrics)\n", path.c_str(),
                report.metrics.size());
    for (const auto &m : report.metrics)
        std::printf("  %-42s %14.2f %s\n", m.name.c_str(), m.value,
                    m.unit.c_str());
    return true;
}

int
validateFiles(const std::vector<std::string> &paths)
{
    int rc = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path.c_str());
            rc = 1;
            continue;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        std::string error;
        if (bench::validateBenchJson(buf.str(), &error)) {
            std::printf("%s: OK\n", path.c_str());
        } else {
            std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                         error.c_str());
            rc = 1;
        }
    }
    return rc;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--quick] [--out-dir DIR] [--suite decode|dpp|all]\n"
        "       %s --validate FILE...\n",
        argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_dir = ".";
    std::string suite = "all";
    std::vector<std::string> validate;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out-dir" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--suite" && i + 1 < argc) {
            suite = argv[++i];
        } else if (arg == "--validate") {
            for (++i; i < argc; ++i)
                validate.push_back(argv[i]);
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (!validate.empty())
        return validateFiles(validate);
    if (suite != "all" && suite != "decode" && suite != "dpp") {
        usage(argv[0]);
        return 2;
    }

    SuiteConfig cfg = makeConfig(quick);
    bool ok = true;
    if (suite == "all" || suite == "decode")
        ok = writeReport(runDecodeSuite(cfg), out_dir) && ok;
    if (suite == "all" || suite == "dpp")
        ok = writeReport(runDppSuite(cfg), out_dir) && ok;
    return ok ? 0 : 1;
}
