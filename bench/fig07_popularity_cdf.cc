/**
 * @file
 * Figure 7: CDF of popular bytes vs. storage traffic absorbed, over a
 * month of training runs per RM.
 *
 * Each run chooses its feature projection by popularity-weighted
 * sampling (ML engineers favor strong-signal features); per-feature
 * stored bytes come from the schema statistics. The curve plots, for
 * the most-popular x% of stored bytes, the share of read traffic they
 * serve. Paper: 80% of traffic is served by the hottest 39% / 37% /
 * 18% of RM1 / RM2 / RM3 bytes.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/table_printer.h"
#include "warehouse/datagen.h"
#include "warehouse/model_zoo.h"

using namespace dsi;
using namespace dsi::warehouse;

namespace {

struct Curve
{
    std::vector<double> traffic_at; ///< traffic share at byte frac x
    double hot80 = 0;               ///< byte fraction serving 80%
};

Curve
monthOfRuns(const RmSpec &rm, uint32_t runs, uint64_t seed)
{
    auto schema = makeSchema(rm.schemaParams(seed));
    auto pop =
        featurePopularity(schema, rm.popularity_alpha, seed ^ 0xfeed);

    // Per-feature stored bytes (relative) and accumulated reads.
    std::vector<double> bytes(schema.features.size());
    for (size_t i = 0; i < schema.features.size(); ++i)
        bytes[i] = schema.features[i].expectedBytesPerRow();
    std::vector<double> traffic(schema.features.size(), 0.0);
    std::map<FeatureId, size_t> index;
    for (size_t i = 0; i < schema.features.size(); ++i)
        index.emplace(schema.features[i].id, i);

    Rng rng(seed);
    for (uint32_t run = 0; run < runs; ++run) {
        // Jobs vary mildly around the model's projection size.
        auto jitter = [&](uint32_t n) {
            return static_cast<uint32_t>(
                n * (0.85 + 0.3 * rng.nextDouble()));
        };
        auto proj =
            chooseProjection(schema, pop, jitter(rm.dense_used),
                             jitter(rm.sparse_used), rng.next());
        for (FeatureId id : proj) {
            size_t i = index.at(id);
            traffic[i] += bytes[i];
        }
    }

    // Byte-weighted Lorenz curve: order features by traffic density.
    std::vector<size_t> order(bytes.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return traffic[a] / bytes[a] > traffic[b] / bytes[b];
    });
    double total_bytes = 0, total_traffic = 0;
    for (size_t i = 0; i < bytes.size(); ++i) {
        total_bytes += bytes[i];
        total_traffic += traffic[i];
    }

    Curve curve;
    curve.traffic_at.assign(11, 0.0);
    double acc_bytes = 0, acc_traffic = 0;
    size_t next_point = 1;
    curve.hot80 = 1.0;
    bool hot80_set = false;
    for (size_t k = 0; k < order.size(); ++k) {
        acc_bytes += bytes[order[k]];
        acc_traffic += traffic[order[k]];
        double bx = acc_bytes / total_bytes;
        double ty = acc_traffic / total_traffic;
        while (next_point <= 10 &&
               bx >= static_cast<double>(next_point) / 10.0) {
            curve.traffic_at[next_point] = ty;
            ++next_point;
        }
        if (!hot80_set && ty >= 0.80) {
            curve.hot80 = bx;
            hot80_set = true;
        }
    }
    for (size_t p = next_point; p <= 10; ++p)
        curve.traffic_at[p] = 1.0;
    return curve;
}

} // namespace

int
main()
{
    std::printf("=== Figure 7: popular bytes vs traffic absorbed ===\n");
    auto rms = warehouse::allRms();
    std::vector<Curve> curves;
    for (const auto &rm : rms)
        curves.push_back(monthOfRuns(rm, 40, 1234));

    TablePrinter table({"% of bytes", "RM1 traffic %", "RM2 traffic %",
                        "RM3 traffic %"});
    for (int p = 0; p <= 10; ++p) {
        table.addRow(
            {std::to_string(p * 10),
             TablePrinter::num(100 * curves[0].traffic_at[p], 1),
             TablePrinter::num(100 * curves[1].traffic_at[p], 1),
             TablePrinter::num(100 * curves[2].traffic_at[p], 1)});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nbytes serving 80%% of traffic (paper):\n");
    for (size_t i = 0; i < rms.size(); ++i) {
        std::printf("  %s: %.0f%% (paper %.0f%%)\n",
                    rms[i].name.c_str(), 100 * curves[i].hot80,
                    100 * rms[i].paper_hot_fraction_80);
    }
    return 0;
}
