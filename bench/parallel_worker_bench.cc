/**
 * @file
 * Wall-clock throughput scaling of the parallel DPP worker data
 * plane.
 *
 * The paper's workers are multi-core: many extract/transform threads
 * per node (Sections III-B1, VI-C). This bench generates a synthetic
 * dataset shaped like the Table IV/V workloads (dense + sparse
 * features, compressed/encrypted DWRF stripes, a per-model transform
 * graph), then measures end-to-end batches/sec of one Worker as the
 * pipeline grows from 1 thread to hardware_concurrency — the
 * acceptance bar is >= 2x batches/sec at 4 threads vs 1.
 *
 * Threads are split between the stages (extract is the heavier stage
 * here, as in the paper's RM workloads where decode+decompress
 * dominate): T total -> ceil(T/2) extract + floor(T/2) transform,
 * with at least one each.
 */

#include <chrono>
#include <cstdio>

#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "dpp/session.h"
#include "test_fixtures_bench.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;

namespace {

struct RunResult
{
    double seconds = 0;
    uint64_t batches = 0;
    uint64_t rows = 0;
};

dpp::SessionSpec
makeSpec(const benchfix::MiniWarehouse &mw)
{
    dpp::SessionSpec spec;
    spec.table = mw.name;
    spec.partitions = {0, 1};
    // Table V: jobs project ~10% of stored features.
    spec.projection = warehouse::chooseProjection(
        mw.schema, mw.popularity, 12, 8, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 6;
    spec.setTransforms(
        transforms::makeModelGraph(mw.schema, spec.projection, gp));
    spec.batch_size = 512;
    spec.rows_per_split = 4096;
    return spec;
}

/** Drive one Worker to completion with `threads` pipeline threads. */
RunResult
runOnce(const benchfix::MiniWarehouse &mw,
        const dpp::SessionSpec &spec, uint32_t threads)
{
    dpp::Master master(*mw.warehouse, spec);
    dpp::WorkerOptions wo;
    wo.buffer_capacity = 64;
    wo.buffer_bytes_capacity = 256_MiB;
    wo.num_extract_threads = (threads + 1) / 2;
    wo.num_transform_threads =
        threads / 2 > 0 ? threads / 2 : 1;
    if (threads == 1) {
        wo.num_extract_threads = 1;
        wo.num_transform_threads = 1;
    }
    dpp::Worker worker(master, *mw.warehouse, wo);

    RunResult r;
    auto t0 = std::chrono::steady_clock::now();
    worker.start();
    while (!worker.drained()) {
        if (auto t = worker.popTensor()) {
            ++r.batches;
            r.rows += t->data.rows;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

} // namespace

int
main()
{
    std::printf("=== Parallel DPP worker: batches/sec scaling ===\n");

    // Synthetic Table IV/V-shaped dataset: wide schema, DWRF
    // stripes with compression + encryption.
    warehouse::SchemaParams params;
    params.name = "bench";
    params.float_features = 120;
    params.sparse_features = 60;
    params.avg_length = 12;
    params.coverage_u = 0.6;
    params.seed = 42;
    auto mw = benchfix::makeMiniWarehouse(params, 2, 32768, 16384);
    auto spec = makeSpec(mw);

    // A 1-thread pipeline run is the baseline ("1 extract + 1
    // transform thread" is the closest pipelined equivalent of the
    // synchronous worker; its throughput matches pump() to within
    // hand-off overhead).
    unsigned hw = ThreadPool::hardwareConcurrency();
    // Sweep to >= 4 threads even on small machines so the 4-vs-1
    // acceptance point always runs; past `hw` the threads time-slice
    // one core and speedup flattens (expected).
    unsigned max_threads = hw < 4 ? 4 : hw;
    std::printf("hardware_concurrency: %u (sweeping 1..%u)\n\n", hw,
                max_threads);

    TablePrinter table({"Threads", "Extract", "Transform", "Seconds",
                        "Batches/s", "Rows/s", "Speedup"});
    double base_rate = 0;
    for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
        auto r = runOnce(mw, spec, threads);
        double rate = r.batches / r.seconds;
        if (threads == 1)
            base_rate = rate;
        uint32_t e = threads == 1 ? 1 : (threads + 1) / 2;
        uint32_t m = threads == 1 ? 1 : (threads / 2 > 0 ? threads / 2
                                                         : 1);
        table.addRow({std::to_string(threads), std::to_string(e),
                      std::to_string(m),
                      TablePrinter::num(r.seconds, 3),
                      TablePrinter::num(rate, 1),
                      TablePrinter::num(r.rows / r.seconds, 0),
                      TablePrinter::num(rate / base_rate, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nacceptance: >= 2x batches/sec at 4 threads vs 1 "
                "(backpressure caps: 64 tensors / 256 MiB; stripe "
                "queue depth 8)\n");
    if (hw < 4)
        std::printf("note: only %u hardware thread(s) available — "
                    "threads > %u time-slice and cannot speed up; "
                    "run on a >= 4-core machine to measure the "
                    "acceptance point.\n",
                    hw, hw);
    return 0;
}
