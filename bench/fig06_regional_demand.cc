/**
 * @file
 * Figure 6: compute demand of the ten most commonly-used models
 * (A-J), split by global region (R1-R5), normalized to model J.
 *
 * The production policy balances each model across all regions (so
 * every region holds every dataset); the bench also reports the
 * bin-packed alternative's replica savings (Section VII).
 */

#include <cmath>
#include <cstdio>

#include "common/table_printer.h"
#include "sched/fleet.h"
#include "sched/model_fleet.h"

using namespace dsi;
using namespace dsi::sched;

int
main()
{
    std::printf("=== Figure 6: per-model, per-region demand ===\n");
    GlobalScheduler scheduler(fiveRegions());
    auto models = tenModelFleet();
    auto placement =
        scheduler.place(models, PlacementPolicy::BalanceAllRegions);

    double j_total = 0;
    for (const auto &[region, d] : placement.demand.at("J"))
        j_total += d;

    TablePrinter table({"Model", "R1", "R2", "R3", "R4", "R5",
                        "Total (norm to J)"});
    for (const auto &m : models) {
        std::vector<std::string> row{m.model};
        double total = 0;
        for (const auto &r : scheduler.regions()) {
            double d = placement.demand.at(m.model).at(r.name);
            total += d;
            row.push_back(TablePrinter::num(d / j_total, 2));
        }
        row.push_back(TablePrinter::num(total / j_total, 2));
        table.addRow(std::move(row));
    }
    std::printf("%s", table.render().c_str());

    auto packed = scheduler.place(models, PlacementPolicy::BinPack);
    std::printf("\nbalance-all keeps %zu dataset replicas per model "
                "(%.1f PB fleet-wide); bin-packing would need %.1f PB "
                "(%.0f%% less), at the cost of per-region headroom.\n",
                scheduler.regions().size(),
                placement.total_storage_pb, packed.total_storage_pb,
                100.0 * (1 - packed.total_storage_pb /
                                 placement.total_storage_pb));
    return 0;
}
