/**
 * @file
 * Figure 4: the 82 combo jobs of one RM1 release iteration — skewed
 * and variable duration, many failed/killed, asynchronous launches.
 *
 * Prints every combo job as a (start, duration, status) row plus the
 * skew summary the paper highlights: long-tailed durations (> 10
 * days), a majority of non-successful jobs, and a start-time spread
 * of more than a week driven by slot-limited asynchronous launches.
 */

#include <algorithm>
#include <cstdio>

#include "common/stats.h"
#include "common/table_printer.h"
#include "sched/release.h"

using namespace dsi;
using namespace dsi::sched;

int
main()
{
    std::printf("=== Figure 4: combo jobs of one RM1 iteration ===\n");
    auto jobs = generateIteration("RM1", ReleaseParams{}, 0.0, 2022);

    std::vector<const TrainingJob *> combos;
    for (const auto &j : jobs)
        if (j.phase == JobPhase::Combo)
            combos.push_back(&j);
    std::sort(combos.begin(), combos.end(),
              [](const TrainingJob *a, const TrainingJob *b) {
                  return a->start_day < b->start_day;
              });

    TablePrinter table({"Job", "Start day", "Days", "Status"});
    uint32_t ok = 0, failed = 0, killed = 0;
    PercentileSampler durations;
    double first_start = combos.front()->start_day;
    double last_start = combos.back()->start_day;
    for (size_t i = 0; i < combos.size(); ++i) {
        const auto *j = combos[i];
        durations.add(j->duration());
        switch (j->status) {
          case JobStatus::Succeeded:
            ++ok;
            break;
          case JobStatus::Failed:
            ++failed;
            break;
          case JobStatus::Killed:
            ++killed;
            break;
        }
        // Print a sample of rows (every 8th) to keep output readable.
        if (i % 8 == 0) {
            table.addRow({std::to_string(i + 1),
                          TablePrinter::num(j->start_day, 1),
                          TablePrinter::num(j->duration(), 1),
                          jobStatusName(j->status)});
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n%zu combo jobs: %u succeeded / %u failed / %u "
                "killed\n",
                combos.size(), ok, failed, killed);
    std::printf("durations: p50=%.1f p90=%.1f max=%.1f days "
                "(paper: individual jobs can exceed 10 days)\n",
                durations.percentile(50), durations.percentile(90),
                durations.percentile(100));
    std::printf("start-time skew: %.1f days between first and last "
                "launch (asynchronous slot-limited scheduling)\n",
                last_start - first_start);
    return 0;
}
