/**
 * @file
 * Transform graphs: the per-model preprocessing program a DPP session
 * carries.
 *
 * A graph is an ordered list of TransformSpecs. The DPP Master
 * serializes it ("a serialized and compiled PyTorch module",
 * Section III-B1); Workers deserialize and compile it into executable
 * Transform objects applied to each mini-batch.
 *
 * makeModelGraph() builds realistic per-model graphs: every projected
 * feature gets a normalization op, and each derived feature is a
 * chain of 3-5 generation ops (Section VII notes 3-5 kernels per
 * derived feature).
 */

#ifndef DSI_TRANSFORMS_GRAPH_H
#define DSI_TRANSFORMS_GRAPH_H

#include <optional>
#include <vector>

#include "common/rng.h"
#include "transforms/ops.h"
#include "warehouse/schema.h"

namespace dsi::transforms {

/** An ordered preprocessing program. */
class TransformGraph
{
  public:
    TransformGraph() = default;
    explicit TransformGraph(std::vector<TransformSpec> specs)
        : specs_(std::move(specs))
    {
    }

    void add(TransformSpec spec) { specs_.push_back(std::move(spec)); }

    const std::vector<TransformSpec> &specs() const { return specs_; }
    size_t size() const { return specs_.size(); }
    bool empty() const { return specs_.empty(); }

    /** Count ops of a given class. */
    size_t countClass(OpClass cls) const;

    dwrf::Buffer serialize() const;
    static std::optional<TransformGraph> deserialize(
        dwrf::ByteSpan data);

  private:
    std::vector<TransformSpec> specs_;
};

/** Executable form of a graph. */
class CompiledGraph
{
  public:
    explicit CompiledGraph(const TransformGraph &graph);

    /** Apply every op in order; returns per-call stats. */
    TransformStats apply(dwrf::RowBatch &batch) const;

    size_t size() const { return ops_.size(); }
    const Transform &op(size_t i) const { return *ops_[i]; }

    /** Cumulative stats across all apply() calls. */
    const TransformStats &totalStats() const { return total_; }

  private:
    std::vector<std::unique_ptr<Transform>> ops_;
    mutable TransformStats total_;
};

/** Knobs of the synthetic model-graph builder. */
struct ModelGraphParams
{
    uint32_t derived_features = 10;  ///< Table IV derived count
    /** Chain length range per derived feature (Section VII: 3-5). */
    uint32_t min_chain = 3;
    uint32_t max_chain = 5;
    /** Fraction of projected features receiving normalization. */
    double normalize_fraction = 0.9;
    uint64_t seed = 33;
};

/**
 * Build a per-model graph over the projected features of `schema`:
 * sparse projections get SigridHash/FirstX normalization, dense get
 * Logit/BoxCox/Clamp/Onehot, and `derived_features` new features are
 * derived through generation-op chains.
 */
TransformGraph makeModelGraph(const warehouse::TableSchema &schema,
                              const std::vector<FeatureId> &projection,
                              const ModelGraphParams &params);

/** First feature id used for transform outputs (above raw ids). */
inline constexpr FeatureId kDerivedFeatureBase = 1u << 24;

} // namespace dsi::transforms

#endif // DSI_TRANSFORMS_GRAPH_H
