/**
 * @file
 * DLRM online-preprocessing transformations (Table XI).
 *
 * All sixteen operations of the paper's catalog, implemented over the
 * columnar RowBatch representation. Ops fall into three classes
 * (Section VI-D): *feature generation* (deriving new features, ~75% of
 * transform cycles), *sparse normalization* (~20%), and *dense
 * normalization* (~5%), plus batch-level sampling.
 *
 * An op is described by a declarative TransformSpec (serializable, so
 * a DPP Master can ship the "compiled PyTorch module" to Workers) and
 * executed through the Transform interface.
 */

#ifndef DSI_TRANSFORMS_OPS_H
#define DSI_TRANSFORMS_OPS_H

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "dwrf/encoding.h"
#include "dwrf/row.h"

namespace dsi::transforms {

/** The Table XI operation catalog. */
enum class OpKind : uint8_t
{
    Cartesian = 0,
    Bucketize,
    ComputeScore,
    Enumerate,
    PositiveModulus,
    IdListTransform,
    BoxCox,
    Logit,
    MapId,
    FirstX,
    GetLocalHour,
    SigridHash,
    NGram,
    Onehot,
    Clamp,
    Sampling,
};

/** Cost class of an operation (Section VI-D split). */
enum class OpClass : uint8_t
{
    FeatureGeneration,
    SparseNormalization,
    DenseNormalization,
    Sampling,
};

const char *opKindName(OpKind kind);
OpClass opClassOf(OpKind kind);
const char *opClassName(OpClass cls);

/** Declarative description of one transform instance. */
struct TransformSpec
{
    OpKind kind = OpKind::Clamp;
    FeatureId output = 0;            ///< id of the produced feature
    std::vector<FeatureId> inputs;   ///< consumed features, in order
    double p0 = 0.0;                 ///< op-specific scalar params
    double p1 = 0.0;
    uint64_t u0 = 0;                 ///< op-specific integer params
    uint64_t u1 = 0;

    void serialize(dwrf::Buffer &out) const;
    static bool deserialize(dwrf::ByteSpan data, size_t &pos,
                            TransformSpec &spec);
};

/** Execution statistics accumulated by apply(). */
struct TransformStats
{
    uint64_t values_produced = 0;
    uint64_t values_consumed = 0;
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
    /** Per-class consumed-value counts (proxy for cycle split). */
    uint64_t class_values[4] = {0, 0, 0, 0};

    void merge(const TransformStats &other);
    double classShare(OpClass cls) const;
};

/** A compiled, executable transform. */
class Transform
{
  public:
    virtual ~Transform() = default;

    virtual const TransformSpec &spec() const = 0;

    /**
     * Apply in place: reads input columns of `batch`, appends (or for
     * Sampling, rewrites) output. Missing inputs are tolerated (the
     * op contributes nothing for rows lacking them).
     */
    virtual void apply(dwrf::RowBatch &batch,
                       TransformStats &stats) const = 0;

    OpKind kind() const { return spec().kind; }
    OpClass opClass() const { return opClassOf(spec().kind); }
};

/**
 * Compile one spec. Dies on malformed specs (wrong input arity).
 */
std::unique_ptr<Transform> compileTransform(const TransformSpec &spec);

/** Deterministic 64-bit hash used by SigridHash / NGram / Cartesian. */
uint64_t sigridHash64(uint64_t value, uint64_t salt);

} // namespace dsi::transforms

#endif // DSI_TRANSFORMS_OPS_H
