#include "dedup.h"

#include <cstring>
#include <unordered_map>

#include "common/logging.h"

namespace dsi::transforms {

bool
rowLocal(OpKind kind)
{
    return kind != OpKind::Sampling;
}

bool
rowLocal(const TransformGraph &graph)
{
    for (const auto &spec : graph.specs()) {
        if (!rowLocal(spec.kind))
            return false;
    }
    return true;
}

bool
rowLocal(const CompiledGraph &graph)
{
    for (size_t i = 0; i < graph.size(); ++i) {
        if (!rowLocal(graph.op(i).kind()))
            return false;
    }
    return true;
}

namespace {

/** FNV-1a accumulator over raw bytes. */
struct RowHasher
{
    uint64_t h = 0xcbf29ce484222325ULL;

    void mix(const void *data, size_t len)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    }
    void mixU64(uint64_t v) { mix(&v, sizeof(v)); }
};

uint64_t
hashRow(const dwrf::RowBatch &batch, uint32_t r)
{
    RowHasher hasher;
    for (const auto &c : batch.dense) {
        bool present = c.isPresent(r);
        hasher.mixU64(present ? 1 : 0);
        if (present)
            hasher.mix(&c.values[r], sizeof(float));
    }
    for (const auto &c : batch.sparse) {
        uint32_t begin = c.offsets[r], end = c.offsets[r + 1];
        hasher.mixU64(end - begin);
        hasher.mix(c.values.data() + begin,
                   (end - begin) * sizeof(int64_t));
        if (!c.scores.empty()) {
            hasher.mix(c.scores.data() + begin,
                       (end - begin) * sizeof(float));
        }
    }
    return hasher.h;
}

/** Exact feature-content equality of two rows (labels excluded). */
bool
rowsEqual(const dwrf::RowBatch &batch, uint32_t a, uint32_t b)
{
    for (const auto &c : batch.dense) {
        if (c.isPresent(a) != c.isPresent(b))
            return false;
        // Compare value bits, not floats: NaN payloads and -0.0f must
        // round-trip through dedup unchanged.
        if (c.isPresent(a) &&
            std::memcmp(&c.values[a], &c.values[b], sizeof(float)) !=
                0) {
            return false;
        }
    }
    for (const auto &c : batch.sparse) {
        uint32_t abegin = c.offsets[a], alen = c.offsets[a + 1] - abegin;
        uint32_t bbegin = c.offsets[b], blen = c.offsets[b + 1] - bbegin;
        if (alen != blen)
            return false;
        if (alen != 0 &&
            std::memcmp(c.values.data() + abegin,
                        c.values.data() + bbegin,
                        alen * sizeof(int64_t)) != 0) {
            return false;
        }
        if (!c.scores.empty() && alen != 0 &&
            std::memcmp(c.scores.data() + abegin,
                        c.scores.data() + bbegin,
                        alen * sizeof(float)) != 0) {
            return false;
        }
    }
    return true;
}

} // namespace

BatchDedupPlan
planBatchDedup(const dwrf::RowBatch &batch)
{
    BatchDedupPlan plan;
    plan.inverse.resize(batch.rows);
    plan.unique_rows.reserve(batch.rows);

    // hash -> slots in unique_rows with that hash (exact compare
    // resolves collisions).
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    buckets.reserve(batch.rows);
    for (uint32_t r = 0; r < batch.rows; ++r) {
        uint64_t h = hashRow(batch, r);
        auto &slots = buckets[h];
        uint32_t found = UINT32_MAX;
        for (uint32_t slot : slots) {
            if (rowsEqual(batch, plan.unique_rows[slot], r)) {
                found = slot;
                break;
            }
        }
        if (found == UINT32_MAX) {
            found = static_cast<uint32_t>(plan.unique_rows.size());
            plan.unique_rows.push_back(r);
            slots.push_back(found);
        }
        plan.inverse[r] = found;
    }
    return plan;
}

namespace {

/** Gather `rows` of `src` into a fresh batch (shared by both paths). */
dwrf::RowBatch
gatherImpl(const dwrf::RowBatch &src,
           const std::vector<uint32_t> &rows,
           const std::vector<float> *labels_override)
{
    dwrf::RowBatch out;
    out.rows = static_cast<uint32_t>(rows.size());

    if (labels_override != nullptr) {
        out.labels = *labels_override;
    } else if (!src.labels.empty()) {
        out.labels.reserve(rows.size());
        for (uint32_t r : rows)
            out.labels.push_back(src.labels[r]);
    }

    out.dense.reserve(src.dense.size());
    for (const auto &c : src.dense) {
        dwrf::DenseColumn col;
        col.id = c.id;
        col.present.assign((out.rows + 7) / 8, 0);
        col.values.assign(out.rows, 0.0f);
        for (uint32_t i = 0; i < out.rows; ++i) {
            uint32_t r = rows[i];
            if (c.isPresent(r)) {
                col.setPresent(i);
                col.values[i] = c.values[r];
            }
        }
        out.dense.push_back(std::move(col));
    }

    out.sparse.reserve(src.sparse.size());
    for (const auto &c : src.sparse) {
        dwrf::SparseColumn col;
        col.id = c.id;
        col.offsets.assign(out.rows + 1, 0);
        uint32_t total = 0;
        for (uint32_t i = 0; i < out.rows; ++i) {
            total += c.length(rows[i]);
            col.offsets[i + 1] = total;
        }
        col.values.resize(total);
        bool scored = !c.scores.empty();
        if (scored)
            col.scores.resize(total);
        for (uint32_t i = 0; i < out.rows; ++i) {
            uint32_t begin = c.offsets[rows[i]];
            uint32_t len = col.offsets[i + 1] - col.offsets[i];
            if (len == 0)
                continue;
            std::memcpy(col.values.data() + col.offsets[i],
                        c.values.data() + begin,
                        len * sizeof(int64_t));
            if (scored) {
                std::memcpy(col.scores.data() + col.offsets[i],
                            c.scores.data() + begin,
                            len * sizeof(float));
            }
        }
        out.sparse.push_back(std::move(col));
    }
    return out;
}

} // namespace

dwrf::RowBatch
gatherRows(const dwrf::RowBatch &batch,
           const std::vector<uint32_t> &rows)
{
    return gatherImpl(batch, rows, nullptr);
}

dwrf::RowBatch
expandBatch(const dwrf::RowBatch &unique, const BatchDedupPlan &plan,
            const std::vector<float> &labels)
{
    dsi_assert(labels.size() == plan.inverse.size(),
               "label count %zu != batch rows %zu", labels.size(),
               plan.inverse.size());
    return gatherImpl(unique, plan.inverse, &labels);
}

} // namespace dsi::transforms
