#include "graph.h"

#include <algorithm>

#include "common/logging.h"

namespace dsi::transforms {

size_t
TransformGraph::countClass(OpClass cls) const
{
    size_t n = 0;
    for (const auto &s : specs_)
        n += opClassOf(s.kind) == cls;
    return n;
}

dwrf::Buffer
TransformGraph::serialize() const
{
    dwrf::Buffer out;
    dwrf::putVarint(out, specs_.size());
    for (const auto &s : specs_)
        s.serialize(out);
    return out;
}

std::optional<TransformGraph>
TransformGraph::deserialize(dwrf::ByteSpan data)
{
    size_t pos = 0;
    uint64_t n;
    if (!dwrf::getVarint(data, pos, n))
        return std::nullopt;
    std::vector<TransformSpec> specs(n);
    for (auto &s : specs) {
        if (!TransformSpec::deserialize(data, pos, s))
            return std::nullopt;
    }
    if (pos != data.size())
        return std::nullopt;
    return TransformGraph(std::move(specs));
}

CompiledGraph::CompiledGraph(const TransformGraph &graph)
{
    ops_.reserve(graph.size());
    for (const auto &spec : graph.specs())
        ops_.push_back(compileTransform(spec));
}

TransformStats
CompiledGraph::apply(dwrf::RowBatch &batch) const
{
    TransformStats stats;
    for (const auto &op : ops_)
        op->apply(batch, stats);
    total_.merge(stats);
    return stats;
}

TransformGraph
makeModelGraph(const warehouse::TableSchema &schema,
               const std::vector<FeatureId> &projection,
               const ModelGraphParams &params)
{
    Rng rng(params.seed);
    TransformGraph graph;
    FeatureId next_out = kDerivedFeatureBase;

    std::vector<FeatureId> dense_in, sparse_in;
    for (FeatureId id : projection) {
        const warehouse::FeatureSpec *f = schema.find(id);
        dsi_assert(f != nullptr, "projected feature %u not in schema",
                   id);
        (f->isSparse() ? sparse_in : dense_in).push_back(id);
    }

    // --- Normalization of raw projected features ---
    for (FeatureId id : dense_in) {
        if (!rng.nextBool(params.normalize_fraction))
            continue;
        TransformSpec s;
        s.inputs = {id};
        s.output = next_out++;
        switch (rng.nextUint(4)) {
          case 0:
            s.kind = OpKind::Logit;
            s.p0 = 1e-6;
            break;
          case 1:
            s.kind = OpKind::BoxCox;
            s.p0 = 0.5;
            s.p1 = 1.0;
            break;
          case 2:
            s.kind = OpKind::Clamp;
            s.p0 = 0.0;
            s.p1 = 1000.0;
            break;
          default:
            s.kind = OpKind::Onehot;
            s.p0 = 0.0;
            s.p1 = 10.0;
            s.u0 = 64;
            break;
        }
        graph.add(std::move(s));
    }
    for (FeatureId id : sparse_in) {
        if (!rng.nextBool(params.normalize_fraction))
            continue;
        TransformSpec s;
        s.inputs = {id};
        s.output = next_out++;
        switch (rng.nextUint(3)) {
          case 0:
            s.kind = OpKind::SigridHash;
            s.u0 = rng.next();
            s.u1 = 1u << 22;
            break;
          case 1:
            s.kind = OpKind::FirstX;
            s.u0 = 1 + rng.nextUint(50);
            break;
          default:
            s.kind = OpKind::PositiveModulus;
            s.u0 = 1u << 20;
            break;
        }
        graph.add(std::move(s));
    }

    // --- Derived features: chains of generation ops ---
    for (uint32_t d = 0; d < params.derived_features; ++d) {
        uint32_t chain =
            params.min_chain +
            static_cast<uint32_t>(rng.nextUint(
                params.max_chain - params.min_chain + 1));
        // Chain starts from one or two raw sparse features (or dense
        // for GetLocalHour-style derivations when no sparse exists).
        FeatureId current = 0;
        bool current_sparse = !sparse_in.empty();
        if (current_sparse) {
            current = sparse_in[rng.nextUint(sparse_in.size())];
        } else if (!dense_in.empty()) {
            current = dense_in[rng.nextUint(dense_in.size())];
        } else {
            break;
        }
        for (uint32_t step = 0; step < chain; ++step) {
            TransformSpec s;
            s.output = next_out++;
            if (current_sparse) {
                switch (rng.nextUint(5)) {
                  case 0:
                    s.kind = OpKind::Cartesian;
                    s.inputs = {current,
                                sparse_in[rng.nextUint(
                                    sparse_in.size())]};
                    s.u0 = 64;
                    s.u1 = rng.next();
                    break;
                  case 1:
                    s.kind = OpKind::NGram;
                    s.inputs = {current};
                    s.u0 = 2 + rng.nextUint(2);
                    s.u1 = rng.next();
                    break;
                  case 2:
                    s.kind = OpKind::MapId;
                    s.inputs = {current};
                    s.u0 = 1u << 18;
                    s.u1 = 1;
                    break;
                  case 3:
                    s.kind = OpKind::IdListTransform;
                    s.inputs = {current,
                                sparse_in[rng.nextUint(
                                    sparse_in.size())]};
                    break;
                  default:
                    s.kind = OpKind::Enumerate;
                    s.inputs = {current};
                    break;
                }
            } else {
                s.kind = OpKind::GetLocalHour;
                s.inputs = {current};
                s.u0 = rng.nextUint(24);
            }
            current = s.output;
            graph.add(std::move(s));
        }
        // Derived sparse features end with a normalization hash so
        // ids land in the embedding-table domain.
        if (current_sparse) {
            TransformSpec s;
            s.kind = OpKind::SigridHash;
            s.inputs = {current};
            s.output = next_out++;
            s.u0 = rng.next();
            s.u1 = 1u << 22;
            graph.add(std::move(s));
        }
    }
    return graph;
}

} // namespace dsi::transforms
