/**
 * @file
 * RecD-style batch dedup for the DPP transform stage.
 *
 * Duplicate rows dominate recommendation batches (Table V; RecD):
 * many samples in one mini-batch carry identical feature payloads and
 * differ only in their labels. Since every Table XI op except
 * Sampling is *row-local* — a row's transformed output is a pure
 * function of that row's feature content — the transform graph needs
 * to run only once per distinct payload:
 *
 *   plan   ->  group identical rows (hash bucket + exact compare;
 *              labels excluded from the identity),
 *   gather ->  a unique-rows batch in first-occurrence order,
 *   apply  ->  the compiled graph, once per unique row,
 *   expand ->  inverse-index gather back to full batch size, with
 *              each row's original label restored.
 *
 * The expansion is byte-identical to running the graph on the full
 * batch (tests/dedup_differential_test.cc proves it end to end):
 * exact row comparison means no hash collision can alias two
 * different rows, and row-local ops compute bitwise-equal outputs on
 * the gathered copy. Graphs containing Sampling (batch-order
 * stateful) must be bypassed — rowLocal() is the gate.
 */

#ifndef DSI_TRANSFORMS_DEDUP_H
#define DSI_TRANSFORMS_DEDUP_H

#include <vector>

#include "dwrf/row.h"
#include "transforms/graph.h"

namespace dsi::transforms {

/**
 * True when the op's per-row output depends only on that row's
 * feature content (every Table XI op except Sampling, which rewrites
 * the batch as a function of row *positions* and a batch counter).
 */
bool rowLocal(OpKind kind);

/** True when every op in the graph is row-local. */
bool rowLocal(const TransformGraph &graph);
bool rowLocal(const CompiledGraph &graph);

/** Duplicate-row structure of one batch. */
struct BatchDedupPlan
{
    /** Representative row indices, in first-occurrence order. */
    std::vector<uint32_t> unique_rows;

    /** Per original row: its slot in unique_rows. */
    std::vector<uint32_t> inverse;

    /** True when the batch actually holds duplicates. */
    bool collapsed() const
    {
        return unique_rows.size() < inverse.size();
    }
};

/**
 * Group identical rows of `batch`. Row identity covers every dense
 * (presence + value) and sparse (values + scores) column but NOT the
 * label: duplicated samples keep their own labels, and no row-local
 * op reads or writes labels. Exact: hash buckets are confirmed by
 * full row comparison.
 */
BatchDedupPlan planBatchDedup(const dwrf::RowBatch &batch);

/** Gather `rows` of `batch` into a new batch (labels included). */
dwrf::RowBatch gatherRows(const dwrf::RowBatch &batch,
                          const std::vector<uint32_t> &rows);

/**
 * Expand a transformed unique-rows batch back to full size via the
 * plan's inverse index, restoring the original per-row `labels`
 * (size == plan.inverse.size()).
 */
dwrf::RowBatch expandBatch(const dwrf::RowBatch &unique,
                           const BatchDedupPlan &plan,
                           const std::vector<float> &labels);

} // namespace dsi::transforms

#endif // DSI_TRANSFORMS_DEDUP_H
