#include "ops.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace dsi::transforms {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Cartesian:
        return "Cartesian";
      case OpKind::Bucketize:
        return "Bucketize";
      case OpKind::ComputeScore:
        return "ComputeScore";
      case OpKind::Enumerate:
        return "Enumerate";
      case OpKind::PositiveModulus:
        return "PositiveModulus";
      case OpKind::IdListTransform:
        return "IdListTransform";
      case OpKind::BoxCox:
        return "BoxCox";
      case OpKind::Logit:
        return "Logit";
      case OpKind::MapId:
        return "MapId";
      case OpKind::FirstX:
        return "FirstX";
      case OpKind::GetLocalHour:
        return "GetLocalHour";
      case OpKind::SigridHash:
        return "SigridHash";
      case OpKind::NGram:
        return "NGram";
      case OpKind::Onehot:
        return "Onehot";
      case OpKind::Clamp:
        return "Clamp";
      case OpKind::Sampling:
        return "Sampling";
    }
    return "?";
}

OpClass
opClassOf(OpKind kind)
{
    switch (kind) {
      case OpKind::Cartesian:
      case OpKind::Bucketize:
      case OpKind::ComputeScore:
      case OpKind::Enumerate:
      case OpKind::IdListTransform:
      case OpKind::MapId:
      case OpKind::GetLocalHour:
      case OpKind::NGram:
        return OpClass::FeatureGeneration;
      case OpKind::PositiveModulus:
      case OpKind::FirstX:
      case OpKind::SigridHash:
        return OpClass::SparseNormalization;
      case OpKind::BoxCox:
      case OpKind::Logit:
      case OpKind::Onehot:
      case OpKind::Clamp:
        return OpClass::DenseNormalization;
      case OpKind::Sampling:
        return OpClass::Sampling;
    }
    return OpClass::Sampling;
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::FeatureGeneration:
        return "feature-generation";
      case OpClass::SparseNormalization:
        return "sparse-normalization";
      case OpClass::DenseNormalization:
        return "dense-normalization";
      case OpClass::Sampling:
        return "sampling";
    }
    return "?";
}

void
TransformSpec::serialize(dwrf::Buffer &out) const
{
    out.push_back(static_cast<uint8_t>(kind));
    dwrf::putVarint(out, output);
    dwrf::putVarint(out, inputs.size());
    for (FeatureId f : inputs)
        dwrf::putVarint(out, f);
    dwrf::putFloat(out, static_cast<float>(p0));
    dwrf::putFloat(out, static_cast<float>(p1));
    dwrf::putVarint(out, u0);
    dwrf::putVarint(out, u1);
}

bool
TransformSpec::deserialize(dwrf::ByteSpan data, size_t &pos,
                           TransformSpec &spec)
{
    if (pos >= data.size())
        return false;
    spec.kind = static_cast<OpKind>(data[pos++]);
    uint64_t out_id, n;
    if (!dwrf::getVarint(data, pos, out_id) ||
        !dwrf::getVarint(data, pos, n)) {
        return false;
    }
    spec.output = static_cast<FeatureId>(out_id);
    spec.inputs.resize(n);
    for (auto &f : spec.inputs) {
        uint64_t id;
        if (!dwrf::getVarint(data, pos, id))
            return false;
        f = static_cast<FeatureId>(id);
    }
    float a, b;
    if (!dwrf::getFloat(data, pos, a) || !dwrf::getFloat(data, pos, b))
        return false;
    spec.p0 = a;
    spec.p1 = b;
    if (!dwrf::getVarint(data, pos, spec.u0) ||
        !dwrf::getVarint(data, pos, spec.u1)) {
        return false;
    }
    return true;
}

void
TransformStats::merge(const TransformStats &other)
{
    values_produced += other.values_produced;
    values_consumed += other.values_consumed;
    rows_in += other.rows_in;
    rows_out += other.rows_out;
    for (int i = 0; i < 4; ++i)
        class_values[i] += other.class_values[i];
}

double
TransformStats::classShare(OpClass cls) const
{
    uint64_t total = 0;
    for (int i = 0; i < 4; ++i)
        total += class_values[i];
    if (total == 0)
        return 0.0;
    return static_cast<double>(class_values[static_cast<int>(cls)]) /
           static_cast<double>(total);
}

uint64_t
sigridHash64(uint64_t value, uint64_t salt)
{
    uint64_t z = value + salt * 0x9e3779b97f4a7c15ULL +
                 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

/** Shared base: holds the spec and stats plumbing. */
class TransformBase : public Transform
{
  public:
    explicit TransformBase(TransformSpec spec) : spec_(std::move(spec))
    {
    }
    const TransformSpec &spec() const override { return spec_; }

  protected:
    void
    account(TransformStats &stats, uint64_t consumed,
            uint64_t produced) const
    {
        stats.values_consumed += consumed;
        stats.values_produced += produced;
        stats.class_values[static_cast<int>(opClass())] += consumed;
    }

    TransformSpec spec_;
};

/** Base for ops mapping one dense input to one dense output. */
class DenseUnaryOp : public TransformBase
{
  public:
    using TransformBase::TransformBase;

    virtual float map(float x) const = 0;

    void
    apply(dwrf::RowBatch &batch, TransformStats &stats) const override
    {
        const dwrf::DenseColumn *in = batch.findDense(spec_.inputs[0]);
        if (!in)
            return;
        dwrf::DenseColumn out;
        out.id = spec_.output;
        out.present = in->present;
        out.values.assign(batch.rows, 0.0f);
        uint64_t n = 0;
        for (uint32_t r = 0; r < batch.rows; ++r) {
            if (in->isPresent(r)) {
                out.values[r] = map(in->values[r]);
                ++n;
            }
        }
        account(stats, n, n);
        batch.dense.push_back(std::move(out));
    }
};

class BucketizeOp : public DenseUnaryOp
{
  public:
    using DenseUnaryOp::DenseUnaryOp;

    float
    map(float x) const override
    {
        // Borders start at p0 with width p1, u0 buckets total.
        double width = spec_.p1 > 0 ? spec_.p1 : 1.0;
        double idx = std::floor((x - spec_.p0) / width);
        double hi = static_cast<double>(
            spec_.u0 > 0 ? spec_.u0 - 1 : 0);
        return static_cast<float>(std::clamp(idx, 0.0, hi));
    }
};

class BoxCoxOp : public DenseUnaryOp
{
  public:
    using DenseUnaryOp::DenseUnaryOp;

    float
    map(float x) const override
    {
        // lambda = p0, shift = p1 keeps the argument positive.
        double v = std::max(1e-9, static_cast<double>(x) + spec_.p1);
        if (std::abs(spec_.p0) < 1e-9)
            return static_cast<float>(std::log(v));
        return static_cast<float>(
            (std::pow(v, spec_.p0) - 1.0) / spec_.p0);
    }
};

class LogitOp : public DenseUnaryOp
{
  public:
    using DenseUnaryOp::DenseUnaryOp;

    float
    map(float x) const override
    {
        double eps = spec_.p0 > 0 ? spec_.p0 : 1e-6;
        double p = std::clamp(static_cast<double>(x), eps, 1.0 - eps);
        return static_cast<float>(std::log(p / (1.0 - p)));
    }
};

class ClampOp : public DenseUnaryOp
{
  public:
    using DenseUnaryOp::DenseUnaryOp;

    float
    map(float x) const override
    {
        return std::clamp(x, static_cast<float>(spec_.p0),
                          static_cast<float>(spec_.p1));
    }
};

class GetLocalHourOp : public DenseUnaryOp
{
  public:
    using DenseUnaryOp::DenseUnaryOp;

    float
    map(float x) const override
    {
        // x is a unix timestamp; u0 is the timezone offset in hours.
        double shifted =
            static_cast<double>(x) + static_cast<double>(spec_.u0) *
                                         3600.0;
        double seconds = std::fmod(shifted, 86400.0);
        if (seconds < 0)
            seconds += 86400.0;
        return static_cast<float>(std::floor(seconds / 3600.0));
    }
};

/** Onehot: dense value -> single categorical id (bucket index). */
class OnehotOp : public TransformBase
{
  public:
    using TransformBase::TransformBase;

    void
    apply(dwrf::RowBatch &batch, TransformStats &stats) const override
    {
        const dwrf::DenseColumn *in = batch.findDense(spec_.inputs[0]);
        if (!in)
            return;
        dwrf::SparseColumn out;
        out.id = spec_.output;
        out.offsets.assign(batch.rows + 1, 0);
        out.values.reserve(batch.rows);
        uint64_t buckets = spec_.u0 > 0 ? spec_.u0 : 2;
        double width = spec_.p1 > 0 ? spec_.p1 : 1.0;
        uint64_t n = 0;
        for (uint32_t r = 0; r < batch.rows; ++r) {
            out.offsets[r + 1] = out.offsets[r];
            if (!in->isPresent(r))
                continue;
            double idx =
                std::floor((in->values[r] - spec_.p0) / width);
            int64_t bucket = static_cast<int64_t>(std::clamp(
                idx, 0.0, static_cast<double>(buckets - 1)));
            out.values.push_back(bucket);
            ++out.offsets[r + 1];
            ++n;
        }
        account(stats, n, n);
        batch.sparse.push_back(std::move(out));
    }
};

/** Base for ops mapping one sparse input to one sparse output. */
class SparseUnaryOp : public TransformBase
{
  public:
    using TransformBase::TransformBase;

    /** Transform one row's list into the output list. */
    virtual void mapList(const int64_t *values, const float *scores,
                         uint32_t len, dwrf::SparseColumn &out) const
        = 0;

    void
    apply(dwrf::RowBatch &batch, TransformStats &stats) const override
    {
        const dwrf::SparseColumn *in =
            batch.findSparse(spec_.inputs[0]);
        if (!in)
            return;
        dwrf::SparseColumn out;
        out.id = spec_.output;
        out.offsets.assign(batch.rows + 1, 0);
        // Most unary list ops emit at most one value per input value.
        out.values.reserve(in->values.size());
        if (!in->scores.empty())
            out.scores.reserve(in->scores.size());
        uint64_t consumed = 0;
        for (uint32_t r = 0; r < batch.rows; ++r) {
            uint32_t lo = in->offsets[r];
            uint32_t len = in->offsets[r + 1] - lo;
            consumed += len;
            mapList(in->values.data() + lo,
                    in->scores.empty() ? nullptr
                                       : in->scores.data() + lo,
                    len, out);
            out.offsets[r + 1] =
                static_cast<uint32_t>(out.values.size());
        }
        account(stats, consumed, out.values.size());
        batch.sparse.push_back(std::move(out));
    }
};

class SigridHashOp : public SparseUnaryOp
{
  public:
    using SparseUnaryOp::SparseUnaryOp;

    void
    mapList(const int64_t *values, const float *, uint32_t len,
            dwrf::SparseColumn &out) const override
    {
        uint64_t max_value = spec_.u1 > 0 ? spec_.u1 : (1ULL << 31);
        for (uint32_t i = 0; i < len; ++i) {
            uint64_t h = sigridHash64(
                static_cast<uint64_t>(values[i]), spec_.u0);
            out.values.push_back(static_cast<int64_t>(h % max_value));
        }
    }
};

class PositiveModulusOp : public SparseUnaryOp
{
  public:
    using SparseUnaryOp::SparseUnaryOp;

    void
    mapList(const int64_t *values, const float *, uint32_t len,
            dwrf::SparseColumn &out) const override
    {
        int64_t m = spec_.u0 > 0 ? static_cast<int64_t>(spec_.u0)
                                 : 1000000;
        for (uint32_t i = 0; i < len; ++i) {
            int64_t v = values[i] % m;
            out.values.push_back(v < 0 ? v + m : v);
        }
    }
};

class FirstXOp : public SparseUnaryOp
{
  public:
    using SparseUnaryOp::SparseUnaryOp;

    void
    mapList(const int64_t *values, const float *scores, uint32_t len,
            dwrf::SparseColumn &out) const override
    {
        uint32_t keep = std::min<uint32_t>(
            len, spec_.u0 > 0 ? static_cast<uint32_t>(spec_.u0) : 1);
        for (uint32_t i = 0; i < keep; ++i) {
            out.values.push_back(values[i]);
            if (scores)
                out.scores.push_back(scores[i]);
        }
    }
};

class MapIdOp : public SparseUnaryOp
{
  public:
    using SparseUnaryOp::SparseUnaryOp;

    void
    mapList(const int64_t *values, const float *, uint32_t len,
            dwrf::SparseColumn &out) const override
    {
        // Fixed mapping: ids below u0 keep a remapped identity; all
        // others collapse to the default id u1.
        int64_t dict = static_cast<int64_t>(spec_.u0);
        for (uint32_t i = 0; i < len; ++i) {
            out.values.push_back(values[i] < dict
                                     ? values[i] + 1
                                     : static_cast<int64_t>(spec_.u1));
        }
    }
};

class NGramOp : public SparseUnaryOp
{
  public:
    using SparseUnaryOp::SparseUnaryOp;

    void
    mapList(const int64_t *values, const float *, uint32_t len,
            dwrf::SparseColumn &out) const override
    {
        uint32_t n = spec_.u0 >= 2 ? static_cast<uint32_t>(spec_.u0)
                                   : 2;
        if (len < n)
            return;
        for (uint32_t i = 0; i + n <= len; ++i) {
            uint64_t h = spec_.u1; // salt
            for (uint32_t k = 0; k < n; ++k)
                h = sigridHash64(static_cast<uint64_t>(values[i + k]),
                                 h);
            out.values.push_back(
                static_cast<int64_t>(h >> 1)); // keep positive
        }
    }
};

class EnumerateOp : public SparseUnaryOp
{
  public:
    using SparseUnaryOp::SparseUnaryOp;

    void
    mapList(const int64_t *values, const float *, uint32_t len,
            dwrf::SparseColumn &out) const override
    {
        for (uint32_t i = 0; i < len; ++i) {
            out.values.push_back(values[i]);
            out.scores.push_back(static_cast<float>(i));
        }
    }
};

class ComputeScoreOp : public SparseUnaryOp
{
  public:
    using SparseUnaryOp::SparseUnaryOp;

    void
    mapList(const int64_t *values, const float *scores, uint32_t len,
            dwrf::SparseColumn &out) const override
    {
        // score' = score * p0 + p1 (score defaults to 1 if absent)
        for (uint32_t i = 0; i < len; ++i) {
            out.values.push_back(values[i]);
            double s = scores ? scores[i] : 1.0;
            out.scores.push_back(
                static_cast<float>(s * spec_.p0 + spec_.p1));
        }
    }
};

/** Base for ops combining two sparse inputs. */
class SparseBinaryOp : public TransformBase
{
  public:
    using TransformBase::TransformBase;

    virtual void mapLists(const int64_t *a, uint32_t alen,
                          const int64_t *b, uint32_t blen,
                          dwrf::SparseColumn &out) const = 0;

    void
    apply(dwrf::RowBatch &batch, TransformStats &stats) const override
    {
        const dwrf::SparseColumn *a = batch.findSparse(spec_.inputs[0]);
        const dwrf::SparseColumn *b = batch.findSparse(spec_.inputs[1]);
        if (!a || !b)
            return;
        dwrf::SparseColumn out;
        out.id = spec_.output;
        out.offsets.assign(batch.rows + 1, 0);
        out.values.reserve(a->values.size());
        uint64_t consumed = 0;
        for (uint32_t r = 0; r < batch.rows; ++r) {
            uint32_t alo = a->offsets[r];
            uint32_t alen = a->offsets[r + 1] - alo;
            uint32_t blo = b->offsets[r];
            uint32_t blen = b->offsets[r + 1] - blo;
            consumed += alen + blen;
            mapLists(a->values.data() + alo, alen,
                     b->values.data() + blo, blen, out);
            out.offsets[r + 1] =
                static_cast<uint32_t>(out.values.size());
        }
        account(stats, consumed, out.values.size());
        batch.sparse.push_back(std::move(out));
    }
};

class CartesianOp : public SparseBinaryOp
{
  public:
    using SparseBinaryOp::SparseBinaryOp;

    void
    mapLists(const int64_t *a, uint32_t alen, const int64_t *b,
             uint32_t blen, dwrf::SparseColumn &out) const override
    {
        uint64_t cap = spec_.u0 > 0 ? spec_.u0 : 128;
        uint64_t emitted = 0;
        for (uint32_t i = 0; i < alen && emitted < cap; ++i) {
            for (uint32_t j = 0; j < blen && emitted < cap; ++j) {
                uint64_t h = sigridHash64(
                    static_cast<uint64_t>(a[i]),
                    static_cast<uint64_t>(b[j]) ^ spec_.u1);
                out.values.push_back(static_cast<int64_t>(h >> 1));
                ++emitted;
            }
        }
    }
};

class IdListTransformOp : public SparseBinaryOp
{
  public:
    using SparseBinaryOp::SparseBinaryOp;

    void
    mapLists(const int64_t *a, uint32_t alen, const int64_t *b,
             uint32_t blen, dwrf::SparseColumn &out) const override
    {
        // Intersection of the two id lists, preserving a's order.
        std::unordered_set<int64_t> bset(b, b + blen);
        std::unordered_set<int64_t> emitted;
        for (uint32_t i = 0; i < alen; ++i) {
            if (bset.count(a[i]) && emitted.insert(a[i]).second)
                out.values.push_back(a[i]);
        }
    }
};

/** Batch-level random row sampling (keep rate p0, salt u0). */
class SamplingOp : public TransformBase
{
  public:
    using TransformBase::TransformBase;

    void
    apply(dwrf::RowBatch &batch, TransformStats &stats) const override
    {
        stats.rows_in += batch.rows;
        std::vector<uint32_t> keep;
        keep.reserve(batch.rows);
        for (uint32_t r = 0; r < batch.rows; ++r) {
            uint64_t h = sigridHash64(sample_counter_ + r, spec_.u0);
            double u = static_cast<double>(h >> 11) * 0x1.0p-53;
            if (u < spec_.p0)
                keep.push_back(r);
        }
        sample_counter_ += batch.rows;

        dwrf::RowBatch out;
        out.rows = static_cast<uint32_t>(keep.size());
        out.labels.reserve(keep.size());
        for (uint32_t r : keep)
            out.labels.push_back(batch.labels.empty() ? 0.0f
                                                      : batch.labels[r]);
        for (const auto &col : batch.dense) {
            dwrf::DenseColumn c;
            c.id = col.id;
            c.present.assign((out.rows + 7) / 8, 0);
            c.values.assign(out.rows, 0.0f);
            for (uint32_t i = 0; i < out.rows; ++i) {
                if (col.isPresent(keep[i])) {
                    c.setPresent(i);
                    c.values[i] = col.values[keep[i]];
                }
            }
            out.dense.push_back(std::move(c));
        }
        for (const auto &col : batch.sparse) {
            dwrf::SparseColumn c;
            c.id = col.id;
            c.offsets.assign(out.rows + 1, 0);
            uint32_t kept_values = 0;
            for (uint32_t i = 0; i < out.rows; ++i)
                kept_values += col.offsets[keep[i] + 1] -
                               col.offsets[keep[i]];
            c.values.reserve(kept_values);
            if (!col.scores.empty())
                c.scores.reserve(kept_values);
            for (uint32_t i = 0; i < out.rows; ++i) {
                uint32_t lo = col.offsets[keep[i]];
                uint32_t hi = col.offsets[keep[i] + 1];
                c.values.insert(c.values.end(),
                                col.values.begin() + lo,
                                col.values.begin() + hi);
                if (!col.scores.empty()) {
                    c.scores.insert(c.scores.end(),
                                    col.scores.begin() + lo,
                                    col.scores.begin() + hi);
                }
                c.offsets[i + 1] =
                    static_cast<uint32_t>(c.values.size());
            }
            out.sparse.push_back(std::move(c));
        }
        account(stats, batch.rows, out.rows);
        stats.rows_out += out.rows;
        batch = std::move(out);
    }

  private:
    mutable uint64_t sample_counter_ = 0;
};

void
requireInputs(const TransformSpec &spec, size_t n)
{
    dsi_assert(spec.inputs.size() == n,
               "%s expects %zu inputs, got %zu",
               opKindName(spec.kind), n, spec.inputs.size());
}

} // namespace

std::unique_ptr<Transform>
compileTransform(const TransformSpec &spec)
{
    switch (spec.kind) {
      case OpKind::Cartesian:
        requireInputs(spec, 2);
        return std::make_unique<CartesianOp>(spec);
      case OpKind::Bucketize:
        requireInputs(spec, 1);
        return std::make_unique<BucketizeOp>(spec);
      case OpKind::ComputeScore:
        requireInputs(spec, 1);
        return std::make_unique<ComputeScoreOp>(spec);
      case OpKind::Enumerate:
        requireInputs(spec, 1);
        return std::make_unique<EnumerateOp>(spec);
      case OpKind::PositiveModulus:
        requireInputs(spec, 1);
        return std::make_unique<PositiveModulusOp>(spec);
      case OpKind::IdListTransform:
        requireInputs(spec, 2);
        return std::make_unique<IdListTransformOp>(spec);
      case OpKind::BoxCox:
        requireInputs(spec, 1);
        return std::make_unique<BoxCoxOp>(spec);
      case OpKind::Logit:
        requireInputs(spec, 1);
        return std::make_unique<LogitOp>(spec);
      case OpKind::MapId:
        requireInputs(spec, 1);
        return std::make_unique<MapIdOp>(spec);
      case OpKind::FirstX:
        requireInputs(spec, 1);
        return std::make_unique<FirstXOp>(spec);
      case OpKind::GetLocalHour:
        requireInputs(spec, 1);
        return std::make_unique<GetLocalHourOp>(spec);
      case OpKind::SigridHash:
        requireInputs(spec, 1);
        return std::make_unique<SigridHashOp>(spec);
      case OpKind::NGram:
        requireInputs(spec, 1);
        return std::make_unique<NGramOp>(spec);
      case OpKind::Onehot:
        requireInputs(spec, 1);
        return std::make_unique<OnehotOp>(spec);
      case OpKind::Clamp:
        requireInputs(spec, 1);
        return std::make_unique<ClampOp>(spec);
      case OpKind::Sampling:
        requireInputs(spec, 0);
        return std::make_unique<SamplingOp>(spec);
    }
    dsi_panic("unknown op kind %d", static_cast<int>(spec.kind));
}

} // namespace dsi::transforms
