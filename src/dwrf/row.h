/**
 * @file
 * Training-sample data model.
 *
 * A sample (table row) is a label plus dense features (feature id ->
 * float) and sparse features (feature id -> variable-length list of
 * categorical ids, optionally with parallel float scores), exactly the
 * map-column schema of Section III-A2.
 *
 * RowBatch is the columnar in-memory "flatmap" representation
 * (Section VII): per-feature contiguous values across rows, matching
 * both the on-disk flattened layout and the tensor layout so that
 * extract and load avoid per-row format conversions.
 */

#ifndef DSI_DWRF_ROW_H
#define DSI_DWRF_ROW_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dsi::dwrf {

/** One sparse feature of a row. */
struct SparseFeature
{
    FeatureId id = 0;
    std::vector<int64_t> values;
    std::vector<float> scores; ///< empty, or parallel to `values`

    bool scored() const { return !scores.empty(); }
};

/** One dense feature of a row. */
struct DenseFeature
{
    FeatureId id = 0;
    float value = 0.0f;
};

/** A training sample in row (write-path) form. */
struct Row
{
    float label = 0.0f;
    std::vector<DenseFeature> dense;
    std::vector<SparseFeature> sparse;

    /** Approximate in-memory payload size of the row. */
    Bytes payloadBytes() const
    {
        Bytes b = sizeof(float);
        b += dense.size() * (sizeof(FeatureId) + sizeof(float));
        for (const auto &s : sparse) {
            b += sizeof(FeatureId);
            b += s.values.size() * sizeof(int64_t);
            b += s.scores.size() * sizeof(float);
        }
        return b;
    }
};

/** Columnar dense feature: one value slot per row plus a present bitmap. */
struct DenseColumn
{
    FeatureId id = 0;
    std::vector<uint8_t> present; ///< bitmap, (rows+7)/8 bytes
    std::vector<float> values;    ///< size == rows; 0.0f where absent

    bool isPresent(uint32_t row) const
    {
        return (present[row >> 3] >> (row & 7)) & 1;
    }
    void setPresent(uint32_t row)
    {
        present[row >> 3] |= static_cast<uint8_t>(1u << (row & 7));
    }
};

/** Columnar sparse feature: CSR-style offsets into flat value arrays. */
struct SparseColumn
{
    FeatureId id = 0;
    std::vector<uint32_t> offsets; ///< size == rows + 1
    std::vector<int64_t> values;
    std::vector<float> scores;     ///< empty or parallel to `values`

    uint32_t length(uint32_t row) const
    {
        return offsets[row + 1] - offsets[row];
    }
};

/** A decoded mini-batch in flatmap (columnar) form. */
struct RowBatch
{
    uint32_t rows = 0;
    std::vector<float> labels;
    std::vector<DenseColumn> dense;
    std::vector<SparseColumn> sparse;

    const DenseColumn *findDense(FeatureId id) const
    {
        for (const auto &c : dense)
            if (c.id == id)
                return &c;
        return nullptr;
    }
    const SparseColumn *findSparse(FeatureId id) const
    {
        for (const auto &c : sparse)
            if (c.id == id)
                return &c;
        return nullptr;
    }

    /** Payload bytes held by the batch (uncompressed). */
    Bytes payloadBytes() const
    {
        Bytes b = labels.size() * sizeof(float);
        for (const auto &c : dense)
            b += c.values.size() * sizeof(float) + c.present.size();
        for (const auto &c : sparse) {
            b += c.offsets.size() * sizeof(uint32_t);
            b += c.values.size() * sizeof(int64_t);
            b += c.scores.size() * sizeof(float);
        }
        return b;
    }

    /**
     * Heap bytes *retained* by the batch: vector capacities, not
     * sizes. This is what a pooled batch keeps alive between reuses
     * (recycled columns keep their capacity), so it is the measure
     * the ObjectPool's retained-bytes cap accounts against.
     */
    Bytes heapBytes() const
    {
        Bytes b = labels.capacity() * sizeof(float);
        b += dense.capacity() * sizeof(DenseColumn);
        b += sparse.capacity() * sizeof(SparseColumn);
        for (const auto &c : dense) {
            b += c.values.capacity() * sizeof(float) +
                 c.present.capacity();
        }
        for (const auto &c : sparse) {
            b += c.offsets.capacity() * sizeof(uint32_t);
            b += c.values.capacity() * sizeof(int64_t);
            b += c.scores.capacity() * sizeof(float);
        }
        return b;
    }

    /** Convert back to row form (used by tests and the row baseline). */
    std::vector<Row> toRows() const;
};

/** Build a columnar batch from rows (the write path's pivot). */
RowBatch batchFromRows(const std::vector<Row> &rows);

/** Columnar slice of `count` rows starting at `start`. */
RowBatch sliceBatch(const RowBatch &batch, uint32_t start,
                    uint32_t count);

} // namespace dsi::dwrf

#endif // DSI_DWRF_ROW_H
