#include "cipher.h"

#include "common/rng.h"

namespace dsi::dwrf {

void
StreamCipher::apply(uint64_t nonce, Buffer &data) const
{
    Rng keystream(key_ ^ (nonce * 0x9e3779b97f4a7c15ULL));
    size_t i = 0;
    while (i + 8 <= data.size()) {
        uint64_t ks = keystream.next();
        for (int b = 0; b < 8; ++b)
            data[i + b] ^= static_cast<uint8_t>(ks >> (8 * b));
        i += 8;
    }
    if (i < data.size()) {
        uint64_t ks = keystream.next();
        for (int b = 0; i < data.size(); ++i, ++b)
            data[i] ^= static_cast<uint8_t>(ks >> (8 * b));
    }
}

} // namespace dsi::dwrf
