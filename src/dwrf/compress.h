/**
 * @file
 * Block compression for DWRF streams.
 *
 * Production DWRF compresses each stream (zstd in Meta's fleet). We
 * implement an LZ4-style byte-oriented LZ77 codec from scratch — fast,
 * dependency-free, and with realistic (~1.5-2.5x on feature data)
 * ratios so the compressed-vs-uncompressed byte flows of Table IX have
 * the right shape.
 */

#ifndef DSI_DWRF_COMPRESS_H
#define DSI_DWRF_COMPRESS_H

#include <cstdint>
#include <optional>

#include "dwrf/encoding.h"

namespace dsi::dwrf {

/** Stream compression codec identifier (stored in file footers). */
enum class Codec : uint8_t
{
    None = 0, ///< store raw bytes
    Lz = 1,   ///< hash-chain LZ77, LZ4-like token format
};

/**
 * Compress `in` with `codec`, appending to `out`. The output is a
 * self-describing block: callers only need the same codec to decode.
 */
void compress(Codec codec, ByteSpan in, Buffer &out);

/**
 * Decompress a block produced by compress(). Returns std::nullopt on
 * malformed input.
 */
std::optional<Buffer> decompress(Codec codec, ByteSpan in);

} // namespace dsi::dwrf

#endif // DSI_DWRF_COMPRESS_H
