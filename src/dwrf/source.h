/**
 * @file
 * Byte-addressed IO abstraction between the DWRF reader and whatever
 * holds the file bytes (an in-memory buffer in tests, a Tectonic file
 * spread over storage nodes in the full pipeline). Every read is
 * recorded in an IoTrace so experiments can report IO-size
 * distributions (Table VI) and storage-node IOPS.
 */

#ifndef DSI_DWRF_SOURCE_H
#define DSI_DWRF_SOURCE_H

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/fault.h"
#include "common/stats.h"
#include "common/types.h"
#include "dwrf/encoding.h"

namespace dsi::dwrf {

/** One recorded IO. */
struct IoRecord
{
    Bytes offset;
    Bytes length;
};

/**
 * Accumulates the IOs issued against a source. Sources are shared by
 * concurrent extract threads (and the hedge pool), so every method is
 * mutex-guarded; record() is a push_back under an uncontended lock,
 * negligible next to the IO it annotates.
 */
class IoTrace
{
  public:
    IoTrace() = default;

    void record(Bytes offset, Bytes length)
    {
        std::scoped_lock lock(mutex_);
        records_.push_back({offset, length});
        total_bytes_ += length;
    }

    /** Snapshot of the recorded IOs. */
    std::vector<IoRecord> records() const
    {
        std::scoped_lock lock(mutex_);
        return records_;
    }

    uint64_t count() const
    {
        std::scoped_lock lock(mutex_);
        return records_.size();
    }

    Bytes totalBytes() const
    {
        std::scoped_lock lock(mutex_);
        return total_bytes_;
    }

    /** Size distribution over all recorded IOs. */
    PercentileSampler sizeDistribution() const
    {
        std::scoped_lock lock(mutex_);
        PercentileSampler p;
        p.reserve(records_.size());
        for (const auto &r : records_)
            p.add(static_cast<double>(r.length));
        return p;
    }

    void clear()
    {
        std::scoped_lock lock(mutex_);
        records_.clear();
        total_bytes_ = 0;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<IoRecord> records_;
    Bytes total_bytes_ = 0;
};

/**
 * Outcome of a checked source read. Sources that model partial
 * failure (replicas down, injected faults) report Unavailable instead
 * of aborting; callers retry or surface the error upward.
 */
enum class IoStatus
{
    Ok,
    Unavailable,
};

/** Read-only random access to stored file bytes. */
class RandomAccessSource
{
  public:
    virtual ~RandomAccessSource() = default;

    virtual Bytes size() const = 0;

    /**
     * Read `len` bytes at `offset` into `out` (resized by the callee).
     * Implementations must record the IO in their trace.
     */
    virtual void read(Bytes offset, Bytes len, Buffer &out) const = 0;

    /**
     * Failure-aware variant of read(): returns Unavailable when the
     * bytes cannot be served (all replicas of a block down, injected
     * IO error) rather than asserting. The default forwards to
     * read(), which for simple sources cannot fail, and honors the
     * generic source.read fault points so corruption/unavailability
     * can be injected against any source.
     */
    virtual IoStatus readChecked(Bytes offset, Bytes len,
                                 Buffer &out) const
    {
        if (faultPoint(faults::kSourceReadError)) {
            out.clear();
            return IoStatus::Unavailable;
        }
        read(offset, len, out);
        if (!out.empty() && faultPoint(faults::kSourceReadCorrupt))
            out[out.size() / 2] ^= 0xff; // bit-rot mid-read
        return IoStatus::Ok;
    }

    /**
     * Downstream integrity feedback: the reader verified a stream
     * fetched from [offset, offset + len) against its footer CRC and
     * it did not match — some replica served rotten bytes. Sources
     * backed by replicated storage audit the replicas of the covered
     * blocks, quarantine any corrupt copy, and enqueue read-repair;
     * simple sources ignore it.
     */
    virtual void reportCorruption(Bytes offset, Bytes len) const
    {
        (void)offset;
        (void)len;
    }

    /** Trace of IOs issued so far. */
    virtual const IoTrace &trace() const = 0;
    virtual void clearTrace() = 0;
};

/** In-memory source for tests and single-process pipelines. */
class MemorySource : public RandomAccessSource
{
  public:
    explicit MemorySource(Buffer data) : data_(std::move(data)) {}

    Bytes size() const override { return data_.size(); }

    void read(Bytes offset, Bytes len, Buffer &out) const override;

    const IoTrace &trace() const override { return trace_; }
    void clearTrace() override { trace_.clear(); }

  private:
    Buffer data_;
    mutable IoTrace trace_;
};

} // namespace dsi::dwrf

#endif // DSI_DWRF_SOURCE_H
