#include "writer.h"

#include "dwrf/checksum.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace dsi::dwrf {

FileWriter::FileWriter(WriterOptions options)
    : options_(std::move(options)), cipher_(options_.cipher_key)
{
    dsi_assert(options_.rows_per_stripe > 0,
               "rows_per_stripe must be positive");
    footer_.codec = options_.codec;
    footer_.encrypted = options_.encrypt;
    footer_.flattened = options_.flatten;
}

void
FileWriter::append(const Row &row)
{
    dsi_assert(!finished_, "append after finish");
    pending_.push_back(row);
    if (pending_.size() >= options_.rows_per_stripe)
        flushStripe();
}

void
FileWriter::appendRows(const std::vector<Row> &rows)
{
    for (const auto &r : rows)
        append(r);
}

void
FileWriter::writeStreamTo(std::vector<StreamInfo> &sink,
                          FeatureId feature, StreamKind kind,
                          const Buffer &raw, uint64_t value_count)
{
    Buffer stored;
    compress(options_.codec, raw, stored);
    Bytes offset = file_.size();
    if (options_.encrypt)
        cipher_.apply(offset, stored);
    uint32_t checksum = crc32(stored);
    file_.insert(file_.end(), stored.begin(), stored.end());
    sink.push_back({feature, kind, offset, stored.size(), raw.size(),
                    checksum, value_count});
}

void
FileWriter::writeStream(StripeInfo &stripe, FeatureId feature,
                        StreamKind kind, const Buffer &raw,
                        uint64_t value_count)
{
    writeStreamTo(stripe.streams, feature, kind, raw, value_count);
}

std::vector<size_t>
FileWriter::placementOrder(const RowBatch &batch, bool dense) const
{
    size_t n = dense ? batch.dense.size() : batch.sparse.size();
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    if (options_.popularity_order.empty())
        return order; // columns are already in feature-id order

    std::map<FeatureId, size_t> rank;
    for (size_t i = 0; i < options_.popularity_order.size(); ++i)
        rank.emplace(options_.popularity_order[i], i);
    auto rank_of = [&](FeatureId id) {
        auto it = rank.find(id);
        // Unlisted features sort after all listed ones, by id.
        return it == rank.end()
            ? rank.size() + static_cast<size_t>(id)
            : it->second;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         FeatureId ida = dense ? batch.dense[a].id
                                               : batch.sparse[a].id;
                         FeatureId idb = dense ? batch.dense[b].id
                                               : batch.sparse[b].id;
                         return rank_of(ida) < rank_of(idb);
                     });
    return order;
}

void
FileWriter::flushStripe()
{
    if (pending_.empty())
        return;

    StripeInfo stripe;
    stripe.first_row = rows_flushed_;
    stripe.rows = static_cast<uint32_t>(pending_.size());
    stripe.offset = file_.size();

    if (!options_.flatten) {
        // Legacy map-column blob: the entire stripe row-wise.
        Buffer raw;
        for (const auto &row : pending_) {
            putFloat(raw, row.label);
            putVarint(raw, row.dense.size());
            for (const auto &d : row.dense) {
                putVarint(raw, d.id);
                putFloat(raw, d.value);
            }
            putVarint(raw, row.sparse.size());
            for (const auto &s : row.sparse) {
                putVarint(raw, s.id);
                putVarint(raw, s.values.size());
                for (int64_t v : s.values)
                    putSignedVarint(raw, v);
                raw.push_back(s.scored() ? 1 : 0);
                for (float sc : s.scores)
                    putFloat(raw, sc);
            }
        }
        writeStream(stripe, kNoFeature, StreamKind::MapBlob, raw,
                    stripe.rows);
    } else {
        RowBatch batch = batchFromRows(pending_);

        // Labels first.
        Buffer labels_raw;
        for (float v : batch.labels)
            putFloat(labels_raw, v);
        writeStream(stripe, kNoFeature, StreamKind::Labels,
                    labels_raw, batch.labels.size());

        // Dense feature streams in placement order.
        for (size_t idx : placementOrder(batch, /*dense=*/true)) {
            const auto &col = batch.dense[idx];
            Buffer present_raw(col.present.begin(), col.present.end());
            writeStream(stripe, col.id, StreamKind::DensePresent,
                        present_raw, batch.rows);
            Buffer values_raw;
            uint64_t present_count = 0;
            for (uint32_t r = 0; r < batch.rows; ++r) {
                if (col.isPresent(r)) {
                    putFloat(values_raw, col.values[r]);
                    ++present_count;
                }
            }
            writeStream(stripe, col.id, StreamKind::DenseValues,
                        values_raw, present_count);
        }

        // Sparse feature streams in placement order. With dedup on,
        // the lengths/values/scores triple collapses into a single
        // reference-code stream against the feature's shared
        // dictionary (dwrf/dedup.h).
        for (size_t idx : placementOrder(batch, /*dense=*/false)) {
            const auto &col = batch.sparse[idx];
            if (options_.dedup) {
                auto [it, inserted] = dicts_.try_emplace(
                    col.id, options_.dedup_limits);
                (void)inserted;
                ListDictColumnEncode enc = encodeListDictColumn(
                    col, batch.rows, it->second);
                writeStream(stripe, col.id,
                            StreamKind::SparseListDict, enc.stream,
                            batch.rows);
                ++dedup_stats_.dedup_columns;
                dedup_stats_.lists_referenced += enc.dict_refs;
                dedup_stats_.lists_inline += enc.inline_lists;
                continue;
            }
            std::vector<int64_t> lengths(batch.rows);
            for (uint32_t r = 0; r < batch.rows; ++r)
                lengths[r] = col.length(r);
            Buffer lengths_raw;
            rleEncode(lengths, lengths_raw);
            writeStream(stripe, col.id, StreamKind::SparseLengths,
                        lengths_raw, batch.rows);

            Buffer values_raw;
            encodeValues(col.values, values_raw);
            writeStream(stripe, col.id, StreamKind::SparseValues,
                        values_raw, col.values.size());

            if (!col.scores.empty()) {
                Buffer scores_raw;
                for (float sc : col.scores)
                    putFloat(scores_raw, sc);
                writeStream(stripe, col.id, StreamKind::SparseScores,
                            scores_raw, col.scores.size());
            }
        }
    }

    stripe.length = file_.size() - stripe.offset;
    rows_flushed_ += stripe.rows;
    footer_.stripes.push_back(std::move(stripe));
    pending_.clear();
}

Buffer
FileWriter::finish()
{
    dsi_assert(!finished_, "finish called twice");
    flushStripe();
    finished_ = true;
    footer_.total_rows = rows_flushed_;

    // Shared list dictionaries live after the last stripe, before the
    // footer that indexes them.
    for (const auto &[feature, dict] : dicts_) {
        if (dict.size() == 0)
            continue;
        writeStreamTo(footer_.shared_dicts, feature,
                      StreamKind::SharedListDict, dict.encode(),
                      dict.size());
        dedup_stats_.dict_entries += dict.size();
        dedup_stats_.dict_stream_bytes +=
            footer_.shared_dicts.back().length;
    }

    Buffer footer_bytes = footer_.serialize();
    file_.insert(file_.end(), footer_bytes.begin(), footer_bytes.end());
    putU64(file_, footer_bytes.size());
    putU32(file_, kFileMagic);
    return std::move(file_);
}

} // namespace dsi::dwrf
