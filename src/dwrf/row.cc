#include "row.h"

#include <algorithm>
#include <map>

namespace dsi::dwrf {

RowBatch
batchFromRows(const std::vector<Row> &rows)
{
    RowBatch batch;
    batch.rows = static_cast<uint32_t>(rows.size());
    batch.labels.reserve(rows.size());
    for (const auto &r : rows)
        batch.labels.push_back(r.label);

    // Discover the feature set (ordered by id for determinism).
    std::map<FeatureId, size_t> dense_idx;
    std::map<FeatureId, size_t> sparse_idx;
    for (const auto &r : rows) {
        for (const auto &d : r.dense)
            dense_idx.emplace(d.id, 0);
        for (const auto &s : r.sparse)
            sparse_idx.emplace(s.id, 0);
    }
    const uint32_t n = batch.rows;
    batch.dense.reserve(dense_idx.size());
    for (auto &[id, idx] : dense_idx) {
        idx = batch.dense.size();
        DenseColumn col;
        col.id = id;
        col.present.assign((n + 7) / 8, 0);
        col.values.assign(n, 0.0f);
        batch.dense.push_back(std::move(col));
    }
    batch.sparse.reserve(sparse_idx.size());
    for (auto &[id, idx] : sparse_idx) {
        idx = batch.sparse.size();
        SparseColumn col;
        col.id = id;
        col.offsets.assign(n + 1, 0);
        batch.sparse.push_back(std::move(col));
    }

    // Fill dense values.
    for (uint32_t row = 0; row < n; ++row) {
        for (const auto &d : rows[row].dense) {
            auto &col = batch.dense[dense_idx[d.id]];
            col.values[row] = d.value;
            col.setPresent(row);
        }
    }

    // Fill sparse lengths, then prefix-sum into offsets, then values.
    for (uint32_t row = 0; row < n; ++row) {
        for (const auto &s : rows[row].sparse) {
            auto &col = batch.sparse[sparse_idx[s.id]];
            col.offsets[row + 1] =
                static_cast<uint32_t>(s.values.size());
        }
    }
    for (auto &col : batch.sparse) {
        for (uint32_t row = 0; row < n; ++row)
            col.offsets[row + 1] += col.offsets[row];
        col.values.assign(col.offsets[n], 0);
    }
    std::vector<bool> col_scored(batch.sparse.size(), false);
    for (uint32_t row = 0; row < n; ++row) {
        for (const auto &s : rows[row].sparse) {
            size_t ci = sparse_idx[s.id];
            auto &col = batch.sparse[ci];
            uint32_t off = col.offsets[row];
            std::copy(s.values.begin(), s.values.end(),
                      col.values.begin() + off);
            if (s.scored())
                col_scored[ci] = true;
        }
    }
    for (size_t ci = 0; ci < batch.sparse.size(); ++ci) {
        if (!col_scored[ci])
            continue;
        auto &col = batch.sparse[ci];
        col.scores.assign(col.values.size(), 0.0f);
    }
    for (uint32_t row = 0; row < n; ++row) {
        for (const auto &s : rows[row].sparse) {
            if (!s.scored())
                continue;
            auto &col = batch.sparse[sparse_idx[s.id]];
            uint32_t off = col.offsets[row];
            std::copy(s.scores.begin(), s.scores.end(),
                      col.scores.begin() + off);
        }
    }
    return batch;
}

RowBatch
sliceBatch(const RowBatch &batch, uint32_t start, uint32_t count)
{
    RowBatch out;
    if (start >= batch.rows)
        return out;
    count = std::min(count, batch.rows - start);
    out.rows = count;
    if (!batch.labels.empty()) {
        out.labels.assign(batch.labels.begin() + start,
                          batch.labels.begin() + start + count);
    }
    for (const auto &col : batch.dense) {
        DenseColumn c;
        c.id = col.id;
        c.present.assign((count + 7) / 8, 0);
        c.values.assign(count, 0.0f);
        for (uint32_t r = 0; r < count; ++r) {
            if (col.isPresent(start + r)) {
                c.setPresent(r);
                c.values[r] = col.values[start + r];
            }
        }
        out.dense.push_back(std::move(c));
    }
    for (const auto &col : batch.sparse) {
        SparseColumn c;
        c.id = col.id;
        c.offsets.assign(count + 1, 0);
        uint32_t lo = col.offsets[start];
        uint32_t hi = col.offsets[start + count];
        c.values.assign(col.values.begin() + lo,
                        col.values.begin() + hi);
        if (!col.scores.empty()) {
            c.scores.assign(col.scores.begin() + lo,
                            col.scores.begin() + hi);
        }
        for (uint32_t r = 0; r <= count; ++r)
            c.offsets[r] = col.offsets[start + r] - lo;
        out.sparse.push_back(std::move(c));
    }
    return out;
}

std::vector<Row>
RowBatch::toRows() const
{
    std::vector<Row> out(rows);
    for (uint32_t r = 0; r < rows; ++r)
        out[r].label = labels[r];
    for (const auto &c : dense) {
        for (uint32_t r = 0; r < rows; ++r) {
            if (c.isPresent(r))
                out[r].dense.push_back({c.id, c.values[r]});
        }
    }
    for (const auto &c : sparse) {
        for (uint32_t r = 0; r < rows; ++r) {
            uint32_t lo = c.offsets[r];
            uint32_t hi = c.offsets[r + 1];
            if (lo == hi)
                continue;
            SparseFeature f;
            f.id = c.id;
            f.values.assign(c.values.begin() + lo,
                            c.values.begin() + hi);
            if (!c.scores.empty()) {
                f.scores.assign(c.scores.begin() + lo,
                                c.scores.begin() + hi);
            }
            out[r].sparse.push_back(std::move(f));
        }
    }
    return out;
}

} // namespace dsi::dwrf
