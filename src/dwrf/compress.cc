#include "compress.h"

#include <cstring>

#include "common/logging.h"

namespace dsi::dwrf {

namespace {

// LZ token format (LZ4-flavoured):
//   <varint literal_len> <literals> <varint match_len> <varint offset>
// A match_len of 0 terminates only at end-of-input (no match emitted).
// Matches are at least kMinMatch bytes; offset is distance back into
// the already-decoded output.
constexpr size_t kMinMatch = 4;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1 << kHashBits;
constexpr size_t kMaxOffset = 0xffff;

inline uint32_t
hash4(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

void
lzCompress(ByteSpan in, Buffer &out)
{
    const size_t n = in.size();
    putVarint(out, n); // uncompressed size header
    if (n == 0)
        return;

    std::vector<int64_t> table(kHashSize, -1);
    size_t pos = 0;
    size_t lit_start = 0;

    auto emit = [&](size_t lit_end, size_t match_len, size_t offset) {
        putVarint(out, lit_end - lit_start);
        out.insert(out.end(), in.begin() + lit_start,
                   in.begin() + lit_end);
        putVarint(out, match_len);
        if (match_len > 0)
            putVarint(out, offset);
        lit_start = lit_end + match_len;
    };

    while (pos + kMinMatch <= n) {
        uint32_t h = hash4(&in[pos]);
        int64_t cand = table[h];
        table[h] = static_cast<int64_t>(pos);

        if (cand >= 0 &&
            pos - static_cast<size_t>(cand) <= kMaxOffset &&
            std::memcmp(&in[cand], &in[pos], kMinMatch) == 0) {
            size_t match_len = kMinMatch;
            while (pos + match_len < n &&
                   in[cand + match_len] == in[pos + match_len]) {
                ++match_len;
            }
            emit(pos, match_len, pos - static_cast<size_t>(cand));
            // Re-index a couple of positions inside the match to keep
            // the table warm without the full O(n) insert cost.
            size_t end = pos + match_len;
            for (size_t p = pos + 1; p < end && p + kMinMatch <= n;
                 p += match_len >= 64 ? 16 : 1) {
                table[hash4(&in[p])] = static_cast<int64_t>(p);
            }
            pos = end;
        } else {
            ++pos;
        }
    }
    // Trailing literals.
    if (lit_start < n)
        emit(n, 0, 0);
}

std::optional<Buffer>
lzDecompress(ByteSpan in)
{
    size_t pos = 0;
    uint64_t out_size;
    if (!getVarint(in, pos, out_size))
        return std::nullopt;
    Buffer out;
    out.reserve(out_size);

    while (out.size() < out_size) {
        uint64_t lit_len;
        if (!getVarint(in, pos, lit_len))
            return std::nullopt;
        if (pos + lit_len > in.size() ||
            out.size() + lit_len > out_size) {
            return std::nullopt;
        }
        out.insert(out.end(), in.begin() + pos,
                   in.begin() + pos + lit_len);
        pos += lit_len;
        if (out.size() == out_size)
            break;

        uint64_t match_len;
        if (!getVarint(in, pos, match_len))
            return std::nullopt;
        if (match_len == 0)
            continue;
        uint64_t offset;
        if (!getVarint(in, pos, offset))
            return std::nullopt;
        if (offset == 0 || offset > out.size() ||
            out.size() + match_len > out_size) {
            return std::nullopt;
        }
        // Byte-by-byte copy: matches may self-overlap (RLE-style).
        size_t src = out.size() - offset;
        for (uint64_t k = 0; k < match_len; ++k)
            out.push_back(out[src + k]);
    }
    return out;
}

} // namespace

void
compress(Codec codec, ByteSpan in, Buffer &out)
{
    switch (codec) {
      case Codec::None:
        putVarint(out, in.size());
        out.insert(out.end(), in.begin(), in.end());
        return;
      case Codec::Lz:
        lzCompress(in, out);
        return;
    }
    dsi_panic("unknown codec %d", static_cast<int>(codec));
}

std::optional<Buffer>
decompress(Codec codec, ByteSpan in)
{
    switch (codec) {
      case Codec::None: {
        size_t pos = 0;
        uint64_t n;
        if (!getVarint(in, pos, n) || pos + n != in.size())
            return std::nullopt;
        return Buffer(in.begin() + pos, in.end());
      }
      case Codec::Lz:
        return lzDecompress(in);
    }
    dsi_panic("unknown codec %d", static_cast<int>(codec));
}

} // namespace dsi::dwrf
