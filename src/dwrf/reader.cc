#include "reader.h"

#include "dwrf/checksum.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_set>

#include "common/logging.h"

namespace dsi::dwrf {

std::vector<PlannedIo>
planStripeReads(const StripeInfo &stripe,
                const std::vector<size_t> &wanted, bool coalesce,
                Bytes coalesce_gap)
{
    std::vector<size_t> order = wanted;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return stripe.streams[a].offset < stripe.streams[b].offset;
    });

    std::vector<PlannedIo> plan;
    for (size_t idx : order) {
        const auto &s = stripe.streams[idx];
        if (coalesce && !plan.empty()) {
            auto &last = plan.back();
            Bytes last_end = last.offset + last.length;
            dsi_assert(s.offset >= last.offset,
                       "streams not sorted by offset");
            if (s.offset <= last_end + coalesce_gap) {
                Bytes new_end = std::max(last_end, s.offset + s.length);
                last.length = new_end - last.offset;
                last.stream_indices.push_back(idx);
                continue;
            }
        }
        plan.push_back({s.offset, s.length, {idx}});
    }
    return plan;
}

FileReader::FileReader(const RandomAccessSource &source,
                       ReadOptions options)
    : source_(source), options_(std::move(options)),
      cipher_(options_.cipher_key),
      backoff_(BackoffOptions{.base_us = options_.retry_backoff_us,
                              .cap_us = options_.retry_backoff_cap_us})
{
    // Fetch the tail, then the footer it points at. An unreadable
    // footer leaves the reader invalid (recoverable) rather than
    // aborting.
    Bytes file_size = source_.size();
    if (file_size < kTailBytes)
        return;
    Buffer tail;
    if (source_.readChecked(file_size - kTailBytes, kTailBytes, tail) !=
        IoStatus::Ok) {
        return;
    }
    size_t pos = 0;
    uint64_t footer_len;
    uint32_t magic;
    if (!getU64(tail, pos, footer_len) || !getU32(tail, pos, magic) ||
        magic != kFileMagic ||
        footer_len + kTailBytes > file_size) {
        return;
    }
    Buffer footer_bytes;
    if (source_.readChecked(file_size - kTailBytes - footer_len,
                            footer_len, footer_bytes) != IoStatus::Ok) {
        return;
    }
    footer_ = FileFooter::deserialize(footer_bytes);
}

std::vector<size_t>
FileReader::selectStreams(const StripeInfo &stripe) const
{
    std::vector<size_t> wanted;
    if (options_.projection.empty()) {
        wanted.resize(stripe.streams.size());
        for (size_t i = 0; i < wanted.size(); ++i)
            wanted[i] = i;
        return wanted;
    }
    std::unordered_set<FeatureId> proj(options_.projection.begin(),
                                       options_.projection.end());
    for (size_t i = 0; i < stripe.streams.size(); ++i) {
        const auto &s = stripe.streams[i];
        // Labels and map blobs are always needed; feature streams only
        // when projected.
        if (s.feature == kNoFeature || proj.count(s.feature))
            wanted.push_back(i);
    }
    return wanted;
}

Buffer
FileReader::fetchStream(const StripeInfo &stripe, size_t stream_idx,
                        const std::vector<PlannedIo> &plan,
                        const std::vector<Buffer> &io_data) const
{
    const auto &s = stripe.streams[stream_idx];
    for (size_t p = 0; p < plan.size(); ++p) {
        const auto &io = plan[p];
        if (s.offset >= io.offset &&
            s.offset + s.length <= io.offset + io.length) {
            Bytes rel = s.offset - io.offset;
            return Buffer(
                io_data[p].begin() + static_cast<ptrdiff_t>(rel),
                io_data[p].begin() +
                    static_cast<ptrdiff_t>(rel + s.length));
        }
    }
    dsi_panic("stream %zu not covered by IO plan", stream_idx);
}

ReadStatus
FileReader::readStripe(size_t stripe_index, RowBatch &out)
{
    trace::Span span(trace::spans::kReaderStripe,
                     trace_parent_ != trace::kNoSpan
                         ? trace_parent_
                         : trace::currentParent(),
                     stripe_index);
    // Storage reads issued below (RandomAccessSource::readChecked)
    // pick up this span through the ambient parent — readChecked's
    // virtual signature cannot carry a trace context.
    trace::ScopedParent ambient(span.id());

    if (deadline_.expired()) {
        ++stats_.deadline_expired;
        return ReadStatus::DeadlineExpired;
    }
    ReadStatus status = readStripeOnce(stripe_index, out);
    if (status == ReadStatus::Ok) {
        backoff_.reset();
        return status;
    }
    for (uint32_t retry = 0; retry < options_.max_stripe_retries;
         ++retry) {
        ++stats_.stripe_retries;
        trace::instant(trace::events::kReaderRetry, span.id(),
                       stripe_index, retry + 1);
        if (options_.retry_backoff_us > 0 &&
            !backoff_.sleep(deadline_)) {
            ++stats_.deadline_expired;
            return ReadStatus::DeadlineExpired;
        }
        if (deadline_.expired()) {
            ++stats_.deadline_expired;
            return ReadStatus::DeadlineExpired;
        }
        // A re-read rotates the replica choice in the source, so a
        // corrupt or failed replica is routed around.
        status = readStripeOnce(stripe_index, out);
        if (status == ReadStatus::Ok) {
            backoff_.reset();
            return status;
        }
    }
    return status;
}

RowBatch
FileReader::readStripe(size_t stripe_index)
{
    RowBatch batch;
    ReadStatus status = readStripe(stripe_index, batch);
    dsi_assert(status == ReadStatus::Ok,
               "stripe %zu unreadable after %u retries", stripe_index,
               options_.max_stripe_retries);
    return batch;
}

ReadStatus
FileReader::readStripeOnce(size_t stripe_index, RowBatch &out)
{
    dsi_assert(valid(), "reader is invalid");
    dsi_assert(stripe_index < footer_->stripes.size(),
               "stripe %zu out of range", stripe_index);
    const StripeInfo &stripe = footer_->stripes[stripe_index];
    recycleBatch(out);

    std::vector<size_t> wanted = selectStreams(stripe);
    auto plan = planStripeReads(stripe, wanted, options_.coalesce,
                                options_.coalesce_gap);

    std::vector<Buffer> io_data(plan.size());
    for (size_t p = 0; p < plan.size(); ++p) {
        if (source_.readChecked(plan[p].offset, plan[p].length,
                                io_data[p]) != IoStatus::Ok) {
            ++stats_.io_errors;
            return ReadStatus::IoError;
        }
        stats_.bytes_read += plan[p].length;
        ++stats_.ios;
    }
    for (size_t idx : wanted)
        stats_.bytes_needed += stripe.streams[idx].length;

    return footer_->flattened
        ? decodeFlattened(stripe, wanted, plan, io_data, out)
        : decodeMapBlob(stripe, wanted, plan, io_data, out);
}

ReadStatus
FileReader::loadSharedDict(FeatureId feature,
                           const DecodedListDict *&out)
{
    out = nullptr;
    auto cached = dict_cache_.find(feature);
    if (cached != dict_cache_.end()) {
        out = &cached->second;
        return ReadStatus::Ok;
    }
    const StreamInfo *info = footer_->sharedDictFor(feature);
    if (info == nullptr)
        return ReadStatus::Ok; // all-inline column; no dict stream

    Buffer stored;
    if (source_.readChecked(info->offset, info->length, stored) !=
        IoStatus::Ok) {
        ++stats_.io_errors;
        return ReadStatus::IoError;
    }
    stats_.bytes_read += info->length;
    stats_.bytes_needed += info->length;
    ++stats_.ios;

    Buffer raw;
    ReadStatus st = openStream(*info, std::move(stored), raw);
    if (st != ReadStatus::Ok)
        return st;
    DecodedListDict dict;
    if (!decodeSharedListDict(raw, dict)) {
        ++stats_.decode_errors;
        return ReadStatus::DecodeError;
    }
    ++stats_.dict_streams;
    out = &dict_cache_.emplace(feature, std::move(dict)).first->second;
    return ReadStatus::Ok;
}

ReadStatus
FileReader::openStream(const StreamInfo &info, Buffer stored,
                       Buffer &out)
{
    if (options_.verify_checksums && crc32(stored) != info.checksum) {
        ++stats_.checksum_mismatches;
        dsi_warn("checksum mismatch in stream at offset %llu "
                 "(corrupt replica?)",
                 static_cast<unsigned long long>(info.offset));
        // Tell the source which bytes failed verification so a
        // replicated backend can quarantine and read-repair the
        // replica that served them; the retry that follows rotates
        // to a healthy copy.
        source_.reportCorruption(info.offset, info.length);
        return ReadStatus::ChecksumMismatch;
    }
    if (footer_->encrypted) {
        cipher_.apply(info.offset, stored);
        stats_.bytes_decrypted += stored.size();
    }
    auto raw = decompress(footer_->codec, stored);
    if (!raw.has_value() || raw->size() != info.raw_length) {
        ++stats_.decode_errors;
        dsi_warn("stream at offset %llu failed to decode",
                 static_cast<unsigned long long>(info.offset));
        return ReadStatus::DecodeError;
    }
    stats_.bytes_decompressed += raw->size();
    ++stats_.streams_decoded;
    out = std::move(*raw);
    return ReadStatus::Ok;
}

void
FileReader::recycleBatch(RowBatch &out)
{
    for (auto &c : out.dense) {
        c.present.clear();
        c.values.clear();
        spare_dense_.push_back(std::move(c));
    }
    for (auto &c : out.sparse) {
        c.offsets.clear();
        c.values.clear();
        c.scores.clear();
        spare_sparse_.push_back(std::move(c));
    }
    out.dense.clear();
    out.sparse.clear();
    out.labels.clear();
    out.rows = 0;
}

DenseColumn
FileReader::takeSpareDense()
{
    if (spare_dense_.empty())
        return {};
    DenseColumn c = std::move(spare_dense_.back());
    spare_dense_.pop_back();
    return c;
}

SparseColumn
FileReader::takeSpareSparse()
{
    if (spare_sparse_.empty())
        return {};
    SparseColumn c = std::move(spare_sparse_.back());
    spare_sparse_.pop_back();
    return c;
}

namespace {

/**
 * Count set bits among the first `rows` bits of a present bitmap
 * (padding bits in the last byte are masked out, matching what
 * DenseColumn::isPresent can ever observe).
 */
size_t
presentCount(const std::vector<uint8_t> &present, uint32_t rows)
{
    size_t count = 0;
    size_t full = rows / 8;
    for (size_t i = 0; i < full; ++i)
        count += static_cast<size_t>(std::popcount(present[i]));
    if (rows % 8) {
        uint8_t mask = static_cast<uint8_t>((1u << (rows % 8)) - 1);
        count += static_cast<size_t>(
            std::popcount(static_cast<uint8_t>(present[full] & mask)));
    }
    return count;
}

} // namespace

ReadStatus
FileReader::decodeFlattened(const StripeInfo &stripe,
                            const std::vector<size_t> &wanted,
                            const std::vector<PlannedIo> &plan,
                            const std::vector<Buffer> &io_data,
                            RowBatch &batch)
{
    batch.rows = stripe.rows;
    // Corruption that slips past the CRC (or truncated streams) maps
    // to DecodeError here instead of aborting the process.
    auto decode_fail = [&]() {
        ++stats_.decode_errors;
        return ReadStatus::DecodeError;
    };

    // Group the wanted streams by feature so value/length/score
    // streams of one feature decode together.
    struct FeatureStreams
    {
        const StreamInfo *present = nullptr;
        const StreamInfo *dense_values = nullptr;
        const StreamInfo *lengths = nullptr;
        const StreamInfo *sparse_values = nullptr;
        const StreamInfo *scores = nullptr;
        const StreamInfo *list_dict = nullptr;
        size_t present_idx = 0, dense_idx = 0, lengths_idx = 0,
               values_idx = 0, scores_idx = 0, list_dict_idx = 0;
    };
    std::vector<std::pair<FeatureId, FeatureStreams>> features;
    auto feature_slot = [&](FeatureId id) -> FeatureStreams & {
        for (auto &[fid, fs] : features)
            if (fid == id)
                return fs;
        features.emplace_back(id, FeatureStreams{});
        return features.back().second;
    };

    for (size_t idx : wanted) {
        const auto &s = stripe.streams[idx];
        switch (s.kind) {
          case StreamKind::Labels: {
            Buffer raw;
            ReadStatus st = openStream(
                s, fetchStream(stripe, idx, plan, io_data), raw);
            if (st != ReadStatus::Ok)
                return st;
            size_t pos = 0;
            batch.labels.resize(stripe.rows);
            if (!getFloatBlock(raw, pos, batch.labels))
                return decode_fail();
            break;
          }
          case StreamKind::DensePresent: {
            auto &fs = feature_slot(s.feature);
            fs.present = &s;
            fs.present_idx = idx;
            break;
          }
          case StreamKind::DenseValues: {
            auto &fs = feature_slot(s.feature);
            fs.dense_values = &s;
            fs.dense_idx = idx;
            break;
          }
          case StreamKind::SparseLengths: {
            auto &fs = feature_slot(s.feature);
            fs.lengths = &s;
            fs.lengths_idx = idx;
            break;
          }
          case StreamKind::SparseValues: {
            auto &fs = feature_slot(s.feature);
            fs.sparse_values = &s;
            fs.values_idx = idx;
            break;
          }
          case StreamKind::SparseScores: {
            auto &fs = feature_slot(s.feature);
            fs.scores = &s;
            fs.scores_idx = idx;
            break;
          }
          case StreamKind::SparseListDict: {
            auto &fs = feature_slot(s.feature);
            fs.list_dict = &s;
            fs.list_dict_idx = idx;
            break;
          }
          case StreamKind::SharedListDict:
            // File-level dictionary streams are indexed from the
            // footer, never from a stripe.
            return decode_fail();
          case StreamKind::MapBlob:
            dsi_panic("map blob stream in a flattened file");
        }
    }

    for (auto &[fid, fs] : features) {
        if (fs.present && fs.dense_values) {
            DenseColumn col = takeSpareDense();
            col.id = fid;
            Buffer present_raw;
            ReadStatus st = openStream(
                *fs.present,
                fetchStream(stripe, fs.present_idx, plan, io_data),
                present_raw);
            if (st != ReadStatus::Ok)
                return st;
            col.present.assign(present_raw.begin(), present_raw.end());
            if (col.present.size() != (stripe.rows + 7) / 8)
                return decode_fail();
            Buffer values_raw;
            st = openStream(
                *fs.dense_values,
                fetchStream(stripe, fs.dense_idx, plan, io_data),
                values_raw);
            if (st != ReadStatus::Ok)
                return st;
            col.values.assign(stripe.rows, 0.0f);
            // Present rows' floats are stored contiguously: one bounds
            // check for the whole stream, then a straight copy (all
            // rows present) or a branch-per-row scatter.
            size_t n_present = presentCount(col.present, stripe.rows);
            if (values_raw.size() < n_present * sizeof(float))
                return decode_fail();
            if (n_present == stripe.rows) {
                std::memcpy(col.values.data(), values_raw.data(),
                            n_present * sizeof(float));
            } else {
                const uint8_t *src = values_raw.data();
                for (uint32_t r = 0; r < stripe.rows; ++r) {
                    if (col.isPresent(r)) {
                        std::memcpy(&col.values[r], src, sizeof(float));
                        src += sizeof(float);
                    }
                }
            }
            batch.dense.push_back(std::move(col));
        } else if (fs.list_dict) {
            // Dedup-encoded column: per-row codes gather shared-dict
            // entries; the inline residue decodes via the ordinary
            // rle/value codecs (dwrf/dedup.h).
            const DecodedListDict *dict = nullptr;
            ReadStatus st = loadSharedDict(fid, dict);
            if (st != ReadStatus::Ok)
                return st;
            SparseColumn col = takeSpareSparse();
            col.id = fid;
            Buffer raw;
            st = openStream(
                *fs.list_dict,
                fetchStream(stripe, fs.list_dict_idx, plan, io_data),
                raw);
            if (st != ReadStatus::Ok)
                return st;
            ListDictDecodeStats ds;
            if (!decodeListDictColumn(raw, stripe.rows, dict, col,
                                      &ds)) {
                return decode_fail();
            }
            stats_.dict_list_refs += ds.dict_refs;
            stats_.dict_lists_inline += ds.inline_lists;
            batch.sparse.push_back(std::move(col));
        } else if (fs.lengths && fs.sparse_values) {
            SparseColumn col = takeSpareSparse();
            col.id = fid;
            Buffer lengths_raw;
            ReadStatus st = openStream(
                *fs.lengths,
                fetchStream(stripe, fs.lengths_idx, plan, io_data),
                lengths_raw);
            if (st != ReadStatus::Ok)
                return st;
            scratch_lengths_.clear();
            bool ok = rleDecode(lengths_raw, scratch_lengths_);
            if (!ok || scratch_lengths_.size() != stripe.rows)
                return decode_fail();
            col.offsets.assign(stripe.rows + 1, 0);
            for (uint32_t r = 0; r < stripe.rows; ++r) {
                col.offsets[r + 1] =
                    col.offsets[r] +
                    static_cast<uint32_t>(scratch_lengths_[r]);
            }
            Buffer values_raw;
            st = openStream(
                *fs.sparse_values,
                fetchStream(stripe, fs.values_idx, plan, io_data),
                values_raw);
            if (st != ReadStatus::Ok)
                return st;
            ok = decodeValues(values_raw, col.values);
            if (!ok || col.values.size() != col.offsets[stripe.rows])
                return decode_fail();
            if (fs.scores) {
                Buffer scores_raw;
                st = openStream(
                    *fs.scores,
                    fetchStream(stripe, fs.scores_idx, plan, io_data),
                    scores_raw);
                if (st != ReadStatus::Ok)
                    return st;
                col.scores.resize(col.values.size());
                size_t pos = 0;
                if (!getFloatBlock(scores_raw, pos, col.scores))
                    return decode_fail();
            }
            batch.sparse.push_back(std::move(col));
        }
        // A feature with only some of its streams projected (shouldn't
        // happen through the public API) is silently skipped.
    }
    return ReadStatus::Ok;
}

ReadStatus
FileReader::decodeMapBlob(const StripeInfo &stripe,
                          const std::vector<size_t> &wanted,
                          const std::vector<PlannedIo> &plan,
                          const std::vector<Buffer> &io_data,
                          RowBatch &out)
{
    // Legacy path: decode every row of the blob, then drop unprojected
    // features. This is the paper's "reading the entire row" baseline.
    std::vector<Row> rows;
    rows.reserve(stripe.rows);
    std::unordered_set<FeatureId> proj(options_.projection.begin(),
                                       options_.projection.end());
    bool keep_all = proj.empty();
    auto decode_fail = [&]() {
        ++stats_.decode_errors;
        return ReadStatus::DecodeError;
    };

    for (size_t idx : wanted) {
        const auto &s = stripe.streams[idx];
        if (s.kind != StreamKind::MapBlob)
            continue;
        Buffer raw;
        ReadStatus st = openStream(
            s, fetchStream(stripe, idx, plan, io_data), raw);
        if (st != ReadStatus::Ok)
            return st;
        size_t pos = 0;
        for (uint32_t r = 0; r < stripe.rows; ++r) {
            Row row;
            bool ok = getFloat(raw, pos, row.label);
            uint64_t ndense;
            ok = ok && getVarint(raw, pos, ndense);
            if (!ok)
                return decode_fail();
            for (uint64_t d = 0; d < ndense; ++d) {
                uint64_t id;
                float v;
                if (!getVarint(raw, pos, id) || !getFloat(raw, pos, v))
                    return decode_fail();
                if (keep_all || proj.count(static_cast<FeatureId>(id)))
                    row.dense.push_back(
                        {static_cast<FeatureId>(id), v});
            }
            uint64_t nsparse;
            if (!getVarint(raw, pos, nsparse))
                return decode_fail();
            for (uint64_t si = 0; si < nsparse; ++si) {
                uint64_t id, len;
                if (!getVarint(raw, pos, id) ||
                    !getVarint(raw, pos, len)) {
                    return decode_fail();
                }
                SparseFeature f;
                f.id = static_cast<FeatureId>(id);
                f.values.resize(len);
                for (auto &v : f.values) {
                    if (!getSignedVarint(raw, pos, v))
                        return decode_fail();
                }
                if (pos >= raw.size())
                    return decode_fail();
                bool scored = raw[pos++] != 0;
                if (scored) {
                    f.scores.resize(len);
                    for (auto &sc : f.scores) {
                        if (!getFloat(raw, pos, sc))
                            return decode_fail();
                    }
                }
                if (keep_all || proj.count(f.id))
                    row.sparse.push_back(std::move(f));
            }
            rows.push_back(std::move(row));
        }
    }
    out = batchFromRows(rows);
    return ReadStatus::Ok;
}

} // namespace dsi::dwrf
