#include "reader.h"

#include "dwrf/checksum.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace dsi::dwrf {

std::vector<PlannedIo>
planStripeReads(const StripeInfo &stripe,
                const std::vector<size_t> &wanted, bool coalesce,
                Bytes coalesce_gap)
{
    std::vector<size_t> order = wanted;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return stripe.streams[a].offset < stripe.streams[b].offset;
    });

    std::vector<PlannedIo> plan;
    for (size_t idx : order) {
        const auto &s = stripe.streams[idx];
        if (coalesce && !plan.empty()) {
            auto &last = plan.back();
            Bytes last_end = last.offset + last.length;
            dsi_assert(s.offset >= last.offset,
                       "streams not sorted by offset");
            if (s.offset <= last_end + coalesce_gap) {
                Bytes new_end = std::max(last_end, s.offset + s.length);
                last.length = new_end - last.offset;
                last.stream_indices.push_back(idx);
                continue;
            }
        }
        plan.push_back({s.offset, s.length, {idx}});
    }
    return plan;
}

FileReader::FileReader(const RandomAccessSource &source,
                       ReadOptions options)
    : source_(source), options_(std::move(options)),
      cipher_(options_.cipher_key)
{
    // Fetch the tail, then the footer it points at.
    Bytes file_size = source_.size();
    if (file_size < kTailBytes)
        return;
    Buffer tail;
    source_.read(file_size - kTailBytes, kTailBytes, tail);
    size_t pos = 0;
    uint64_t footer_len;
    uint32_t magic;
    if (!getU64(tail, pos, footer_len) || !getU32(tail, pos, magic) ||
        magic != kFileMagic ||
        footer_len + kTailBytes > file_size) {
        return;
    }
    Buffer footer_bytes;
    source_.read(file_size - kTailBytes - footer_len, footer_len,
                 footer_bytes);
    footer_ = FileFooter::deserialize(footer_bytes);
}

std::vector<size_t>
FileReader::selectStreams(const StripeInfo &stripe) const
{
    std::vector<size_t> wanted;
    if (options_.projection.empty()) {
        wanted.resize(stripe.streams.size());
        for (size_t i = 0; i < wanted.size(); ++i)
            wanted[i] = i;
        return wanted;
    }
    std::unordered_set<FeatureId> proj(options_.projection.begin(),
                                       options_.projection.end());
    for (size_t i = 0; i < stripe.streams.size(); ++i) {
        const auto &s = stripe.streams[i];
        // Labels and map blobs are always needed; feature streams only
        // when projected.
        if (s.feature == kNoFeature || proj.count(s.feature))
            wanted.push_back(i);
    }
    return wanted;
}

Buffer
FileReader::fetchStream(const StripeInfo &stripe, size_t stream_idx,
                        const std::vector<PlannedIo> &plan,
                        const std::vector<Buffer> &io_data) const
{
    const auto &s = stripe.streams[stream_idx];
    for (size_t p = 0; p < plan.size(); ++p) {
        const auto &io = plan[p];
        if (s.offset >= io.offset &&
            s.offset + s.length <= io.offset + io.length) {
            Bytes rel = s.offset - io.offset;
            return Buffer(
                io_data[p].begin() + static_cast<ptrdiff_t>(rel),
                io_data[p].begin() +
                    static_cast<ptrdiff_t>(rel + s.length));
        }
    }
    dsi_panic("stream %zu not covered by IO plan", stream_idx);
}

RowBatch
FileReader::readStripe(size_t stripe_index)
{
    dsi_assert(valid(), "reader is invalid");
    dsi_assert(stripe_index < footer_->stripes.size(),
               "stripe %zu out of range", stripe_index);
    const StripeInfo &stripe = footer_->stripes[stripe_index];

    std::vector<size_t> wanted = selectStreams(stripe);
    auto plan = planStripeReads(stripe, wanted, options_.coalesce,
                                options_.coalesce_gap);

    std::vector<Buffer> io_data(plan.size());
    for (size_t p = 0; p < plan.size(); ++p) {
        source_.read(plan[p].offset, plan[p].length, io_data[p]);
        stats_.bytes_read += plan[p].length;
        ++stats_.ios;
    }
    for (size_t idx : wanted)
        stats_.bytes_needed += stripe.streams[idx].length;

    return footer_->flattened
        ? decodeFlattened(stripe, wanted, plan, io_data)
        : decodeMapBlob(stripe, wanted, plan, io_data);
}

namespace {

/** Verify, decrypt, then decompress a fetched stream. */
Buffer
openStream(const StreamInfo &info, Buffer stored, bool encrypted,
           const StreamCipher &cipher, Codec codec, bool verify,
           ReadStats &stats)
{
    if (verify) {
        dsi_assert(crc32(stored) == info.checksum,
                   "checksum mismatch in stream at offset %llu "
                   "(corrupt replica?)",
                   static_cast<unsigned long long>(info.offset));
    }
    if (encrypted) {
        cipher.apply(info.offset, stored);
        stats.bytes_decrypted += stored.size();
    }
    auto raw = decompress(codec, stored);
    dsi_assert(raw.has_value(), "stream at offset %llu failed to decode",
               static_cast<unsigned long long>(info.offset));
    dsi_assert(raw->size() == info.raw_length,
               "stream raw length mismatch: %zu vs %llu", raw->size(),
               static_cast<unsigned long long>(info.raw_length));
    stats.bytes_decompressed += raw->size();
    ++stats.streams_decoded;
    return std::move(*raw);
}

} // namespace

RowBatch
FileReader::decodeFlattened(const StripeInfo &stripe,
                            const std::vector<size_t> &wanted,
                            const std::vector<PlannedIo> &plan,
                            const std::vector<Buffer> &io_data)
{
    RowBatch batch;
    batch.rows = stripe.rows;

    // Group the wanted streams by feature so value/length/score
    // streams of one feature decode together.
    struct FeatureStreams
    {
        const StreamInfo *present = nullptr;
        const StreamInfo *dense_values = nullptr;
        const StreamInfo *lengths = nullptr;
        const StreamInfo *sparse_values = nullptr;
        const StreamInfo *scores = nullptr;
        size_t present_idx = 0, dense_idx = 0, lengths_idx = 0,
               values_idx = 0, scores_idx = 0;
    };
    std::vector<std::pair<FeatureId, FeatureStreams>> features;
    auto feature_slot = [&](FeatureId id) -> FeatureStreams & {
        for (auto &[fid, fs] : features)
            if (fid == id)
                return fs;
        features.emplace_back(id, FeatureStreams{});
        return features.back().second;
    };

    for (size_t idx : wanted) {
        const auto &s = stripe.streams[idx];
        switch (s.kind) {
          case StreamKind::Labels: {
            Buffer raw = openStream(
                s, fetchStream(stripe, idx, plan, io_data),
                footer_->encrypted, cipher_, footer_->codec,
                options_.verify_checksums, stats_);
            size_t pos = 0;
            batch.labels.resize(stripe.rows);
            for (uint32_t r = 0; r < stripe.rows; ++r) {
                bool ok = getFloat(raw, pos, batch.labels[r]);
                dsi_assert(ok, "label stream truncated");
            }
            break;
          }
          case StreamKind::DensePresent: {
            auto &fs = feature_slot(s.feature);
            fs.present = &s;
            fs.present_idx = idx;
            break;
          }
          case StreamKind::DenseValues: {
            auto &fs = feature_slot(s.feature);
            fs.dense_values = &s;
            fs.dense_idx = idx;
            break;
          }
          case StreamKind::SparseLengths: {
            auto &fs = feature_slot(s.feature);
            fs.lengths = &s;
            fs.lengths_idx = idx;
            break;
          }
          case StreamKind::SparseValues: {
            auto &fs = feature_slot(s.feature);
            fs.sparse_values = &s;
            fs.values_idx = idx;
            break;
          }
          case StreamKind::SparseScores: {
            auto &fs = feature_slot(s.feature);
            fs.scores = &s;
            fs.scores_idx = idx;
            break;
          }
          case StreamKind::MapBlob:
            dsi_panic("map blob stream in a flattened file");
        }
    }

    for (auto &[fid, fs] : features) {
        if (fs.present && fs.dense_values) {
            DenseColumn col;
            col.id = fid;
            Buffer present_raw = openStream(
                *fs.present,
                fetchStream(stripe, fs.present_idx, plan, io_data),
                footer_->encrypted, cipher_, footer_->codec,
                options_.verify_checksums, stats_);
            col.present.assign(present_raw.begin(), present_raw.end());
            dsi_assert(col.present.size() == (stripe.rows + 7) / 8,
                       "present bitmap size mismatch");
            Buffer values_raw = openStream(
                *fs.dense_values,
                fetchStream(stripe, fs.dense_idx, plan, io_data),
                footer_->encrypted, cipher_, footer_->codec,
                options_.verify_checksums, stats_);
            col.values.assign(stripe.rows, 0.0f);
            size_t pos = 0;
            for (uint32_t r = 0; r < stripe.rows; ++r) {
                if (col.isPresent(r)) {
                    bool ok = getFloat(values_raw, pos, col.values[r]);
                    dsi_assert(ok, "dense value stream truncated");
                }
            }
            batch.dense.push_back(std::move(col));
        } else if (fs.lengths && fs.sparse_values) {
            SparseColumn col;
            col.id = fid;
            Buffer lengths_raw = openStream(
                *fs.lengths,
                fetchStream(stripe, fs.lengths_idx, plan, io_data),
                footer_->encrypted, cipher_, footer_->codec,
                options_.verify_checksums, stats_);
            std::vector<int64_t> lengths;
            bool ok = rleDecode(lengths_raw, lengths);
            dsi_assert(ok && lengths.size() == stripe.rows,
                       "length stream malformed");
            col.offsets.assign(stripe.rows + 1, 0);
            for (uint32_t r = 0; r < stripe.rows; ++r) {
                col.offsets[r + 1] =
                    col.offsets[r] + static_cast<uint32_t>(lengths[r]);
            }
            Buffer values_raw = openStream(
                *fs.sparse_values,
                fetchStream(stripe, fs.values_idx, plan, io_data),
                footer_->encrypted, cipher_, footer_->codec,
                options_.verify_checksums, stats_);
            ok = decodeValues(values_raw, col.values);
            dsi_assert(ok && col.values.size() ==
                                 col.offsets[stripe.rows],
                       "sparse value stream malformed");
            if (fs.scores) {
                Buffer scores_raw = openStream(
                    *fs.scores,
                    fetchStream(stripe, fs.scores_idx, plan, io_data),
                    footer_->encrypted, cipher_, footer_->codec,
                    options_.verify_checksums, stats_);
                col.scores.resize(col.values.size());
                size_t pos = 0;
                for (auto &sc : col.scores) {
                    ok = getFloat(scores_raw, pos, sc);
                    dsi_assert(ok, "score stream truncated");
                }
            }
            batch.sparse.push_back(std::move(col));
        }
        // A feature with only some of its streams projected (shouldn't
        // happen through the public API) is silently skipped.
    }
    return batch;
}

RowBatch
FileReader::decodeMapBlob(const StripeInfo &stripe,
                          const std::vector<size_t> &wanted,
                          const std::vector<PlannedIo> &plan,
                          const std::vector<Buffer> &io_data)
{
    // Legacy path: decode every row of the blob, then drop unprojected
    // features. This is the paper's "reading the entire row" baseline.
    std::vector<Row> rows;
    rows.reserve(stripe.rows);
    std::unordered_set<FeatureId> proj(options_.projection.begin(),
                                       options_.projection.end());
    bool keep_all = proj.empty();

    for (size_t idx : wanted) {
        const auto &s = stripe.streams[idx];
        if (s.kind != StreamKind::MapBlob)
            continue;
        Buffer raw = openStream(
            s, fetchStream(stripe, idx, plan, io_data),
            footer_->encrypted, cipher_, footer_->codec,
                options_.verify_checksums, stats_);
        size_t pos = 0;
        for (uint32_t r = 0; r < stripe.rows; ++r) {
            Row row;
            bool ok = getFloat(raw, pos, row.label);
            uint64_t ndense;
            ok = ok && getVarint(raw, pos, ndense);
            dsi_assert(ok, "map blob truncated");
            for (uint64_t d = 0; d < ndense; ++d) {
                uint64_t id;
                float v;
                ok = getVarint(raw, pos, id) && getFloat(raw, pos, v);
                dsi_assert(ok, "map blob truncated");
                if (keep_all || proj.count(static_cast<FeatureId>(id)))
                    row.dense.push_back(
                        {static_cast<FeatureId>(id), v});
            }
            uint64_t nsparse;
            ok = getVarint(raw, pos, nsparse);
            dsi_assert(ok, "map blob truncated");
            for (uint64_t si = 0; si < nsparse; ++si) {
                uint64_t id, len;
                ok = getVarint(raw, pos, id) && getVarint(raw, pos, len);
                dsi_assert(ok, "map blob truncated");
                SparseFeature f;
                f.id = static_cast<FeatureId>(id);
                f.values.resize(len);
                for (auto &v : f.values) {
                    ok = getSignedVarint(raw, pos, v);
                    dsi_assert(ok, "map blob truncated");
                }
                dsi_assert(pos < raw.size(), "map blob truncated");
                bool scored = raw[pos++] != 0;
                if (scored) {
                    f.scores.resize(len);
                    for (auto &sc : f.scores) {
                        ok = getFloat(raw, pos, sc);
                        dsi_assert(ok, "map blob truncated");
                    }
                }
                if (keep_all || proj.count(f.id))
                    row.sparse.push_back(std::move(f));
            }
            rows.push_back(std::move(row));
        }
    }
    return batchFromRows(rows);
}

} // namespace dsi::dwrf
