/**
 * @file
 * Stream encryption for DWRF streams.
 *
 * Production streams are encrypted at rest; decryption is part of the
 * paper's "extraction" cost. We model AES-CTR with a keyed xoshiro
 * keystream XOR — structurally identical (seekable counter-mode
 * stream cipher, encrypt == decrypt) and with a measurable per-byte
 * cost, but NOT cryptographically secure. Do not reuse for security.
 */

#ifndef DSI_DWRF_CIPHER_H
#define DSI_DWRF_CIPHER_H

#include <cstdint>

#include "dwrf/encoding.h"

namespace dsi::dwrf {

/** Counter-mode stream cipher (simulation-grade, not secure). */
class StreamCipher
{
  public:
    explicit StreamCipher(uint64_t key) : key_(key) {}

    /**
     * XOR `data` in place with the keystream for (key, nonce). Calling
     * twice with the same nonce restores the original bytes.
     */
    void apply(uint64_t nonce, Buffer &data) const;

    uint64_t key() const { return key_; }

  private:
    uint64_t key_;
};

} // namespace dsi::dwrf

#endif // DSI_DWRF_CIPHER_H
