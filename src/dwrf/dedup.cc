#include "dedup.h"

#include <cstring>

namespace dsi::dwrf {

namespace {

/** FNV-1a over the list content; scoredness is part of the identity. */
uint64_t
hashList(std::span<const int64_t> values, std::span<const float> scores)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](const void *data, size_t len) {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    };
    uint64_t n = values.size();
    mix(&n, sizeof(n));
    mix(values.data(), values.size_bytes());
    uint64_t s = scores.size();
    mix(&s, sizeof(s));
    mix(scores.data(), scores.size_bytes());
    return h;
}

/** Append a length-prefixed sub-block. */
void
putBlock(Buffer &out, const Buffer &block)
{
    putVarint(out, block.size());
    out.insert(out.end(), block.begin(), block.end());
}

/** Extract a length-prefixed sub-block as a span into `in`. */
bool
getBlock(ByteSpan in, size_t &pos, ByteSpan &block)
{
    uint64_t len;
    if (!getVarint(in, pos, len) || pos + len > in.size())
        return false;
    block = in.subspan(pos, len);
    pos += len;
    return true;
}

} // namespace

bool
ListDictBuilder::entryEquals(uint32_t id,
                             std::span<const int64_t> values,
                             std::span<const float> scores) const
{
    uint32_t begin = offsets_[id], end = offsets_[id + 1];
    size_t len = end - begin;
    if (len != values.size())
        return false;
    if (len != 0 &&
        std::memcmp(values_.data() + begin, values.data(),
                    len * sizeof(int64_t)) != 0) {
        return false;
    }
    if (scored_) {
        if (scores.size() != len)
            return false;
        if (len != 0 &&
            std::memcmp(scores_.data() + begin, scores.data(),
                        len * sizeof(float)) != 0) {
            return false;
        }
    }
    return true;
}

std::optional<uint32_t>
ListDictBuilder::intern(std::span<const int64_t> values,
                        std::span<const float> scores, bool scored)
{
    if (!scored_set_) {
        scored_ = scored;
        scored_set_ = true;
    } else if (scored != scored_) {
        // Scoredness flipped mid-file (can't happen for a schema-typed
        // feature); keep the dictionary consistent, encode inline.
        return std::nullopt;
    }

    uint64_t h = hashList(values, scored_ ? scores
                                          : std::span<const float>{});
    auto [it, end] = buckets_.equal_range(h);
    for (; it != end; ++it) {
        if (entryEquals(it->second, values, scores))
            return it->second;
    }

    Bytes add = values.size_bytes() +
                (scored_ ? scores.size_bytes() : 0);
    if (size() >= limits_.max_entries ||
        payload_bytes_ + add > limits_.max_payload_bytes) {
        return std::nullopt;
    }
    auto id = static_cast<uint32_t>(size());
    values_.insert(values_.end(), values.begin(), values.end());
    if (scored_)
        scores_.insert(scores_.end(), scores.begin(), scores.end());
    offsets_.push_back(static_cast<uint32_t>(values_.size()));
    payload_bytes_ += add;
    buckets_.emplace(h, id);
    return id;
}

Buffer
ListDictBuilder::encode() const
{
    Buffer out;
    putVarint(out, size());
    out.push_back(scored_ ? 1 : 0);

    std::vector<int64_t> lengths(size());
    for (size_t i = 0; i < size(); ++i)
        lengths[i] = offsets_[i + 1] - offsets_[i];
    Buffer lengths_raw;
    rleEncode(lengths, lengths_raw);
    putBlock(out, lengths_raw);

    Buffer values_raw;
    encodeValues(values_, values_raw);
    putBlock(out, values_raw);

    if (scored_) {
        Buffer scores_raw;
        for (float sc : scores_)
            putFloat(scores_raw, sc);
        putBlock(out, scores_raw);
    }
    return out;
}

ListDictColumnEncode
encodeListDictColumn(const SparseColumn &col, uint32_t rows,
                     ListDictBuilder &dict)
{
    ListDictColumnEncode enc;
    bool scored = !col.scores.empty();

    std::vector<uint64_t> codes(rows);
    std::vector<int64_t> inline_lengths;
    std::vector<int64_t> inline_values;
    std::vector<float> inline_scores;
    for (uint32_t r = 0; r < rows; ++r) {
        uint32_t begin = col.offsets[r], end = col.offsets[r + 1];
        std::span<const int64_t> values(col.values.data() + begin,
                                        end - begin);
        std::span<const float> scores =
            scored ? std::span<const float>(col.scores.data() + begin,
                                            end - begin)
                   : std::span<const float>{};
        if (auto id = dict.intern(values, scores, scored)) {
            codes[r] = static_cast<uint64_t>(*id) + 1;
            ++enc.dict_refs;
        } else {
            codes[r] = 0;
            inline_lengths.push_back(
                static_cast<int64_t>(end - begin));
            inline_values.insert(inline_values.end(), values.begin(),
                                 values.end());
            inline_scores.insert(inline_scores.end(), scores.begin(),
                                 scores.end());
            ++enc.inline_lists;
        }
    }

    Buffer &out = enc.stream;
    putVarint(out, rows);
    out.push_back(scored ? 1 : 0);
    putVarint(out, inline_lengths.size());
    Buffer lengths_raw;
    rleEncode(inline_lengths, lengths_raw);
    putBlock(out, lengths_raw);
    Buffer values_raw;
    encodeValues(inline_values, values_raw);
    putBlock(out, values_raw);
    if (scored) {
        Buffer scores_raw;
        for (float sc : inline_scores)
            putFloat(scores_raw, sc);
        putBlock(out, scores_raw);
    }
    for (uint64_t c : codes)
        putVarint(out, c);
    return enc;
}

bool
decodeSharedListDict(ByteSpan in, DecodedListDict &out)
{
    size_t pos = 0;
    uint64_t n_entries;
    if (!getVarint(in, pos, n_entries) || pos >= in.size())
        return false;
    out.scored = in[pos++] != 0;

    ByteSpan lengths_block;
    if (!getBlock(in, pos, lengths_block))
        return false;
    std::vector<int64_t> lengths;
    if (!rleDecode(lengths_block, lengths) ||
        lengths.size() != n_entries) {
        return false;
    }

    out.offsets.assign(n_entries + 1, 0);
    uint64_t total = 0;
    for (uint64_t i = 0; i < n_entries; ++i) {
        if (lengths[i] < 0 ||
            lengths[i] > static_cast<int64_t>(UINT32_MAX) ||
            total + static_cast<uint64_t>(lengths[i]) > UINT32_MAX) {
            return false;
        }
        total += static_cast<uint64_t>(lengths[i]);
        out.offsets[i + 1] = static_cast<uint32_t>(total);
    }

    ByteSpan values_block;
    if (!getBlock(in, pos, values_block))
        return false;
    if (!decodeValues(values_block, out.values) ||
        out.values.size() != total) {
        return false;
    }

    out.scores.clear();
    if (out.scored) {
        ByteSpan scores_block;
        if (!getBlock(in, pos, scores_block))
            return false;
        if (scores_block.size() != total * sizeof(float))
            return false;
        out.scores.resize(total);
        size_t spos = 0;
        if (!getFloatBlock(scores_block, spos, out.scores))
            return false;
    }
    return pos == in.size();
}

bool
decodeListDictColumn(ByteSpan in, uint32_t rows,
                     const DecodedListDict *dict, SparseColumn &col,
                     ListDictDecodeStats *stats)
{
    size_t pos = 0;
    uint64_t n_rows;
    if (!getVarint(in, pos, n_rows) || n_rows != rows ||
        pos >= in.size()) {
        return false;
    }
    bool scored = in[pos++] != 0;

    uint64_t n_inline;
    if (!getVarint(in, pos, n_inline) || n_inline > rows)
        return false;

    ByteSpan lengths_block;
    if (!getBlock(in, pos, lengths_block))
        return false;
    std::vector<int64_t> inline_lengths;
    if (!rleDecode(lengths_block, inline_lengths) ||
        inline_lengths.size() != n_inline) {
        return false;
    }
    std::vector<uint32_t> inline_offsets(n_inline + 1, 0);
    uint64_t inline_total = 0;
    for (uint64_t i = 0; i < n_inline; ++i) {
        if (inline_lengths[i] < 0 ||
            inline_total + static_cast<uint64_t>(inline_lengths[i]) >
                UINT32_MAX) {
            return false;
        }
        inline_total += static_cast<uint64_t>(inline_lengths[i]);
        inline_offsets[i + 1] = static_cast<uint32_t>(inline_total);
    }

    ByteSpan values_block;
    if (!getBlock(in, pos, values_block))
        return false;
    std::vector<int64_t> inline_values;
    if (!decodeValues(values_block, inline_values) ||
        inline_values.size() != inline_total) {
        return false;
    }

    std::vector<float> inline_scores;
    if (scored) {
        ByteSpan scores_block;
        if (!getBlock(in, pos, scores_block))
            return false;
        if (scores_block.size() != inline_total * sizeof(float))
            return false;
        inline_scores.resize(inline_total);
        size_t spos = 0;
        if (!getFloatBlock(scores_block, spos, inline_scores))
            return false;
    }

    // Codes fill the rest of the stream: bulk varint decode, then one
    // validation pass computing row lengths, then gather.
    std::vector<uint64_t> codes(rows);
    if (getVarintBlock(in, pos, codes) != rows || pos != in.size())
        return false;

    const size_t dict_entries = dict != nullptr ? dict->size() : 0;
    uint64_t next_inline = 0;
    uint64_t total = 0;
    col.offsets.assign(rows + 1, 0);
    for (uint32_t r = 0; r < rows; ++r) {
        uint64_t len;
        if (codes[r] == 0) {
            if (next_inline >= n_inline)
                return false;
            len = static_cast<uint64_t>(
                inline_lengths[next_inline++]);
        } else {
            uint64_t id = codes[r] - 1;
            if (id >= dict_entries)
                return false;
            len = dict->offsets[id + 1] - dict->offsets[id];
        }
        total += len;
        if (total > UINT32_MAX)
            return false;
        col.offsets[r + 1] = static_cast<uint32_t>(total);
    }
    if (next_inline != n_inline)
        return false;
    // A scored column must gather scores for every row; referenced
    // entries therefore need a scored dictionary (and vice versa —
    // an unscored column must not reference scored entries, or the
    // round trip would invent scores).
    bool any_ref = next_inline != rows;
    if (any_ref && dict != nullptr && dict->scored != scored)
        return false;

    col.values.resize(total);
    col.scores.clear();
    if (scored)
        col.scores.resize(total);
    next_inline = 0;
    for (uint32_t r = 0; r < rows; ++r) {
        uint32_t dst = col.offsets[r];
        uint32_t len = col.offsets[r + 1] - dst;
        const int64_t *vsrc;
        const float *ssrc = nullptr;
        if (codes[r] == 0) {
            uint32_t begin = inline_offsets[next_inline];
            vsrc = inline_values.data() + begin;
            if (scored)
                ssrc = inline_scores.data() + begin;
            ++next_inline;
        } else {
            uint32_t begin = dict->offsets[codes[r] - 1];
            vsrc = dict->values.data() + begin;
            if (scored)
                ssrc = dict->scores.data() + begin;
        }
        if (len != 0) {
            std::memcpy(col.values.data() + dst, vsrc,
                        len * sizeof(int64_t));
            if (scored)
                std::memcpy(col.scores.data() + dst, ssrc,
                            len * sizeof(float));
        }
    }
    if (stats != nullptr) {
        stats->inline_lists += n_inline;
        stats->dict_refs += rows - n_inline;
    }
    return true;
}

} // namespace dsi::dwrf
