/**
 * @file
 * Primitive stream encodings for the DWRF-like columnar format:
 * varints, zigzag, run-length encoding of integers, and raw float
 * packing. These are the building blocks of feature streams.
 *
 * Each variable-length decoder exists in two forms:
 *
 *  - a **scalar reference** (`*Scalar`), the original
 *    one-value-per-call implementation, kept as the checked oracle;
 *  - a **bulk kernel** (the default-named entry point), which decodes
 *    whole runs and varint blocks into pre-sized output with a single
 *    bounds check per block instead of one per byte.
 *
 * The two are bit-identical by contract — accepting and rejecting
 * exactly the same inputs and producing exactly the same values —
 * and `tests/dwrf_encoding_test.cc` enforces it differentially on
 * random and adversarial streams. `bench/perf_suite` measures the
 * speedup (BENCH_decode.json).
 */

#ifndef DSI_DWRF_ENCODING_H
#define DSI_DWRF_ENCODING_H

#include <cstdint>
#include <span>
#include <vector>

namespace dsi::dwrf {

using Buffer = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

/** Append an LEB128 varint. */
void putVarint(Buffer &out, uint64_t v);

/**
 * Decode a varint at `pos`, advancing `pos`. Returns false on
 * truncated/overlong input (pos is left unspecified on failure).
 */
bool getVarint(ByteSpan in, size_t &pos, uint64_t &v);

/** Zigzag mapping of signed to unsigned (small magnitudes stay small). */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

inline int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/** Append a signed varint (zigzag + LEB128). */
inline void
putSignedVarint(Buffer &out, int64_t v)
{
    putVarint(out, zigzagEncode(v));
}

inline bool
getSignedVarint(ByteSpan in, size_t &pos, int64_t &v)
{
    uint64_t u;
    if (!getVarint(in, pos, u))
        return false;
    v = zigzagDecode(u);
    return true;
}

/**
 * Bulk varint decode: fill `out` with consecutive varints starting at
 * `pos`. Returns the number of values decoded — `out.size()` on
 * success; fewer when the stream ends or a varint is malformed
 * (`pos` then points at the offending varint's first byte).
 * Acceptance is identical to calling getVarint() in a loop.
 */
size_t getVarintBlock(ByteSpan in, size_t &pos,
                      std::span<uint64_t> out);

/** Bulk signed (zigzag) variant of getVarintBlock. */
size_t getSignedVarintBlock(ByteSpan in, size_t &pos,
                            std::span<int64_t> out);

/** Append a float as 4 little-endian bytes. */
void putFloat(Buffer &out, float v);
bool getFloat(ByteSpan in, size_t &pos, float &v);

/**
 * Bulk float decode: read `out.size()` consecutive little-endian
 * floats with one bounds check and one copy. False (and `pos`
 * unchanged) when fewer than 4 * out.size() bytes remain.
 */
bool getFloatBlock(ByteSpan in, size_t &pos, std::span<float> out);

/** Append a fixed-width little-endian u32 / u64. */
void putU32(Buffer &out, uint32_t v);
bool getU32(ByteSpan in, size_t &pos, uint32_t &v);
void putU64(Buffer &out, uint64_t v);
bool getU64(ByteSpan in, size_t &pos, uint64_t &v);

/**
 * ORC-style run-length encoding of int64 sequences. Runs of >= 3 equal
 * deltas are encoded as (run header, base, delta); other values are
 * emitted as literal groups. Effective on sparse-length streams, which
 * are dominated by zeros (absent features).
 */
void rleEncode(const std::vector<int64_t> &values, Buffer &out);

/**
 * Decode an RLE stream; returns false on malformed input. Bulk
 * kernel: runs materialize via a resize + linear fill and literal
 * groups decode through getSignedVarintBlock.
 */
bool rleDecode(ByteSpan in, std::vector<int64_t> &values);

/** Scalar reference decoder (one value per call); same contract. */
bool rleDecodeScalar(ByteSpan in, std::vector<int64_t> &values);

/**
 * Categorical-value stream encoding with optional dictionary
 * (ORC/DWRF-style). Zipf-skewed id lists repeat a small hot set; when
 * the distinct-value count is low enough the values are stored as a
 * dictionary plus small indices, otherwise as direct signed varints.
 * The choice is embedded in the stream (self-describing).
 */
void encodeValues(const std::vector<int64_t> &values, Buffer &out);

/**
 * Decode an encodeValues() stream; false on malformed input. Bulk
 * kernel: direct streams decode through getSignedVarintBlock; dict
 * streams decode index blocks and gather through the dictionary.
 */
bool decodeValues(ByteSpan in, std::vector<int64_t> &values);

/** Scalar reference decoder (one value per call); same contract. */
bool decodeValuesScalar(ByteSpan in, std::vector<int64_t> &values);

} // namespace dsi::dwrf

#endif // DSI_DWRF_ENCODING_H
