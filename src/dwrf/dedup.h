/**
 * @file
 * RecD-style list-dictionary encoding for sparse feature columns.
 *
 * Recommendation training data is dominated by *repeated feature
 * lists* (Table V; RecD): the same (values, scores) list recurs across
 * rows, both within a stripe and across stripes of one file. This
 * codec exploits that at the storage layer:
 *
 *  - a **shared dictionary** per (file, feature) holds each distinct
 *    list exactly once, written as one SharedListDict stream at the
 *    end of the file and indexed from the footer;
 *  - each stripe's column becomes a SparseListDict stream of per-row
 *    *codes*: code k+1 references shared-dictionary entry k, code 0
 *    means "the next inline list" (lists that arrived after the
 *    dictionary hit its caps are stored inline, per occurrence).
 *
 * Decoding reuses the PR 6 bulk kernels: codes decode through
 * getVarintBlock, dictionary hits materialize via index gather
 * (memcpy of the entry's span) instead of re-decoding bytes, and the
 * inline residue decodes through the ordinary rle/value codecs.
 *
 * Wire grammar (raw stream bytes, before compression/encryption):
 *
 *   SparseListDict (per stripe, per feature):
 *     varint n_rows
 *     u8     scored (0/1)
 *     varint n_inline
 *     varint len; len bytes   rleEncode(inline lengths)
 *     varint len; len bytes   encodeValues(concat inline values)
 *    [varint len; len bytes   float block of inline scores]  if scored
 *     n_rows varints          codes (0 = next inline, k+1 = entry k)
 *
 *   SharedListDict (per file, per feature):
 *     varint n_entries
 *     u8     scored (0/1)
 *     varint len; len bytes   rleEncode(entry lengths)
 *     varint len; len bytes   encodeValues(concat entry values)
 *    [varint len; len bytes   float block of entry scores]    if scored
 *
 * Both decoders are strict: truncated input, counts that disagree,
 * out-of-range codes, and trailing bytes all reject (the reader maps
 * rejection to DecodeError; corrupt stored bytes are caught earlier
 * by the stream CRC and fed back through reportCorruption).
 */

#ifndef DSI_DWRF_DEDUP_H
#define DSI_DWRF_DEDUP_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dwrf/encoding.h"
#include "dwrf/row.h"

namespace dsi::dwrf {

/** Caps on one feature's shared dictionary. */
struct ListDictLimits
{
    /** Max distinct lists interned per (file, feature). */
    uint32_t max_entries = 65536;

    /**
     * Max payload bytes (values + scores) the dictionary may hold.
     * Over either cap, new lists fall back to inline encoding.
     */
    Bytes max_payload_bytes = 8_MiB;
};

/**
 * Write-side accumulator of one feature's shared dictionary. Interning
 * is exact: entries are matched by content (hash bucket + full
 * compare), never by hash alone, so a collision can not alias two
 * different lists.
 */
class ListDictBuilder
{
  public:
    explicit ListDictBuilder(ListDictLimits limits = {})
        : limits_(limits)
    {
    }

    /**
     * Find-or-insert the list (values, scores) of a column whose
     * scoredness is `scored`. Returns the entry id, or nullopt when
     * the dictionary is full or the column's scoredness disagrees
     * with the dictionary's (the caller then encodes the list
     * inline). The first intern pins the dictionary's scoredness.
     */
    std::optional<uint32_t> intern(std::span<const int64_t> values,
                                   std::span<const float> scores,
                                   bool scored);

    size_t size() const { return offsets_.size() - 1; }
    bool scored() const { return scored_; }
    Bytes payloadBytes() const { return payload_bytes_; }

    /** Encode as a SharedListDict stream. Valid when size() > 0. */
    Buffer encode() const;

  private:
    bool entryEquals(uint32_t id, std::span<const int64_t> values,
                     std::span<const float> scores) const;

    ListDictLimits limits_;
    bool scored_ = false;
    bool scored_set_ = false;
    Bytes payload_bytes_ = 0;
    // Entries flattened CSR-style; hash buckets map to entry ids.
    std::vector<uint32_t> offsets_{0};
    std::vector<int64_t> values_;
    std::vector<float> scores_;
    std::unordered_multimap<uint64_t, uint32_t> buckets_;
};

/** Encode accounting of one stripe column (for dwrf.dict_* metrics). */
struct ListDictColumnEncode
{
    Buffer stream;              ///< SparseListDict raw bytes
    uint64_t dict_refs = 0;     ///< rows resolved through the dict
    uint64_t inline_lists = 0;  ///< rows written inline (dict full)
};

/**
 * Encode one stripe's sparse column against (and extending) the
 * feature's shared dictionary.
 */
ListDictColumnEncode encodeListDictColumn(const SparseColumn &col,
                                          uint32_t rows,
                                          ListDictBuilder &dict);

/** A decoded shared dictionary, ready for index gather. */
struct DecodedListDict
{
    bool scored = false;
    std::vector<uint32_t> offsets; ///< size == entries + 1
    std::vector<int64_t> values;
    std::vector<float> scores;     ///< empty unless scored

    size_t size() const
    {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }
};

/** Decode a SharedListDict stream; false on malformed input. */
bool decodeSharedListDict(ByteSpan in, DecodedListDict &out);

/** Decode accounting of one stripe column. */
struct ListDictDecodeStats
{
    uint64_t dict_refs = 0;
    uint64_t inline_lists = 0;
};

/**
 * Decode a SparseListDict stream of `rows` rows into `col` (offsets,
 * values, scores — id untouched), gathering referenced lists from
 * `dict` (nullptr allowed when the stream holds no references). False
 * on malformed input, out-of-range codes, or a missing/mismatched
 * dictionary.
 */
bool decodeListDictColumn(ByteSpan in, uint32_t rows,
                          const DecodedListDict *dict,
                          SparseColumn &col,
                          ListDictDecodeStats *stats = nullptr);

} // namespace dsi::dwrf

#endif // DSI_DWRF_DEDUP_H
