/**
 * @file
 * CRC32 (Castagnoli polynomial) for stream integrity.
 *
 * Production storage verifies every stream read; a corrupted block is
 * re-fetched from another replica. Our reader verifies each stored
 * stream against the footer checksum and dies loudly on mismatch
 * (tests inject corruption to exercise this).
 */

#ifndef DSI_DWRF_CHECKSUM_H
#define DSI_DWRF_CHECKSUM_H

#include <cstdint>

#include "dwrf/encoding.h"

namespace dsi::dwrf {

/** CRC32-C of a byte span. */
uint32_t crc32(ByteSpan data);

} // namespace dsi::dwrf

#endif // DSI_DWRF_CHECKSUM_H
