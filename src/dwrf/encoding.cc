#include "encoding.h"

#include <cstring>
#include <map>

namespace dsi::dwrf {

void
putVarint(Buffer &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

bool
getVarint(ByteSpan in, size_t &pos, uint64_t &v)
{
    v = 0;
    int shift = 0;
    while (pos < in.size() && shift < 64) {
        uint8_t byte = in[pos++];
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
    }
    return false;
}

void
putFloat(Buffer &out, float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU32(out, bits);
}

bool
getFloat(ByteSpan in, size_t &pos, float &v)
{
    uint32_t bits;
    if (!getU32(in, pos, bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

void
putU32(Buffer &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool
getU32(ByteSpan in, size_t &pos, uint32_t &v)
{
    if (pos + 4 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(in[pos + i]) << (8 * i);
    pos += 4;
    return true;
}

void
putU64(Buffer &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool
getU64(ByteSpan in, size_t &pos, uint64_t &v)
{
    if (pos + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[pos + i]) << (8 * i);
    pos += 8;
    return true;
}

namespace {

// Stream grammar:
//   0x00 <varint n> <base> <delta>   : run of n values base, base+d, ...
//   0x01 <varint n> <n zigzag vals>  : literal group
constexpr uint8_t kRunTag = 0x00;
constexpr uint8_t kLiteralTag = 0x01;
constexpr size_t kMinRun = 3;

void
flushLiterals(const std::vector<int64_t> &values, size_t begin, size_t end,
              Buffer &out)
{
    if (begin >= end)
        return;
    out.push_back(kLiteralTag);
    putVarint(out, end - begin);
    for (size_t i = begin; i < end; ++i)
        putSignedVarint(out, values[i]);
}

} // namespace

void
rleEncode(const std::vector<int64_t> &values, Buffer &out)
{
    size_t lit_begin = 0;
    size_t i = 0;
    const size_t n = values.size();
    while (i < n) {
        // Find the longest fixed-delta run starting at i.
        size_t run_end = i + 1;
        if (run_end < n) {
            int64_t delta = values[run_end] - values[i];
            while (run_end + 1 < n &&
                   values[run_end + 1] - values[run_end] == delta) {
                ++run_end;
            }
            ++run_end; // convert last-index to one-past-end
            size_t run_len = run_end - i;
            if (run_len >= kMinRun) {
                flushLiterals(values, lit_begin, i, out);
                out.push_back(kRunTag);
                putVarint(out, run_len);
                putSignedVarint(out, values[i]);
                putSignedVarint(out, delta);
                i = run_end;
                lit_begin = i;
                continue;
            }
        }
        ++i;
    }
    flushLiterals(values, lit_begin, n, out);
}

bool
rleDecode(ByteSpan in, std::vector<int64_t> &values)
{
    size_t pos = 0;
    while (pos < in.size()) {
        uint8_t tag = in[pos++];
        uint64_t n;
        if (!getVarint(in, pos, n))
            return false;
        if (tag == kRunTag) {
            int64_t base, delta;
            if (!getSignedVarint(in, pos, base) ||
                !getSignedVarint(in, pos, delta)) {
                return false;
            }
            int64_t v = base;
            for (uint64_t k = 0; k < n; ++k) {
                values.push_back(v);
                v += delta;
            }
        } else if (tag == kLiteralTag) {
            for (uint64_t k = 0; k < n; ++k) {
                int64_t v;
                if (!getSignedVarint(in, pos, v))
                    return false;
                values.push_back(v);
            }
        } else {
            return false;
        }
    }
    return true;
}

namespace {

// encodeValues stream grammar:
//   0x00 <varint n> <n zigzag varints>                      (direct)
//   0x01 <varint n> <varint d> <d zigzag dict values>
//        <n varint dict indices>                            (dict)
constexpr uint8_t kDirectTag = 0x00;
constexpr uint8_t kDictTag = 0x01;
constexpr size_t kMaxDictSize = 4096;

} // namespace

namespace {

/** Byte length of an unsigned varint. */
size_t
varintLen(uint64_t v)
{
    size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

} // namespace

void
encodeValues(const std::vector<int64_t> &values, Buffer &out)
{
    // Count distinct values (bail out early past the dict cap) and
    // size both representations.
    std::map<int64_t, uint32_t> dict;
    size_t direct_bytes = 0;
    for (int64_t v : values) {
        direct_bytes += varintLen(zigzagEncode(v));
        dict.emplace(v, 0);
        if (dict.size() > kMaxDictSize)
            break;
    }
    bool use_dict = false;
    if (dict.size() <= kMaxDictSize && dict.size() < values.size()) {
        size_t dict_bytes = varintLen(dict.size());
        for (const auto &[value, _] : dict)
            dict_bytes += varintLen(zigzagEncode(value));
        // Upper-bound index cost with the largest index.
        dict_bytes += values.size() * varintLen(dict.size() - 1);
        use_dict = dict_bytes < direct_bytes;
    }
    if (!use_dict) {
        out.push_back(kDirectTag);
        putVarint(out, values.size());
        for (int64_t v : values)
            putSignedVarint(out, v);
        return;
    }
    out.push_back(kDictTag);
    putVarint(out, values.size());
    putVarint(out, dict.size());
    uint32_t index = 0;
    for (auto &[value, idx] : dict) {
        idx = index++;
        putSignedVarint(out, value);
    }
    for (int64_t v : values)
        putVarint(out, dict.at(v));
}

bool
decodeValues(ByteSpan in, std::vector<int64_t> &values)
{
    size_t pos = 0;
    if (in.empty())
        return false;
    uint8_t tag = in[pos++];
    uint64_t n;
    if (!getVarint(in, pos, n))
        return false;
    values.clear();
    values.reserve(n);
    if (tag == kDirectTag) {
        for (uint64_t i = 0; i < n; ++i) {
            int64_t v;
            if (!getSignedVarint(in, pos, v))
                return false;
            values.push_back(v);
        }
        return pos == in.size();
    }
    if (tag != kDictTag)
        return false;
    uint64_t d;
    if (!getVarint(in, pos, d))
        return false;
    std::vector<int64_t> dict(d);
    for (auto &v : dict) {
        if (!getSignedVarint(in, pos, v))
            return false;
    }
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t idx;
        if (!getVarint(in, pos, idx) || idx >= d)
            return false;
        values.push_back(dict[idx]);
    }
    return pos == in.size();
}

} // namespace dsi::dwrf
