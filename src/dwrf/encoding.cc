#include "encoding.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace dsi::dwrf {

void
putVarint(Buffer &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

bool
getVarint(ByteSpan in, size_t &pos, uint64_t &v)
{
    v = 0;
    int shift = 0;
    while (pos < in.size() && shift < 64) {
        uint8_t byte = in[pos++];
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
    }
    return false;
}

namespace {

/**
 * Decode one varint from [p, end). Returns the advanced cursor, or
 * nullptr on truncated/overlong input (cursor then stays at the
 * varint's first byte). Accepts exactly what getVarint() accepts;
 * the raw-pointer form lets block decoders skip the per-byte span
 * indexing of the scalar path.
 */
inline const uint8_t *
decodeVarintFast(const uint8_t *p, const uint8_t *end, uint64_t &v)
{
    if (p != end && *p < 0x80) { // 1-byte values dominate real streams
        v = *p;
        return p + 1;
    }
    v = 0;
    int shift = 0;
    const uint8_t *q = p;
    while (q != end && shift < 64) {
        uint8_t byte = *q++;
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return q;
        shift += 7;
    }
    return nullptr;
}

/**
 * Branchless 1-or-2-byte LEB128 decode of `*p` (requires two loadable
 * bytes). Real DWRF streams mix 1- and 2-byte varints unpredictably,
 * so a length *branch* mispredicts constantly; computing the length
 * arithmetically does not. Returns false when the varint continues
 * past two bytes (caller falls back to the generic loop); decoded
 * forms — including overlong ones like 0x80 0x00 — match the byte
 * loop bit-for-bit.
 */
inline bool
decodeVarint12(const uint8_t *p, uint64_t &v, size_t &len)
{
    uint64_t b0 = p[0];
    uint64_t b1 = p[1];
    uint64_t more = b0 >> 7; // 0 or 1
    if (more & (b1 >> 7))
        return false; // 3+ bytes: rare, take the generic path
    v = (b0 & 0x7f) | ((b1 << 7) & (-more & 0x3f80));
    len = 1 + more;
    return true;
}

/**
 * Shared block-decode loop. Real value streams are homogeneous —
 * either mostly 1-2-byte varints (dict indices, lengths, counts) or
 * mostly long ones (hashed ids) — so speculate on the short form, and
 * if the first probe window is dominated by longer varints, drop to
 * the generic byte loop for the remainder instead of paying a failed
 * speculation per value. `map` post-processes each decoded word
 * (identity or zigzag).
 */
template <typename Out, typename Map>
size_t
varintBlockImpl(ByteSpan in, size_t &pos, std::span<Out> out, Map map)
{
    if (pos > in.size())
        return 0;
    const uint8_t *base = in.data();
    const uint8_t *p = base + pos;
    const uint8_t *end = base + in.size();
    size_t i = 0;
    const size_t want = out.size();
    constexpr size_t kProbe = 16;
    size_t misses = 0;
    while (i < want) {
        if (i == kProbe && misses >= kProbe / 2)
            break; // long-form stream: generic loop below
        uint64_t u;
        size_t len;
        if (end - p >= 2 && decodeVarint12(p, u, len)) {
            out[i++] = map(u);
            p += len;
            continue;
        }
        const uint8_t *next = decodeVarintFast(p, end, u);
        if (next == nullptr) {
            pos = static_cast<size_t>(p - base);
            return i;
        }
        out[i++] = map(u);
        p = next;
        ++misses;
    }
    for (; i < want; ++i) {
        uint64_t u;
        const uint8_t *next = decodeVarintFast(p, end, u);
        if (next == nullptr)
            break;
        out[i] = map(u);
        p = next;
    }
    pos = static_cast<size_t>(p - base);
    return i;
}

} // namespace

size_t
getVarintBlock(ByteSpan in, size_t &pos, std::span<uint64_t> out)
{
    return varintBlockImpl(in, pos, out,
                           [](uint64_t u) { return u; });
}

size_t
getSignedVarintBlock(ByteSpan in, size_t &pos, std::span<int64_t> out)
{
    return varintBlockImpl(in, pos, out,
                           [](uint64_t u) { return zigzagDecode(u); });
}

void
putFloat(Buffer &out, float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU32(out, bits);
}

bool
getFloat(ByteSpan in, size_t &pos, float &v)
{
    uint32_t bits;
    if (!getU32(in, pos, bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
getFloatBlock(ByteSpan in, size_t &pos, std::span<float> out)
{
    // Single bounds check + single copy (the stored layout is
    // little-endian, matching every host this repo targets).
    size_t bytes = out.size() * sizeof(float);
    if (pos > in.size() || in.size() - pos < bytes)
        return false;
    std::memcpy(out.data(), in.data() + pos, bytes);
    pos += bytes;
    return true;
}

void
putU32(Buffer &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool
getU32(ByteSpan in, size_t &pos, uint32_t &v)
{
    if (pos + 4 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(in[pos + i]) << (8 * i);
    pos += 4;
    return true;
}

void
putU64(Buffer &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool
getU64(ByteSpan in, size_t &pos, uint64_t &v)
{
    if (pos + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[pos + i]) << (8 * i);
    pos += 8;
    return true;
}

namespace {

// Stream grammar:
//   0x00 <varint n> <base> <delta>   : run of n values base, base+d, ...
//   0x01 <varint n> <n zigzag vals>  : literal group
constexpr uint8_t kRunTag = 0x00;
constexpr uint8_t kLiteralTag = 0x01;
constexpr size_t kMinRun = 3;

void
flushLiterals(const std::vector<int64_t> &values, size_t begin, size_t end,
              Buffer &out)
{
    if (begin >= end)
        return;
    out.push_back(kLiteralTag);
    putVarint(out, end - begin);
    for (size_t i = begin; i < end; ++i)
        putSignedVarint(out, values[i]);
}

} // namespace

void
rleEncode(const std::vector<int64_t> &values, Buffer &out)
{
    size_t lit_begin = 0;
    size_t i = 0;
    const size_t n = values.size();
    while (i < n) {
        // Find the longest fixed-delta run starting at i.
        size_t run_end = i + 1;
        if (run_end < n) {
            int64_t delta = values[run_end] - values[i];
            while (run_end + 1 < n &&
                   values[run_end + 1] - values[run_end] == delta) {
                ++run_end;
            }
            ++run_end; // convert last-index to one-past-end
            size_t run_len = run_end - i;
            if (run_len >= kMinRun) {
                flushLiterals(values, lit_begin, i, out);
                out.push_back(kRunTag);
                putVarint(out, run_len);
                putSignedVarint(out, values[i]);
                putSignedVarint(out, delta);
                i = run_end;
                lit_begin = i;
                continue;
            }
        }
        ++i;
    }
    flushLiterals(values, lit_begin, n, out);
}

bool
rleDecodeScalar(ByteSpan in, std::vector<int64_t> &values)
{
    size_t pos = 0;
    while (pos < in.size()) {
        uint8_t tag = in[pos++];
        uint64_t n;
        if (!getVarint(in, pos, n))
            return false;
        if (tag == kRunTag) {
            int64_t base, delta;
            if (!getSignedVarint(in, pos, base) ||
                !getSignedVarint(in, pos, delta)) {
                return false;
            }
            int64_t v = base;
            for (uint64_t k = 0; k < n; ++k) {
                values.push_back(v);
                v += delta;
            }
        } else if (tag == kLiteralTag) {
            // Each literal needs >= 1 byte: reject a count the stream
            // cannot possibly satisfy before materializing anything
            // (shared with the bulk kernel, so accept/reject agree).
            if (n > in.size() - pos)
                return false;
            for (uint64_t k = 0; k < n; ++k) {
                int64_t v;
                if (!getSignedVarint(in, pos, v))
                    return false;
                values.push_back(v);
            }
        } else {
            return false;
        }
    }
    return true;
}

bool
rleDecode(ByteSpan in, std::vector<int64_t> &values)
{
    size_t pos = 0;
    while (pos < in.size()) {
        uint8_t tag = in[pos++];
        uint64_t n;
        if (!getVarint(in, pos, n))
            return false;
        if (tag == kRunTag) {
            int64_t base, delta;
            if (!getSignedVarint(in, pos, base) ||
                !getSignedVarint(in, pos, delta)) {
                return false;
            }
            // Materialize the whole run in one pass. Short runs (the
            // common gap between literal groups) stay on an inline
            // push_back loop; long constant runs — the zero-dominated
            // sparse-length shape — become a single fill.
            if (n < 16) {
                int64_t v = base;
                for (uint64_t k = 0; k < n; ++k) {
                    values.push_back(v);
                    v += delta;
                }
            } else if (delta == 0) {
                values.resize(values.size() + n, base);
            } else {
                size_t old = values.size();
                values.resize(old + n);
                int64_t *dst = values.data() + old;
                int64_t v = base;
                for (uint64_t k = 0; k < n; ++k) {
                    dst[k] = v;
                    v += delta;
                }
            }
        } else if (tag == kLiteralTag) {
            if (n > in.size() - pos)
                return false;
            if (n < 16) {
                // Tiny groups (the gaps between runs) aren't worth
                // the resize + block-decode setup.
                for (uint64_t k = 0; k < n; ++k) {
                    int64_t v;
                    if (!getSignedVarint(in, pos, v))
                        return false;
                    values.push_back(v);
                }
            } else {
                size_t old = values.size();
                values.resize(old + n);
                if (getSignedVarintBlock(
                        in, pos,
                        std::span<int64_t>(values.data() + old, n)) !=
                    n) {
                    return false;
                }
            }
        } else {
            return false;
        }
    }
    return true;
}

namespace {

// encodeValues stream grammar:
//   0x00 <varint n> <n zigzag varints>                      (direct)
//   0x01 <varint n> <varint d> <d zigzag dict values>
//        <n varint dict indices>                            (dict)
constexpr uint8_t kDirectTag = 0x00;
constexpr uint8_t kDictTag = 0x01;
constexpr size_t kMaxDictSize = 4096;

} // namespace

namespace {

/** Byte length of an unsigned varint. */
size_t
varintLen(uint64_t v)
{
    size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

} // namespace

void
encodeValues(const std::vector<int64_t> &values, Buffer &out)
{
    // Count distinct values (bail out early past the dict cap) and
    // size both representations.
    std::map<int64_t, uint32_t> dict;
    size_t direct_bytes = 0;
    for (int64_t v : values) {
        direct_bytes += varintLen(zigzagEncode(v));
        dict.emplace(v, 0);
        if (dict.size() > kMaxDictSize)
            break;
    }
    bool use_dict = false;
    if (dict.size() <= kMaxDictSize && dict.size() < values.size()) {
        size_t dict_bytes = varintLen(dict.size());
        for (const auto &[value, _] : dict)
            dict_bytes += varintLen(zigzagEncode(value));
        // Upper-bound index cost with the largest index.
        dict_bytes += values.size() * varintLen(dict.size() - 1);
        use_dict = dict_bytes < direct_bytes;
    }
    if (!use_dict) {
        out.push_back(kDirectTag);
        putVarint(out, values.size());
        for (int64_t v : values)
            putSignedVarint(out, v);
        return;
    }
    out.push_back(kDictTag);
    putVarint(out, values.size());
    putVarint(out, dict.size());
    uint32_t index = 0;
    for (auto &[value, idx] : dict) {
        idx = index++;
        putSignedVarint(out, value);
    }
    for (int64_t v : values)
        putVarint(out, dict.at(v));
}

bool
decodeValuesScalar(ByteSpan in, std::vector<int64_t> &values)
{
    size_t pos = 0;
    if (in.empty())
        return false;
    uint8_t tag = in[pos++];
    uint64_t n;
    if (!getVarint(in, pos, n))
        return false;
    // Every value/index/dict entry takes >= 1 byte: reject counts the
    // stream cannot satisfy before allocating for them (the bulk
    // kernel applies the same bounds, keeping accept/reject aligned).
    if (n > in.size() - pos)
        return false;
    values.clear();
    values.reserve(n);
    if (tag == kDirectTag) {
        for (uint64_t i = 0; i < n; ++i) {
            int64_t v;
            if (!getSignedVarint(in, pos, v))
                return false;
            values.push_back(v);
        }
        return pos == in.size();
    }
    if (tag != kDictTag)
        return false;
    uint64_t d;
    if (!getVarint(in, pos, d))
        return false;
    if (d > in.size() - pos)
        return false;
    std::vector<int64_t> dict(d);
    for (auto &v : dict) {
        if (!getSignedVarint(in, pos, v))
            return false;
    }
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t idx;
        if (!getVarint(in, pos, idx) || idx >= d)
            return false;
        values.push_back(dict[idx]);
    }
    return pos == in.size();
}

bool
decodeValues(ByteSpan in, std::vector<int64_t> &values)
{
    size_t pos = 0;
    if (in.empty())
        return false;
    uint8_t tag = in[pos++];
    uint64_t n;
    if (!getVarint(in, pos, n))
        return false;
    if (n > in.size() - pos)
        return false;
    values.clear();
    if (tag == kDirectTag) {
        values.resize(n);
        if (getSignedVarintBlock(in, pos,
                                 std::span<int64_t>(values)) != n) {
            return false;
        }
        return pos == in.size();
    }
    if (tag != kDictTag)
        return false;
    uint64_t d;
    if (!getVarint(in, pos, d))
        return false;
    if (d > in.size() - pos)
        return false;
    std::vector<int64_t> dict(d);
    if (getSignedVarintBlock(in, pos, std::span<int64_t>(dict)) != d)
        return false;
    // Fused index-decode + dictionary gather, one pass over the
    // stream into preallocated output. Indices are 1-2 bytes for any
    // dict the encoder emits (kMaxDictSize = 4096), so the branchless
    // short-varint decode carries the whole stream; anything longer
    // (overlong or adversarial forms) drops to the generic decoder.
    values.resize(n);
    int64_t *dst = values.data();
    const int64_t *dict_data = dict.data();
    const uint8_t *base = in.data();
    const uint8_t *p = base + pos;
    const uint8_t *end = base + in.size();
    size_t i = 0;
    // Unrolled hot loop: one 8-byte load covers four short indices
    // (worst case 4 x 2 bytes). Extracting from the register via
    // shifts keeps the serial dependency chain at ~1 cycle per step
    // instead of a dependent L1 load per index.
    while (i + 4 <= n && end - p >= 8) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        uint64_t used = 0;
        uint64_t idx[4];
        bool long_form = false;
        for (int k = 0; k < 4; ++k) {
            uint64_t b0 = w & 0xff;
            uint64_t b1 = (w >> 8) & 0xff;
            uint64_t more = b0 >> 7;
            if (more & (b1 >> 7)) {
                long_form = true; // 3+ bytes: generic path below
                break;
            }
            idx[k] = (b0 & 0x7f) | ((b1 << 7) & (-more & 0x3f80));
            w >>= 8 * (1 + more);
            used += 1 + more;
        }
        if (long_form)
            break;
        if ((idx[0] >= d) | (idx[1] >= d) | (idx[2] >= d) |
            (idx[3] >= d)) {
            return false;
        }
        dst[i + 0] = dict_data[idx[0]];
        dst[i + 1] = dict_data[idx[1]];
        dst[i + 2] = dict_data[idx[2]];
        dst[i + 3] = dict_data[idx[3]];
        i += 4;
        p += used;
    }
    while (i < n) {
        uint64_t idx;
        size_t len;
        if (end - p >= 2 && decodeVarint12(p, idx, len)) {
            if (idx >= d)
                return false;
            dst[i++] = dict_data[idx];
            p += len;
            continue;
        }
        const uint8_t *next = decodeVarintFast(p, end, idx);
        if (next == nullptr || idx >= d)
            return false;
        dst[i++] = dict_data[idx];
        p = next;
    }
    pos = static_cast<size_t>(p - base);
    return pos == in.size();
}

} // namespace dsi::dwrf
