/**
 * @file
 * DWRF file reader with selective feature projection and coalesced IO
 * planning.
 *
 * Training jobs read 9-11% of stored features (Table V); the reader
 * plans exactly the byte ranges the projection needs from the footer
 * index. With coalescing enabled, nearby stream ranges (gap below a
 * threshold, 1.25 MiB in production) merge into a single IO to
 * amortize HDD seeks, trading over-read bytes for IOPS (Section VII).
 */

#ifndef DSI_DWRF_READER_H
#define DSI_DWRF_READER_H

#include <optional>
#include <vector>

#include <map>

#include "common/backoff.h"
#include "common/deadline.h"
#include "common/trace.h"
#include "dwrf/cipher.h"
#include "dwrf/dedup.h"
#include "dwrf/format.h"
#include "dwrf/row.h"
#include "dwrf/source.h"

namespace dsi::dwrf {

/**
 * Outcome of a checked stripe read. Everything but Ok is recoverable:
 * the stripe's bytes stay untouched in storage, so the caller can
 * retry (a re-read rotates to another replica) or abandon the split.
 */
enum class ReadStatus
{
    Ok,
    IoError,           ///< storage could not serve the bytes
    ChecksumMismatch,  ///< stream CRC32 disagreed with the footer
    DecodeError,       ///< bytes fetched but undecodable (truncated?)
    DeadlineExpired,   ///< the read budget ran out mid-retry
};

/** Read-side configuration. */
struct ReadOptions
{
    /** Features to materialize; empty means every stored feature. */
    std::vector<FeatureId> projection;

    /** Merge stream reads whose gap is <= coalesce_gap into one IO. */
    bool coalesce = false;
    Bytes coalesce_gap = 1310720; // 1.25 MiB, the production setting

    /** Key for encrypted files. Must match the writer's. */
    uint64_t cipher_key = 0x00d5f00dULL;

    /** Verify each stream's CRC32 against the footer. */
    bool verify_checksums = true;

    /**
     * Extra attempts after a failed stripe read. Retries re-fetch the
     * stripe, which rotates replica choice — the path a corrupt or
     * unavailable replica recovers through.
     */
    uint32_t max_stripe_retries = 2;

    /**
     * Base retry delay (the floor of every jittered draw); 0 disables
     * the sleep. Retries use dsi::Backoff decorrelated jitter — a
     * deterministic doubling ladder would re-stampede a recovering
     * replica with synchronized retry waves.
     */
    uint64_t retry_backoff_us = 200;

    /** Cap on any single retry delay. */
    uint64_t retry_backoff_cap_us = 50'000;
};

/** Byte accounting of the extraction phase. */
struct ReadStats
{
    Bytes bytes_read = 0;     ///< fetched from storage (incl. over-read)
    Bytes bytes_needed = 0;   ///< stored bytes of projected streams
    Bytes bytes_decompressed = 0; ///< raw bytes produced by the codec
    Bytes bytes_decrypted = 0;
    uint64_t ios = 0;
    uint64_t streams_decoded = 0;

    // Fault-path accounting.
    uint64_t checksum_mismatches = 0; ///< streams failing CRC32
    uint64_t io_errors = 0;           ///< reads storage could not serve
    uint64_t decode_errors = 0;       ///< undecodable fetched streams
    uint64_t stripe_retries = 0;      ///< re-read attempts issued
    uint64_t deadline_expired = 0;    ///< reads abandoned on budget

    // Dedup (list-dictionary) accounting.
    uint64_t dict_streams = 0;      ///< shared dicts fetched + decoded
    uint64_t dict_list_refs = 0;    ///< row lists gathered from a dict
    uint64_t dict_lists_inline = 0; ///< row lists decoded inline

    Bytes overRead() const
    {
        return bytes_read > bytes_needed ? bytes_read - bytes_needed
                                         : 0;
    }

    /** Fold another reader's totals into this one (every field). */
    void merge(const ReadStats &o)
    {
        bytes_read += o.bytes_read;
        bytes_needed += o.bytes_needed;
        bytes_decompressed += o.bytes_decompressed;
        bytes_decrypted += o.bytes_decrypted;
        ios += o.ios;
        streams_decoded += o.streams_decoded;
        checksum_mismatches += o.checksum_mismatches;
        io_errors += o.io_errors;
        decode_errors += o.decode_errors;
        stripe_retries += o.stripe_retries;
        deadline_expired += o.deadline_expired;
        dict_streams += o.dict_streams;
        dict_list_refs += o.dict_list_refs;
        dict_lists_inline += o.dict_lists_inline;
    }
};

/** One planned IO: a contiguous byte range covering >= 1 streams. */
struct PlannedIo
{
    Bytes offset = 0;
    Bytes length = 0;
    std::vector<size_t> stream_indices; ///< into StripeInfo::streams
};

/**
 * Plan the IOs needed to fetch `wanted` streams of a stripe.
 * Exposed separately so benches can study IO-size distributions
 * (Table VI) without decoding.
 */
std::vector<PlannedIo> planStripeReads(const StripeInfo &stripe,
                                       const std::vector<size_t> &wanted,
                                       bool coalesce, Bytes coalesce_gap);

/** Reads stripes of one DWRF file into columnar batches. */
class FileReader
{
  public:
    FileReader(const RandomAccessSource &source, ReadOptions options);

    /** False if the footer failed to parse. */
    bool valid() const { return footer_.has_value(); }
    const FileFooter &footer() const { return *footer_; }

    size_t stripeCount() const
    {
        return valid() ? footer_->stripes.size() : 0;
    }
    uint64_t totalRows() const
    {
        return valid() ? footer_->total_rows : 0;
    }

    /**
     * Read and decode one stripe into `out`, applying the projection.
     * Failures (IO, checksum, decode) are retried up to
     * ReadOptions::max_stripe_retries times with decorrelated-jitter
     * backoff; the final status is returned instead of aborting, so
     * callers can fail the split over to another worker or another
     * replica. Retries (and their sleeps) observe the deadline set by
     * setDeadline(): an expired budget returns DeadlineExpired so the
     * caller can requeue the work instead of hanging on it.
     */
    ReadStatus readStripe(size_t stripe_index, RowBatch &out);

    /**
     * Attach the time budget of the work this reader serves (a split
     * grant's deadline). Default: unbounded.
     */
    void setDeadline(Deadline deadline) { deadline_ = deadline; }

    /**
     * Parent span for this reader's stripe-read spans (the worker's
     * extract-stripe span). Defaults to the ambient
     * trace::currentParent() at each readStripe call.
     */
    void setTraceContext(trace::SpanId parent)
    {
        trace_parent_ = parent;
    }

    /** Legacy fail-stop wrapper: asserts the checked read succeeded. */
    RowBatch readStripe(size_t stripe_index);

    /** Cumulative extraction accounting across readStripe calls. */
    const ReadStats &stats() const { return stats_; }

  private:
    ReadStatus readStripeOnce(size_t stripe_index, RowBatch &out);
    std::vector<size_t> selectStreams(const StripeInfo &stripe) const;
    /**
     * Fetch + decode `feature`'s shared list dictionary (cached after
     * the first use, so cross-stripe references cost one IO per
     * file). `out` is nullptr when the file has none for the feature.
     * Failures are not cached: the stripe-level retry re-fetches,
     * rotating replicas, which is how a corrupt dictionary replica
     * heals (openStream's CRC check reports it via reportCorruption).
     */
    ReadStatus loadSharedDict(FeatureId feature,
                              const DecodedListDict *&out);
    Buffer fetchStream(const StripeInfo &stripe, size_t stream_idx,
                       const std::vector<PlannedIo> &plan,
                       const std::vector<Buffer> &io_data) const;
    /** Verify, decrypt, then decompress a fetched stream into `out`. */
    ReadStatus openStream(const StreamInfo &info, Buffer stored,
                          Buffer &out);
    ReadStatus decodeFlattened(const StripeInfo &stripe,
                               const std::vector<size_t> &wanted,
                               const std::vector<PlannedIo> &plan,
                               const std::vector<Buffer> &io_data,
                               RowBatch &out);
    ReadStatus decodeMapBlob(const StripeInfo &stripe,
                             const std::vector<size_t> &wanted,
                             const std::vector<PlannedIo> &plan,
                             const std::vector<Buffer> &io_data,
                             RowBatch &out);

    /**
     * Strip `out`'s previous contents into the spare-column lists,
     * keeping their heap blocks so this stripe's decode reuses the
     * capacity instead of reallocating every column every stripe.
     */
    void recycleBatch(RowBatch &out);
    DenseColumn takeSpareDense();
    SparseColumn takeSpareSparse();

    const RandomAccessSource &source_;
    ReadOptions options_;
    StreamCipher cipher_;
    std::optional<FileFooter> footer_;
    ReadStats stats_;
    Deadline deadline_; ///< budget for reads; default unbounded
    Backoff backoff_;   ///< jittered retry delays
    trace::SpanId trace_parent_ = trace::kNoSpan;

    // Capacity recycling: cleared columns stripped from the caller's
    // previous batch, plus a scratch vector for RLE sparse lengths.
    // Bounded by one stripe's worth of columns.
    std::vector<DenseColumn> spare_dense_;
    std::vector<SparseColumn> spare_sparse_;
    std::vector<int64_t> scratch_lengths_;

    /** Decoded shared dictionaries, cached per feature for the file. */
    std::map<FeatureId, DecodedListDict> dict_cache_;
};

} // namespace dsi::dwrf

#endif // DSI_DWRF_READER_H
