/**
 * @file
 * On-disk layout metadata for the DWRF-like columnar file format.
 *
 * A file is a sequence of stripes followed by a footer. Each stripe
 * holds a number of rows encoded as streams. In *flattened* mode
 * (the paper's feature-flattening optimization, Section VII) every
 * feature gets its own logical column: per-feature streams that can be
 * read selectively. In legacy *map* mode each stripe stores one blob
 * stream per map column, so reading any feature reads the whole map.
 *
 * The footer indexes every stream (feature, kind, offset, length) so a
 * reader with a feature projection can plan exactly which byte ranges
 * it needs — the basis of selective reading (Section V-A) and
 * coalesced IO planning (Section VII).
 */

#ifndef DSI_DWRF_FORMAT_H
#define DSI_DWRF_FORMAT_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "dwrf/compress.h"
#include "dwrf/encoding.h"

namespace dsi::dwrf {

/** Role of a stream within a stripe. */
enum class StreamKind : uint8_t
{
    Labels = 0,        ///< float label per row
    DensePresent = 1,  ///< presence bitmap for a dense feature
    DenseValues = 2,   ///< float values for present rows
    SparseLengths = 3, ///< per-row list lengths (RLE)
    SparseValues = 4,  ///< concatenated categorical ids (varint)
    SparseScores = 5,  ///< concatenated float scores
    MapBlob = 6,       ///< legacy row-wise map column blob

    /**
     * Dedup-encoded sparse column: per-row codes referencing the
     * feature's shared list dictionary, plus inline residue (see
     * dwrf/dedup.h). Replaces the SparseLengths/SparseValues/
     * SparseScores triple when the writer's dedup knob is on.
     */
    SparseListDict = 7,

    /**
     * One feature's shared list dictionary: every distinct list of
     * the file stored once. Lives outside the stripes (written after
     * the last stripe) and is indexed by FileFooter::shared_dicts.
     */
    SharedListDict = 8,
};

/** Sentinel feature id for non-feature streams (labels, map blobs). */
inline constexpr FeatureId kNoFeature = 0xffffffffu;

/** Footer record describing one stream. */
struct StreamInfo
{
    FeatureId feature = kNoFeature;
    StreamKind kind = StreamKind::Labels;
    Bytes offset = 0;     ///< absolute file offset
    Bytes length = 0;     ///< stored (compressed+encrypted) length
    Bytes raw_length = 0; ///< uncompressed length
    uint32_t checksum = 0;     ///< CRC32-C of the stored bytes
    uint64_t value_count = 0;  ///< decoded elements (values/rows)
};

/** Footer record describing one stripe. */
struct StripeInfo
{
    RowId first_row = 0;
    uint32_t rows = 0;
    Bytes offset = 0; ///< absolute file offset of first stream
    Bytes length = 0; ///< total stored bytes of all streams
    std::vector<StreamInfo> streams;
};

/** File footer: the metadata needed to plan and decode reads. */
struct FileFooter
{
    uint64_t total_rows = 0;
    Codec codec = Codec::Lz;
    bool encrypted = false;
    bool flattened = true;
    std::vector<StripeInfo> stripes;

    /**
     * Shared list dictionaries (kind == SharedListDict, one per
     * dedup-encoded feature), cross-stripe file-level streams. Empty
     * unless the file was written with dedup enabled.
     */
    std::vector<StreamInfo> shared_dicts;

    /** Dictionary stream of `feature`, or nullptr. */
    const StreamInfo *sharedDictFor(FeatureId feature) const
    {
        for (const auto &s : shared_dicts)
            if (s.feature == feature)
                return &s;
        return nullptr;
    }

    /** Serialize to bytes (appended at end of file before the tail). */
    Buffer serialize() const;

    /** Parse a footer; nullopt on malformed input. */
    static std::optional<FileFooter> deserialize(ByteSpan data);
};

/** Magic bytes terminating every DWRF file. */
inline constexpr uint32_t kFileMagic = 0x44575246; // "DWRF"

/**
 * File tail layout: [footer bytes][u64 footer_len][u32 magic].
 * Readers fetch the last kTailBytes, then the footer.
 */
inline constexpr Bytes kTailBytes = 12;

} // namespace dsi::dwrf

#endif // DSI_DWRF_FORMAT_H
