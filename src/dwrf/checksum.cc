#include "checksum.h"

namespace dsi::dwrf {

namespace {

constexpr uint32_t kPoly = 0x82f63b78; // CRC32-C, reflected

struct Crc32Table
{
    uint32_t entries[256];

    constexpr Crc32Table() : entries()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t crc = i;
            for (int k = 0; k < 8; ++k)
                crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
            entries[i] = crc;
        }
    }
};

constexpr Crc32Table kTable;

} // namespace

uint32_t
crc32(ByteSpan data)
{
    uint32_t crc = 0xffffffff;
    for (uint8_t b : data)
        crc = (crc >> 8) ^ kTable.entries[(crc ^ b) & 0xff];
    return crc ^ 0xffffffff;
}

} // namespace dsi::dwrf
