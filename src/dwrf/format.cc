#include "format.h"

namespace dsi::dwrf {

namespace {

void
putStreamInfo(Buffer &out, const StreamInfo &s)
{
    putVarint(out, s.feature);
    out.push_back(static_cast<uint8_t>(s.kind));
    putVarint(out, s.offset);
    putVarint(out, s.length);
    putVarint(out, s.raw_length);
    putU32(out, s.checksum);
    putVarint(out, s.value_count);
}

bool
getStreamInfo(ByteSpan data, size_t &pos, StreamInfo &s)
{
    uint64_t feat;
    if (!getVarint(data, pos, feat))
        return false;
    s.feature = static_cast<FeatureId>(feat);
    if (pos >= data.size())
        return false;
    s.kind = static_cast<StreamKind>(data[pos++]);
    return getVarint(data, pos, s.offset) &&
           getVarint(data, pos, s.length) &&
           getVarint(data, pos, s.raw_length) &&
           getU32(data, pos, s.checksum) &&
           getVarint(data, pos, s.value_count);
}

} // namespace

Buffer
FileFooter::serialize() const
{
    Buffer out;
    putVarint(out, total_rows);
    out.push_back(static_cast<uint8_t>(codec));
    out.push_back(encrypted ? 1 : 0);
    out.push_back(flattened ? 1 : 0);
    putVarint(out, stripes.size());
    for (const auto &stripe : stripes) {
        putVarint(out, stripe.first_row);
        putVarint(out, stripe.rows);
        putVarint(out, stripe.offset);
        putVarint(out, stripe.length);
        putVarint(out, stripe.streams.size());
        for (const auto &s : stripe.streams)
            putStreamInfo(out, s);
    }
    putVarint(out, shared_dicts.size());
    for (const auto &s : shared_dicts)
        putStreamInfo(out, s);
    return out;
}

std::optional<FileFooter>
FileFooter::deserialize(ByteSpan data)
{
    FileFooter f;
    size_t pos = 0;
    uint64_t v;
    if (!getVarint(data, pos, f.total_rows))
        return std::nullopt;
    if (pos + 3 > data.size())
        return std::nullopt;
    f.codec = static_cast<Codec>(data[pos++]);
    f.encrypted = data[pos++] != 0;
    f.flattened = data[pos++] != 0;
    if (!getVarint(data, pos, v))
        return std::nullopt;
    f.stripes.resize(v);
    for (auto &stripe : f.stripes) {
        uint64_t rows, nstreams;
        if (!getVarint(data, pos, stripe.first_row) ||
            !getVarint(data, pos, rows) ||
            !getVarint(data, pos, stripe.offset) ||
            !getVarint(data, pos, stripe.length) ||
            !getVarint(data, pos, nstreams)) {
            return std::nullopt;
        }
        stripe.rows = static_cast<uint32_t>(rows);
        stripe.streams.resize(nstreams);
        for (auto &s : stripe.streams) {
            if (!getStreamInfo(data, pos, s))
                return std::nullopt;
        }
    }
    if (!getVarint(data, pos, v))
        return std::nullopt;
    f.shared_dicts.resize(v);
    for (auto &s : f.shared_dicts) {
        if (!getStreamInfo(data, pos, s))
            return std::nullopt;
    }
    if (pos != data.size())
        return std::nullopt;
    return f;
}

} // namespace dsi::dwrf
