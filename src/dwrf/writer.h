/**
 * @file
 * DWRF file writer.
 *
 * Buffers rows, flushes them as stripes of encoded streams, and
 * finishes with an indexed footer. Supports the write-path knobs the
 * paper's co-design study (Section VII) exercises:
 *  - feature flattening vs. legacy map-blob columns,
 *  - rows-per-stripe sizing (larger stripes -> larger average IO),
 *  - popularity-ordered stream placement (popular features adjacent so
 *    coalesced reads over-read less),
 *  - per-stream compression and at-rest encryption.
 */

#ifndef DSI_DWRF_WRITER_H
#define DSI_DWRF_WRITER_H

#include <map>
#include <vector>

#include "dwrf/cipher.h"
#include "dwrf/dedup.h"
#include "dwrf/format.h"
#include "dwrf/row.h"

namespace dsi::dwrf {

/** Configuration of a file writer. */
struct WriterOptions
{
    uint32_t rows_per_stripe = 4096;
    Codec codec = Codec::Lz;
    bool flatten = true;
    bool encrypt = false;
    uint64_t cipher_key = 0x00d5f00dULL;

    /**
     * Optional stream placement order: features listed here (most
     * popular first) have their streams written adjacently, before all
     * unlisted features. Empty = feature-id order.
     */
    std::vector<FeatureId> popularity_order;

    /**
     * RecD-style dedup encoding of sparse columns (flattened mode
     * only): each distinct feature list is stored once in a per-file
     * shared dictionary and stripes store per-row reference codes.
     * Lossless — readers reconstruct byte-identical batches.
     */
    bool dedup = false;

    /** Per-feature shared-dictionary caps (dedup mode). */
    ListDictLimits dedup_limits;
};

/** Write-side dedup accounting (for benches and dwrf.dict_* metrics). */
struct DedupWriteStats
{
    uint64_t dedup_columns = 0;    ///< stripe columns dedup-encoded
    uint64_t dict_entries = 0;     ///< entries across all shared dicts
    uint64_t lists_referenced = 0; ///< rows resolved via a dict code
    uint64_t lists_inline = 0;     ///< rows written inline (dict full)
    Bytes dict_stream_bytes = 0;   ///< stored bytes of dict streams
};

/** Writes one DWRF file into an in-memory buffer. */
class FileWriter
{
  public:
    explicit FileWriter(WriterOptions options);

    /** Append one row; may trigger a stripe flush. */
    void append(const Row &row);

    /** Append many rows. */
    void appendRows(const std::vector<Row> &rows);

    /**
     * Flush pending rows, write the footer, and return the complete
     * file bytes. The writer must not be used afterwards.
     */
    Buffer finish();

    /** Footer of the finished file (valid after finish()). */
    const FileFooter &footer() const { return footer_; }

    /** Rows appended so far. */
    uint64_t rowsWritten() const
    {
        return rows_flushed_ + pending_.size();
    }

    /** Dedup accounting (complete after finish()). */
    const DedupWriteStats &dedupStats() const { return dedup_stats_; }

  private:
    void flushStripe();
    void writeStreamTo(std::vector<StreamInfo> &sink,
                       FeatureId feature, StreamKind kind,
                       const Buffer &raw, uint64_t value_count);
    void writeStream(StripeInfo &stripe, FeatureId feature,
                     StreamKind kind, const Buffer &raw,
                     uint64_t value_count);
    std::vector<size_t> placementOrder(const RowBatch &batch,
                                       bool dense) const;

    WriterOptions options_;
    StreamCipher cipher_;
    Buffer file_;
    FileFooter footer_;
    std::vector<Row> pending_;
    uint64_t rows_flushed_ = 0;
    bool finished_ = false;

    /** Per-feature shared dictionaries accumulated across stripes. */
    std::map<FeatureId, ListDictBuilder> dicts_;
    DedupWriteStats dedup_stats_;
};

} // namespace dsi::dwrf

#endif // DSI_DWRF_WRITER_H
