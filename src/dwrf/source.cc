#include "source.h"

#include "common/logging.h"

namespace dsi::dwrf {

void
MemorySource::read(Bytes offset, Bytes len, Buffer &out) const
{
    dsi_assert(offset + len <= data_.size(),
               "read [%llu, %llu) beyond EOF %zu",
               static_cast<unsigned long long>(offset),
               static_cast<unsigned long long>(offset + len),
               data_.size());
    out.assign(data_.begin() + static_cast<ptrdiff_t>(offset),
               data_.begin() + static_cast<ptrdiff_t>(offset + len));
    trace_.record(offset, len);
}

} // namespace dsi::dwrf
