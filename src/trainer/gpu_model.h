/**
 * @file
 * GPU compute model connecting model operational intensity to
 * ingestion demand (Table VIII).
 *
 * The paper attributes the >6x spread in per-node throughput to
 * "variations in operational intensity (compute per sample) across
 * models" plus synchronization overheads. This model makes the
 * relation explicit: a trainer node's sample rate is its effective
 * FLOP rate divided by the model's FLOPs/sample, and ingestion
 * bandwidth is that rate times the tensor bytes/sample.
 */

#ifndef DSI_TRAINER_GPU_MODEL_H
#define DSI_TRAINER_GPU_MODEL_H

#include "warehouse/model_zoo.h"

namespace dsi::trainer {

/** The 8xV100 trainer node's accelerator complex. */
struct GpuNodeSpec
{
    uint32_t gpus = 8;
    double peak_flops_per_gpu = 15.7e12; ///< V100 fp32 peak
    /** Achieved fraction of peak (sync, memory, launch overheads). */
    double efficiency = 0.35;

    double effectiveFlops() const
    {
        return gpus * peak_flops_per_gpu * efficiency;
    }
};

/**
 * FLOPs/sample implied by a model's published per-node throughput —
 * its operational intensity on this node.
 */
inline double
modelFlopsPerSample(const warehouse::RmSpec &rm,
                    const GpuNodeSpec &node = {})
{
    return node.effectiveFlops() / rm.trainerSamplesPerSec();
}

/** Samples/s a node sustains for a model of given FLOPs/sample. */
inline double
samplesPerSec(double flops_per_sample, const GpuNodeSpec &node = {})
{
    return node.effectiveFlops() / flops_per_sample;
}

/**
 * Ingestion bandwidth (B/s) demanded by a model with the given
 * intensity and tensor size on this node — how faster accelerators
 * (or more efficient kernels) translate directly into DSI demand
 * (the paper's projected 3.5x growth).
 */
inline double
ingestDemandBps(double flops_per_sample, Bytes tensor_bytes,
                const GpuNodeSpec &node = {})
{
    return samplesPerSec(flops_per_sample, node) *
           static_cast<double>(tensor_bytes);
}

} // namespace dsi::trainer

#endif // DSI_TRAINER_GPU_MODEL_H
