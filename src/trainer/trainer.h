/**
 * @file
 * Trainer-node models (Section VI).
 *
 * Three views of the trainer frontend:
 *  - loadingUtilization(): host CPU / memory-bandwidth / NIC cost of
 *    pure data loading at a given ingestion rate (the Fig. 8 dummy
 *    trainer), driven by the datacenter-tax model;
 *  - onHostPreprocessing(): the baseline that runs extraction and
 *    transformation on the trainer's own CPUs (the Table VII
 *    experiment) — the data-stall motivation for DPP;
 *  - measureStallRounds(): a functional stall probe that drives a
 *    fixed per-round tensor demand against a real in-process DPP
 *    worker pool.
 */

#ifndef DSI_TRAINER_TRAINER_H
#define DSI_TRAINER_TRAINER_H

#include "dpp/session.h"
#include "sim/device.h"
#include "sim/tax.h"
#include "warehouse/model_zoo.h"

namespace dsi::trainer {

/** Host-resource utilization from pure data loading (Fig. 8). */
struct LoadingUtilization
{
    double cpu = 0;    ///< of host CPU cycles
    double membw = 0;  ///< of peak memory bandwidth
    double nic = 0;    ///< of NIC line rate
};

/**
 * Frontend utilization when ingesting `rate_bps` of tensors with no
 * extraction or transformation (network stack, TLS, Thrift, memory
 * management only).
 */
LoadingUtilization loadingUtilization(const sim::TrainerHostSpec &host,
                                      const sim::DatacenterTax &tax,
                                      double rate_bps);

/**
 * The trainer-host preprocessing path is lighter per sample than a
 * DPP worker's (no tensor-egress RPC, in-process handoff); these
 * factors scale the worker-calibrated per-sample costs onto the
 * trainer host. Calibrated against Table VII (56% stall, 92% CPU,
 * 54% memBW for RM1).
 */
inline constexpr double kOnHostCycleFactor = 0.236;
inline constexpr double kOnHostMemBwFactor = 0.118;
/** CPU share preprocessing can claim (rest runs the training loop). */
inline constexpr double kOnHostCpuCeiling = 0.92;

/** Outcome of on-host preprocessing for one model (Table VII). */
struct OnHostResult
{
    double demand_qps = 0;  ///< samples/s the GPUs could consume
    double supply_qps = 0;  ///< samples/s the host can preprocess
    double stall_fraction = 0; ///< share of GPU cycles spent waiting
    double cpu_util = 0;
    double membw_util = 0;
};

OnHostResult onHostPreprocessing(const warehouse::RmSpec &rm,
                                 const sim::TrainerHostSpec &host,
                                 const sim::DatacenterTax &tax);

/** Result of the functional stall probe. */
struct StallProbeResult
{
    uint64_t rounds = 0;
    uint64_t stalled_rounds = 0;  ///< rounds with unmet tensor demand
    uint64_t tensors = 0;

    double stallFraction() const
    {
        return rounds ? static_cast<double>(stalled_rounds) /
                            static_cast<double>(rounds)
                      : 0.0;
    }
};

/**
 * Drive a synchronous trainer loop against a real worker pool: each
 * round every worker pumps once and the trainer demands
 * `tensors_per_round`. A round that cannot supply the demand is a
 * stall. Ends when the session drains.
 */
StallProbeResult measureStallRounds(
    const warehouse::Warehouse &warehouse, dpp::SessionSpec spec,
    uint32_t workers, uint32_t tensors_per_round);

} // namespace dsi::trainer

#endif // DSI_TRAINER_TRAINER_H
