#include "trainer.h"

#include <algorithm>

#include "common/logging.h"

namespace dsi::trainer {

LoadingUtilization
loadingUtilization(const sim::TrainerHostSpec &host,
                   const sim::DatacenterTax &tax, double rate_bps)
{
    LoadingUtilization u;
    u.cpu = std::min(1.0, tax.cpuLoad(rate_bps) / host.cyclesPerSec());
    u.membw = std::min(1.0, tax.memBwLoad(rate_bps) /
                                host.memBwBytesPerSec());
    u.nic = std::min(1.0, rate_bps / host.nicBytesPerSec());
    return u;
}

OnHostResult
onHostPreprocessing(const warehouse::RmSpec &rm,
                    const sim::TrainerHostSpec &host,
                    const sim::DatacenterTax &tax)
{
    OnHostResult r;
    r.demand_qps = rm.trainerSamplesPerSec();

    // Per-sample host costs: scaled preprocessing + the loading tax
    // on the raw bytes pulled from storage.
    double cycles = rm.cyclesPerSample() * kOnHostCycleFactor +
                    tax.cyclesPerByte() *
                        static_cast<double>(rm.storage_rx_per_sample);
    double membw = rm.membw_bytes_per_sample * kOnHostMemBwFactor +
                   tax.memBwPerByte() *
                       static_cast<double>(rm.storage_rx_per_sample);

    double cpu_budget = host.cyclesPerSec() * kOnHostCpuCeiling;
    double membw_budget =
        host.memBwBytesPerSec() * sim::kMemBwSaturation;

    double cpu_rate = cpu_budget / cycles;
    double membw_rate = membw_budget / membw;
    double nic_rate =
        host.nicBytesPerSec() * sim::kNicEfficiency /
        static_cast<double>(rm.storage_rx_per_sample);

    r.supply_qps = std::min({cpu_rate, membw_rate, nic_rate});
    double served = std::min(r.supply_qps, r.demand_qps);
    r.stall_fraction = 1.0 - served / r.demand_qps;
    r.cpu_util = served * cycles / host.cyclesPerSec();
    r.membw_util = served * membw / host.memBwBytesPerSec();
    return r;
}

StallProbeResult
measureStallRounds(const warehouse::Warehouse &warehouse,
                   dpp::SessionSpec spec, uint32_t workers,
                   uint32_t tensors_per_round)
{
    dsi_assert(workers >= 1, "need at least one worker");
    dsi_assert(tensors_per_round >= 1, "need positive demand");

    dpp::Master master(warehouse, std::move(spec));
    std::vector<std::unique_ptr<dpp::Worker>> pool;
    for (uint32_t w = 0; w < workers; ++w)
        pool.push_back(
            std::make_unique<dpp::Worker>(master, warehouse));
    std::vector<dpp::Worker *> raw;
    for (auto &w : pool)
        raw.push_back(w.get());
    dpp::Client client(0, 1, raw,
                       dpp::ClientOptions{workers});

    StallProbeResult result;
    for (;;) {
        bool any_work = false;
        for (auto &w : pool)
            any_work = w->pump() || any_work;

        uint32_t got = 0;
        while (got < tensors_per_round) {
            auto tensor = client.next();
            if (!tensor)
                break;
            ++got;
            ++result.tensors;
        }
        bool drained = true;
        for (auto &w : pool)
            drained = drained && w->drained();
        if (!any_work && got == 0 && drained)
            break;
        ++result.rounds;
        if (got < tensors_per_round && !drained)
            ++result.stalled_rounds;
    }
    return result;
}

} // namespace dsi::trainer
