/**
 * @file
 * Table schemas for training datasets.
 *
 * Samples are structured rows of dense and sparse map columns
 * (Section III-A2). A schema lists every logged feature with the
 * statistics that drive synthetic generation: coverage (fraction of
 * rows where the feature appears), average list length for sparse
 * features, and value cardinality.
 */

#ifndef DSI_WAREHOUSE_SCHEMA_H
#define DSI_WAREHOUSE_SCHEMA_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace dsi::warehouse {

/** Storage class of a feature. */
enum class FeatureKind : uint8_t
{
    Dense,       ///< feature id -> continuous value
    Sparse,      ///< feature id -> list of categorical ids
    ScoredSparse,///< sparse plus a parallel float score per id
};

/** Per-feature schema and generation statistics. */
struct FeatureSpec
{
    FeatureId id = 0;
    FeatureKind kind = FeatureKind::Dense;
    double coverage = 1.0;    ///< P(feature present in a row)
    double avg_length = 1.0;  ///< mean list length (sparse kinds)
    uint64_t cardinality = 1u << 20; ///< sparse id domain size

    bool isSparse() const { return kind != FeatureKind::Dense; }

    /** Expected stored payload bytes contributed per row. */
    double expectedBytesPerRow() const
    {
        if (kind == FeatureKind::Dense)
            return coverage * (sizeof(float) + 0.135); // value + bitmap
        // ~4.2 bytes/varint id at 2^20-ish cardinality + length entry.
        double per_id =
            kind == FeatureKind::ScoredSparse ? 4.2 + 4.0 : 4.2;
        return coverage * (avg_length * per_id + 1.2);
    }
};

/** A dataset table schema. */
struct TableSchema
{
    std::string name;
    std::vector<FeatureSpec> features;

    uint32_t countDense() const
    {
        uint32_t n = 0;
        for (const auto &f : features)
            n += f.kind == FeatureKind::Dense;
        return n;
    }
    uint32_t countSparse() const
    {
        uint32_t n = 0;
        for (const auto &f : features)
            n += f.isSparse();
        return n;
    }

    const FeatureSpec *find(FeatureId id) const
    {
        for (const auto &f : features)
            if (f.id == id)
                return &f;
        return nullptr;
    }

    /** Mean row coverage of sparse features (the 'U' of Table V). */
    double sparseCoverage() const
    {
        double sum = 0;
        uint32_t n = 0;
        for (const auto &f : features) {
            if (f.isSparse()) {
                sum += f.coverage;
                ++n;
            }
        }
        return n ? sum / n : 0.0;
    }

    /** Mean list length across sparse features (Table V Avg. Len.). */
    double sparseAvgLength() const
    {
        double sum = 0;
        uint32_t n = 0;
        for (const auto &f : features) {
            if (f.isSparse()) {
                sum += f.avg_length;
                ++n;
            }
        }
        return n ? sum / n : 0.0;
    }

    /** Expected stored payload bytes per row over all features. */
    double expectedBytesPerRow() const
    {
        double b = sizeof(float); // label
        for (const auto &f : features)
            b += f.expectedBytesPerRow();
        return b;
    }
};

} // namespace dsi::warehouse

#endif // DSI_WAREHOUSE_SCHEMA_H
