/**
 * @file
 * Hive-like partitioned tables in the central data warehouse
 * (Section III-A2).
 *
 * A table owns a schema and a set of date partitions; each partition
 * is a list of DWRF files stored in the Tectonic cluster. Training
 * jobs address data as (table, partition row-filter, feature
 * projection), exactly the two filter dimensions of Section V-A.
 */

#ifndef DSI_WAREHOUSE_TABLE_H
#define DSI_WAREHOUSE_TABLE_H

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/tectonic.h"
#include "warehouse/schema.h"

namespace dsi::warehouse {

/** One date partition of a table. */
struct Partition
{
    PartitionId id = 0;
    std::vector<std::string> files; ///< Tectonic file names
    uint64_t rows = 0;
    Bytes stored_bytes = 0;         ///< compressed on-disk bytes
};

/** A partitioned training-data table. */
class Table
{
  public:
    Table() = default;
    Table(std::string name, TableSchema schema)
        : name_(std::move(name)), schema_(std::move(schema))
    {
    }

    const std::string &name() const { return name_; }
    const TableSchema &schema() const { return schema_; }
    TableSchema &schema() { return schema_; }

    /** Register a partition (created by an ETL job). */
    void addPartition(Partition partition);

    /**
     * Drop a partition (retention): removes its files from the given
     * cluster and unregisters it. Dies if the partition is missing.
     */
    void dropPartition(PartitionId id,
                       storage::TectonicCluster &cluster);

    /**
     * Apply retention: keep only the newest `keep` partitions (by
     * id), dropping older ones. Returns partitions dropped.
     */
    uint32_t applyRetention(uint32_t keep,
                            storage::TectonicCluster &cluster);

    const std::vector<Partition> &partitions() const
    {
        return partitions_;
    }
    const Partition *findPartition(PartitionId id) const;

    uint64_t totalRows() const;
    Bytes totalBytes() const;

    /** Bytes of the newest `count` partitions (a row filter). */
    Bytes bytesOfPartitions(const std::vector<PartitionId> &ids) const;

  private:
    std::string name_;
    TableSchema schema_;
    std::vector<Partition> partitions_;
};

/** The central warehouse: a catalog of tables over one Tectonic. */
class Warehouse
{
  public:
    explicit Warehouse(storage::TectonicCluster &cluster)
        : cluster_(cluster)
    {
    }

    storage::TectonicCluster &cluster() { return cluster_; }
    const storage::TectonicCluster &cluster() const { return cluster_; }

    Table &createTable(const std::string &name, TableSchema schema);
    Table *findTable(const std::string &name);
    const Table *findTable(const std::string &name) const;

    std::vector<std::string> tableNames() const;

  private:
    storage::TectonicCluster &cluster_;
    std::map<std::string, Table> tables_;
};

} // namespace dsi::warehouse

#endif // DSI_WAREHOUSE_TABLE_H
