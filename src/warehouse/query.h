/**
 * @file
 * Interactive analytics over warehouse tables (Section III-A).
 *
 * Ranking engineers run Spark/Presto-style queries against the same
 * Hive tables that training reads — a key interoperability
 * requirement of the central warehouse. This is a small columnar
 * query executor over DWRF files: feature statistics, label rates,
 * coverage scans, and top-K categorical values, all using the same
 * selective-projection read path as DPP.
 */

#ifndef DSI_WAREHOUSE_QUERY_H
#define DSI_WAREHOUSE_QUERY_H

#include <map>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "warehouse/table.h"

namespace dsi::warehouse {

/** Aggregate statistics of one dense feature. */
struct DenseFeatureStats
{
    uint64_t rows_scanned = 0;
    uint64_t present = 0;
    RunningStats values;

    double coverage() const
    {
        return rows_scanned
            ? static_cast<double>(present) / rows_scanned
            : 0.0;
    }
};

/** Aggregate statistics of one sparse feature. */
struct SparseFeatureStats
{
    uint64_t rows_scanned = 0;
    uint64_t present = 0;
    uint64_t total_values = 0;

    double coverage() const
    {
        return rows_scanned
            ? static_cast<double>(present) / rows_scanned
            : 0.0;
    }
    double avgLength() const
    {
        return present ? static_cast<double>(total_values) / present
                       : 0.0;
    }
};

/** One (value, count) entry of a top-K result. */
struct ValueCount
{
    int64_t value = 0;
    uint64_t count = 0;
};

/** Columnar query executor over one table. */
class QueryEngine
{
  public:
    QueryEngine(const Warehouse &warehouse, const Table &table)
        : warehouse_(warehouse), table_(table)
    {
    }

    /** SELECT count(*) over the given partitions. */
    uint64_t countRows(const std::vector<PartitionId> &partitions) const;

    /** Fraction of positive labels. */
    double labelRate(const std::vector<PartitionId> &partitions) const;

    /**
     * Per-feature statistics for a dense feature (reads only that
     * feature's streams — the selective-scan path).
     */
    std::optional<DenseFeatureStats> denseStats(
        FeatureId feature,
        const std::vector<PartitionId> &partitions) const;

    std::optional<SparseFeatureStats> sparseStats(
        FeatureId feature,
        const std::vector<PartitionId> &partitions) const;

    /** Top-K most frequent categorical values of a sparse feature. */
    std::vector<ValueCount> topValues(
        FeatureId feature, size_t k,
        const std::vector<PartitionId> &partitions) const;

    /** Bytes fetched from storage by queries so far. */
    Bytes bytesRead() const { return bytes_read_; }

  private:
    template <typename Fn>
    void scan(const std::vector<PartitionId> &partitions,
              const std::vector<FeatureId> &projection, Fn &&fn) const;

    const Warehouse &warehouse_;
    const Table &table_;
    mutable Bytes bytes_read_ = 0;
};

} // namespace dsi::warehouse

#endif // DSI_WAREHOUSE_QUERY_H
