#include "lifecycle.h"

#include "warehouse/schema.h"

#include "common/logging.h"

namespace dsi::warehouse {

const char *
featureStateName(FeatureState s)
{
    switch (s) {
      case FeatureState::Beta:
        return "Beta";
      case FeatureState::Experimental:
        return "Experimental";
      case FeatureState::Active:
        return "Active";
      case FeatureState::Deprecated:
        return "Deprecated";
      case FeatureState::Reaped:
        return "Reaped";
    }
    return "?";
}

void
FeatureRegistry::propose(FeatureId id)
{
    dsi_assert(!states_.count(id), "feature %u already registered", id);
    states_.emplace(id, FeatureState::Beta);
}

void
FeatureRegistry::transition(FeatureId id, FeatureState to)
{
    auto it = states_.find(id);
    dsi_assert(it != states_.end(), "unknown feature %u", id);
    FeatureState from = it->second;
    bool legal = false;
    switch (from) {
      case FeatureState::Beta:
        legal = to == FeatureState::Experimental ||
                to == FeatureState::Reaped;
        break;
      case FeatureState::Experimental:
        legal = to == FeatureState::Active ||
                to == FeatureState::Deprecated;
        break;
      case FeatureState::Active:
        legal = to == FeatureState::Deprecated;
        break;
      case FeatureState::Deprecated:
        legal = to == FeatureState::Reaped;
        break;
      case FeatureState::Reaped:
        legal = false;
        break;
    }
    dsi_assert(legal, "illegal transition %s -> %s for feature %u",
               featureStateName(from), featureStateName(to), id);
    it->second = to;
}

FeatureState
FeatureRegistry::state(FeatureId id) const
{
    auto it = states_.find(id);
    dsi_assert(it != states_.end(), "unknown feature %u", id);
    return it->second;
}

uint64_t
FeatureRegistry::count(FeatureState s) const
{
    uint64_t n = 0;
    for (const auto &[_, st] : states_)
        n += st == s;
    return n;
}

std::vector<FeatureId>
FeatureRegistry::featuresIn(FeatureState s) const
{
    std::vector<FeatureId> out;
    for (const auto &[id, st] : states_)
        if (st == s)
            out.push_back(id);
    return out;
}

LifecycleCensus
simulateCohort(const LifecycleRates &rates, uint32_t window_months,
               uint32_t followup_months, uint64_t seed,
               FeatureRegistry *registry_out)
{
    Rng rng(seed);
    FeatureRegistry registry;
    std::vector<FeatureId> cohort;
    FeatureId next_id = 1;

    uint32_t total_months = window_months + followup_months;
    for (uint32_t month = 0; month < total_months; ++month) {
        // New proposals only during the census window.
        if (month < window_months) {
            uint64_t n = rng.nextPoisson(rates.proposals_per_month);
            for (uint64_t i = 0; i < n; ++i) {
                FeatureId id = next_id++;
                registry.propose(id);
                cohort.push_back(id);
            }
        }
        // Evolve every cohort feature by one month.
        for (FeatureId id : cohort) {
            switch (registry.state(id)) {
              case FeatureState::Beta:
                if (rng.nextBool(rates.beta_to_experimental))
                    registry.transition(id,
                                        FeatureState::Experimental);
                else if (rng.nextBool(rates.beta_to_reaped))
                    registry.transition(id, FeatureState::Reaped);
                break;
              case FeatureState::Experimental:
                if (rng.nextBool(rates.experimental_to_active))
                    registry.transition(id, FeatureState::Active);
                else if (rng.nextBool(
                             rates.experimental_to_deprecated))
                    registry.transition(id, FeatureState::Deprecated);
                break;
              case FeatureState::Active:
                if (rng.nextBool(rates.active_to_deprecated))
                    registry.transition(id, FeatureState::Deprecated);
                break;
              case FeatureState::Deprecated:
                if (rng.nextBool(rates.deprecated_to_reaped))
                    registry.transition(id, FeatureState::Reaped);
                break;
              case FeatureState::Reaped:
                break;
            }
        }
    }

    LifecycleCensus census;
    for (FeatureId id : cohort) {
        switch (registry.state(id)) {
          case FeatureState::Beta:
            ++census.beta;
            break;
          case FeatureState::Experimental:
            ++census.experimental;
            break;
          case FeatureState::Active:
            ++census.active;
            break;
          case FeatureState::Deprecated:
            ++census.deprecated;
            break;
          case FeatureState::Reaped:
            ++census.reaped;
            break;
        }
    }
    if (registry_out)
        *registry_out = std::move(registry);
    return census;
}

TableSchema
writtenSchema(const TableSchema &schema,
              const FeatureRegistry &registry)
{
    TableSchema out;
    out.name = schema.name;
    for (const auto &f : schema.features) {
        if (!registry.contains(f.id) ||
            FeatureRegistry::activelyWritten(registry.state(f.id))) {
            out.features.push_back(f);
        }
    }
    return out;
}

} // namespace dsi::warehouse
