/**
 * @file
 * Feature lifecycle management (Section IV-C, Table II).
 *
 * Features move through a release pipeline: proposed as *beta* (not
 * actively logged; back-filled per exploratory job), promoted to
 * *experimental* when used by combo/RC jobs, to *active* when their
 * model version ships, and eventually *deprecated* (still written) or
 * *reaped* (removed, e.g. for privacy). The FeatureRegistry tracks
 * states; LifecycleSimulator evolves a population month by month with
 * calibrated transition rates so the Table II census emerges.
 */

#ifndef DSI_WAREHOUSE_LIFECYCLE_H
#define DSI_WAREHOUSE_LIFECYCLE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dsi::warehouse {

/** Lifecycle state of a feature. */
enum class FeatureState : uint8_t
{
    Beta,         ///< proposed; injected per-job, not logged
    Experimental, ///< used by combo / release-candidate jobs
    Active,       ///< part of the production model; logged
    Deprecated,   ///< superseded but still written
    Reaped,       ///< physically removed (privacy / cleanup)
};

const char *featureStateName(FeatureState s);

/** Tracks the state of every feature of one table. */
class FeatureRegistry
{
  public:
    /** Register a newly-proposed feature (Beta). */
    void propose(FeatureId id);

    /** Move a feature to a new state (transitions are validated). */
    void transition(FeatureId id, FeatureState to);

    FeatureState state(FeatureId id) const;
    bool contains(FeatureId id) const { return states_.count(id) != 0; }

    /** Is the feature written to new partitions in this state? */
    static bool activelyWritten(FeatureState s)
    {
        return s == FeatureState::Experimental ||
               s == FeatureState::Active ||
               s == FeatureState::Deprecated;
    }

    uint64_t count(FeatureState s) const;
    uint64_t total() const { return states_.size(); }

    std::vector<FeatureId> featuresIn(FeatureState s) const;

  private:
    std::map<FeatureId, FeatureState> states_;
};

/** Monthly transition probabilities of the lifecycle Markov model. */
struct LifecycleRates
{
    /** New features proposed per month (Table II: 14614 / 6 months). */
    double proposals_per_month = 2436.0;
    double beta_to_experimental = 0.036;
    double beta_to_reaped = 0.002;
    double experimental_to_active = 0.20;
    double experimental_to_deprecated = 0.22;
    double active_to_deprecated = 0.015;
    double deprecated_to_reaped = 0.002;

    /**
     * Fraction of promoted experimental features that come from
     * *older* cohorts already in the table (the census of Table II
     * only counts features created inside the window).
     */
    double churn_noise = 0.15;
};

/** Census of a feature cohort after simulation (cf. Table II). */
struct LifecycleCensus
{
    uint64_t beta = 0;
    uint64_t experimental = 0;
    uint64_t active = 0;
    uint64_t deprecated = 0;
    uint64_t reaped = 0;

    uint64_t total() const
    {
        return beta + experimental + active + deprecated + reaped;
    }
    /** Total as Table II reports it (reaped features disappear). */
    uint64_t visibleTotal() const { return total() - reaped; }
};

/**
 * Simulate `window_months` of proposals followed by `followup_months`
 * of further evolution, and report the census of the features created
 * during the window — the exact Table II experiment.
 */
LifecycleCensus simulateCohort(const LifecycleRates &rates,
                               uint32_t window_months,
                               uint32_t followup_months, uint64_t seed,
                               FeatureRegistry *registry_out = nullptr);

// Forward declaration (schema.h is already included transitively by
// users; kept explicit here).
struct TableSchema;

/**
 * The schema actually *written* to new partitions: only features in
 * actively-written lifecycle states (beta features are injected
 * per-job instead, reaped features are gone). Features missing from
 * the registry are treated as active legacy features.
 */
TableSchema writtenSchema(const TableSchema &schema,
                          const FeatureRegistry &registry);

} // namespace dsi::warehouse

#endif // DSI_WAREHOUSE_LIFECYCLE_H
