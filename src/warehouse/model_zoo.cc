#include "model_zoo.h"

#include <algorithm>
#include <cmath>

namespace dsi::warehouse {

SchemaParams
RmSpec::schemaParams(uint64_t seed) const
{
    SchemaParams p;
    p.name = name;
    p.float_features = table_float_features;
    p.sparse_features = table_sparse_features;
    p.coverage_u = coverage_u;
    p.avg_length = avg_length;
    p.popularity_alpha = popularity_alpha;
    p.seed = seed;
    return p;
}

SchemaParams
RmSpec::scaledSchemaParams(double scale, uint64_t seed) const
{
    SchemaParams p = schemaParams(seed);
    p.float_features = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               std::lround(table_float_features * scale)));
    p.sparse_features = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               std::lround(table_sparse_features * scale)));
    return p;
}

RmSpec
rm1()
{
    RmSpec rm;
    rm.name = "RM1";
    // Table V
    rm.table_float_features = 12115;
    rm.table_sparse_features = 1763;
    rm.coverage_u = 0.45;
    rm.avg_length = 25.97;
    rm.paper_pct_feats_used = 11.0;
    rm.paper_pct_bytes_used = 37.0;
    // Table IV
    rm.dense_used = 1221;
    rm.sparse_used = 298;
    rm.derived_features = 304;
    // Table III: 13.45 PB total, 0.15 PB each, 11.95 PB used
    rm.each_partition_pb = 0.15;
    rm.total_partitions = 90;
    rm.used_partitions = 80;
    // Table VIII
    rm.trainer_node_gbps = 16.50;
    // Table IX byte flows: 0.8 / 1.37 / 0.68 GB/s at 11.623 kQPS
    rm.storage_rx_per_sample = 68800;
    rm.raw_per_sample = 117900;
    rm.tensor_per_sample = 58500;
    // Calibration: memory-bandwidth + CPU bound on C-v1 (Fig. 9)
    rm.extract_cycles_per_sample = 0.85e6;
    rm.transform_cycles_per_sample = 2.55e6;
    rm.membw_bytes_per_sample = 4.5e6;
    rm.mem_gb_per_worker_thread = 2.5;
    // Fig. 7: 39% of bytes serve 80% of traffic
    rm.popularity_alpha = 1.00;
    rm.paper_hot_fraction_80 = 0.39;
    rm.paper_worker_kqps = 11.623;
    rm.paper_nodes_required = 24.16;
    return rm;
}

RmSpec
rm2()
{
    RmSpec rm;
    rm.name = "RM2";
    rm.table_float_features = 12596;
    rm.table_sparse_features = 1817;
    rm.coverage_u = 0.41;
    rm.avg_length = 25.57;
    rm.paper_pct_feats_used = 10.0;
    rm.paper_pct_bytes_used = 34.0;
    rm.dense_used = 1113;
    rm.sparse_used = 306;
    rm.derived_features = 317;
    // Table III: 29.18 PB total, 0.32 PB each, 25.94 PB used
    rm.each_partition_pb = 0.32;
    rm.total_partitions = 91;
    rm.used_partitions = 81;
    rm.trainer_node_gbps = 4.69;
    // Table IX: 1.2 / 0.96 / 0.50 GB/s at 7.995 kQPS. Storage RX
    // exceeds raw bytes: coalesced reads over-read unused features.
    rm.storage_rx_per_sample = 150100;
    rm.raw_per_sample = 120100;
    rm.tensor_per_sample = 62500;
    // Calibration: ingress-NIC bound on C-v1 (Table IX text)
    rm.extract_cycles_per_sample = 0.80e6;
    rm.transform_cycles_per_sample = 1.80e6;
    rm.membw_bytes_per_sample = 4.15e6;
    rm.mem_gb_per_worker_thread = 2.5;
    rm.popularity_alpha = 1.02;
    rm.paper_hot_fraction_80 = 0.37;
    rm.paper_worker_kqps = 7.995;
    rm.paper_nodes_required = 9.44;
    return rm;
}

RmSpec
rm3()
{
    RmSpec rm;
    rm.name = "RM3";
    rm.table_float_features = 5707;
    rm.table_sparse_features = 188;
    rm.coverage_u = 0.29;
    rm.avg_length = 19.64;
    rm.paper_pct_feats_used = 9.0;
    rm.paper_pct_bytes_used = 21.0;
    rm.dense_used = 504;
    rm.sparse_used = 42;
    rm.derived_features = 1;
    // Table III: 2.93 PB total, 0.07 PB each, 1.95 PB used
    rm.each_partition_pb = 0.07;
    rm.total_partitions = 42;
    rm.used_partitions = 28;
    rm.trainer_node_gbps = 12.00;
    // Table IX: 0.8 / 1.01 / 0.22 GB/s at 36.921 kQPS
    rm.storage_rx_per_sample = 21700;
    rm.raw_per_sample = 27400;
    rm.tensor_per_sample = 5960;
    // Calibration: memory-capacity bound (thread pool limited to
    // avoid OOM), so CPU threads are the effective limit (Fig. 9)
    rm.extract_cycles_per_sample = 0.45e6;
    rm.transform_cycles_per_sample = 0.498e6;
    rm.membw_bytes_per_sample = 1.3e6;
    rm.mem_gb_per_worker_thread = 4.0;
    // Fig. 7: only 18% of bytes serve 80% of traffic (low variance)
    rm.popularity_alpha = 1.70;
    rm.paper_hot_fraction_80 = 0.18;
    rm.paper_worker_kqps = 36.921;
    rm.paper_nodes_required = 55.22;
    return rm;
}

std::vector<RmSpec>
allRms()
{
    return {rm1(), rm2(), rm3()};
}

} // namespace dsi::warehouse
