#include "table.h"

#include <algorithm>

#include "common/logging.h"

namespace dsi::warehouse {

void
Table::addPartition(Partition partition)
{
    for (const auto &p : partitions_) {
        dsi_assert(p.id != partition.id,
                   "duplicate partition %u in table '%s'", partition.id,
                   name_.c_str());
    }
    partitions_.push_back(std::move(partition));
}

void
Table::dropPartition(PartitionId id, storage::TectonicCluster &cluster)
{
    for (auto it = partitions_.begin(); it != partitions_.end(); ++it) {
        if (it->id != id)
            continue;
        for (const auto &f : it->files)
            cluster.remove(f);
        partitions_.erase(it);
        return;
    }
    dsi_fatal("dropPartition: partition %u missing in '%s'", id,
              name_.c_str());
}

uint32_t
Table::applyRetention(uint32_t keep, storage::TectonicCluster &cluster)
{
    if (partitions_.size() <= keep)
        return 0;
    // Partitions are dated by id: drop the lowest ids first.
    std::vector<PartitionId> ids;
    for (const auto &p : partitions_)
        ids.push_back(p.id);
    std::sort(ids.begin(), ids.end());
    uint32_t to_drop =
        static_cast<uint32_t>(partitions_.size()) - keep;
    for (uint32_t i = 0; i < to_drop; ++i)
        dropPartition(ids[i], cluster);
    return to_drop;
}

const Partition *
Table::findPartition(PartitionId id) const
{
    for (const auto &p : partitions_)
        if (p.id == id)
            return &p;
    return nullptr;
}

uint64_t
Table::totalRows() const
{
    uint64_t n = 0;
    for (const auto &p : partitions_)
        n += p.rows;
    return n;
}

Bytes
Table::totalBytes() const
{
    Bytes b = 0;
    for (const auto &p : partitions_)
        b += p.stored_bytes;
    return b;
}

Bytes
Table::bytesOfPartitions(const std::vector<PartitionId> &ids) const
{
    Bytes b = 0;
    for (PartitionId id : ids) {
        const Partition *p = findPartition(id);
        dsi_assert(p != nullptr, "partition %u missing in '%s'", id,
                   name_.c_str());
        b += p->stored_bytes;
    }
    return b;
}

Table &
Warehouse::createTable(const std::string &name, TableSchema schema)
{
    dsi_assert(!tables_.count(name), "table '%s' already exists",
               name.c_str());
    auto [it, _] = tables_.emplace(name, Table(name, std::move(schema)));
    return it->second;
}

Table *
Warehouse::findTable(const std::string &name)
{
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
}

const Table *
Warehouse::findTable(const std::string &name) const
{
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string>
Warehouse::tableNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, _] : tables_)
        out.push_back(name);
    return out;
}

} // namespace dsi::warehouse
