#include "datagen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"

namespace dsi::warehouse {

TableSchema
makeSchema(const SchemaParams &params)
{
    dsi_assert(params.float_features + params.sparse_features > 0,
               "schema needs features");
    Rng rng(params.seed);
    TableSchema schema;
    schema.name = params.name;
    schema.features.reserve(params.float_features +
                            params.sparse_features);

    FeatureId next_id = 1;
    for (uint32_t i = 0; i < params.float_features; ++i) {
        FeatureSpec f;
        f.id = next_id++;
        f.kind = FeatureKind::Dense;
        // Dense features are near-universally logged.
        f.coverage = std::clamp(0.85 + 0.15 * rng.nextDouble(), 0.0, 1.0);
        schema.features.push_back(f);
    }
    for (uint32_t i = 0; i < params.sparse_features; ++i) {
        FeatureSpec f;
        f.id = next_id++;
        f.kind = rng.nextBool(params.scored_fraction)
            ? FeatureKind::ScoredSparse
            : FeatureKind::Sparse;
        // Per-feature coverage scattered around the table mean U.
        f.coverage = std::clamp(
            params.coverage_u * rng.nextLogNormal(1.0, 0.55), 0.01,
            1.0);
        f.avg_length =
            std::max(1.0, rng.nextLogNormal(params.avg_length, 0.8));
        f.cardinality = params.cardinality;
        schema.features.push_back(f);
    }
    // Keep the realized sparse means close to the requested table
    // statistics by rescaling (the lognormal draws wander).
    double u = schema.sparseCoverage();
    double len = schema.sparseAvgLength();
    if (u > 0 && len > 0 && params.sparse_features > 0) {
        for (auto &f : schema.features) {
            if (!f.isSparse())
                continue;
            f.coverage = std::clamp(
                f.coverage * params.coverage_u / u, 0.01, 1.0);
            f.avg_length =
                std::max(1.0, f.avg_length * params.avg_length / len);
        }
    }
    return schema;
}

std::vector<double>
featurePopularity(const TableSchema &schema, double alpha,
                  uint64_t seed)
{
    Rng rng(seed);
    const size_t n = schema.features.size();

    // Popular (frequently projected) features tend to be the ones with
    // larger coverage and length — "stronger signals" (Section V-A) —
    // so the popularity rank is a noisy ordering by expected bytes.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::vector<double> score(n);
    for (size_t i = 0; i < n; ++i) {
        double bytes = schema.features[i].expectedBytesPerRow();
        score[i] = 2.8 * std::log(bytes + 1e-9) + rng.nextGaussian() * 0.9;
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return score[a] > score[b]; });

    std::vector<double> pop(n);
    for (size_t rank = 0; rank < n; ++rank) {
        pop[order[rank]] =
            std::pow(static_cast<double>(rank + 1), -alpha);
    }
    return pop;
}

RowGenerator::RowGenerator(const TableSchema &schema, uint64_t seed)
    : schema_(schema), rng_(seed)
{
    // One Zipf sampler per distinct cardinality; features index into
    // the shared sampler table.
    std::map<uint64_t, size_t> by_card;
    sampler_index_.resize(schema_.features.size(), 0);
    for (size_t i = 0; i < schema_.features.size(); ++i) {
        const auto &f = schema_.features[i];
        if (!f.isSparse())
            continue;
        auto it = by_card.find(f.cardinality);
        if (it == by_card.end()) {
            it = by_card.emplace(f.cardinality, value_samplers_.size())
                     .first;
            value_samplers_.emplace_back(f.cardinality, 1.08);
        }
        sampler_index_[i] = it->second;
    }
}

dwrf::Row
RowGenerator::next()
{
    dwrf::Row row;
    row.label = rng_.nextBool(0.03) ? 1.0f : 0.0f;
    for (size_t fi = 0; fi < schema_.features.size(); ++fi) {
        const auto &f = schema_.features[fi];
        if (!rng_.nextBool(f.coverage))
            continue;
        if (f.kind == FeatureKind::Dense) {
            // Quantized log-normal-ish values: compressible but varied.
            float v = static_cast<float>(
                std::round(rng_.nextLogNormal(100.0, 1.0)) / 4.0);
            row.dense.push_back({f.id, v});
            continue;
        }
        dwrf::SparseFeature s;
        s.id = f.id;
        uint64_t len = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::llround(rng_.nextLogNormal(f.avg_length, 0.7))));
        len = std::min<uint64_t>(len,
                                 static_cast<uint64_t>(f.avg_length) *
                                         20 +
                                     50);
        const auto &sampler = value_samplers_[sampler_index_[fi]];
        s.values.reserve(len);
        for (uint64_t k = 0; k < len; ++k)
            s.values.push_back(
                static_cast<int64_t>(sampler.sample(rng_)));
        if (f.kind == FeatureKind::ScoredSparse) {
            s.scores.reserve(len);
            for (uint64_t k = 0; k < len; ++k)
                s.scores.push_back(
                    static_cast<float>(rng_.nextDouble()));
        }
        row.sparse.push_back(std::move(s));
    }
    return row;
}

std::vector<dwrf::Row>
RowGenerator::batch(uint32_t n)
{
    std::vector<dwrf::Row> rows;
    rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        rows.push_back(next());
    return rows;
}

DupRowGenerator::DupRowGenerator(const TableSchema &schema,
                                 DupParams params)
    : sampler_(std::max<uint32_t>(1, params.pool_size), params.alpha),
      rng_(params.seed)
{
    RowGenerator gen(schema, params.seed ^ 0xD00DULL);
    pool_ = gen.batch(std::max<uint32_t>(1, params.pool_size));
}

dwrf::Row
DupRowGenerator::next()
{
    // Copy a pooled payload; only the label is per-draw, so repeated
    // draws of one pool slot are byte-identical in feature content.
    dwrf::Row row = pool_[sampler_.sample(rng_)];
    row.label = rng_.nextBool(0.03) ? 1.0f : 0.0f;
    return row;
}

std::vector<dwrf::Row>
DupRowGenerator::batch(uint32_t n)
{
    std::vector<dwrf::Row> rows;
    rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        rows.push_back(next());
    return rows;
}

std::vector<FeatureId>
chooseProjection(const TableSchema &schema,
                 const std::vector<double> &pop, uint32_t dense_used,
                 uint32_t sparse_used, uint64_t seed)
{
    dsi_assert(pop.size() == schema.features.size(),
               "popularity vector mismatched with schema");
    Rng rng(seed);

    // Weighted sampling without replacement via exponential keys:
    // the k smallest (-log u / w) keys are a weighted sample.
    struct Keyed
    {
        double key;
        size_t idx;
    };
    std::vector<Keyed> dense_keys, sparse_keys;
    for (size_t i = 0; i < schema.features.size(); ++i) {
        double u = rng.nextDouble();
        if (u < 1e-300)
            u = 1e-300;
        double key = -std::log(u) / std::max(pop[i], 1e-12);
        if (schema.features[i].isSparse())
            sparse_keys.push_back({key, i});
        else
            dense_keys.push_back({key, i});
    }
    auto take = [&](std::vector<Keyed> &keys, uint32_t count,
                    std::vector<FeatureId> &out) {
        count = std::min<uint32_t>(count,
                                   static_cast<uint32_t>(keys.size()));
        std::partial_sort(keys.begin(), keys.begin() + count,
                          keys.end(), [](const Keyed &a, const Keyed &b) {
                              return a.key < b.key;
                          });
        for (uint32_t i = 0; i < count; ++i)
            out.push_back(schema.features[keys[i].idx].id);
    };
    std::vector<FeatureId> projection;
    take(dense_keys, dense_used, projection);
    take(sparse_keys, sparse_used, projection);
    std::sort(projection.begin(), projection.end());
    return projection;
}

} // namespace dsi::warehouse
