/**
 * @file
 * The three representative production recommendation models (RM1-3)
 * and their published characteristics, used to calibrate every
 * experiment. Each constant is traceable to a paper table:
 *
 *  - Table III: partition counts/sizes (PB),
 *  - Table IV:  features required by a release-candidate model,
 *  - Table V:   dataset-level feature statistics,
 *  - Table VIII: per-trainer-node GPU ingestion throughput,
 *  - Table IX:  DPP worker per-sample byte flows (derived from the
 *               published kQPS and GB/s),
 *  - Fig. 7:    cross-job feature reuse skew,
 *  - Fig. 9 / Table IX text: which resource bottlenecks each model.
 *
 * Per-sample cycle/byte costs are calibrated so that a worker on a
 * C-v1 node (Table X) saturates at the paper's measured kQPS with the
 * paper's bottleneck resource.
 */

#ifndef DSI_WAREHOUSE_MODEL_ZOO_H
#define DSI_WAREHOUSE_MODEL_ZOO_H

#include <string>
#include <vector>

#include "common/types.h"
#include "warehouse/datagen.h"
#include "warehouse/schema.h"

namespace dsi::warehouse {

/** Everything the experiments need to know about one RM. */
struct RmSpec
{
    std::string name;

    // --- Table V: dataset statistics ---
    uint32_t table_float_features = 0;
    uint32_t table_sparse_features = 0;
    double coverage_u = 0.0;
    double avg_length = 0.0;
    double paper_pct_feats_used = 0.0;
    double paper_pct_bytes_used = 0.0;

    // --- Table IV: model (release candidate) projection ---
    uint32_t dense_used = 0;
    uint32_t sparse_used = 0;
    uint32_t derived_features = 0;

    // --- Table III: partition layout (PB, counts) ---
    double each_partition_pb = 0.0;
    uint32_t total_partitions = 0;
    uint32_t used_partitions = 0;

    double allPartitionsPb() const
    {
        return each_partition_pb * total_partitions;
    }
    double usedPartitionsPb() const
    {
        return each_partition_pb * used_partitions;
    }

    // --- Table VIII: trainer demand ---
    double trainer_node_gbps = 0.0; ///< tensor bytes/s per trainer node

    // --- Table IX: per-sample byte flows through a DPP worker ---
    Bytes storage_rx_per_sample = 0; ///< compressed + over-read
    Bytes raw_per_sample = 0;        ///< uncompressed extracted bytes
    Bytes tensor_per_sample = 0;     ///< transformed tensor bytes

    // --- calibrated worker cost model (see header comment) ---
    double extract_cycles_per_sample = 0.0;
    double transform_cycles_per_sample = 0.0;
    double membw_bytes_per_sample = 0.0;
    double mem_gb_per_worker_thread = 0.0;

    // --- Fig. 7: cross-job reuse skew ---
    double popularity_alpha = 1.0;
    /** Paper: fraction of bytes serving 80% of IO traffic. */
    double paper_hot_fraction_80 = 0.0;

    // --- paper-reported worker results, for comparison tables ---
    double paper_worker_kqps = 0.0;
    double paper_nodes_required = 0.0;

    double cyclesPerSample() const
    {
        return extract_cycles_per_sample + transform_cycles_per_sample;
    }

    /** Samples/second one trainer node ingests (Table VIII / IX). */
    double trainerSamplesPerSec() const
    {
        return trainer_node_gbps * 1e9 /
               static_cast<double>(tensor_per_sample);
    }

    /** Schema parameters reproducing the Table V statistics. */
    SchemaParams schemaParams(uint64_t seed = 7) const;

    /**
     * Down-scaled schema for functional (real-IO) experiments: same
     * statistics, `scale` times fewer features.
     */
    SchemaParams scaledSchemaParams(double scale, uint64_t seed = 7)
        const;
};

/** RM1-3 of the paper. */
RmSpec rm1();
RmSpec rm2();
RmSpec rm3();
std::vector<RmSpec> allRms();

/**
 * Transform cycle distribution across operation classes
 * (Section VI-D): feature generation ~75%, sparse normalization ~20%,
 * dense normalization ~5%.
 */
struct TransformCycleSplit
{
    double feature_generation = 0.75;
    double sparse_normalization = 0.20;
    double dense_normalization = 0.05;
};

} // namespace dsi::warehouse

#endif // DSI_WAREHOUSE_MODEL_ZOO_H
