#include "query.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "dwrf/reader.h"

namespace dsi::warehouse {

namespace {

/**
 * Feature ids start at 1, so projecting {0} matches no feature
 * stream: only always-read streams (labels) are fetched.
 */
constexpr FeatureId kLabelOnlyProjection = 0;

} // namespace

template <typename Fn>
void
QueryEngine::scan(const std::vector<PartitionId> &partitions,
                  const std::vector<FeatureId> &projection,
                  Fn &&fn) const
{
    for (PartitionId pid : partitions) {
        const Partition *partition = table_.findPartition(pid);
        dsi_assert(partition != nullptr, "partition %u missing", pid);
        for (const auto &file : partition->files) {
            auto source = warehouse_.cluster().open(file);
            dwrf::ReadOptions ro;
            ro.projection = projection;
            dwrf::FileReader reader(*source, ro);
            dsi_assert(reader.valid(), "unreadable file '%s'",
                       file.c_str());
            for (size_t s = 0; s < reader.stripeCount(); ++s) {
                auto batch = reader.readStripe(s);
                fn(batch);
            }
            bytes_read_ += reader.stats().bytes_read;
        }
    }
}

uint64_t
QueryEngine::countRows(const std::vector<PartitionId> &partitions) const
{
    // The footer already knows; use the cheap metadata path like a
    // real engine would.
    uint64_t rows = 0;
    for (PartitionId pid : partitions) {
        const Partition *partition = table_.findPartition(pid);
        dsi_assert(partition != nullptr, "partition %u missing", pid);
        rows += partition->rows;
    }
    return rows;
}

double
QueryEngine::labelRate(const std::vector<PartitionId> &partitions) const
{
    // Project zero features: only the label stream is read.
    uint64_t rows = 0, positives = 0;
    scan(partitions, {kLabelOnlyProjection},
         [&](const dwrf::RowBatch &batch) {
             rows += batch.rows;
             for (float label : batch.labels)
                 positives += label > 0.5f;
         });
    return rows ? static_cast<double>(positives) / rows : 0.0;
}

std::optional<DenseFeatureStats>
QueryEngine::denseStats(FeatureId feature,
                        const std::vector<PartitionId> &partitions)
    const
{
    const FeatureSpec *spec = table_.schema().find(feature);
    if (!spec || spec->isSparse())
        return std::nullopt;
    DenseFeatureStats stats;
    scan(partitions, {feature}, [&](const dwrf::RowBatch &batch) {
        stats.rows_scanned += batch.rows;
        const auto *col = batch.findDense(feature);
        if (!col)
            return;
        for (uint32_t r = 0; r < batch.rows; ++r) {
            if (col->isPresent(r)) {
                ++stats.present;
                stats.values.add(col->values[r]);
            }
        }
    });
    return stats;
}

std::optional<SparseFeatureStats>
QueryEngine::sparseStats(FeatureId feature,
                         const std::vector<PartitionId> &partitions)
    const
{
    const FeatureSpec *spec = table_.schema().find(feature);
    if (!spec || !spec->isSparse())
        return std::nullopt;
    SparseFeatureStats stats;
    scan(partitions, {feature}, [&](const dwrf::RowBatch &batch) {
        stats.rows_scanned += batch.rows;
        const auto *col = batch.findSparse(feature);
        if (!col)
            return;
        for (uint32_t r = 0; r < batch.rows; ++r) {
            uint32_t len = col->length(r);
            if (len > 0) {
                ++stats.present;
                stats.total_values += len;
            }
        }
    });
    return stats;
}

std::vector<ValueCount>
QueryEngine::topValues(FeatureId feature, size_t k,
                       const std::vector<PartitionId> &partitions)
    const
{
    std::unordered_map<int64_t, uint64_t> counts;
    scan(partitions, {feature}, [&](const dwrf::RowBatch &batch) {
        const auto *col = batch.findSparse(feature);
        if (!col)
            return;
        for (int64_t v : col->values)
            ++counts[v];
    });
    std::vector<ValueCount> out;
    out.reserve(counts.size());
    for (const auto &[value, count] : counts)
        out.push_back({value, count});
    std::sort(out.begin(), out.end(),
              [](const ValueCount &a, const ValueCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.value < b.value;
              });
    if (out.size() > k)
        out.resize(k);
    return out;
}

} // namespace dsi::warehouse
