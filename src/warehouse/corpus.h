/**
 * @file
 * Shared synthetic-corpus builder: a Tectonic cluster plus a warehouse
 * holding one generated table, written through the real DWRF writer.
 *
 * Tests (tests/test_fixtures.h) and benchmarks
 * (bench/test_fixtures_bench.h) both build their datasets through this
 * one function, so benchmark numbers and test assertions always refer
 * to the same corpus shapes — the fixture duplication that used to
 * let them drift is gone.
 */

#ifndef DSI_WAREHOUSE_CORPUS_H
#define DSI_WAREHOUSE_CORPUS_H

#include <memory>
#include <string>

#include "dwrf/writer.h"
#include "storage/tectonic.h"
#include "warehouse/datagen.h"
#include "warehouse/table.h"

namespace dsi::warehouse {

/** A Tectonic cluster + warehouse with one generated table. */
struct MiniCorpus
{
    std::unique_ptr<storage::TectonicCluster> cluster;
    std::unique_ptr<warehouse::Warehouse> warehouse;
    warehouse::TableSchema schema;
    std::vector<double> popularity;
    std::string name;

    warehouse::Table &table() { return *warehouse->findTable(name); }
};

/**
 * Set up the cluster/warehouse/schema shell of a corpus and write
 * `partitions` x `rows_per_partition` rows drawn from `gen` (any type
 * with `batch(uint32_t) -> std::vector<dwrf::Row>`) through the real
 * DWRF writer. Shared by the plain and duplicated corpus builders so
 * the two differ only in their row source.
 */
template <typename RowGen>
inline MiniCorpus
buildCorpusFrom(const warehouse::SchemaParams &params, RowGen make_gen,
                uint32_t partitions, uint64_t rows_per_partition,
                uint64_t rows_per_file,
                dwrf::WriterOptions writer_options,
                storage::StorageOptions storage_options)
{
    MiniCorpus mc;
    mc.name = params.name;
    mc.cluster = std::make_unique<storage::TectonicCluster>(
        storage_options);
    mc.warehouse = std::make_unique<warehouse::Warehouse>(*mc.cluster);
    mc.schema = warehouse::makeSchema(params);
    mc.popularity = warehouse::featurePopularity(
        mc.schema, params.popularity_alpha, params.seed ^ 0x9999);

    auto &table = mc.warehouse->createTable(params.name, mc.schema);
    auto gen = make_gen(mc.schema);
    for (uint32_t p = 0; p < partitions; ++p) {
        warehouse::Partition partition;
        partition.id = p;
        uint64_t remaining = rows_per_partition;
        uint32_t file_idx = 0;
        while (remaining > 0) {
            uint64_t n = remaining < rows_per_file ? remaining
                                                   : rows_per_file;
            dwrf::FileWriter writer(writer_options);
            writer.appendRows(gen.batch(static_cast<uint32_t>(n)));
            auto bytes = writer.finish();
            std::string fname = params.name + "/p" +
                                std::to_string(p) + "/f" +
                                std::to_string(file_idx++) + ".dwrf";
            partition.stored_bytes += bytes.size();
            mc.cluster->put(fname, bytes);
            partition.files.push_back(fname);
            partition.rows += n;
            remaining -= n;
        }
        table.addPartition(std::move(partition));
    }
    return mc;
}

/**
 * Build a table of `partitions` x `rows_per_partition` rows split into
 * files of `rows_per_file`, generated from `params`.
 */
inline MiniCorpus
buildMiniCorpus(const warehouse::SchemaParams &params,
                uint32_t partitions, uint64_t rows_per_partition,
                uint64_t rows_per_file = 2048,
                dwrf::WriterOptions writer_options = {},
                storage::StorageOptions storage_options = {})
{
    return buildCorpusFrom(
        params,
        [&](const warehouse::TableSchema &schema) {
            return warehouse::RowGenerator(schema,
                                           params.seed ^ 0x1234);
        },
        partitions, rows_per_partition, rows_per_file, writer_options,
        storage_options);
}

/**
 * Like buildMiniCorpus, but rows come from DupRowGenerator: a pool of
 * `dup.pool_size` distinct feature payloads re-sampled Zipf(`alpha`)
 * with fresh labels — the duplicated corpus shape every dedup test
 * and benchmark shares.
 */
inline MiniCorpus
buildDupMiniCorpus(const warehouse::SchemaParams &params,
                   const warehouse::DupParams &dup, uint32_t partitions,
                   uint64_t rows_per_partition,
                   uint64_t rows_per_file = 2048,
                   dwrf::WriterOptions writer_options = {},
                   storage::StorageOptions storage_options = {})
{
    return buildCorpusFrom(
        params,
        [&](const warehouse::TableSchema &schema) {
            return warehouse::DupRowGenerator(schema, dup);
        },
        partitions, rows_per_partition, rows_per_file, writer_options,
        storage_options);
}

} // namespace dsi::warehouse

#endif // DSI_WAREHOUSE_CORPUS_H
