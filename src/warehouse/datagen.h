/**
 * @file
 * Synthetic dataset generation calibrated to the paper's published
 * per-model statistics (Tables IV & V).
 *
 * We cannot use Meta's production logs, so rows are generated with the
 * same *statistics* the characterization depends on: feature counts,
 * per-feature coverage, sparse list lengths, and Zipfian popularity of
 * both feature usage and categorical values. See DESIGN.md's
 * substitution table.
 */

#ifndef DSI_WAREHOUSE_DATAGEN_H
#define DSI_WAREHOUSE_DATAGEN_H

#include <vector>

#include "common/rng.h"
#include "dwrf/row.h"
#include "warehouse/schema.h"

namespace dsi::warehouse {

/** Parameters of a schema synthesizer. */
struct SchemaParams
{
    std::string name = "table";
    uint32_t float_features = 100;  ///< Table V "# Float Feats."
    uint32_t sparse_features = 20;  ///< Table V "# Sparse Feats."
    double scored_fraction = 0.25;  ///< sparse features with scores
    double coverage_u = 0.45;       ///< Table V "U": mean coverage
    double avg_length = 25.0;       ///< Table V "Avg. Len."
    uint64_t cardinality = 1u << 20;
    /** Zipf skew of per-feature popularity weights (job reuse). */
    double popularity_alpha = 1.05;
    uint64_t seed = 7;
};

/**
 * Build a schema whose aggregate statistics match `params`: coverage
 * is drawn per feature around coverage_u, lengths around avg_length,
 * and each feature receives a popularity weight used when jobs choose
 * projections (Section V-B).
 */
TableSchema makeSchema(const SchemaParams &params);

/**
 * Popularity weight per feature (index-aligned with schema.features).
 * Used to pick projections so that jobs collectively favor the same
 * "hot" features, reproducing the Fig. 7 reuse CDF.
 */
std::vector<double> featurePopularity(const TableSchema &schema,
                                      double alpha, uint64_t seed);

/** Generates rows matching a schema's statistics. */
class RowGenerator
{
  public:
    RowGenerator(const TableSchema &schema, uint64_t seed);

    /** Generate the next row. */
    dwrf::Row next();

    /** Generate a batch of rows. */
    std::vector<dwrf::Row> batch(uint32_t n);

  private:
    const TableSchema &schema_;
    Rng rng_;
    std::vector<ZipfSampler> value_samplers_;
    std::vector<size_t> sampler_index_; ///< per-feature sampler slot
};

/**
 * Choose a feature projection of `dense_used` dense and `sparse_used`
 * sparse features, sampling without replacement proportionally to
 * popularity. Models how ML engineers favor strong-signal features.
 */
std::vector<FeatureId> chooseProjection(const TableSchema &schema,
                                        const std::vector<double> &pop,
                                        uint32_t dense_used,
                                        uint32_t sparse_used,
                                        uint64_t seed);

} // namespace dsi::warehouse

#endif // DSI_WAREHOUSE_DATAGEN_H
