/**
 * @file
 * Synthetic dataset generation calibrated to the paper's published
 * per-model statistics (Tables IV & V).
 *
 * We cannot use Meta's production logs, so rows are generated with the
 * same *statistics* the characterization depends on: feature counts,
 * per-feature coverage, sparse list lengths, and Zipfian popularity of
 * both feature usage and categorical values. See DESIGN.md's
 * substitution table.
 */

#ifndef DSI_WAREHOUSE_DATAGEN_H
#define DSI_WAREHOUSE_DATAGEN_H

#include <vector>

#include "common/rng.h"
#include "dwrf/row.h"
#include "warehouse/schema.h"

namespace dsi::warehouse {

/** Parameters of a schema synthesizer. */
struct SchemaParams
{
    std::string name = "table";
    uint32_t float_features = 100;  ///< Table V "# Float Feats."
    uint32_t sparse_features = 20;  ///< Table V "# Sparse Feats."
    double scored_fraction = 0.25;  ///< sparse features with scores
    double coverage_u = 0.45;       ///< Table V "U": mean coverage
    double avg_length = 25.0;       ///< Table V "Avg. Len."
    uint64_t cardinality = 1u << 20;
    /** Zipf skew of per-feature popularity weights (job reuse). */
    double popularity_alpha = 1.05;
    uint64_t seed = 7;
};

/**
 * Build a schema whose aggregate statistics match `params`: coverage
 * is drawn per feature around coverage_u, lengths around avg_length,
 * and each feature receives a popularity weight used when jobs choose
 * projections (Section V-B).
 */
TableSchema makeSchema(const SchemaParams &params);

/**
 * Popularity weight per feature (index-aligned with schema.features).
 * Used to pick projections so that jobs collectively favor the same
 * "hot" features, reproducing the Fig. 7 reuse CDF.
 */
std::vector<double> featurePopularity(const TableSchema &schema,
                                      double alpha, uint64_t seed);

/** Generates rows matching a schema's statistics. */
class RowGenerator
{
  public:
    RowGenerator(const TableSchema &schema, uint64_t seed);

    /** Generate the next row. */
    dwrf::Row next();

    /** Generate a batch of rows. */
    std::vector<dwrf::Row> batch(uint32_t n);

  private:
    const TableSchema &schema_;
    Rng rng_;
    std::vector<ZipfSampler> value_samplers_;
    std::vector<size_t> sampler_index_; ///< per-feature sampler slot
};

/**
 * Parameters of a duplicated (RecD-shaped) corpus: how many distinct
 * sample payloads exist and how skewed their reuse is.
 */
struct DupParams
{
    /** Distinct feature payloads in the pool. */
    uint32_t pool_size = 512;

    /** Zipf skew of payload reuse (Table V duplication profile). */
    double alpha = 1.1;

    uint64_t seed = 11;
};

/**
 * Generates rows with *duplicated feature payloads*: a fixed pool of
 * pool_size distinct rows (drawn once from RowGenerator) is re-sampled
 * Zipfian-skewed, and every draw gets a fresh label. This is the shape
 * RecD exploits — repeated samples whose features are byte-identical
 * but whose labels differ — so it drives both the DWRF list
 * dictionaries (lists repeat across rows) and the worker's batch
 * dedup (whole rows repeat within a batch). Deterministic under seed.
 */
class DupRowGenerator
{
  public:
    DupRowGenerator(const TableSchema &schema, DupParams params);

    /** Next row: a Zipf-sampled pool payload with a fresh label. */
    dwrf::Row next();

    std::vector<dwrf::Row> batch(uint32_t n);

    uint32_t poolSize() const
    {
        return static_cast<uint32_t>(pool_.size());
    }

  private:
    std::vector<dwrf::Row> pool_;
    ZipfSampler sampler_;
    Rng rng_;
};

/**
 * Zipf-ranked hashed categorical ids — the dictionary-friendly value
 * shape shared by encoding tests and the perf/dedup benchmarks (one
 * definition so their corpora cannot drift apart). Ranks are spread
 * over the id space by a Fibonacci-hash multiply, so values are
 * 8-byte magnitudes with a hot head, exactly like production hashed
 * categorical features.
 */
inline std::vector<int64_t>
zipfSkewedIds(size_t n, uint64_t seed, uint64_t distinct = 4000,
              double alpha = 1.2)
{
    Rng rng(seed);
    ZipfSampler zipf(distinct, alpha);
    std::vector<int64_t> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        uint64_t rank = zipf.sample(rng);
        values.push_back(
            static_cast<int64_t>(rank * 0x9e3779b97f4a7c15ULL >> 1));
    }
    return values;
}

/**
 * Choose a feature projection of `dense_used` dense and `sparse_used`
 * sparse features, sampling without replacement proportionally to
 * popularity. Models how ML engineers favor strong-signal features.
 */
std::vector<FeatureId> chooseProjection(const TableSchema &schema,
                                        const std::vector<double> &pop,
                                        uint32_t dense_used,
                                        uint32_t sparse_used,
                                        uint64_t seed);

} // namespace dsi::warehouse

#endif // DSI_WAREHOUSE_DATAGEN_H
