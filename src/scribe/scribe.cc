#include "scribe.h"

#include <algorithm>

#include "common/logging.h"

namespace dsi::scribe {

uint64_t
LogDevice::append(const std::string &stream, SimTime timestamp,
                  uint64_t key, dwrf::Buffer payload)
{
    Stream &s = streams_[stream];
    LogRecord rec;
    rec.seq = s.next_seq++;
    rec.timestamp = timestamp;
    rec.key = key;
    s.payload_bytes += payload.size();
    rec.payload = std::move(payload);
    s.records.push_back(std::move(rec));
    return s.records.back().seq;
}

std::vector<LogRecord>
LogDevice::read(const std::string &stream, uint64_t from_seq,
                uint64_t max) const
{
    std::vector<LogRecord> out;
    auto it = streams_.find(stream);
    if (it == streams_.end())
        return out;
    const Stream &s = it->second;
    uint64_t start = std::max(from_seq, s.trim_point);
    if (start >= s.next_seq)
        return out;
    // records are dense in [trim_point, next_seq).
    size_t idx = start - s.trim_point;
    for (; idx < s.records.size() && out.size() < max; ++idx)
        out.push_back(s.records[idx]);
    return out;
}

void
LogDevice::trim(const std::string &stream, uint64_t upto_seq)
{
    auto it = streams_.find(stream);
    if (it == streams_.end())
        return;
    Stream &s = it->second;
    while (!s.records.empty() && s.records.front().seq < upto_seq) {
        s.payload_bytes -= s.records.front().payload.size();
        s.records.pop_front();
        ++s.trim_point;
    }
    s.trim_point = std::max(s.trim_point, std::min(upto_seq, s.next_seq));
}

uint64_t
LogDevice::tailSeq(const std::string &stream) const
{
    auto it = streams_.find(stream);
    return it == streams_.end() ? 0 : it->second.next_seq;
}

uint64_t
LogDevice::trimPoint(const std::string &stream) const
{
    auto it = streams_.find(stream);
    return it == streams_.end() ? 0 : it->second.trim_point;
}

uint64_t
LogDevice::recordCount(const std::string &stream) const
{
    auto it = streams_.find(stream);
    return it == streams_.end() ? 0 : it->second.records.size();
}

Bytes
LogDevice::payloadBytes(const std::string &stream) const
{
    auto it = streams_.find(stream);
    return it == streams_.end() ? 0 : it->second.payload_bytes;
}

std::vector<std::string>
LogDevice::streams() const
{
    std::vector<std::string> out;
    out.reserve(streams_.size());
    for (const auto &[name, _] : streams_)
        out.push_back(name);
    return out;
}

void
ScribeDaemon::log(const std::string &category, SimTime timestamp,
                  uint64_t key, dwrf::Buffer payload)
{
    auto &buf = buffers_[category];
    buf.push_back({timestamp, key, std::move(payload)});
    if (buf.size() >= flush_batch_) {
        for (auto &p : buf)
            device_.append(category, p.timestamp, p.key,
                           std::move(p.payload));
        buf.clear();
    }
}

void
ScribeDaemon::flush()
{
    for (auto &[category, buf] : buffers_) {
        for (auto &p : buf)
            device_.append(category, p.timestamp, p.key,
                           std::move(p.payload));
        buf.clear();
    }
}

uint64_t
ScribeDaemon::buffered() const
{
    uint64_t n = 0;
    for (const auto &[_, buf] : buffers_)
        n += buf.size();
    return n;
}

std::vector<LogRecord>
StreamReader::poll(uint64_t max)
{
    auto records = device_.read(stream_, next_seq_, max);
    if (!records.empty())
        next_seq_ = records.back().seq + 1;
    else
        next_seq_ = std::max(next_seq_, device_.trimPoint(stream_));
    return records;
}

} // namespace dsi::scribe
