/**
 * @file
 * Scribe + LogDevice substrate: the fleet-wide message bus that
 * transports raw feature and event logs (Section III-A1).
 *
 * Scribe groups records into named category streams; every stream is
 * backed by LogDevice, a reliable append-only, trimmable record store.
 * Services call a per-host ScribeDaemon which batches and forwards
 * records; readers tail streams by sequence number.
 */

#ifndef DSI_SCRIBE_SCRIBE_H
#define DSI_SCRIBE_SCRIBE_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "dwrf/encoding.h"

namespace dsi::scribe {

/** One durable record in a stream. */
struct LogRecord
{
    uint64_t seq = 0;       ///< per-stream sequence number
    SimTime timestamp = 0;  ///< producer-side log time
    uint64_t key = 0;       ///< join key (e.g. serving request id)
    dwrf::Buffer payload;
};

/**
 * Append-only trimmable stream store (the LogDevice model). Each
 * stream is a sequence of records; trimming drops a prefix while
 * sequence numbers stay stable.
 */
class LogDevice
{
  public:
    /** Append a record, assigning its sequence number. */
    uint64_t append(const std::string &stream, SimTime timestamp,
                    uint64_t key, dwrf::Buffer payload);

    /**
     * Read records with seq in [from_seq, from_seq + max). Returns
     * fewer if the stream is shorter or trimmed past from_seq.
     */
    std::vector<LogRecord> read(const std::string &stream,
                                uint64_t from_seq, uint64_t max) const;

    /** Drop all records with seq < upto_seq. */
    void trim(const std::string &stream, uint64_t upto_seq);

    /** Next sequence number that will be assigned. */
    uint64_t tailSeq(const std::string &stream) const;

    /** Smallest readable sequence number (moves up with trim). */
    uint64_t trimPoint(const std::string &stream) const;

    uint64_t recordCount(const std::string &stream) const;
    Bytes payloadBytes(const std::string &stream) const;
    std::vector<std::string> streams() const;

  private:
    struct Stream
    {
        uint64_t next_seq = 0;
        uint64_t trim_point = 0;
        Bytes payload_bytes = 0;
        std::deque<LogRecord> records;
    };
    std::map<std::string, Stream> streams_;
};

/**
 * Per-host Scribe daemon: buffers records per category and flushes
 * them into LogDevice in batches, as the production daemon does.
 */
class ScribeDaemon
{
  public:
    ScribeDaemon(LogDevice &device, size_t flush_batch = 64)
        : device_(device), flush_batch_(flush_batch)
    {
    }

    /** Log a record into a category (may buffer). */
    void log(const std::string &category, SimTime timestamp,
             uint64_t key, dwrf::Buffer payload);

    /** Flush all buffered records. */
    void flush();

    uint64_t buffered() const;

  private:
    struct Pending
    {
        SimTime timestamp;
        uint64_t key;
        dwrf::Buffer payload;
    };
    LogDevice &device_;
    size_t flush_batch_;
    std::map<std::string, std::vector<Pending>> buffers_;
};

/**
 * Tail cursor over one stream: remembers the last consumed sequence
 * number so repeated polls see each record exactly once.
 */
class StreamReader
{
  public:
    StreamReader(const LogDevice &device, std::string stream)
        : device_(device), stream_(std::move(stream))
    {
    }

    /** Pull up to `max` new records. */
    std::vector<LogRecord> poll(uint64_t max = 1024);

    uint64_t position() const { return next_seq_; }

  private:
    const LogDevice &device_;
    std::string stream_;
    uint64_t next_seq_ = 0;
};

} // namespace dsi::scribe

#endif // DSI_SCRIBE_SCRIBE_H
