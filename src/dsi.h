/**
 * @file
 * Umbrella header: the public API of the dsi library.
 *
 * A downstream user typically needs four things:
 *   1. a warehouse with tables of training data
 *      (warehouse/, dwrf/, storage/),
 *   2. an offline data-generation pipeline to fill it
 *      (scribe/, etl/),
 *   3. a DPP session to stream preprocessed tensors to trainers
 *      (dpp/, transforms/),
 *   4. capacity/fleet models for planning studies
 *      (sim/, sched/, trainer/).
 */

#ifndef DSI_DSI_H
#define DSI_DSI_H

#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

#include "sim/device.h"
#include "sim/event_queue.h"
#include "sim/power.h"
#include "sim/resource.h"
#include "sim/tax.h"

#include "dwrf/reader.h"
#include "dwrf/row.h"
#include "dwrf/writer.h"

#include "storage/provisioning.h"
#include "storage/tectonic.h"

#include "scribe/scribe.h"

#include "etl/pipeline.h"

#include "warehouse/datagen.h"
#include "warehouse/lifecycle.h"
#include "warehouse/model_zoo.h"
#include "warehouse/query.h"
#include "warehouse/table.h"

#include "transforms/graph.h"
#include "transforms/ops.h"

#include "dpp/autoscaler.h"
#include "dpp/session.h"
#include "dpp/sim_session.h"
#include "dpp/stream_session.h"
#include "dpp/worker_model.h"

#include "trainer/gpu_model.h"
#include "trainer/trainer.h"

#include "sched/fleet.h"
#include "sched/release.h"

#endif // DSI_DSI_H
