/**
 * @file
 * Calibrated device models: HDD/SSD storage media, compute-node SKUs
 * (Table X), and trainer hosts.
 *
 * Where the paper gives hardware numbers we use them directly (Table X
 * node generations, the 2-socket/8-V100 trainer, 1.25 MiB coalescing).
 * Where it gives only ratios (SSD = 326% IOPS/W and 9% capacity/W vs.
 * HDD), device parameters are chosen so those ratios emerge; see
 * DESIGN.md's substitution table.
 */

#ifndef DSI_SIM_DEVICE_H
#define DSI_SIM_DEVICE_H

#include <string>

#include "common/types.h"

namespace dsi::sim {

/** Rotating-media storage node model (per-node, multi-spindle). */
struct HddNodeModel
{
    std::string name = "hdd-node";
    uint32_t spindles = 36;
    Bytes capacity_per_spindle = 10000000000000ULL; // 10 TB
    double avg_seek_s = 0.008;          // average seek
    double avg_rotational_s = 0.00416;  // 7200 rpm half rotation
    double seq_bw_bps = 190e6;          // per-spindle sequential B/s
    double node_power_w = 540.0;        // spindles + host

    Bytes capacity() const { return spindles * capacity_per_spindle; }

    /** Service time of one random IO of `bytes` on one spindle. */
    double ioTime(Bytes bytes) const
    {
        return avg_seek_s + avg_rotational_s +
               static_cast<double>(bytes) / seq_bw_bps;
    }

    /** Peak random-IO rate of the whole node for IOs of `bytes`. */
    double iops(Bytes bytes) const
    {
        return static_cast<double>(spindles) / ioTime(bytes);
    }

    /** Effective node read throughput (B/s) at a given IO size. */
    double throughput(Bytes io_size) const
    {
        return iops(io_size) * static_cast<double>(io_size);
    }

    double iopsPerWatt(Bytes io_size = 4096) const
    {
        return iops(io_size) / node_power_w;
    }
    double capacityPerWatt() const
    {
        return static_cast<double>(capacity()) / node_power_w;
    }
};

/** Flash storage node model (QoS-limited fleet configuration). */
struct SsdNodeModel
{
    std::string name = "ssd-node";
    Bytes capacity_bytes = 32000000000000ULL; // 32 TB
    double max_iops = 9700.0;   // sustained, QoS-limited
    double seq_bw_bps = 6.0e9;
    double node_power_w = 535.0;

    Bytes capacity() const { return capacity_bytes; }

    double ioTime(Bytes bytes) const
    {
        double fixed = 1.0 / max_iops;
        return fixed + static_cast<double>(bytes) / seq_bw_bps;
    }

    double iops(Bytes bytes) const { return 1.0 / ioTime(bytes); }

    double throughput(Bytes io_size) const
    {
        return iops(io_size) * static_cast<double>(io_size);
    }

    double iopsPerWatt(Bytes io_size = 4096) const
    {
        return iops(io_size) / node_power_w;
    }
    double capacityPerWatt() const
    {
        return static_cast<double>(capacity()) / node_power_w;
    }
};

/** General-purpose compute-node SKU (paper Table X). */
struct ComputeNodeSpec
{
    std::string name;
    uint32_t cores;
    double nic_gbps;        // bidirectional NIC line rate
    double memory_gb;
    double mem_bw_gbps;     // GB/s
    double ghz = 2.5;       // per-core clock
    double power_w = 250.0;

    double cyclesPerSec() const { return cores * ghz * 1e9; }
    double nicBytesPerSec() const { return nic_gbps * 1e9 / 8.0; }
    double memBwBytesPerSec() const { return mem_bw_gbps * 1e9; }
};

/** The three compute-server generations of Table X. */
ComputeNodeSpec computeNodeV1();
ComputeNodeSpec computeNodeV2();
ComputeNodeSpec computeNodeV3();

/**
 * Trainer host: 2x 28-core sockets, 2x 100 Gbps front-end NICs,
 * 8 V100 GPUs (the Section VI measurement platform).
 */
struct TrainerHostSpec
{
    std::string name = "trainer-v100x8";
    uint32_t cores = 56;
    double ghz = 2.5;
    double nic_gbps = 200.0;       // 2 x 100 Gbps front-end
    double mem_bw_gbps = 256.0;    // 2 sockets x 6ch DDR4
    uint32_t gpus = 8;
    double gpu_power_w = 300.0;    // V100 board power
    double host_power_w = 900.0;   // CPUs, DRAM, NICs, fans

    double cyclesPerSec() const { return cores * ghz * 1e9; }
    double nicBytesPerSec() const { return nic_gbps * 1e9 / 8.0; }
    double memBwBytesPerSec() const { return mem_bw_gbps * 1e9; }
    double totalPowerW() const
    {
        return gpus * gpu_power_w + host_power_w;
    }
};

/**
 * Memory bandwidth saturates below line rate in practice; the paper
 * notes ~70% of peak is the practical ceiling (Section VI-B).
 */
inline constexpr double kMemBwSaturation = 0.70;

/** Goodput fraction of NIC line rate (headers, RPC framing, jitter). */
inline constexpr double kNicEfficiency = 0.77;

} // namespace dsi::sim

#endif // DSI_SIM_DEVICE_H
