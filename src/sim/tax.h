/**
 * @file
 * "Datacenter tax" cost model for data loading (Section VI-B).
 *
 * Moving tensors over the production network costs host resources even
 * with no extraction or transformation: network-stack processing, TLS
 * decryption, Thrift (RPC) deserialization, and memory management. The
 * paper reports that pure loading consumes up to 40% of trainer CPU
 * cycles and 55% of memory bandwidth at RM1's 16.5 GB/s, and that TLS
 * alone amplifies memory traffic 3x (Section VII). The per-byte
 * coefficients below are calibrated to those observations.
 */

#ifndef DSI_SIM_TAX_H
#define DSI_SIM_TAX_H

#include "common/types.h"

namespace dsi::sim {

/** Per-byte host cost of receiving/sending data in production. */
struct DatacenterTax
{
    // CPU cycles per payload byte.
    double net_stack_cycles = 1.15;   // kernel + user networking
    double tls_cycles = 1.20;         // TLS record decryption
    double thrift_cycles = 0.85;      // Thrift deserialization
    double memmgmt_cycles = 0.25;     // allocator + refcounting

    // Memory-bus bytes touched per payload byte.
    double rx_copy_membw = 2.0;       // NIC DMA + socket copy
    double tls_membw = 3.0;           // TLS amplification (Section VII)
    double thrift_membw = 2.0;        // decode into materialized form
    double buffer_membw = 1.5;        // staging buffers, GPU copy setup

    bool tls_enabled = true;
    bool thrift_enabled = true;

    double cyclesPerByte() const
    {
        double c = net_stack_cycles + memmgmt_cycles;
        if (tls_enabled)
            c += tls_cycles;
        if (thrift_enabled)
            c += thrift_cycles;
        return c;
    }

    double memBwPerByte() const
    {
        double m = rx_copy_membw + buffer_membw;
        if (tls_enabled)
            m += tls_membw;
        if (thrift_enabled)
            m += thrift_membw;
        return m;
    }

    /** CPU cycles/second consumed at `rate` payload bytes/second. */
    double cpuLoad(double rate_bps) const
    {
        return cyclesPerByte() * rate_bps;
    }

    /** Memory-bus bytes/second consumed at `rate` payload bytes/sec. */
    double memBwLoad(double rate_bps) const
    {
        return memBwPerByte() * rate_bps;
    }
};

/** Tax with NIC TLS offload enabled (Section VII opportunity). */
inline DatacenterTax
taxWithTlsOffload()
{
    DatacenterTax t;
    t.tls_enabled = false;
    return t;
}

} // namespace dsi::sim

#endif // DSI_SIM_TAX_H
