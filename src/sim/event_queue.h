/**
 * @file
 * Minimal discrete-event simulation engine.
 *
 * dsi uses discrete-event simulation for datacenter-scale behaviour that
 * cannot run natively (hundred-worker DPP sessions, fleet demand over a
 * year, device-level IO timing). Events are closures scheduled at
 * absolute simulated times; ties are broken by insertion order so runs
 * are deterministic.
 */

#ifndef DSI_SIM_EVENT_QUEUE_H
#define DSI_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace dsi::sim {

/** Deterministic discrete-event executor. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time in seconds. */
    SimTime now() const { return now_; }

    /** Schedule `cb` at absolute time `t` (>= now). */
    void schedule(SimTime t, Callback cb);

    /** Schedule `cb` after `delay` seconds. */
    void scheduleAfter(SimTime delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Run until the queue drains. Returns number of events executed. */
    uint64_t run();

    /**
     * Run until the queue drains or simulated time would exceed `t`.
     * Events scheduled at exactly `t` are executed; time ends at `t`.
     */
    uint64_t runUntil(SimTime t);

    bool empty() const { return queue_.empty(); }
    size_t pending() const { return queue_.size(); }

  private:
    struct Event
    {
        SimTime time;
        uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    SimTime now_ = 0.0;
    uint64_t next_seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace dsi::sim

#endif // DSI_SIM_EVENT_QUEUE_H
