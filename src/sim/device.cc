#include "device.h"

namespace dsi::sim {

ComputeNodeSpec
computeNodeV1()
{
    return ComputeNodeSpec{"C-v1", 18, 12.5, 64.0, 75.0, 2.5, 250.0};
}

ComputeNodeSpec
computeNodeV2()
{
    return ComputeNodeSpec{"C-v2", 26, 25.0, 64.0, 92.0, 2.5, 285.0};
}

ComputeNodeSpec
computeNodeV3()
{
    return ComputeNodeSpec{"C-v3", 36, 25.0, 64.0, 83.0, 2.5, 320.0};
}

} // namespace dsi::sim
