/**
 * @file
 * Analytic shared-resource models.
 *
 * A RateResource is a capacity in units/second (CPU cycles, NIC bytes,
 * memory-bandwidth bytes). Loads are offered as rates; the resource
 * reports utilization and the achievable (possibly throttled) rate.
 * A UtilizationTracker integrates utilization over simulated time so
 * benches can report time-weighted averages like Figs. 8 and 9.
 */

#ifndef DSI_SIM_RESOURCE_H
#define DSI_SIM_RESOURCE_H

#include <string>

#include "common/logging.h"
#include "common/types.h"

namespace dsi::sim {

/** A shared resource with a fixed service capacity in units/second. */
class RateResource
{
  public:
    RateResource(std::string name, double capacity)
        : name_(std::move(name)), capacity_(capacity)
    {
        dsi_assert(capacity > 0, "resource capacity must be positive");
    }

    const std::string &name() const { return name_; }
    double capacity() const { return capacity_; }

    /** Add/remove offered load (units/second). */
    void offer(double rate) { offered_ += rate; }
    void release(double rate)
    {
        offered_ -= rate;
        if (offered_ < 0)
            offered_ = 0;
    }
    void resetOffered() { offered_ = 0; }

    double offered() const { return offered_; }

    /** Utilization in [0, 1]: offered load clipped at capacity. */
    double utilization() const
    {
        double u = offered_ / capacity_;
        return u > 1.0 ? 1.0 : u;
    }

    /** Demand as a fraction of capacity; may exceed 1 when saturated. */
    double demandRatio() const { return offered_ / capacity_; }

    /** True when offered load exceeds capacity. */
    bool saturated() const { return offered_ > capacity_; }

    /**
     * Achievable share for a flow offering `rate`, under fair
     * proportional throttling when the resource is saturated.
     */
    double achievable(double rate) const
    {
        if (offered_ <= capacity_ || offered_ <= 0)
            return rate;
        return rate * (capacity_ / offered_);
    }

  private:
    std::string name_;
    double capacity_;
    double offered_ = 0.0;
};

/** Integrates a utilization signal over simulated time. */
class UtilizationTracker
{
  public:
    /** Record that utilization was `u` from the last sample until `t`. */
    void sample(SimTime t, double u)
    {
        if (has_last_ && t > last_t_) {
            area_ += last_u_ * (t - last_t_);
            span_ += t - last_t_;
        }
        last_t_ = t;
        last_u_ = u;
        has_last_ = true;
        if (u > peak_)
            peak_ = u;
    }

    /** Time-weighted mean utilization. */
    double average() const { return span_ > 0 ? area_ / span_ : 0.0; }
    double peak() const { return peak_; }
    double span() const { return span_; }

  private:
    bool has_last_ = false;
    SimTime last_t_ = 0.0;
    double last_u_ = 0.0;
    double area_ = 0.0;
    double span_ = 0.0;
    double peak_ = 0.0;
};

} // namespace dsi::sim

#endif // DSI_SIM_RESOURCE_H
