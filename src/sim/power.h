/**
 * @file
 * Fleet power accounting (Figure 1).
 *
 * Training capacity is constrained by fixed datacenter power budgets;
 * the paper's Figure 1 shows storage + preprocessing power can exceed
 * the trainers' own power. This model aggregates per-component node
 * counts x per-node watts into the storage/preprocessing/training
 * breakdown the figure reports.
 */

#ifndef DSI_SIM_POWER_H
#define DSI_SIM_POWER_H

#include <string>
#include <vector>

namespace dsi::sim {

/** One power component: `count` nodes drawing `watts_each`. */
struct PowerComponent
{
    std::string name;
    double count;
    double watts_each;

    double watts() const { return count * watts_each; }
};

/** Power breakdown for a training deployment. */
class PowerBreakdown
{
  public:
    void add(const std::string &category, double count, double watts_each)
    {
        components_.push_back({category, count, watts_each});
    }

    double total() const
    {
        double w = 0.0;
        for (const auto &c : components_)
            w += c.watts();
        return w;
    }

    double categoryWatts(const std::string &category) const
    {
        double w = 0.0;
        for (const auto &c : components_)
            if (c.name == category)
                w += c.watts();
        return w;
    }

    /** Fraction of total power a category draws, in [0, 1]. */
    double fraction(const std::string &category) const
    {
        double t = total();
        return t > 0 ? categoryWatts(category) / t : 0.0;
    }

    const std::vector<PowerComponent> &components() const
    {
        return components_;
    }

  private:
    std::vector<PowerComponent> components_;
};

} // namespace dsi::sim

#endif // DSI_SIM_POWER_H
