#include "event_queue.h"

#include "common/logging.h"

namespace dsi::sim {

void
EventQueue::schedule(SimTime t, Callback cb)
{
    dsi_assert(t >= now_, "cannot schedule in the past (t=%f, now=%f)",
               t, now_);
    queue_.push(Event{t, next_seq_++, std::move(cb)});
}

uint64_t
EventQueue::run()
{
    uint64_t executed = 0;
    while (!queue_.empty()) {
        // The callback may schedule more events, so pop before invoking.
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = ev.time;
        ev.cb();
        ++executed;
    }
    return executed;
}

uint64_t
EventQueue::runUntil(SimTime t)
{
    uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().time <= t) {
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = ev.time;
        ev.cb();
        ++executed;
    }
    if (now_ < t)
        now_ = t;
    return executed;
}

} // namespace dsi::sim
