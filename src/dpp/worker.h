/**
 * @file
 * DPP data plane: the Worker (Section III-B1).
 *
 * Stateless: a Worker only talks to the Master (to fetch splits and
 * the transform program) and to Clients (to serve tensors). Per split
 * it runs the full online ETL: extract (read + decrypt + decompress +
 * decode + feature-filter the stored stripes), transform (apply the
 * compiled graph per mini-batch), and partially load (batch rows into
 * ready-to-load tensors buffered in memory).
 */

#ifndef DSI_DPP_WORKER_H
#define DSI_DPP_WORKER_H

#include <deque>
#include <memory>
#include <optional>

#include "common/metrics.h"
#include "dpp/master.h"
#include "dpp/spec.h"
#include "transforms/graph.h"
#include "warehouse/table.h"

namespace dsi::dpp {

/** A preprocessed, ready-to-load tensor batch. */
struct TensorBatch
{
    dwrf::RowBatch data;
    Bytes bytes = 0; ///< materialized tensor payload size
};

/** Worker tuning knobs. */
struct WorkerOptions
{
    /** Target depth of the in-memory tensor buffer. */
    size_t buffer_capacity = 16;

    /**
     * Byte cap on buffered tensors (0 = unlimited). Production
     * workers bound memory to avoid OOM — the reason RM3's thread
     * pool is limited (Section VI-C).
     */
    Bytes buffer_bytes_capacity = 0;

    /** Verify stream checksums during extraction. */
    bool verify_checksums = true;
};

/** One DPP worker process. */
class Worker
{
  public:
    Worker(Master &master, const warehouse::Warehouse &warehouse,
           WorkerOptions options = {});

    WorkerId id() const { return id_; }

    /**
     * Make one unit of progress: if the buffer has room, process one
     * *stripe* of the current split (fetching a new split from the
     * Master when needed); the split completes when its last stripe
     * is done. Returns false when the session has no more work for
     * this worker (the buffer may still hold tensors).
     */
    bool pump();

    /** True when no split remains and the buffer is empty. */
    bool drained() const;

    /** Clients pop tensors over (simulated) RPC. */
    std::optional<TensorBatch> popTensor();

    size_t buffered() const { return buffer_.size(); }
    Bytes bufferedBytes() const { return buffered_bytes_; }
    bool bufferFull() const
    {
        if (buffer_.size() >= options_.buffer_capacity)
            return true;
        return options_.buffer_bytes_capacity > 0 &&
               buffered_bytes_ >= options_.buffer_bytes_capacity;
    }

    /** Cumulative extraction stats across processed splits. */
    const dwrf::ReadStats &readStats() const { return read_stats_; }
    const transforms::TransformStats &transformStats() const
    {
        return transform_stats_;
    }
    const Metrics &metrics() const { return metrics_; }

  private:
    void openSplit(const Split &split);
    void processNextStripe();
    void closeSplit();

    Master &master_;
    const warehouse::Warehouse &warehouse_;
    WorkerOptions options_;
    WorkerId id_;
    std::unique_ptr<transforms::CompiledGraph> graph_;
    std::deque<TensorBatch> buffer_;
    Bytes buffered_bytes_ = 0;
    bool no_more_work_ = false;

    // In-progress split state (stripe-granular pipelining).
    std::optional<Split> current_;
    uint32_t next_stripe_ = 0;
    std::unique_ptr<dwrf::RandomAccessSource> source_;
    std::unique_ptr<dwrf::FileReader> reader_;

    dwrf::ReadStats read_stats_;
    transforms::TransformStats transform_stats_;
    Metrics metrics_;
};

} // namespace dsi::dpp

#endif // DSI_DPP_WORKER_H
