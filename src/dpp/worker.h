/**
 * @file
 * DPP data plane: the Worker (Section III-B1).
 *
 * Stateless and *tenant-agnostic*: a Worker only talks to its
 * WorkSource — a single session's Master, or a fleet scheduler
 * multiplexing many sessions — to fetch splits and per-tenant
 * transform programs, and to Clients (to serve tensors). Every grant
 * names the tenant it belongs to; the Worker keys its split progress
 * by (tenant, split), compiles and caches one transform graph per
 * tenant per thread, and echoes the tenant on every lifecycle call,
 * so one worker can interleave splits from many sessions. Per split
 * it runs the full online ETL: extract (read + decrypt + decompress +
 * decode + feature-filter the stored stripes), transform (apply the
 * compiled graph per mini-batch), and partially load (batch rows into
 * ready-to-load tensors buffered in memory).
 *
 * Two execution modes share one Worker:
 *
 *  - **Synchronous** (`num_extract_threads == num_transform_threads
 *    == 0`, the default): callers drive progress one stripe at a time
 *    via pump(). Used by deterministic tests and single-threaded
 *    drivers.
 *
 *  - **Parallel** (either knob > 0): start() launches the pipelined
 *    data plane the paper describes — production workers run *many*
 *    extract/transform threads per node (Sections III-B1, VI-C). N
 *    extract threads pull splits from the Master and push decoded
 *    stripes into a bounded queue; M transform threads pop stripes,
 *    apply a per-thread compiled graph per mini-batch, and append to
 *    the byte-capped tensor buffer, blocking when trainers fall
 *    behind (backpressure instead of OOM). stop() aborts and joins
 *    cleanly; natural end-of-work drains and quiesces on its own.
 *
 * Thread safety: popTensor(), drained(), buffered(), bufferedBytes(),
 * bufferFull(), and the stats/metrics accessors are safe to call from
 * any thread concurrently with a running pipeline (stats totals are
 * accumulated per thread and folded in as splits/threads finish, so
 * read them for exact values only after drained()). pump() is NOT
 * thread-safe and must not be mixed with start().
 */

#ifndef DSI_DPP_WORKER_H
#define DSI_DPP_WORKER_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/bounded_queue.h"
#include "common/deadline.h"
#include "common/metrics.h"
#include "common/pool.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "dpp/autoscaler.h"
#include "dpp/spec.h"
#include "dpp/work_source.h"
#include "transforms/graph.h"
#include "warehouse/table.h"

namespace dsi::dpp {

/** A preprocessed, ready-to-load tensor batch. */
struct TensorBatch
{
    dwrf::RowBatch data;
    Bytes bytes = 0; ///< materialized tensor payload size

    // Provenance, for exactly-once delivery: per tenant,
    // (split_id, first_row) identifies a batch across replays,
    // because batch slicing is a deterministic function of the
    // split's stripes and batch_size.
    TenantId tenant = 0;
    uint64_t split_id = 0;
    RowId first_row = 0;

    /** Relative stripe (0-based within the split) this batch is from. */
    uint32_t stripe = 0;

    /**
     * True on the final batch sliced from its stripe. Delivery of
     * this batch means the whole stripe reached a trainer (slicing is
     * deterministic and per-worker delivery is FIFO), which is what
     * advances the Master's resume watermark
     * (Master::noteStripeDelivered).
     */
    bool last_in_stripe = false;

    /** Worker-local split attempt number (internal bookkeeping). */
    uint64_t epoch = 0;

    /**
     * Lineage: the transform-stripe span this batch was sliced in
     * (itself a child of the split's master.grant span). The client's
     * delivery span parents on it. kNoSpan when tracing is off.
     */
    trace::SpanId trace = trace::kNoSpan;
};

/** Worker tuning knobs. */
struct WorkerOptions
{
    /** Target depth of the in-memory tensor buffer. */
    size_t buffer_capacity = 16;

    /**
     * Byte cap on buffered tensors (0 = unlimited). Production
     * workers bound memory to avoid OOM — the reason RM3's thread
     * pool is limited (Section VI-C).
     */
    Bytes buffer_bytes_capacity = 0;

    /** Verify stream checksums during extraction. */
    bool verify_checksums = true;

    /**
     * Extract (read+decrypt+decompress+decode) threads. 0 with
     * num_transform_threads == 0 selects the synchronous pump() mode;
     * otherwise both stages get at least one thread.
     */
    uint32_t num_extract_threads = 0;

    /** Transform (compiled graph per mini-batch) threads. */
    uint32_t num_transform_threads = 0;

    /**
     * Capacity (in stripes) of the extract -> transform hand-off
     * queue; the second backpressure point of the pipeline.
     */
    size_t stripe_queue_capacity = 8;

    /**
     * Max idle stripe batches retained for reuse. Recycled batches
     * keep their columns' heap capacity across stripes (the reader
     * reuses it), cutting per-stripe allocation churn. Sized to cover
     * the queue plus every in-flight stage by default.
     */
    size_t stripe_pool_max_idle = 16;

    /**
     * Cap on heap bytes the idle stripe pool may pin (0 = unbounded).
     * Pooled batches keep the column capacity of the largest stripe
     * they ever carried, so without a cap one huge stripe inflates
     * the worker's footprint forever; over the cap the pool evicts
     * idle batches oldest-first (shrink-on-release). Published as the
     * worker.stripe_pool_retained_bytes gauge.
     */
    Bytes stripe_pool_retained_bytes = 256_MiB;

    /**
     * RecD-style batch dedup: before transforming each mini-batch,
     * collapse rows with identical feature payloads (labels excluded)
     * to their unique representatives, run the transform graph once
     * per unique row, and expand back via the inverse index with the
     * original labels restored. Byte-identical output (the dedup
     * differential test proves it), applied only when every op in the
     * tenant's graph is row-local — graphs containing Sampling are
     * bypassed and counted in worker.dedup_bypassed_batches.
     */
    bool dedup_enabled = false;
};

/** One DPP worker process. */
class Worker
{
  public:
    /**
     * `control` is the control plane this worker pulls splits from: a
     * Master (single session) or a FleetScheduler (many sessions).
     * All tenants' data must live in `warehouse` (a fleet shares one
     * warehouse across its sessions, as production DPP does).
     */
    Worker(WorkSource &control, const warehouse::Warehouse &warehouse,
           WorkerOptions options = {});

    /** Joins pipeline threads (equivalent to stop()). */
    ~Worker();

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    WorkerId id() const { return id_; }

    /** True when the options request the threaded data plane. */
    bool parallel() const
    {
        return options_.num_extract_threads > 0 ||
               options_.num_transform_threads > 0;
    }

    /**
     * Launch the pipeline threads (parallel mode only; call once).
     * Returns immediately; progress is observable through popTensor()
     * and drained().
     */
    void start();

    /**
     * Abort and join the pipeline: closes the stripe queue, wakes
     * blocked producers, and joins every thread. In-flight splits are
     * NOT completed (the Master requeues them via failWorker, exactly
     * as when a production worker dies). Idempotent; safe on a
     * never-started or already-quiesced worker.
     */
    void stop();

    /**
     * Synchronous mode only: make one unit of progress — if the
     * buffer has room, process one *stripe* of the current split
     * (fetching a new split from the Master when needed); the split
     * completes when its last stripe is done. Returns false when the
     * session has no more work for this worker (the buffer may still
     * hold tensors).
     */
    bool pump();

    /**
     * True when no work remains and the buffer is empty. In parallel
     * mode this additionally means every pipeline thread has
     * quiesced (all stripes transformed, stats folded in).
     */
    bool drained() const;

    /**
     * Graceful scale-down: stop acquiring new splits, finish (and
     * deliver) everything already held, then quiesce. The session
     * retires the worker once drained() turns true — no split is
     * abandoned and no delivered row is lost, unlike stop(). Safe in
     * both modes; idempotent.
     *
     * With `release_held` (preemption): instead of finishing held
     * splits, hand them back to the control plane at the next stripe
     * boundary (releaseSplit — requeued with no attempt penalty).
     * Tensors already buffered are still delivered, and the epoch /
     * ledger machinery dedupes any overlap when another worker
     * replays the split — so preempting a worker frees its capacity
     * quickly without breaking exactly-once.
     */
    void beginDrain(bool release_held = false);
    bool draining() const { return draining_; }

    /**
     * Load snapshot for the auto-scaler (what a production worker
     * piggybacks on its periodic report RPC).
     */
    WorkerReport report() const;

    /**
     * True once the worker.crash fault point fired on this worker.
     * A crashed worker stops producing, serves no tensors (its
     * buffered batches are lost), and no longer heartbeats — so its
     * lease expires and the Master requeues its splits.
     */
    bool crashed() const { return crashed_; }

    /**
     * Clients pop tensors over (simulated) RPC. Thread-safe. Returns
     * nullopt when empty or crashed. A split is reported complete to
     * the Master only after its *last buffered tensor is delivered* —
     * so a worker dying with undelivered tensors loses nothing: the
     * split stays in flight and is replayed elsewhere.
     */
    std::optional<TensorBatch> popTensor();

    size_t buffered() const;
    Bytes bufferedBytes() const;
    bool bufferFull() const;

    /** Cumulative extraction stats across processed splits. */
    const dwrf::ReadStats &readStats() const { return read_stats_; }
    const transforms::TransformStats &transformStats() const
    {
        return transform_stats_;
    }
    const Metrics &metrics() const { return metrics_; }

    // Ground-truth stripe-pool counters (tests compare these against
    // the published worker.stripe_pool_* gauges, which must stay
    // consistent even on crash/abandon exits).
    uint64_t stripePoolAllocated() const
    {
        return stripe_pool_.allocated();
    }
    uint64_t stripePoolReused() const { return stripe_pool_.reused(); }
    Bytes stripePoolRetainedBytes() const
    {
        return stripe_pool_.retainedBytes();
    }

  private:
    /**
     * One decoded stripe handed from extract to transform. The batch
     * is held by pointer so the queue hand-off moves one word — never
     * the column data — and so the transform stage can recycle the
     * batch through stripe_pool_ when it is done.
     */
    struct ExtractedStripe
    {
        std::unique_ptr<dwrf::RowBatch> rows;
        TenantId tenant = 0;
        uint64_t split_id = 0;
        RowId first_row = 0;
        uint32_t stripe = 0; ///< relative stripe within the split
        uint64_t epoch = 0;
        trace::SpanId trace = trace::kNoSpan; ///< grant span
    };

    /** Splits are tracked per tenant: ids collide across sessions. */
    using SplitKey = std::pair<TenantId, uint64_t>;

    /**
     * Per-split delivery tracking (guarded by progress_mutex_). A
     * split completes at the Master only when extraction finished,
     * every stripe was transformed, and every buffered tensor was
     * popped by a client. `epoch` distinguishes attempts, so leftover
     * tensors of an abandoned earlier attempt cannot corrupt the
     * accounting of a retry.
     */
    struct SplitProgress
    {
        uint32_t stripes_total = 0;
        uint32_t stripes_transformed = 0;
        uint64_t tensors_buffered = 0;
        uint64_t epoch = 0;
        bool extraction_done = false;
    };

    // Split-progress bookkeeping (both modes). None of these hold
    // progress_mutex_ while calling into the control plane or the
    // buffer.
    uint64_t beginSplit(SplitKey key, uint32_t stripes_total);
    void noteTensorEnqueued(SplitKey key, uint64_t epoch);
    void noteTensorUnqueued(SplitKey key, uint64_t epoch);
    void noteTensorDelivered(SplitKey key, uint64_t epoch);
    void noteStripeTransformed(SplitKey key, uint64_t epoch);
    void finishExtraction(SplitKey key, uint64_t epoch);
    void maybeCompleteSplit(SplitKey key);
    /** Give up on a split (unreadable data): failSplit + cleanup. */
    void abandonSplit(SplitKey key);
    /** Hand a split back (deadline/drain): releaseSplit + cleanup. */
    void returnSplit(SplitKey key);

    /** Simulate this worker process dying (worker.crash fault). */
    void crash();

    // Synchronous-mode split processing.
    bool openSplit(const Split &split);
    bool processNextStripe();
    void closeSplit();
    void abandonCurrentSplit();
    void releaseCurrentSplit();

    // Parallel pipeline stages.
    uint32_t extractThreadCount() const;
    uint32_t transformThreadCount() const;
    void extractLoop();
    void transformLoop();

    /**
     * Extract+inject one stripe into `out` (both modes), under
     * `tenant`'s spec. False when the stripe is unreadable after the
     * reader's own retries, or when the read budget expired
     * mid-stripe — `status` (optional) tells the caller which, so it
     * can abandon vs. release the split. `out` may hold a recycled
     * batch; the reader strips and reuses its capacity.
     */
    bool extractStripe(dwrf::FileReader &reader, TenantId tenant,
                       uint32_t stripe_index, dwrf::RowBatch &out,
                       Metrics &metrics,
                       dwrf::ReadStatus *status = nullptr) const;

    /**
     * Publish stripe-pool counters as worker gauges. Called at every
     * split terminal state (complete, abandon, return) and at crash /
     * pipeline exit, so the gauges never go stale on failure paths.
     */
    void publishPoolMetrics();

    /**
     * `tenant`'s deserialized transform program, fetched from the
     * control plane and cached on first use (thread-safe).
     */
    const transforms::TransformGraph &programFor(TenantId tenant);

    /**
     * Slice a stripe into mini-batch tensors via `graph`, under
     * `tenant`'s spec. True when the whole stripe was enqueued
     * (false: stopped/crashed mid-way).
     */
    bool transformStripe(dwrf::RowBatch &stripe, TenantId tenant,
                         uint64_t split_id, uint64_t epoch,
                         RowId first_row, uint32_t stripe_index,
                         transforms::CompiledGraph &graph,
                         transforms::TransformStats &stats,
                         Metrics &metrics, bool blocking,
                         trace::SpanId grant_span = trace::kNoSpan);

    bool bufferFullLocked() const;
    /** Blocking append honoring the caps; false if stopped. */
    bool pushTensorBlocking(TensorBatch tensor);
    /** Non-blocking append (synchronous pump path). */
    void enqueueTensor(TensorBatch tensor);
    void mergeReadStats(const dwrf::ReadStats &rs);

    WorkSource &control_;
    const warehouse::Warehouse &warehouse_;
    WorkerOptions options_;
    WorkerId id_;

    // Per-tenant transform programs, deserialized lazily on first
    // grant from that tenant (a fleet worker cannot know its tenants
    // up front). Map nodes are stable, so references returned by
    // programFor() stay valid while threads compile private copies.
    mutable std::mutex program_mutex_;
    std::map<TenantId, transforms::TransformGraph> programs_;
    /** Sync mode: one compiled graph per tenant (pump thread only). */
    std::map<TenantId, std::unique_ptr<transforms::CompiledGraph>>
        sync_graphs_;

    // Tensor buffer (the partial-load stage). Guarded by buffer_mutex_.
    mutable std::mutex buffer_mutex_;
    std::condition_variable space_available_;
    std::deque<TensorBatch> buffer_;
    Bytes buffered_bytes_ = 0;
    bool no_more_work_ = false; ///< production finished (both modes)

    // Parallel pipeline state.
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<BoundedQueue<ExtractedStripe>> stripe_queue_;
    ObjectPool<dwrf::RowBatch> stripe_pool_;
    std::atomic<bool> stop_requested_{false};
    std::atomic<bool> draining_{false}; ///< graceful scale-down
    std::atomic<bool> handback_{false}; ///< preempted: release held
    std::atomic<bool> crashed_{false};
    std::atomic<uint32_t> active_extractors_{0};
    std::atomic<uint32_t> active_transformers_{0};

    // Delivery-tracked split progress (exactly-once completion).
    mutable std::mutex progress_mutex_;
    std::map<SplitKey, SplitProgress> split_progress_;
    uint64_t next_epoch_ = 1; ///< guarded by progress_mutex_

    // Synchronous-mode in-progress split (stripe-granular pipelining).
    std::optional<Split> current_;
    TenantId current_tenant_ = 0; ///< tenant of the held grant
    Deadline current_deadline_; ///< budget of the held grant
    trace::SpanId current_trace_ = trace::kNoSpan; ///< held grant span
    uint64_t current_epoch_ = 0;
    uint32_t next_stripe_ = 0;
    std::unique_ptr<dwrf::RandomAccessSource> source_;
    std::unique_ptr<dwrf::FileReader> reader_;

    // Cumulative stats; pipeline threads fold in under stats_mutex_.
    mutable std::mutex stats_mutex_;
    dwrf::ReadStats read_stats_;
    transforms::TransformStats transform_stats_;
    Metrics metrics_;
};

} // namespace dsi::dpp

#endif // DSI_DPP_WORKER_H
