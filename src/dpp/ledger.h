/**
 * @file
 * Session-wide exactly-once delivery ledger + its durable codec.
 *
 * Batches are identified by (split_id, first_row) — stable across
 * replays because batch slicing is deterministic. When a split is
 * replayed after a worker crash or lease expiry, the rows already
 * delivered in the first attempt claim the same keys, and whichever
 * client pops the replay suppresses them. Shared by every client of a
 * session (a replay may be routed to a different client than the
 * original delivery).
 *
 * The ledger is also the half of exactly-once that must survive a
 * *control-plane* death: a restarted Master requeues every in-flight
 * split, and only a restored ledger can tell which of the replayed
 * batches were already handed to trainers. LedgerCheckpoint is the
 * versioned wire format the Master's checkpoint journal embeds
 * (checkpoint_journal.h) so a recovered session resumes its batch
 * stream with no duplicate and no lost batch.
 */

#ifndef DSI_DPP_LEDGER_H
#define DSI_DPP_LEDGER_H

#include <mutex>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "dwrf/encoding.h"

namespace dsi::dpp {

/**
 * Serializable DeliveryLedger state. Versioned like MasterCheckpoint:
 * deserialize rejects unknown format versions and any trailing or
 * truncated bytes instead of mis-parsing byte soup.
 */
struct LedgerCheckpoint
{
    /** Bumped when the wire format changes shape. */
    static constexpr uint64_t kFormatVersion = 1;

    std::vector<std::pair<uint64_t, RowId>> delivered;
    uint64_t duplicates = 0;

    dwrf::Buffer
    serialize() const
    {
        dwrf::Buffer out;
        dwrf::putVarint(out, kFormatVersion);
        dwrf::putVarint(out, duplicates);
        dwrf::putVarint(out, delivered.size());
        for (const auto &[split, row] : delivered) {
            dwrf::putVarint(out, split);
            dwrf::putVarint(out, row);
        }
        return out;
    }

    static std::optional<LedgerCheckpoint>
    deserialize(dwrf::ByteSpan data)
    {
        LedgerCheckpoint cp;
        size_t pos = 0;
        uint64_t version, n;
        if (!dwrf::getVarint(data, pos, version) ||
            version != kFormatVersion ||
            !dwrf::getVarint(data, pos, cp.duplicates) ||
            !dwrf::getVarint(data, pos, n) || n > data.size()) {
            return std::nullopt;
        }
        cp.delivered.resize(n);
        for (auto &[split, row] : cp.delivered) {
            if (!dwrf::getVarint(data, pos, split) ||
                !dwrf::getVarint(data, pos, row))
                return std::nullopt;
        }
        if (pos != data.size())
            return std::nullopt;
        return cp;
    }
};

/** The exactly-once delivery ledger (see file doc). */
class DeliveryLedger
{
  public:
    /** True exactly once per key: the caller may deliver the batch. */
    bool claim(uint64_t split_id, RowId first_row)
    {
        std::scoped_lock lock(mutex_);
        bool fresh = delivered_.emplace(split_id, first_row).second;
        if (!fresh)
            ++duplicates_;
        return fresh;
    }

    uint64_t delivered() const
    {
        std::scoped_lock lock(mutex_);
        return delivered_.size();
    }

    /** Replayed batches suppressed across the whole session. */
    uint64_t duplicates() const
    {
        std::scoped_lock lock(mutex_);
        return duplicates_;
    }

    /** Snapshot for the checkpoint journal. */
    LedgerCheckpoint checkpoint() const
    {
        std::scoped_lock lock(mutex_);
        LedgerCheckpoint cp;
        cp.delivered.assign(delivered_.begin(), delivered_.end());
        cp.duplicates = duplicates_;
        return cp;
    }

    /**
     * Replace state with a checkpoint's. Keys restored here suppress
     * the replays a recovered Master triggers — the batches trainers
     * received before the control plane died are never re-delivered.
     */
    void restore(const LedgerCheckpoint &cp)
    {
        std::scoped_lock lock(mutex_);
        delivered_.clear();
        delivered_.insert(cp.delivered.begin(), cp.delivered.end());
        duplicates_ = cp.duplicates;
    }

  private:
    mutable std::mutex mutex_;
    std::set<std::pair<uint64_t, RowId>> delivered_;
    uint64_t duplicates_ = 0;
};

} // namespace dsi::dpp

#endif // DSI_DPP_LEDGER_H
