#include "worker_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dsi::dpp {

WorkerSaturation
saturateWorker(const warehouse::RmSpec &rm,
               const sim::ComputeNodeSpec &node,
               const WorkerModelOptions &options)
{
    WorkerSaturation s;

    // Thread pool: capped by cores and by DRAM (OOM avoidance).
    double mem_threads =
        node.memory_gb * options.usable_memory_fraction /
        rm.mem_gb_per_worker_thread;
    s.threads = std::min(static_cast<double>(node.cores),
                         std::floor(mem_threads));
    dsi_assert(s.threads >= 1, "node cannot host a single thread");
    s.mem_capacity_util =
        s.threads * rm.mem_gb_per_worker_thread / node.memory_gb;

    double cycles = rm.extract_cycles_per_sample +
                    rm.transform_cycles_per_sample *
                        options.transform_cycle_scale;
    double cpu_rate = s.threads * node.ghz * 1e9 / cycles;

    double nic_goodput =
        node.nicBytesPerSec() * sim::kNicEfficiency;
    double storage_rx = static_cast<double>(rm.storage_rx_per_sample) *
                        options.storage_rx_scale;
    double nic_in_rate = nic_goodput / storage_rx;
    double nic_out_rate =
        nic_goodput / static_cast<double>(rm.tensor_per_sample);

    double membw_ceiling =
        node.memBwBytesPerSec() * sim::kMemBwSaturation;
    double membw_rate = membw_ceiling /
                        (rm.membw_bytes_per_sample *
                         options.membw_scale);

    s.qps = cpu_rate;
    s.bottleneck =
        s.threads < node.cores ? "memory-capacity" : "cpu";
    if (nic_in_rate < s.qps) {
        s.qps = nic_in_rate;
        s.bottleneck = "nic-in";
    }
    if (nic_out_rate < s.qps) {
        s.qps = nic_out_rate;
        s.bottleneck = "nic-out";
    }
    if (membw_rate < s.qps) {
        s.qps = membw_rate;
        s.bottleneck = "membw";
    }

    s.cpu_util = s.qps / cpu_rate;
    s.nic_in_util = s.qps / nic_in_rate;
    s.nic_out_util = s.qps / nic_out_rate;
    s.membw_util = s.qps / membw_rate;

    s.storage_rx_gbps = s.qps * storage_rx / 1e9;
    s.transform_rx_gbps =
        s.qps * static_cast<double>(rm.raw_per_sample) / 1e9;
    s.transform_tx_gbps =
        s.qps * static_cast<double>(rm.tensor_per_sample) / 1e9;

    s.extract_share = rm.extract_cycles_per_sample / cycles;
    s.transform_share = 1.0 - s.extract_share;
    return s;
}

double
workersPerTrainer(const warehouse::RmSpec &rm,
                  const WorkerSaturation &saturation)
{
    double tensor_rate =
        saturation.qps * static_cast<double>(rm.tensor_per_sample);
    return rm.trainer_node_gbps * 1e9 / tensor_rate;
}

} // namespace dsi::dpp
