#include "worker.h"

#include "common/logging.h"
#include "dwrf/reader.h"

namespace dsi::dpp {

Worker::Worker(Master &master, const warehouse::Warehouse &warehouse,
               WorkerOptions options)
    : master_(master), warehouse_(warehouse), options_(options)
{
    id_ = master_.registerWorker();
    // On startup a Worker pulls the transform program from the Master
    // (the "serialized and compiled PyTorch module").
    auto graph = transforms::TransformGraph::deserialize(
        master_.transformProgram());
    dsi_assert(graph.has_value(),
               "worker %u received malformed transform program", id_);
    graph_ = std::make_unique<transforms::CompiledGraph>(*graph);
}

bool
Worker::pump()
{
    if (no_more_work_)
        return false;
    if (bufferFull())
        return true; // backpressure: trainers are behind
    if (!current_) {
        auto split = master_.requestSplit(id_);
        if (!split) {
            no_more_work_ = true;
            return false;
        }
        openSplit(*split);
    }
    processNextStripe();
    if (next_stripe_ >= current_->stripe_count)
        closeSplit();
    return true;
}

void
Worker::openSplit(const Split &split)
{
    current_ = split;
    next_stripe_ = 0;
    source_ = warehouse_.cluster().open(split.file);
    dwrf::ReadOptions read = master_.spec().read;
    read.projection = master_.spec().projection;
    read.verify_checksums = options_.verify_checksums;
    reader_ = std::make_unique<dwrf::FileReader>(*source_, read);
    dsi_assert(reader_->valid(), "worker %u: unreadable file '%s'",
               id_, split.file.c_str());
}

namespace {

/**
 * Synthesize an injected (beta) feature column for a stripe. Values
 * are a pure function of (feature id, absolute row) so every worker
 * — and every retry — joins identical data, as a feature-store
 * lookup would.
 */
void
injectFeature(dwrf::RowBatch &batch, const warehouse::FeatureSpec &f,
              RowId first_row)
{
    auto unit = [&](uint64_t row, uint64_t salt) {
        uint64_t h = transforms::sigridHash64(first_row + row,
                                              f.id * 1315423911u + salt);
        return static_cast<double>(h >> 11) * 0x1.0p-53;
    };
    if (f.kind == warehouse::FeatureKind::Dense) {
        dwrf::DenseColumn col;
        col.id = f.id;
        col.present.assign((batch.rows + 7) / 8, 0);
        col.values.assign(batch.rows, 0.0f);
        for (uint32_t r = 0; r < batch.rows; ++r) {
            if (unit(r, 0) < f.coverage) {
                col.setPresent(r);
                col.values[r] = static_cast<float>(unit(r, 1));
            }
        }
        batch.dense.push_back(std::move(col));
        return;
    }
    dwrf::SparseColumn col;
    col.id = f.id;
    col.offsets.assign(batch.rows + 1, 0);
    for (uint32_t r = 0; r < batch.rows; ++r) {
        col.offsets[r + 1] = col.offsets[r];
        if (unit(r, 0) >= f.coverage)
            continue;
        uint32_t len = 1 + static_cast<uint32_t>(
                               unit(r, 2) * 2.0 * f.avg_length);
        for (uint32_t k = 0; k < len; ++k) {
            col.values.push_back(static_cast<int64_t>(
                transforms::sigridHash64(first_row + r, k) %
                f.cardinality));
        }
        col.offsets[r + 1] += len;
    }
    if (f.kind == warehouse::FeatureKind::ScoredSparse) {
        col.scores.resize(col.values.size());
        for (size_t i = 0; i < col.scores.size(); ++i)
            col.scores[i] = static_cast<float>(
                (transforms::sigridHash64(i, f.id) >> 40) / 16777216.0);
    }
    batch.sparse.push_back(std::move(col));
}

} // namespace

void
Worker::processNextStripe()
{
    const SessionSpec &spec = master_.spec();

    // --- Extract one stripe ---
    uint32_t stripe_index = current_->first_stripe + next_stripe_;
    dwrf::RowBatch stripe = reader_->readStripe(stripe_index);
    ++next_stripe_;
    metrics_.inc("worker.rows_extracted", stripe.rows);

    // --- Inject beta features (dynamic join, Section IV-C) ---
    if (!spec.injected.empty()) {
        RowId first_row =
            reader_->footer().stripes[stripe_index].first_row;
        for (const auto &f : spec.injected) {
            injectFeature(stripe, f, first_row);
            metrics_.inc("worker.features_injected");
        }
    }

    // --- Transform + partial load, one mini-batch at a time
    // (transforms are localized to each mini-batch).
    for (uint32_t start = 0; start < stripe.rows;
         start += spec.batch_size) {
        dwrf::RowBatch batch =
            dwrf::sliceBatch(stripe, start, spec.batch_size);
        transform_stats_.merge(graph_->apply(batch));

        TensorBatch tensor;
        tensor.bytes = batch.payloadBytes();
        tensor.data = std::move(batch);
        metrics_.inc("worker.tensor_bytes",
                     static_cast<double>(tensor.bytes));
        metrics_.inc("worker.tensors");
        buffered_bytes_ += tensor.bytes;
        buffer_.push_back(std::move(tensor));
    }
}

void
Worker::closeSplit()
{
    // Fold this reader's extraction accounting into the totals.
    const auto &rs = reader_->stats();
    read_stats_.bytes_read += rs.bytes_read;
    read_stats_.bytes_needed += rs.bytes_needed;
    read_stats_.bytes_decompressed += rs.bytes_decompressed;
    read_stats_.bytes_decrypted += rs.bytes_decrypted;
    read_stats_.ios += rs.ios;
    read_stats_.streams_decoded += rs.streams_decoded;

    master_.completeSplit(id_, current_->id);
    metrics_.inc("worker.splits");
    reader_.reset();
    source_.reset();
    current_.reset();
}

bool
Worker::drained() const
{
    return no_more_work_ && buffer_.empty();
}

std::optional<TensorBatch>
Worker::popTensor()
{
    if (buffer_.empty())
        return std::nullopt;
    TensorBatch t = std::move(buffer_.front());
    buffer_.pop_front();
    buffered_bytes_ -= t.bytes;
    metrics_.inc("worker.tensors_served");
    return t;
}

} // namespace dsi::dpp
