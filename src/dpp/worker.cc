#include "worker.h"

#include "common/logging.h"
#include "dwrf/reader.h"

namespace dsi::dpp {

Worker::Worker(Master &master, const warehouse::Warehouse &warehouse,
               WorkerOptions options)
    : master_(master), warehouse_(warehouse), options_(options)
{
    id_ = master_.registerWorker();
    // On startup a Worker pulls the transform program from the Master
    // (the "serialized and compiled PyTorch module"). The deserialized
    // program is kept so each transform thread can compile its own
    // executable copy (compiled ops hold per-instance state, e.g. the
    // Sampling counter, so instances are not shared across threads).
    auto graph = transforms::TransformGraph::deserialize(
        master_.transformProgram());
    dsi_assert(graph.has_value(),
               "worker %u received malformed transform program", id_);
    program_ = std::move(*graph);
    graph_ = std::make_unique<transforms::CompiledGraph>(program_);
}

Worker::~Worker()
{
    stop();
}

uint32_t
Worker::extractThreadCount() const
{
    if (!parallel())
        return 0;
    return options_.num_extract_threads > 0
               ? options_.num_extract_threads
               : 1;
}

uint32_t
Worker::transformThreadCount() const
{
    if (!parallel())
        return 0;
    return options_.num_transform_threads > 0
               ? options_.num_transform_threads
               : 1;
}

void
Worker::start()
{
    dsi_assert(parallel(),
               "worker %u: start() requires num_extract_threads or "
               "num_transform_threads > 0",
               id_);
    dsi_assert(!pool_, "worker %u already started", id_);
    uint32_t extracters = extractThreadCount();
    uint32_t transformers = transformThreadCount();
    stripe_queue_ = std::make_unique<BoundedQueue<ExtractedStripe>>(
        options_.stripe_queue_capacity);
    active_extractors_ = extracters;
    active_transformers_ = transformers;
    metrics_.set("worker.extract_threads", extracters);
    metrics_.set("worker.transform_threads", transformers);
    pool_ = std::make_unique<ThreadPool>(extracters + transformers);
    for (uint32_t i = 0; i < extracters; ++i)
        pool_->submit([this] { extractLoop(); });
    for (uint32_t i = 0; i < transformers; ++i)
        pool_->submit([this] { transformLoop(); });
}

void
Worker::stop()
{
    if (!pool_)
        return;
    {
        std::scoped_lock lock(buffer_mutex_);
        stop_requested_ = true;
    }
    space_available_.notify_all();
    stripe_queue_->close();
    pool_.reset(); // joins every pipeline thread
}

// ---------------------------------------------------------------------
// Shared extract/transform stages.

namespace {

/**
 * Synthesize an injected (beta) feature column for a stripe. Values
 * are a pure function of (feature id, absolute row) so every worker
 * — and every retry — joins identical data, as a feature-store
 * lookup would.
 */
void
injectFeature(dwrf::RowBatch &batch, const warehouse::FeatureSpec &f,
              RowId first_row)
{
    auto unit = [&](uint64_t row, uint64_t salt) {
        uint64_t h = transforms::sigridHash64(first_row + row,
                                              f.id * 1315423911u + salt);
        return static_cast<double>(h >> 11) * 0x1.0p-53;
    };
    if (f.kind == warehouse::FeatureKind::Dense) {
        dwrf::DenseColumn col;
        col.id = f.id;
        col.present.assign((batch.rows + 7) / 8, 0);
        col.values.assign(batch.rows, 0.0f);
        for (uint32_t r = 0; r < batch.rows; ++r) {
            if (unit(r, 0) < f.coverage) {
                col.setPresent(r);
                col.values[r] = static_cast<float>(unit(r, 1));
            }
        }
        batch.dense.push_back(std::move(col));
        return;
    }
    dwrf::SparseColumn col;
    col.id = f.id;
    col.offsets.assign(batch.rows + 1, 0);
    for (uint32_t r = 0; r < batch.rows; ++r) {
        col.offsets[r + 1] = col.offsets[r];
        if (unit(r, 0) >= f.coverage)
            continue;
        uint32_t len = 1 + static_cast<uint32_t>(
                               unit(r, 2) * 2.0 * f.avg_length);
        for (uint32_t k = 0; k < len; ++k) {
            col.values.push_back(static_cast<int64_t>(
                transforms::sigridHash64(first_row + r, k) %
                f.cardinality));
        }
        col.offsets[r + 1] += len;
    }
    if (f.kind == warehouse::FeatureKind::ScoredSparse) {
        col.scores.resize(col.values.size());
        for (size_t i = 0; i < col.scores.size(); ++i)
            col.scores[i] = static_cast<float>(
                (transforms::sigridHash64(i, f.id) >> 40) / 16777216.0);
    }
    batch.sparse.push_back(std::move(col));
}

} // namespace

dwrf::RowBatch
Worker::extractStripe(dwrf::FileReader &reader, uint32_t stripe_index,
                      Metrics &metrics) const
{
    const SessionSpec &spec = master_.spec();
    dwrf::RowBatch stripe = reader.readStripe(stripe_index);
    metrics.inc("worker.rows_extracted", stripe.rows);

    // --- Inject beta features (dynamic join, Section IV-C) ---
    if (!spec.injected.empty()) {
        RowId first_row =
            reader.footer().stripes[stripe_index].first_row;
        for (const auto &f : spec.injected) {
            injectFeature(stripe, f, first_row);
            metrics.inc("worker.features_injected");
        }
    }
    return stripe;
}

void
Worker::transformStripe(dwrf::RowBatch &stripe,
                        transforms::CompiledGraph &graph,
                        transforms::TransformStats &stats,
                        Metrics &metrics, bool blocking)
{
    const SessionSpec &spec = master_.spec();
    // Transform + partial load, one mini-batch at a time (transforms
    // are localized to each mini-batch).
    for (uint32_t start = 0; start < stripe.rows;
         start += spec.batch_size) {
        if (blocking && stop_requested_)
            return;
        dwrf::RowBatch batch =
            dwrf::sliceBatch(stripe, start, spec.batch_size);
        stats.merge(graph.apply(batch));

        TensorBatch tensor;
        tensor.bytes = batch.payloadBytes();
        tensor.data = std::move(batch);
        metrics.inc("worker.tensor_bytes",
                    static_cast<double>(tensor.bytes));
        metrics.inc("worker.tensors");
        if (blocking) {
            if (!pushTensorBlocking(std::move(tensor)))
                return; // stopped while waiting for buffer space
        } else {
            enqueueTensor(std::move(tensor));
        }
    }
}

// ---------------------------------------------------------------------
// Parallel pipeline.

void
Worker::extractLoop()
{
    const SessionSpec &spec = master_.spec();
    while (!stop_requested_) {
        auto split = master_.requestSplit(id_);
        if (!split)
            break;
        auto source = warehouse_.cluster().open(split->file);
        dwrf::ReadOptions read = spec.read;
        read.projection = spec.projection;
        read.verify_checksums = options_.verify_checksums;
        dwrf::FileReader reader(*source, read);
        dsi_assert(reader.valid(), "worker %u: unreadable file '%s'",
                   id_, split->file.c_str());

        // Per-thread metric accumulation, folded in once per split.
        Metrics local;
        bool aborted = false;
        for (uint32_t s = 0; s < split->stripe_count; ++s) {
            if (stop_requested_) {
                aborted = true;
                break;
            }
            ExtractedStripe work;
            work.split_id = split->id;
            work.rows = extractStripe(
                reader, split->first_stripe + s, local);
            if (!stripe_queue_->push(std::move(work))) {
                aborted = true; // queue closed: shutting down
                break;
            }
        }
        mergeReadStats(reader.stats());
        metrics_.merge(local);
        if (aborted)
            return; // split stays in flight; failWorker() requeues it
        master_.completeSplit(id_, split->id);
        metrics_.inc("worker.splits_completed");
    }
    // Last extractor out ends the stripe stream so transformers can
    // drain and quiesce.
    if (active_extractors_.fetch_sub(1) == 1)
        stripe_queue_->close();
}

void
Worker::transformLoop()
{
    // Per-thread compiled program and stat accumulators; totals are
    // folded in once on exit (drain) rather than per mini-batch.
    transforms::CompiledGraph graph(program_);
    transforms::TransformStats stats;
    Metrics local;
    while (auto work = stripe_queue_->pop()) {
        transformStripe(work->rows, graph, stats, local,
                        /*blocking=*/true);
        if (stop_requested_)
            break;
    }
    {
        std::scoped_lock lock(stats_mutex_);
        transform_stats_.merge(stats);
    }
    metrics_.merge(local);
    // Last transformer out marks production finished: drained() can
    // only become true after every pipeline thread has quiesced.
    if (active_transformers_.fetch_sub(1) == 1) {
        std::scoped_lock lock(buffer_mutex_);
        no_more_work_ = true;
    }
}

// ---------------------------------------------------------------------
// Synchronous (pump) mode.

bool
Worker::pump()
{
    dsi_assert(!pool_, "worker %u: pump() cannot drive a started "
                       "parallel pipeline",
               id_);
    {
        std::scoped_lock lock(buffer_mutex_);
        if (no_more_work_)
            return false;
        if (bufferFullLocked())
            return true; // backpressure: trainers are behind
    }
    if (!current_) {
        auto split = master_.requestSplit(id_);
        if (!split) {
            std::scoped_lock lock(buffer_mutex_);
            no_more_work_ = true;
            return false;
        }
        openSplit(*split);
    }
    processNextStripe();
    if (next_stripe_ >= current_->stripe_count)
        closeSplit();
    return true;
}

void
Worker::openSplit(const Split &split)
{
    current_ = split;
    next_stripe_ = 0;
    source_ = warehouse_.cluster().open(split.file);
    dwrf::ReadOptions read = master_.spec().read;
    read.projection = master_.spec().projection;
    read.verify_checksums = options_.verify_checksums;
    reader_ = std::make_unique<dwrf::FileReader>(*source_, read);
    dsi_assert(reader_->valid(), "worker %u: unreadable file '%s'",
               id_, split.file.c_str());
}

void
Worker::processNextStripe()
{
    uint32_t stripe_index = current_->first_stripe + next_stripe_;
    dwrf::RowBatch stripe =
        extractStripe(*reader_, stripe_index, metrics_);
    ++next_stripe_;
    transformStripe(stripe, *graph_, transform_stats_, metrics_,
                    /*blocking=*/false);
}

void
Worker::closeSplit()
{
    mergeReadStats(reader_->stats());
    master_.completeSplit(id_, current_->id);
    metrics_.inc("worker.splits_completed");
    reader_.reset();
    source_.reset();
    current_.reset();
}

// ---------------------------------------------------------------------
// Tensor buffer (shared by both modes).

bool
Worker::bufferFullLocked() const
{
    if (buffer_.size() >= options_.buffer_capacity)
        return true;
    return options_.buffer_bytes_capacity > 0 &&
           buffered_bytes_ >= options_.buffer_bytes_capacity;
}

bool
Worker::bufferFull() const
{
    std::scoped_lock lock(buffer_mutex_);
    return bufferFullLocked();
}

size_t
Worker::buffered() const
{
    std::scoped_lock lock(buffer_mutex_);
    return buffer_.size();
}

Bytes
Worker::bufferedBytes() const
{
    std::scoped_lock lock(buffer_mutex_);
    return buffered_bytes_;
}

bool
Worker::pushTensorBlocking(TensorBatch tensor)
{
    std::unique_lock lock(buffer_mutex_);
    space_available_.wait(lock, [this] {
        return stop_requested_ || !bufferFullLocked();
    });
    if (stop_requested_)
        return false;
    buffered_bytes_ += tensor.bytes;
    buffer_.push_back(std::move(tensor));
    return true;
}

void
Worker::enqueueTensor(TensorBatch tensor)
{
    std::scoped_lock lock(buffer_mutex_);
    buffered_bytes_ += tensor.bytes;
    buffer_.push_back(std::move(tensor));
}

bool
Worker::drained() const
{
    std::scoped_lock lock(buffer_mutex_);
    return no_more_work_ && buffer_.empty();
}

std::optional<TensorBatch>
Worker::popTensor()
{
    std::unique_lock lock(buffer_mutex_);
    if (buffer_.empty())
        return std::nullopt;
    TensorBatch t = std::move(buffer_.front());
    buffer_.pop_front();
    buffered_bytes_ -= t.bytes;
    lock.unlock();
    space_available_.notify_one();
    metrics_.inc("worker.tensors_served");
    return t;
}

void
Worker::mergeReadStats(const dwrf::ReadStats &rs)
{
    std::scoped_lock lock(stats_mutex_);
    read_stats_.bytes_read += rs.bytes_read;
    read_stats_.bytes_needed += rs.bytes_needed;
    read_stats_.bytes_decompressed += rs.bytes_decompressed;
    read_stats_.bytes_decrypted += rs.bytes_decrypted;
    read_stats_.ios += rs.ios;
    read_stats_.streams_decoded += rs.streams_decoded;
}

} // namespace dsi::dpp
