#include "worker.h"

#include "common/backoff.h"
#include "common/fault.h"
#include "common/logging.h"
#include "dwrf/reader.h"
#include "transforms/dedup.h"

namespace dsi::dpp {

Worker::Worker(WorkSource &control,
               const warehouse::Warehouse &warehouse,
               WorkerOptions options)
    : control_(control), warehouse_(warehouse), options_(options),
      stripe_pool_(options.stripe_pool_max_idle,
                   options.stripe_pool_retained_bytes,
                   [](const dwrf::RowBatch &b) {
                       return static_cast<size_t>(b.heapBytes());
                   })
{
    id_ = control_.registerWorker();
    // The transform program (the "serialized and compiled PyTorch
    // module") is pulled lazily per tenant on the first grant from
    // that tenant — a fleet worker cannot know up front which
    // sessions it will serve. See programFor().
}

const transforms::TransformGraph &
Worker::programFor(TenantId tenant)
{
    {
        std::scoped_lock lock(program_mutex_);
        auto it = programs_.find(tenant);
        if (it != programs_.end())
            return it->second;
    }
    // Deserialize outside the lock (a compile-heavy tenant must not
    // stall siblings already cached). Two threads racing on the same
    // tenant both deserialize; try_emplace keeps exactly one copy.
    auto graph = transforms::TransformGraph::deserialize(
        control_.tenantProgram(tenant));
    dsi_assert(graph.has_value(),
               "worker %u received malformed transform program "
               "for tenant %u",
               id_, tenant);
    std::scoped_lock lock(program_mutex_);
    auto [it, inserted] =
        programs_.try_emplace(tenant, std::move(*graph));
    (void)inserted;
    return it->second;
}

Worker::~Worker()
{
    stop();
}

uint32_t
Worker::extractThreadCount() const
{
    if (!parallel())
        return 0;
    return options_.num_extract_threads > 0
               ? options_.num_extract_threads
               : 1;
}

uint32_t
Worker::transformThreadCount() const
{
    if (!parallel())
        return 0;
    return options_.num_transform_threads > 0
               ? options_.num_transform_threads
               : 1;
}

void
Worker::start()
{
    dsi_assert(parallel(),
               "worker %u: start() requires num_extract_threads or "
               "num_transform_threads > 0",
               id_);
    dsi_assert(!pool_, "worker %u already started", id_);
    uint32_t extracters = extractThreadCount();
    uint32_t transformers = transformThreadCount();
    stripe_queue_ = std::make_unique<BoundedQueue<ExtractedStripe>>(
        options_.stripe_queue_capacity);
    active_extractors_ = extracters;
    active_transformers_ = transformers;
    metrics_.set("worker.extract_threads", extracters);
    metrics_.set("worker.transform_threads", transformers);
    pool_ = std::make_unique<ThreadPool>(extracters + transformers);
    for (uint32_t i = 0; i < extracters; ++i)
        pool_->submit([this] { extractLoop(); });
    for (uint32_t i = 0; i < transformers; ++i)
        pool_->submit([this] { transformLoop(); });
}

void
Worker::stop()
{
    if (!pool_)
        return;
    {
        std::scoped_lock lock(buffer_mutex_);
        stop_requested_ = true;
    }
    space_available_.notify_all();
    stripe_queue_->close();
    pool_.reset(); // joins every pipeline thread
}

// ---------------------------------------------------------------------
// Shared extract/transform stages.

namespace {

/**
 * Synthesize an injected (beta) feature column for a stripe. Values
 * are a pure function of (feature id, absolute row) so every worker
 * — and every retry — joins identical data, as a feature-store
 * lookup would.
 */
void
injectFeature(dwrf::RowBatch &batch, const warehouse::FeatureSpec &f,
              RowId first_row)
{
    auto unit = [&](uint64_t row, uint64_t salt) {
        uint64_t h = transforms::sigridHash64(first_row + row,
                                              f.id * 1315423911u + salt);
        return static_cast<double>(h >> 11) * 0x1.0p-53;
    };
    if (f.kind == warehouse::FeatureKind::Dense) {
        dwrf::DenseColumn col;
        col.id = f.id;
        col.present.assign((batch.rows + 7) / 8, 0);
        col.values.assign(batch.rows, 0.0f);
        for (uint32_t r = 0; r < batch.rows; ++r) {
            if (unit(r, 0) < f.coverage) {
                col.setPresent(r);
                col.values[r] = static_cast<float>(unit(r, 1));
            }
        }
        batch.dense.push_back(std::move(col));
        return;
    }
    dwrf::SparseColumn col;
    col.id = f.id;
    col.offsets.assign(batch.rows + 1, 0);
    for (uint32_t r = 0; r < batch.rows; ++r) {
        col.offsets[r + 1] = col.offsets[r];
        if (unit(r, 0) >= f.coverage)
            continue;
        uint32_t len = 1 + static_cast<uint32_t>(
                               unit(r, 2) * 2.0 * f.avg_length);
        for (uint32_t k = 0; k < len; ++k) {
            col.values.push_back(static_cast<int64_t>(
                transforms::sigridHash64(first_row + r, k) %
                f.cardinality));
        }
        col.offsets[r + 1] += len;
    }
    if (f.kind == warehouse::FeatureKind::ScoredSparse) {
        col.scores.resize(col.values.size());
        for (size_t i = 0; i < col.scores.size(); ++i)
            col.scores[i] = static_cast<float>(
                (transforms::sigridHash64(i, f.id) >> 40) / 16777216.0);
    }
    batch.sparse.push_back(std::move(col));
}

} // namespace

bool
Worker::extractStripe(dwrf::FileReader &reader, TenantId tenant,
                      uint32_t stripe_index, dwrf::RowBatch &out,
                      Metrics &metrics,
                      dwrf::ReadStatus *status_out) const
{
    const SessionSpec &spec = control_.tenantSpec(tenant);
    dwrf::ReadStatus status = reader.readStripe(stripe_index, out);
    if (status_out != nullptr)
        *status_out = status;
    if (status == dwrf::ReadStatus::DeadlineExpired) {
        // The read budget ran out: nothing is wrong with the data.
        // The caller releases the split so a fresh grant (elsewhere,
        // with a fresh budget) can finish it.
        return false;
    }
    if (status != dwrf::ReadStatus::Ok) {
        // Reader-level retries (replica rotation) already ran; this
        // stripe is unreadable from here. The caller abandons the
        // split so the Master can retry it elsewhere or fail it.
        metrics.inc("worker.stripe_read_failures");
        return false;
    }
    metrics.inc("worker.rows_extracted", out.rows);

    // --- Inject beta features (dynamic join, Section IV-C) ---
    if (!spec.injected.empty()) {
        RowId first_row =
            reader.footer().stripes[stripe_index].first_row;
        for (const auto &f : spec.injected) {
            injectFeature(out, f, first_row);
            metrics.inc("worker.features_injected");
        }
    }
    return true;
}

bool
Worker::transformStripe(dwrf::RowBatch &stripe, TenantId tenant,
                        uint64_t split_id, uint64_t epoch,
                        RowId first_row, uint32_t stripe_index,
                        transforms::CompiledGraph &graph,
                        transforms::TransformStats &stats,
                        Metrics &metrics, bool blocking,
                        trace::SpanId grant_span)
{
    const SessionSpec &spec = control_.tenantSpec(tenant);
    // One transform span covers the whole stripe; buffer waits inside
    // it get their own Complete spans so stall attribution can credit
    // them to the delivery stage instead of transform compute.
    trace::Span span(trace::spans::kTransformStripe, grant_span,
                     split_id, first_row);
    // Batch dedup is gated on the graph being row-local (every Table
    // XI op except Sampling): only then is transform-once-per-unique-
    // row byte-identical to transforming the full batch.
    const bool dedup_row_local =
        options_.dedup_enabled && transforms::rowLocal(graph);
    // Transform + partial load, one mini-batch at a time (transforms
    // are localized to each mini-batch).
    for (uint32_t start = 0; start < stripe.rows;
         start += spec.batch_size) {
        if (blocking && (stop_requested_ || crashed_))
            return false;
        dwrf::RowBatch batch =
            dwrf::sliceBatch(stripe, start, spec.batch_size);
        if (options_.dedup_enabled && !dedup_row_local)
            metrics.inc("worker.dedup_bypassed_batches");
        if (dedup_row_local) {
            trace::Span dspan(trace::spans::kWorkerDedup, span.id(),
                              split_id, batch.rows);
            transforms::BatchDedupPlan plan =
                transforms::planBatchDedup(batch);
            metrics.inc("worker.dedup_rows_in",
                        static_cast<double>(batch.rows));
            metrics.inc(
                "worker.dedup_rows_unique",
                static_cast<double>(plan.unique_rows.size()));
            if (plan.collapsed()) {
                metrics.inc("worker.dedup_batches_collapsed");
                // Transform the unique rows only; expansion restores
                // every duplicate row with its own label.
                std::vector<float> labels = std::move(batch.labels);
                dwrf::RowBatch unique =
                    transforms::gatherRows(batch, plan.unique_rows);
                stats.merge(graph.apply(unique));
                batch = labels.empty()
                    ? transforms::gatherRows(unique, plan.inverse)
                    : transforms::expandBatch(unique, plan, labels);
            } else {
                stats.merge(graph.apply(batch));
            }
        } else {
            stats.merge(graph.apply(batch));
        }

        TensorBatch tensor;
        tensor.bytes = batch.payloadBytes();
        tensor.data = std::move(batch);
        tensor.tenant = tenant;
        tensor.split_id = split_id;
        tensor.first_row = first_row + start;
        tensor.stripe = stripe_index;
        tensor.last_in_stripe = start + spec.batch_size >= stripe.rows;
        tensor.epoch = epoch;
        tensor.trace = span.id();
        metrics.inc("worker.tensor_bytes",
                    static_cast<double>(tensor.bytes));
        metrics.inc("worker.tensors");
        // Count the tensor against the split *before* it becomes
        // visible in the buffer, so a concurrent pop can never
        // observe a delivery the tracker has not heard of.
        noteTensorEnqueued({tenant, split_id}, epoch);
        if (blocking) {
            trace::Timer wait;
            if (!pushTensorBlocking(std::move(tensor))) {
                // Stopped/crashed while waiting for buffer space; the
                // tensor never entered the buffer.
                noteTensorUnqueued({tenant, split_id}, epoch);
                return false;
            }
            wait.complete(trace::spans::kBufferWait, span.id(),
                          split_id);
        } else {
            enqueueTensor(std::move(tensor));
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// Parallel pipeline.

void
Worker::extractLoop()
{
    // Shed-retry pacing: decorrelated jitter with a tight cap keeps a
    // shed worker responsive without hammering the control plane in
    // lockstep with its sibling threads.
    Backoff shed_backoff(
        BackoffOptions{.base_us = 200, .cap_us = 2000},
        0xb0ffULL + id_);
    while (!stop_requested_ && !crashed_ && !draining_) {
        WorkerLoad load;
        load.buffered_tensors = buffered();
        load.buffer_full = bufferFull();
        SplitGrant grant = control_.acquireSplit(id_, load);
        if (grant.status == GrantStatus::Overloaded) {
            metrics_.inc("worker.requests_shed");
            shed_backoff.sleep(Deadline::unbounded());
            continue;
        }
        if (grant.status == GrantStatus::Standby) {
            // The source has tenants coming or splits in flight
            // elsewhere, just nothing for us *now*. Stay alive and
            // re-poll — this is not overload, so no shed count.
            metrics_.inc("worker.standby_polls");
            shed_backoff.sleep(Deadline::unbounded());
            continue;
        }
        if (grant.status != GrantStatus::Granted)
            break; // NoWork (idle out) or Rejected (zombie)
        shed_backoff.reset();
        const TenantId tenant = grant.tenant;
        const SessionSpec &spec = control_.tenantSpec(tenant);
        const Split &split = *grant.split;
        SplitKey key{tenant, split.id};
        // A resumed grant skips stripes already delivered to trainers
        // in a previous attempt; this attempt owes only the tail.
        if (split.resume_stripe > 0)
            metrics_.inc("worker.splits_resumed");
        uint64_t epoch = beginSplit(
            key, split.stripe_count - split.resume_stripe);
        auto source = warehouse_.cluster().open(split.file);
        dwrf::ReadOptions read = spec.read;
        read.projection = spec.projection;
        read.verify_checksums = options_.verify_checksums;
        // The open reads (file tail + footer) happen outside any
        // stripe span; parent them on the grant so they keep lineage.
        trace::ScopedParent open_ambient(grant.trace);
        dwrf::FileReader reader(*source, read);
        if (!reader.valid()) {
            dsi_warn("worker %u: unreadable file '%s'", id_,
                     split.file.c_str());
            abandonSplit(key);
            continue;
        }
        reader.setDeadline(grant.deadline);

        // Per-thread metric accumulation, folded in once per split.
        Metrics local;
        bool aborted = false;
        bool abandoned = false;
        bool released = false;
        for (uint32_t s = split.resume_stripe; s < split.stripe_count;
             ++s) {
            if (stop_requested_ || crashed_) {
                aborted = true;
                break;
            }
            if (faultPoint(faults::kWorkerCrash)) {
                crash();
                aborted = true;
                break;
            }
            if (handback_) {
                // Preempted: a higher-priority tenant needs this
                // worker's capacity. Hand the split back at the
                // stripe boundary (requeued, no attempt penalty).
                local.inc("worker.splits_preempted");
                released = true;
                break;
            }
            control_.heartbeat(id_); // per-stripe lease renewal
            if (grant.deadline.expired()) {
                local.inc("worker.deadline_expired");
                released = true;
                break;
            }
            uint32_t stripe_index = split.first_stripe + s;
            dwrf::ReadStatus status = dwrf::ReadStatus::Ok;
            auto rows = stripe_pool_.acquire();
            bool ok;
            {
                // The extract span closes before any terminal Master
                // call or queue push, keeping per-thread span nesting
                // strictly LIFO (the Chrome exporter relies on it).
                trace::Span espan(trace::spans::kExtractStripe,
                                  grant.trace, split.id, stripe_index);
                trace::ScopedParent ambient(espan.id());
                ok = extractStripe(reader, tenant, stripe_index, *rows,
                                   local, &status);
            }
            if (!ok) {
                stripe_pool_.release(std::move(rows));
                if (status == dwrf::ReadStatus::DeadlineExpired) {
                    local.inc("worker.deadline_expired");
                    released = true;
                } else {
                    abandoned = true;
                }
                break;
            }
            ExtractedStripe work;
            work.tenant = tenant;
            work.split_id = split.id;
            work.first_row =
                reader.footer().stripes[stripe_index].first_row;
            work.stripe = s;
            work.epoch = epoch;
            work.trace = grant.trace;
            work.rows = std::move(rows);
            // Backpressure observes the split budget: a stalled
            // transform stage must not pin an expired split forever.
            trace::Timer wait;
            if (!stripe_queue_->push(std::move(work),
                                     grant.deadline)) {
                if (stripe_queue_->closed()) {
                    aborted = true; // shutting down
                } else {
                    local.inc("worker.deadline_expired");
                    released = true;
                }
                break;
            }
            wait.complete(trace::spans::kQueuePushWait, grant.trace,
                          split.id, stripe_index);
        }
        mergeReadStats(reader.stats());
        metrics_.merge(local);
        if (aborted)
            break; // split stays in flight; the Master requeues it
        if (released) {
            returnSplit(key);
            continue;
        }
        if (abandoned) {
            abandonSplit(key);
            continue;
        }
        // Extraction done; completion waits for the last delivery.
        finishExtraction(key, epoch);
    }
    // Last extractor out ends the stripe stream so transformers can
    // drain and quiesce.
    if (active_extractors_.fetch_sub(1) == 1)
        stripe_queue_->close();
}

void
Worker::transformLoop()
{
    // Per-thread, per-tenant compiled programs and per-thread stat
    // accumulators; totals are folded in once on exit (drain) rather
    // than per mini-batch. Compiled ops hold per-instance state (e.g.
    // the Sampling counter), so instances are never shared across
    // threads — each thread compiles its own copy per tenant.
    std::map<TenantId, std::unique_ptr<transforms::CompiledGraph>>
        graphs;
    transforms::TransformStats stats;
    Metrics local;
    while (auto work = stripe_queue_->pop()) {
        if (crashed_)
            break;
        auto &graph = graphs[work->tenant];
        if (!graph) {
            graph = std::make_unique<transforms::CompiledGraph>(
                programFor(work->tenant));
        }
        bool whole = transformStripe(*work->rows, work->tenant,
                                     work->split_id, work->epoch,
                                     work->first_row, work->stripe,
                                     *graph, stats, local,
                                     /*blocking=*/true, work->trace);
        // The stripe's columns are no longer needed (mini-batches own
        // copies); recycle the batch so the next extract reuses its
        // heap capacity.
        stripe_pool_.release(std::move(work->rows));
        if (whole)
            noteStripeTransformed({work->tenant, work->split_id},
                                  work->epoch);
        if (stop_requested_ || crashed_)
            break;
    }
    {
        std::scoped_lock lock(stats_mutex_);
        transform_stats_.merge(stats);
    }
    metrics_.merge(local);
    publishPoolMetrics();
    // Last transformer out marks production finished: drained() can
    // only become true after every pipeline thread has quiesced.
    if (active_transformers_.fetch_sub(1) == 1) {
        std::scoped_lock lock(buffer_mutex_);
        no_more_work_ = true;
    }
}

// ---------------------------------------------------------------------
// Synchronous (pump) mode.

bool
Worker::pump()
{
    dsi_assert(!pool_, "worker %u: pump() cannot drive a started "
                       "parallel pipeline",
               id_);
    if (crashed_)
        return false;
    control_.heartbeat(id_); // per-pump lease renewal
    {
        std::scoped_lock lock(buffer_mutex_);
        if (no_more_work_)
            return false;
        if (bufferFullLocked())
            return true; // backpressure: trainers are behind
    }
    if (current_ && handback_) {
        // Preempted mid-split: hand it back at the stripe boundary.
        metrics_.inc("worker.splits_preempted");
        releaseCurrentSplit();
        return true;
    }
    if (!current_) {
        if (draining_) {
            std::scoped_lock lock(buffer_mutex_);
            no_more_work_ = true;
            return false;
        }
        WorkerLoad load;
        load.buffered_tensors = buffered();
        load.buffer_full = bufferFull();
        SplitGrant grant = control_.acquireSplit(id_, load);
        if (grant.status == GrantStatus::Overloaded) {
            metrics_.inc("worker.requests_shed");
            return true; // shed; ask again next pump
        }
        if (grant.status == GrantStatus::Standby) {
            // Between arrivals: stay alive, ask again next pump.
            metrics_.inc("worker.standby_polls");
            return true;
        }
        if (grant.status != GrantStatus::Granted) {
            std::scoped_lock lock(buffer_mutex_);
            no_more_work_ = true;
            return false;
        }
        current_tenant_ = grant.tenant;
        current_deadline_ = grant.deadline;
        current_trace_ = grant.trace;
        if (!openSplit(*grant.split))
            return true; // split abandoned; try another next pump
    }
    // Per-stripe crash point, checked while a split is held — same
    // placement as the parallel extract loop, so an injected crash
    // always leaves an in-flight split for lease recovery to replay.
    if (faultPoint(faults::kWorkerCrash)) {
        crash();
        return false;
    }
    if (current_deadline_.expired()) {
        metrics_.inc("worker.deadline_expired");
        releaseCurrentSplit();
        return true;
    }
    if (!processNextStripe())
        return true; // released or abandoned internally
    if (next_stripe_ >= current_->stripe_count)
        closeSplit();
    return true;
}

bool
Worker::openSplit(const Split &split)
{
    current_ = split;
    // Resumed grants re-read only the undelivered stripe tail.
    next_stripe_ = split.resume_stripe;
    if (split.resume_stripe > 0)
        metrics_.inc("worker.splits_resumed");
    source_ = warehouse_.cluster().open(split.file);
    const SessionSpec &spec = control_.tenantSpec(current_tenant_);
    dwrf::ReadOptions read = spec.read;
    read.projection = spec.projection;
    read.verify_checksums = options_.verify_checksums;
    // Parent the open reads (file tail + footer) on the grant span.
    trace::ScopedParent open_ambient(current_trace_);
    reader_ = std::make_unique<dwrf::FileReader>(*source_, read);
    if (!reader_->valid()) {
        dsi_warn("worker %u: unreadable file '%s'", id_,
                 split.file.c_str());
        current_epoch_ =
            beginSplit({current_tenant_, split.id},
                       split.stripe_count - split.resume_stripe);
        abandonCurrentSplit();
        return false;
    }
    reader_->setDeadline(current_deadline_);
    current_epoch_ =
        beginSplit({current_tenant_, split.id},
                   split.stripe_count - split.resume_stripe);
    return true;
}

bool
Worker::processNextStripe()
{
    // A fully-delivered resume (every stripe was already handed to
    // trainers before the previous attempt died) has nothing left to
    // read; pump() closes the split right after this returns.
    if (next_stripe_ >= current_->stripe_count)
        return true;
    uint32_t stripe_index = current_->first_stripe + next_stripe_;
    dwrf::ReadStatus status = dwrf::ReadStatus::Ok;
    auto stripe = stripe_pool_.acquire();
    bool ok;
    {
        trace::Span espan(trace::spans::kExtractStripe,
                          current_trace_, current_->id, stripe_index);
        trace::ScopedParent ambient(espan.id());
        ok = extractStripe(*reader_, current_tenant_, stripe_index,
                           *stripe, metrics_, &status);
    }
    if (!ok) {
        stripe_pool_.release(std::move(stripe));
        if (status == dwrf::ReadStatus::DeadlineExpired) {
            metrics_.inc("worker.deadline_expired");
            releaseCurrentSplit();
        } else {
            abandonCurrentSplit();
        }
        return false;
    }
    RowId first_row = reader_->footer().stripes[stripe_index].first_row;
    uint32_t relative_stripe = next_stripe_;
    ++next_stripe_;
    auto &graph = sync_graphs_[current_tenant_];
    if (!graph) {
        graph = std::make_unique<transforms::CompiledGraph>(
            programFor(current_tenant_));
    }
    if (transformStripe(*stripe, current_tenant_, current_->id,
                        current_epoch_, first_row, relative_stripe,
                        *graph, transform_stats_, metrics_,
                        /*blocking=*/false, current_trace_)) {
        noteStripeTransformed({current_tenant_, current_->id},
                              current_epoch_);
    }
    stripe_pool_.release(std::move(stripe));
    return true;
}

void
Worker::closeSplit()
{
    mergeReadStats(reader_->stats());
    // Completion is delivery-gated: the Master hears completeSplit
    // once the last buffered tensor of this split is popped.
    finishExtraction({current_tenant_, current_->id}, current_epoch_);
    reader_.reset();
    source_.reset();
    current_.reset();
}

void
Worker::abandonCurrentSplit()
{
    if (reader_)
        mergeReadStats(reader_->stats());
    SplitKey key{current_tenant_, current_->id};
    reader_.reset();
    source_.reset();
    current_.reset();
    abandonSplit(key);
}

void
Worker::releaseCurrentSplit()
{
    if (reader_)
        mergeReadStats(reader_->stats());
    SplitKey key{current_tenant_, current_->id};
    reader_.reset();
    source_.reset();
    current_.reset();
    returnSplit(key);
}

void
Worker::beginDrain(bool release_held)
{
    if (release_held)
        handback_ = true;
    if (!draining_.exchange(true))
        metrics_.inc("worker.drains_begun");
}

WorkerReport
Worker::report() const
{
    WorkerReport r;
    r.buffered_tensors = buffered();
    return r;
}

// ---------------------------------------------------------------------
// Tensor buffer (shared by both modes).

bool
Worker::bufferFullLocked() const
{
    if (buffer_.size() >= options_.buffer_capacity)
        return true;
    return options_.buffer_bytes_capacity > 0 &&
           buffered_bytes_ >= options_.buffer_bytes_capacity;
}

bool
Worker::bufferFull() const
{
    std::scoped_lock lock(buffer_mutex_);
    return bufferFullLocked();
}

size_t
Worker::buffered() const
{
    std::scoped_lock lock(buffer_mutex_);
    return buffer_.size();
}

Bytes
Worker::bufferedBytes() const
{
    std::scoped_lock lock(buffer_mutex_);
    return buffered_bytes_;
}

bool
Worker::pushTensorBlocking(TensorBatch tensor)
{
    std::unique_lock lock(buffer_mutex_);
    space_available_.wait(lock, [this] {
        return stop_requested_ || crashed_ || !bufferFullLocked();
    });
    if (stop_requested_ || crashed_)
        return false;
    buffered_bytes_ += tensor.bytes;
    buffer_.push_back(std::move(tensor));
    return true;
}

void
Worker::enqueueTensor(TensorBatch tensor)
{
    std::scoped_lock lock(buffer_mutex_);
    buffered_bytes_ += tensor.bytes;
    buffer_.push_back(std::move(tensor));
}

bool
Worker::drained() const
{
    if (crashed_) {
        // A crashed worker is "drained" once nothing depends on it:
        // its progress trackers empty exactly when every split it
        // touched completed or was handed back to the Master. A
        // non-empty tracker means an in-flight split, whose lease
        // expiry will trigger replacement — the session never waits
        // on a crashed worker that still owes work.
        std::scoped_lock lock(progress_mutex_);
        return split_progress_.empty();
    }
    std::scoped_lock lock(buffer_mutex_);
    return no_more_work_ && buffer_.empty();
}

std::optional<TensorBatch>
Worker::popTensor()
{
    // A crashed worker is unreachable: its buffered tensors are lost
    // with the process. Because completion is delivery-gated, those
    // splits stay in flight and the Master replays them elsewhere.
    if (crashed_)
        return std::nullopt;
    std::unique_lock lock(buffer_mutex_);
    if (buffer_.empty()) {
        lock.unlock();
        // Answering an (empty) RPC is still proof of life.
        control_.heartbeat(id_);
        return std::nullopt;
    }
    TensorBatch t = std::move(buffer_.front());
    buffer_.pop_front();
    buffered_bytes_ -= t.bytes;
    lock.unlock();
    space_available_.notify_one();
    metrics_.inc("worker.tensors_served");
    control_.heartbeat(id_);
    noteTensorDelivered({t.tenant, t.split_id}, t.epoch);
    return t;
}

void
Worker::mergeReadStats(const dwrf::ReadStats &rs)
{
    std::scoped_lock lock(stats_mutex_);
    read_stats_.merge(rs);
    if (rs.dict_streams != 0) {
        metrics_.inc("dwrf.dict_streams",
                     static_cast<double>(rs.dict_streams));
    }
    if (rs.dict_list_refs != 0) {
        metrics_.inc("dwrf.dict_list_refs",
                     static_cast<double>(rs.dict_list_refs));
    }
    if (rs.dict_lists_inline != 0) {
        metrics_.inc("dwrf.dict_lists_inline",
                     static_cast<double>(rs.dict_lists_inline));
    }
}

// ---------------------------------------------------------------------
// Delivery-gated split completion.

uint64_t
Worker::beginSplit(SplitKey key, uint32_t stripes_total)
{
    std::scoped_lock lock(progress_mutex_);
    uint64_t epoch = next_epoch_++;
    SplitProgress p;
    p.stripes_total = stripes_total;
    p.epoch = epoch;
    split_progress_[key] = p;
    return epoch;
}

void
Worker::noteTensorEnqueued(SplitKey key, uint64_t epoch)
{
    std::scoped_lock lock(progress_mutex_);
    auto it = split_progress_.find(key);
    if (it != split_progress_.end() && it->second.epoch == epoch)
        ++it->second.tensors_buffered;
}

void
Worker::noteTensorUnqueued(SplitKey key, uint64_t epoch)
{
    std::scoped_lock lock(progress_mutex_);
    auto it = split_progress_.find(key);
    if (it != split_progress_.end() && it->second.epoch == epoch &&
        it->second.tensors_buffered > 0) {
        --it->second.tensors_buffered;
    }
}

void
Worker::noteTensorDelivered(SplitKey key, uint64_t epoch)
{
    {
        std::scoped_lock lock(progress_mutex_);
        auto it = split_progress_.find(key);
        // Epoch mismatch: a leftover tensor of an earlier, abandoned
        // attempt — it must not touch the current attempt's counts.
        if (it == split_progress_.end() || it->second.epoch != epoch)
            return;
        if (it->second.tensors_buffered > 0)
            --it->second.tensors_buffered;
    }
    maybeCompleteSplit(key);
}

void
Worker::noteStripeTransformed(SplitKey key, uint64_t epoch)
{
    {
        std::scoped_lock lock(progress_mutex_);
        auto it = split_progress_.find(key);
        if (it == split_progress_.end() || it->second.epoch != epoch)
            return;
        ++it->second.stripes_transformed;
    }
    maybeCompleteSplit(key);
}

void
Worker::finishExtraction(SplitKey key, uint64_t epoch)
{
    {
        std::scoped_lock lock(progress_mutex_);
        auto it = split_progress_.find(key);
        if (it == split_progress_.end() || it->second.epoch != epoch)
            return;
        it->second.extraction_done = true;
    }
    maybeCompleteSplit(key);
}

void
Worker::maybeCompleteSplit(SplitKey key)
{
    bool complete = false;
    {
        std::scoped_lock lock(progress_mutex_);
        auto it = split_progress_.find(key);
        if (it != split_progress_.end() && it->second.extraction_done &&
            it->second.stripes_transformed ==
                it->second.stripes_total &&
            it->second.tensors_buffered == 0) {
            split_progress_.erase(it);
            complete = true;
        }
    }
    // Control-plane call happens outside every lock (lock-order
    // hygiene: WorkSource implementations take their own mutexes).
    if (complete) {
        control_.completeSplit(id_, key.first, key.second);
        metrics_.inc("worker.splits_completed");
        publishPoolMetrics();
    }
}

void
Worker::publishPoolMetrics()
{
    metrics_.set("worker.stripe_pool_allocated",
                 static_cast<double>(stripe_pool_.allocated()));
    metrics_.set("worker.stripe_pool_reused",
                 static_cast<double>(stripe_pool_.reused()));
    metrics_.set("worker.stripe_pool_retained_bytes",
                 static_cast<double>(stripe_pool_.retainedBytes()));
}

void
Worker::abandonSplit(SplitKey key)
{
    {
        std::scoped_lock lock(progress_mutex_);
        split_progress_.erase(key);
    }
    control_.failSplit(id_, key.first, key.second);
    metrics_.inc("worker.splits_abandoned");
    // Pool gauges must reflect terminal states too, not just clean
    // completions — otherwise a crashy run reports stale reuse
    // numbers until the next report interval.
    publishPoolMetrics();
}

void
Worker::returnSplit(SplitKey key)
{
    // Same cleanup as abandonSplit, but the control plane requeues
    // with no attempt penalty: leftover tensors of this attempt are
    // filtered by epoch here and deduplicated by the client ledger.
    {
        std::scoped_lock lock(progress_mutex_);
        split_progress_.erase(key);
    }
    control_.releaseSplit(id_, key.first, key.second);
    metrics_.inc("worker.splits_released");
    publishPoolMetrics();
}

void
Worker::crash()
{
    {
        std::scoped_lock lock(buffer_mutex_);
        crashed_ = true;
    }
    space_available_.notify_all();
    if (stripe_queue_)
        stripe_queue_->close();
    metrics_.inc("worker.crashes");
    publishPoolMetrics();
    trace::instant(trace::events::kFaultWorkerCrash, trace::kNoSpan,
                   id_);
    dsi_warn("worker %u: injected crash", id_);
}

} // namespace dsi::dpp
