/**
 * @file
 * WorkSource: the control-plane interface a Worker pulls splits from.
 *
 * The paper provisions DPP at *fleet* scope — hundreds of concurrent
 * training jobs share preprocessing workers, with RC jobs prioritized
 * over exploratory ones (Figures 4-6). That requires workers to be
 * tenant-agnostic: a worker does not belong to one session's Master,
 * it asks "the control plane" for work and may be granted a split
 * from any session. WorkSource is that seam:
 *
 *  - A single-session deployment hands the Worker its Master directly
 *    (Master implements WorkSource with every tenant id = 0), so the
 *    classic InProcessSession wiring is unchanged.
 *  - A fleet deployment hands the Worker a sched::FleetScheduler,
 *    which multiplexes many Masters behind one WorkSource and tags
 *    each grant with the tenant it came from. The Worker routes every
 *    split-lifecycle call (complete / fail / release) back through
 *    the tenant id the grant carried, and fetches the per-tenant
 *    transform program / spec on demand.
 *
 * Thread safety: implementations must accept concurrent calls from
 * many workers and the many extract threads inside each one, exactly
 * like the Master's RPC surface.
 */

#ifndef DSI_DPP_WORK_SOURCE_H
#define DSI_DPP_WORK_SOURCE_H

#include <optional>

#include "common/deadline.h"
#include "common/trace.h"
#include "dpp/spec.h"

namespace dsi::dpp {

/** Outcome of a split request under admission control. */
enum class GrantStatus
{
    Granted,    ///< a split was leased to the caller
    NoWork,     ///< no pending work will ever arrive — idle or drain
    Standby,    ///< nothing *right now*; stay alive and ask again
    Overloaded, ///< request shed: back off, then ask again
    Rejected,   ///< caller is a zombie; it must stop working
};

/**
 * Worker-side load snapshot attached to a split request, the signal
 * admission control sheds on. A production Worker piggybacks this on
 * its getWork RPC.
 */
struct WorkerLoad
{
    uint64_t buffered_tensors = 0; ///< output buffer occupancy
    bool buffer_full = false;      ///< trainers are not keeping up
};

/** A granted split plus the time budget it must complete within. */
struct SplitGrant
{
    GrantStatus status = GrantStatus::NoWork;
    std::optional<Split> split;
    Deadline deadline; ///< unbounded when deadlines are disabled

    /**
     * Which tenant's session this split belongs to. Every lifecycle
     * call the worker makes for the split must echo it back. Always 0
     * when the WorkSource is a single-session Master.
     */
    TenantId tenant = 0;

    /**
     * Root span of the split's lineage (master.grant), opened when
     * the split is Granted and closed when it reaches a terminal
     * state at the Master. Everything the worker does with the split
     * parents on this id. kNoSpan when tracing is off.
     */
    trace::SpanId trace = trace::kNoSpan;
};

/** The control plane a tenant-agnostic Worker pulls work from. */
class WorkSource
{
  public:
    virtual ~WorkSource() = default;

    /** Register a Worker (returns its id in this source's space). */
    virtual WorkerId registerWorker() = 0;

    /**
     * The admission-controlled request path. Zombies are Rejected; an
     * exhausted source is NoWork; a source that is merely between
     * arrivals answers Standby (the worker stays alive and re-polls);
     * an overloaded caller is shed with Overloaded. A Granted split
     * carries the tenant it must be accounted against.
     */
    virtual SplitGrant acquireSplit(WorkerId worker,
                                    const WorkerLoad &load) = 0;

    /** A Worker reports a tenant's split finished (delivery-gated). */
    virtual void completeSplit(WorkerId worker, TenantId tenant,
                               uint64_t split_id) = 0;

    /** A Worker gives up on a tenant's split (unreadable data). */
    virtual void failSplit(WorkerId worker, TenantId tenant,
                           uint64_t split_id) = 0;

    /**
     * A Worker voluntarily hands a tenant's split back unfinished
     * (deadline blown, drain, or preemption) — requeued, no attempt
     * penalty.
     */
    virtual void releaseSplit(WorkerId worker, TenantId tenant,
                              uint64_t split_id) = 0;

    /** Liveness signal from a worker's data-plane activity. */
    virtual void heartbeat(WorkerId worker) = 0;

    /** The session spec a tenant's splits are processed under. */
    virtual const SessionSpec &tenantSpec(TenantId tenant) const = 0;

    /** Serialized transform program for a tenant (pulled lazily). */
    virtual const dwrf::Buffer &
    tenantProgram(TenantId tenant) const = 0;
};

} // namespace dsi::dpp

#endif // DSI_DPP_WORK_SOURCE_H
