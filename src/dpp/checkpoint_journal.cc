#include "checkpoint_journal.h"

#include <algorithm>

#include "common/fault.h"
#include "common/logging.h"
#include "dwrf/checksum.h"

namespace dsi::dpp {

CheckpointJournal::CheckpointJournal(storage::TectonicCluster &cluster,
                                     std::string base,
                                     JournalOptions options)
    : cluster_(cluster), base_(std::move(base)), options_(options)
{
    dsi_assert(!base_.empty(), "journal needs a base name");
    dsi_assert(options_.keep_records >= 1,
               "journal must retain at least one record");
    // Resume the sequence counter past any surviving records so a
    // restarted control plane's first append never collides with (or
    // sorts below) history.
    for (const auto &name : cluster_.listFiles(base_ + ".")) {
        if (auto seq = parseSeq(name))
            next_seq_ = std::max(next_seq_, *seq + 1);
    }
}

std::string
CheckpointJournal::recordName(uint64_t seq) const
{
    return base_ + "." + std::to_string(seq);
}

std::optional<uint64_t>
CheckpointJournal::parseSeq(const std::string &name) const
{
    const std::string prefix = base_ + ".";
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0)
        return std::nullopt;
    uint64_t seq = 0;
    for (size_t i = prefix.size(); i < name.size(); ++i) {
        char c = name[i];
        if (c < '0' || c > '9')
            return std::nullopt; // the stage file, or a foreign name
        seq = seq * 10 + static_cast<uint64_t>(c - '0');
    }
    return seq;
}

CheckpointJournal::AppendResult
CheckpointJournal::append(dwrf::ByteSpan payload)
{
    AppendResult result;
    result.seq = next_seq_++;

    dwrf::Buffer record;
    dwrf::putVarint(record, kMagic);
    dwrf::putVarint(record, kFormatVersion);
    dwrf::putVarint(record, result.seq);
    dwrf::putVarint(record, payload.size());
    uint32_t crc = dwrf::crc32(payload);
    for (int shift = 0; shift < 32; shift += 8)
        record.push_back(static_cast<uint8_t>(crc >> shift));
    record.insert(record.end(), payload.begin(), payload.end());
    result.bytes = record.size();

    // Write-then-publish: the record is staged under a name recovery
    // never reads, then published whole. A death here loses only this
    // record — never an older valid one.
    const std::string stage = base_ + ".staging";
    cluster_.put(stage, record);
    if (faultPoint(faults::kCheckpointWriteCrash)) {
        // Died between stage and publish; the stage file is left
        // behind exactly as a real crash would leave it.
        result.published = false;
        return result;
    }
    // Torn / corrupt publishes model a non-atomic filesystem under
    // the same crash: the final name exists but its bytes are bad.
    // Recovery must fall back to the previous valid record.
    if (faultPoint(faults::kCheckpointWriteTorn))
        record.resize(record.size() / 2);
    else if (faultPoint(faults::kCheckpointWriteCorrupt) &&
             !record.empty())
        record[record.size() / 2] ^= 0x40;
    cluster_.put(recordName(result.seq), record);
    cluster_.remove(stage);
    pruneLocked(result.seq);
    return result;
}

void
CheckpointJournal::pruneLocked(uint64_t newest_seq)
{
    if (newest_seq < options_.keep_records)
        return;
    uint64_t floor = newest_seq - options_.keep_records + 1;
    for (const auto &name : cluster_.listFiles(base_ + ".")) {
        auto seq = parseSeq(name);
        if (seq && *seq < floor)
            cluster_.remove(name);
    }
}

JournalRecovery
CheckpointJournal::recover() const
{
    std::vector<uint64_t> seqs;
    for (const auto &name : cluster_.listFiles(base_ + ".")) {
        if (auto seq = parseSeq(name))
            seqs.push_back(*seq);
    }
    std::sort(seqs.rbegin(), seqs.rend());

    JournalRecovery r;
    for (uint64_t seq : seqs) {
        auto source = cluster_.open(recordName(seq));
        dwrf::Buffer bytes;
        if (source->readChecked(0, source->size(), bytes) !=
            dwrf::IoStatus::Ok) {
            ++r.corrupt_skipped;
            continue;
        }
        size_t pos = 0;
        uint64_t magic, version, rseq, len;
        if (!dwrf::getVarint(bytes, pos, magic) || magic != kMagic ||
            !dwrf::getVarint(bytes, pos, version) ||
            version != kFormatVersion ||
            !dwrf::getVarint(bytes, pos, rseq) || rseq != seq ||
            !dwrf::getVarint(bytes, pos, len) ||
            bytes.size() < pos + 4 || bytes.size() - pos - 4 != len) {
            ++r.corrupt_skipped;
            continue;
        }
        uint32_t stored = 0;
        for (int shift = 0; shift < 32; shift += 8)
            stored |= static_cast<uint32_t>(bytes[pos++]) << shift;
        dwrf::ByteSpan payload(bytes.data() + pos, len);
        if (dwrf::crc32(payload) != stored) {
            ++r.corrupt_skipped;
            continue;
        }
        r.found = true;
        r.seq = seq;
        r.payload.assign(payload.begin(), payload.end());
        return r;
    }
    return r; // cold start: nothing valid survived
}

} // namespace dsi::dpp
