/**
 * @file
 * In-process DPP session orchestrator.
 *
 * Wires a Master, a Worker pool, and per-trainer Clients into one
 * runnable pipeline over the warehouse — the functional counterpart
 * of a production DPP deployment, used by examples, tests, and the
 * functional benches. Supports mid-run Worker failure injection (the
 * Master's health monitor requeues in-flight splits and the session
 * launches a stateless replacement, as in Section III-B1).
 *
 * Execution follows the Workers' mode (WorkerOptions in
 * SessionOptions::worker):
 *
 *  - Synchronous (default): run() cooperatively interleaves
 *    single-threaded Worker::pump() calls with client drains —
 *    deterministic, no threads.
 *  - Parallel (`num_extract_threads`/`num_transform_threads` > 0):
 *    run() start()s every Worker's pipeline threads and the calling
 *    thread becomes the trainer side, draining Clients until all
 *    Workers quiesce. Worker failure injection stops the victim's
 *    threads before the Master requeues its splits.
 */

#ifndef DSI_DPP_SESSION_H
#define DSI_DPP_SESSION_H

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dpp/autoscaler.h"
#include "dpp/client.h"
#include "dpp/master.h"
#include "dpp/worker.h"

namespace dsi::dpp {

/**
 * Live auto-scaling knobs. When enabled, the session periodically
 * collects WorkerReports from the live pool, computes demand (tensors
 * delivered to trainers) and supply (tensors produced) rates over the
 * period, and applies the shared AutoScaler policy: positive deltas
 * launch stateless workers into the running session, negative deltas
 * gracefully drain victims (they finish and deliver everything held,
 * then retire) — the same controller sim_session simulates.
 */
struct AutoScaleOptions
{
    bool enabled = false;
    AutoScalerConfig scaler;

    /** Wall-clock seconds between scaling evaluations. */
    double interval_s = 0.02;
};

/**
 * Session tracing knobs. Tracing also turns on when the DSI_TRACE
 * environment variable is set (any value but "0").
 */
struct TraceOptions
{
    bool enabled = false;
};

/**
 * Storage self-healing lifecycle. With a cluster attached, the
 * session owns a background healer on it for the duration of run():
 * the scrubber and repair executor work at their configured budgets
 * while training reads proceed, and the healer is stopped (joined)
 * before run() returns. The cluster's self-healing metrics
 * (storage.*) are folded into collectMetrics().
 */
struct SelfHealOptions
{
    /** Cluster to heal (null = self-healing off). Must outlive the
     * session. */
    storage::TectonicCluster *cluster = nullptr;

    /** Scrub / repair pacing for the background healer. */
    storage::HealOptions heal;
};

/** Session-level configuration. */
struct SessionOptions
{
    uint32_t workers = 4;
    uint32_t clients = 1;
    WorkerOptions worker;
    ClientOptions client;

    /** Pipeline-wide span tracing for this run (off by default). */
    TraceOptions trace;

    /**
     * Heartbeat lease timeout (seconds). > 0 enables automatic
     * failure detection: a silent worker holding in-flight splits is
     * declared dead, its splits requeue, and the session starts a
     * stateless replacement. 0 keeps detection manual
     * (injectWorkerFailure only).
     */
    double lease_timeout = 0.0;

    /** Attempts a split gets before the Master marks it failed. */
    uint32_t max_split_attempts = 3;

    /** Overload protection (shedding, per-split deadlines). */
    AdmissionOptions admission;

    /** Live auto-scaling (off by default). */
    AutoScaleOptions autoscale;

    /** Durable checkpointing / crash recovery (off by default). */
    RecoveryOptions recovery;

    /** Background storage scrubbing/repair (off by default). */
    SelfHealOptions self_heal;
};

/** Aggregate outcome of a completed session. */
struct SessionResult
{
    uint64_t tensors_delivered = 0;
    uint64_t rows_delivered = 0;
    Bytes tensor_bytes = 0;
    uint64_t worker_failures = 0; ///< injected + lease-expired
    uint64_t duplicates_suppressed = 0; ///< replayed batches dropped
    uint64_t splits_failed = 0; ///< splits that exhausted attempts
    uint64_t deadline_expirations = 0; ///< splits requeued on budget
    uint64_t workers_launched = 0; ///< added by live auto-scaling
    uint64_t workers_drained = 0;  ///< retired by live auto-scaling
    dwrf::ReadStats read_stats;
    transforms::TransformStats transform_stats;
};

/**
 * One live scaling evaluation: exactly what the controller saw and
 * what it decided. The log lets tests replay the same input stream
 * through a fresh AutoScaler (the sim_session path) and assert the
 * live session did not drift from the shared policy.
 */
struct ScalingEvent
{
    std::vector<WorkerReport> reports;
    double demand_rate = 0.0;
    double supply_rate = 0.0;
    ScalingDecision decision;
};

/** A runnable, fault-injectable DPP session. */
class InProcessSession
{
  public:
    /** Called for every tensor a client receives. */
    using TensorSink =
        std::function<void(ClientId, const TensorBatch &)>;

    InProcessSession(const warehouse::Warehouse &warehouse,
                     SessionSpec spec, SessionOptions options = {});

    Master &master() { return *master_; }

    /** The session-wide exactly-once ledger (tests inspect it). */
    DeliveryLedger &ledger() { return ledger_; }

    /**
     * Simulate whole-control-plane death: the next run() loop
     * iteration stops pumping/draining and returns without completing
     * the session (in-flight splits stay incomplete; buffered tensors
     * are lost exactly as a real crash loses them). A successor
     * session built with RecoveryOptions::recover picks the stream
     * back up from the journal. Safe from the sink callback.
     */
    void requestHalt() { halt_requested_ = true; }

    /** True when the last run() exited via requestHalt(). */
    bool halted() const { return halt_requested_; }

    /**
     * Kill worker at pool index `i` (its pipeline threads are
     * stopped, its buffer is lost, in-flight splits requeue) and
     * start a stateless replacement. If the session is mid-run in
     * parallel mode, the replacement's pipeline starts immediately.
     */
    void injectWorkerFailure(size_t i);

    /**
     * Drive the pipeline to completion: workers produce (pumped
     * cooperatively, or on their own threads in parallel mode) while
     * clients drain. `sink` (optional) observes every delivered
     * tensor — called only from the run() caller's thread.
     * `fail_after_splits`, if nonzero, kills one worker after that
     * many splits complete (fault-tolerance exercise).
     */
    SessionResult run(TensorSink sink = nullptr,
                      uint64_t fail_after_splits = 0);

    /** Every scaling evaluation the live controller made this run. */
    const std::vector<ScalingEvent> &scalingLog() const
    {
        return scaling_log_;
    }

    /**
     * The trace collected by the last run() (empty unless tracing was
     * enabled via SessionOptions::trace or DSI_TRACE). Feed it to
     * trace::TraceQuery for assertions or trace::writeChromeTrace for
     * a trace-viewer file.
     */
    const std::vector<trace::TraceEvent> &traceEvents() const
    {
        return trace_events_;
    }

    /**
     * Merged metrics registry across the Master and the current
     * worker and client pools — the bag MetricsExporter renders.
     */
    Metrics collectMetrics() const;

    /** Current worker-pool size (drained victims already retired). */
    size_t workerCount() const { return workers_.size(); }

  private:
    void rebuildClients();
    /**
     * Periodic scaling evaluation (no-op unless autoscale.enabled and
     * interval_s has elapsed): collect live reports, launch or drain.
     */
    void maybeAutoscale(const SessionResult &result);
    /** Remove drained scale-down victims from the pool. */
    bool retireDrainedWorkers();
    /** Fold one worker's stats into the retired accumulators. */
    void foldWorkerStats(const Worker &w);
    /** Stop worker `i` and start a stateless replacement. */
    void replaceWorker(size_t i);
    /**
     * Poll the Master's lease monitor; replace any expired worker.
     * Returns true when at least one worker was replaced.
     */
    bool checkLeases();
    SessionResult runSynchronous(TensorSink sink,
                                 uint64_t fail_after_splits);
    SessionResult runParallel(TensorSink sink,
                              uint64_t fail_after_splits);
    /** Fold totals + fault accounting into a run's result. */
    SessionResult finishResult(SessionResult result);
    /** Drain every client once; returns tensors delivered. */
    uint64_t drainClients(SessionResult &result, TensorSink &sink);

    const warehouse::Warehouse &warehouse_;
    SessionOptions options_;
    std::unique_ptr<Master> master_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::unique_ptr<Client>> clients_;
    DeliveryLedger ledger_; ///< session-wide exactly-once dedup
    uint64_t failures_ = 0;
    bool running_parallel_ = false;
    std::atomic<bool> halt_requested_{false};
    std::vector<trace::TraceEvent> trace_events_; ///< last run's trace

    // Live auto-scaling state.
    std::unique_ptr<AutoScaler> scaler_;
    std::vector<ScalingEvent> scaling_log_;
    double last_eval_ = 0.0;      ///< wall clock of last evaluation
    uint64_t last_delivered_ = 0; ///< demand-rate window anchor
    double last_supplied_ = 0.0;  ///< supply-rate window anchor
    uint64_t workers_launched_ = 0;
    uint64_t workers_drained_ = 0;
    // Stats of retired (scaled-down) workers, folded at retirement so
    // finishResult still accounts for every byte they processed.
    dwrf::ReadStats retired_read_stats_;
    transforms::TransformStats retired_transform_stats_;
};

} // namespace dsi::dpp

#endif // DSI_DPP_SESSION_H
