#include "sim_session.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dsi::dpp {

namespace {

/** Trainer demand (samples/s) at time t under the step profile. */
double
demandAt(const std::vector<DemandStep> &steps, SimTime t,
         double per_trainer_qps)
{
    uint32_t trainers = 0;
    for (const auto &s : steps) {
        if (s.at <= t)
            trainers = s.trainer_nodes;
        else
            break;
    }
    return trainers * per_trainer_qps;
}

uint32_t
peakTrainers(const std::vector<DemandStep> &steps)
{
    uint32_t peak = 0;
    for (const auto &s : steps)
        peak = std::max(peak, s.trainer_nodes);
    return peak;
}

double
meanTrainers(const std::vector<DemandStep> &steps, SimTime duration)
{
    if (steps.empty())
        return 0;
    double area = 0;
    for (size_t i = 0; i < steps.size(); ++i) {
        SimTime end = i + 1 < steps.size()
            ? std::min(steps[i + 1].at, duration)
            : duration;
        if (end > steps[i].at)
            area += steps[i].trainer_nodes * (end - steps[i].at);
    }
    return area / duration;
}

} // namespace

SimSessionResult
simulateDeployment(const SimSessionConfig &config)
{
    dsi_assert(!config.demand.empty() && config.demand.front().at == 0,
               "demand profile must start at t=0");
    dsi_assert(config.tick_s > 0 && config.duration_s > 0,
               "bad sim bounds");

    Rng rng(config.seed);
    sim::EventQueue queue;
    auto sat = saturateWorker(config.rm, config.node);
    double per_worker_qps = sat.qps;
    double per_trainer_qps = config.rm.trainerSamplesPerSec();

    // Mutable deployment state, advanced by tick events.
    uint32_t workers = config.initial_workers;
    uint32_t launching = 0;
    double buffer = 0;
    double produced_window = 0, consumed_window = 0;

    SimSessionResult result;
    double stall_time = 0;
    double worker_area = 0;
    double util_area = 0;

    if (config.policy != ScalingPolicy::AutoScale) {
        double target_trainers =
            config.policy == ScalingPolicy::StaticExact
                ? peakTrainers(config.demand)
                : meanTrainers(config.demand, config.duration_s);
        workers = static_cast<uint32_t>(std::ceil(
            target_trainers * per_trainer_qps /
            (per_worker_qps * config.scaler.target_util)));
        workers = std::max(workers, 1u);
    }

    AutoScaler scaler(config.scaler);
    SimTime next_scale = config.autoscale_period_s;
    SimTime next_sample = 0;
    SimTime sample_every = config.duration_s / 120.0;

    // Per-tick fluid-flow update.
    for (SimTime t = 0; t < config.duration_s; t += config.tick_s) {
        double dt = config.tick_s;
        double demand =
            demandAt(config.demand, t, per_trainer_qps);
        double supply = workers * per_worker_qps;

        // Random worker failures (Poisson over the pool).
        if (config.worker_mtbf_s > 0 && workers > 0) {
            double p_fail = 1.0 - std::exp(-dt * workers /
                                           config.worker_mtbf_s);
            if (rng.nextBool(p_fail)) {
                --workers;
                ++result.failures;
                ++launching; // health monitor restarts it
                SimTime delay = config.worker_restart_delay_s;
                queue.schedule(t + delay, [&workers, &launching] {
                    ++workers;
                    --launching;
                });
            }
        }
        queue.runUntil(t); // mature pending launches/restarts

        // Flow: production fills the buffer, trainers drain it.
        double buffer_cap =
            workers * config.buffer_samples_per_worker;
        double produced = supply * dt;
        double wanted = demand * dt;
        double available = buffer + produced;
        double served = std::min(wanted, available);
        buffer = std::min(buffer_cap, available - served);
        bool stalled = demand > 0 && served + 1e-9 < wanted;
        if (stalled)
            stall_time += dt * (1.0 - served / wanted);
        produced_window += produced;
        consumed_window += served;

        worker_area += workers * dt;
        util_area += (supply > 0 ? served / (supply * dt) * dt : 0);
        result.peak_workers =
            std::max(result.peak_workers, workers);

        // Controller evaluation.
        if (config.policy == ScalingPolicy::AutoScale &&
            t >= next_scale) {
            std::vector<WorkerReport> reports(workers);
            for (auto &r : reports) {
                r.cpu_util = supply > 0 ? served / supply : 0;
                r.buffered_tensors = static_cast<uint64_t>(
                    buffer / std::max(1u, workers) / 512);
            }
            double period = config.autoscale_period_s;
            auto decision = scaler.evaluate(
                reports, consumed_window / period,
                produced_window / period);
            produced_window = consumed_window = 0;
            // Account for capacity already in flight.
            int64_t delta = decision.delta -
                            static_cast<int64_t>(launching);
            if (delta > 0) {
                launching += static_cast<uint32_t>(delta);
                result.launches += static_cast<uint64_t>(delta);
                queue.schedule(
                    t + config.worker_launch_delay_s,
                    [&workers, &launching, delta] {
                        workers += static_cast<uint32_t>(delta);
                        launching -= static_cast<uint32_t>(delta);
                    });
            } else if (decision.delta < 0) {
                uint32_t drop = static_cast<uint32_t>(
                    std::min<int64_t>(-decision.delta, workers - 1));
                workers -= drop; // draining is immediate
                result.drains += drop;
            }
            next_scale = t + config.autoscale_period_s;
        }

        if (t >= next_sample) {
            result.timeline.push_back({t, workers, demand, supply,
                                       buffer, stalled});
            next_sample = t + sample_every;
        }
    }

    result.stall_fraction = stall_time / config.duration_s;
    result.avg_workers = worker_area / config.duration_s;
    result.worker_seconds = worker_area;
    result.avg_pool_utilization = util_area / config.duration_s;
    return result;
}

} // namespace dsi::dpp
