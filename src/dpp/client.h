/**
 * @file
 * DPP data plane: the Client (Section III-B1).
 *
 * One Client runs on each trainer node, exposing the hook the PyTorch
 * runtime calls to obtain preprocessed tensors. To keep connection
 * counts bounded, each Client talks to a capped subset of Workers
 * chosen by *partitioned round-robin routing* and rotates among them
 * per request.
 */

#ifndef DSI_DPP_CLIENT_H
#define DSI_DPP_CLIENT_H

#include <optional>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "dpp/ledger.h"
#include "dpp/worker.h"

namespace dsi::dpp {

/** Client routing configuration. */
struct ClientOptions
{
    /** Maximum Worker connections per Client. */
    uint32_t max_connections = 8;
};

/** The per-trainer tensor-fetch endpoint. */
class Client
{
  public:
    /**
     * Build client `index` of `total_clients`, partitioned over the
     * given Worker pool. `ledger` (optional, session-owned) enables
     * exactly-once suppression of replayed batches.
     */
    Client(ClientId index, uint32_t total_clients,
           std::vector<Worker *> workers, ClientOptions options = {},
           DeliveryLedger *ledger = nullptr);

    ClientId id() const { return id_; }

    /** Workers this client is connected to. */
    const std::vector<Worker *> &connections() const
    {
        return connections_;
    }

    /**
     * Fetch the next tensor (the PyTorch hook). Rotates round-robin
     * over connected Workers; returns nullopt when every connected
     * Worker is drained.
     */
    std::optional<TensorBatch> next();

    /**
     * Deadline-bounded fetch: poll connected Workers until a tensor
     * arrives, every Worker is drained, or the budget runs out —
     * whichever first. A trainer batch-fetch RPC with a timeout:
     * nullopt on expiry (client.deadline_expired counted) instead of
     * an unbounded wait on a stalled pipeline.
     */
    std::optional<TensorBatch> next(const Deadline &deadline);

    /** True when all connected workers are drained. */
    bool exhausted() const;

    const Metrics &metrics() const { return metrics_; }

  private:
    ClientId id_;
    std::vector<Worker *> connections_;
    size_t cursor_ = 0;
    DeliveryLedger *ledger_ = nullptr;
    Metrics metrics_;
};

/**
 * Compute the partitioned round-robin connection set: client `index`
 * of `total_clients` connects to at most `max_connections` workers,
 * spread so that (a) every worker has at least one client when
 * clients * cap >= workers and (b) load is balanced.
 */
std::vector<uint32_t> partitionedRoundRobin(uint32_t index,
                                            uint32_t total_clients,
                                            uint32_t total_workers,
                                            uint32_t max_connections);

} // namespace dsi::dpp

#endif // DSI_DPP_CLIENT_H
