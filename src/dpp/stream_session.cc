#include "stream_session.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "etl/entries.h"

namespace dsi::dpp {

StreamWorker::StreamWorker(scribe::LogDevice &device,
                           StreamSessionSpec spec)
    : device_(device), spec_(std::move(spec)),
      reader_(device, spec_.labeled_stream)
{
    dsi_assert(spec_.batch_size > 0, "batch size must be positive");
    auto graph = transforms::TransformGraph::deserialize(
        spec_.serialized_transforms);
    dsi_assert(graph.has_value(),
               "stream worker received malformed transform program");
    graph_ = std::make_unique<transforms::CompiledGraph>(*graph);
}

uint64_t
StreamWorker::pump(uint64_t max_records)
{
    std::unordered_set<FeatureId> keep(spec_.projection.begin(),
                                       spec_.projection.end());
    uint64_t consumed = 0;
    while (consumed < max_records) {
        auto records = reader_.poll(
            std::min<uint64_t>(max_records - consumed, 512));
        if (records.empty())
            break;
        for (const auto &rec : records) {
            ++consumed;
            if (rec.payload.empty()) {
                metrics_.inc("stream.malformed");
                continue;
            }
            auto row = etl::decodeFeatures(dwrf::ByteSpan(
                rec.payload.data() + 1, rec.payload.size() - 1));
            if (!row) {
                metrics_.inc("stream.malformed");
                continue;
            }
            row->label = rec.payload[0] ? 1.0f : 0.0f;
            // Column filter: the stream is row-oriented, so the
            // projection drops features post-decode.
            if (!keep.empty()) {
                std::erase_if(row->dense, [&](const auto &d) {
                    return !keep.count(d.id);
                });
                std::erase_if(row->sparse, [&](const auto &s) {
                    return !keep.count(s.id);
                });
            }
            last_sample_time_ = rec.timestamp;
            pending_.push_back(std::move(*row));
            metrics_.inc("stream.rows");
            if (pending_.size() >= spec_.batch_size)
                emitBatch();
        }
    }
    return consumed;
}

void
StreamWorker::emitBatch()
{
    if (pending_.empty())
        return;
    auto batch = dwrf::batchFromRows(pending_);
    pending_.clear();
    transform_stats_.merge(graph_->apply(batch));
    TensorBatch tensor;
    tensor.bytes = batch.payloadBytes();
    tensor.data = std::move(batch);
    metrics_.inc("stream.tensors");
    buffer_.push_back(std::move(tensor));
}

void
StreamWorker::flush()
{
    emitBatch();
}

std::optional<TensorBatch>
StreamWorker::popTensor()
{
    if (buffer_.empty())
        return std::nullopt;
    TensorBatch t = std::move(buffer_.front());
    buffer_.pop_front();
    return t;
}

void
StreamWorker::trimConsumed()
{
    device_.trim(spec_.labeled_stream, reader_.position());
}

} // namespace dsi::dpp
