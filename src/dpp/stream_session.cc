#include "stream_session.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "etl/entries.h"

namespace dsi::dpp {

StreamWorker::StreamWorker(scribe::LogDevice &device,
                           StreamSessionSpec spec)
    : device_(device), spec_(std::move(spec)),
      reader_(device, spec_.labeled_stream)
{
    dsi_assert(spec_.batch_size > 0, "batch size must be positive");
    auto graph = transforms::TransformGraph::deserialize(
        spec_.serialized_transforms);
    dsi_assert(graph.has_value(),
               "stream worker received malformed transform program");
    program_ = std::move(*graph);
    graph_ = std::make_unique<transforms::CompiledGraph>(program_);
    if (spec_.num_transform_threads > 0)
        pool_ = std::make_unique<ThreadPool>(
            spec_.num_transform_threads);
}

uint64_t
StreamWorker::pump(uint64_t max_records)
{
    std::unordered_set<FeatureId> keep(spec_.projection.begin(),
                                       spec_.projection.end());
    uint64_t consumed = 0;
    while (consumed < max_records) {
        auto records = reader_.poll(
            std::min<uint64_t>(max_records - consumed, 512));
        if (records.empty())
            break;
        for (const auto &rec : records) {
            ++consumed;
            if (rec.payload.empty()) {
                metrics_.inc("stream.malformed");
                continue;
            }
            auto row = etl::decodeFeatures(dwrf::ByteSpan(
                rec.payload.data() + 1, rec.payload.size() - 1));
            if (!row) {
                metrics_.inc("stream.malformed");
                continue;
            }
            row->label = rec.payload[0] ? 1.0f : 0.0f;
            // Column filter: the stream is row-oriented, so the
            // projection drops features post-decode.
            if (!keep.empty()) {
                std::erase_if(row->dense, [&](const auto &d) {
                    return !keep.count(d.id);
                });
                std::erase_if(row->sparse, [&](const auto &s) {
                    return !keep.count(s.id);
                });
            }
            last_sample_time_ = rec.timestamp;
            pending_.push_back(std::move(*row));
            metrics_.inc("stream.rows");
            if (pending_.size() >= spec_.batch_size)
                emitBatch();
        }
    }
    transformReady();
    return consumed;
}

void
StreamWorker::emitBatch()
{
    if (pending_.empty())
        return;
    auto batch = dwrf::batchFromRows(pending_);
    pending_.clear();
    if (pool_) {
        // Parallel mode: collect; transformReady() fans out.
        ready_.push_back(std::move(batch));
        return;
    }
    transform_stats_.merge(graph_->apply(batch));
    TensorBatch tensor;
    tensor.bytes = batch.payloadBytes();
    tensor.data = std::move(batch);
    metrics_.inc("stream.tensors");
    buffer_.push_back(std::move(tensor));
}

void
StreamWorker::transformReady()
{
    if (!pool_ || ready_.empty())
        return;
    // Fan the collected batches out; each task compiles its own
    // graph (compiled ops are stateful, so instances cannot be
    // shared across threads). Emission preserves arrival order.
    std::vector<TensorBatch> tensors(ready_.size());
    std::vector<transforms::TransformStats> stats(ready_.size());
    for (size_t i = 0; i < ready_.size(); ++i) {
        pool_->submit([this, i, &tensors, &stats] {
            transforms::CompiledGraph graph(program_);
            dwrf::RowBatch batch = std::move(ready_[i]);
            stats[i] = graph.apply(batch);
            tensors[i].bytes = batch.payloadBytes();
            tensors[i].data = std::move(batch);
        });
    }
    pool_->wait();
    ready_.clear();
    for (size_t i = 0; i < tensors.size(); ++i) {
        transform_stats_.merge(stats[i]);
        metrics_.inc("stream.tensors");
        buffer_.push_back(std::move(tensors[i]));
    }
}

void
StreamWorker::flush()
{
    emitBatch();
    transformReady();
}

std::optional<TensorBatch>
StreamWorker::popTensor()
{
    if (buffer_.empty())
        return std::nullopt;
    TensorBatch t = std::move(buffer_.front());
    buffer_.pop_front();
    return t;
}

void
StreamWorker::trimConsumed()
{
    device_.trim(spec_.labeled_stream, reader_.position());
}

} // namespace dsi::dpp
