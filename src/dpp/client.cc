#include "client.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace dsi::dpp {

std::vector<uint32_t>
partitionedRoundRobin(uint32_t index, uint32_t total_clients,
                      uint32_t total_workers, uint32_t max_connections)
{
    dsi_assert(index < total_clients, "client index out of range");
    std::vector<uint32_t> out;
    if (total_workers == 0)
        return out;
    uint32_t connections = std::min(max_connections, total_workers);
    // Client c takes the contiguous arc starting at c * connections on
    // the worker ring: consecutive ids are distinct (cap <= workers),
    // arcs tile the ring, and both per-client and per-worker
    // connection counts stay bounded.
    for (uint32_t k = 0; k < connections; ++k) {
        uint32_t w =
            (index * connections + k) % total_workers;
        out.push_back(w);
    }
    return out;
}

Client::Client(ClientId index, uint32_t total_clients,
               std::vector<Worker *> workers, ClientOptions options,
               DeliveryLedger *ledger)
    : id_(index), ledger_(ledger)
{
    auto picks = partitionedRoundRobin(
        index, total_clients, static_cast<uint32_t>(workers.size()),
        options.max_connections);
    for (uint32_t w : picks)
        connections_.push_back(workers[w]);
}

std::optional<TensorBatch>
Client::next()
{
    if (connections_.empty())
        return std::nullopt;
    // The delivery span's parent (the batch's transform span) is only
    // known once a batch is claimed, so it is emitted one-shot at the
    // end — the timer also covers the polling sweep that found it.
    trace::Timer timer;
    size_t tries = 0;
    while (tries < connections_.size()) {
        Worker *w = connections_[cursor_];
        auto tensor = w->popTensor();
        if (!tensor) {
            cursor_ = (cursor_ + 1) % connections_.size();
            ++tries;
            continue;
        }
        if (ledger_ &&
            !ledger_->claim(tensor->split_id, tensor->first_row)) {
            // Replay of a batch some client already delivered
            // (requeued split): suppress it, and keep polling this
            // worker — the pop made progress, so reset the cursor
            // sweep.
            metrics_.inc("client.duplicates_suppressed");
            trace::instant(trace::events::kDuplicateSuppressed,
                           tensor->trace, tensor->split_id,
                           tensor->first_row);
            tries = 0;
            continue;
        }
        cursor_ = (cursor_ + 1) % connections_.size();
        metrics_.inc("client.tensors");
        metrics_.inc("client.bytes",
                     static_cast<double>(tensor->bytes));
        timer.complete(trace::spans::kClientDeliver, tensor->trace,
                       tensor->split_id, tensor->first_row);
        return tensor;
    }
    metrics_.inc("client.empty_polls");
    return std::nullopt;
}

std::optional<TensorBatch>
Client::next(const Deadline &deadline)
{
    for (;;) {
        auto tensor = next();
        if (tensor)
            return tensor;
        if (exhausted())
            return std::nullopt;
        if (deadline.expired()) {
            metrics_.inc("client.deadline_expired");
            return std::nullopt;
        }
        // Workers are producing but nothing is buffered yet; yield
        // briefly instead of hammering their buffer locks.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

bool
Client::exhausted() const
{
    for (Worker *w : connections_) {
        if (!w->drained())
            return false;
    }
    return true;
}

} // namespace dsi::dpp
