/**
 * @file
 * Discrete-event simulation of a full DPP deployment.
 *
 * Models what the functional in-process session cannot: a fleet of
 * workers serving a multi-trainer job over hours, with worker launch
 * latency, random worker failures, a demand profile that changes as
 * trainers join/leave, and the auto-scaling controller evaluating
 * periodically. Produces the stall fraction, worker-seconds (the
 * power/cost proxy), and a timeline — used by the right-sizing
 * ablation (Sections III-B1 and VI-C: more workers do NOT speed up
 * training; too few stall the GPUs).
 */

#ifndef DSI_DPP_SIM_SESSION_H
#define DSI_DPP_SIM_SESSION_H

#include <vector>

#include "common/rng.h"
#include "dpp/autoscaler.h"
#include "dpp/worker_model.h"
#include "sim/event_queue.h"
#include "warehouse/model_zoo.h"

namespace dsi::dpp {

/** A step in the trainer-demand profile. */
struct DemandStep
{
    SimTime at = 0;
    uint32_t trainer_nodes = 0;
};

/** Scaling policy of the simulated deployment. */
enum class ScalingPolicy
{
    AutoScale,     ///< the DPP controller
    StaticExact,   ///< fixed pool sized for the *peak* demand
    StaticUnder,   ///< fixed pool sized for the *mean* demand
};

/** Configuration of one simulated deployment. */
struct SimSessionConfig
{
    warehouse::RmSpec rm = warehouse::rm1();
    sim::ComputeNodeSpec node = sim::computeNodeV1();

    std::vector<DemandStep> demand; ///< must start at t=0
    SimTime duration_s = 3600;
    SimTime tick_s = 1.0;

    ScalingPolicy policy = ScalingPolicy::AutoScale;
    AutoScalerConfig scaler;
    SimTime autoscale_period_s = 10;
    SimTime worker_launch_delay_s = 20; ///< container provisioning
    uint32_t initial_workers = 4;

    /** Per-worker mean time between failures; 0 disables failures. */
    SimTime worker_mtbf_s = 0;
    SimTime worker_restart_delay_s = 30;

    /** Buffer capacity in samples across the pool, per worker. */
    double buffer_samples_per_worker = 20000;

    uint64_t seed = 1;
};

/** One sampled point of the deployment timeline. */
struct TimelinePoint
{
    SimTime t = 0;
    uint32_t workers = 0;
    double demand_qps = 0;
    double supply_qps = 0;
    double buffered_samples = 0;
    bool stalled = false;
};

/** Aggregate outcome. */
struct SimSessionResult
{
    double stall_fraction = 0;  ///< time fraction with unmet demand
    double avg_workers = 0;
    uint32_t peak_workers = 0;
    double worker_seconds = 0;  ///< power/cost proxy
    double avg_pool_utilization = 0;
    uint64_t launches = 0;
    uint64_t failures = 0;
    uint64_t drains = 0;
    std::vector<TimelinePoint> timeline; ///< sampled every ~1% of run

    /** Energy proxy: worker-seconds x node watts. */
    double energyJ(double node_watts) const
    {
        return worker_seconds * node_watts;
    }
};

/** Run the deployment simulation. */
SimSessionResult simulateDeployment(const SimSessionConfig &config);

} // namespace dsi::dpp

#endif // DSI_DPP_SIM_SESSION_H
