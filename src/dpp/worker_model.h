/**
 * @file
 * Analytic DPP Worker saturation model (Tables IX & X, Figure 9).
 *
 * Given a model's per-sample costs (warehouse::RmSpec) and a compute
 * node SKU (sim::ComputeNodeSpec), compute the Worker's saturation
 * throughput as the minimum over its resource ceilings:
 *
 *  - CPU: thread pool (possibly memory-capacity limited to avoid
 *    OOM, the RM3 situation) x clock / cycles-per-sample,
 *  - ingress NIC: goodput / compressed storage bytes per sample,
 *  - egress NIC: goodput / tensor bytes per sample,
 *  - memory bandwidth: practical ceiling / bus bytes per sample.
 *
 * The per-sample costs are calibrated so that on C-v1 each RM
 * saturates at the paper's measured kQPS with the paper's bottleneck
 * (RM1: memBW+CPU, RM2: ingress NIC, RM3: memory capacity).
 */

#ifndef DSI_DPP_WORKER_MODEL_H
#define DSI_DPP_WORKER_MODEL_H

#include <string>

#include "sim/device.h"
#include "sim/tax.h"
#include "warehouse/model_zoo.h"

namespace dsi::dpp {

/** Saturation point of one Worker on one node SKU. */
struct WorkerSaturation
{
    double qps = 0;              ///< samples/second at saturation
    std::string bottleneck;      ///< name of the binding resource

    double threads = 0;          ///< usable worker threads
    double cpu_util = 0;         ///< of the usable thread pool
    double membw_util = 0;       ///< of the practical memBW ceiling
    double nic_in_util = 0;      ///< of ingress goodput
    double nic_out_util = 0;     ///< of egress goodput
    double mem_capacity_util = 0;///< of node DRAM

    /** Byte rates at saturation (GB/s), cf. Table IX. */
    double storage_rx_gbps = 0;
    double transform_rx_gbps = 0;
    double transform_tx_gbps = 0;

    /** CPU cycle split (of consumed cycles). */
    double extract_share = 0;
    double transform_share = 0;
};

/** Knobs for what-if studies (Section VII ablations). */
struct WorkerModelOptions
{
    /** Fraction of DRAM usable by worker threads. */
    double usable_memory_fraction = 0.90;
    /** Multiplier on transform cycles (e.g. GPU offload). */
    double transform_cycle_scale = 1.0;
    /** Multiplier on memBW bytes (e.g. TLS offload, flatmaps). */
    double membw_scale = 1.0;
    /** Multiplier on storage RX bytes (e.g. over-read changes). */
    double storage_rx_scale = 1.0;
};

/** Compute the saturation point. */
WorkerSaturation saturateWorker(const warehouse::RmSpec &rm,
                                const sim::ComputeNodeSpec &node,
                                const WorkerModelOptions &options = {});

/**
 * Workers (nodes) needed so aggregate tensor egress matches one
 * trainer node's demand (Table IX "# Nodes Req.").
 */
double workersPerTrainer(const warehouse::RmSpec &rm,
                         const WorkerSaturation &saturation);

} // namespace dsi::dpp

#endif // DSI_DPP_WORKER_MODEL_H
