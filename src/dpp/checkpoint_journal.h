/**
 * @file
 * Write-ahead checkpoint journal over Tectonic (Section II / IV-B:
 * checkpointing is one of the services the DPP control plane must
 * provide for jobs that run for days).
 *
 * Records are whole Tectonic files named `<base>.<seq>` with a
 * monotonically increasing sequence number and a self-validating
 * layout:
 *
 *     magic      varint  (kMagic — rejects foreign files)
 *     version    varint  (kFormatVersion — rejects future formats)
 *     seq        varint  (monotonic record sequence number)
 *     length     varint  (payload byte count)
 *     crc32      4 bytes (CRC32-C of the payload, little-endian)
 *     payload    length bytes
 *
 * Writes are write-then-publish: the record is staged under
 * `<base>.staging`, then published by atomically putting the final
 * `<base>.<seq>` name and removing the stage file. A crash between
 * stage and publish leaves only the stage file, which recovery never
 * reads — a half-written checkpoint can never shadow a valid older
 * one. The checkpoint.write.{crash,torn,corrupt} fault points simulate
 * the remaining failure modes (a death mid-publish on a non-atomic
 * filesystem): recover() walks the published records newest-first,
 * validates each fully (magic, version, sequence, length, CRC), and
 * returns the payload of the newest *valid* record, counting every
 * torn or corrupt tail it skipped.
 *
 * Thread safety: none. The journal is owned and serialized by its
 * Master (appends run under the Master's mutex); recovery runs before
 * the data plane starts.
 */

#ifndef DSI_DPP_CHECKPOINT_JOURNAL_H
#define DSI_DPP_CHECKPOINT_JOURNAL_H

#include <cstdint>
#include <optional>
#include <string>

#include "dwrf/encoding.h"
#include "storage/tectonic.h"

namespace dsi::dpp {

/** Journal tuning knobs. */
struct JournalOptions
{
    /**
     * Published records retained after an append; older sequence
     * numbers are removed. Keeping a few means a torn newest record
     * (crash mid-publish) still leaves valid fallbacks.
     */
    uint32_t keep_records = 4;
};

/** Outcome of a journal recovery scan. */
struct JournalRecovery
{
    bool found = false;           ///< a valid record was recovered
    dwrf::Buffer payload;         ///< newest valid record's payload
    uint64_t seq = 0;             ///< its sequence number
    uint64_t corrupt_skipped = 0; ///< invalid records walked past
};

/** Durable, sequence-numbered checkpoint record store (see file doc). */
class CheckpointJournal
{
  public:
    static constexpr uint64_t kMagic = 0x444a4e4c; ///< "DJNL"
    static constexpr uint64_t kFormatVersion = 1;

    CheckpointJournal(storage::TectonicCluster &cluster,
                      std::string base, JournalOptions options = {});

    /**
     * Stage, publish, and prune one record. Returns the record's
     * sequence number and byte size (for metrics). Armed
     * checkpoint.write.* fault points make the published bytes torn /
     * corrupt, or drop the publish entirely (simulated crash).
     */
    struct AppendResult
    {
        uint64_t seq = 0;
        uint64_t bytes = 0;
        bool published = true; ///< false: crash fault ate the publish
    };
    AppendResult append(dwrf::ByteSpan payload);

    /**
     * Scan published records newest-first and return the newest one
     * that validates end-to-end (`found == false` when no valid
     * record exists — cold start). Invalid records are skipped,
     * counted, and left in place (forensics), never deleted here.
     */
    JournalRecovery recover() const;

    /** Sequence number the next append will use. */
    uint64_t nextSeq() const { return next_seq_; }

    const std::string &base() const { return base_; }

  private:
    std::string recordName(uint64_t seq) const;
    /** Parse `<base>.<seq>` names; nullopt for foreign/stage files. */
    std::optional<uint64_t> parseSeq(const std::string &name) const;
    void pruneLocked(uint64_t newest_seq);

    storage::TectonicCluster &cluster_;
    std::string base_;
    JournalOptions options_;
    uint64_t next_seq_ = 1;
};

} // namespace dsi::dpp

#endif // DSI_DPP_CHECKPOINT_JOURNAL_H
