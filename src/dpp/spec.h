/**
 * @file
 * DPP session specification (Section III-B1).
 *
 * Mirrors the PyTorch DATASET a training job hands the DPP Master:
 * the table, the partitions to read (row filter), the feature
 * projection (column filter), the serialized transform graph, and
 * batching/read parameters.
 */

#ifndef DSI_DPP_SPEC_H
#define DSI_DPP_SPEC_H

#include <string>
#include <vector>

#include "common/types.h"
#include "dwrf/reader.h"
#include "transforms/graph.h"
#include "warehouse/schema.h"

namespace dsi::dpp {

/** What one training job asks DPP to do. */
struct SessionSpec
{
    std::string table;
    std::vector<PartitionId> partitions; ///< row filter
    std::vector<FeatureId> projection;   ///< column filter
    dwrf::Buffer serialized_transforms;  ///< TransformGraph bytes

    /**
     * Beta features injected at read time (Section IV-C): features
     * not yet logged to the table are dynamically joined per
     * exploratory job. Workers synthesize them per row with the
     * spec's statistics, deterministically in the row's identity.
     */
    std::vector<warehouse::FeatureSpec> injected;

    uint32_t batch_size = 512;       ///< rows per output tensor
    uint64_t rows_per_split = 8192;  ///< split granularity
    dwrf::ReadOptions read;          ///< coalescing, decryption, ...

    /** Attach a transform graph (serializing it as the Master would). */
    void
    setTransforms(const transforms::TransformGraph &graph)
    {
        serialized_transforms = graph.serialize();
    }
};

/** One self-contained unit of preprocessing work (Section III-B1). */
struct Split
{
    uint64_t id = 0;
    std::string file;           ///< Tectonic file holding the rows
    uint32_t first_stripe = 0;  ///< stripes [first, first + count)
    uint32_t stripe_count = 0;
    uint64_t rows = 0;

    /**
     * Relative stripe to resume extraction from (0 on a fresh grant).
     * Stamped by the Master on a re-grant when stripes
     * [0, resume_stripe) of the split were already fully delivered to
     * trainers in a previous attempt — the worker skips them instead
     * of re-reading rows the ledger would only suppress again.
     */
    uint32_t resume_stripe = 0;
};

} // namespace dsi::dpp

#endif // DSI_DPP_SPEC_H
