#include "autoscaler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dsi::dpp {

ScalingDecision
AutoScaler::evaluate(const std::vector<WorkerReport> &reports,
                     double demand_rate, double supply_rate)
{
    ScalingDecision d;
    uint32_t current = static_cast<uint32_t>(reports.size());
    if (current == 0) {
        d.target_workers = config_.min_workers;
        d.delta = static_cast<int64_t>(d.target_workers);
        d.starving = true;
        return d;
    }

    uint64_t starving = 0;
    for (const auto &r : reports)
        starving += r.buffered_tensors <= config_.starving_buffer;
    double starving_frac =
        static_cast<double>(starving) / static_cast<double>(current);
    d.starving = starving_frac > 0.5;

    // Rate-based right-sizing: workers needed so the pool supplies the
    // demand at the target utilization of the binding resource.
    double per_worker =
        supply_rate > 0 ? supply_rate / current : 0.0;
    double target = current;
    if (per_worker > 0 && demand_rate > 0) {
        target = demand_rate / (per_worker * config_.target_util);
    }
    // Starvation overrides rate smoothing: grow aggressively (capped).
    if (d.starving) {
        target = std::max(
            target, current * (1.0 + std::min(config_.max_step_up,
                                              starving_frac)));
    }

    // Hysteresis on the continuous target: ignore small deviations
    // unless starving (so ceil() cannot manufacture churn).
    double rel_change = std::abs(target - current) / current;
    if (!d.starving && rel_change < config_.deadband)
        target = current;

    uint32_t proposed = static_cast<uint32_t>(std::ceil(target));
    proposed = std::clamp(proposed, config_.min_workers,
                          config_.max_workers);
    // Cap growth per step.
    uint32_t max_now = static_cast<uint32_t>(
        std::ceil(current * (1.0 + config_.max_step_up)));
    proposed = std::min(proposed, std::max(max_now, current + 1));

    d.target_workers = proposed;
    d.delta = static_cast<int64_t>(proposed) -
              static_cast<int64_t>(current);
    return d;
}

} // namespace dsi::dpp
