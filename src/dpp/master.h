/**
 * @file
 * DPP control plane: the Master (Section III-B1).
 *
 * The Master turns the session's petabyte-scale workload into
 * independent, self-contained *splits* (successive row ranges of the
 * dataset), serves them to Workers on request, tracks completion,
 * checkpoints reader state for fault tolerance, restarts failed
 * Workers' splits (Workers are stateless, so no Worker checkpoint is
 * needed), and is itself replicable via checkpoint/restore.
 *
 * Thread safety: the split-distribution API (registerWorker,
 * requestSplit, completeSplit, failWorker, progress, checkpoint,
 * restore) is mutex-guarded so many parallel Workers — and the many
 * extract threads inside each one — can call in concurrently, as the
 * RPC server of a production Master would.
 */

#ifndef DSI_DPP_MASTER_H
#define DSI_DPP_MASTER_H

#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "dpp/spec.h"
#include "warehouse/table.h"

namespace dsi::dpp {

/** Serializable Master state for fault tolerance / replication. */
struct MasterCheckpoint
{
    uint64_t next_split_cursor = 0;   ///< first unenumerated split
    std::vector<uint64_t> completed;  ///< completed split ids

    dwrf::Buffer serialize() const;
    static std::optional<MasterCheckpoint> deserialize(
        dwrf::ByteSpan data);
};

/** Progress summary exposed to the trainer master / auto-scaler. */
struct SessionProgress
{
    uint64_t total_splits = 0;
    uint64_t completed_splits = 0;
    uint64_t inflight_splits = 0;
    uint64_t pending_splits = 0;
    bool done() const { return completed_splits == total_splits; }
};

/** The DPP control-plane master for one session. */
class Master
{
  public:
    Master(const warehouse::Warehouse &warehouse, SessionSpec spec);

    const SessionSpec &spec() const { return spec_; }

    /** Total splits the session will process. */
    uint64_t totalSplits() const { return splits_.size(); }

    /** Serialized transform graph Workers pull on startup. */
    const dwrf::Buffer &transformProgram() const
    {
        return spec_.serialized_transforms;
    }

    /** Register a Worker (returns its id). */
    WorkerId registerWorker();

    /**
     * A Worker asks for work. Returns nullopt when no pending splits
     * remain (the Worker should idle/drain).
     */
    std::optional<Split> requestSplit(WorkerId worker);

    /** A Worker reports a split finished. */
    void completeSplit(WorkerId worker, uint64_t split_id);

    /**
     * The health monitor declares a Worker dead: its in-flight splits
     * return to the pending queue for other Workers.
     */
    void failWorker(WorkerId worker);

    SessionProgress progress() const;

    /** Checkpoint of reader state (Section III-B1). */
    MasterCheckpoint checkpoint() const;

    /**
     * Persist the checkpoint durably as a Tectonic file (production
     * masters checkpoint periodically so a replica can take over).
     */
    void checkpointToStorage(storage::TectonicCluster &cluster,
                             const std::string &name) const;

    /** Restore from a checkpoint file; dies if missing/corrupt. */
    void restoreFromStorage(const storage::TectonicCluster &cluster,
                            const std::string &name);

    /**
     * Restore from a checkpoint: completed splits stay completed,
     * everything else (including previously in-flight) is re-pending.
     * Models both Master fail-over and replicated-Master catch-up.
     */
    void restore(const MasterCheckpoint &checkpoint);

    const Metrics &metrics() const { return metrics_; }

  private:
    void enumerateSplits(const warehouse::Warehouse &warehouse);

    mutable std::mutex mutex_; ///< guards split-distribution state
    SessionSpec spec_;
    std::vector<Split> splits_;
    std::deque<uint64_t> pending_;              ///< split ids
    std::map<uint64_t, WorkerId> inflight_;     ///< split -> worker
    std::set<uint64_t> completed_;
    WorkerId next_worker_ = 0;
    std::set<WorkerId> live_workers_;
    Metrics metrics_;
};

} // namespace dsi::dpp

#endif // DSI_DPP_MASTER_H
