/**
 * @file
 * DPP control plane: the Master (Section III-B1).
 *
 * The Master turns the session's petabyte-scale workload into
 * independent, self-contained *splits* (successive row ranges of the
 * dataset), serves them to Workers on request, tracks completion,
 * checkpoints reader state for fault tolerance, restarts failed
 * Workers' splits (Workers are stateless, so no Worker checkpoint is
 * needed), and is itself replicable via checkpoint/restore.
 *
 * Thread safety: the split-distribution API (registerWorker,
 * acquireSplit, completeSplit, failWorker, progress, checkpoint,
 * restore) is mutex-guarded so many parallel Workers — and the many
 * extract threads inside each one — can call in concurrently, as the
 * RPC server of a production Master would.
 *
 * A Master is a single-tenant WorkSource (work_source.h): Workers
 * wired straight to a Master see every grant tagged tenant 0. Fleet
 * deployments put a sched::FleetScheduler in front of many Masters
 * instead.
 */

#ifndef DSI_DPP_MASTER_H
#define DSI_DPP_MASTER_H

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "dpp/checkpoint_journal.h"
#include "dpp/ledger.h"
#include "dpp/spec.h"
#include "dpp/work_source.h"
#include "warehouse/table.h"

namespace dsi::dpp {

/**
 * Serializable Master state for fault tolerance / replication.
 *
 * Versioned wire format: serialize() stamps kFormatVersion first and
 * deserialize() rejects any other version outright (a Master from the
 * future can read our checkpoints only by carrying the old decoder —
 * we never guess at unknown layouts). Beyond the v1 cursor +
 * completed set, v2 carries everything a cold replacement needs to
 * resume *without* redoing or double-charging work: failed splits,
 * per-split attempt counts, the delivered-stripe resume watermarks,
 * and the control-plane incarnation epoch.
 */
struct MasterCheckpoint
{
    /** Bumped when the wire format changes shape. */
    static constexpr uint64_t kFormatVersion = 2;

    /** Incarnation of the Master that wrote this (restore bumps it). */
    uint64_t epoch = 0;
    uint64_t next_split_cursor = 0;   ///< first unenumerated split
    std::vector<uint64_t> completed;  ///< completed split ids
    std::vector<uint64_t> failed;     ///< attempts-exhausted split ids

    /** (split id, failed attempts so far) for non-zero counts. */
    std::vector<std::pair<uint64_t, uint32_t>> attempts;

    /**
     * (split id, contiguous delivered-stripe prefix) for unfinished
     * splits: a re-granted split resumes extraction past stripes the
     * trainers already received (Split::resume_stripe).
     */
    std::vector<std::pair<uint64_t, uint32_t>> delivered_stripes;

    dwrf::Buffer serialize() const;
    static std::optional<MasterCheckpoint> deserialize(
        dwrf::ByteSpan data);
};

/**
 * When the Master writes durable checkpoints to its journal. All
 * triggers compose; each trigger is off at its zero value.
 */
struct CheckpointPolicy
{
    /** Periodic: maybeCheckpoint() writes if this much clock passed. */
    double interval_s = 0.0;

    /**
     * Event-driven: write whenever a split reaches a terminal state
     * (completed, or failed for good). On by default — terminal
     * transitions are exactly the state a replacement must not lose.
     */
    bool on_terminal = true;

    /**
     * Write every N delivered batches (noteDelivery). 1 makes the
     * ledger durable per delivery — the strict exactly-once-across-
     * crash setting; 0 disables the trigger.
     */
    uint64_t every_n_deliveries = 0;

    /** Journal retention (CheckpointJournal keep_records). */
    uint32_t keep_records = 4;
};

/**
 * Durable control-plane checkpointing + crash recovery (off by
 * default), consumed by InProcessSession and sched::FleetScheduler.
 * With a cluster attached, each Master journals versioned checkpoints
 * (its own state + its delivery ledger) per the policy; with
 * `recover` set, a freshly built control plane restores Master and
 * ledger from the newest valid journal record before any worker
 * starts — in-flight splits of the dead incarnation requeue (resuming
 * past delivered stripes) and already-delivered batches are
 * suppressed.
 */
struct RecoveryOptions
{
    /** Cluster the journal lives on (null = checkpointing off). Must
     * outlive the control plane. */
    storage::TectonicCluster *cluster = nullptr;

    /** Journal base name (records are `<base>.<seq>` files; a fleet
     * appends a per-tenant suffix). */
    std::string journal_base = "dpp/journal";

    CheckpointPolicy policy;

    /** Restore Master + ledger from the journal at construction. */
    bool recover = false;
};

/** Progress summary exposed to the trainer master / auto-scaler. */
struct SessionProgress
{
    uint64_t total_splits = 0;
    uint64_t completed_splits = 0;
    uint64_t inflight_splits = 0;
    uint64_t pending_splits = 0;
    uint64_t failed_splits = 0; ///< gave up after repeated attempts

    /** Every split reached a terminal state (completed or failed). */
    bool done() const
    {
        return completed_splits + failed_splits == total_splits;
    }
};

/**
 * Overload-protection knobs. Defaults keep every behaviour off so
 * existing callers see the old unconditional-grant semantics.
 */
struct AdmissionOptions
{
    /**
     * Splits one worker may hold concurrently; 0 = unlimited. A
     * worker at the cap is shed (Overloaded) instead of granted.
     */
    uint32_t max_inflight_per_worker = 0;

    /** Shed requests from workers reporting a full output buffer. */
    bool shed_on_full_buffer = true;

    /**
     * Per-split completion budget in seconds; 0 disables deadlines.
     * expireDeadlines() requeues splits that blow the budget, and the
     * grant carries the Deadline so the worker bounds its own reads.
     */
    double split_deadline_s = 0.0;
};

/** The DPP control-plane master for one session. */
class Master : public WorkSource
{
  public:
    Master(const warehouse::Warehouse &warehouse, SessionSpec spec);

    const SessionSpec &spec() const { return spec_; }

    /** Total splits the session will process. */
    uint64_t totalSplits() const { return splits_.size(); }

    /** Serialized transform graph Workers pull on startup. */
    const dwrf::Buffer &transformProgram() const
    {
        return spec_.serialized_transforms;
    }

    /** Register a Worker (returns its id). */
    WorkerId registerWorker() override;

    /**
     * The admission-controlled request path — the ONLY way to get a
     * split. (The old no-load requestSplit() wrapper is gone: it
     * reported an empty WorkerLoad, so full-buffer shedding silently
     * never applied to its callers and overload undercounted.)
     * Zombies are Rejected; an empty queue is NoWork; a caller over
     * the in-flight cap or reporting a full buffer is shed with
     * Overloaded (the split stays queued for a less-loaded worker —
     * Section VI-C overload protection); otherwise the split is
     * Granted with the session's per-split deadline attached.
     *
     * When tracing is on, the grant's lineage-root span parents on
     * the caller's ambient trace::currentParent() — kNoSpan for a
     * plain session, the tenant's fleet.tenant span under a fleet.
     */
    SplitGrant acquireSplit(WorkerId worker,
                            const WorkerLoad &load) override;

    /**
     * A Worker voluntarily returns an unfinished split (its deadline
     * expired mid-read, or it is draining for scale-down). The split
     * is requeued with no attempt penalty — nothing is wrong with the
     * data, only with this worker's timing.
     */
    void releaseSplit(WorkerId worker, uint64_t split_id);

    /**
     * Requeue in-flight splits whose completion deadline has passed
     * (the holding worker may be stuck in a storage stall; its late
     * completion will be dropped as stale and its duplicate rows
     * deduplicated by the client ledger). Returns how many expired.
     * No-op unless AdmissionOptions::split_deadline_s > 0.
     */
    uint64_t expireDeadlines();

    /** Configure overload protection (default: everything off). */
    void setAdmission(AdmissionOptions admission);

    /**
     * A Worker reports a split finished. Stale reports — from a
     * zombie whose lease expired, or for a split already requeued to
     * someone else — are counted and ignored, never fatal.
     */
    void completeSplit(WorkerId worker, uint64_t split_id);

    /**
     * A Worker reports a split it could not process (unreadable data
     * after reader-level retries). The split is requeued for another
     * attempt until the per-split attempt cap is hit, then marked
     * failed so the session can still terminate.
     */
    void failSplit(WorkerId worker, uint64_t split_id);

    // WorkSource overrides: a Master is a single-tenant source, so
    // the tenant id is ignored (a fleet routes per tenant instead).
    void completeSplit(WorkerId worker, TenantId,
                       uint64_t split_id) override
    {
        completeSplit(worker, split_id);
    }
    void failSplit(WorkerId worker, TenantId,
                   uint64_t split_id) override
    {
        failSplit(worker, split_id);
    }
    void releaseSplit(WorkerId worker, TenantId,
                      uint64_t split_id) override
    {
        releaseSplit(worker, split_id);
    }
    const SessionSpec &tenantSpec(TenantId) const override
    {
        return spec_;
    }
    const dwrf::Buffer &tenantProgram(TenantId) const override
    {
        return transformProgram();
    }

    /**
     * The health monitor declares a Worker dead: its in-flight splits
     * return to the pending queue for other Workers.
     */
    void failWorker(WorkerId worker);

    // --- lease-based failure detection ---

    /**
     * Enable heartbeat leases: a worker holding in-flight splits that
     * has not heartbeated within `seconds` is declared dead by the
     * next expireLeases() call. 0 disables (manual failWorker only).
     */
    void setLeaseTimeout(double seconds);

    /** Override the clock (tests inject a fake time source). */
    void setClock(std::function<double()> clock);

    /** Liveness signal from a worker's data-plane activity. */
    void heartbeat(WorkerId worker) override;

    /**
     * Expire leases of silent workers that hold in-flight splits,
     * requeueing their work. Returns the expired workers so the
     * session can replace them. Idle workers (nothing in flight) are
     * never expired — there is no work to recover from them.
     */
    std::vector<WorkerId> expireLeases();

    /** Total attempts a split gets before it is marked failed. */
    void setMaxSplitAttempts(uint32_t attempts);

    SessionProgress progress() const;

    // --- durable control-plane checkpointing ---

    /**
     * Attach a write-ahead checkpoint journal at `base` on `cluster`
     * and start writing per `policy`. The cluster must outlive the
     * Master. Idempotent re-attachment replaces the policy; the
     * journal resumes its sequence numbers past surviving records.
     */
    void enableJournal(storage::TectonicCluster &cluster,
                       std::string base, CheckpointPolicy policy = {});

    /**
     * Attach the session's delivery ledger: its snapshot rides inside
     * every journal record, and recoverFromJournal() restores it, so
     * exactly-once delivery survives control-plane death. Null
     * detaches. The ledger must outlive the Master.
     */
    void setLedger(DeliveryLedger *ledger);

    /**
     * Whole-Master recovery: scan the journal for the newest valid
     * record, restore Master state (and the attached ledger) from it,
     * and requeue previously in-flight splits without double-charging
     * attempts. False = cold start (no valid record, or its payload
     * did not validate) with state untouched. Emits a master.recover
     * span; torn/corrupt records skipped by the scan are counted as
     * master.checkpoint.corrupt_skipped.
     */
    bool recoverFromJournal();

    /**
     * A batch reached a trainer (called by the session / fleet drain
     * after the ledger claim). Drives the every_n_deliveries trigger.
     */
    void noteDelivery();

    /**
     * All batches of relative stripe `stripe` of `split_id` reached
     * trainers. Advances the contiguous delivered-stripe watermark
     * that re-grants resume from (Split::resume_stripe).
     */
    void noteStripeDelivered(uint64_t split_id, uint32_t stripe);

    /** Periodic tick: write a checkpoint if the interval elapsed. */
    void maybeCheckpoint();

    /** Force one durable checkpoint now (no-op without a journal). */
    void checkpointNow();

    /** Control-plane incarnation (0 until a restore bumps it). */
    uint64_t epoch() const;

    /** Checkpoint of reader state (Section III-B1). */
    MasterCheckpoint checkpoint() const;

    /**
     * Persist the checkpoint durably as a Tectonic file (production
     * masters checkpoint periodically so a replica can take over).
     */
    void checkpointToStorage(storage::TectonicCluster &cluster,
                             const std::string &name) const;

    /**
     * Restore from a checkpoint file. False (with
     * master.checkpoint_restore_failed counted) when the file is
     * missing, unreadable, or corrupt — the caller cold-starts from
     * the full split enumeration instead of aborting.
     */
    bool restoreFromStorage(const storage::TectonicCluster &cluster,
                            const std::string &name);

    /**
     * Restore from a checkpoint: completed splits stay completed,
     * everything else (including previously in-flight) is re-pending.
     * Models both Master fail-over and replicated-Master catch-up.
     * False (state unchanged) if the checkpoint references splits
     * this session does not have.
     */
    bool restore(const MasterCheckpoint &checkpoint);

    const Metrics &metrics() const { return metrics_; }

  private:
    void enumerateSplits(const warehouse::Warehouse &warehouse);
    void failWorkerLocked(WorkerId worker);
    void touchLocked(WorkerId worker);
    /** Close the split's master.grant span, if one is open. */
    void endGrantSpanLocked(uint64_t split_id);
    MasterCheckpoint checkpointLocked() const;
    /** Append one journal record (master + ledger snapshot). */
    void writeCheckpointLocked();
    /** Drop resume-tracking state for a split gone terminal. */
    void clearWatermarkLocked(uint64_t split_id);

    mutable std::mutex mutex_; ///< guards split-distribution state
    SessionSpec spec_;
    std::vector<Split> splits_;
    std::deque<uint64_t> pending_;              ///< split ids
    std::map<uint64_t, WorkerId> inflight_;     ///< split -> worker
    std::set<uint64_t> completed_;
    std::set<uint64_t> failed_;                 ///< attempts exhausted
    std::map<uint64_t, uint32_t> attempts_;     ///< split -> failures
    std::map<uint64_t, double> deadline_at_;    ///< split -> clock_()
    std::map<uint64_t, trace::SpanId> grant_spans_; ///< open grants
    AdmissionOptions admission_;
    uint32_t max_split_attempts_ = 3;
    WorkerId next_worker_ = 0;
    std::set<WorkerId> live_workers_;
    std::map<WorkerId, double> last_heartbeat_;
    double lease_timeout_ = 0.0; ///< 0 = leases disabled
    std::function<double()> clock_;

    // Durable checkpointing (all guarded by mutex_; the journal is
    // not thread-safe and is serialized here). Lock order:
    // mutex_ -> {ledger, Tectonic} — both are leaves.
    std::unique_ptr<CheckpointJournal> journal_;
    CheckpointPolicy policy_;
    DeliveryLedger *ledger_ = nullptr;
    uint64_t epoch_ = 0; ///< incarnation; restore sets prior + 1
    double last_checkpoint_at_ = 0.0;
    uint64_t deliveries_since_checkpoint_ = 0;
    /** split -> contiguous delivered-stripe prefix (resume point). */
    std::map<uint64_t, uint32_t> resume_watermark_;
    /** Out-of-order stripe deliveries not yet folded into the prefix. */
    std::map<uint64_t, std::set<uint32_t>> stray_stripes_;

    Metrics metrics_;
};

} // namespace dsi::dpp

#endif // DSI_DPP_MASTER_H
