#include "session.h"

#include <thread>

#include "common/logging.h"

namespace dsi::dpp {

InProcessSession::InProcessSession(const warehouse::Warehouse &warehouse,
                                   SessionSpec spec,
                                   SessionOptions options)
    : warehouse_(warehouse), options_(options)
{
    dsi_assert(options_.workers >= 1, "session needs >= 1 worker");
    dsi_assert(options_.clients >= 1, "session needs >= 1 client");
    master_ = std::make_unique<Master>(warehouse_, std::move(spec));
    for (uint32_t w = 0; w < options_.workers; ++w) {
        workers_.push_back(std::make_unique<Worker>(
            *master_, warehouse_, options_.worker));
    }
    rebuildClients();
}

void
InProcessSession::rebuildClients()
{
    clients_.clear();
    std::vector<Worker *> pool;
    pool.reserve(workers_.size());
    for (auto &w : workers_)
        pool.push_back(w.get());
    for (uint32_t c = 0; c < options_.clients; ++c) {
        clients_.push_back(std::make_unique<Client>(
            c, options_.clients, pool, options_.client));
    }
}

void
InProcessSession::injectWorkerFailure(size_t i)
{
    dsi_assert(i < workers_.size(), "no worker at index %zu", i);
    // Stop the victim's pipeline threads first so none of them calls
    // into the Master after the health monitor declares it dead.
    workers_[i]->stop();
    // Health monitor notices; in-flight splits requeue. The dead
    // worker's buffered (unserved) tensors are lost with it.
    master_->failWorker(workers_[i]->id());
    ++failures_;
    // Stateless restart: a fresh worker replaces it (no checkpoint).
    workers_[i] = std::make_unique<Worker>(*master_, warehouse_,
                                           options_.worker);
    if (running_parallel_)
        workers_[i]->start();
    rebuildClients();
}

uint64_t
InProcessSession::drainClients(SessionResult &result, TensorSink &sink)
{
    uint64_t delivered = 0;
    for (auto &c : clients_) {
        for (;;) {
            auto tensor = c->next();
            if (!tensor)
                break;
            ++delivered;
            ++result.tensors_delivered;
            result.rows_delivered += tensor->data.rows;
            result.tensor_bytes += tensor->bytes;
            if (sink)
                sink(c->id(), *tensor);
        }
    }
    return delivered;
}

SessionResult
InProcessSession::run(TensorSink sink, uint64_t fail_after_splits)
{
    if (options_.worker.num_extract_threads > 0 ||
        options_.worker.num_transform_threads > 0) {
        return runParallel(std::move(sink), fail_after_splits);
    }
    return runSynchronous(std::move(sink), fail_after_splits);
}

SessionResult
InProcessSession::runSynchronous(TensorSink sink,
                                 uint64_t fail_after_splits)
{
    SessionResult result;
    bool failure_pending = fail_after_splits > 0;

    for (;;) {
        // Data plane: every worker makes one unit of progress.
        bool any_work = false;
        for (auto &w : workers_)
            any_work = w->pump() || any_work;

        // Fault injection, once, after enough splits completed.
        if (failure_pending &&
            master_->progress().completed_splits >=
                fail_after_splits) {
            injectWorkerFailure(0);
            failure_pending = false;
            any_work = true;
        }

        // Trainers: each client drains what is available.
        bool any_tensor = drainClients(result, sink) > 0;

        if (!any_work && !any_tensor) {
            bool all_drained = true;
            for (auto &w : workers_)
                all_drained = all_drained && w->drained();
            if (all_drained)
                break;
        }
    }

    result.worker_failures = failures_;
    auto totals = finishResult();
    result.read_stats = totals.read_stats;
    result.transform_stats = totals.transform_stats;
    return result;
}

SessionResult
InProcessSession::runParallel(TensorSink sink,
                              uint64_t fail_after_splits)
{
    SessionResult result;
    bool failure_pending = fail_after_splits > 0;

    running_parallel_ = true;
    for (auto &w : workers_)
        w->start();

    // The calling thread plays the trainer side: drain clients until
    // every worker's pipeline has quiesced and its buffer is empty.
    for (;;) {
        if (failure_pending &&
            master_->progress().completed_splits >=
                fail_after_splits) {
            injectWorkerFailure(0);
            failure_pending = false;
        }

        bool any_tensor = drainClients(result, sink) > 0;
        if (!any_tensor) {
            bool all_drained = true;
            for (auto &w : workers_)
                all_drained = all_drained && w->drained();
            if (all_drained)
                break;
            std::this_thread::yield();
        }
    }
    running_parallel_ = false;
    // Pipelines have quiesced naturally; stop() just joins threads.
    for (auto &w : workers_)
        w->stop();

    result.worker_failures = failures_;
    auto totals = finishResult();
    result.read_stats = totals.read_stats;
    result.transform_stats = totals.transform_stats;
    return result;
}

SessionResult
InProcessSession::finishResult()
{
    dsi_assert(master_->progress().done(),
               "session ended with incomplete splits");
    SessionResult totals;
    for (auto &w : workers_) {
        const auto &rs = w->readStats();
        totals.read_stats.bytes_read += rs.bytes_read;
        totals.read_stats.bytes_needed += rs.bytes_needed;
        totals.read_stats.bytes_decompressed += rs.bytes_decompressed;
        totals.read_stats.bytes_decrypted += rs.bytes_decrypted;
        totals.read_stats.ios += rs.ios;
        totals.read_stats.streams_decoded += rs.streams_decoded;
        totals.transform_stats.merge(w->transformStats());
    }
    return totals;
}

} // namespace dsi::dpp
