#include "session.h"

#include <thread>

#include "common/logging.h"

namespace dsi::dpp {

InProcessSession::InProcessSession(const warehouse::Warehouse &warehouse,
                                   SessionSpec spec,
                                   SessionOptions options)
    : warehouse_(warehouse), options_(options)
{
    dsi_assert(options_.workers >= 1, "session needs >= 1 worker");
    dsi_assert(options_.clients >= 1, "session needs >= 1 client");
    master_ = std::make_unique<Master>(warehouse_, std::move(spec));
    master_->setMaxSplitAttempts(options_.max_split_attempts);
    if (options_.lease_timeout > 0)
        master_->setLeaseTimeout(options_.lease_timeout);
    for (uint32_t w = 0; w < options_.workers; ++w) {
        workers_.push_back(std::make_unique<Worker>(
            *master_, warehouse_, options_.worker));
    }
    rebuildClients();
}

void
InProcessSession::rebuildClients()
{
    clients_.clear();
    std::vector<Worker *> pool;
    pool.reserve(workers_.size());
    for (auto &w : workers_)
        pool.push_back(w.get());
    for (uint32_t c = 0; c < options_.clients; ++c) {
        clients_.push_back(std::make_unique<Client>(
            c, options_.clients, pool, options_.client, &ledger_));
    }
}

void
InProcessSession::replaceWorker(size_t i)
{
    dsi_assert(i < workers_.size(), "no worker at index %zu", i);
    // Stop the victim's pipeline threads first so none of them calls
    // into the Master after the health monitor declares it dead.
    // (Idempotent — a crashed worker's threads already quiesced.)
    workers_[i]->stop();
    ++failures_;
    // Stateless restart: a fresh worker replaces it (no checkpoint).
    workers_[i] = std::make_unique<Worker>(*master_, warehouse_,
                                           options_.worker);
    if (running_parallel_)
        workers_[i]->start();
    rebuildClients();
}

void
InProcessSession::injectWorkerFailure(size_t i)
{
    dsi_assert(i < workers_.size(), "no worker at index %zu", i);
    workers_[i]->stop();
    // Health monitor notices; in-flight splits requeue. The dead
    // worker's buffered (unserved) tensors are lost with it.
    master_->failWorker(workers_[i]->id());
    replaceWorker(i);
}

bool
InProcessSession::checkLeases()
{
    if (options_.lease_timeout <= 0)
        return false;
    auto expired = master_->expireLeases();
    if (expired.empty())
        return false;
    // expireLeases already requeued the dead workers' splits; here we
    // just swap in replacements (matching pool slot by WorkerId).
    bool replaced = false;
    for (WorkerId dead : expired) {
        for (size_t i = 0; i < workers_.size(); ++i) {
            if (workers_[i]->id() == dead) {
                replaceWorker(i);
                replaced = true;
                break;
            }
        }
    }
    return replaced;
}

uint64_t
InProcessSession::drainClients(SessionResult &result, TensorSink &sink)
{
    uint64_t delivered = 0;
    for (auto &c : clients_) {
        for (;;) {
            auto tensor = c->next();
            if (!tensor)
                break;
            ++delivered;
            ++result.tensors_delivered;
            result.rows_delivered += tensor->data.rows;
            result.tensor_bytes += tensor->bytes;
            if (sink)
                sink(c->id(), *tensor);
        }
    }
    return delivered;
}

SessionResult
InProcessSession::run(TensorSink sink, uint64_t fail_after_splits)
{
    if (options_.worker.num_extract_threads > 0 ||
        options_.worker.num_transform_threads > 0) {
        return runParallel(std::move(sink), fail_after_splits);
    }
    return runSynchronous(std::move(sink), fail_after_splits);
}

SessionResult
InProcessSession::runSynchronous(TensorSink sink,
                                 uint64_t fail_after_splits)
{
    SessionResult result;
    bool failure_pending = fail_after_splits > 0;

    for (;;) {
        // Data plane: every worker makes one unit of progress.
        bool any_work = false;
        for (auto &w : workers_)
            any_work = w->pump() || any_work;

        // Fault injection, once, after enough splits completed.
        if (failure_pending &&
            master_->progress().completed_splits >=
                fail_after_splits) {
            injectWorkerFailure(0);
            failure_pending = false;
            any_work = true;
        }

        // Control plane: replace workers whose lease expired (e.g. a
        // crashed worker that stopped pumping and heartbeating).
        any_work = checkLeases() || any_work;

        // Trainers: each client drains what is available.
        bool any_tensor = drainClients(result, sink) > 0;

        if (!any_work && !any_tensor) {
            bool all_drained = true;
            for (auto &w : workers_)
                all_drained = all_drained && w->drained();
            if (all_drained)
                break;
        }
    }

    return finishResult(result);
}

SessionResult
InProcessSession::runParallel(TensorSink sink,
                              uint64_t fail_after_splits)
{
    SessionResult result;
    bool failure_pending = fail_after_splits > 0;

    running_parallel_ = true;
    for (auto &w : workers_)
        w->start();

    // The calling thread plays the trainer side: drain clients until
    // every worker's pipeline has quiesced and its buffer is empty.
    for (;;) {
        if (failure_pending &&
            master_->progress().completed_splits >=
                fail_after_splits) {
            injectWorkerFailure(0);
            failure_pending = false;
        }

        checkLeases();

        bool any_tensor = drainClients(result, sink) > 0;
        if (!any_tensor) {
            bool all_drained = true;
            for (auto &w : workers_)
                all_drained = all_drained && w->drained();
            if (all_drained)
                break;
            std::this_thread::yield();
        }
    }
    running_parallel_ = false;
    // Pipelines have quiesced naturally; stop() just joins threads.
    for (auto &w : workers_)
        w->stop();

    return finishResult(result);
}

SessionResult
InProcessSession::finishResult(SessionResult result)
{
    dsi_assert(master_->progress().done(),
               "session ended with incomplete splits");
    result.worker_failures = failures_;
    // Client metrics don't survive rebuildClients(); the ledger is
    // the authoritative session-wide suppression count.
    result.duplicates_suppressed = ledger_.duplicates();
    result.splits_failed = master_->progress().failed_splits;
    for (auto &w : workers_) {
        const auto &rs = w->readStats();
        result.read_stats.bytes_read += rs.bytes_read;
        result.read_stats.bytes_needed += rs.bytes_needed;
        result.read_stats.bytes_decompressed += rs.bytes_decompressed;
        result.read_stats.bytes_decrypted += rs.bytes_decrypted;
        result.read_stats.ios += rs.ios;
        result.read_stats.streams_decoded += rs.streams_decoded;
        result.read_stats.checksum_mismatches += rs.checksum_mismatches;
        result.read_stats.io_errors += rs.io_errors;
        result.read_stats.decode_errors += rs.decode_errors;
        result.read_stats.stripe_retries += rs.stripe_retries;
        result.transform_stats.merge(w->transformStats());
    }
    return result;
}

} // namespace dsi::dpp
