#include "session.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace dsi::dpp {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

InProcessSession::InProcessSession(const warehouse::Warehouse &warehouse,
                                   SessionSpec spec,
                                   SessionOptions options)
    : warehouse_(warehouse), options_(options)
{
    dsi_assert(options_.workers >= 1, "session needs >= 1 worker");
    dsi_assert(options_.clients >= 1, "session needs >= 1 client");
    master_ = std::make_unique<Master>(warehouse_, std::move(spec));
    master_->setMaxSplitAttempts(options_.max_split_attempts);
    master_->setAdmission(options_.admission);
    if (options_.lease_timeout > 0)
        master_->setLeaseTimeout(options_.lease_timeout);
    if (options_.recovery.cluster != nullptr) {
        // The ledger snapshot rides in every journal record, so
        // exactly-once delivery survives whole-control-plane death.
        master_->setLedger(&ledger_);
        master_->enableJournal(*options_.recovery.cluster,
                               options_.recovery.journal_base,
                               options_.recovery.policy);
        if (options_.recovery.recover)
            master_->recoverFromJournal();
    }
    if (options_.autoscale.enabled) {
        scaler_ =
            std::make_unique<AutoScaler>(options_.autoscale.scaler);
        last_eval_ = steadySeconds();
    }
    for (uint32_t w = 0; w < options_.workers; ++w) {
        workers_.push_back(std::make_unique<Worker>(
            *master_, warehouse_, options_.worker));
    }
    rebuildClients();
}

void
InProcessSession::rebuildClients()
{
    clients_.clear();
    std::vector<Worker *> pool;
    pool.reserve(workers_.size());
    for (auto &w : workers_)
        pool.push_back(w.get());
    for (uint32_t c = 0; c < options_.clients; ++c) {
        clients_.push_back(std::make_unique<Client>(
            c, options_.clients, pool, options_.client, &ledger_));
    }
}

void
InProcessSession::replaceWorker(size_t i)
{
    dsi_assert(i < workers_.size(), "no worker at index %zu", i);
    // Stop the victim's pipeline threads first so none of them calls
    // into the Master after the health monitor declares it dead.
    // (Idempotent — a crashed worker's threads already quiesced.)
    workers_[i]->stop();
    ++failures_;
    // Stateless restart: a fresh worker replaces it (no checkpoint).
    workers_[i] = std::make_unique<Worker>(*master_, warehouse_,
                                           options_.worker);
    if (running_parallel_)
        workers_[i]->start();
    rebuildClients();
}

void
InProcessSession::injectWorkerFailure(size_t i)
{
    dsi_assert(i < workers_.size(), "no worker at index %zu", i);
    workers_[i]->stop();
    // Health monitor notices; in-flight splits requeue. The dead
    // worker's buffered (unserved) tensors are lost with it.
    master_->failWorker(workers_[i]->id());
    replaceWorker(i);
}

bool
InProcessSession::checkLeases()
{
    if (options_.lease_timeout <= 0)
        return false;
    auto expired = master_->expireLeases();
    if (expired.empty())
        return false;
    // expireLeases already requeued the dead workers' splits; here we
    // just swap in replacements (matching pool slot by WorkerId).
    bool replaced = false;
    for (WorkerId dead : expired) {
        for (size_t i = 0; i < workers_.size(); ++i) {
            if (workers_[i]->id() == dead) {
                replaceWorker(i);
                replaced = true;
                break;
            }
        }
    }
    return replaced;
}

void
InProcessSession::maybeAutoscale(const SessionResult &result)
{
    if (!scaler_)
        return;
    double now = steadySeconds();
    double dt = now - last_eval_;
    if (dt < options_.autoscale.interval_s)
        return;
    last_eval_ = now;

    ScalingEvent ev;
    double supplied = 0.0;
    for (auto &w : workers_) {
        supplied += w->metrics().counter("worker.tensors");
        // Draining victims are leaving the pool; they are not part of
        // the capacity the controller reasons about.
        if (!w->draining() && !w->crashed())
            ev.reports.push_back(w->report());
    }
    ev.demand_rate =
        (static_cast<double>(result.tensors_delivered) -
         static_cast<double>(last_delivered_)) /
        dt;
    // Worker replacement resets counters; clamp the window delta.
    ev.supply_rate = std::max(0.0, (supplied - last_supplied_) / dt);
    last_delivered_ = result.tensors_delivered;
    last_supplied_ = supplied;
    ev.decision =
        scaler_->evaluate(ev.reports, ev.demand_rate, ev.supply_rate);

    if (ev.decision.delta > 0) {
        // Launch: stateless workers join the split pool immediately.
        for (int64_t i = 0; i < ev.decision.delta; ++i) {
            workers_.push_back(std::make_unique<Worker>(
                *master_, warehouse_, options_.worker));
            if (running_parallel_)
                workers_.back()->start();
            ++workers_launched_;
        }
        rebuildClients();
    } else if (ev.decision.delta < 0) {
        // Graceful drain: victims stop acquiring splits, finish and
        // deliver everything held, and are retired by
        // retireDrainedWorkers() once empty. Nothing is abandoned.
        int64_t to_drain = -ev.decision.delta;
        for (auto it = workers_.rbegin();
             it != workers_.rend() && to_drain > 0; ++it) {
            if ((*it)->draining() || (*it)->crashed())
                continue;
            (*it)->beginDrain();
            --to_drain;
        }
    }
    scaling_log_.push_back(std::move(ev));
}

bool
InProcessSession::retireDrainedWorkers()
{
    if (!scaler_)
        return false;
    bool removed = false;
    for (size_t i = 0; i < workers_.size();) {
        if (workers_[i]->draining() && workers_[i]->drained() &&
            workers_.size() > 1) {
            foldWorkerStats(*workers_[i]);
            workers_[i]->stop();
            workers_.erase(workers_.begin() +
                           static_cast<ptrdiff_t>(i));
            ++workers_drained_;
            removed = true;
        } else {
            ++i;
        }
    }
    if (removed)
        rebuildClients();
    return removed;
}

uint64_t
InProcessSession::drainClients(SessionResult &result, TensorSink &sink)
{
    uint64_t delivered = 0;
    for (auto &c : clients_) {
        for (;;) {
            auto tensor = c->next();
            if (!tensor)
                break;
            ++delivered;
            ++result.tensors_delivered;
            result.rows_delivered += tensor->data.rows;
            result.tensor_bytes += tensor->bytes;
            // Feed the Master's resume watermark and the
            // per-delivery checkpoint trigger. The claim is already
            // durable in the ledger snapshot of the *next* record.
            if (tensor->last_in_stripe)
                master_->noteStripeDelivered(tensor->split_id,
                                             tensor->stripe);
            master_->noteDelivery();
            if (sink)
                sink(c->id(), *tensor);
        }
    }
    return delivered;
}

SessionResult
InProcessSession::run(TensorSink sink, uint64_t fail_after_splits)
{
    bool tracing = options_.trace.enabled || trace::envEnabled();
    if (tracing) {
        // The log is process-wide; clearing at run start scopes this
        // run's snapshot to its own events (and drops any buffered
        // stragglers from a previous session's pool threads).
        trace::TraceLog::instance().clear();
        trace::TraceLog::instance().enable();
    }
    // The session owns the storage healer for the duration of the
    // run: scrub/repair proceed concurrently with training reads and
    // the thread is joined before run() returns.
    if (options_.self_heal.cluster)
        options_.self_heal.cluster->startHealer(
            options_.self_heal.heal);
    SessionResult result =
        (options_.worker.num_extract_threads > 0 ||
         options_.worker.num_transform_threads > 0)
            ? runParallel(std::move(sink), fail_after_splits)
            : runSynchronous(std::move(sink), fail_after_splits);
    if (options_.self_heal.cluster)
        options_.self_heal.cluster->stopHealer();
    if (tracing) {
        trace::TraceLog::instance().disable();
        trace_events_ = trace::TraceLog::instance().snapshot();
    }
    return result;
}

Metrics
InProcessSession::collectMetrics() const
{
    Metrics merged;
    merged.merge(master_->metrics());
    for (const auto &w : workers_)
        merged.merge(w->metrics());
    for (const auto &c : clients_)
        merged.merge(c->metrics());
    if (options_.self_heal.cluster)
        merged.merge(options_.self_heal.cluster->metrics());
    return merged;
}

SessionResult
InProcessSession::runSynchronous(TensorSink sink,
                                 uint64_t fail_after_splits)
{
    SessionResult result;
    bool failure_pending = fail_after_splits > 0;

    for (;;) {
        if (halt_requested_)
            break; // control plane died; leave the wreckage as-is
        // Data plane: every worker makes one unit of progress.
        bool any_work = false;
        for (auto &w : workers_)
            any_work = w->pump() || any_work;

        // Fault injection, once, after enough splits completed.
        if (failure_pending &&
            master_->progress().completed_splits >=
                fail_after_splits) {
            injectWorkerFailure(0);
            failure_pending = false;
            any_work = true;
        }

        // Control plane: replace workers whose lease expired (e.g. a
        // crashed worker that stopped pumping and heartbeating),
        // requeue splits that blew their deadline, and evaluate the
        // scaling policy.
        any_work = checkLeases() || any_work;
        uint64_t expired = master_->expireDeadlines();
        result.deadline_expirations += expired;
        any_work = any_work || expired > 0;
        maybeAutoscale(result);
        any_work = retireDrainedWorkers() || any_work;

        // Trainers: each client drains what is available.
        bool any_tensor = drainClients(result, sink) > 0;

        if (!any_work && !any_tensor) {
            bool all_drained = true;
            for (auto &w : workers_)
                all_drained = all_drained && w->drained();
            if (all_drained)
                break;
        }
    }

    return finishResult(result);
}

SessionResult
InProcessSession::runParallel(TensorSink sink,
                              uint64_t fail_after_splits)
{
    SessionResult result;
    bool failure_pending = fail_after_splits > 0;

    running_parallel_ = true;
    for (auto &w : workers_)
        w->start();

    // The calling thread plays the trainer side: drain clients until
    // every worker's pipeline has quiesced and its buffer is empty.
    for (;;) {
        if (halt_requested_) {
            // Control-plane death mid-run: abort the worker pipelines
            // (their buffered tensors die with them, like a real
            // fleet losing its processes) and bail without finishing.
            for (auto &w : workers_)
                w->stop();
            break;
        }
        if (failure_pending &&
            master_->progress().completed_splits >=
                fail_after_splits) {
            injectWorkerFailure(0);
            failure_pending = false;
        }

        checkLeases();
        result.deadline_expirations += master_->expireDeadlines();
        maybeAutoscale(result);
        retireDrainedWorkers();

        bool any_tensor = drainClients(result, sink) > 0;
        if (!any_tensor) {
            bool all_drained = true;
            for (auto &w : workers_)
                all_drained = all_drained && w->drained();
            if (all_drained)
                break;
            std::this_thread::yield();
        }
    }
    running_parallel_ = false;
    // Pipelines have quiesced naturally; stop() just joins threads.
    for (auto &w : workers_)
        w->stop();

    return finishResult(result);
}

void
InProcessSession::foldWorkerStats(const Worker &w)
{
    retired_read_stats_.merge(w.readStats());
    retired_transform_stats_.merge(w.transformStats());
}

SessionResult
InProcessSession::finishResult(SessionResult result)
{
    dsi_assert(halt_requested_ || master_->progress().done(),
               "session ended with incomplete splits");
    result.worker_failures = failures_;
    // Client metrics don't survive rebuildClients(); the ledger is
    // the authoritative session-wide suppression count.
    result.duplicates_suppressed = ledger_.duplicates();
    result.splits_failed = master_->progress().failed_splits;
    result.workers_launched = workers_launched_;
    result.workers_drained = workers_drained_;
    for (auto &w : workers_)
        foldWorkerStats(*w);
    result.read_stats = retired_read_stats_;
    result.transform_stats = retired_transform_stats_;
    return result;
}

} // namespace dsi::dpp
