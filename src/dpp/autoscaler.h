/**
 * @file
 * DPP auto-scaling controller (Section III-B1).
 *
 * The Master's controller collects per-Worker utilization and
 * buffered-tensor counts, and periodically computes how many Workers
 * to launch or drain. Goals: a non-zero buffer everywhere (trainer
 * demand met — no data stalls) at maximum utilization (no wasted
 * capacity). Right-sizing matters because extra workers do NOT make
 * training faster (throughput is trainer-driven); they only waste
 * power (Section VI-C).
 */

#ifndef DSI_DPP_AUTOSCALER_H
#define DSI_DPP_AUTOSCALER_H

#include <cstdint>
#include <vector>

namespace dsi::dpp {

/** One Worker's periodic report to the controller. */
struct WorkerReport
{
    double cpu_util = 0;
    double mem_util = 0;
    double net_util = 0;
    uint64_t buffered_tensors = 0;

    double maxUtil() const
    {
        double m = cpu_util > mem_util ? cpu_util : mem_util;
        return m > net_util ? m : net_util;
    }
};

/** Controller configuration. */
struct AutoScalerConfig
{
    uint32_t min_workers = 1;
    uint32_t max_workers = 4096;
    /** Desired utilization of each worker's binding resource. */
    double target_util = 0.85;
    /** A worker with <= this many buffered tensors is "starving". */
    uint64_t starving_buffer = 0;
    /** Relative change below this is ignored (hysteresis). */
    double deadband = 0.10;
    /** Cap on relative growth per evaluation (avoid thundering herd). */
    double max_step_up = 0.50;
};

/** The scaling decision for one evaluation period. */
struct ScalingDecision
{
    uint32_t target_workers = 0;
    int64_t delta = 0; ///< positive: launch, negative: drain
    bool starving = false;
};

/** Periodic scaling evaluator. */
class AutoScaler
{
  public:
    explicit AutoScaler(AutoScalerConfig config) : config_(config) {}

    /**
     * Evaluate one period. `reports` carries the live Workers' state;
     * `demand_rate` and `supply_rate` are tensors/s consumed by
     * trainers vs. produced by the current pool over the period.
     */
    ScalingDecision evaluate(const std::vector<WorkerReport> &reports,
                             double demand_rate, double supply_rate);

    const AutoScalerConfig &config() const { return config_; }

  private:
    AutoScalerConfig config_;
};

} // namespace dsi::dpp

#endif // DSI_DPP_AUTOSCALER_H
