#include "master.h"

#include <chrono>

#include "common/logging.h"
#include "dwrf/reader.h"

namespace dsi::dpp {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

dwrf::Buffer
MasterCheckpoint::serialize() const
{
    dwrf::Buffer out;
    dwrf::putVarint(out, kFormatVersion);
    dwrf::putVarint(out, epoch);
    dwrf::putVarint(out, next_split_cursor);
    dwrf::putVarint(out, completed.size());
    for (uint64_t id : completed)
        dwrf::putVarint(out, id);
    dwrf::putVarint(out, failed.size());
    for (uint64_t id : failed)
        dwrf::putVarint(out, id);
    dwrf::putVarint(out, attempts.size());
    for (const auto &[id, count] : attempts) {
        dwrf::putVarint(out, id);
        dwrf::putVarint(out, count);
    }
    dwrf::putVarint(out, delivered_stripes.size());
    for (const auto &[id, stripe] : delivered_stripes) {
        dwrf::putVarint(out, id);
        dwrf::putVarint(out, stripe);
    }
    return out;
}

namespace {

/** Read `count` varints guarded against fuzz-sized allocations. */
bool
getIdList(dwrf::ByteSpan data, size_t &pos,
          std::vector<uint64_t> &out)
{
    uint64_t n;
    // Every entry costs at least one byte, so a count beyond the
    // remaining bytes is garbage — reject before resize() turns a
    // flipped bit into a giant allocation.
    if (!dwrf::getVarint(data, pos, n) || n > data.size() - pos)
        return false;
    out.resize(n);
    for (auto &id : out) {
        if (!dwrf::getVarint(data, pos, id))
            return false;
    }
    return true;
}

bool
getPairList(dwrf::ByteSpan data, size_t &pos,
            std::vector<std::pair<uint64_t, uint32_t>> &out)
{
    uint64_t n;
    if (!dwrf::getVarint(data, pos, n) ||
        n > (data.size() - pos) / 2)
        return false;
    out.resize(n);
    for (auto &[id, value] : out) {
        uint64_t v;
        if (!dwrf::getVarint(data, pos, id) ||
            !dwrf::getVarint(data, pos, v) || v > UINT32_MAX)
            return false;
        value = static_cast<uint32_t>(v);
    }
    return true;
}

} // namespace

std::optional<MasterCheckpoint>
MasterCheckpoint::deserialize(dwrf::ByteSpan data)
{
    MasterCheckpoint cp;
    size_t pos = 0;
    uint64_t version;
    // An unknown version is rejected whole: guessing at a future
    // layout risks silently resurrecting wrong state, the one thing a
    // recovery path must never do.
    if (!dwrf::getVarint(data, pos, version) ||
        version != kFormatVersion ||
        !dwrf::getVarint(data, pos, cp.epoch) ||
        !dwrf::getVarint(data, pos, cp.next_split_cursor)) {
        return std::nullopt;
    }
    if (!getIdList(data, pos, cp.completed) ||
        !getIdList(data, pos, cp.failed) ||
        !getPairList(data, pos, cp.attempts) ||
        !getPairList(data, pos, cp.delivered_stripes)) {
        return std::nullopt;
    }
    if (pos != data.size())
        return std::nullopt;
    return cp;
}

Master::Master(const warehouse::Warehouse &warehouse, SessionSpec spec)
    : spec_(std::move(spec)), clock_(steadySeconds)
{
    enumerateSplits(warehouse);
    for (uint64_t i = 0; i < splits_.size(); ++i)
        pending_.push_back(i);
}

void
Master::enumerateSplits(const warehouse::Warehouse &warehouse)
{
    const warehouse::Table *table = warehouse.findTable(spec_.table);
    dsi_assert(table != nullptr, "session table '%s' not found",
               spec_.table.c_str());

    for (PartitionId pid : spec_.partitions) {
        const warehouse::Partition *partition =
            table->findPartition(pid);
        dsi_assert(partition != nullptr,
                   "partition %u missing from '%s'", pid,
                   spec_.table.c_str());
        for (const auto &file : partition->files) {
            auto source = warehouse.cluster().open(file);
            dwrf::FileReader reader(*source, dwrf::ReadOptions{});
            dsi_assert(reader.valid(), "unreadable file '%s'",
                       file.c_str());
            const auto &stripes = reader.footer().stripes;
            // Pack successive stripes into ~rows_per_split splits.
            uint32_t begin = 0;
            uint64_t rows = 0;
            for (uint32_t s = 0; s < stripes.size(); ++s) {
                rows += stripes[s].rows;
                bool last = s + 1 == stripes.size();
                if (rows >= spec_.rows_per_split || last) {
                    Split split;
                    split.id = splits_.size();
                    split.file = file;
                    split.first_stripe = begin;
                    split.stripe_count = s - begin + 1;
                    split.rows = rows;
                    splits_.push_back(std::move(split));
                    begin = s + 1;
                    rows = 0;
                }
            }
        }
    }
    metrics_.set("master.total_splits",
                 static_cast<double>(splits_.size()));
}

WorkerId
Master::registerWorker()
{
    std::scoped_lock lock(mutex_);
    WorkerId id = next_worker_++;
    live_workers_.insert(id);
    last_heartbeat_[id] = clock_();
    metrics_.inc("master.workers_registered");
    return id;
}

void
Master::touchLocked(WorkerId worker)
{
    if (live_workers_.count(worker))
        last_heartbeat_[worker] = clock_();
}

SplitGrant
Master::acquireSplit(WorkerId worker, const WorkerLoad &load)
{
    std::scoped_lock lock(mutex_);
    SplitGrant grant;
    if (!live_workers_.count(worker)) {
        // A zombie (lease-expired or manually failed) asking for more
        // work: its old splits are already requeued, so feeding it
        // would double-process rows. Starve it instead.
        metrics_.inc("master.stale_requests");
        trace::instant(trace::events::kRejected, trace::kNoSpan,
                       worker);
        grant.status = GrantStatus::Rejected;
        return grant;
    }
    touchLocked(worker);
    if (pending_.empty()) {
        // Checked before admission so a saturated worker still
        // observes end-of-work and can finish its drain.
        grant.status = GrantStatus::NoWork;
        return grant;
    }
    // Admission control: shed rather than pile work onto a worker
    // that cannot absorb it (full buffer means trainers are the
    // bottleneck; more extraction only grows memory).
    bool shed = admission_.shed_on_full_buffer && load.buffer_full;
    if (!shed && admission_.max_inflight_per_worker > 0) {
        uint32_t held = 0;
        for (const auto &[split_id, w] : inflight_)
            held += w == worker;
        shed = held >= admission_.max_inflight_per_worker;
    }
    if (shed) {
        metrics_.inc("master.splits_shed");
        trace::instant(trace::events::kOverloaded, trace::kNoSpan,
                       worker);
        grant.status = GrantStatus::Overloaded;
        return grant;
    }
    uint64_t split_id = pending_.front();
    pending_.pop_front();
    inflight_.emplace(split_id, worker);
    if (admission_.split_deadline_s > 0.0) {
        deadline_at_[split_id] =
            clock_() + admission_.split_deadline_s;
        grant.deadline = Deadline::after(admission_.split_deadline_s);
    }
    metrics_.inc("master.splits_assigned");
    grant.status = GrantStatus::Granted;
    grant.split = splits_[split_id];
    // Re-grant of a partially delivered split: resume extraction past
    // the contiguous prefix of stripes trainers already received, so
    // a replacement worker (or a recovered control plane) re-reads
    // only the undelivered tail.
    auto wm = resume_watermark_.find(split_id);
    if (wm != resume_watermark_.end() && wm->second > 0) {
        grant.split->resume_stripe =
            std::min(wm->second, grant.split->stripe_count);
        metrics_.inc("master.splits_resumed");
    }
    if (trace::on()) {
        // Lineage root: everything that happens to this split —
        // extraction, storage reads, transformation, delivery —
        // parents on this span, which stays open until the split
        // reaches a terminal state at this Master. The ambient parent
        // is kNoSpan for a plain session (grants are forest roots, as
        // before) and the tenant's fleet.tenant span under a fleet,
        // which is how every span in a split's lineage becomes
        // attributable to one tenant.
        grant.trace = trace::beginSpan(trace::spans::kMasterGrant,
                                       trace::currentParent(),
                                       split_id, worker);
        grant_spans_[split_id] = grant.trace;
    }
    return grant;
}

void
Master::endGrantSpanLocked(uint64_t split_id)
{
    auto it = grant_spans_.find(split_id);
    if (it == grant_spans_.end())
        return;
    trace::endSpan(it->second, trace::spans::kMasterGrant);
    grant_spans_.erase(it);
}

void
Master::releaseSplit(WorkerId worker, uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    touchLocked(worker);
    auto it = inflight_.find(split_id);
    if (it == inflight_.end() || it->second != worker) {
        metrics_.inc("master.stale_releases");
        return;
    }
    inflight_.erase(it);
    deadline_at_.erase(split_id);
    endGrantSpanLocked(split_id);
    // No attempt penalty: the data is fine, the worker's timing
    // (or drain) is not.
    pending_.push_front(split_id);
    metrics_.inc("master.splits_released");
}

uint64_t
Master::expireDeadlines()
{
    std::scoped_lock lock(mutex_);
    if (admission_.split_deadline_s <= 0.0)
        return 0;
    double now = clock_();
    uint64_t expired = 0;
    for (auto it = deadline_at_.begin(); it != deadline_at_.end();) {
        uint64_t split_id = it->first;
        auto holder = inflight_.find(split_id);
        if (it->second > now || holder == inflight_.end()) {
            ++it;
            continue;
        }
        // Bound re-grants of a split that keeps blowing its budget:
        // charge an attempt so a pathological split still reaches a
        // terminal state instead of cycling forever.
        it = deadline_at_.erase(it);
        inflight_.erase(holder);
        ++expired;
        metrics_.inc("master.deadline_expired");
        {
            auto gs = grant_spans_.find(split_id);
            trace::instant(trace::events::kDeadlineExpired,
                           gs == grant_spans_.end() ? trace::kNoSpan
                                                    : gs->second,
                           split_id);
        }
        endGrantSpanLocked(split_id);
        uint32_t failures = ++attempts_[split_id];
        if (failures >= max_split_attempts_) {
            failed_.insert(split_id);
            clearWatermarkLocked(split_id);
            if (policy_.on_terminal)
                writeCheckpointLocked();
            metrics_.inc("master.splits_failed");
            dsi_warn("split %llu blew %u deadlines; giving up",
                     static_cast<unsigned long long>(split_id),
                     failures);
        } else {
            pending_.push_front(split_id);
            metrics_.inc("master.splits_requeued");
        }
    }
    return expired;
}

void
Master::setAdmission(AdmissionOptions admission)
{
    std::scoped_lock lock(mutex_);
    admission_ = admission;
}

void
Master::completeSplit(WorkerId worker, uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    touchLocked(worker);
    auto it = inflight_.find(split_id);
    if (it == inflight_.end() || it->second != worker) {
        // Stale: the split was requeued (lease expiry) or finished by
        // its new owner. The ledger on the client side deduplicates
        // any rows the zombie already delivered.
        metrics_.inc("master.stale_completions");
        return;
    }
    inflight_.erase(it);
    deadline_at_.erase(split_id);
    endGrantSpanLocked(split_id);
    completed_.insert(split_id);
    clearWatermarkLocked(split_id);
    metrics_.inc("master.splits_completed");
    if (policy_.on_terminal)
        writeCheckpointLocked();
}

void
Master::failSplit(WorkerId worker, uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    touchLocked(worker);
    auto it = inflight_.find(split_id);
    if (it == inflight_.end() || it->second != worker) {
        metrics_.inc("master.stale_failures");
        return;
    }
    inflight_.erase(it);
    deadline_at_.erase(split_id);
    endGrantSpanLocked(split_id);
    uint32_t failures = ++attempts_[split_id];
    if (failures >= max_split_attempts_) {
        failed_.insert(split_id);
        clearWatermarkLocked(split_id);
        if (policy_.on_terminal)
            writeCheckpointLocked();
        metrics_.inc("master.splits_failed");
        dsi_warn("split %llu failed after %u attempts; giving up",
                 static_cast<unsigned long long>(split_id), failures);
    } else {
        pending_.push_front(split_id);
        metrics_.inc("master.splits_requeued");
    }
}

void
Master::failWorker(WorkerId worker)
{
    std::scoped_lock lock(mutex_);
    failWorkerLocked(worker);
}

void
Master::failWorkerLocked(WorkerId worker)
{
    live_workers_.erase(worker);
    last_heartbeat_.erase(worker);
    // Stateless Workers: just requeue whatever they were processing.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second == worker) {
            pending_.push_front(it->first);
            deadline_at_.erase(it->first);
            endGrantSpanLocked(it->first);
            metrics_.inc("master.splits_requeued");
            it = inflight_.erase(it);
        } else {
            ++it;
        }
    }
    metrics_.inc("master.workers_failed");
}

void
Master::setLeaseTimeout(double seconds)
{
    std::scoped_lock lock(mutex_);
    lease_timeout_ = seconds;
}

void
Master::setClock(std::function<double()> clock)
{
    std::scoped_lock lock(mutex_);
    clock_ = std::move(clock);
}

void
Master::heartbeat(WorkerId worker)
{
    std::scoped_lock lock(mutex_);
    touchLocked(worker);
}

std::vector<WorkerId>
Master::expireLeases()
{
    std::scoped_lock lock(mutex_);
    std::vector<WorkerId> expired;
    if (lease_timeout_ <= 0.0)
        return expired;
    double now = clock_();
    // Only workers holding in-flight splits can lose a lease: an idle
    // worker has nothing to recover, and draining workers legitimately
    // go quiet once the split queue empties.
    std::set<WorkerId> holding;
    for (const auto &[split_id, w] : inflight_)
        holding.insert(w);
    for (WorkerId w : holding) {
        auto hb = last_heartbeat_.find(w);
        double last = hb == last_heartbeat_.end() ? 0.0 : hb->second;
        if (now - last > lease_timeout_)
            expired.push_back(w);
    }
    for (WorkerId w : expired) {
        dsi_warn("worker %u lease expired; requeueing its splits", w);
        failWorkerLocked(w);
        metrics_.inc("master.leases_expired");
    }
    return expired;
}

void
Master::setMaxSplitAttempts(uint32_t attempts)
{
    dsi_assert(attempts >= 1, "need at least one attempt");
    std::scoped_lock lock(mutex_);
    max_split_attempts_ = attempts;
}

SessionProgress
Master::progress() const
{
    std::scoped_lock lock(mutex_);
    SessionProgress p;
    p.total_splits = splits_.size();
    p.completed_splits = completed_.size();
    p.inflight_splits = inflight_.size();
    p.pending_splits = pending_.size();
    p.failed_splits = failed_.size();
    return p;
}

MasterCheckpoint
Master::checkpoint() const
{
    std::scoped_lock lock(mutex_);
    return checkpointLocked();
}

MasterCheckpoint
Master::checkpointLocked() const
{
    MasterCheckpoint cp;
    cp.epoch = epoch_;
    cp.next_split_cursor = splits_.size();
    cp.completed.assign(completed_.begin(), completed_.end());
    cp.failed.assign(failed_.begin(), failed_.end());
    for (const auto &[id, count] : attempts_) {
        if (count > 0)
            cp.attempts.emplace_back(id, count);
    }
    for (const auto &[id, stripe] : resume_watermark_) {
        if (stripe > 0)
            cp.delivered_stripes.emplace_back(id, stripe);
    }
    return cp;
}

void
Master::enableJournal(storage::TectonicCluster &cluster,
                      std::string base, CheckpointPolicy policy)
{
    std::scoped_lock lock(mutex_);
    journal_ = std::make_unique<CheckpointJournal>(
        cluster, std::move(base),
        JournalOptions{policy.keep_records});
    policy_ = policy;
    last_checkpoint_at_ = clock_();
    deliveries_since_checkpoint_ = 0;
}

void
Master::setLedger(DeliveryLedger *ledger)
{
    std::scoped_lock lock(mutex_);
    ledger_ = ledger;
}

uint64_t
Master::epoch() const
{
    std::scoped_lock lock(mutex_);
    return epoch_;
}

void
Master::writeCheckpointLocked()
{
    if (!journal_)
        return;
    // Payload: [master_len][master bytes][ledger_len][ledger bytes].
    // The ledger snapshot is taken *after* the master snapshot — a
    // claim that races in between is recorded as delivered without
    // its split being completed, which recovery resolves safely (the
    // replay is suppressed; the opposite order could drop a batch).
    dwrf::Buffer master_bytes = checkpointLocked().serialize();
    dwrf::Buffer payload;
    dwrf::putVarint(payload, master_bytes.size());
    payload.insert(payload.end(), master_bytes.begin(),
                   master_bytes.end());
    dwrf::Buffer ledger_bytes;
    if (ledger_)
        ledger_bytes = ledger_->checkpoint().serialize();
    dwrf::putVarint(payload, ledger_bytes.size());
    payload.insert(payload.end(), ledger_bytes.begin(),
                   ledger_bytes.end());

    auto result = journal_->append(payload);
    last_checkpoint_at_ = clock_();
    deliveries_since_checkpoint_ = 0;
    metrics_.inc("master.checkpoint.written");
    metrics_.inc("master.checkpoint.bytes",
                 static_cast<double>(result.bytes));
    if (trace::on()) {
        trace::SpanId span =
            trace::beginSpan(trace::spans::kMasterCheckpoint,
                             trace::kNoSpan, result.seq, result.bytes);
        trace::endSpan(span, trace::spans::kMasterCheckpoint);
    }
}

void
Master::checkpointNow()
{
    std::scoped_lock lock(mutex_);
    writeCheckpointLocked();
}

void
Master::maybeCheckpoint()
{
    std::scoped_lock lock(mutex_);
    if (!journal_ || policy_.interval_s <= 0.0)
        return;
    if (clock_() - last_checkpoint_at_ >= policy_.interval_s)
        writeCheckpointLocked();
}

void
Master::noteDelivery()
{
    std::scoped_lock lock(mutex_);
    if (!journal_ || policy_.every_n_deliveries == 0)
        return;
    if (++deliveries_since_checkpoint_ >= policy_.every_n_deliveries)
        writeCheckpointLocked();
}

void
Master::noteStripeDelivered(uint64_t split_id, uint32_t stripe)
{
    std::scoped_lock lock(mutex_);
    if (completed_.count(split_id) || failed_.count(split_id))
        return; // terminal: resume tracking already cleared
    uint32_t &watermark = resume_watermark_[split_id];
    if (stripe < watermark)
        return; // replayed stripe, already inside the prefix
    // Batches of one split normally arrive in stripe order (one
    // worker, FIFO queues), but a replay racing the original attempt
    // can interleave; fold strays into the prefix as gaps close.
    auto &stray = stray_stripes_[split_id];
    stray.insert(stripe);
    while (stray.erase(watermark))
        ++watermark;
}

void
Master::clearWatermarkLocked(uint64_t split_id)
{
    resume_watermark_.erase(split_id);
    stray_stripes_.erase(split_id);
}

bool
Master::recoverFromJournal()
{
    dsi_assert(journal_ != nullptr,
               "recoverFromJournal needs enableJournal first");
    JournalRecovery rec = journal_->recover();
    if (rec.corrupt_skipped > 0)
        metrics_.inc("master.checkpoint.corrupt_skipped",
                     static_cast<double>(rec.corrupt_skipped));
    if (!rec.found) {
        dsi_warn("journal '%s' has no valid record; cold-starting",
                 journal_->base().c_str());
        return false;
    }
    // Unwrap [master_len][master][ledger_len][ledger].
    dwrf::ByteSpan payload(rec.payload);
    size_t pos = 0;
    uint64_t master_len = 0;
    if (!dwrf::getVarint(payload, pos, master_len) ||
        master_len > payload.size() - pos) {
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    dwrf::ByteSpan master_bytes = payload.subspan(pos, master_len);
    pos += master_len;
    uint64_t ledger_len = 0;
    if (!dwrf::getVarint(payload, pos, ledger_len) ||
        ledger_len != payload.size() - pos) {
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    auto cp = MasterCheckpoint::deserialize(master_bytes);
    if (!cp.has_value()) {
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    std::optional<LedgerCheckpoint> lcp;
    if (ledger_len > 0) {
        lcp = LedgerCheckpoint::deserialize(
            payload.subspan(pos, ledger_len));
        if (!lcp.has_value()) {
            metrics_.inc("master.checkpoint_restore_failed");
            return false;
        }
    }

    trace::SpanId span = trace::kNoSpan;
    if (trace::on())
        span = trace::beginSpan(trace::spans::kMasterRecover,
                                trace::kNoSpan, rec.seq,
                                rec.corrupt_skipped);
    bool ok = restore(*cp);
    if (ok && lcp.has_value() && ledger_ != nullptr)
        ledger_->restore(*lcp);
    if (ok)
        metrics_.inc("master.checkpoint.restored");
    if (trace::on())
        trace::endSpan(span, trace::spans::kMasterRecover);
    return ok;
}

void
Master::checkpointToStorage(storage::TectonicCluster &cluster,
                            const std::string &name) const
{
    cluster.put(name, checkpoint().serialize());
}

bool
Master::restoreFromStorage(const storage::TectonicCluster &cluster,
                           const std::string &name)
{
    // A missing, unreadable, or corrupt checkpoint is a recoverable
    // condition: the replica cold-starts from the full enumeration
    // (re-processing completed splits is wasteful but correct).
    if (!cluster.exists(name)) {
        dsi_warn("checkpoint '%s' not found; cold-starting",
                 name.c_str());
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    auto source = cluster.open(name);
    dwrf::Buffer bytes;
    if (source->readChecked(0, source->size(), bytes) !=
        dwrf::IoStatus::Ok) {
        dsi_warn("checkpoint '%s' unreadable; cold-starting",
                 name.c_str());
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    auto cp = MasterCheckpoint::deserialize(bytes);
    if (!cp.has_value()) {
        dsi_warn("checkpoint '%s' is corrupt; cold-starting",
                 name.c_str());
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    return restore(*cp);
}

bool
Master::restore(const MasterCheckpoint &checkpoint)
{
    std::scoped_lock lock(mutex_);
    // Validate before mutating so a bad checkpoint leaves the session
    // in its current (still usable) state.
    auto known = [&](uint64_t id) { return id < splits_.size(); };
    for (uint64_t id : checkpoint.completed) {
        if (!known(id)) {
            dsi_warn("checkpoint references unknown split %llu",
                     static_cast<unsigned long long>(id));
            metrics_.inc("master.checkpoint_restore_failed");
            return false;
        }
    }
    for (uint64_t id : checkpoint.failed) {
        if (!known(id)) {
            metrics_.inc("master.checkpoint_restore_failed");
            return false;
        }
    }
    for (const auto &[id, count] : checkpoint.attempts) {
        if (!known(id) || count == 0) {
            metrics_.inc("master.checkpoint_restore_failed");
            return false;
        }
    }
    for (const auto &[id, stripe] : checkpoint.delivered_stripes) {
        if (!known(id) || stripe > splits_[id].stripe_count) {
            metrics_.inc("master.checkpoint_restore_failed");
            return false;
        }
    }
    completed_.clear();
    completed_.insert(checkpoint.completed.begin(),
                      checkpoint.completed.end());
    // Failed splits and attempt counts survive the restart: a split
    // that burned two of its three attempts before the control plane
    // died gets exactly one more — never a fresh budget (no attempt
    // double-charging in either direction).
    failed_.clear();
    failed_.insert(checkpoint.failed.begin(), checkpoint.failed.end());
    attempts_.clear();
    attempts_.insert(checkpoint.attempts.begin(),
                     checkpoint.attempts.end());
    resume_watermark_.clear();
    stray_stripes_.clear();
    for (const auto &[id, stripe] : checkpoint.delivered_stripes) {
        if (!completed_.count(id) && !failed_.count(id))
            resume_watermark_[id] = stripe;
    }
    inflight_.clear();
    deadline_at_.clear();
    for (const auto &[split_id, span] : grant_spans_)
        trace::endSpan(span, trace::spans::kMasterGrant);
    grant_spans_.clear();
    pending_.clear();
    for (uint64_t i = 0; i < splits_.size(); ++i) {
        if (!completed_.count(i) && !failed_.count(i))
            pending_.push_back(i);
    }
    // The restored Master is a new incarnation of the control plane;
    // workers of the old one are zombies by construction (inflight_
    // was cleared), and their late completions land as stale.
    epoch_ = checkpoint.epoch + 1;
    metrics_.inc("master.restores");
    return true;
}

} // namespace dsi::dpp
